#pragma once

// The resource-utilization cost model (paper §V-A): accumulates the cost
// of individual IR instructions (through the calibrated laws) and the
// structural information implied in the type of each IR function —
// offset buffers, delay-balancing registers, stream control, sequencers.
//
// This path never consults the fabric synthesizer; it only evaluates
// fitted curves, which is what makes it fast.

#include <map>
#include <string>

#include "tytra/cost/calibration.hpp"
#include "tytra/ir/analysis.hpp"
#include "tytra/ir/module.hpp"
#include "tytra/resources.hpp"

namespace tytra::cost {

struct ResourceEstimate {
  ResourceVec total;
  std::map<std::string, ResourceVec> per_function;  ///< one instance each
  Utilization util;
  bool fits{false};
};

/// Estimates the whole design's resource usage. The summary overload
/// reuses the one-traversal schedules, body partitions and port
/// resolutions instead of re-deriving them per function; the module-only
/// overload builds a summary internally. Results are bit-identical.
/// Preconditions: the module verifies; `summary` was built from `module`.
ResourceEstimate estimate_resources(const ir::Module& module,
                                    const DeviceCostDb& db);
ResourceEstimate estimate_resources(const ir::Module& module,
                                    const DeviceCostDb& db,
                                    const ir::AnalysisSummary& summary);

/// Estimates one function body (single instance, children included).
ResourceVec estimate_function(const ir::Module& module,
                              const ir::Function& function,
                              const DeviceCostDb& db);

}  // namespace tytra::cost
