#pragma once

// The EKIT (Effective Kernel-Instance Throughput) cost model of paper
// §V-B: Equations 1-3 for the three memory-execution forms, over the
// Table-I parameter set. Besides the throughput itself the model exposes
// the performance-limiting parameter (the "wall"), enabling targeted
// optimization and the feedback path of the compiler flow.

#include <cstdint>
#include <string_view>

#include "tytra/cost/calibration.hpp"
#include "tytra/ir/analysis.hpp"
#include "tytra/ir/module.hpp"

namespace tytra::cost {

/// The performance-limiting parameter of a design variant.
enum class Wall : std::uint8_t {
  HostBandwidth,   ///< host<->device transfers dominate (communication wall)
  DramBandwidth,   ///< device-DRAM streaming dominates (communication wall)
  Compute,         ///< datapath issue rate dominates (compute wall)
  PipelineFill,    ///< KPD/FD dominates (tiny NDRanges)
  OffsetFill,      ///< offset-buffer priming dominates
};

std::string_view wall_name(Wall wall);

/// The fully-resolved Table-I parameter set for one design variant.
struct EkitInputs {
  ir::DesignParams design;  ///< from IR analysis
  double hpb{0};            ///< HPB: host peak bandwidth, bytes/s
  double rho_h{1};          ///< empirical host scaling factor
  double gpb{0};            ///< GPB: device DRAM peak bandwidth, bytes/s
  double rho_g{1};          ///< empirical DRAM scaling factor
  double word_bytes{4};
};

/// Throughput estimate with its decomposition.
struct ThroughputEstimate {
  double ekit{0};               ///< kernel-instance executions per second
  double seconds_per_instance{0};
  // Decomposition of the per-instance time (Eq. 1-3 terms):
  double t_host{0};         ///< host<->device transfer share
  double t_offset_fill{0};  ///< offset-buffer priming
  double t_pipe_fill{0};    ///< pipeline fill (KPD/FD)
  double t_mem_stream{0};   ///< DRAM streaming term (inside max)
  double t_compute{0};      ///< compute term (inside max)
  Wall limiting{Wall::Compute};
  double cycles_per_instance{0};  ///< CPKI: device cycles, host time excluded
};

/// Evaluates the EKIT expression for the form selected in
/// `in.design.form`. `in.design.fd` must be resolved (>0).
ThroughputEstimate ekit(const EkitInputs& in);

/// Resolves the Table-I inputs for `module` against a calibrated device
/// database (peak bandwidths from the architecture description, rho_H and
/// rho_G from the empirical tables, FD defaulted from the device), then
/// evaluates EKIT. The summary overloads reuse a one-traversal
/// `ir::AnalysisSummary` (parameters and per-port stride resolutions)
/// instead of re-walking the module; results are bit-identical.
/// Preconditions: module verifies; module.meta.global_size > 0.
ThroughputEstimate estimate_throughput(const ir::Module& module,
                                       const DeviceCostDb& db);
ThroughputEstimate estimate_throughput(const ir::Module& module,
                                       const DeviceCostDb& db,
                                       const ir::AnalysisSummary& summary);

/// The resolved inputs themselves (for reports and tests).
EkitInputs resolve_inputs(const ir::Module& module, const DeviceCostDb& db);
EkitInputs resolve_inputs(const ir::Module& module, const DeviceCostDb& db,
                          const ir::AnalysisSummary& summary);

/// Canonical 64-bit key of a fully-resolved input set: two variants with
/// the same key produce the same EKIT estimate, so memoizing layers (the
/// DSE cost cache) can index evaluations by it.
std::uint64_t input_key(const EkitInputs& in);

}  // namespace tytra::cost
