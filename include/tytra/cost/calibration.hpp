#pragma once

// Calibration of the cost model against a target device — the "one-time
// set of benchmark experiments ... for each FPGA target" of Fig. 2.
//
// Resource laws are *fitted*, not copied: each op class is probe-
// synthesized at a handful of bit-widths (the paper uses 18/32/64 for the
// divider of Fig. 9) and a first- or second-order polynomial is fitted by
// least squares; DSP counts are probed densely and captured as a step
// function with discontinuities. Sustained memory bandwidth is measured
// with the STREAM-style benchmark and kept as an empirical table.

#include <array>
#include <map>

#include "tytra/fabric/cores.hpp"
#include "tytra/membench/stream_bench.hpp"
#include "tytra/resources.hpp"
#include "tytra/support/binio.hpp"
#include "tytra/support/polyfit.hpp"
#include "tytra/target/device.hpp"

namespace tytra::cost {

/// Fitted per-op resource law: ALUTs/registers as polynomials in
/// bit-width, DSP blocks as a step function, BRAM bits linear.
struct OpLaw {
  tytra::Polynomial aluts;
  tytra::Polynomial regs;
  tytra::Polynomial bram_bits;
  tytra::StepModel dsps;
  int fit_degree{1};
  /// For ops with piecewise-linear logic laws (multiplier tiles, barrel
  /// shifter stages — Fig. 9's mul-ALUTs curve) the calibrator probes
  /// densely and keeps the empirical piecewise model; when non-empty it
  /// takes precedence over the polynomials.
  tytra::PiecewiseLinear aluts_pwl;
  tytra::PiecewiseLinear regs_pwl;
};

/// The calibrated per-device cost database.
class DeviceCostDb {
 public:
  /// Runs the calibration experiments for `device`: probe synthesis of
  /// every opcode over the probe widths, plus the bandwidth benchmark.
  static DeviceCostDb calibrate(const target::DeviceDesc& device);

  /// Estimated resources of one instance of `op` at the given type
  /// (per vector lane).
  [[nodiscard]] ResourceVec op_cost(ir::Opcode op,
                                    const ir::ScalarType& type) const;

  /// Like op_cost but with one compile-time-constant operand. The model
  /// applies only the *textbook* reductions every estimator knows
  /// (power-of-two multiply/divide become wiring/shifts); the fabric's
  /// cleverer shift-add networks and reciprocal multiplies remain unseen
  /// — a deliberate source of the Table-II error structure.
  [[nodiscard]] ResourceVec op_cost_const(ir::Opcode op,
                                          const ir::ScalarType& type,
                                          std::int64_t constant) const;

  /// Estimated resources of an offset buffer / stream-control block.
  /// These structural laws are derived from probe runs as well.
  [[nodiscard]] ResourceVec offset_buffer_cost(std::uint32_t bits,
                                               std::uint64_t depth_words) const;
  [[nodiscard]] ResourceVec stream_control_cost(
      std::uint32_t bits, std::uint64_t addr_range_words) const;

  /// Empirical sustained-bandwidth table for the device DRAM.
  [[nodiscard]] const membench::BandwidthTable& bandwidth() const {
    return bandwidth_;
  }
  /// Empirical host-link sustained bandwidth (bytes/s) for a transfer size.
  [[nodiscard]] double host_sustained(std::uint64_t bytes) const;

  [[nodiscard]] const target::DeviceDesc& device() const { return device_; }

  /// Wall-clock seconds the calibration itself took (one-time cost).
  [[nodiscard]] double calibration_seconds() const { return calib_seconds_; }

  /// Integer probe widths used for polynomial fitting (as in Fig. 9).
  static constexpr std::array<int, 4> kIntProbeWidths{8, 18, 32, 64};

  /// The fitted law for an op on integer operands (for inspection/tests).
  [[nodiscard]] const OpLaw& int_law(ir::Opcode op) const;

  /// Serializes the complete database — device description, every fitted
  /// law, the empirical bandwidth tables and the original calibration
  /// time — into a snapshot payload, so a later process skips the
  /// calibration experiments entirely.
  void save(binio::Encoder& enc) const;

  /// Decodes a database written by save(). Every count, enum value and
  /// model shape is validated; malformed payloads come back as a
  /// diagnostic, never an exception or a half-trusted database.
  static tytra::Result<DeviceCostDb> load(binio::Decoder& dec);

 private:
  target::DeviceDesc device_;
  std::map<ir::Opcode, OpLaw> int_laws_;
  /// Float cores are fixed-function: direct probe per (op, width).
  std::map<std::pair<ir::Opcode, int>, ResourceVec> float_costs_;
  membench::BandwidthTable bandwidth_;
  tytra::PiecewiseLinear host_bw_;  ///< log2(bytes) -> bytes/s
  double calib_seconds_{0};
};

}  // namespace tytra::cost
