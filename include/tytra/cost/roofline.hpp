#pragma once

// Roofline representation of a design variant: the paper points at the
// FPGA roofline extension of da Silva et al. [11] as "quite relevant ...
// for a more useful representation of our cost-model". This module places
// a costed design on the (arithmetic intensity, attainable throughput)
// plane against the device's compute and bandwidth ceilings.

#include <string>
#include <vector>

#include "tytra/cost/calibration.hpp"
#include "tytra/ir/module.hpp"

namespace tytra::cost {

struct RooflinePoint {
  double arithmetic_intensity{0};  ///< datapath ops per DRAM byte moved
  double ops_ceiling{0};           ///< design's compute roof, ops/s
  double bw_roof_ops{0};           ///< AI x sustained bandwidth, ops/s
  double attainable_ops{0};        ///< min of the two roofs
  double achieved_ops{0};          ///< ops/s at the EKIT estimate
  bool memory_bound{false};
  double balance_point{0};         ///< AI where the roofs intersect
};

/// Places `module` on the roofline of the calibrated device.
/// Preconditions: module verifies, NDRange non-zero.
RooflinePoint roofline(const ir::Module& module, const DeviceCostDb& db);

/// Renders a small ASCII roofline chart with the design marked.
std::string format_roofline_ascii(const RooflinePoint& point, int width = 60,
                                  int height = 12);

}  // namespace tytra::cost
