#pragma once

// The combined cost report the TyTra back-end compiler emits for one
// design variant (Fig. 2): resource estimates, throughput estimate with
// its limiting factor, validity against the device limits, and the time
// the estimation itself took (the paper's headline: ~0.3 s per variant,
// >200x faster than a vendor preliminary estimate).

#include <string>

#include "tytra/cost/calibration.hpp"
#include "tytra/cost/resource_model.hpp"
#include "tytra/cost/throughput.hpp"
#include "tytra/ir/analysis.hpp"
#include "tytra/ir/module.hpp"
#include "tytra/support/binio.hpp"

namespace tytra::cost {

struct CostReport {
  std::string design_name;
  ir::ConfigClass config{ir::ConfigClass::C2};
  ir::DesignParams params;
  ResourceEstimate resources;
  ThroughputEstimate throughput;
  /// A design is valid when it fits the device and its streams fit the
  /// available IO bandwidth.
  bool valid{false};
  std::string invalid_reason;
  double estimate_seconds{0};  ///< wall-clock cost of producing this report
};

/// Runs the full cost model on a design variant. The module-only overload
/// builds the analysis summary itself; hot paths that already hold one
/// (the DSE cache, sweep engines) pass it in so the whole report costs
/// exactly one module traversal.
/// Preconditions: the module verifies.
CostReport cost_design(const ir::Module& module, const DeviceCostDb& db);
CostReport cost_design(const ir::Module& module, const DeviceCostDb& db,
                       const ir::AnalysisSummary& summary);

/// Human-readable rendering of the report.
std::string format_report(const CostReport& report);

/// Serializes `report` field-by-field into a snapshot payload stream.
/// Exact: a round-tripped report is bit-identical (doubles by bit
/// pattern), so output rendered from restored reports matches output
/// rendered from freshly-computed ones byte for byte.
void save_report(binio::Encoder& enc, const CostReport& report);

/// Decodes one report. Enum fields are range-checked; any violation (or a
/// truncated stream) fails the decoder — check `dec.ok()` after the batch.
CostReport load_report(binio::Decoder& dec);

}  // namespace tytra::cost
