#pragma once

// Tiled memory execution: the evolution of the memory-execution model the
// paper anticipates ("tiling an index space such that it can lie on a
// finer-grained spectrum between these three main types", §III-5).
//
// The NDRange is processed in tiles staged through on-chip local memory
// (block RAM) with double buffering: while the PE computes on one tile the
// stream controller stages the next. Small tiles behave like form B with
// degraded sustained bandwidth (short transfers); a tile that covers the
// whole NDRange *is* form C.

#include <cstdint>
#include <optional>

#include "tytra/cost/throughput.hpp"

namespace tytra::cost {

/// True when a tile of `tile_words` work-items (times NWPT words each,
/// double-buffered) fits the device's local memory.
bool tile_fits(const target::DeviceDesc& device, std::uint64_t tile_words,
               double nwpt);

/// EKIT under a tiled schedule with the given tile size (work-items per
/// tile). `inputs` must be resolved (resolve_inputs); the bandwidth table
/// prices the per-tile staging transfers.
ThroughputEstimate ekit_tiled(const EkitInputs& inputs,
                              std::uint64_t tile_words,
                              const DeviceCostDb& db);

struct TileChoice {
  std::uint64_t tile_words{0};
  ThroughputEstimate estimate;
};

/// Sweeps power-of-two tile sizes that fit the device and returns the
/// best, or nullopt when no tile fits (pathological local memories).
std::optional<TileChoice> best_tile(const ir::Module& module,
                                    const DeviceCostDb& db);

}  // namespace tytra::cost
