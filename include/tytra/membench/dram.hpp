#pragma once

// Device-DRAM and host-link (PCIe) timing models. These stand in for the
// physical memory system of the paper's Alpha-Data/Maxeler boards: the
// STREAM-style benchmark (stream_bench.hpp) *measures* sustained bandwidth
// from these models, and the cost model ingests the resulting empirical
// table — never the model parameters themselves.

#include <cstdint>

#include "tytra/ir/module.hpp"
#include "tytra/target/device.hpp"

namespace tytra::membench {

/// Row-buffer/burst-level DRAM timing. Contiguous traffic streams at near
/// the interface peak (row-activate penalties are overlapped across banks);
/// strided traffic with stride >= one burst pays a full row miss per
/// access — the two-orders-of-magnitude gap of Fig. 10.
class DramModel {
 public:
  DramModel(const target::DramParams& params, double bank_overlap = 0.95);

  /// Seconds to move `bytes` with the given access pattern. For strided
  /// access `stride_bytes` is the distance between consecutive accessed
  /// words; `access_bytes` is the useful payload per access (a word).
  [[nodiscard]] double transfer_seconds(std::uint64_t bytes,
                                        ir::AccessPattern pattern,
                                        std::uint64_t stride_bytes = 0,
                                        std::uint32_t access_bytes = 4) const;

  /// Sustained bandwidth (useful bytes / total time), bytes per second.
  [[nodiscard]] double sustained_bw(std::uint64_t bytes,
                                    ir::AccessPattern pattern,
                                    std::uint64_t stride_bytes = 0,
                                    std::uint32_t access_bytes = 4) const;

  /// Sustained bandwidth for *true random* word access. The paper's
  /// experiments "have shown that there is little difference in sustained
  /// bandwidth between fixed-stride and true random access": every access
  /// opens a fresh row, exactly like a beyond-burst stride.
  [[nodiscard]] double sustained_bw_random(std::uint64_t bytes,
                                           std::uint32_t access_bytes = 4) const;

  /// The interface peak (bus width x IO clock), bytes per second.
  [[nodiscard]] double peak_bw() const;

 private:
  target::DramParams params_;
  double bank_overlap_;
};

/// Host<->device link: peak bandwidth derated by protocol efficiency, plus
/// a fixed per-transfer latency (driver + DMA descriptor setup) that
/// dominates small transfers.
class HostLinkModel {
 public:
  explicit HostLinkModel(const target::HostLinkParams& params);

  [[nodiscard]] double transfer_seconds(std::uint64_t bytes) const;
  [[nodiscard]] double sustained_bw(std::uint64_t bytes) const;
  [[nodiscard]] double peak_bw() const { return params_.peak_bw; }

 private:
  target::HostLinkParams params_;
};

}  // namespace tytra::membench
