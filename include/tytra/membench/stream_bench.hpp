#pragma once

// The OpenCL-STREAM-style sustained-bandwidth benchmark of paper §V-C:
// streams square 2-D arrays of varying dimension both contiguously and
// with stride equal to the dimension, and records the sustained bandwidth.
// The result feeds the cost model's empirical bandwidth table (the rho_G
// scaling factors of Table I).

#include <cstdint>
#include <vector>

#include "tytra/membench/dram.hpp"
#include "tytra/support/binio.hpp"
#include "tytra/support/polyfit.hpp"
#include "tytra/target/device.hpp"

namespace tytra::membench {

struct BandwidthSample {
  std::uint64_t dim{0};        ///< one side of the square array (= stride)
  std::uint64_t bytes{0};      ///< total payload streamed
  double contiguous_bps{0};    ///< sustained, bytes/s
  double strided_bps{0};       ///< sustained, bytes/s
};

/// Runs the sweep over the given dimensions (elements per side).
std::vector<BandwidthSample> run_stream_bench(
    const target::DeviceDesc& device, const std::vector<std::uint64_t>& dims);

/// The default sweep of Fig. 10: 128 .. 6144 elements per side.
std::vector<std::uint64_t> default_dims();

/// The empirical sustained-bandwidth model built from benchmark samples.
/// This is the only bandwidth knowledge the cost model is given.
class BandwidthTable {
 public:
  BandwidthTable() = default;

  /// Measures `device` with the stream benchmark and builds the table.
  static BandwidthTable measure(const target::DeviceDesc& device);

  /// Builds from explicit samples (e.g. loaded from a file).
  static BandwidthTable from_samples(const std::vector<BandwidthSample>& samples);

  /// Sustained device-DRAM bandwidth for a transfer of `bytes` with the
  /// given pattern (bytes/s). Interpolates between measured sizes.
  [[nodiscard]] double sustained(std::uint64_t bytes, ir::AccessPattern pattern,
                                 std::uint64_t stride_words = 1) const;

  /// rho_G: sustained / peak for the given transfer, against `peak_bps`.
  [[nodiscard]] double rho(std::uint64_t bytes, ir::AccessPattern pattern,
                           double peak_bps, std::uint64_t stride_words = 1) const;

  [[nodiscard]] bool empty() const { return contiguous_.empty(); }
  [[nodiscard]] const std::vector<BandwidthSample>& samples() const {
    return samples_;
  }

  /// Serializes the measured samples only — the interpolation models are
  /// derived state, so load() rebuilds them through from_samples() and a
  /// restored table goes through exactly the code path a fresh one does.
  void save(binio::Encoder& enc) const;
  /// Decodes a table; on a malformed payload the decoder is failed and an
  /// empty table returned — check `dec.ok()` after the batch.
  static BandwidthTable load(binio::Decoder& dec);

 private:
  tytra::PiecewiseLinear contiguous_;  ///< log2(bytes) -> bytes/s
  tytra::PiecewiseLinear strided_;     ///< log2(bytes) -> bytes/s
  std::vector<BandwidthSample> samples_;
};

}  // namespace tytra::membench
