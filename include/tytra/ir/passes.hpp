#pragma once

// IR-level optimization passes. The TyTra-IR is based on the LLVM-IR
// precisely to leave "the route open to explore LLVM optimizations"
// (paper §IV); these are the classical scalar ones that matter for a
// dataflow target:
//  * constant folding — ops whose operands are all constants collapse;
//  * common-subexpression elimination — duplicate (op, type, operands)
//    instructions merge, shrinking the datapath the cost model sees;
//  * dead-code elimination — values that never reach an output stream,
//    a reduction, or a call are removed.
//
// Passes are semantics-preserving: the functional simulator results are
// identical before and after (property-tested). Running them *before*
// costing narrows the gap between the estimate and the fabric synthesizer
// (which performs the same optimizations internally).

#include <cstdint>

#include "tytra/ir/module.hpp"

namespace tytra::ir {

struct PassStats {
  std::uint32_t folded{0};    ///< instructions replaced by constants
  std::uint32_t merged{0};    ///< instructions removed by CSE
  std::uint32_t removed{0};   ///< instructions removed as dead

  [[nodiscard]] std::uint32_t total() const { return folded + merged + removed; }
};

/// Folds constant-operand instructions in every function.
PassStats fold_constants(Module& module);

/// Merges duplicate instructions within each function.
PassStats eliminate_common_subexpressions(Module& module);

/// Removes instructions whose results are never used.
PassStats eliminate_dead_code(Module& module);

/// Runs fold -> CSE -> DCE to a fixpoint (bounded).
PassStats optimize(Module& module);

}  // namespace tytra::ir
