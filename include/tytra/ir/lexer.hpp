#pragma once

// Tokenizer for the textual TyTra-IR. Comments run from ';' to end of line.
// Identifiers may contain dots (so `@main.p` and fixed-point type names
// like `fx16.8` lex as single tokens).

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "tytra/support/diag.hpp"

namespace tytra::ir {

enum class TokKind : std::uint8_t {
  Ident,      ///< bare identifier (keywords, type names, opcodes)
  LocalName,  ///< %name
  GlobalName, ///< @name (may contain dots)
  Integer,    ///< decimal or hex integer literal
  Float,      ///< floating literal (contains '.' or exponent)
  String,     ///< "..." (no escapes)
  Punct,      ///< single punctuation char: ( ) { } , = ! + - * < > /
  End,        ///< end of input
};

struct Token {
  TokKind kind{TokKind::End};
  std::string text;        ///< for names the sigil is stripped
  std::int64_t ival{0};    ///< for Integer
  double fval{0.0};        ///< for Float
  tytra::SourceLoc loc;

  [[nodiscard]] bool is_punct(char c) const {
    return kind == TokKind::Punct && text.size() == 1 && text[0] == c;
  }
  [[nodiscard]] bool is_ident(std::string_view s) const {
    return kind == TokKind::Ident && text == s;
  }
};

/// Tokenizes the whole input. On a lexical error returns a Diag naming the
/// offending location.
tytra::Result<std::vector<Token>> lex(std::string_view source);

}  // namespace tytra::ir
