#pragma once

// Programmatic construction of TyTra-IR modules. This is the API the
// kernel library and the front-end lowering use; it produces exactly the
// same `Module` structures as the textual parser.
//
// Usage:
//   ModuleBuilder mb("sor");
//   mb.set_ndrange(im*jm*km).set_nki(1000).set_form(ExecForm::B);
//   mb.add_input_port("p", Type::scalar_of(ScalarType::uint(18)));
//   FunctionBuilder f0("f0", FuncKind::Pipe);
//   auto p   = f0.param(ui18, "p");
//   auto pp1 = f0.offset(p, +1);
//   auto t   = f0.instr(Opcode::Mul, ui18, {Operand::local(pp1), cn2l});
//   ...
//   mb.add(std::move(f0).take());
//   Module m = std::move(mb).take();

#include <initializer_list>
#include <string>
#include <vector>

#include "tytra/ir/arena.hpp"
#include "tytra/ir/module.hpp"

namespace tytra::ir {

/// Builds one IR function. Values are referred to by name; helper methods
/// auto-generate unique names when none is given.
///
/// An optional BuildArena supplies recycled vector storage (body, params,
/// operand lists) so repeated lowering — a cold DSE sweep builds one
/// function set per variant — reuses capacity instead of allocating;
/// null keeps the plain-allocation behavior.
class FunctionBuilder {
 public:
  FunctionBuilder(std::string name, FuncKind kind, BuildArena* arena = nullptr);

  /// Adds a parameter and returns its name.
  std::string param(Type type, std::string name);

  /// Declares a stream offset of `base`; returns the new value's name.
  /// Throws std::invalid_argument if `base` is not a known value.
  std::string offset(const std::string& base, std::int64_t off,
                     std::string name = {});

  /// Appends an SSA instruction; returns the result name.
  /// Throws std::invalid_argument on arity mismatch.
  std::string instr(Opcode op, Type type, std::vector<Operand> args,
                    std::string name = {});
  /// Braced-list form: with an arena, the operand vector is drawn from the
  /// recycled pool instead of freshly allocated (the form every kernel
  /// builder uses, so arena-backed lowering touches the allocator only
  /// while warming up).
  std::string instr(Opcode op, Type type, std::initializer_list<Operand> args,
                    std::string name = {});

  /// Streams `value` out through `target`: a global write to an output
  /// port name or to a parameter bound to one (emitted as a mov).
  void store(Type type, const std::string& target, Operand value);

  /// Appends a reduction onto global accumulator `global`:
  ///   @global = op(type, args..., @global)   -- accumulator appended last.
  void reduce(Opcode op, Type type, const std::string& global,
              std::vector<Operand> args);
  void reduce(Opcode op, Type type, const std::string& global,
              std::initializer_list<Operand> args);

  /// Appends a call.
  void call(std::string callee, std::vector<Operand> args, FuncKind kind);

  [[nodiscard]] const Function& peek() const { return func_; }
  [[nodiscard]] Function take() && { return std::move(func_); }

 private:
  std::string fresh_name();
  void note_defined(const std::string& name, const Type& type);
  [[nodiscard]] std::vector<Operand> make_args(std::initializer_list<Operand> il);

  Function func_;
  /// Defined value names with their types, so offset() resolves a base's
  /// type in one lookup instead of rescanning the whole body per call.
  std::vector<std::pair<std::string, Type>> defined_;
  int next_id_{1};
  BuildArena* arena_{nullptr};  ///< optional recycled storage; not owned
};

/// Builds a module: metadata, Manage-IR and functions. The optional
/// BuildArena supplies recycled Manage-IR and function-list storage, the
/// same way it does for FunctionBuilder.
class ModuleBuilder {
 public:
  explicit ModuleBuilder(std::string name, BuildArena* arena = nullptr);

  ModuleBuilder& set_ndrange(std::uint64_t ngs);
  ModuleBuilder& set_nki(std::uint32_t nki);
  ModuleBuilder& set_form(ExecForm form);
  ModuleBuilder& set_freq(double hz);
  ModuleBuilder& set_ii(std::uint32_t ii);

  /// Pre-sizes the Manage-IR vectors for `ports` upcoming add_*_port
  /// calls (each adds one memobj, one streamobj and one binding) — lane
  /// sweeps add ports in bulk and would otherwise regrow three vectors.
  ModuleBuilder& reserve_ports(std::size_t ports);

  /// Adds a full port with backing Manage-IR objects: a MemObject named
  /// "m_<name>" sized to the NDRange (call set_ndrange first; throws
  /// std::invalid_argument otherwise), a StreamObject "strobj_<name>" and
  /// the PortBinding itself. `size_words` overrides the memory-object size
  /// (0 = NDRange size); replicated lanes stream NGS/KNL words each.
  ModuleBuilder& add_input_port(const std::string& name, Type type,
                                AccessPattern pattern = AccessPattern::Contiguous,
                                std::uint64_t stride = 1,
                                std::uint64_t size_words = 0);
  ModuleBuilder& add_output_port(const std::string& name, Type type,
                                 AccessPattern pattern = AccessPattern::Contiguous,
                                 std::uint64_t stride = 1,
                                 std::uint64_t size_words = 0);

  /// Adds a finished function.
  ModuleBuilder& add(Function function);

  [[nodiscard]] Module take() &&;

 private:
  void add_port(const std::string& name, Type type, StreamDir dir,
                AccessPattern pattern, std::uint64_t stride,
                std::uint64_t size_words);

  Module mod_;
};

}  // namespace tytra::ir
