#pragma once

// Prints a Module back to its textual form. `parse(print(m))` is the
// identity on the structural content (round-trip tested).

#include <string>

#include "tytra/ir/module.hpp"

namespace tytra::ir {

/// Renders the whole module (directives, Manage-IR, then Compute-IR).
std::string print_module(const Module& module);

/// Renders a single function definition.
std::string print_function(const Function& function);

/// Renders one operand as it appears in the IR text.
std::string print_operand(const Operand& operand);

}  // namespace tytra::ir
