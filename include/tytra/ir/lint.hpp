#pragma once

// ir::lint — the coded static-analysis pass framework over TyTra-IR.
//
// The verifier answers "is this module well-formed?"; lint answers "will
// this design cost well under the EKIT model?" (Eq. 1-3: pipeline
// composition, offset-induced buffering, bandwidth saturation) before any
// DSE campaign is spent on it. Each rule is a registered pass with a
// stable code (`TL0xx`), a default severity and SourceLoc-carrying
// diagnostics; tools and tests consume findings either as rendered text
// (`format_lint`) or machine-readable JSON (`format_lint_json`).
//
// Layering: this header must not pull in cost/ (cost/ already includes
// ir/); device-aware rules see the calibrated database only through the
// forward-declared pointer in Options, and the rule bodies include the
// cost headers from src/ir/lint/*.cpp.
//
// Preconditions: run_lint assumes the module verifies (`ir::verify`
// reported no errors). Lint never duplicates a verifier diagnostic.

#include <cstddef>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "tytra/ir/analysis.hpp"
#include "tytra/ir/module.hpp"
#include "tytra/support/diag.hpp"

namespace tytra::cost {
class DeviceCostDb;
}  // namespace tytra::cost

namespace tytra::ir::lint {

/// Identity card of one rule: the stable code findings carry, the short
/// kebab-case name, the default severity and a one-line summary (the
/// docs/IR.md catalog and `format_rules` render from this).
struct RuleInfo {
  std::string_view code;     ///< stable, e.g. "TL005"
  std::string_view name;     ///< kebab-case, e.g. "seq-serializes-pipeline"
  Severity severity{Severity::Warning};  ///< default finding severity
  std::string_view summary;  ///< one line, for catalogs and --help
  /// Device-aware rules need a calibrated DeviceCostDb and are skipped
  /// when Options::db is null.
  bool needs_device{false};
};

/// Everything a rule may look at. `summary` is the shared one-traversal
/// analysis bundle (config tree, Table-I params, per-function partitions);
/// `db` is null unless the caller supplied a calibrated device.
struct Context {
  const Module& module;
  const AnalysisSummary& summary;
  const cost::DeviceCostDb* db{nullptr};
};

/// The reporting surface handed to a rule: stamps the rule's code (and
/// default severity, unless overridden) onto every finding.
class Reporter {
 public:
  Reporter(const RuleInfo& info, DiagBag& bag) : info_(info), bag_(bag) {}

  /// Reports a finding at the rule's default severity.
  void report(std::string message, SourceLoc loc = {}) {
    report(info_.severity, std::move(message), loc);
  }
  /// Reports a finding at an explicit severity (e.g. a rule that warns at
  /// a soft threshold and errors at a hard one).
  void report(Severity severity, std::string message, SourceLoc loc = {}) {
    Diag d{severity, std::move(message), loc, std::string(info_.code)};
    bag_.add(std::move(d));
  }

 private:
  const RuleInfo& info_;
  DiagBag& bag_;
};

/// One registered pass.
struct Rule {
  RuleInfo info;
  std::function<void(const Context&, Reporter&)> run;
};

/// The process-wide rule table. Built-in rules register from
/// src/ir/lint/rules_*.cpp at first use (same TU-anchoring discipline as
/// kernels::Registry, so a static library cannot dead-strip them).
class Registry {
 public:
  static const Registry& instance();

  void add(Rule rule);
  [[nodiscard]] const std::vector<Rule>& rules() const { return rules_; }
  [[nodiscard]] const Rule* find(std::string_view code) const;

 private:
  std::vector<Rule> rules_;
};

struct Options {
  /// Calibrated device database; null skips the needs_device rules.
  const cost::DeviceCostDb* db{nullptr};
};

/// The outcome of one lint run over one module.
struct LintReport {
  DiagBag findings;
  std::size_t rules_run{0};  ///< rules executed (device rules may be skipped)

  [[nodiscard]] std::size_t errors() const {
    return findings.count(Severity::Error);
  }
  [[nodiscard]] std::size_t warnings() const {
    return findings.count(Severity::Warning);
  }
  [[nodiscard]] std::size_t notes() const {
    return findings.count(Severity::Note);
  }
  [[nodiscard]] bool clean() const { return findings.empty(); }
};

/// Runs every registered (and applicable) rule over `module`.
/// Preconditions: the module verifies.
LintReport run_lint(const Module& module, const Options& options = {});

/// Exit-code policy for drivers: the lowest severity that fails a run.
enum class FailOn { Error, Warning };

/// True when `report` contains a finding at or above the threshold.
[[nodiscard]] bool fails(const LintReport& report, FailOn fail_on);

/// Human-readable rendering: a headline naming `subject` and the finding
/// counts, then one indented Diag::to_string line per finding.
[[nodiscard]] std::string format_lint(const LintReport& report,
                                      std::string_view subject);

/// Machine-readable rendering: one JSON object per design —
/// {"name", "clean", "findings": [...], "counts": {...}, "rules_run"}.
[[nodiscard]] std::string format_lint_json(const LintReport& report,
                                           std::string_view name);

/// The rule catalog (code, name, severity, summary), one line per rule —
/// `tytra-cc lint --rules`.
[[nodiscard]] std::string format_rules(const Registry& registry);

}  // namespace tytra::ir::lint
