#pragma once

// In-memory representation of a TyTra-IR module (paper §IV).
//
// A module has two components:
//  * the Manage-IR — memory objects (sources/sinks of streams; the
//    equivalent of arrays in main memory) and stream objects connecting a
//    streaming port of a processing element to a memory object, plus the
//    module-level execution metadata (NDRange global size, number of
//    kernel-instance repetitions, memory-execution form A/B/C);
//  * the Compute-IR — a hierarchy of functions with a parallelism keyword
//    each (`pipe`, `par`, `seq`, `comb`) whose bodies are SSA data-path
//    instructions, stream-offset declarations and calls.

#include <cstdint>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "tytra/ir/instr.hpp"
#include "tytra/ir/type.hpp"
#include "tytra/support/diag.hpp"

namespace tytra::ir {

// ---------------------------------------------------------------------------
// Manage-IR
// ---------------------------------------------------------------------------

/// OpenCL-style memory hierarchy levels (paper Fig. 4). The numeric values
/// are the address-space numbers used in the textual IR.
enum class AddrSpace : std::uint8_t {
  Private = 0,   ///< registers inside the PE
  Global = 1,    ///< device DRAM
  Local = 2,     ///< on-chip block RAM
  Constant = 3,  ///< constant memory (DRAM, read-only, cached on chip)
};

std::string_view addr_space_name(AddrSpace space);

/// Stream direction relative to the processing element.
enum class StreamDir : std::uint8_t { In, Out };

/// Streaming data-pattern model (paper §III-6): the index-access pattern of
/// a stream, which the empirical bandwidth model costs differently.
enum class AccessPattern : std::uint8_t { Contiguous, Strided };

/// Memory-execution model (paper §III-5, Fig. 6).
enum class ExecForm : std::uint8_t {
  A,  ///< every kernel-instance moves all NDRange data host<->device DRAM
  B,  ///< data moved to device DRAM once; iterations stream from DRAM
  C,  ///< NDRange data fits in on-chip local memory for all iterations
};

std::string_view exec_form_name(ExecForm form);

/// An array-like entity that can source or sink a stream.
struct MemObject {
  std::string name;          ///< e.g. "m_p"
  ScalarType elem;           ///< element type
  std::uint64_t size_words{0};
  AddrSpace space{AddrSpace::Global};
  tytra::SourceLoc loc;
};

/// Connects a PE streaming port to a memory object with a given pattern.
struct StreamObject {
  std::string name;          ///< e.g. "strobj_p"
  std::string memobj;        ///< name of the backing MemObject
  StreamDir dir{StreamDir::In};
  AccessPattern pattern{AccessPattern::Contiguous};
  std::uint64_t stride_words{1};  ///< stride for AccessPattern::Strided
  tytra::SourceLoc loc;
};

/// A top-level streaming port of the kernel, bound to a stream object.
/// Textual form (paper Fig. 12):
///   @main.p = addrSpace(1) ui18, !"istream", !"CONT", !0, !"strobj_p"
struct PortBinding {
  std::string name;          ///< port name without the "@main." prefix
  AddrSpace space{AddrSpace::Global};
  Type type;
  StreamDir dir{StreamDir::In};
  AccessPattern pattern{AccessPattern::Contiguous};
  std::int64_t init_offset{0};
  std::string streamobj;     ///< may be empty when no Manage-IR is given
  tytra::SourceLoc loc;
};

// ---------------------------------------------------------------------------
// Compute-IR
// ---------------------------------------------------------------------------

/// An operand of an instruction or call.
struct Operand {
  enum class Kind : std::uint8_t { Local, Global, ConstInt, ConstFloat };

  Kind kind{Kind::Local};
  std::string name;        ///< for Local (%x) / Global (@x)
  std::int64_t ival{0};    ///< for ConstInt
  double fval{0.0};        ///< for ConstFloat

  static Operand local(std::string n) { return {Kind::Local, std::move(n), 0, 0.0}; }
  static Operand global(std::string n) { return {Kind::Global, std::move(n), 0, 0.0}; }
  static Operand const_int(std::int64_t v) { return {Kind::ConstInt, {}, v, 0.0}; }
  static Operand const_float(double v) { return {Kind::ConstFloat, {}, 0, v}; }

  [[nodiscard]] bool is_value() const {
    return kind == Kind::Local || kind == Kind::Global;
  }
  [[nodiscard]] bool is_const() const { return !is_value(); }
  friend bool operator==(const Operand&, const Operand&) = default;
};

/// An SSA data-path instruction:  ui18 %1 = mul ui18 %a, %b
/// When `result_global` is true the result names a global accumulator and
/// the instruction is a reduction (paper Fig. 12 line 15).
struct Instr {
  Opcode op{Opcode::Add};
  Type type;
  std::string result;
  bool result_global{false};
  std::vector<Operand> args;
  tytra::SourceLoc loc;
};

/// A stream-offset declaration creating a shifted view of a stream
/// (paper Fig. 12 lines 6-9):  ui18 %pip1 = ui18 %p, !offset, !+1
struct OffsetDecl {
  Type type;
  std::string result;
  std::string base;       ///< the stream/parameter being offset
  std::int64_t offset{0};
  tytra::SourceLoc loc;
};

/// Parallelism keyword of a function (paper §IV): the pattern applied to
/// the computations it contains.
enum class FuncKind : std::uint8_t {
  Pipe,  ///< pipeline parallelism over work-items
  Par,   ///< thread parallelism: children execute concurrently
  Seq,   ///< sequential execution (one op at a time)
  Comb,  ///< single-cycle custom combinatorial block
};

std::string_view func_kind_name(FuncKind kind);
std::optional<FuncKind> func_kind_from_name(std::string_view name);

/// A call to another IR function, annotated with the callee's kind.
struct Call {
  std::string callee;
  std::vector<Operand> args;
  FuncKind kind_annot{FuncKind::Pipe};
  tytra::SourceLoc loc;
};

using BodyItem = std::variant<Instr, OffsetDecl, Call>;

struct Param {
  Type type;
  std::string name;
};

/// An IR function: the equivalent of an HDL module, but described at a
/// higher abstraction with an explicit parallelism keyword.
struct Function {
  std::string name;
  FuncKind kind{FuncKind::Pipe};
  std::vector<Param> params;
  std::vector<BodyItem> body;
  tytra::SourceLoc loc;

  [[nodiscard]] std::vector<const Instr*> instructions() const;
  [[nodiscard]] std::vector<const OffsetDecl*> offsets() const;
  [[nodiscard]] std::vector<const Call*> calls() const;
};

// ---------------------------------------------------------------------------
// Module
// ---------------------------------------------------------------------------

/// Module-level execution metadata (populated from `!key = value` lines).
struct ModuleMeta {
  std::uint64_t global_size{0};   ///< NGS: work-items in the NDRange
  std::uint32_t nki{1};           ///< kernel-instance repetitions
  ExecForm form{ExecForm::B};
  double freq_hz{0.0};            ///< FD; 0 = use the target device default
  std::uint32_t ii{1};            ///< initiation interval (cycles per streamed word)
};

struct Module {
  std::string name{"module"};
  ModuleMeta meta;
  std::vector<MemObject> memobjs;
  std::vector<StreamObject> streamobjs;
  std::vector<PortBinding> ports;
  std::vector<Function> functions;

  [[nodiscard]] const Function* find_function(std::string_view name) const;
  [[nodiscard]] Function* find_function(std::string_view name);
  [[nodiscard]] const MemObject* find_memobj(std::string_view name) const;
  [[nodiscard]] const StreamObject* find_streamobj(std::string_view name) const;
  [[nodiscard]] const PortBinding* find_port(std::string_view name) const;

  /// The entry function `@main`; nullptr when absent (verifier rejects).
  [[nodiscard]] const Function* entry() const { return find_function("main"); }

  [[nodiscard]] std::size_t input_port_count() const;
  [[nodiscard]] std::size_t output_port_count() const;
};

}  // namespace tytra::ir
