#pragma once

// Recursive-descent parser for the textual TyTra-IR.
//
// Grammar (comments with ';' allowed everywhere):
//
//   module     := { directive | memobj | streamobj | portbind | funcdef }
//   directive  := '!' ident '=' (constexpr | float | ident)
//                 recognized keys: ngs, nki, form (A|B|C), fd / freq, ii,
//                 name; plus user constants usable in constant expressions:
//                 any other key defines a symbolic constant, e.g.
//                 !ND1 = 100, and later directives / sizes / offsets may
//                 reference it: !ngs = ND1*ND1*ND1
//   memobj     := 'memobj' @name ident(space) type 'x' constexpr
//   streamobj  := 'stream' @name ('reads'|'writes') @mem
//                 [ 'pattern' ('cont' | 'strided' constexpr) ]
//   portbind   := @qual '=' 'addrSpace' '(' int ')' type ','
//                 '!' str(istream|ostream) ',' '!' str(CONT|STRIDED) ','
//                 '!' constexpr ',' '!' str(streamobj)    ; paper Fig. 12
//   funcdef    := 'define' 'void' @name '(' params? ')' kind '{' body '}'
//   kind       := 'pipe' | 'par' | 'seq' | 'comb'
//   params     := param { ',' param } ;  param := type %name
//   body       := { offset | instr | call }
//   offset     := type valname '=' type %base ',' '!offset' ',' '!' constexpr
//   constexpr  := ['+'|'-'] constterm { '*' constterm }
//   constterm  := int | ident          ; ident = previously defined constant
//   instr      := type valname '=' opcode type operand { ',' operand }
//   call       := 'call' @name '(' [ operand { ',' operand } ] ')' kind
//   operand    := %name | @name | ['-'] int | ['-'] float
//   valname    := %name | @name        ; '@' marks a global reduction target
//   type       := scalar | '<' int 'x' scalar '>'
//
// Address spaces: by number (0..3) — values outside the range are accepted
// with a warning and mapped to global, so that the exact text of the
// paper's figures (which uses `addrSpace(12)`) parses.

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "tytra/ir/module.hpp"
#include "tytra/support/diag.hpp"

namespace tytra::ir {

/// Knobs for a parse. `constants` pre-defines symbolic constants: a
/// `!key = value` directive whose (lowercased) key is present here keeps
/// the pre-defined value instead of the file's literal — the hook the
/// file-backed workload loader uses to re-dimension `!ND<k>`-parametric
/// modules (`--nd`) without editing the text.
struct ParseOptions {
  std::map<std::string, std::int64_t, std::less<>> constants;
};

struct ParseOutput {
  Module module;
  tytra::DiagBag warnings;
  /// User symbolic constants in definition order (keys lowercased,
  /// values after overrides) — how loaders discover a file's parameters.
  std::vector<std::pair<std::string, std::int64_t>> constants;
};

/// Parses a full module from IR text.
tytra::Result<ParseOutput> parse_module(std::string_view source);
tytra::Result<ParseOutput> parse_module(std::string_view source,
                                        const ParseOptions& options);

/// Convenience: parse and return just the module, aborting with the
/// diagnostic text on failure. For tests and examples working with known
/// good inputs.
Module parse_module_or_die(std::string_view source);

}  // namespace tytra::ir
