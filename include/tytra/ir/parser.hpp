#pragma once

// Recursive-descent parser for the textual TyTra-IR.
//
// Grammar (comments with ';' allowed everywhere):
//
//   module     := { directive | memobj | streamobj | portbind | funcdef }
//   directive  := '!' ident '=' (int | float | ident)
//                 recognized keys: ngs, nki, form (A|B|C), fd / freq, ii,
//                 name; plus user constants usable in offset expressions:
//                 any other key defines a symbolic constant, e.g.
//                 !ND1 = 100
//   memobj     := 'memobj' @name ident(space) type 'x' int
//   streamobj  := 'stream' @name ('reads'|'writes') @mem
//                 [ 'pattern' ('cont' | 'strided' int) ]
//   portbind   := @qual '=' 'addrSpace' '(' int ')' type ','
//                 '!' str(istream|ostream) ',' '!' str(CONT|STRIDED) ','
//                 '!' int ',' '!' str(streamobj)          ; paper Fig. 12
//   funcdef    := 'define' 'void' @name '(' params? ')' kind '{' body '}'
//   kind       := 'pipe' | 'par' | 'seq' | 'comb'
//   params     := param { ',' param } ;  param := type %name
//   body       := { offset | instr | call }
//   offset     := type valname '=' type %base ',' '!offset' ',' '!' offexpr
//   offexpr    := ['+'|'-'] offterm { '*' offterm } ;  offterm := int | ident
//   instr      := type valname '=' opcode type operand { ',' operand }
//   call       := 'call' @name '(' [ operand { ',' operand } ] ')' kind
//   operand    := %name | @name | ['-'] int | ['-'] float
//   valname    := %name | @name        ; '@' marks a global reduction target
//   type       := scalar | '<' int 'x' scalar '>'
//
// Address spaces: by number (0..3) — values outside the range are accepted
// with a warning and mapped to global, so that the exact text of the
// paper's figures (which uses `addrSpace(12)`) parses.

#include <string_view>

#include "tytra/ir/module.hpp"
#include "tytra/support/diag.hpp"

namespace tytra::ir {

struct ParseOutput {
  Module module;
  tytra::DiagBag warnings;
};

/// Parses a full module from IR text.
tytra::Result<ParseOutput> parse_module(std::string_view source);

/// Convenience: parse and return just the module, aborting with the
/// diagnostic text on failure. For tests and examples working with known
/// good inputs.
Module parse_module_or_die(std::string_view source);

}  // namespace tytra::ir
