#pragma once

// Semantic verification of a TyTra-IR module. Checks, among others:
//  * an @main entry function exists and takes no parameters;
//  * SSA discipline: every %name defined exactly once per function and
//    defined before use; globals only written by reduction instructions;
//  * types: operand/opcode compatibility (float ops on float types only,
//    integer-only ops rejected on floats), arity;
//  * offsets apply to stream parameters of `pipe` functions only;
//  * function-kind composition rules of the design-space model (Fig. 7):
//      pipe  - instructions, offsets, calls to pipe/comb children
//      par   - calls only (pipe/seq/par children)
//      seq   - instructions and calls, executed one at a time
//      comb  - instructions only (single-cycle block: no div/sqrt/exp)
//  * calls: callee exists, kind annotation matches the callee's kind,
//    argument count matches the callee's parameter list;
//  * Manage-IR: stream objects reference existing memory objects; port
//    bindings reference existing stream objects (when a Manage-IR is
//    present); NDRange sizes are consistent with memory object sizes.

#include "tytra/ir/module.hpp"
#include "tytra/support/diag.hpp"

namespace tytra::ir {

/// Verifies the module; returns all diagnostics found (errors + warnings).
tytra::DiagBag verify(const Module& module);

/// Convenience wrapper: true when `verify` reports no errors.
bool verify_ok(const Module& module);

}  // namespace tytra::ir
