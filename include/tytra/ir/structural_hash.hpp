#pragma once

// Streaming structural hashing of TyTra-IR modules. The walk feeds every
// field that participates in the printed textual form (and nothing else —
// source locations are excluded) directly into a HashBuilder, so hashing
// a module costs one traversal and zero heap allocations, unlike hashing
// `print_module(m)` which materializes the whole text first.
//
// Invariant (tested): two modules with equal printed IR hash equally, and
// any difference the printer would show — a port, an offset, a metadata
// field, an instruction — changes the hash. One deliberate refinement:
// a stream object's stride is hashed even when its pattern is contiguous
// (the printer omits it there, but the cost model can still read it
// through a strided port), so the digest is never coarser than what the
// models consume; for every parser- or builder-produced module the two
// identities coincide exactly. The digest is 128 bits wide (two
// independently seeded 64-bit walks) so memoization layers can treat
// digest equality as design identity without a byte-level fallback.

#include <cstdint>

#include "tytra/ir/module.hpp"
#include "tytra/support/hash.hpp"

namespace tytra::ir {

/// A 128-bit structural digest: `key` indexes, `check` guards against
/// 64-bit collisions. Both halves hash the same field stream under
/// different seeds.
struct StructuralDigest {
  std::uint64_t key{0};
  std::uint64_t check{0};

  friend bool operator==(const StructuralDigest&,
                         const StructuralDigest&) = default;
};

/// Streams the module's structure into an existing builder (for callers
/// composing a wider key, e.g. design + device identity).
void hash_module(HashBuilder& h, const Module& module);

/// 64-bit structural hash of the module (one walk).
std::uint64_t structural_hash(const Module& module);

/// 128-bit structural digest of the module (one walk feeding both halves).
StructuralDigest structural_digest(const Module& module);

}  // namespace tytra::ir
