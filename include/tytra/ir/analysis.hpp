#pragma once

// Static analyses over TyTra-IR that feed the cost model:
//  * configuration-tree extraction (paper Fig. 8) and classification into
//    the design-space abstraction's configuration classes (Fig. 5);
//  * ASAP scheduling of a function's SSA dataflow graph, giving pipeline
//    stage assignment and the kernel pipeline depth KPD;
//  * extraction of the Table-I parameters that depend on the program and
//    the design variant (NGS, NWPT, NKI, Noff, KPD, NTO, NI, KNL, DV).

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "tytra/ir/module.hpp"

namespace tytra::ir {

// ---------------------------------------------------------------------------
// Configuration tree (Fig. 8)
// ---------------------------------------------------------------------------

struct ConfigNode {
  const Function* func{nullptr};
  FuncKind kind{FuncKind::Pipe};
  std::vector<ConfigNode> children;

  [[nodiscard]] std::size_t leaf_count() const;
};

/// Builds the configuration tree rooted at @main. The entry function itself
/// is elided when it merely wraps a single call.
/// Preconditions: module verifies (entry exists, no call cycles).
ConfigNode build_config_tree(const Module& module);

/// Renders the tree as an indented listing (for reports and tests).
std::string format_config_tree(const ConfigNode& root);

/// The design-space configuration classes of Fig. 5.
enum class ConfigClass : std::uint8_t {
  C1,  ///< replicated pipeline lanes (par of pipes)
  C2,  ///< single kernel pipeline
  C3,  ///< vectorized lanes (DV > 1)
  C4,  ///< scalar instruction processor (seq)
  C5,  ///< vector instruction processor (seq with DV > 1)
};

std::string_view config_class_name(ConfigClass c);

/// Classifies the module's architecture.
ConfigClass classify_config(const Module& module);

// ---------------------------------------------------------------------------
// Pipeline scheduling
// ---------------------------------------------------------------------------

/// Stage assignment of one function's dataflow graph. Stages are in cycles:
/// a value produced by an instruction whose operands are ready at cycle s
/// with latency L becomes available at s + L.
struct FunctionSchedule {
  /// Availability cycle per value name (params/offsets ready at 0).
  std::map<std::string, int> ready_at;
  /// Issue cycle per instruction (parallel to Function::instructions()).
  std::vector<int> issue_at;
  /// Total pipeline depth in cycles of this function (critical path).
  int depth{0};
};

/// ASAP-schedules `function` within `module` (calls to pipe children add
/// the child's depth sequentially — a coarse-grained pipeline; comb calls
/// add a single stage; par children take the max).
/// Preconditions: module verifies.
FunctionSchedule schedule_function(const Module& module, const Function& function);

/// Pipeline depth (KPD) of the whole design: the depth of the processing
/// element reached from @main.
int pipeline_depth(const Module& module);

// ---------------------------------------------------------------------------
// Table-I parameter extraction
// ---------------------------------------------------------------------------

/// The program/design-variant-dependent parameters of the EKIT expressions
/// (paper Table I), as evaluated by "Parsing IR".
struct DesignParams {
  std::uint64_t ngs{0};   ///< NGS: global size of work-items in the NDRange
  double nwpt{0};         ///< NWPT: words per tuple per work-item
  std::uint32_t nki{1};   ///< NKI: kernel-instance repetitions
  std::uint64_t noff{0};  ///< Noff: maximum offset in a stream (words)
  int kpd{0};             ///< KPD: pipeline depth of kernel (cycles)
  double fd{0};           ///< FD: operating frequency (Hz); 0 = target default
  double nto{1};          ///< NTO: cycles per instruction (II for pipes)
  double ni{1};           ///< NI: instructions per PE
  std::uint32_t knl{1};   ///< KNL: parallel kernel lanes
  std::uint32_t dv{1};    ///< DV: degree of vectorization per lane
  ExecForm form{ExecForm::B};
};

/// Extracts all design parameters from the IR.
/// Preconditions: module verifies.
DesignParams extract_params(const Module& module);

/// Total instruction count reachable from @main, weighted per PE (lane):
/// instructions inside a par's children count once per distinct child body.
double instructions_per_pe(const Module& module);

/// Number of parallel kernel lanes (pipe-typed children of the top par, or
/// 1 when the design is a single pipeline).
std::uint32_t lane_count(const Module& module);

// ---------------------------------------------------------------------------
// One-traversal analysis summary
// ---------------------------------------------------------------------------

/// Everything the cost pipeline needs about one function, computed once:
/// the body partition (instructions / offsets / calls), the ASAP schedule
/// (with child depths memoized instead of re-derived per call site), and
/// the aggregate counts the Table-I extraction reads.
struct FunctionSummary {
  const Function* func{nullptr};
  FunctionSchedule schedule;
  std::vector<const Instr*> instrs;
  std::vector<const OffsetDecl*> offsets;
  std::vector<const Call*> calls;
  /// Instructions reachable through this function's call tree, counting
  /// once per call site (replicated lanes count per lane).
  double instr_count_reachable{0};
  /// Sum of op latencies over this function's own instructions.
  double latency_sum{0};
};

/// A port with its Manage-IR links resolved: the stream object's stride
/// and the backing memory object's address range, looked up once instead
/// of per cost-model stage.
struct PortSummary {
  const PortBinding* port{nullptr};
  std::uint64_t stride_words{1};
  /// Backing memory-object size in words; the NDRange size when the port
  /// has no resolvable memory object.
  std::uint64_t addr_range_words{0};
};

/// The single-traversal analysis bundle: everything `classify_config`,
/// `extract_params`, the resource model, the throughput model and the
/// timing simulator would otherwise each re-derive from the module.
/// Summaries hold pointers into the module they were built from — the
/// module must outlive the summary and stay unmodified.
struct AnalysisSummary {
  const Module* module{nullptr};
  ConfigNode tree;
  ConfigClass config{ConfigClass::C2};
  DesignParams params;
  std::vector<FunctionSummary> functions;  ///< parallel to module->functions
  std::vector<PortSummary> ports;          ///< parallel to module->ports
  std::size_t offset_count{0};             ///< offset decls over all functions

  /// Summary of the function named `name` (first match, like
  /// Module::find_function); nullptr when absent.
  [[nodiscard]] const FunctionSummary* find(std::string_view name) const;
  /// Summary of the entry function @main; nullptr when absent.
  [[nodiscard]] const FunctionSummary* entry() const { return find("main"); }
};

/// Computes the full analysis summary in one pass over the module: each
/// function's body is partitioned and scheduled exactly once (child
/// pipeline depths are memoized), the configuration tree is built once,
/// and every port's stream/memory lookup is resolved once. All derived
/// values are bit-identical to the standalone functions above — the
/// legacy entry points are thin wrappers over this.
/// Preconditions: module verifies.
AnalysisSummary summarize(const Module& module);

}  // namespace tytra::ir
