#pragma once

// The TyTra-IR instruction set: SSA data-path operations executed by a
// processing element. The set follows the LLVM-IR arithmetic core with the
// additions the paper's kernels need (mac for reductions, sqrt/exp for
// LavaMD-style physics, select/min/max for stencil clamping).

#include <cstdint>
#include <optional>
#include <string_view>

#include "tytra/ir/type.hpp"

namespace tytra::ir {

enum class Opcode : std::uint8_t {
  Add, Sub, Mul, Div, Rem,
  Shl, LShr, AShr,
  And, Or, Xor, Not,
  CmpEq, CmpNe, CmpLt, CmpLe, CmpGt, CmpGe,
  Select,
  Min, Max, Abs, Neg,
  Mac,    ///< multiply-accumulate: r = a*b + c
  Sqrt, Exp, Recip,
  Mov,    ///< register move / pass-through stage
};

/// Number of opcodes (for iteration in tables and tests).
inline constexpr int kNumOpcodes = static_cast<int>(Opcode::Mov) + 1;

/// Static properties of an opcode, shared by the verifier, the fabric
/// synthesizer, the cost model and the scheduler.
struct OpInfo {
  std::string_view name;  ///< textual mnemonic in the IR
  int arity;              ///< number of SSA operands
  bool integer_ok;        ///< defined for integer/fixed operand types
  bool float_ok;          ///< defined for float operand types
  bool commutative;
  bool result_is_bool;    ///< comparisons produce ui1 regardless of operand type
};

/// Returns the static properties of `op`.
const OpInfo& op_info(Opcode op);

/// Looks up an opcode by mnemonic. Accepts LLVM-style float aliases
/// ("fadd" -> Add, "fmul" -> Mul, ...). Returns nullopt if unknown.
std::optional<Opcode> opcode_from_name(std::string_view name);

/// Mnemonic of `op` (canonical, not the float alias).
std::string_view opcode_name(Opcode op);

/// Pipeline latency in clock cycles of the primitive core implementing
/// `op` at the given operand type. This is the *architectural* latency
/// used for scheduling and pipeline-depth (KPD) computation; the fabric
/// module attaches resource costs separately.
int op_latency(Opcode op, const ScalarType& type);

/// True for opcodes whose hardware realization is combinatorial at small
/// widths (wire-level ops folded into neighbouring stages).
bool op_is_free(Opcode op);

}  // namespace tytra::ir
