#pragma once

// Reusable lowering scratch. Building a Module heap-allocates dozens of
// small vectors — one per instruction's operand list, one per function
// body, three per port — and a variant sweep repeats that for every
// design it lowers. A BuildArena recycles exactly those buffers: the
// builders draw their vectors from the arena's free lists instead of the
// allocator, and `recycle(Module&&)` walks a finished module and returns
// every buffer (including each instruction's operand vector) to the
// pools, so steady-state lowering reuses capacity instead of paying
// malloc/free per variant.
//
// The arena is deliberately NOT thread-safe: it models per-worker scratch
// (each DSE worker owns one), which is what keeps it free of any
// synchronization. A builder given a null arena behaves exactly as
// before — the arena is an optimization, never a semantic dependency;
// the produced Module owns plain std::vectors either way and outlives
// the arena freely (recycling is the caller's opt-in, not a lifetime
// requirement).

#include <utility>
#include <vector>

#include "tytra/ir/module.hpp"

namespace tytra::ir {

class BuildArena {
 public:
  BuildArena() = default;
  // Pools are per-worker scratch; copying one would duplicate capacity
  // for no benefit, so the arena is move-only.
  BuildArena(const BuildArena&) = delete;
  BuildArena& operator=(const BuildArena&) = delete;
  BuildArena(BuildArena&&) = default;
  BuildArena& operator=(BuildArena&&) = default;

  [[nodiscard]] std::vector<Operand> take_operands() { return take(operands_); }
  [[nodiscard]] std::vector<BodyItem> take_body() { return take(bodies_); }
  [[nodiscard]] std::vector<Param> take_params() { return take(params_); }
  [[nodiscard]] std::vector<Function> take_functions() {
    return take(functions_);
  }
  [[nodiscard]] std::vector<MemObject> take_memobjs() { return take(memobjs_); }
  [[nodiscard]] std::vector<StreamObject> take_streamobjs() {
    return take(streamobjs_);
  }
  [[nodiscard]] std::vector<PortBinding> take_ports() { return take(ports_); }

  /// Returns a finished module's buffers to the pools: every function's
  /// params and body, every instruction's and call's operand vector, and
  /// the module-level Manage-IR vectors. The module is consumed.
  void recycle(Module&& module);

  /// Returns a detached function's buffers (for callers that build
  /// functions they never add to a module).
  void recycle(Function&& function);

 private:
  /// Per-pool retention cap. Pools drain through take() only when the
  /// builders actually draw from this arena; a caller that recycles
  /// modules produced without it (e.g. a sweep through the key-less
  /// FnLowerer shim, whose lowering ignores the arena) would otherwise
  /// grow the pools by one module's worth of vectors per variant,
  /// unbounded. Past the cap, put() drops the buffer — i.e. frees it,
  /// exactly what a no-arena build would have done. The cap comfortably
  /// exceeds the vector count of the widest built-in module, so balanced
  /// take/put cycles never hit it.
  static constexpr std::size_t kMaxPoolVectors = 1024;

  template <typename T>
  [[nodiscard]] std::vector<T> take(std::vector<std::vector<T>>& pool) {
    if (pool.empty()) return {};
    std::vector<T> v = std::move(pool.back());
    pool.pop_back();
    return v;  // already cleared by put()
  }

  template <typename T>
  void put(std::vector<std::vector<T>>& pool, std::vector<T>&& v) {
    if (v.capacity() == 0 || pool.size() >= kMaxPoolVectors) return;
    v.clear();
    pool.push_back(std::move(v));
  }

  void harvest(Function& function);

  std::vector<std::vector<Operand>> operands_;
  std::vector<std::vector<BodyItem>> bodies_;
  std::vector<std::vector<Param>> params_;
  std::vector<std::vector<Function>> functions_;
  std::vector<std::vector<MemObject>> memobjs_;
  std::vector<std::vector<StreamObject>> streamobjs_;
  std::vector<std::vector<PortBinding>> ports_;
};

}  // namespace tytra::ir
