#pragma once

// The TyTra-IR type system. The IR is strongly and statically typed
// (paper §IV): scalar integer/float/fixed-point types of arbitrary
// bit-width in the LLVM style (`ui18`, `i32`, `f32`, `fx16.8`), optionally
// vectorized (`<4 x ui18>`) to express the degree of vectorization DV of
// the design-space model.

#include <cstdint>
#include <string>

#include "tytra/support/diag.hpp"

namespace tytra::ir {

enum class ScalarKind : std::uint8_t {
  UInt,   ///< unsigned integer, e.g. ui18
  SInt,   ///< signed integer, e.g. i32
  Float,  ///< IEEE-ish float, e.g. f32 / f64
  Fixed,  ///< fixed point, e.g. fx16.8 (16 total bits, 8 fractional)
};

/// A scalar element type.
struct ScalarType {
  ScalarKind kind{ScalarKind::UInt};
  std::uint16_t bits{32};
  std::uint16_t frac{0};  ///< fractional bits; only meaningful for Fixed

  friend bool operator==(const ScalarType&, const ScalarType&) = default;

  [[nodiscard]] bool is_integer() const {
    return kind == ScalarKind::UInt || kind == ScalarKind::SInt;
  }
  [[nodiscard]] bool is_float() const { return kind == ScalarKind::Float; }

  [[nodiscard]] std::string to_string() const;

  static ScalarType uint(std::uint16_t bits) { return {ScalarKind::UInt, bits, 0}; }
  static ScalarType sint(std::uint16_t bits) { return {ScalarKind::SInt, bits, 0}; }
  static ScalarType f32() { return {ScalarKind::Float, 32, 0}; }
  static ScalarType f64() { return {ScalarKind::Float, 64, 0}; }
  static ScalarType fixed(std::uint16_t bits, std::uint16_t frac) {
    return {ScalarKind::Fixed, bits, frac};
  }
};

/// A (possibly vectorized) IR value type. `lanes > 1` expresses the degree
/// of vectorization DV per kernel lane (Table I).
struct Type {
  ScalarType scalar;
  std::uint16_t lanes{1};

  friend bool operator==(const Type&, const Type&) = default;

  [[nodiscard]] std::uint32_t total_bits() const {
    return static_cast<std::uint32_t>(scalar.bits) * lanes;
  }
  [[nodiscard]] std::string to_string() const;

  static Type scalar_of(ScalarType s) { return {s, 1}; }
  static Type vector_of(ScalarType s, std::uint16_t lanes) { return {s, lanes}; }
};

/// Parses a scalar type token such as "ui18", "i32", "f32", "fx16.8".
tytra::Result<ScalarType> parse_scalar_type(std::string_view text);

}  // namespace tytra::ir
