#pragma once

// A minimal JSON value type and recursive-descent parser — the request
// side of the daemon's wire protocol (support/framing.hpp). The engine
// has always *rendered* JSON (dse::format_*_json); tytra-dsed must also
// *read* it, and the container image bakes in no JSON library, so this
// is the smallest parser that round-trips everything the renderers emit:
// objects, arrays, strings (with \uXXXX escapes), doubles, bools, null.
//
// Deliberately not a general-purpose library: no DOM mutation helpers,
// no serialization (the renderers own that), no streaming. Strictness
// follows RFC 8259 where it matters for a network-facing daemon —
// depth-limited nesting (a 10 kB frame of '[' must not recurse the
// stack away), duplicate keys keep the last value, trailing garbage is
// an error — and the parse result is a structured tytra::Result, never
// an exception, because every malformed frame is expected input.

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "tytra/support/diag.hpp"

namespace tytra::json {

class Value;
using Member = std::pair<std::string, Value>;

/// One JSON value. A tagged union over the six JSON kinds; numbers are
/// doubles (the renderers emit nothing wider — u64 counts round-trip
/// exactly up to 2^53, far beyond any protocol field).
class Value {
 public:
  enum class Kind { Null, Bool, Number, String, Array, Object };

  Value() = default;
  explicit Value(bool b) : kind_(Kind::Bool), bool_(b) {}
  explicit Value(double n) : kind_(Kind::Number), num_(n) {}
  explicit Value(std::string s) : kind_(Kind::String), str_(std::move(s)) {}
  static Value array(std::vector<Value> elems);
  static Value object(std::vector<Member> members);

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool is_null() const { return kind_ == Kind::Null; }
  [[nodiscard]] bool is_bool() const { return kind_ == Kind::Bool; }
  [[nodiscard]] bool is_number() const { return kind_ == Kind::Number; }
  [[nodiscard]] bool is_string() const { return kind_ == Kind::String; }
  [[nodiscard]] bool is_array() const { return kind_ == Kind::Array; }
  [[nodiscard]] bool is_object() const { return kind_ == Kind::Object; }

  /// Kind-checked accessors: the wrong kind yields the type's zero value
  /// (false / 0.0 / empty), never UB — protocol handlers probe freely
  /// and validate with the typed helpers below.
  [[nodiscard]] bool boolean() const { return is_bool() && bool_; }
  [[nodiscard]] double number() const { return is_number() ? num_ : 0.0; }
  [[nodiscard]] const std::string& str() const { return str_; }
  [[nodiscard]] const std::vector<Value>& elements() const { return elems_; }
  [[nodiscard]] const std::vector<Member>& members() const { return members_; }

  /// Object member lookup; null when this is not an object or the key is
  /// absent. Duplicate keys resolved to the last occurrence (RFC 8259
  /// leaves it open; last-wins matches every mainstream parser).
  [[nodiscard]] const Value* find(std::string_view key) const;

  /// Typed member helpers: nullopt when absent or of the wrong kind.
  [[nodiscard]] std::optional<std::string> get_string(
      std::string_view key) const;
  [[nodiscard]] std::optional<double> get_number(std::string_view key) const;
  [[nodiscard]] std::optional<bool> get_bool(std::string_view key) const;
  /// Member as a non-negative integer that fits u32 (protocol counts);
  /// nullopt for absent, non-numeric, negative, fractional or oversized.
  [[nodiscard]] std::optional<std::uint32_t> get_u32(
      std::string_view key) const;

 private:
  Kind kind_{Kind::Null};
  bool bool_{false};
  double num_{0};
  std::string str_;
  std::vector<Value> elems_;
  std::vector<Member> members_;
};

/// Parses exactly one JSON document from `text` (leading/trailing
/// whitespace allowed, anything else after the value is an error). The
/// error diagnostic carries the byte offset of the first defect.
Result<Value> parse(std::string_view text);

/// Escapes `s` for embedding in a JSON string literal — the same
/// escaping rules as the dse renderers ('"', '\\', \n, \t, other control
/// bytes as \u00XX). Exposed here so protocol code composing frames by
/// hand agrees byte-for-byte with what the parser accepts.
std::string escape(std::string_view s);

}  // namespace tytra::json
