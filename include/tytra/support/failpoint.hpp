#pragma once

// Named fault-injection points ("failpoints") for exercising the
// engine's failure domains. Every risky seam — binio reads/writes,
// snapshot save/load, calibration measurement, cache inserts, pool task
// execution, file-workload parsing — hosts one named point; tests and CI
// arm them to prove that a fault in any seam is contained, reported and
// recovered from, instead of hoping real I/O errors show up on demand.
//
// Zero overhead when disabled is the design constraint: a production
// process pays exactly one relaxed atomic load per failpoint site
// (`armed()`), nothing else — no map lookup, no string hashing, no lock.
// Only armed processes (tests, the CI sweep) take the slow path.
//
// Arming:
//   * environment: TYTRA_FAILPOINTS="name=PCT%[,name=PCT%...]" parsed
//     once at startup (the '%' is optional). A malformed spec or an
//     unknown name logs one warning and arms nothing — a typo must not
//     silently run a fault-free "fault" test.
//   * programmatic: arm(name, percent) / reset(), or the Scoped RAII
//     guard for tests.
//
// Firing is deterministic, not random: a point armed at PCT fires on
// hit n (0-based) iff ((n+1)*PCT)/100 > (n*PCT)/100 — exactly PCT of
// every 100 consecutive hits, same hits every run, so "50%" in a test
// means the 2nd, 4th, ... calls, reproducibly. 100% fires always.
//
// Two firing styles match the two error idioms in the codebase:
// `fire(name)` returns true for Result-returning seams (the caller
// builds its own Diag), `maybe_throw(name)` throws InjectedFault for
// value-returning seams.

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace tytra::failpoint {

/// What maybe_throw() raises when an armed point fires. Derives from
/// std::runtime_error so every existing catch/containment path treats an
/// injected fault exactly like a real one.
class InjectedFault : public std::runtime_error {
 public:
  explicit InjectedFault(std::string_view point)
      : std::runtime_error("injected fault at failpoint '" +
                           std::string(point) + "'"),
        point_(point) {}
  /// The failpoint that fired.
  [[nodiscard]] const std::string& point() const { return point_; }

 private:
  std::string point_;
};

/// True when at least one failpoint is armed — one relaxed atomic load.
/// Every site guards its slow path with this, so a disarmed process pays
/// nothing else.
bool armed();

/// True when `name` is armed and fires at this hit (see the pacing rule
/// above). False immediately when nothing is armed.
bool fire(std::string_view name);

/// Throws InjectedFault when `name` fires.
void maybe_throw(std::string_view name);

/// Arms `name` at `percent` (clamped to 100); 0 disarms the point and
/// forgets its hit count. Unknown names are allowed here (tests may
/// declare ad-hoc points); the env-spec path is strict instead.
void arm(std::string_view name, unsigned percent);

/// Disarms every point and zeroes all hit/fired counts.
void reset();

/// Parses a TYTRA_FAILPOINTS-style spec and arms the points. Strict:
/// returns false — arming nothing — on a malformed entry or a name not
/// in known_names().
bool arm_from_spec(std::string_view spec);

/// Every failpoint name compiled into the engine, for sweeps and for
/// validating env specs.
const std::vector<std::string>& known_names();

/// Total fires since the last reset() (all points).
std::uint64_t fired_count();

/// RAII arm/disarm for tests: arms on construction, disarms (percent 0)
/// on destruction.
class Scoped {
 public:
  Scoped(std::string_view name, unsigned percent) : name_(name) {
    arm(name_, percent);
  }
  ~Scoped() { arm(name_, 0); }
  Scoped(const Scoped&) = delete;
  Scoped& operator=(const Scoped&) = delete;

 private:
  std::string name_;
};

}  // namespace tytra::failpoint
