#pragma once

// Clang Thread Safety Analysis annotations for the engine's concurrent
// state (-Wthread-safety). Under Clang the macros expand to the
// capability attributes, letting the compiler prove at build time that
// every access to a guarded member holds the right mutex; under any
// other compiler they expand to nothing. std::mutex itself carries no
// capability attribute, so tytra::Mutex wraps it (same interface, zero
// overhead) together with annotated scoped-lock types.
//
// The CI clang job builds with -Wthread-safety -Werror=thread-safety;
// GCC builds see plain std::mutex semantics.

#include <mutex>

#if defined(__clang__) && (!defined(SWIG))
#define TYTRA_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define TYTRA_THREAD_ANNOTATION(x)
#endif

#define TYTRA_CAPABILITY(x) TYTRA_THREAD_ANNOTATION(capability(x))
#define TYTRA_SCOPED_CAPABILITY TYTRA_THREAD_ANNOTATION(scoped_lockable)
#define TYTRA_GUARDED_BY(x) TYTRA_THREAD_ANNOTATION(guarded_by(x))
#define TYTRA_PT_GUARDED_BY(x) TYTRA_THREAD_ANNOTATION(pt_guarded_by(x))
#define TYTRA_REQUIRES(...) \
  TYTRA_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define TYTRA_ACQUIRE(...) \
  TYTRA_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define TYTRA_RELEASE(...) \
  TYTRA_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define TYTRA_TRY_ACQUIRE(...) \
  TYTRA_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define TYTRA_EXCLUDES(...) TYTRA_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define TYTRA_ASSERT_CAPABILITY(x) TYTRA_THREAD_ANNOTATION(assert_capability(x))
#define TYTRA_RETURN_CAPABILITY(x) TYTRA_THREAD_ANNOTATION(lock_returned(x))
#define TYTRA_NO_THREAD_SAFETY_ANALYSIS \
  TYTRA_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace tytra {

/// std::mutex with the `capability` attribute, so members can be declared
/// TYTRA_GUARDED_BY(mu_) and functions TYTRA_REQUIRES(mu_).
class TYTRA_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() TYTRA_ACQUIRE() { mu_.lock(); }
  void unlock() TYTRA_RELEASE() { mu_.unlock(); }
  bool try_lock() TYTRA_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// The wrapped mutex, for interop that predates the annotations. Code
  /// locking through this escapes the analysis — prefer the lock types
  /// below.
  std::mutex& native() TYTRA_RETURN_CAPABILITY(this) { return mu_; }

 private:
  std::mutex mu_;
};

/// Annotated std::lock_guard equivalent over tytra::Mutex.
class TYTRA_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) TYTRA_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() TYTRA_RELEASE() { mu_.unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

// Condition-variable waits: Mutex is BasicLockable, so a
// std::condition_variable_any waits on it directly —
//   MutexLock lock(mu);
//   while (!ready) cv.wait(mu);
// The unlock/relock inside wait() happens in a system header (its
// diagnostics are suppressed), and the analysis keeps treating the
// capability as held across the wait, which matches the predicate-loop
// re-check discipline.

}  // namespace tytra
