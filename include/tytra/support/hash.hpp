#pragma once

// Canonical 64-bit hashing for memoization keys. The mixing is
// splitmix64-style (the same constants as support/rng.hpp) so keys are
// stable across platforms and runs — a cache persisted by one sweep must
// hit from the next. Doubles are hashed by bit pattern after normalizing
// -0.0 to +0.0 so semantically equal inputs key identically.

#include <bit>
#include <cstdint>
#include <string_view>

#include "tytra/support/rng.hpp"

namespace tytra {

/// Mixes one 64-bit word into a hash state with full avalanche.
constexpr std::uint64_t hash_mix(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebULL;
  return h ^ (h >> 31);
}

/// Incrementally builds a canonical 64-bit key from typed fields.
class HashBuilder {
 public:
  HashBuilder() = default;
  /// Seeded builder: two builders with different seeds walking the same
  /// field stream yield independent hashes (used for wide digests whose
  /// halves must not collide together).
  explicit constexpr HashBuilder(std::uint64_t seed) : state_(seed) {}

  HashBuilder& u64(std::uint64_t v) {
    state_ = hash_mix(state_, v);
    return *this;
  }
  HashBuilder& i64(std::int64_t v) { return u64(static_cast<std::uint64_t>(v)); }
  HashBuilder& f64(double v) {
    if (v == 0.0) v = 0.0;  // collapse -0.0 onto +0.0
    return u64(std::bit_cast<std::uint64_t>(v));
  }
  HashBuilder& str(std::string_view s) { return u64(fnv1a(s)); }

  [[nodiscard]] std::uint64_t value() const { return state_; }

 private:
  std::uint64_t state_{0xcbf29ce484222325ULL};
};

}  // namespace tytra
