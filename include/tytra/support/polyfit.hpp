#pragma once

// Least-squares curve fitting used to derive the resource-cost laws of the
// paper's Fig. 9: polynomial trend-lines (e.g. ALUTs of an integer divider
// as a quadratic in bit-width) and piecewise-linear laws with points of
// discontinuity (e.g. DSP blocks of a multiplier).

#include <cstddef>
#include <span>
#include <vector>

namespace tytra {

/// A dense polynomial p(x) = c0 + c1*x + c2*x^2 + ...
class Polynomial {
 public:
  Polynomial() = default;
  explicit Polynomial(std::vector<double> coeffs) : coeffs_(std::move(coeffs)) {}

  /// Least-squares fit of a polynomial of the given degree through the
  /// sample points. Requires xs.size() == ys.size() and at least degree+1
  /// samples; throws std::invalid_argument otherwise.
  static Polynomial fit(std::span<const double> xs, std::span<const double> ys,
                        int degree);

  [[nodiscard]] double eval(double x) const;
  [[nodiscard]] int degree() const {
    return coeffs_.empty() ? -1 : static_cast<int>(coeffs_.size()) - 1;
  }
  [[nodiscard]] const std::vector<double>& coeffs() const { return coeffs_; }

  /// Root-mean-square error of this polynomial over the given samples.
  [[nodiscard]] double rmse(std::span<const double> xs,
                            std::span<const double> ys) const;

 private:
  std::vector<double> coeffs_;
};

/// Piecewise-linear model over sorted knots; evaluation interpolates
/// between knots and clamps slope-extrapolates beyond the ends.
class PiecewiseLinear {
 public:
  struct Knot {
    double x;
    double y;
  };

  PiecewiseLinear() = default;
  /// Knots must be sorted by strictly increasing x (throws otherwise).
  explicit PiecewiseLinear(std::vector<Knot> knots);

  /// Builds the model directly through all sample points (after sorting and
  /// deduplicating x). This is the "empirical table" form used for
  /// bandwidth models.
  static PiecewiseLinear through_points(std::span<const double> xs,
                                        std::span<const double> ys);

  [[nodiscard]] double eval(double x) const;
  [[nodiscard]] const std::vector<Knot>& knots() const { return knots_; }
  [[nodiscard]] bool empty() const { return knots_.empty(); }

 private:
  std::vector<Knot> knots_;
};

/// A step function: value is constant between breakpoints, jumping at each
/// breakpoint. Models discrete resource counts such as DSP blocks vs
/// bit-width ("piece-wise-linear behaviour ... with clearly identifiable
/// points of discontinuity", Fig. 9).
class StepModel {
 public:
  struct Step {
    double from_x;  ///< This value applies for x >= from_x (until next step).
    double value;
  };

  StepModel() = default;
  explicit StepModel(std::vector<Step> steps);

  /// Infers the step structure from samples: consecutive samples with equal
  /// y are merged into one plateau. Samples must be sorted by x.
  static StepModel from_samples(std::span<const double> xs,
                                std::span<const double> ys);

  [[nodiscard]] double eval(double x) const;
  [[nodiscard]] const std::vector<Step>& steps() const { return steps_; }
  /// The x positions where the value jumps (excluding the initial plateau).
  [[nodiscard]] std::vector<double> discontinuities() const;

 private:
  std::vector<Step> steps_;
};

/// Solves the dense linear system A*x = b (row-major n x n matrix) with
/// Gaussian elimination and partial pivoting. Throws std::invalid_argument
/// if the system is singular to working precision.
std::vector<double> solve_linear_system(std::vector<double> a,
                                        std::vector<double> b, std::size_t n);

}  // namespace tytra
