#pragma once

// Length-prefixed frame I/O — the byte layer of the tytra-dsed wire
// protocol. One frame is a 4-byte little-endian payload length followed
// by exactly that many payload bytes (UTF-8 JSON at the protocol layer;
// this layer does not care). The prefix makes message boundaries
// explicit on a stream socket: a reader never has to scan for
// delimiters, and a slow or chunked sender costs nothing but another
// read() loop iteration.
//
// Failure model, in the spirit of support/binio.hpp: every defect is
// detected and named, nothing hangs. A length over kMaxFrameBytes is
// rejected before any payload byte is read (a garbage prefix must not
// make the daemon try to allocate 4 GB), a stream that ends mid-frame
// is a TruncatedFrame-style error, and a clean EOF *between* frames is
// its own status — the one legitimate way a peer says goodbye. Short
// reads/writes and EINTR are retried internally.
//
// The `frame.read` / `frame.write` failpoints (support/failpoint.hpp)
// fire at the top of each call so tests and the CI sweep can prove the
// daemon's containment: an injected read fault closes one connection,
// never the daemon; an injected write fault looks to the client like a
// disconnect while the daemon keeps serving everyone else.

#include <cstdint>
#include <string>
#include <string_view>

namespace tytra::framing {

/// Upper bound on one frame's payload. Generous for campaign renderings
/// (a full 3-kernel sweep is ~100 kB) while keeping a hostile 0xffffffff
/// prefix from turning into an allocation.
inline constexpr std::uint32_t kMaxFrameBytes = 64u << 20;

enum class ReadStatus {
  Frame,  ///< one complete frame read into `payload`
  Eof,    ///< peer closed cleanly between frames (zero prefix bytes read)
  Error   ///< I/O error, truncated frame, oversized length, injected fault
};

/// Reads exactly one frame from `fd`. On Error, `error` names the defect;
/// on Eof/Frame it is untouched. Blocking; retries EINTR and short reads.
ReadStatus read_frame(int fd, std::string& payload, std::string& error);

/// Writes one frame (prefix + payload) to `fd`. Returns false on any
/// failure — including EPIPE from a peer that already hung up, which the
/// caller must treat as a disconnect, not a crash (the daemon ignores
/// SIGPIPE for exactly this reason). `error` names the defect.
bool write_frame(int fd, std::string_view payload, std::string& error);

}  // namespace tytra::framing
