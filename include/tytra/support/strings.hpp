#pragma once

// Small string utilities shared by the IR lexer/parser, the .tgt target
// parser and report formatting.

#include <string>
#include <string_view>
#include <vector>

namespace tytra {

[[nodiscard]] std::string_view trim(std::string_view s);
[[nodiscard]] std::vector<std::string_view> split(std::string_view s, char sep);
[[nodiscard]] bool starts_with(std::string_view s, std::string_view prefix);
[[nodiscard]] bool ends_with(std::string_view s, std::string_view suffix);
[[nodiscard]] std::string to_lower(std::string_view s);

/// Formats a value with SI magnitude suffix, e.g. 1.5e9 -> "1.50 G".
[[nodiscard]] std::string format_si(double value, int precision = 2);

/// Formats n right-aligned in a field of the given width.
[[nodiscard]] std::string pad_left(std::string_view s, std::size_t width);
[[nodiscard]] std::string pad_right(std::string_view s, std::size_t width);

/// fixed-precision double formatting ("%.*f").
[[nodiscard]] std::string format_fixed(double value, int precision);

}  // namespace tytra
