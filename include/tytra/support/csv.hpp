#pragma once

// Tiny CSV table writer used by the benchmark harness to dump the data
// behind each reproduced figure as a machine-readable artifact (for
// plotting / regression-diffing outside the terminal tables).

#include <string>
#include <vector>

namespace tytra {

class CsvTable {
 public:
  explicit CsvTable(std::vector<std::string> header);

  /// Appends one row. Throws std::invalid_argument when the cell count
  /// does not match the header.
  void add_row(std::vector<std::string> cells);
  /// Convenience: numeric row, formatted with %g.
  void add_row(const std::vector<double>& values);

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }
  /// RFC-4180-ish rendering (quotes cells containing commas/quotes).
  [[nodiscard]] std::string to_string() const;
  /// Writes to a file; returns false on IO failure.
  bool write(const std::string& path) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace tytra
