#pragma once

// Versioned binary container for on-disk artifacts (cost-cache snapshots,
// calibration stores). The robustness contract, not the format, is the
// point: every way an artifact can be wrong on disk — truncated mid-write,
// bit-flipped at rest, produced by a newer format, produced on a
// foreign-endianness machine, or simply not one of our files — is a
// *detected* condition reported as a structured tytra::Result error, never
// a crash, never silently-trusted garbage.
//
// Layout:
//
//   [ 8] magic        0x89 'T' 'Y' 'C' 'S' 0x0d 0x0a 0x1a  (PNG-style: the
//                     high bit, CRLF and ^Z catch text-mode and 7-bit
//                     transfer mangling as well as "wrong file entirely")
//   [ 4] u32 format version (kFormatVersion; readers reject newer files)
//   [ 4] u32 endian tag 0x01020304 (fields are stored native-endian; a
//                     foreign-endianness file is rejected up front instead
//                     of decoding into nonsense)
//   [ 4] u32 section count
//   [ 4] u32 reserved (0)
//   [ 8] u64 checksum of the header prefix (bytes 0..24) + section table
//                     — so no single corrupted bit anywhere in the file
//                     goes undetected
//   per section: { u32 id, u32 reserved, u64 offset, u64 size,
//                  u64 checksum of the payload bytes }
//   payloads, back to back; the file ends exactly after the last payload
//   (trailing bytes are corruption, not slack).
//
// Writes are atomic: the container is rendered to `path + ".tmp"`, fsynced,
// and renamed over `path` — a crash mid-save leaves either the complete old
// snapshot or a stray .tmp, never a half-written file a later load trusts.
//
// Encoder/Decoder are the typed byte streams inside a section payload. The
// Decoder is bounds-checked and sticky-failing: any read past the end or
// any caller-flagged validation failure (bad enum value, absurd count)
// latches the first error and makes every subsequent read return zero, so
// decode code can be written straight-line and checked once at the end.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "tytra/support/diag.hpp"

namespace tytra::binio {

/// Current container format version. Bump when the container layout (not a
/// payload's schema — those carry their own versions) changes.
inline constexpr std::uint32_t kFormatVersion = 1;

/// Stable 64-bit checksum of a byte string (splitmix-style word mixing —
/// the same mixing discipline as support/hash.hpp, so it is deterministic
/// across platforms and runs). Not cryptographic: it detects truncation,
/// bit flips and transposition, not an adversary.
std::uint64_t checksum64(std::string_view bytes);

/// Appends typed fields to a byte buffer (a section payload).
class Encoder {
 public:
  void u8(std::uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v);
  /// Length-prefixed byte string.
  void str(std::string_view s);

  [[nodiscard]] const std::string& bytes() const { return out_; }
  [[nodiscard]] std::string take() { return std::move(out_); }

 private:
  std::string out_;
};

/// Bounds-checked reader over a section payload. Sticky failure: the first
/// out-of-bounds read or fail() call latches an error message; all later
/// reads return zero values. Check ok() once after decoding.
class Decoder {
 public:
  explicit Decoder(std::string_view bytes) : data_(bytes) {}

  std::uint8_t u8();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  double f64();
  std::string str();

  /// Marks the stream failed with a reason (bad enum value, impossible
  /// count, ...). Only the first failure is retained.
  void fail(std::string reason);

  [[nodiscard]] bool ok() const { return error_.empty(); }
  [[nodiscard]] const std::string& error() const { return error_; }
  [[nodiscard]] std::uint64_t remaining() const { return data_.size() - pos_; }
  /// True when the stream was consumed exactly; otherwise fails the stream
  /// (leftover bytes mean the payload and the decoder disagree on schema).
  bool at_end();
  /// Validates that `count` elements of at least `min_bytes_each` can still
  /// fit in the remaining bytes; fails the stream and returns false
  /// otherwise. Call before reserving containers, so a corrupt count is a
  /// clean decode error instead of a giant allocation.
  bool fits(std::uint64_t count, std::uint64_t min_bytes_each);

 private:
  const char* take(std::size_t n);

  std::string_view data_;
  std::size_t pos_{0};
  std::string error_;
};

/// Info about one section (for inspection tools).
struct SectionInfo {
  std::uint32_t id{0};
  std::uint64_t offset{0};
  std::uint64_t size{0};
  std::uint64_t checksum{0};
};

/// Assembles a container and writes it atomically.
class Writer {
 public:
  /// Adds a section. Ids need not be unique or ordered, but readers find
  /// only the first of a duplicated id.
  void add_section(std::uint32_t id, std::string payload);

  /// Renders the complete container to memory (header + table + payloads).
  [[nodiscard]] std::string render() const;

  /// Atomic write: renders to `path + ".tmp"`, fsyncs, and renames over
  /// `path`. Returns the byte count written, or a diagnostic (unwritable
  /// directory, failed rename, short write).
  [[nodiscard]] tytra::Result<std::uint64_t> write(
      const std::string& path) const;

 private:
  struct Section {
    std::uint32_t id;
    std::string payload;
  };
  std::vector<Section> sections_;
};

/// Validates and indexes a container. `open`/`from_bytes` perform the full
/// integrity walk up front — magic, endianness, version, header checksum,
/// section-table bounds, per-section checksums, exact file length — so a
/// Reader you hold is a Reader whose every section is intact.
class Reader {
 public:
  static tytra::Result<Reader> open(const std::string& path);
  static tytra::Result<Reader> from_bytes(std::string bytes);

  [[nodiscard]] bool has_section(std::uint32_t id) const;
  /// The payload of the first section with this id; empty view when absent
  /// (disambiguate with has_section). Views into the Reader's buffer —
  /// valid for the Reader's lifetime.
  [[nodiscard]] std::string_view section(std::uint32_t id) const;

  [[nodiscard]] const std::vector<SectionInfo>& sections() const {
    return sections_;
  }
  [[nodiscard]] std::uint32_t format_version() const { return version_; }
  [[nodiscard]] std::uint64_t file_size() const { return data_.size(); }

 private:
  Reader() = default;

  std::string data_;
  std::vector<SectionInfo> sections_;
  std::uint32_t version_{0};
};

}  // namespace tytra::binio
