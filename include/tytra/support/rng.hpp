#pragma once

// Deterministic pseudo-random number generation. All "empirical" substrates
// in TyTra-CM (fabric synthesis jitter, workload generation) are seeded so
// that benches and tests reproduce exactly run-to-run.

#include <cstdint>
#include <string_view>

namespace tytra {

/// SplitMix64: tiny, fast, and statistically solid enough for workload
/// generation and deterministic jitter. Not for cryptographic use.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next_u64() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * next_double(); }

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(next_u64() % span);
  }

 private:
  std::uint64_t state_;
};

/// Stable 64-bit hash of a string (FNV-1a); used to derive per-entity seeds.
constexpr std::uint64_t fnv1a(const char* s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  while (*s != '\0') {
    h ^= static_cast<std::uint8_t>(*s++);
    h *= 0x100000001b3ULL;
  }
  return h;
}

inline std::uint64_t fnv1a(const std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace tytra
