#pragma once

// Diagnostics and error propagation used across the TyTra-CM library.
//
// Parsers, verifiers and other fallible front-line components report
// failures as `Result<T>` values carrying a `Diag` (message + source
// location) instead of throwing across module boundaries.

#include <cstdint>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace tytra {

/// A position in a textual input (1-based line/column; 0 means unknown).
struct SourceLoc {
  int line{0};
  int col{0};

  [[nodiscard]] bool known() const { return line > 0; }
  friend bool operator==(const SourceLoc&, const SourceLoc&) = default;
};

inline std::ostream& operator<<(std::ostream& os, const SourceLoc& loc) {
  if (loc.known()) os << loc.line << ':' << loc.col;
  else os << "<unknown>";
  return os;
}

/// Severity of a diagnostic message.
enum class Severity : std::uint8_t { Error, Warning, Note };

[[nodiscard]] constexpr std::string_view severity_name(Severity s) {
  switch (s) {
    case Severity::Error: return "error";
    case Severity::Warning: return "warning";
    case Severity::Note: return "note";
  }
  return "error";
}

/// A single diagnostic: severity, message, (optional) location and
/// (optional) stable rule code. Codes ("TL005") come from coded passes
/// such as ir::lint; the verifier and parser leave the field empty, and
/// an empty code renders exactly as it always has — tools pinning those
/// messages byte-for-byte are unaffected.
struct Diag {
  Severity severity{Severity::Error};
  std::string message;
  SourceLoc loc;
  std::string code;  ///< stable rule code, e.g. "TL005"; empty = uncoded

  [[nodiscard]] std::string to_string() const {
    std::string out{severity_name(severity)};
    if (!code.empty()) out += " [" + code + "]";
    if (loc.known()) {
      out += " at " + std::to_string(loc.line) + ':' + std::to_string(loc.col);
    }
    out += ": " + message;
    return out;
  }

  /// Machine-readable rendering: one JSON object with "severity",
  /// "code" (null when uncoded), "line"/"col" (0 = unknown) and
  /// "message". Defined in src/support/diag.cpp (needs json::escape).
  [[nodiscard]] std::string to_json() const;
};

inline Diag make_error(std::string message, SourceLoc loc = {}) {
  return Diag{Severity::Error, std::move(message), loc, {}};
}

/// Accumulates diagnostics; used by multi-error passes such as the verifier.
class DiagBag {
 public:
  void add(Diag d) { diags_.push_back(std::move(d)); }
  void error(std::string message, SourceLoc loc = {}) {
    add(make_error(std::move(message), loc));
  }
  void warning(std::string message, SourceLoc loc = {}) {
    add(Diag{Severity::Warning, std::move(message), loc, {}});
  }

  [[nodiscard]] bool has_errors() const {
    for (const auto& d : diags_) {
      if (d.severity == Severity::Error) return true;
    }
    return false;
  }
  [[nodiscard]] std::size_t size() const { return diags_.size(); }
  [[nodiscard]] bool empty() const { return diags_.empty(); }
  [[nodiscard]] const std::vector<Diag>& all() const { return diags_; }

  [[nodiscard]] std::size_t count(Severity s) const {
    std::size_t n = 0;
    for (const auto& d : diags_) {
      if (d.severity == s) ++n;
    }
    return n;
  }

  [[nodiscard]] std::string to_string() const {
    std::string out;
    for (const auto& d : diags_) {
      out += d.to_string();
      out += '\n';
    }
    return out;
  }

  /// Machine-readable rendering: a JSON array of Diag::to_json objects.
  [[nodiscard]] std::string to_json() const;

 private:
  std::vector<Diag> diags_;
};

/// Minimal expected-like result: either a value or a diagnostic.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Diag diag) : diag_(std::move(diag)) {}  // NOLINT(google-explicit-constructor)

  [[nodiscard]] bool ok() const { return value_.has_value(); }
  explicit operator bool() const { return ok(); }

  /// Preconditions: ok(). Accessing the value of a failed result aborts.
  [[nodiscard]] T& value() & { return value_.value(); }
  [[nodiscard]] const T& value() const& { return value_.value(); }
  [[nodiscard]] T&& take() && { return std::move(value_).value(); }

  /// Preconditions: !ok().
  [[nodiscard]] const Diag& diag() const { return diag_.value(); }

  [[nodiscard]] std::string error_message() const {
    return diag_ ? diag_->to_string() : std::string{};
  }

 private:
  std::optional<T> value_;
  std::optional<Diag> diag_;
};

}  // namespace tytra
