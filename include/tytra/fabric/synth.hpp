#pragma once

// Whole-design fabric synthesis: the stand-in for the vendor tool chain
// (Quartus/Vivado). Given a TyTra-IR design and a target device it
// produces *actual* resource usage and achievable clock frequency,
// applying the global optimizations a real tool performs and the cost
// model deliberately does not see:
//   * common-subexpression merging within a processing element,
//   * strength reduction of constant-operand multiply/divide,
//   * register retiming,
//   * global control/interconnect overhead,
//   * a placement pass (simulated annealing over the dataflow netlist)
//     from which the wire-delay-limited Fmax is derived.
//
// The placement pass also makes this path genuinely *slow* compared to the
// cost model — the fast-vs-accurate dichotomy the paper's §VI-A measures
// (0.3 s estimator vs ~70 s vendor estimate) is reproduced by real work,
// not by sleeping.

#include <cstdint>
#include <map>
#include <string>

#include "tytra/ir/module.hpp"
#include "tytra/resources.hpp"
#include "tytra/target/device.hpp"

namespace tytra::fabric {

struct SynthOptions {
  int effort{1};                     ///< placement effort multiplier (>=1)
  bool enable_cse{true};
  bool enable_strength_reduction{true};
  bool enable_retiming{true};
  std::uint64_t seed{0x7317a5eedULL};///< placement seed (deterministic)
};

struct SynthReport {
  ResourceVec total;
  std::map<std::string, ResourceVec> per_function;  ///< per distinct function
  Utilization util;
  bool fits{false};
  double fmax_hz{0};           ///< wire-delay-limited achievable clock
  double avg_wirelength{0};    ///< post-placement mean edge length (hops)
  double critical_wirelength{0};
  double synth_seconds{0};     ///< wall-clock this synthesis run took
  std::size_t netlist_nodes{0};
};

/// Synthesizes the full design. Preconditions: the module verifies.
SynthReport synthesize(const ir::Module& module,
                       const target::DeviceDesc& device,
                       const SynthOptions& options = {});

}  // namespace tytra::fabric
