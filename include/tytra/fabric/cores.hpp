#pragma once

// The primitive-core library of the fabric substrate: per-operation
// resource laws for the supported device families. These laws are the
// *ground truth* that stands in for vendor synthesis results (see
// DESIGN.md §1); the cost model never reads them directly — it calibrates
// itself from probe synthesis runs and must predict them.
//
// The integer-divide ALUT law is the quadratic the paper's Fig. 9 derives
// (x^2 + 3.7x - 10.6 on Stratix-V); multiplier DSP usage is a step
// function of bit-width with family-specific discontinuities.

#include "tytra/ir/instr.hpp"
#include "tytra/ir/type.hpp"
#include "tytra/resources.hpp"
#include "tytra/target/device.hpp"

namespace tytra::fabric {

/// Resources of the primitive core implementing `op` on operands of the
/// given scalar type, as the vendor tool would report after synthesizing
/// the lone operator. Deterministic per (family, op, width): includes the
/// sub-percent placement jitter real tools exhibit.
ResourceVec core_resources(ir::Opcode op, const ir::ScalarType& type,
                           const target::DeviceDesc& device);

/// Resources of the same core when one operand is a compile-time constant.
/// The synthesizer strength-reduces (constant multiplication becomes a
/// shift-add network, constant division a multiply-shift), which the cost
/// model does not know about — one deliberate source of Table-II error.
ResourceVec core_resources_const_operand(ir::Opcode op,
                                         const ir::ScalarType& type,
                                         std::int64_t constant,
                                         const target::DeviceDesc& device);

/// Resources of a stream-offset delay buffer of `depth_words` elements of
/// `bits` width: register-based when small, BRAM-backed FIFO when deep.
ResourceVec offset_buffer_resources(std::uint32_t bits, std::uint64_t depth_words,
                                    const target::DeviceDesc& device);

/// Resources of the stream-control block servicing one streaming port
/// (address counters, handshake FSM).
ResourceVec stream_control_resources(std::uint32_t bits,
                                     std::uint64_t addr_range_words,
                                     const target::DeviceDesc& device);

/// Width-dependent DSP-block count for a full multiplier (exposed for
/// tests of the Fig. 9 discontinuity structure).
int multiplier_dsps(std::uint16_t bits, const target::DeviceDesc& device);

}  // namespace tytra::fabric
