#pragma once

// The type-transformation front-end (paper §II): program variants are
// generated from a baseline functional description by reshaping the
// NDRange vector in an order- and size-preserving way and annotating the
// resulting map nest with parallelism patterns (pipe / par / seq).
//
//   pps  : Vect (im*jm*km) t                      -- baseline
//   ppst : Vect km (Vect (im*jm) t)               -- reshapeTo km pps
//   pst  = map^par (map^pipe p_sor) ppst          -- new program
//
// Correct-by-construction is enforced: reshapes must preserve the total
// size (checked at construction) and `flatten . reshape == id` (property
// tested).

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "tytra/ir/module.hpp"

namespace tytra::frontend {

/// Parallelism annotation on one map level.
enum class ParAnn : std::uint8_t { Pipe, Par, Seq };

std::string_view par_ann_name(ParAnn ann);

/// A program variant: the reshaped vector type (dims, outermost first)
/// and the annotation of the map at each nesting level.
class Variant {
 public:
  /// Throws std::invalid_argument unless dims are non-zero, anns matches
  /// dims in length, and at most the outer level is `par` (the supported
  /// configuration set of Fig. 7).
  Variant(std::vector<std::uint64_t> dims, std::vector<ParAnn> anns);

  [[nodiscard]] const std::vector<std::uint64_t>& dims() const { return dims_; }
  [[nodiscard]] const std::vector<ParAnn>& anns() const { return anns_; }
  [[nodiscard]] std::uint64_t flat_size() const;

  /// KNL: the product of par-annotated dimensions (1 when none).
  [[nodiscard]] std::uint32_t lanes() const;
  /// True when the innermost map is pipelined.
  [[nodiscard]] bool pipelined() const;
  /// Human-readable form, e.g. "map^par[4] (map^pipe[262144] f)".
  [[nodiscard]] std::string describe() const;

 private:
  std::vector<std::uint64_t> dims_;
  std::vector<ParAnn> anns_;
};

/// The baseline program: a single pipelined map over the whole NDRange.
Variant baseline_variant(std::uint64_t n);

/// reshapeTo: splits the (single remaining) outer dimension into
/// `outer` x (size/outer) and annotates the new outer level.
/// Throws std::invalid_argument when `outer` does not divide the size.
Variant reshape_to(const Variant& v, std::uint64_t outer, ParAnn outer_ann);

/// All divisors of `n` that are <= `cap`, ascending. One O(sqrt n)
/// enumeration (O(min(cap, sqrt n)) when cap is small) — the shared
/// divisor source of the variant enumerator and the tuner's lane ladder,
/// replacing their former per-step O(n) scans. Throws
/// std::invalid_argument when n is zero.
std::vector<std::uint64_t> divisors(std::uint64_t n,
                                    std::uint64_t cap = ~std::uint64_t{0});

/// Enumerates the C1/C2 reshape family: the baseline plus par(pipe)
/// variants for every lane count in [2, max_lanes] dividing n; optionally
/// the sequential (C4) variant.
std::vector<Variant> enumerate_variants(std::uint64_t n,
                                        std::uint32_t max_lanes,
                                        bool include_seq = false);

/// Order-preserving reshape of a data vector (the data-side view of
/// reshapeTo). Throws std::invalid_argument when outer does not divide.
std::vector<std::vector<double>> reshape_vec(const std::vector<double>& flat,
                                             std::uint64_t outer);
/// Inverse of reshape_vec.
std::vector<double> flatten_vec(const std::vector<std::vector<double>>& nested);

}  // namespace tytra::frontend
