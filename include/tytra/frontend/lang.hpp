#pragma once

// The functional design-entry language of paper §II: a minimal
// Idris/Haskell-flavoured surface syntax in which the programmer declares
// sized vectors and expresses the computation as (annotated) maps, and
// the compiler derives design variants from type transformations.
//
//   im = 24
//   jm = 24
//   km = 24
//   pps : Vect im*jm*km t
//   ps  = map p_sor pps                     -- baseline program
//   ppst = reshapeTo 4 pps                  -- type transformation
//   pst = mappar (mappipe p_sor) ppst       -- transformed program
//
// Size preservation is *checked at elaboration*: `reshapeTo k v` is
// rejected unless k divides the (innermost) dimension — the dependent-
// types discipline that makes the transformations correct by
// construction. Map nests must match the vector's nesting depth exactly.
//
// Keywords: `map` (defaults to pipe), `mappipe`, `mappar`, `mapseq`;
// comments run from `--` to end of line.

#include <map>
#include <string>

#include "tytra/frontend/transform.hpp"
#include "tytra/support/diag.hpp"

namespace tytra::frontend {

/// The elaborated result of a program: the kernel applied and the design
/// variant its final binding denotes.
struct Program {
  std::string kernel;   ///< the mapped function's name (e.g. "p_sor")
  Variant variant;      ///< shape + parallelism annotations
  std::string result;   ///< name of the final binding (e.g. "pst")
  std::map<std::string, std::uint64_t> constants;  ///< numeric bindings
};

/// Parses and elaborates a program. Reports syntax errors, unknown names,
/// nesting-depth mismatches and size-preservation violations with source
/// locations.
tytra::Result<Program> parse_program(std::string_view source);

}  // namespace tytra::frontend
