#pragma once

// Target device descriptions — the static architecture half of the
// calibration flow (Fig. 2): resource capacities, clocking, DRAM and
// host-link parameters, and power coefficients for a board. Presets
// cover the paper's two platforms (the Maxeler Maia's Stratix-V GSD8
// and the SDAccel baseline's Virtex-7 690T) plus the scaled-down
// profile used to reproduce the Fig. 15 wall structure; arbitrary
// boards are described in the `.tgt` text format parsed below.

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "tytra/support/diag.hpp"

namespace tytra::target {

/// Resource capacities of the device fabric (the four classes of Table II).
struct DeviceResources {
  std::uint64_t aluts{0};
  std::uint64_t regs{0};
  std::uint64_t bram_bits{0};
  std::uint64_t dsps{0};
};

/// DRAM interface timing (feeds membench::DramModel).
struct DramParams {
  double io_clock_hz{0};      ///< effective interface clock
  double bus_bytes{8};        ///< bytes moved per interface beat
  double burst_bytes{64};     ///< one burst; strides beyond it miss the row
  double row_bytes{1024};     ///< row-buffer size
  double row_miss_cycles{50}; ///< activate+precharge penalty, interface cycles
  double setup_seconds{0};    ///< fixed DMA/descriptor setup per transfer
};

/// Host<->device link (PCIe) parameters (feeds membench::HostLinkModel).
struct HostLinkParams {
  double peak_bw{0};          ///< raw link peak, bytes/s
  double efficiency{0.8};     ///< protocol efficiency derating
  double latency_seconds{0};  ///< fixed per-transfer latency
};

/// Power coefficients for the delta-power model (sim/power.hpp):
/// nanowatts per resource instance per MHz at activity 1.0.
struct PowerParams {
  double static_watts{0};
  double alut_nw{0};
  double dsp_nw{0};
  double bram_kb_nw{0};
};

/// A complete target device description.
struct DeviceDesc {
  std::string name;
  std::string family;  ///< e.g. "stratix-v", "virtex-7" (drives DSP tiling)
  DeviceResources resources;
  double fmax_hz{0};          ///< fabric ceiling clock
  double default_freq_hz{0};  ///< FD default when the design does not pin one
  DramParams dram;
  double dram_peak_bw{0};     ///< GPB: interface peak, bytes/s
  HostLinkParams host;
  PowerParams power;
  std::uint32_t word_bytes{4};
  /// Fraction of the fabric reserved by the board support package shell.
  double shell_overhead{0.1};
};

/// The Maxeler Maia dataflow engine's Altera Stratix-V 5SGSD8 (the
/// paper's primary platform: Table II, Fig. 9, Fig. 15-18).
DeviceDesc stratix_v_gsd8();

/// The Alpha-Data ADM-PCIE-7V3's Xilinx Virtex-7 690T under the
/// unoptimized SDAccel baseline platform of Fig. 10.
DeviceDesc virtex7_690t();

/// A scaled-down Stratix-V profile whose resource budget and link
/// bandwidths place the Fig. 15 walls inside a 16-lane sweep.
DeviceDesc fig15_profile();

/// The CLI names of the built-in presets above, in a stable order —
/// drivers generate their usage text and validation from this list so it
/// cannot drift from what is actually supported.
const std::vector<std::string>& preset_names();

/// Looks a preset up by its CLI name ("stratix-v-gsd8", "virtex7-690t",
/// "fig15"); nullopt when unknown.
std::optional<DeviceDesc> preset(std::string_view name);

/// Parses the `.tgt` device description format:
///
///   # comment
///   device <name> {
///     family    stratix-v
///     aluts     100000
///     regs      200000
///     bram_bits 1000000
///     dsps      256
///     fmax_mhz  240
///     freq_mhz  180
///     dram_gbps 7.5
///     host_gbps 3.2
///     word_bytes 8
///   }
///
/// Unlisted keys keep the defaults of a mid-size device; unknown keys
/// are errors (they are always typos).
tytra::Result<DeviceDesc> parse_target(std::string_view text);

}  // namespace tytra::target
