#pragma once

// Cooperative cancellation and deadlines for the DSE engine. A
// CancelToken is a one-way latch the engine polls at variant granularity
// (each task of evaluate_tasks, each tune step): flipping it never
// interrupts an evaluation mid-flight, it stops the *next* one — so
// results already computed stay valid and the shared cache stays
// consistent. request_cancel() is async-signal-safe (one relaxed atomic
// store), which is the point: tytra-cc flips the token from its SIGINT
// handler and the campaign winds down cleanly instead of dying with a
// partial stdout blob.
//
// Deadlines ride the same checkpoints: SessionOptions::deadline_seconds
// (or the per-job Job::deadline_seconds override) is a wall-clock budget
// measured from the start of the explore/tune/run call; a task drawn
// after the budget elapsed marks its job timed out instead of running.
//
// How an expiry/cancel surfaces depends on the entry point: single-job
// calls (explore/tune) throw CancelledError / DeadlineExceeded, while
// Session::run(Campaign) degrades per job — the affected jobs report
// JobState::Cancelled / TimedOut and every completed job's results are
// kept (see dse/session.hpp).

#include <atomic>
#include <stdexcept>
#include <string>

namespace tytra::dse {

/// One-way cancellation latch. Safe to share between threads and to flip
/// from a signal handler; cannot be re-armed (make a new token per run).
class CancelToken {
 public:
  /// Requests cancellation. Async-signal-safe: one relaxed atomic store.
  void request_cancel() noexcept {
    cancelled_.store(true, std::memory_order_relaxed);
  }
  [[nodiscard]] bool cancelled() const noexcept {
    return cancelled_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<bool> cancelled_{false};
};

/// Thrown by single-job entry points (explore/tune/baseline) when the
/// run's CancelToken was flipped. Campaigns do not throw this — they
/// report JobState::Cancelled per job instead.
class CancelledError : public std::runtime_error {
 public:
  CancelledError() : std::runtime_error("cancelled (CancelToken requested)") {}
};

/// Thrown by single-job entry points when the wall-clock budget elapsed.
class DeadlineExceeded : public std::runtime_error {
 public:
  explicit DeadlineExceeded(double budget_seconds)
      : std::runtime_error("deadline exceeded (budget " +
                           std::to_string(budget_seconds) + " s)") {}
};

}  // namespace tytra::dse
