#pragma once

// Memoizing cost-model cache for repeated sweeps. The explorer, the
// tuner and the benches all evaluate overlapping variant sets (tuner
// trajectories revisit sweep points; bench reruns and multi-device
// surveys re-cost whole families); one shared CostCache makes every
// repeat evaluation a lookup instead of a cost-model run.
//
// Design identity is structural and streamed: a lookup hashes the device
// fingerprint plus the module structure directly into a 128-bit digest
// (`ir::structural_digest`) with zero string materialization — the
// printed IR is never built on the lookup path. The calibrated database
// is a pure function of the device description, so the device
// fingerprint pins every law and table the cost model reads; two modules
// with equal printed IR costed against equal devices share an entry, and
// the cached report is exact, not approximate. The full identity text is
// materialized lazily, only when an entry is first inserted, as the
// collision fallback / debugging record.
//
// The cache is sharded: concurrent DSE workers hash to different shards
// and rarely contend on a lock, and the cost-model run itself always
// happens outside any lock. The shard count is configurable (more shards
// for very wide sweeps; the explorer caps its worker count at the shard
// count so workers never outnumber the locks that serve them).

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "tytra/cost/report.hpp"

namespace tytra::dse {

struct CacheStats {
  std::uint64_t hits{0};
  std::uint64_t misses{0};

  [[nodiscard]] std::uint64_t lookups() const { return hits + misses; }
};

/// Canonical key for costing `module` against `db`: the primary half of
/// the streamed (device, structure) digest. Cheap relative to a cost-model
/// run — one allocation-free module walk, no IR printing, no parameter
/// extraction.
std::uint64_t design_key(const ir::Module& module, const cost::DeviceCostDb& db);

/// Thread-safe memoization of cost::cost_design.
class CostCache {
 public:
  static constexpr std::size_t kMinDefaultShards = 16;

  /// `shards` sets the lock granularity (clamped to >= 1). Concurrent
  /// workers contend only when their designs hash to the same shard, so a
  /// cache serving N workers wants at least N shards. The default (0)
  /// auto-sizes to max(kMinDefaultShards, hardware threads), so a
  /// default-constructed cache never makes the explorer's worker cap bind
  /// below the machine's own parallelism.
  explicit CostCache(std::size_t shards = 0);

  /// Returns the cached report for `module` on `db`, or runs the cost
  /// model and remembers the result. Safe to call concurrently. Lookups
  /// verify the full 128-bit digest, so a 64-bit key collision degrades
  /// to a recomputation instead of returning another design's report,
  /// and hits never materialize the printed IR. When `was_hit` is
  /// non-null it receives this lookup's outcome (for per-sweep accounting
  /// independent of the global counters).
  cost::CostReport cost(const ir::Module& module, const cost::DeviceCostDb& db,
                        bool* was_hit = nullptr);

  [[nodiscard]] CacheStats stats() const;
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }
  void clear();

 private:
  struct Entry {
    std::uint64_t check;  ///< second digest half (collision guard)
    /// Full identity text (printed IR + device fingerprint), built once
    /// on insert: the byte-level ground truth the digest condenses.
    /// Debug builds verify it on every hit; release lookups never read
    /// it, keeping hits allocation-free at ~1 printed module of memory
    /// per cached design.
    std::string identity;
    cost::CostReport report;
  };

  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<std::uint64_t, Entry> map;
    std::uint64_t hits{0};
    std::uint64_t misses{0};
  };

  std::vector<Shard> shards_;  ///< sized once; never resized (mutexes pin it)
};

}  // namespace tytra::dse
