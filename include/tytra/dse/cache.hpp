#pragma once

// Memoizing cost-model cache for repeated sweeps. The explorer, the
// tuner and the benches all evaluate overlapping variant sets (tuner
// trajectories revisit sweep points; bench reruns and multi-device
// surveys re-cost whole families); one shared CostCache makes every
// repeat evaluation a lookup instead of a cost-model run.
//
// Keys are canonical: the resolved EKIT input set (cost::input_key), a
// structural hash of the design's printed IR, and the device identity.
// Two modules that print identically and resolve to the same Table-I
// parameters against the same calibrated database cost identically, so
// the cached report is exact, not approximate.
//
// The cache is sharded: concurrent DSE workers hash to different shards
// and rarely contend on a lock, and the cost-model run itself always
// happens outside any lock.

#include <array>
#include <cstdint>
#include <mutex>
#include <unordered_map>

#include "tytra/cost/report.hpp"

namespace tytra::dse {

struct CacheStats {
  std::uint64_t hits{0};
  std::uint64_t misses{0};

  [[nodiscard]] std::uint64_t lookups() const { return hits + misses; }
};

/// Canonical key for costing `module` against `db`. Cheap relative to a
/// cost-model run (one IR print + one input resolution).
std::uint64_t design_key(const ir::Module& module, const cost::DeviceCostDb& db);

/// Thread-safe memoization of cost::cost_design.
class CostCache {
 public:
  /// Returns the cached report for `module` on `db`, or runs the cost
  /// model and remembers the result. Safe to call concurrently. Entries
  /// store the full identity text alongside the 64-bit key, so a hash
  /// collision degrades to a miss instead of returning another design's
  /// report. When `was_hit` is non-null it receives this lookup's outcome
  /// (for per-sweep accounting independent of the global counters).
  cost::CostReport cost(const ir::Module& module, const cost::DeviceCostDb& db,
                        bool* was_hit = nullptr);

  [[nodiscard]] CacheStats stats() const;
  [[nodiscard]] std::size_t size() const;
  void clear();

 private:
  static constexpr std::size_t kShards = 16;

  struct Entry {
    std::string identity;  ///< full identity text (collision guard)
    cost::CostReport report;
  };

  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<std::uint64_t, Entry> map;
    std::uint64_t hits{0};
    std::uint64_t misses{0};
  };

  std::array<Shard, kShards> shards_;
};

}  // namespace tytra::dse
