#pragma once

// Memoizing cost-model cache for repeated sweeps. The explorer, the
// tuner and the benches all evaluate overlapping variant sets (tuner
// trajectories revisit sweep points; bench reruns and multi-device
// surveys re-cost whole families); one shared CostCache makes every
// repeat evaluation a lookup instead of a cost-model run.
//
// Identity is two-level:
//
//  1. Variant key (fast path, optional): when the caller lowers through a
//     Lowerer that can name its designs (dse::KeyedLowerer), the cache is
//     consulted with kernel-identity + variant-shape + device fingerprint
//     BEFORE any IR exists. A hit returns the memoized report without
//     lowering at all — the warm-sweep path drops from "materialize a
//     module, walk it, hash it" to "hash a dozen integers, probe a table".
//  2. Structural digest (ground truth): on a variant-key miss (or for
//     key-less lowerers) the variant is lowered and the lookup keys on
//     the device fingerprint plus the streamed 128-bit structural digest
//     of the module (`ir::structural_digest`) — the authoritative design
//     identity, independent of which lowerer produced the module. The
//     full identity text (printed IR + device fingerprint) is
//     materialized only on first insert as the collision fallback /
//     audit record. Debug builds cross-check the two levels: every
//     variant-key hit re-lowers and verifies the structural digest the
//     key was first inserted under.
//
// Reads are lock-free: each level is a sharded open-addressed table whose
// slots hold atomically published pointers to immutable entries, so N
// workers hammering a warm cache scale linearly instead of serializing on
// shard mutexes. A mutex is taken only to insert (and the cost-model run
// itself always happens outside it). clear() is the one exception: it
// frees entries and must not race with concurrent cost() calls.

#include <cstdint>
#include <memory>

#include "tytra/cost/report.hpp"
#include "tytra/dse/lowerer.hpp"
#include "tytra/support/binio.hpp"
#include "tytra/target/device.hpp"

namespace tytra::dse {

struct CacheStats {
  /// Lookups served from the cache at either level. `variant_hits` is the
  /// subset answered by the pre-lowering variant-key table (the only hits
  /// that skip IR materialization); `hits - variant_hits` were answered
  /// by the structural-digest level after lowering.
  std::uint64_t hits{0};
  std::uint64_t misses{0};
  std::uint64_t variant_hits{0};

  [[nodiscard]] std::uint64_t lookups() const { return hits + misses; }
};

/// Canonical key for costing `module` against `db`: the primary half of
/// the streamed (device, structure) digest. Cheap relative to a cost-model
/// run — one allocation-free module walk, no IR printing, no parameter
/// extraction.
std::uint64_t design_key(const ir::Module& module, const cost::DeviceCostDb& db);

/// Fingerprint of every DeviceDesc field a cost report can depend on.
/// Calibration is deterministic in the device description, so this value
/// pins every law and table the cost model reads. It is folded into both
/// cache levels' keys (making stale snapshot entries unreachable rather
/// than filtered) and stored beside persisted calibrations as their
/// invalidation key.
std::uint64_t device_fingerprint(const target::DeviceDesc& device);

/// Thread-safe memoization of cost::cost_design.
class CostCache {
 public:
  static constexpr std::size_t kMinDefaultShards = 16;

  /// Which level answered a two-level lookup.
  enum class HitLevel : std::uint8_t {
    Miss,        ///< cost model ran
    Structural,  ///< lowered, then hit on the structural digest
    Variant,     ///< hit on the variant key — no lowering happened
  };

  /// `shards` sets the insert-lock granularity of each level (clamped to
  /// >= 1). Reads never lock, so the shard count no longer bounds how
  /// many workers a warm cache can serve; it only spreads insert
  /// contention on cold sweeps. The default (0) auto-sizes to
  /// max(kMinDefaultShards, hardware threads).
  explicit CostCache(std::size_t shards = 0);
  ~CostCache();

  CostCache(const CostCache&) = delete;
  CostCache& operator=(const CostCache&) = delete;

  /// Structural-level lookup: returns the cached report for `module` on
  /// `db`, or runs the cost model and remembers the result. Safe to call
  /// concurrently; the read path takes no lock. Lookups verify the full
  /// 128-bit digest, so a 64-bit key collision degrades to a
  /// recomputation instead of returning another design's report, and hits
  /// never materialize the printed IR. When `was_hit` is non-null it
  /// receives this lookup's outcome (for per-sweep accounting independent
  /// of the global counters).
  cost::CostReport cost(const ir::Module& module, const cost::DeviceCostDb& db,
                        bool* was_hit = nullptr);

  /// Two-level lookup: consults the variant-key table first (when
  /// `lowerer` provides keys) and only lowers + runs the structural level
  /// on a miss, memoizing the variant key so the next warm lookup skips
  /// lowering entirely. `arena` is optional per-worker builder scratch
  /// handed to `lowerer.lower`; modules lowered internally are recycled
  /// into it. When `level` is non-null it receives which level answered.
  cost::CostReport cost(const frontend::Variant& variant, const Lowerer& lowerer,
                        const cost::DeviceCostDb& db, HitLevel* level = nullptr,
                        ir::BuildArena* arena = nullptr);

  [[nodiscard]] CacheStats stats() const;
  /// Number of memoized designs (structural-level entries).
  [[nodiscard]] std::size_t size() const;
  /// Number of memoized variant keys (fast-path entries).
  [[nodiscard]] std::size_t variant_size() const;
  [[nodiscard]] std::size_t shard_count() const;

  /// Drops every entry and resets the counters. NOT safe to run
  /// concurrently with cost() — entries are freed, and a lock-free reader
  /// could still be probing them. Debug builds enforce this: clear() with
  /// a cost() call in flight aborts with a diagnostic instead of racing.
  void clear();

  /// Serializes every entry of each level into a snapshot payload stream
  /// (entries back to back until the end of the payload; no count prefix,
  /// so a dump concurrent with inserts is merely a consistent-at-lock
  /// sample). Keys are stored as-is — the device fingerprint is already
  /// folded in, which is what makes persisted entries self-invalidating:
  /// after a device or digest-scheme change the old keys are simply never
  /// probed.
  void dump(binio::Encoder& structural_out, binio::Encoder& variant_out) const;

  /// Entry counts restored by load().
  struct LoadCounts {
    std::size_t structural{0};
    std::size_t variant{0};
  };

  /// Restores entries produced by dump(). Requires the same quiescence as
  /// clear() (enforced in debug builds): the table is being repopulated
  /// wholesale at construction/attach time, not shared yet. On a decode
  /// error the cache may hold a prefix of the snapshot's entries — every
  /// one individually valid — and the caller decides whether to keep or
  /// clear() them. Never throws; never trusts lengths or enum values.
  Result<LoadCounts> load(binio::Decoder& structural_in,
                          binio::Decoder& variant_in);

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace tytra::dse
