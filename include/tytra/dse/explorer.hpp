#pragma once

// Design-space exploration: generate variants through type
// transformations, lower each to TyTra-IR, run the cost model, filter
// invalid designs (resource / bandwidth walls), and rank the rest by EKIT
// — the guided optimisation search of paper §II/§VI.
//
// Evaluation is batched and parallel: the variant list is a work-queue
// fanned out across a thread pool, each worker lowering and costing
// independently (optionally through a shared memoizing CostCache), and
// the results are merged deterministically in enumeration order — the
// parallel sweep is byte-identical to the sequential one. Besides the
// single best design, the sweep yields the Pareto frontier over
// throughput, resource pressure and bandwidth share, so callers see the
// whole trade-off surface.
//
// Lowering goes through the Lowerer interface (dse/lowerer.hpp): a
// KeyedLowerer lets a warm cache answer from the variant-key table
// without materializing any IR, each worker reuses a private BuildArena
// for the cold lowerings, and the plain-LowerFn overloads keep
// std::function callers working unchanged (no key, structural-digest
// caching only).

#include <optional>
#include <vector>

#include "tytra/cost/report.hpp"
#include "tytra/dse/cache.hpp"
#include "tytra/dse/lowerer.hpp"
#include "tytra/frontend/transform.hpp"
#include "tytra/ir/module.hpp"

namespace tytra::dse {

struct DseEntry {
  frontend::Variant variant;
  cost::CostReport report;

  DseEntry(frontend::Variant v, cost::CostReport r)
      : variant(std::move(v)), report(std::move(r)) {}
};

struct DseOptions {
  /// Lane-count cap of the sweep. Validated at the API boundary: 0 is
  /// rejected with std::invalid_argument (an empty sweep is always a
  /// caller bug, never a request).
  std::uint32_t max_lanes{16};
  bool include_seq{false};
  /// Worker threads for the batched evaluation; 0 means one per hardware
  /// thread, 1 runs the sequential path inline. Explicit requests are
  /// clamped: never more than 4x the hardware concurrency (beyond that
  /// workers only add scheduler contention, and an unbounded request
  /// could exhaust OS thread limits mid-spawn) and never more workers
  /// than variants. Workers are NOT clamped to the cache's shard count:
  /// cache reads are lock-free, so warm (hit-dominated) sweeps scale
  /// past the shard count instead of queuing on shard locks — shards
  /// only spread the insert contention of cold sweeps.
  std::uint32_t num_threads{0};
  /// Optional memoizing cache shared across sweeps (tuner trajectories,
  /// bench reruns, multi-device surveys). May be null.
  CostCache* cache{nullptr};
};

/// One point of the throughput / resource / bandwidth trade-off surface.
struct ParetoPoint {
  std::size_t index{0};  ///< into DseResult::entries
  double ekit{0};        ///< objective 1: maximize
  double util_max{0};    ///< objective 2: minimize (binding resource, %)
  double bw_share{0};    ///< objective 3: minimize (DRAM-streaming share
                         ///< of the per-instance time, 0..1)
};

struct DseResult {
  std::vector<DseEntry> entries;           ///< in enumeration order
  std::optional<std::size_t> best;         ///< highest-EKIT valid entry
  std::vector<ParetoPoint> pareto;         ///< non-dominated valid entries,
                                           ///< in enumeration order
  double explore_seconds{0};               ///< total cost-model time
  CacheStats cache_stats;                  ///< this sweep's hits/misses
                                           ///< (zero without a cache)

  [[nodiscard]] const DseEntry* best_entry() const {
    return best ? &entries[*best] : nullptr;
  }
};

/// Explores the reshape family for a kernel of `n` work-items. When
/// `lower` provides variant keys and `options.cache` is warm, the sweep
/// never lowers IR at all.
///
/// Deprecation-ready: prefer dse::Session (dse/session.hpp), which owns
/// the cache/devices/arenas this overload set threads by hand. This free
/// function is a thin shim over a temporary Session — byte-identical
/// results — and will gain [[deprecated]] once in-tree callers migrate.
/// Throws std::invalid_argument when options are invalid (max_lanes == 0).
DseResult explore(std::uint64_t n, const Lowerer& lower,
                  const cost::DeviceCostDb& db, const DseOptions& options = {});
/// std::function shim: structural-digest caching only (no variant keys).
/// Deprecation-ready: prefer dse::Session::explore (see above).
DseResult explore(std::uint64_t n, const LowerFn& lower,
                  const cost::DeviceCostDb& db, const DseOptions& options = {});

/// The MaxJ-like HLS baseline: pipeline parallelism only, no architectural
/// exploration — i.e. the baseline (1-lane) variant's cost report.
/// Deprecation-ready: prefer dse::Session::baseline (dse/session.hpp).
cost::CostReport maxj_baseline(std::uint64_t n, const Lowerer& lower,
                               const cost::DeviceCostDb& db);
cost::CostReport maxj_baseline(std::uint64_t n, const LowerFn& lower,
                               const cost::DeviceCostDb& db);

/// Formats the sweep as a table (one row per lane count: utilization per
/// resource class, bandwidth shares and EKIT — the data behind Fig. 15).
std::string format_sweep(const DseResult& result);

/// Formats the Pareto frontier (one row per non-dominated design).
std::string format_pareto(const DseResult& result);

}  // namespace tytra::dse
