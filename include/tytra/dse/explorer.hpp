#pragma once

// Design-space exploration: generate variants through type
// transformations, lower each to TyTra-IR, run the cost model, filter
// invalid designs (resource / bandwidth walls), and rank the rest by EKIT
// — the guided optimisation search of paper §II/§VI.

#include <functional>
#include <optional>
#include <vector>

#include "tytra/cost/report.hpp"
#include "tytra/frontend/transform.hpp"
#include "tytra/ir/module.hpp"

namespace tytra::dse {

/// Lowers a variant to a concrete TyTra-IR design (the kernel library
/// provides these for SOR/Hotspot/LavaMD; custom kernels supply their own).
using LowerFn = std::function<ir::Module(const frontend::Variant&)>;

struct DseEntry {
  frontend::Variant variant;
  cost::CostReport report;

  DseEntry(frontend::Variant v, cost::CostReport r)
      : variant(std::move(v)), report(std::move(r)) {}
};

struct DseOptions {
  std::uint32_t max_lanes{16};
  bool include_seq{false};
};

struct DseResult {
  std::vector<DseEntry> entries;           ///< in enumeration order
  std::optional<std::size_t> best;         ///< highest-EKIT valid entry
  double explore_seconds{0};               ///< total cost-model time

  [[nodiscard]] const DseEntry* best_entry() const {
    return best ? &entries[*best] : nullptr;
  }
};

/// Explores the reshape family for a kernel of `n` work-items.
DseResult explore(std::uint64_t n, const LowerFn& lower,
                  const cost::DeviceCostDb& db, const DseOptions& options = {});

/// The MaxJ-like HLS baseline: pipeline parallelism only, no architectural
/// exploration — i.e. the baseline (1-lane) variant's cost report.
cost::CostReport maxj_baseline(std::uint64_t n, const LowerFn& lower,
                               const cost::DeviceCostDb& db);

/// Formats the sweep as a table (one row per lane count: utilization per
/// resource class, bandwidth shares and EKIT — the data behind Fig. 15).
std::string format_sweep(const DseResult& result);

}  // namespace tytra::dse
