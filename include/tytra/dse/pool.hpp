#pragma once

// Persistent worker threads for the DSE engine. Before this existed,
// every parallel sweep spawned and joined a fresh std::thread pool —
// fine for one long sweep, ruinous for the serving shape the ROADMAP
// targets: a campaign of many small {workload x size x device} jobs
// paid thread creation and teardown per job while most cores sat idle
// between joins. A ThreadPool is created once (dse::Session does so
// lazily, on the first batch that resolves to more than one worker) and
// executes any number of batches over its lifetime.
//
// Execution is collective: run_batch(participants, fn) invokes
// fn(worker_index) exactly once for every index in [0, participants) —
// index 0 on the calling thread (which works instead of idling at the
// barrier), indices 1..participants-1 on pool workers — and returns when
// every invocation has. Work distribution stays with the caller (the
// DSE engine drains an atomic cursor inside fn), which keeps the pool
// free of per-task std::function allocations on the hot path.
//
// Worker index i is pinned to one OS thread for the pool's lifetime, so
// state indexed by worker — the session's per-worker BuildArenas — is
// only ever touched by the same thread across batches, and recycled
// builder capacity survives from job to job without any synchronization.
//
// run_batch is not reentrant: one batch at a time (dse::Session already
// requires one job or campaign at a time, which implies this). A batch
// function that throws does not wedge the pool — the first exception is
// rethrown at the run_batch call site after every participant finished.
// When several participants throw in one batch, only one exception can
// be rethrown; the others are *counted*, logged once per batch to
// stderr, and exposed via suppressed_exception_count(), so multi-fault
// batches are observable instead of silently collapsing to one error.

#include <cstdint>
#include <functional>
#include <memory>

namespace tytra::dse {

class ThreadPool {
 public:
  /// Runs one participant of a batch; receives the participant's worker
  /// index (stable across batches for pool workers).
  using BatchFn = std::function<void(std::uint32_t)>;

  /// Spawns `workers` persistent threads (worker indices 1..workers).
  /// If thread creation fails partway (e.g. EAGAIN), the threads that
  /// did start are joined and the system error propagates.
  explicit ThreadPool(std::uint32_t workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of pool-owned threads. A batch can have up to
  /// worker_count() + 1 participants: the caller is participant 0.
  [[nodiscard]] std::uint32_t worker_count() const;

  /// Invokes fn(i) once for every i in [0, participants) — fn(0) on the
  /// calling thread — and blocks until all invocations return. Throws
  /// std::invalid_argument when fn is null or participants exceeds
  /// worker_count() + 1. If any invocation throws, the first exception
  /// (caller's first, then workers') is rethrown after the batch drains;
  /// additional exceptions from the same batch are counted and logged
  /// (see suppressed_exception_count()), never silently dropped.
  void run_batch(std::uint32_t participants, const BatchFn& fn);

  /// Exceptions thrown by batch participants over the pool's lifetime
  /// that could not be rethrown because another participant's exception
  /// won the batch. Monotone; 0 in a healthy pool.
  [[nodiscard]] std::uint64_t suppressed_exception_count() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace tytra::dse
