#pragma once

// tytra-dsed's engine room: a DSE-as-a-service server wrapping ONE warm
// dse::Session behind a Unix-domain socket. Every client that connects
// shares the session's two-level cost cache, calibrated device table and
// persistent thread pool — the whole point of the daemon: the second
// client's campaign answers at the variant-key level from the first
// client's work, and nobody pays a cold start except the boot itself
// (which a snapshot can erase too).
//
// Wire protocol (see ARCHITECTURE.md "Daemon & wire protocol"): frames
// are length-prefixed JSON (support/framing.hpp, support/json.hpp). A
// request is one object with "cmd" ∈ {explore, tune, campaign, list,
// ping, shutdown} carrying the same fields the tytra-cc CLI accepts.
// Responses stream: one {"type":"job"} frame per completed job, then one
// final {"type":"result"} (exit code + the byte-identical stdout a
// standalone tytra-cc run would have printed) or {"type":"error"}.
//
// Concurrency model — one rule: the Session is NOT thread-safe, so ONE
// scheduler thread executes every job and touches the Session and the
// kernels::Registry; it parallelizes *inside* each job via the session's
// pool. Per-connection reader threads only parse frames and enqueue
// work. Fairness is round-robin at job granularity across connections: a
// 30-job campaign and a 1-job explore interleave, so the giant cannot
// starve the small. Each connection owns a CancelToken wired into its
// jobs' Job::cancel — a disconnect cancels exactly that client's
// in-flight and queued work, nobody else's.
//
// Shutdown (SIGTERM/SIGINT via signal_shutdown(), or a "shutdown"
// request): stop accepting, give in-flight work drain_ms to finish,
// cancel whatever remains (clients see the standalone interrupt
// contract: completed jobs' results, exit 130), save the snapshot, and
// serve() returns so the daemon can exit 0.

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "tytra/dse/session.hpp"

namespace tytra::dse {

struct ServerOptions {
  /// Filesystem path of the Unix-domain listening socket. Required; an
  /// existing socket file at the path is unlinked (the daemon assumes it
  /// is stale — pick per-instance paths when running several daemons).
  std::string socket_path;
  /// Grace period for in-flight and queued work on shutdown, in
  /// milliseconds. Work that outlives it is cancelled cooperatively
  /// (variant granularity) rather than abandoned.
  std::uint32_t drain_ms{2000};
  /// Per-connection admission bound: a request whose jobs would push the
  /// connection's pending-job count past this is rejected with an error
  /// frame instead of queued ("queue full").
  std::size_t queue_limit{256};
  /// The warm session everything shares. snapshot_path here gives the
  /// daemon its boot-warm / save-on-shutdown behavior.
  SessionOptions session;
};

/// Monotonic counters for ping responses and tests. Snapshot via
/// Server::stats(); individually relaxed-atomic.
struct ServerStats {
  std::uint64_t connections{0};      ///< accepted connections
  std::uint64_t requests{0};         ///< well-formed requests admitted
  std::uint64_t jobs_ok{0};          ///< jobs finished in JobState::Ok
  std::uint64_t jobs_degraded{0};    ///< jobs finished failed/timed-out/cancelled
  std::uint64_t frames_rejected{0};  ///< malformed frames answered with errors
};

class Server {
 public:
  /// Binds and listens on options.socket_path and constructs the shared
  /// Session (loading its snapshot, when configured). Throws
  /// std::runtime_error when the socket cannot be created and
  /// std::invalid_argument for an unusable path (empty, or longer than
  /// sun_path allows). Ignores SIGPIPE process-wide: a client that hangs
  /// up mid-response must surface as a write error, not kill the daemon.
  explicit Server(ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Runs the accept loop until shutdown is requested, then drains per
  /// the options and saves the snapshot. Call from the thread that owns
  /// the daemon's lifetime (main, or a test thread); reader and
  /// scheduler threads are managed internally and are all joined before
  /// this returns.
  void serve();

  /// Requests shutdown. Async-signal-safe (an atomic flag plus one
  /// self-pipe write), so SIGTERM/SIGINT handlers may call it directly.
  void signal_shutdown() noexcept;

  [[nodiscard]] const std::string& socket_path() const;
  [[nodiscard]] ServerStats stats() const;
  /// The shared session — for tests, and only while serve() is not
  /// running (Session methods are not thread-safe).
  [[nodiscard]] Session& session();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace tytra::dse
