#pragma once

// The object-oriented entry point to design-space exploration — the
// "compiler with a feedback path" of paper §I/§VI as one engine object
// instead of a pile of free-function overloads with caches, arenas and
// thread counts threaded by hand.
//
// A Session owns everything repeated exploration wants to share:
//
//   * the two-level CostCache (see dse/cache.hpp) — every sweep, tune
//     walk and campaign job run by the session warms the same cache, so
//     a tuner trajectory after a sweep, or a campaign's repeat sizes,
//     resolve at the variant-key level without lowering any IR;
//   * a device table of named, calibrated DeviceCostDbs — calibrate a
//     board once, cost any number of jobs against it by name;
//   * the persistent worker pool (dse::ThreadPool) — created lazily on
//     the first batch that resolves to more than one worker under the
//     clamping policy SessionOptions::num_threads documents, then reused
//     for every subsequent sweep, tune walk and campaign, so repeated
//     small jobs stop paying thread spawn/join churn;
//   * the per-worker BuildArenas — worker index i is pinned to one pool
//     thread for the session's lifetime, so arena i is only ever touched
//     by that thread and recycled builder storage survives *across*
//     jobs, not just within one sweep.
//
// Work is described by a Job ({workload, size, device} plus per-job
// knobs) and submitted through explore / tune / baseline, or batched as
// a Campaign whose result adds the cross-device comparison and a merged
// Pareto view over every job. run(Campaign) schedules campaign-wide:
// every job's variants are flattened into one work list and evaluated
// concurrently through the shared cache (many small jobs keep every
// worker busy instead of parallelizing each job alone), while the
// per-job merge, best and Pareto computation stay in enumeration order —
// campaign output is byte-identical to running the jobs one at a time.
// The legacy free functions in explorer.hpp and tuner.hpp are thin shims
// over a temporary Session and produce byte-identical results
// (tests/test_session.cpp pins this).
//
// Thread-safety: the session's cache is safe for concurrent use —
// including one cache shared across sessions via the cache_override
// parameters — but Session methods themselves are not: explore / tune /
// baseline / run share the persistent pool and its per-worker arenas.
// Drive one job or campaign at a time per Session; each call
// parallelizes internally on the session's pool.

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "tytra/cost/calibration.hpp"
#include "tytra/dse/cache.hpp"
#include "tytra/dse/cancel.hpp"
#include "tytra/dse/explorer.hpp"
#include "tytra/dse/pool.hpp"
#include "tytra/dse/tuner.hpp"
#include "tytra/ir/arena.hpp"
#include "tytra/target/device.hpp"

namespace tytra::dse {

/// Session-wide policy. Validated at construction: a zero lane cap is
/// rejected (a sweep over no lane counts is always a caller bug).
struct SessionOptions {
  /// Default lane-count cap for jobs that do not set their own.
  std::uint32_t max_lanes{16};
  /// Worker threads per batch evaluation; same semantics and clamping as
  /// DseOptions::num_threads (0 = one per hardware thread). The workers
  /// are persistent: the session spawns its ThreadPool once, on the
  /// first batch that resolves to more than one worker, and reuses it
  /// for every subsequent sweep, tune walk and campaign.
  std::uint32_t num_threads{0};
  /// Shard count forwarded to the session's CostCache (0 = auto).
  std::size_t cache_shards{0};
  /// When false the session owns no cache and jobs run uncached unless a
  /// per-call override is supplied — the legacy free-function semantics
  /// (their shims construct a cache-less Session so that a caller who
  /// passed no cache keeps paying exactly zero caching overhead).
  bool enable_cache{true};
  /// When non-empty, the session warm-starts from this snapshot file at
  /// construction. Degradation is the contract, not an afterthought: a
  /// missing file is a normal first run (silent cold start), and *any*
  /// load failure — truncation, bit flip, foreign endianness, newer
  /// format, malformed payload — logs exactly one structured warning to
  /// stderr and cold-starts; it never throws and never half-applies a
  /// snapshot. Save-back is explicit via save_snapshot().
  std::string snapshot_path;
  /// Cooperative cancellation (non-owning; must outlive the session's
  /// calls). Polled at variant granularity: flipping it stops the next
  /// evaluation, never one in flight. Single-job calls throw
  /// CancelledError; run(Campaign) reports JobState::Cancelled per job
  /// and keeps every completed job's results. Safe to flip from a signal
  /// handler (see dse/cancel.hpp).
  CancelToken* cancel{nullptr};
  /// Wall-clock budget in seconds for each explore/tune/run call,
  /// measured from the call's start; 0 disables. Checked at the same
  /// variant granularity as cancellation. Single-job calls throw
  /// DeadlineExceeded; campaign jobs degrade to JobState::TimedOut.
  /// Job::deadline_seconds overrides this per job.
  double deadline_seconds{0};
};

/// One unit of exploration work: which design family, how big, against
/// which device, under which per-job knobs.
struct Job {
  /// Workload label for reports ("sor", "hotspot", ..., or free-form for
  /// custom lowerers). Purely descriptive; kernels::Registry fills it.
  std::string workload;
  /// Problem dimension the NDRange was derived from (descriptive; 0 when
  /// the job was built directly from `n`).
  std::uint32_t nd{0};
  /// NDRange size (work-items per kernel instance). Must be >= 1.
  std::uint64_t n{0};
  /// How variants materialize. Shared so campaign jobs own their lowerer;
  /// shims alias the caller's without taking ownership.
  std::shared_ptr<const Lowerer> lower;
  /// Device-table name to cost against; empty selects the default device
  /// (the first one added). Ignored when `db` is set.
  std::string device;
  /// Direct database override bypassing the device table (non-owning;
  /// must outlive the call). The legacy shims use this to borrow the
  /// caller's already-calibrated database without copying it.
  const cost::DeviceCostDb* db{nullptr};
  /// Lane-count cap for this job; 0 inherits SessionOptions::max_lanes.
  /// Bounds both the sweep's enumeration and the tuner's reshape walk
  /// (tune stops with a "lane cap reached" verdict instead of walking
  /// past it).
  std::uint32_t max_lanes{0};
  /// Also enumerate the sequential (C4) variant.
  bool include_seq{false};
  /// Step budget for tune() (<= 0 yields an empty trajectory, matching
  /// the free function).
  int max_steps{12};
  /// Per-job wall-clock budget in seconds, measured from the start of
  /// the explore/tune/run call this job is part of; 0 inherits
  /// SessionOptions::deadline_seconds.
  double deadline_seconds{0};
  /// Per-job cooperative cancellation (non-owning; must outlive the
  /// call). Unlike SessionOptions::cancel — which stops the whole batch —
  /// flipping this kills only *this* job: in a campaign it degrades to
  /// JobState::Cancelled while every other job completes normally;
  /// single-job calls throw CancelledError. Checked at the same variant
  /// (explore/run) or step (tune) granularity as the session-wide token.
  /// The daemon wires each client connection's token here so one
  /// client's disconnect cancels its jobs and nobody else's.
  const CancelToken* cancel{nullptr};
};

/// A batch of jobs fanned through one shared warm cache.
struct Campaign {
  std::vector<Job> jobs;
};

/// How one campaign job ended. Ok is the only state with results; the
/// other three are the job's failure domain — contained to this job,
/// never the campaign (see JobStatus).
enum class JobState {
  Ok,        ///< every variant evaluated
  Failed,    ///< an evaluation threw; `error` carries the first what()
  TimedOut,  ///< the job's deadline elapsed mid-sweep
  Cancelled  ///< the run's CancelToken was flipped before the job finished
};

/// Lowercase stable name for tables and JSON ("ok", "failed",
/// "timed_out", "cancelled").
std::string_view job_state_name(JobState state);

/// Per-job outcome of a campaign. A non-ok job keeps the shared cache
/// consistent (entries are only ever published after a successful
/// evaluation, so a fault cannot tear one) and costs no retries: the
/// first fault marks the job dead and its remaining variants are
/// skipped, so a failing job never takes longer than it would have
/// healthy.
struct JobStatus {
  JobState state{JobState::Ok};
  /// First failure's message; empty when ok. For TimedOut/Cancelled a
  /// short structured reason ("deadline exceeded (...)", "cancelled").
  std::string error;
  std::size_t evaluated{0};  ///< variants with a computed report
  std::size_t faults{0};     ///< evaluations that threw (first one wins `error`)
  std::size_t skipped{0};    ///< variants never attempted after the fault/expiry

  [[nodiscard]] bool ok() const { return state == JobState::Ok; }
};

/// One campaign job's sweep, with the job echoed for labeling. When
/// `status` is not ok, `result` is empty (no entries, no best, no
/// frontier) — partial sweeps are never presented as results.
struct CampaignJobResult {
  Job job;
  DseResult result;
  JobStatus status;
};

/// A merged-frontier member: `point.index` indexes jobs[job].result.entries.
struct CampaignParetoPoint {
  std::size_t job{0};
  ParetoPoint point;
};

struct CampaignResult {
  /// Per-job results in campaign order. Campaign jobs are evaluated as
  /// one flattened concurrent batch, so each job's
  /// `result.explore_seconds` reports the campaign's shared evaluation
  /// wall clock, not a per-job span; everything else (entries, best,
  /// pareto, cache_stats) is exactly what running the job alone through
  /// the same cache state would produce.
  std::vector<CampaignJobResult> jobs;
  /// The Pareto frontier over every job's valid entries — the
  /// cross-workload, cross-device trade-off surface. Dominance uses the
  /// same three objectives as per-job frontiers; points keep
  /// (job, enumeration) order.
  std::vector<CampaignParetoPoint> pareto;
  CacheStats cache_stats;                  ///< summed per-job sweep stats
  double campaign_seconds{0};

  [[nodiscard]] const DseEntry& entry(const CampaignParetoPoint& p) const {
    return jobs[p.job].result.entries[p.point.index];
  }
  /// Number of non-ok jobs (the campaign's degradation count).
  [[nodiscard]] std::size_t degraded() const {
    std::size_t n = 0;
    for (const auto& jr : jobs) {
      if (!jr.status.ok()) ++n;
    }
    return n;
  }
};

/// The DSE engine object. Owns cache, device table, thread policy and
/// per-worker arenas; every sweep/tune/baseline/campaign runs through it.
class Session {
 public:
  /// Throws std::invalid_argument when options are invalid
  /// (max_lanes == 0).
  explicit Session(SessionOptions options = {});
  ~Session();

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Calibrates `desc` and adds it to the device table under its own
  /// name. Throws std::invalid_argument on a duplicate name. Returns the
  /// calibrated database (stable address for the session's lifetime).
  const cost::DeviceCostDb& add_device(const target::DeviceDesc& desc);
  /// Adds an already-calibrated database under `name` (moves it in).
  const cost::DeviceCostDb& add_device(std::string name,
                                       cost::DeviceCostDb db);
  /// Looks a device up by name; null when absent.
  [[nodiscard]] const cost::DeviceCostDb* find_device(
      std::string_view name) const;
  /// Device names in the order they were added (front = default device).
  [[nodiscard]] const std::vector<std::string>& device_names() const {
    return device_order_;
  }

  /// Sweeps the job's reshape family. Validates the job at this boundary
  /// — null lowerer, n == 0, an effective lane cap of 0, or an unknown
  /// device name all throw std::invalid_argument with a message naming
  /// the offending field. `cache_override` replaces the session cache
  /// for this call (the legacy shims route their caller's cache through
  /// here); null means the session cache, or uncached when caching is
  /// disabled.
  DseResult explore(const Job& job, CostCache* cache_override = nullptr);

  /// Walks the feedback path from the baseline variant (see dse/tuner.hpp),
  /// riding the session cache — after explore() of the same job, the whole
  /// trajectory answers at the variant-key level. The walk is bounded by
  /// the job's resolved lane cap (Job::max_lanes, falling back to
  /// SessionOptions::max_lanes).
  TuneResult tune(const Job& job, CostCache* cache_override = nullptr);

  /// The MaxJ-like HLS baseline: the 1-lane variant's cost report.
  cost::CostReport baseline(const Job& job,
                            CostCache* cache_override = nullptr);

  /// Runs the whole campaign through the shared cache and merges the
  /// cross-device comparison + Pareto view. Scheduling is campaign-wide:
  /// all jobs' variants form one flattened work list drained by the
  /// session pool, in two waves — first every distinct design (dedup by
  /// variant key + database, so a design repeated across jobs is
  /// evaluated once), then the repeats, which resolve at the variant-key
  /// level against the now-warm cache. Per-job merge, best, Pareto and
  /// cache stats are computed in enumeration order, so campaign output
  /// (text and JSON, wall times aside) is byte-identical across thread
  /// counts and to running the jobs one by one. The stats-determinism
  /// guarantee assumes repeated designs are visible to the dedup, i.e.
  /// they share a variant key and a database address (jobs naming the
  /// same device-table entry do). Designs that only coincide later —
  /// key-less FnLowerer jobs, keyed lowerers with different fingerprints
  /// lowering to identical IR, or distinct Job::db copies calibrated
  /// from one device — race at the structural level instead, and their
  /// per-job hit/miss stats may vary across thread counts; the reports,
  /// entries, best and frontiers are still exact.
  ///
  /// Failure domains are per job: an evaluation that throws (or a job
  /// whose deadline elapses) marks *that job* Failed/TimedOut in its
  /// JobStatus, skips its remaining variants, and every unaffected job
  /// completes with results byte-identical to a fault-free run of those
  /// jobs. run() itself only throws for campaign-level errors (invalid
  /// jobs at the resolve boundary). A flipped CancelToken drains the
  /// work list and marks unfinished jobs Cancelled. Caveat: when a
  /// failed evaluation was the wave-1 representative of a design
  /// repeated in another job, the repeat re-evaluates cold — its results
  /// are unchanged, but its hit/miss stats can differ from the
  /// fault-free run.
  CampaignResult run(const Campaign& campaign,
                     CostCache* cache_override = nullptr);

  /// The session cache (null when SessionOptions::enable_cache is false).
  [[nodiscard]] CostCache* cache() { return cache_.get(); }
  [[nodiscard]] const SessionOptions& options() const { return options_; }

  /// What one snapshot load restored.
  struct SnapshotStats {
    std::size_t structural_entries{0};
    std::size_t variant_entries{0};
    std::size_t calibrations{0};
  };

  /// Loads a snapshot into the session: cache entries into the session
  /// cache (skipped, not an error, when caching is disabled) and stored
  /// calibrations into a pending table that add_device() consults —
  /// a calibration is only ever *used* when the device description's
  /// fingerprint still matches the one it was computed from. Requires the
  /// same quiescence as CostCache::clear(). On any failure the session is
  /// rolled back to fully cold (cache cleared, pending calibrations
  /// dropped) and the diagnostic returned — a partially-applied snapshot
  /// can never leak into results.
  Result<SnapshotStats> load_snapshot(const std::string& path);

  /// Atomically writes the session's cache entries, device calibrations
  /// and still-unclaimed restored calibrations to `path` (empty = the
  /// options' snapshot_path). Returns bytes written.
  Result<std::uint64_t> save_snapshot(const std::string& path = {});

 private:
  struct ResolvedJob {
    const cost::DeviceCostDb* db;
    const Lowerer* lower;
    std::uint64_t n;
    std::uint32_t max_lanes;
  };
  [[nodiscard]] ResolvedJob resolve(const Job& job) const;
  [[nodiscard]] CostCache* effective_cache(CostCache* override_cache) {
    return override_cache ? override_cache : cache_.get();
  }
  /// Grows the arena pool to at least `n` workers.
  std::vector<ir::BuildArena>& arenas(std::size_t n);
  /// The widest batch this session will ever run (the num_threads clamp
  /// applied to unbounded work) — the pool's capacity.
  [[nodiscard]] std::uint32_t max_participants() const;
  /// The session pool sized for max_participants(), created on the first
  /// call that needs more than one participant; null for serial batches.
  ThreadPool* pool_for(std::uint32_t participants);

  SessionOptions options_;
  std::unique_ptr<CostCache> cache_;
  std::map<std::string, cost::DeviceCostDb, std::less<>> devices_;
  std::vector<std::string> device_order_;
  std::vector<ir::BuildArena> arenas_;
  std::unique_ptr<ThreadPool> pool_;
  /// Calibrations restored from a snapshot, keyed by device name, waiting
  /// for add_device() to claim them. The stored fingerprint is the
  /// invalidation key: add_device() recalibrates (and drops the stale
  /// entry) when the incoming description no longer matches.
  struct RestoredCalibration {
    std::uint64_t fingerprint{0};
    cost::DeviceCostDb db;
  };
  std::map<std::string, RestoredCalibration, std::less<>> restored_;
};

// ---------------------------------------------------------------------------
// Snapshot file inspection (the `tytra-cc cache inspect|verify` backend)
// ---------------------------------------------------------------------------

/// What a full offline walk of a snapshot file found. Producing one means
/// every container check (magic, version, endianness, checksums, exact
/// length) and every payload decode (each cache entry, each calibration)
/// succeeded.
struct SnapshotSummary {
  std::uint32_t format_version{0};
  std::uint32_t payload_version{0};
  std::uint64_t file_bytes{0};
  std::size_t structural_entries{0};
  std::size_t variant_entries{0};
  /// Restored calibrations as (device name, fingerprint) pairs.
  std::vector<std::pair<std::string, std::uint64_t>> calibrations;
};

/// Fully validates `path` — container integrity and every payload —
/// without touching any session state. The error carries the first
/// defect found; `tytra-cc cache verify` maps it to a nonzero exit.
Result<SnapshotSummary> verify_snapshot(const std::string& path);

namespace detail {
/// The skyline shared by per-sweep frontiers and the campaign's merged
/// view: keep[i] says whether candidates[i] is non-dominated under
/// (EKIT max, util min, bw-share min), ties breaking on position.
/// Candidates with a non-finite objective are never kept — NaN would
/// break the sort's strict weak ordering — and do not dominate anything.
/// Exposed for tests; not a stable public API.
std::vector<bool> skyline_keep(const std::vector<ParetoPoint>& candidates);
}  // namespace detail

/// Cross-device comparison table: one row per campaign job (workload,
/// nd, device, variant count, best design). Deterministic — no wall
/// times — so output is directly comparable across runs. A non-ok job's
/// row carries its status + error in place of the best-design columns,
/// and a "degraded:" summary line appears only when degraded() > 0 — a
/// fault-free campaign renders byte-identically to before the failure
/// model existed.
std::string format_campaign(const CampaignResult& result);

/// The merged frontier, labeled with workload/device per row.
std::string format_campaign_pareto(const CampaignResult& result);

// ---------------------------------------------------------------------------
// Structured (JSON) renderings — the machine-readable counterpart of the
// format_* tables, used by `tytra-cc --json` and the CI smoke step.
// ---------------------------------------------------------------------------

std::string format_sweep_json(const DseResult& result);
std::string format_tune_json(const TuneResult& result);
std::string format_campaign_json(const CampaignResult& result);

}  // namespace tytra::dse
