#pragma once

// Variant identity BEFORE lowering. A DSE sweep's warm path used to pay
// full IR materialization just to discover that the lowered module was
// already in the cost cache: the cache keyed on the lowered structure, so
// identity could only be resolved *after* the expensive work. A Lowerer
// makes identity a first-class part of lowering: `key(variant)` names the
// design a variant will lower to — kernel identity plus the variant's
// shape/annotation encoding — without building any IR, and `lower(variant)`
// produces the module only when a cache actually needs it. The structural
// digest of the lowered module remains the authoritative second-level
// identity (see dse/cache.hpp); the variant key is a promise the cache
// cross-checks in debug builds.

#include <cstdint>
#include <functional>
#include <optional>
#include <string>

#include "tytra/frontend/transform.hpp"
#include "tytra/ir/arena.hpp"
#include "tytra/ir/module.hpp"
#include "tytra/support/hash.hpp"

namespace tytra::dse {

/// Lowers a variant to a concrete TyTra-IR design (the kernel library
/// provides these for SOR/Hotspot/LavaMD; custom kernels supply their own).
/// With num_threads > 1 the function is invoked concurrently from worker
/// threads and must be safe to call in parallel (pure builders are).
using LowerFn = std::function<ir::Module(const frontend::Variant&)>;

/// Arena-aware lowering function: same contract as LowerFn, but draws
/// builder storage from the caller's per-worker arena when one is given
/// (may be null).
using ArenaLowerFn =
    std::function<ir::Module(const frontend::Variant&, ir::BuildArena*)>;

/// 128-bit pre-lowering design identity: kernel identity + variant shape.
/// Both halves hash the same field stream under independent seeds, so a
/// memoization layer can treat key equality (with the check half verified)
/// as design identity — the same discipline as ir::StructuralDigest.
struct VariantKey {
  std::uint64_t key{0};
  std::uint64_t check{0};

  friend bool operator==(const VariantKey&, const VariantKey&) = default;
};

/// Streams a variant's shape/annotation encoding into a hash builder.
void hash_variant(HashBuilder& h, const frontend::Variant& v);

/// How a DSE engine turns variants into designs. `lower` is the expensive
/// materialization; `key` is the cheap identity that lets a warm cache
/// skip it entirely. Implementations must be safe to call concurrently.
class Lowerer {
 public:
  virtual ~Lowerer() = default;

  /// The identity of the design `lower(v)` would produce, or nullopt when
  /// this lowerer cannot promise one (then caches fall back to lowering +
  /// structural digest, which is always correct). Two calls that return
  /// equal keys MUST lower to structurally identical modules.
  [[nodiscard]] virtual std::optional<VariantKey> key(
      const frontend::Variant& v) const = 0;

  /// Lowers `v` to IR. `arena` is optional recycled builder storage
  /// (per-worker scratch); implementations may ignore it.
  [[nodiscard]] virtual ir::Module lower(const frontend::Variant& v,
                                         ir::BuildArena* arena = nullptr)
      const = 0;
};

/// Shim keeping std::function callers working: lowers through the wrapped
/// LowerFn and promises no key, so every lookup resolves at the
/// structural-digest level exactly as before the Lowerer interface existed.
class FnLowerer final : public Lowerer {
 public:
  explicit FnLowerer(LowerFn fn) : fn_(std::move(fn)) {}

  [[nodiscard]] std::optional<VariantKey> key(
      const frontend::Variant&) const override {
    return std::nullopt;
  }
  [[nodiscard]] ir::Module lower(const frontend::Variant& v,
                                 ir::BuildArena* arena = nullptr)
      const override {
    (void)arena;  // a plain LowerFn has nowhere to plug scratch in
    return fn_(v);
  }

 private:
  LowerFn fn_;
};

/// A lowerer with a declared identity. `fingerprint` must pin every input
/// of the lowering function other than the variant itself — the kernel
/// name and every configuration field that shapes the produced IR (grid
/// dims, NKI, element type, execution form, ...). Two KeyedLowerers with
/// equal fingerprints must lower equal variants to structurally identical
/// modules; debug builds of the cost cache verify that promise against
/// the structural digest on every variant-key hit.
class KeyedLowerer final : public Lowerer {
 public:
  KeyedLowerer(std::string fingerprint, ArenaLowerFn fn);

  [[nodiscard]] std::optional<VariantKey> key(
      const frontend::Variant& v) const override;
  [[nodiscard]] ir::Module lower(const frontend::Variant& v,
                                 ir::BuildArena* arena = nullptr)
      const override;

  [[nodiscard]] const std::string& fingerprint() const { return fingerprint_; }

 private:
  std::string fingerprint_;
  std::uint64_t seed_key_{0};    ///< fingerprint pre-hashed, primary seed
  std::uint64_t seed_check_{0};  ///< fingerprint pre-hashed, check seed
  ArenaLowerFn fn_;
};

}  // namespace tytra::dse
