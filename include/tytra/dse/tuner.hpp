#pragma once

// Targeted auto-tuning: the feedback path the cost model enables ("Our
// cost model also exposes the performance limiting parameter, allowing
// targeted optimization and opening the route to a feedback path in our
// compiler flow with automated, targeted tuning of designs", §I).
//
// Instead of exhaustively sweeping the space, the tuner walks it: at each
// step it reads the limiting factor of the current variant and applies
// the one transformation that attacks that wall (more lanes on a compute
// wall; stop with a diagnosis on a bandwidth wall, which no amount of
// replication fixes).

#include <optional>
#include <string>
#include <vector>

#include "tytra/dse/explorer.hpp"

namespace tytra::dse {

struct TuneStep {
  frontend::Variant variant;
  cost::CostReport report;
  std::string action;  ///< what the tuner did and why

  TuneStep(frontend::Variant v, cost::CostReport r, std::string a)
      : variant(std::move(v)), report(std::move(r)), action(std::move(a)) {}
};

struct TuneResult {
  std::vector<TuneStep> trajectory;
  /// Index of the highest-EKIT valid step; nullopt when no step is valid
  /// (an empty trajectory, or every visited variant exceeds the device —
  /// the same "no valid design" encoding as DseResult::best).
  std::optional<std::size_t> best;
  std::string verdict;  ///< final diagnosis (which wall stopped progress)

  /// Precondition: `best` is engaged (at least one valid step).
  [[nodiscard]] const TuneStep& best_step() const { return trajectory[*best]; }
};

/// Tunes the design for a kernel of `n` work-items starting from the
/// baseline pipeline. Evaluates at most `max_steps` variants — typically
/// far fewer than the exhaustive sweep (max_steps <= 0 yields an empty
/// trajectory). When `cache` is given, variants already costed (by a
/// prior sweep, or a prior tuner run over the same kernel) are looked up
/// instead of re-evaluated — and a keyed lowerer answers those lookups
/// from the variant-key table without lowering IR.
///
/// Deprecation-ready: prefer dse::Session::tune (dse/session.hpp), whose
/// session cache makes the sweep-then-tune pattern automatic. This free
/// function is a thin shim over a temporary Session — byte-identical
/// results — and will gain [[deprecated]] once in-tree callers migrate.
TuneResult tune(std::uint64_t n, const Lowerer& lower,
                const cost::DeviceCostDb& db, int max_steps = 12,
                CostCache* cache = nullptr);
TuneResult tune(std::uint64_t n, const LowerFn& lower,
                const cost::DeviceCostDb& db, int max_steps = 12,
                CostCache* cache = nullptr);

/// Renders the tuning trajectory.
std::string format_tune(const TuneResult& result);

}  // namespace tytra::dse
