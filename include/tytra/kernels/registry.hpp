#pragma once

// The workload registry: one place that knows every kernel the DSE
// engines can explore. A WorkloadInfo bundles everything a driver needs
// to turn "a name and a problem dimension" into a runnable dse::Job —
// the nd→NDRange mapping (with overflow/zero validation as a structured
// Result, not an exit()), a keyed-lowerer factory, and the reference-
// simulation hook that anchors a workload to its plain-C++ ground truth.
//
// SOR, Hotspot and LavaMD register themselves; adding a workload is one
// Registry::add (or a static kernels::WorkloadRegistrar in the defining
// translation unit) — after which `tytra-cc` lists it, validates its
// name, explores/tunes it and includes it in campaigns with zero driver
// changes. The `if (name == "sor") ... else if ...` ladder the tool used
// to hardcode is gone; its usage text is generated from this table.

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "tytra/dse/lowerer.hpp"
#include "tytra/dse/session.hpp"
#include "tytra/support/diag.hpp"

namespace tytra::kernels {

/// Everything the drivers need to know about one explorable workload.
struct WorkloadInfo {
  /// Registry key and CLI name ("sor", "hotspot", ...).
  std::string name;
  /// One-line description for generated usage/help text.
  std::string summary;
  /// What the --nd dimension means for this workload ("dim of the dim^3
  /// grid", "particle count", ...), also for generated help.
  std::string nd_help;
  /// Default problem dimension when the caller gives none.
  std::uint32_t default_nd{24};
  /// Maps the problem dimension to the NDRange size (work-items per
  /// kernel instance). Returns a Diag error for nd == 0 and for
  /// dimensions whose NDRange overflows uint64 — the validation the tool
  /// used to do ad hoc for SOR only.
  std::function<tytra::Result<std::uint64_t>(std::uint32_t nd)> ndrange;
  /// Builds the keyed lowerer for dimension nd (see kernels/lowerers.hpp);
  /// the fingerprint pins the full configuration, so session caches
  /// answer repeat jobs at the variant-key level.
  std::function<dse::KeyedLowerer(std::uint32_t nd)> make_lowerer;
  /// Reference-simulation hook: runs the plain-C++ reference
  /// implementation at dimension nd and folds the outputs into one
  /// deterministic checksum. Ties the registered lowering config to the
  /// kernel's ground truth (tests pin it; sized for small nd). Optional:
  /// file-backed workloads have no C++ reference and leave it empty.
  std::function<double(std::uint32_t nd)> reference_checksum;
  /// Where the workload came from: the `.tir` path for file-backed
  /// workloads, empty for built-ins. `tytra-cc list` shows it.
  std::string source;
};

/// The process-wide workload table. The built-in kernels are registered
/// on first access; user workloads join via add() / WorkloadRegistrar.
/// Not synchronized: register during startup, read afterwards.
class Registry {
 public:
  /// The singleton, with SOR/Hotspot/LavaMD already present.
  static Registry& instance();

  /// Registers a workload. Throws std::invalid_argument on an empty or
  /// duplicate name or a missing ndrange/make_lowerer hook.
  void add(WorkloadInfo info);

  /// Non-throwing registration: the same validation as add() reported as
  /// a structured Result (for runtime registration, e.g. `--ir` file
  /// workloads, where a duplicate name is user input, not a programming
  /// error). The returned pointer is valid until the next registration.
  tytra::Result<const WorkloadInfo*> try_add(WorkloadInfo info);

  /// Looks a workload up by name; null when absent.
  [[nodiscard]] const WorkloadInfo* find(std::string_view name) const;

  /// All workloads, in registration order (built-ins first).
  [[nodiscard]] const std::vector<WorkloadInfo>& all() const {
    return entries_;
  }
  [[nodiscard]] std::vector<std::string> names() const;
  /// "sor|hotspot|lavamd" — for generated usage text, so the list can
  /// never drift from what is actually registered.
  [[nodiscard]] std::string names_joined(std::string_view sep = "|") const;
  [[nodiscard]] std::size_t size() const { return entries_.size(); }

  /// Builds a ready-to-run dse::Job for `workload` at dimension `nd`:
  /// resolves the NDRange (propagating the structured validation error),
  /// instantiates the keyed lowerer, and labels the job. The caller
  /// still picks the device (Job::device / Job::db).
  [[nodiscard]] tytra::Result<dse::Job> make_job(std::string_view workload,
                                                 std::uint32_t nd) const;

 private:
  std::vector<WorkloadInfo> entries_;
};

/// The `tytra-cc list` rendering of a registry: one block per workload
/// (name, summary, nd help with the default, source for file-backed
/// workloads) plus the device-preset footer. Shared by the CLI and the
/// daemon's `list` response so the two can never drift.
std::string format_registry(const Registry& reg);

/// The same enumeration as JSON: {"workloads": [{name, summary, nd_help,
/// default_nd, source}...], "presets": [...]} — source is null for
/// built-ins. Rendering style matches the dse::format_*_json family.
std::string format_registry_json(const Registry& reg);

/// Static-initialization helper: `static WorkloadRegistrar reg{info};`
/// in a workload's translation unit self-registers it before main.
struct WorkloadRegistrar {
  explicit WorkloadRegistrar(WorkloadInfo info) {
    Registry::instance().add(std::move(info));
  }
};

}  // namespace tytra::kernels
