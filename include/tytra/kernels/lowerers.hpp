#pragma once

// Keyed lowerers for the built-in kernels: the bridge between the kernel
// library and the DSE engines' variant-key fast path. Each factory wraps
// the corresponding `make_*` builder in a dse::KeyedLowerer whose
// fingerprint pins every configuration field that shapes the produced IR
// (grid dims, NKI, element type, execution form, ...), so a warm
// CostCache can answer repeat sweeps from the variant-key table without
// lowering any IR. The `lanes` field of the passed config is ignored —
// it is overwritten per variant with `Variant::lanes()`.

#include "tytra/dse/lowerer.hpp"
#include "tytra/kernels/kernels.hpp"

namespace tytra::kernels {

/// SOR over an im x jm x km grid; explore with n = im*jm*km.
dse::KeyedLowerer sor_lowerer(SorConfig config);

/// Hotspot over a rows x cols floorplan; explore with n = rows*cols.
dse::KeyedLowerer hotspot_lowerer(HotspotConfig config);

/// LavaMD over `particles` work-items; explore with n = particles.
dse::KeyedLowerer lavamd_lowerer(LavamdConfig config);

}  // namespace tytra::kernels
