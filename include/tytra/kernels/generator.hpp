#pragma once

// Seeded random-kernel generator: emits valid, verifier-clean pipelined
// TyTra-IR modules with randomized op mixes, stream offsets and port
// counts. The property suite (tests/test_generated_kernels.cpp) drives
// the whole stack — printer/parser round-trips, structural digests, the
// cost model vs the cycle simulator, and the two-level cost cache —
// over hundreds of these instead of only the three built-in kernels.
//
// Determinism contract: generate_kernel(seed, opts) is a pure function
// of its arguments. A failing design is reproduced by its seed alone.

#include <cstdint>

#include "tytra/ir/module.hpp"

namespace tytra::kernels {

/// Bounds for the generated design space. Defaults keep every design a
/// plausible streaming PE: a handful of ports, a few stream offsets, an
/// op DAG that consumes every input.
struct GeneratorOptions {
  std::uint32_t min_inputs{1};
  std::uint32_t max_inputs{5};
  std::uint32_t max_outputs{2};
  std::uint32_t max_offsets{3};
  /// Extra ops appended after the input-consuming reduction tree.
  std::uint32_t max_extra_ops{16};
  std::uint32_t max_nki{20};
};

/// Builds one random module from `seed`. The result always passes
/// ir::verify (the property suite asserts it): a pipelined @f0 whose DAG
/// consumes every input port and stream offset, one store per output
/// port, an optional reduction, and a call-only @main — so the design is
/// explorable over lane variants exactly like a file-backed workload.
ir::Module generate_kernel(std::uint64_t seed,
                           const GeneratorOptions& options = {});

}  // namespace tytra::kernels
