#pragma once

// File-backed workloads: the bridge from a textual `.tir` design to the
// DSE stack (ROADMAP item 3). A `.tir` file is parsed (ir::parse_module),
// verified (ir::verify) and wrapped in a dse::KeyedLowerer whose
// fingerprint is the baseline module's structural digest — so identical
// file content at the same problem dimension shares variant-key cache
// entries across jobs and sessions, and any edit to the file (or a
// different --nd) changes the digest and cleanly misses the cache.
//
// Re-parameterization contract: every user constant named `!ND<k>`
// (case-insensitive) is a problem dimension. The loader re-parses the
// file with all of them overridden to the requested `--nd`, so sizes
// written as expressions over them (`!ngs = ND1*ND1*ND1`,
// `memobj @m_p global ui18 x ND1*ND1*ND1`, offsets `!-ND1`) re-derive
// consistently. A file with no `!ND<k>` constants is fixed-size: its
// default_nd is 1 and any other --nd is a structured error.
//
// Lane re-parameterization goes through the same transform layer as the
// built-in kernels: a variant with L par lanes is lowered by
// replicate_lanes, which splits every top-level port (and its Manage-IR
// backing) into L per-lane streams and wraps the entry calls in a `par`
// function — the same shape ModuleBuilder-based kernels emit, so a
// file-backed SOR sweeps byte-identically to the built-in one.

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "tytra/dse/lowerer.hpp"
#include "tytra/ir/module.hpp"
#include "tytra/kernels/registry.hpp"
#include "tytra/support/diag.hpp"

namespace tytra::kernels {

/// A parsed, verified `.tir` design plus what the loader learned about
/// its parameterization.
struct FileWorkload {
  /// The 1-lane design at the requested dimension.
  std::shared_ptr<const ir::Module> baseline;
  /// Lowercased `nd<k>` constant names in definition order; empty for
  /// fixed-size files.
  std::vector<std::string> nd_constants;
  /// The file's own value of the first `!ND<k>` constant (1 when fixed).
  std::uint32_t default_nd{1};
  /// "tir/digest=<key>.<check>" — the baseline's structural digest, the
  /// KeyedLowerer fingerprint (see dse/lowerer.hpp for the contract).
  std::string fingerprint;
  /// ir::lint findings over the baseline (structural rules only — no
  /// device is in scope at load time). Advisory: lint never blocks a
  /// load, whatever the finding severity; callers surface or ignore it.
  std::vector<tytra::Diag> lint;
};

/// Parses + verifies `source`; `nd` != 0 overrides every `!ND<k>`
/// constant (0 keeps the file's own values). Errors — lexical, syntactic,
/// semantic (verifier) or a zero NDRange — come back as a Result carrying
/// the first diagnostic with its line/column.
tytra::Result<FileWorkload> load_file_workload(std::string_view source,
                                               std::uint32_t nd = 0);

/// The transform layer's C1 lane replication applied to a parsed
/// baseline: lanes == 1 returns a copy; lanes > 1 replicates every port
/// and its backing mem/stream objects per lane (`p` -> `p_l0`..) with
/// per-lane sizes, and wraps @main's calls in a fresh `par` function.
/// Throws std::invalid_argument when the module has no @main or @main
/// contains anything but calls (checked up front by the loader).
ir::Module replicate_lanes(const ir::Module& baseline, std::uint32_t lanes);

/// Builds the KeyedLowerer for a verified baseline: fingerprint = the
/// module's structural digest, lowering = replicate_lanes at the
/// variant's lane count.
dse::KeyedLowerer file_lowerer(std::shared_ptr<const ir::Module> baseline);

/// Loads `source_text` and registers it in `reg` under `name`, recording
/// `source_path` as the workload's origin (shown by `tytra-cc list`).
/// Parse/verify failures, a non-replicable @main and duplicate names all
/// come back as structured errors; on success the workload is explorable
/// exactly like a built-in. The returned pointer is valid until the next
/// registration. `lint_out`, when non-null, receives the baseline's lint
/// findings (advisory only; they never fail the registration).
tytra::Result<const WorkloadInfo*> register_file_workload(
    Registry& reg, std::string name, std::string source_path,
    std::string source_text, std::vector<tytra::Diag>* lint_out = nullptr);

/// Convenience: read `path` from disk and register it under the path as
/// the workload name. Idempotent for a repeated identical path.
tytra::Result<const WorkloadInfo*> register_file_workload(
    Registry& reg, const std::string& path,
    std::vector<tytra::Diag>* lint_out = nullptr);

}  // namespace tytra::kernels
