#pragma once

// Stream plumbing helpers for multi-lane kernel variants: partitioning
// full input streams into per-lane chunks (the `reshapeTo` data view) and
// gathering per-lane outputs back into a single stream.

#include <cstdint>
#include <string>

#include "tytra/sim/functional.hpp"

namespace tytra::kernels {

/// Lane-suffixed port name, e.g. ("p", 2) -> "p_l2".
std::string lane_port_name(const std::string& base, std::uint32_t lane);

/// Splits every stream in `full` into `lanes` contiguous chunks named
/// `<name>_l<k>`. Stream lengths must be divisible by `lanes`
/// (throws std::invalid_argument otherwise). With lanes == 1 the input is
/// returned unchanged.
sim::StreamMap partition_streams(const sim::StreamMap& full,
                                 std::uint32_t lanes);

/// Reassembles the per-lane outputs `<base>_l<k>` of `lanes` lanes into
/// one stream (inverse of partition_streams). With lanes == 1 returns the
/// stream named `base` directly. Throws std::invalid_argument when a lane
/// output is missing.
std::vector<double> gather_output(const sim::StreamMap& outputs,
                                  const std::string& base,
                                  std::uint32_t lanes);

}  // namespace tytra::kernels
