#pragma once

// The lint driver shared by `tytra-cc lint` and the daemon's `lint` verb:
// resolves workload names against a registry, lowers each baseline design
// and runs the ir::lint pass framework over it, composing the full report
// (text or JSON) off-line. Both front-ends render through this one
// function, so standalone and daemon output can never drift — the same
// discipline as kernels::format_registry.

#include <cstdint>
#include <string>
#include <vector>

#include "tytra/ir/lint.hpp"
#include "tytra/kernels/registry.hpp"

namespace tytra::cost {
class DeviceCostDb;
}  // namespace tytra::cost

namespace tytra::kernels {

struct LintDriverOptions {
  /// Workload names to lint; empty = every registered workload.
  std::vector<std::string> targets;
  /// Problem dimension; 0 = each workload's default_nd.
  std::uint32_t nd{0};
  /// Calibrated device for the device-aware rules; null skips them.
  const cost::DeviceCostDb* db{nullptr};
  bool json{false};
  ir::lint::FailOn fail_on{ir::lint::FailOn::Error};
};

/// What a front-end prints and returns. On exit_code 1 with a non-empty
/// `err`, `out` is empty (the no-partial-stdout contract); exit_code 1
/// with empty `err` means findings at or above the --fail-on threshold.
struct LintDriverResult {
  int exit_code{0};
  std::string out;
  std::string err;
};

/// Runs the lint pipeline over `options.targets` against `reg`.
/// Never throws: lowering or analysis failures become exit_code 1.
LintDriverResult run_lint_driver(const Registry& reg,
                                 const LintDriverOptions& options);

}  // namespace tytra::kernels
