#pragma once

// The three scientific kernels of the paper's evaluation, expressed as
// TyTra-IR builders plus plain-C++ reference implementations:
//  1. SOR — the successive over-relaxation kernel of the LES weather
//     simulator (a 7-point 3-D stencil with a reduction);
//  2. Hotspot — the Rodinia processor-temperature stencil;
//  3. LavaMD — the Rodinia molecular-dynamics particle kernel.
//
// Each builder can produce the baseline single-pipeline variant (C2) or a
// reshaped multi-lane variant (C1) with any lane count dividing the
// NDRange — the design variants the type transformations of §II generate.

// Every `make_*` builder accepts an optional ir::BuildArena: per-worker
// recycled builder storage that strips the per-variant allocation churn
// out of cold DSE lowering (null keeps plain allocation; the produced
// module is an ordinary owning Module either way).

#include <cstdint>
#include <vector>

#include "tytra/ir/arena.hpp"
#include "tytra/ir/module.hpp"
#include "tytra/sim/cpu_model.hpp"
#include "tytra/sim/functional.hpp"

namespace tytra::kernels {

// ---------------------------------------------------------------------------
// SOR
// ---------------------------------------------------------------------------

struct SorConfig {
  std::uint32_t im{24};
  std::uint32_t jm{24};
  std::uint32_t km{24};
  std::uint32_t nki{1000};      ///< nmaxp: SOR iterations per run
  std::uint32_t lanes{1};       ///< KNL (must divide im*jm*km)
  ir::ExecForm form{ir::ExecForm::B};
  ir::ScalarType elem{ir::ScalarType::uint(18)};
  std::int64_t omega{3};        ///< relaxation factor (integer version)

  [[nodiscard]] std::uint64_t ngs() const {
    return static_cast<std::uint64_t>(im) * jm * km;
  }
};

/// Builds the SOR design variant. Throws std::invalid_argument when the
/// lane count does not divide the NDRange.
ir::Module make_sor(const SorConfig& config,
                    ir::BuildArena* arena = nullptr);

/// Input streams for a lane count of 1 (port names p, rhs, cn1, cn2l,
/// cn2s, cn3l, cn3s, cn4l, cn4s). Deterministic, small values.
sim::StreamMap sor_inputs(const SorConfig& config, std::uint64_t seed = 1);

/// Reference implementation: new pressure per point, plus the SOR-error
/// reduction, with the same clamped-boundary semantics as the simulator.
struct SorReference {
  std::vector<double> p_new;
  double sor_err_acc{0};
};
SorReference sor_reference(const SorConfig& config, const sim::StreamMap& inputs);

/// Per-item CPU cost of the SOR kernel (for the baseline model).
sim::CpuKernelCost sor_cpu_cost();

/// CPU parameters of the case-study host (paper §VII: intel-i7 quad at
/// 1.6 GHz, single-threaded Fortran, gcc -O2). The sustained IPC is the
/// empirically calibrated value for the LES SOR loop nest (strided
/// k-plane accesses keep it well below the core's peak issue rate).
sim::CpuParams case_study_cpu();

// ---------------------------------------------------------------------------
// Hotspot
// ---------------------------------------------------------------------------

struct HotspotConfig {
  std::uint32_t rows{64};
  std::uint32_t cols{64};
  std::uint32_t nki{360};
  std::uint32_t lanes{1};
  ir::ExecForm form{ir::ExecForm::B};
  ir::ScalarType elem{ir::ScalarType::uint(18)};

  [[nodiscard]] std::uint64_t ngs() const {
    return static_cast<std::uint64_t>(rows) * cols;
  }
};

ir::Module make_hotspot(const HotspotConfig& config,
                        ir::BuildArena* arena = nullptr);
sim::StreamMap hotspot_inputs(const HotspotConfig& config, std::uint64_t seed = 2);
std::vector<double> hotspot_reference(const HotspotConfig& config,
                                      const sim::StreamMap& inputs);
sim::CpuKernelCost hotspot_cpu_cost();

// ---------------------------------------------------------------------------
// LavaMD
// ---------------------------------------------------------------------------

struct LavamdConfig {
  std::uint64_t particles{4096};
  std::uint32_t nki{1};
  std::uint32_t lanes{1};
  /// DV: vectorization degree per lane (C3/C5 configurations). Work-items
  /// are packed dv-wide into vector ports; must divide particles/lanes.
  std::uint32_t dv{1};
  ir::ExecForm form{ir::ExecForm::B};
  ir::ScalarType elem{ir::ScalarType::sint(32)};
};

ir::Module make_lavamd(const LavamdConfig& config,
                       ir::BuildArena* arena = nullptr);
sim::StreamMap lavamd_inputs(const LavamdConfig& config, std::uint64_t seed = 3);
struct LavamdReference {
  std::vector<double> pot;
  double pot_acc{0};
};
LavamdReference lavamd_reference(const LavamdConfig& config,
                                 const sim::StreamMap& inputs);
sim::CpuKernelCost lavamd_cpu_cost();

// ---------------------------------------------------------------------------
// Coarse-grained pipeline exemplar (Fig. 7 configuration 3 / Fig. 8)
// ---------------------------------------------------------------------------

/// A two-stage coarse-grained pipeline: stage A computes a 3-point stencil
/// sum into an intermediate stream, stage B applies a weighting with a
/// single-cycle custom combinatorial block (comb) folded in — the exact
/// configuration the paper's Fig. 8 extracts.
struct CoarseConfig {
  std::uint64_t items{4096};
  std::uint32_t nki{10};
  ir::ExecForm form{ir::ExecForm::B};
  ir::ScalarType elem{ir::ScalarType::uint(18)};
};

ir::Module make_coarse_pipeline(const CoarseConfig& config);
sim::StreamMap coarse_inputs(const CoarseConfig& config, std::uint64_t seed = 4);
/// Reference for the final output stream "y".
std::vector<double> coarse_reference(const CoarseConfig& config,
                                     const sim::StreamMap& inputs);

}  // namespace tytra::kernels
