#pragma once

// Resource-usage vector shared by the fabric synthesizer (ground truth)
// and the cost model (estimates): the four FPGA resource classes the paper
// tracks (ALUTs, registers, block-RAM bits, DSP blocks).

#include <cstdint>
#include <string>

#include "tytra/target/device.hpp"

namespace tytra {

struct ResourceVec {
  double aluts{0};
  double regs{0};
  double bram_bits{0};
  double dsps{0};

  ResourceVec& operator+=(const ResourceVec& o) {
    aluts += o.aluts;
    regs += o.regs;
    bram_bits += o.bram_bits;
    dsps += o.dsps;
    return *this;
  }
  friend ResourceVec operator+(ResourceVec a, const ResourceVec& b) {
    a += b;
    return a;
  }
  friend ResourceVec operator*(ResourceVec a, double k) {
    a.aluts *= k;
    a.regs *= k;
    a.bram_bits *= k;
    a.dsps *= k;
    return a;
  }
  friend bool operator==(const ResourceVec&, const ResourceVec&) = default;

  [[nodiscard]] std::string to_string() const;
};

/// Percentage utilization of each resource class against a device's
/// capacities (100 = full).
struct Utilization {
  double aluts{0};
  double regs{0};
  double bram{0};
  double dsps{0};

  /// The largest of the four (the binding resource).
  [[nodiscard]] double max() const;
  /// True when every class fits (<= 100%).
  [[nodiscard]] bool fits() const { return max() <= 100.0; }
};

/// Computes utilization of `used` against `device` (accounting for the
/// shell overhead reserved by the board support package).
Utilization utilization(const ResourceVec& used,
                        const target::DeviceDesc& device);

}  // namespace tytra
