#pragma once

// Synthesizeable-HDL emission from TyTra-IR — the code-generation flow of
// the paper's Fig. 11: schedule the SSA instructions, create data and
// control delay lines, connect functional units in a pipeline, generate
// the stream-control and offset-buffer cores, and emit a compute unit
// that an HLS framework (Maxeler/SDAccel-style shell) can wrap.
//
// The generated text is plain synthesizeable Verilog-2001: one primitive
// module per opcode used (behavioral body behind a LATENCY parameter), a
// delay-line module, an offset-buffer module, one module per IR function
// and a top-level compute unit.

#include <map>
#include <string>

#include "tytra/ir/module.hpp"

namespace tytra::codegen {

struct VerilogDesign {
  std::string top_module;       ///< name of the top-level compute unit
  std::string source;           ///< full Verilog text (all modules)
  int pipeline_depth{0};        ///< KPD of the emitted kernel pipeline
  std::size_t primitive_count{0};  ///< functional-unit instances emitted
};

/// Emits the whole design. Preconditions: the module verifies.
VerilogDesign emit_verilog(const ir::Module& module);

/// Verilog-safe identifier for an IR value name.
std::string sanitize_identifier(std::string_view name);

}  // namespace tytra::codegen
