#pragma once

// MaxJ wrapper generation for HLS-framework integration (paper §VII):
// inserting TyTra-generated HDL into the Maxeler flow needs a wrapper
// kernel in MaxJ plus a manager connecting the streams. The paper creates
// these manually and notes that "generating them in our compiler is
// expected to be a relatively trivial engineering task" — this module is
// that task.

#include <string>

#include "tytra/ir/module.hpp"

namespace tytra::codegen {

struct MaxjWrapper {
  std::string kernel_class;   ///< <Name>Kernel.maxj contents
  std::string manager_class;  ///< <Name>Manager.maxj contents
  std::string kernel_name;    ///< Java class name of the kernel
};

/// Generates the MaxJ wrapper pair for the design's top-level compute
/// unit: a Kernel subclass declaring every streaming port and pushing the
/// custom HDL node, and a Manager wiring the streams to PCIe/DRAM
/// according to the memory-execution form.
MaxjWrapper emit_maxj_wrapper(const ir::Module& module);

}  // namespace tytra::codegen
