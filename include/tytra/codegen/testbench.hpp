#pragma once

// Self-checking Verilog testbench generation: pairs the emitted compute
// unit with stimulus vectors from the functional simulator, so the HDL
// can be validated in any Verilog simulator against the same data the
// cost-model flow was verified with (the verification loop a downstream
// user needs before paying for synthesis).

#include <string>

#include "tytra/ir/module.hpp"
#include "tytra/sim/functional.hpp"

namespace tytra::codegen {

struct TestbenchOptions {
  /// Cap on the number of work-items driven (0 = all).
  std::size_t max_items{256};
  /// Extra cycles to keep the clock running after the last input (pipeline
  /// drain); 0 derives it from the design's KPD.
  int drain_cycles{0};
};

/// Generates a testbench module `tb_<top>` that:
///  * instantiates the design's top-level compute unit,
///  * drives every input port from `$readmemh`-style inline vectors taken
///    from `inputs` (one word per work-item),
///  * compares every output port against `expected` word-by-word while
///    `valid_out` is asserted, and
///  * prints "TB PASS"/"TB FAIL" with a mismatch count.
///
/// Preconditions: the module verifies; `inputs` covers all input ports
/// and `expected` covers all output ports (as produced by
/// sim::run_functional). Throws std::invalid_argument otherwise.
std::string emit_testbench(const ir::Module& module,
                           const sim::StreamMap& inputs,
                           const sim::StreamMap& expected,
                           const TestbenchOptions& options = {});

}  // namespace tytra::codegen
