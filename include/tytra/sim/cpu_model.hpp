#pragma once

// CPU baseline timing model: the single-threaded Fortran/gcc -O2 reference
// of the paper's case study (§VII), running on the Maxeler desktop host
// (intel-i7 at 1.6 GHz). A simple roofline: per-item compute cost vs
// memory traffic against a cache-aware bandwidth.

#include <cstdint>

namespace tytra::sim {

struct CpuParams {
  double freq_hz{1.6e9};
  double ipc{2.2};                 ///< sustained scalar ops/cycle, -O2
  double cache_bytes{8.0 * 1024 * 1024};
  double cache_bw{25.0e9};         ///< bytes/s when resident in LLC
  double mem_bw{10.0e9};           ///< bytes/s from DRAM (single thread)
  double call_overhead_seconds{0.5e-6};
};

struct CpuKernelCost {
  double ops_per_item{0};    ///< arithmetic operations per work-item
  double bytes_per_item{0};  ///< memory traffic per work-item
};

/// Seconds for one kernel sweep over `items` work-items.
double cpu_kernel_seconds(std::uint64_t items, const CpuKernelCost& cost,
                          const CpuParams& params = {});

/// Seconds for `nki` repeated sweeps (the SOR iteration loop); the working
/// set determines whether iterations re-stream from DRAM or hit cache.
double cpu_total_seconds(std::uint64_t items, std::uint32_t nki,
                         const CpuKernelCost& cost, const CpuParams& params = {});

}  // namespace tytra::sim
