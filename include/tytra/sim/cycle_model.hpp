#pragma once

// Cycle-level execution timing of a TyTra design: the stand-in for running
// the bitstream on the Maxeler testbed. Unlike the closed-form EKIT
// estimate, this model walks the execution — per-instance control startup,
// offset-buffer priming, pipeline fill and drain, bandwidth-throttled
// steady state (through the DRAM/host link models directly), and the
// pipeline-bubble overheads real stream engines exhibit at stream
// boundaries. Its results are the "actual" columns of Table II and the
// runtimes of Figs. 17/18.

#include <cstdint>

#include "tytra/ir/analysis.hpp"
#include "tytra/ir/module.hpp"
#include "tytra/membench/dram.hpp"
#include "tytra/target/device.hpp"

namespace tytra::sim {

struct TimingResult {
  double cycles_per_instance{0};  ///< device cycles, one kernel instance
  double seconds_per_instance{0}; ///< wall time incl. host share
  double total_seconds{0};        ///< all NKI instances
  double host_seconds{0};         ///< host<->device transfer total
  double device_seconds{0};       ///< device execution total
  double freq_hz{0};              ///< clock the design ran at
};

struct TimingOptions {
  /// Clock to run at; 0 = the device's default frequency. Pass the fabric
  /// synthesis Fmax for post-synthesis accuracy.
  double freq_hz{0};
  /// Per-kernel-call software overhead on the host (driver/API), seconds.
  double call_overhead_seconds{25e-6};
  /// Extra per-stream setup cost per kernel call: handling many short
  /// streams dominates small grids (paper §VII's observation).
  double per_stream_overhead_seconds{6e-6};
};

/// Simulates execution timing of the design. The summary overload reuses
/// a one-traversal `ir::AnalysisSummary` (design parameters, offset
/// counts, per-port stride resolutions) instead of re-walking the module;
/// results are bit-identical.
/// Preconditions: the module verifies and has a non-zero NDRange.
TimingResult simulate_timing(const ir::Module& module,
                             const target::DeviceDesc& device,
                             const TimingOptions& options = {});
TimingResult simulate_timing(const ir::Module& module,
                             const target::DeviceDesc& device,
                             const ir::AnalysisSummary& summary,
                             const TimingOptions& options = {});

}  // namespace tytra::sim
