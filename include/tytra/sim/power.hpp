#pragma once

// Δ-power / Δ-energy model for the case-study comparison (Fig. 18): the
// paper measures the *increase over idle* of the host+device node on a
// power meter, for both CPU-only and CPU+FPGA solutions.

#include "tytra/resources.hpp"
#include "tytra/target/device.hpp"

namespace tytra::sim {

/// Δ-power (watts above idle) of the FPGA solution: board static draw plus
/// dynamic power proportional to the active logic and the clock.
/// `activity` is the average toggle rate of the datapath (0..1).
double fpga_delta_watts(const ResourceVec& used,
                        const target::DeviceDesc& device, double freq_hz,
                        double activity = 0.25);

/// Δ-power of the CPU running the kernel flat-out on one core.
double cpu_delta_watts();

/// Δ-power of the (mostly idle) host while the FPGA computes: the host
/// spins on stream completion.
double host_assist_delta_watts();

/// Energy above idle for a run of `seconds` at `watts`.
double delta_energy_joules(double watts, double seconds);

}  // namespace tytra::sim
