#pragma once

// Functional (value-level) execution of a TyTra-IR design over real data
// streams. Used to validate that lowered design variants compute the same
// results as the reference kernel implementations — the "correct by
// construction" property of the type-transformation flow is checked, not
// assumed.
//
// Semantics:
//  * each input port carries one value per work-item; every processing
//    element maps its body over the work-items of its streams;
//  * stream offsets read the base stream at (i + offset), clamped to the
//    stream bounds (matching the boundary handling of the reference
//    kernels);
//  * an instruction writing a global that names an output port streams its
//    value; writing any other global accumulates (reduction), carried
//    across work-items and lanes;
//  * par functions run each child on its own port bindings (reshaped
//    lanes), producing per-lane output streams.
//
// Integer types wrap to their declared bit-width, as the hardware would.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "tytra/ir/module.hpp"
#include "tytra/support/diag.hpp"

namespace tytra::sim {

/// A named collection of streams (port name -> one value per work-item).
using StreamMap = std::map<std::string, std::vector<double>>;

struct ExecResult {
  StreamMap outputs;                        ///< one stream per output port
  std::map<std::string, double> reductions; ///< final accumulator values
  std::uint64_t items{0};                   ///< work-items executed (all lanes)
};

/// Runs the design on the given input streams. All input ports must be
/// present in `inputs` and all streams bound to one PE must have equal
/// length. Returns a diagnostic on binding errors.
tytra::Result<ExecResult> run_functional(const ir::Module& module,
                                         const StreamMap& inputs);

/// Applies the bit-width wrap of `type` to a raw value (exposed for tests).
double wrap_to_type(double value, const ir::ScalarType& type);

}  // namespace tytra::sim
