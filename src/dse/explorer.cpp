#include "tytra/dse/explorer.hpp"

#include <chrono>
#include <sstream>

#include "tytra/support/strings.hpp"

namespace tytra::dse {

DseResult explore(std::uint64_t n, const LowerFn& lower,
                  const cost::DeviceCostDb& db, const DseOptions& options) {
  const auto t0 = std::chrono::steady_clock::now();
  DseResult result;
  const auto variants =
      frontend::enumerate_variants(n, options.max_lanes, options.include_seq);
  for (const auto& v : variants) {
    ir::Module module = lower(v);
    cost::CostReport report = cost::cost_design(module, db);
    result.entries.emplace_back(v, std::move(report));
  }
  for (std::size_t i = 0; i < result.entries.size(); ++i) {
    const auto& e = result.entries[i];
    if (!e.report.valid) continue;
    if (!result.best ||
        e.report.throughput.ekit >
            result.entries[*result.best].report.throughput.ekit) {
      result.best = i;
    }
  }
  const auto t1 = std::chrono::steady_clock::now();
  result.explore_seconds =
      std::chrono::duration_cast<std::chrono::duration<double>>(t1 - t0).count();
  return result;
}

cost::CostReport maxj_baseline(std::uint64_t n, const LowerFn& lower,
                               const cost::DeviceCostDb& db) {
  return cost::cost_design(lower(frontend::baseline_variant(n)), db);
}

std::string format_sweep(const DseResult& result) {
  std::ostringstream os;
  os << tytra::pad_left("lanes", 6) << tytra::pad_left("Regs%", 8)
     << tytra::pad_left("Aluts%", 8) << tytra::pad_left("BRAM%", 8)
     << tytra::pad_left("DSPs%", 8) << tytra::pad_left("EKIT/s", 12)
     << "  limiting" << "\n";
  for (const auto& e : result.entries) {
    const auto& u = e.report.resources.util;
    os << tytra::pad_left(std::to_string(e.report.params.knl), 6)
       << tytra::pad_left(tytra::format_fixed(u.regs, 1), 8)
       << tytra::pad_left(tytra::format_fixed(u.aluts, 1), 8)
       << tytra::pad_left(tytra::format_fixed(u.bram, 1), 8)
       << tytra::pad_left(tytra::format_fixed(u.dsps, 1), 8)
       << tytra::pad_left(tytra::format_fixed(e.report.throughput.ekit, 1), 12)
       << "  " << cost::wall_name(e.report.throughput.limiting)
       << (e.report.valid ? "" : "  [INVALID: exceeds device]") << "\n";
  }
  if (result.best) {
    os << "best: " << result.entries[*result.best].variant.describe() << "\n";
  }
  return os.str();
}

}  // namespace tytra::dse
