#include "tytra/dse/explorer.hpp"

#include <sstream>
#include <stdexcept>

#include "tytra/dse/session.hpp"
#include "tytra/support/strings.hpp"

// The sweep engine lives in session.cpp (dse::Session is the one
// evaluation path); this file keeps the legacy free-function surface —
// thin shims over a temporary cache-less Session — and the table
// renderers.

namespace tytra::dse {

namespace detail {
// Shim plumbing shared with tuner.cpp; defined in session.cpp.
Job borrow_job(std::uint64_t n, const Lowerer& lower,
               const cost::DeviceCostDb& db);
Session shim_session(std::uint32_t num_threads);
}  // namespace detail

namespace {

void validate_options(const DseOptions& options) {
  // API-boundary validation: a zero lane cap always meant "empty sweep by
  // accident", never a real request — reject it with a structured error
  // instead of silently enumerating nothing.
  if (options.max_lanes == 0) {
    throw std::invalid_argument(
        "dse::explore: DseOptions::max_lanes must be >= 1");
  }
}

}  // namespace

DseResult explore(std::uint64_t n, const Lowerer& lower,
                  const cost::DeviceCostDb& db, const DseOptions& options) {
  validate_options(options);
  Session session = detail::shim_session(options.num_threads);
  Job job = detail::borrow_job(n, lower, db);
  job.max_lanes = options.max_lanes;
  job.include_seq = options.include_seq;
  return session.explore(job, options.cache);
}

DseResult explore(std::uint64_t n, const LowerFn& lower,
                  const cost::DeviceCostDb& db, const DseOptions& options) {
  return explore(n, FnLowerer(lower), db, options);
}

cost::CostReport maxj_baseline(std::uint64_t n, const Lowerer& lower,
                               const cost::DeviceCostDb& db) {
  Session session = detail::shim_session(1);
  return session.baseline(detail::borrow_job(n, lower, db));
}

cost::CostReport maxj_baseline(std::uint64_t n, const LowerFn& lower,
                               const cost::DeviceCostDb& db) {
  return maxj_baseline(n, FnLowerer(lower), db);
}

std::string format_sweep(const DseResult& result) {
  std::ostringstream os;
  os << tytra::pad_left("lanes", 6) << tytra::pad_left("Regs%", 8)
     << tytra::pad_left("Aluts%", 8) << tytra::pad_left("BRAM%", 8)
     << tytra::pad_left("DSPs%", 8) << tytra::pad_left("EKIT/s", 12)
     << "  limiting" << "\n";
  for (const auto& e : result.entries) {
    const auto& u = e.report.resources.util;
    os << tytra::pad_left(std::to_string(e.report.params.knl), 6)
       << tytra::pad_left(tytra::format_fixed(u.regs, 1), 8)
       << tytra::pad_left(tytra::format_fixed(u.aluts, 1), 8)
       << tytra::pad_left(tytra::format_fixed(u.bram, 1), 8)
       << tytra::pad_left(tytra::format_fixed(u.dsps, 1), 8)
       << tytra::pad_left(tytra::format_fixed(e.report.throughput.ekit, 1), 12)
       << "  " << cost::wall_name(e.report.throughput.limiting)
       << (e.report.valid ? "" : "  [INVALID: exceeds device]") << "\n";
  }
  if (result.best) {
    os << "best: " << result.entries[*result.best].variant.describe() << "\n";
  }
  return os.str();
}

std::string format_pareto(const DseResult& result) {
  std::ostringstream os;
  os << tytra::pad_left("lanes", 6) << tytra::pad_left("EKIT/s", 12)
     << tytra::pad_left("util%", 8) << tytra::pad_left("bw-share", 10)
     << "  limiting" << "\n";
  for (const auto& p : result.pareto) {
    const auto& e = result.entries[p.index];
    os << tytra::pad_left(std::to_string(e.report.params.knl), 6)
       << tytra::pad_left(tytra::format_fixed(p.ekit, 1), 12)
       << tytra::pad_left(tytra::format_fixed(p.util_max, 1), 8)
       << tytra::pad_left(tytra::format_fixed(p.bw_share, 3), 10)
       << "  " << cost::wall_name(e.report.throughput.limiting) << "\n";
  }
  os << "frontier: " << result.pareto.size() << " of " << result.entries.size()
     << " designs\n";
  return os.str();
}

}  // namespace tytra::dse
