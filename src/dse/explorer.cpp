#include "tytra/dse/explorer.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <map>
#include <mutex>
#include <sstream>
#include <thread>

#include "tytra/support/strings.hpp"

namespace tytra::dse {

namespace {

std::uint32_t resolve_threads(std::uint32_t requested, std::size_t work_items) {
  // The clamping policy is documented on DseOptions::num_threads: at most
  // 4x the core count and at most one worker per variant. The former
  // worker<=shard clamp is gone — cache reads are lock-free, so a warm
  // (hit-dominated) sweep scales past the shard count instead of queuing
  // on shard locks.
  std::uint32_t cores = std::thread::hardware_concurrency();
  if (cores == 0) cores = 1;
  std::uint32_t n = requested == 0 ? cores : std::min(requested, 4 * cores);
  if (work_items < n) n = static_cast<std::uint32_t>(work_items);
  return n == 0 ? 1 : n;
}

/// Evaluates variants [0, n) into per-variant slots. The work-queue is a
/// single atomic cursor; slots are disjoint, so workers never contend on
/// results, and the merge in enumeration order is deterministic no matter
/// the interleaving.
void evaluate_batch(const std::vector<frontend::Variant>& variants,
                    const Lowerer& lower, const cost::DeviceCostDb& db,
                    CostCache* cache, std::uint32_t num_threads,
                    std::vector<std::optional<cost::CostReport>>& slots,
                    CacheStats& sweep_stats) {
  std::atomic<std::size_t> cursor{0};
  std::atomic<std::uint64_t> hits{0};
  std::atomic<std::uint64_t> misses{0};
  std::atomic<std::uint64_t> variant_hits{0};
  std::mutex error_mu;
  std::exception_ptr first_error;

  auto worker = [&] {
    // Per-worker lowering scratch: cold variants recycle builder buffers
    // instead of paying allocation churn per module. Never shared, so no
    // synchronization.
    ir::BuildArena arena;
    for (;;) {
      const std::size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
      if (i >= variants.size()) return;
      try {
        if (cache) {
          CostCache::HitLevel level = CostCache::HitLevel::Miss;
          slots[i] = cache->cost(variants[i], lower, db, &level, &arena);
          // Per-sweep accounting: independent of the cache's global
          // counters, which concurrent sweeps sharing it also advance.
          if (level == CostCache::HitLevel::Miss) {
            misses.fetch_add(1, std::memory_order_relaxed);
          } else {
            hits.fetch_add(1, std::memory_order_relaxed);
            if (level == CostCache::HitLevel::Variant) {
              variant_hits.fetch_add(1, std::memory_order_relaxed);
            }
          }
        } else {
          ir::Module module = lower.lower(variants[i], &arena);
          slots[i] = cost::cost_design(module, db);
          arena.recycle(std::move(module));
        }
      } catch (...) {
        {
          std::lock_guard<std::mutex> lock(error_mu);
          if (!first_error) first_error = std::current_exception();
        }
        cursor.store(variants.size(), std::memory_order_relaxed);
        return;
      }
    }
  };

  if (num_threads <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(num_threads);
    try {
      for (std::uint32_t t = 0; t < num_threads; ++t) pool.emplace_back(worker);
    } catch (...) {
      // Thread spawn failed (e.g. EAGAIN): drain the queue, join what
      // started, and surface the error instead of terminating on a
      // joinable thread's destructor.
      cursor.store(variants.size(), std::memory_order_relaxed);
      for (auto& th : pool) th.join();
      throw;
    }
    for (auto& th : pool) th.join();
  }
  if (first_error) std::rethrow_exception(first_error);
  sweep_stats.hits = hits.load(std::memory_order_relaxed);
  sweep_stats.misses = misses.load(std::memory_order_relaxed);
  sweep_stats.variant_hits = variant_hits.load(std::memory_order_relaxed);
}

/// The streaming share of the per-instance time: how much of the budget
/// the DRAM term claims (0 for form-C designs, ~1 on a bandwidth wall).
double bandwidth_share(const cost::CostReport& report) {
  const auto& t = report.throughput;
  return t.seconds_per_instance > 0 ? t.t_mem_stream / t.seconds_per_instance
                                    : 0.0;
}

// A point dominates another when it is at least as good on every
// objective (EKIT >=, util <=, bw-share <=) and strictly better on one.
//
/// Sort-based skyline replacing the former all-pairs O(n^2) sweep.
/// Candidates sorted by EKIT descending can only be dominated by points
/// earlier in the sort; kept points are condensed into a (util, bw)
/// staircase — strictly increasing util, strictly decreasing bw — so each
/// dominance probe is one ordered-map lookup: O(n log n) overall. Output
/// is the same set as the all-pairs sweep, in enumeration order.
std::vector<ParetoPoint> pareto_frontier(const std::vector<DseEntry>& entries) {
  std::vector<ParetoPoint> candidates;
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const auto& e = entries[i];
    if (!e.report.valid) continue;
    candidates.push_back(ParetoPoint{i, e.report.throughput.ekit,
                                     e.report.resources.util.max(),
                                     bandwidth_share(e.report)});
  }

  std::vector<std::size_t> order(candidates.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const ParetoPoint& pa = candidates[a];
    const ParetoPoint& pb = candidates[b];
    if (pa.ekit != pb.ekit) return pa.ekit > pb.ekit;
    if (pa.util_max != pb.util_max) return pa.util_max < pb.util_max;
    if (pa.bw_share != pb.bw_share) return pa.bw_share < pb.bw_share;
    return a < b;
  });

  // Staircase over kept points from strictly-higher-EKIT groups. Every
  // staircase point has strictly greater EKIT than the probe, so covering
  // it on (util, bw) — even with equality — is domination.
  std::map<double, double> staircase;  // util -> bw, bw strictly decreasing
  const auto covered = [&](const ParetoPoint& c) {
    auto it = staircase.upper_bound(c.util_max);
    if (it == staircase.begin()) return false;
    --it;  // greatest util <= c.util; its bw is the minimum among those
    return it->second <= c.bw_share;
  };
  const auto insert_point = [&](const ParetoPoint& c) {
    auto it = staircase.upper_bound(c.util_max);
    if (it != staircase.begin() && std::prev(it)->second <= c.bw_share) {
      return;  // an existing point already covers it
    }
    auto pos = staircase.lower_bound(c.util_max);
    while (pos != staircase.end() && pos->second >= c.bw_share) {
      pos = staircase.erase(pos);
    }
    staircase.emplace(c.util_max, c.bw_share);
  };

  std::vector<bool> keep(candidates.size(), false);
  std::size_t g = 0;
  while (g < order.size()) {
    // One group of equal-EKIT candidates, in (util asc, bw asc) order.
    std::size_t g_end = g + 1;
    while (g_end < order.size() &&
           candidates[order[g_end]].ekit == candidates[order[g]].ekit) {
      ++g_end;
    }
    // Within the group EKIT ties, so domination needs strictness on the
    // other two objectives. Earlier members have util <= ours; tracking
    // the running minimum bw (and the smallest util achieving it) decides
    // domination without a scan. Dominated members participate too:
    // whatever they would dominate, their own dominator also dominates.
    double g_min_bw = 0;
    double g_min_bw_util = 0;
    for (std::size_t k = g; k < g_end; ++k) {
      const ParetoPoint& c = candidates[order[k]];
      const bool by_group =
          k > g && (g_min_bw < c.bw_share ||
                    (g_min_bw == c.bw_share && g_min_bw_util < c.util_max));
      keep[order[k]] = !by_group && !covered(c);
      if (k == g || c.bw_share < g_min_bw) {
        g_min_bw = c.bw_share;
        g_min_bw_util = c.util_max;  // first achiever has the smallest util
      }
    }
    // Merge the group's survivors only after the whole group is probed:
    // equal-EKIT points must not dominate through the staircase.
    for (std::size_t k = g; k < g_end; ++k) {
      if (keep[order[k]]) insert_point(candidates[order[k]]);
    }
    g = g_end;
  }

  std::vector<ParetoPoint> frontier;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    if (keep[i]) frontier.push_back(candidates[i]);
  }
  return frontier;  // candidates were built in enumeration order
}

}  // namespace

DseResult explore(std::uint64_t n, const Lowerer& lower,
                  const cost::DeviceCostDb& db, const DseOptions& options) {
  const auto t0 = std::chrono::steady_clock::now();
  DseResult result;
  const auto variants =
      frontend::enumerate_variants(n, options.max_lanes, options.include_seq);

  std::vector<std::optional<cost::CostReport>> slots(variants.size());
  evaluate_batch(variants, lower, db, options.cache,
                 resolve_threads(options.num_threads, variants.size()), slots,
                 result.cache_stats);

  // Deterministic merge in enumeration order.
  result.entries.reserve(variants.size());
  for (std::size_t i = 0; i < variants.size(); ++i) {
    result.entries.emplace_back(variants[i], std::move(*slots[i]));
  }
  for (std::size_t i = 0; i < result.entries.size(); ++i) {
    const auto& e = result.entries[i];
    if (!e.report.valid) continue;
    if (!result.best ||
        e.report.throughput.ekit >
            result.entries[*result.best].report.throughput.ekit) {
      result.best = i;
    }
  }
  result.pareto = pareto_frontier(result.entries);
  const auto t1 = std::chrono::steady_clock::now();
  result.explore_seconds =
      std::chrono::duration_cast<std::chrono::duration<double>>(t1 - t0).count();
  return result;
}

DseResult explore(std::uint64_t n, const LowerFn& lower,
                  const cost::DeviceCostDb& db, const DseOptions& options) {
  return explore(n, FnLowerer(lower), db, options);
}

cost::CostReport maxj_baseline(std::uint64_t n, const Lowerer& lower,
                               const cost::DeviceCostDb& db) {
  return cost::cost_design(lower.lower(frontend::baseline_variant(n)), db);
}

cost::CostReport maxj_baseline(std::uint64_t n, const LowerFn& lower,
                               const cost::DeviceCostDb& db) {
  return cost::cost_design(lower(frontend::baseline_variant(n)), db);
}

std::string format_sweep(const DseResult& result) {
  std::ostringstream os;
  os << tytra::pad_left("lanes", 6) << tytra::pad_left("Regs%", 8)
     << tytra::pad_left("Aluts%", 8) << tytra::pad_left("BRAM%", 8)
     << tytra::pad_left("DSPs%", 8) << tytra::pad_left("EKIT/s", 12)
     << "  limiting" << "\n";
  for (const auto& e : result.entries) {
    const auto& u = e.report.resources.util;
    os << tytra::pad_left(std::to_string(e.report.params.knl), 6)
       << tytra::pad_left(tytra::format_fixed(u.regs, 1), 8)
       << tytra::pad_left(tytra::format_fixed(u.aluts, 1), 8)
       << tytra::pad_left(tytra::format_fixed(u.bram, 1), 8)
       << tytra::pad_left(tytra::format_fixed(u.dsps, 1), 8)
       << tytra::pad_left(tytra::format_fixed(e.report.throughput.ekit, 1), 12)
       << "  " << cost::wall_name(e.report.throughput.limiting)
       << (e.report.valid ? "" : "  [INVALID: exceeds device]") << "\n";
  }
  if (result.best) {
    os << "best: " << result.entries[*result.best].variant.describe() << "\n";
  }
  return os.str();
}

std::string format_pareto(const DseResult& result) {
  std::ostringstream os;
  os << tytra::pad_left("lanes", 6) << tytra::pad_left("EKIT/s", 12)
     << tytra::pad_left("util%", 8) << tytra::pad_left("bw-share", 10)
     << "  limiting" << "\n";
  for (const auto& p : result.pareto) {
    const auto& e = result.entries[p.index];
    os << tytra::pad_left(std::to_string(e.report.params.knl), 6)
       << tytra::pad_left(tytra::format_fixed(p.ekit, 1), 12)
       << tytra::pad_left(tytra::format_fixed(p.util_max, 1), 8)
       << tytra::pad_left(tytra::format_fixed(p.bw_share, 3), 10)
       << "  " << cost::wall_name(e.report.throughput.limiting) << "\n";
  }
  os << "frontier: " << result.pareto.size() << " of " << result.entries.size()
     << " designs\n";
  return os.str();
}

}  // namespace tytra::dse
