#include "tytra/dse/server.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <deque>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <vector>

#include "tytra/dse/explorer.hpp"
#include "tytra/dse/tuner.hpp"
#include "tytra/ir/lint.hpp"
#include "tytra/kernels/file_workload.hpp"
#include "tytra/kernels/lint_driver.hpp"
#include "tytra/kernels/registry.hpp"
#include "tytra/support/failpoint.hpp"
#include "tytra/support/framing.hpp"
#include "tytra/support/json.hpp"
#include "tytra/support/thread_annotations.hpp"
#include "tytra/target/device.hpp"

// Implementation map (see the header for the model):
//
//   serve() thread      accept loop + connection reaping + drain sequencing
//   reader threads      one per connection: read_frame -> json::parse ->
//                       enqueue a Setup unit; never touch the Session
//   scheduler thread    the ONLY thread that touches the Session and the
//                       kernels::Registry; pops units round-robin across
//                       connections and executes them
//
// Locking: `mu_` guards the unit queues / round-robin ring / drain flags;
// each connection's `write_mu` guards its fd for whole-frame writes and
// the `closed` latch. `mu_` is never held across a frame write or a
// Session call, and `write_mu` is never held while taking `mu_`, so the
// two levels cannot invert.
//
// Output contract: every request is answered with the exact bytes (and
// exit code) a standalone `tytra-cc` run of the same command would have
// produced — the final frame's "stdout"/"stderr" fields ARE that run's
// streams, composed from the same format_* renderers and banner
// printf formats. Keep the two in sync with tools/tytra_cc.cpp.

namespace tytra::dse {

namespace {

constexpr int kExitInterrupted = 130;

std::string preset_list() {
  std::string out;
  for (const auto& name : target::preset_names()) {
    if (!out.empty()) out += "|";
    out += name;
  }
  return out;
}

bool read_file(const std::string& path, std::string& out) {
  std::ifstream in(path);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  out = ss.str();
  return true;
}

/// Same resolution ladder as the CLI: preset name, a preset's device
/// name, or a .tgt file path (read from the daemon's filesystem).
tytra::Result<target::DeviceDesc> resolve_device(const std::string& spec) {
  if (auto p = target::preset(spec)) return *p;
  for (const auto& name : target::preset_names()) {
    if (auto p = target::preset(name); p && p->name == spec) return *p;
  }
  std::string text;
  if (!read_file(spec, text)) {
    return tytra::make_error("unknown device '" + spec + "' (presets: " +
                             preset_list() + "; or a readable .tgt file)");
  }
  return target::parse_target(text);
}

/// format_*_json renderings end in '\n'; embedded as a frame field the
/// value must stand alone.
std::string chomp(std::string s) {
  while (!s.empty() && s.back() == '\n') s.pop_back();
  return s;
}

// -----------------------------------------------------------------------
// Connection + work units
// -----------------------------------------------------------------------

struct Connection {
  int fd{-1};
  std::uint64_t id{0};
  /// Flipped on disconnect (and on write failure): every job this
  /// connection queued carries `&cancel` as its Job::cancel, so a gone
  /// client stops costing evaluation within one variant.
  CancelToken cancel;
  tytra::Mutex write_mu;
  bool closed TYTRA_GUARDED_BY(write_mu){false};  ///< no more frames leave
  std::atomic<bool> done{false};  ///< reader thread has exited
  std::thread reader;
  std::uint64_t next_req{0};  ///< reader-thread only

  // Scheduler-side state, guarded by Impl::mu_.
  struct Unit;
  std::deque<Unit> units;
  bool in_rr{false};

  ~Connection() {
    if (fd >= 0) ::close(fd);
  }
};

/// One admitted explore/tune/campaign request being streamed back.
struct RequestState {
  std::shared_ptr<Connection> conn;
  std::uint64_t req_id{0};
  enum class Kind { Explore, Tune, CampaignRun } kind{Kind::Explore};
  bool json{false};
  bool pareto{false};
  bool on_error_abort{true};
  std::string kernel;  ///< explore/tune banner label
  std::uint32_t nd{0};  ///< resolved dimension, for banners
  std::vector<Job> jobs;
  std::size_t kernel_count{0};  ///< campaign banner: kernels requested
  std::size_t device_count{0};  ///< campaign banner: distinct devices
  std::vector<CampaignJobResult> results;  ///< slot per job
  std::vector<char> filled;
  std::size_t completed{0};
  CacheStats stats;
  double seconds{0};
  bool interrupted{false};
};

/// One scheduler work item: either a whole request to validate + expand
/// (`setup`), or one job of an admitted request.
struct Connection::Unit {
  bool is_setup{false};
  std::uint64_t req_id{0};
  json::Value request;                 ///< setup payload
  std::shared_ptr<RequestState> req;   ///< job payload
  std::size_t job_index{0};
};

using Unit = Connection::Unit;

}  // namespace

// -----------------------------------------------------------------------
// Impl
// -----------------------------------------------------------------------

struct Server::Impl {
  explicit Impl(ServerOptions options) : opts_(std::move(options)) {
    if (opts_.socket_path.empty()) {
      throw std::invalid_argument("dse::Server: socket_path must be set");
    }
    sockaddr_un addr{};
    if (opts_.socket_path.size() >= sizeof(addr.sun_path)) {
      throw std::invalid_argument(
          "dse::Server: socket path '" + opts_.socket_path + "' exceeds the " +
          std::to_string(sizeof(addr.sun_path) - 1) + "-byte sun_path limit");
    }
    // A hung-up client must surface as a write error on its fd, never as
    // a process-killing signal.
    std::signal(SIGPIPE, SIG_IGN);

    opts_.session.cancel = &drain_cancel_;
    session_ = std::make_unique<Session>(opts_.session);

    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd_ < 0) {
      throw std::runtime_error(std::string("dse::Server: socket: ") +
                               std::strerror(errno));
    }
    // Any file already at the path is assumed stale (a previous daemon
    // that died without cleanup); per-instance paths are the caller's job.
    ::unlink(opts_.socket_path.c_str());
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, opts_.socket_path.c_str(),
                opts_.socket_path.size() + 1);
    if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(listen_fd_, 64) != 0) {
      const std::string why = std::strerror(errno);
      ::close(listen_fd_);
      listen_fd_ = -1;
      throw std::runtime_error("dse::Server: cannot listen on '" +
                               opts_.socket_path + "': " + why);
    }
    int pipe_fds[2];
    if (::pipe(pipe_fds) != 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
      throw std::runtime_error(std::string("dse::Server: pipe: ") +
                               std::strerror(errno));
    }
    wake_rd_ = pipe_fds[0];
    wake_wr_ = pipe_fds[1];
  }

  ~Impl() {
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);
      ::unlink(opts_.socket_path.c_str());
    }
    if (wake_rd_ >= 0) ::close(wake_rd_);
    if (wake_wr_ >= 0) ::close(wake_wr_);
  }

  // ---- frame plumbing ---------------------------------------------------

  /// Writes one frame under the connection's write lock. A failed write
  /// latches the connection closed and flips its cancel token — the
  /// reader wakes on the shutdown() and tears the connection down; the
  /// daemon itself is unaffected.
  bool send(Connection& c, const std::string& payload) {
    MutexLock lock(c.write_mu);
    if (c.closed) return false;
    std::string err;
    if (!framing::write_frame(c.fd, payload, err)) {
      std::fprintf(stderr,
                   "tytra-dsed: connection %llu: %s; dropping connection\n",
                   static_cast<unsigned long long>(c.id), err.c_str());
      c.closed = true;
      c.cancel.request_cancel();
      ::shutdown(c.fd, SHUT_RDWR);
      return false;
    }
    return true;
  }

  void send_error(Connection& c, std::uint64_t req_id, int exit_code,
                  const std::string& message) {
    std::ostringstream os;
    os << "{\"type\": \"error\", \"req\": " << req_id
       << ", \"exit\": " << exit_code << ", \"message\": \""
       << json::escape(message) << "\"}";
    send(c, os.str());
  }

  void send_result(Connection& c, std::uint64_t req_id, int exit_code,
                   const std::string& out, const std::string& err = {}) {
    std::ostringstream os;
    os << "{\"type\": \"result\", \"req\": " << req_id
       << ", \"exit\": " << exit_code << ", \"stdout\": \""
       << json::escape(out) << "\"";
    if (!err.empty()) os << ", \"stderr\": \"" << json::escape(err) << "\"";
    os << "}";
    send(c, os.str());
  }

  void send_job_frame(RequestState& req, std::size_t index,
                      const CampaignJobResult& jr,
                      const std::string& payload_key,
                      const std::string& payload_json) {
    std::ostringstream os;
    os << "{\"type\": \"job\", \"req\": " << req.req_id
       << ", \"job\": " << index << ", \"jobs\": " << req.jobs.size()
       << ", \"workload\": \"" << json::escape(jr.job.workload)
       << "\", \"nd\": " << jr.job.nd << ", \"device\": \""
       << json::escape(jr.job.device) << "\", \"status\": \""
       << job_state_name(jr.status.state) << "\"";
    if (!jr.status.ok()) {
      os << ", \"error\": \"" << json::escape(jr.status.error) << "\"";
    }
    if (!payload_json.empty()) {
      os << ", \"" << payload_key << "\": " << payload_json;
    }
    os << "}";
    send(*req.conn, os.str());
  }

  // ---- reader thread ----------------------------------------------------

  void reader_loop(const std::shared_ptr<Connection>& conn) {
    std::string payload;
    for (;;) {
      std::string err;
      const framing::ReadStatus st =
          framing::read_frame(conn->fd, payload, err);
      if (st == framing::ReadStatus::Eof) break;
      if (st == framing::ReadStatus::Error) {
        // A broken frame layer (truncation, oversized prefix, I/O error,
        // injected frame.read fault) leaves no way to resynchronize on a
        // stream: drop this connection, keep the daemon.
        frames_rejected_.fetch_add(1, std::memory_order_relaxed);
        std::fprintf(stderr, "tytra-dsed: connection %llu: %s\n",
                     static_cast<unsigned long long>(conn->id), err.c_str());
        break;
      }
      const std::uint64_t req_id = conn->next_req++;
      auto parsed = json::parse(payload);
      if (!parsed.ok() || !parsed.value().is_object()) {
        // A well-framed but malformed payload is answered in-band and the
        // connection survives — the client can fix its request and retry.
        frames_rejected_.fetch_add(1, std::memory_order_relaxed);
        send_error(*conn, req_id, 2,
                   parsed.ok() ? std::string("request: not a JSON object")
                               : parsed.diag().message);
        continue;
      }
      Unit unit;
      unit.is_setup = true;
      unit.req_id = req_id;
      unit.request = std::move(parsed).take();
      bool rejected = false;
      {
        MutexLock lock(mu_);
        if (!accepting_) {
          rejected = true;
        } else {
          conn->units.push_back(std::move(unit));
          ++pending_units_;
          if (!conn->in_rr) {
            rr_.push_back(conn);
            conn->in_rr = true;
          }
        }
      }
      if (rejected) {
        send_error(*conn, req_id, 1, "server is shutting down");
        continue;
      }
      sched_cv_.notify_one();
    }
    // Disconnect: cancel this client's in-flight work, drop its queued
    // units, and stop any further frames toward the dead fd.
    conn->cancel.request_cancel();
    {
      MutexLock lock(conn->write_mu);
      conn->closed = true;
      ::shutdown(conn->fd, SHUT_RDWR);
    }
    {
      MutexLock lock(mu_);
      pending_units_ -= conn->units.size();
      conn->units.clear();
      if (pending_units_ == 0 && !busy_) idle_cv_.notify_all();
    }
    conn->done.store(true, std::memory_order_release);
  }

  // ---- scheduler thread: setup ------------------------------------------

  /// Registers request-supplied IR workloads. Idempotent per (name,
  /// content): a name resubmitted with identical source is a no-op (the
  /// normal case — every client ships its --ir files), different source
  /// is an error (the registry cannot hold both).
  std::string register_irs(const json::Value& request) {
    const json::Value* irs = request.find("irs");
    if (irs == nullptr) return {};
    if (!irs->is_array()) return "request: \"irs\" must be an array";
    for (const json::Value& ir : irs->elements()) {
      if (!ir.is_object()) return "request: \"irs\" entries must be objects";
      const auto name = ir.get_string("name");
      const auto source = ir.get_string("source");
      if (!name || !source) {
        return "request: \"irs\" entries need \"name\" and \"source\"";
      }
      const auto it = ir_sources_.find(*name);
      if (it != ir_sources_.end()) {
        if (it->second != *source) {
          return "ir workload '" + *name +
                 "' is already registered with different content";
        }
        continue;
      }
      auto added = kernels::register_file_workload(
          kernels::Registry::instance(), *name, *name, *source);
      if (!added.ok()) return added.diag().message;
      ir_sources_.emplace(*name, *source);
    }
    return {};
  }

  /// Resolves one device spec against the shared session's device table,
  /// calibrating and adding it on first sight. Returns the resolved
  /// device-table name, or an error message.
  tytra::Result<std::string> ensure_device(const std::string& spec) {
    auto device = resolve_device(spec);
    if (!device.ok()) return device.diag();
    const std::string& name = device.value().name;
    if (session_->find_device(name) == nullptr) {
      session_->add_device(device.value());
    }
    return name;
  }

  /// Validates and expands one admitted request into its job units. Any
  /// validation failure is answered with the exact message a standalone
  /// run would have printed after "tytra-cc: " (same exit code), so the
  /// client's stderr is byte-identical.
  void process_setup(const std::shared_ptr<Connection>& conn, Unit&& unit) {
    const json::Value& request = unit.request;
    const auto cmd = request.get_string("cmd");
    if (!cmd) {
      send_error(*conn, unit.req_id, 2, "request: missing \"cmd\"");
      return;
    }
    requests_.fetch_add(1, std::memory_order_relaxed);

    if (*cmd == "ping") {
      std::ostringstream os;
      os << "{\"type\": \"pong\", \"req\": " << unit.req_id
         << ", \"requests\": " << requests_.load(std::memory_order_relaxed)
         << ", \"connections\": "
         << connections_.load(std::memory_order_relaxed)
         << ", \"jobs_ok\": " << jobs_ok_.load(std::memory_order_relaxed)
         << "}";
      send(*conn, os.str());
      return;
    }
    if (*cmd == "shutdown") {
      send_result(*conn, unit.req_id, 0, "");
      signal_shutdown();
      return;
    }
    if (*cmd == "list") {
      if (const std::string err = register_irs(request); !err.empty()) {
        send_error(*conn, unit.req_id, 1, err);
        return;
      }
      const auto& reg = kernels::Registry::instance();
      const bool json_out = request.get_bool("json").value_or(false);
      send_result(*conn, unit.req_id, 0,
                  json_out ? kernels::format_registry_json(reg)
                           : kernels::format_registry(reg));
      return;
    }
    if (*cmd == "lint") {
      if (const std::string err = register_irs(request); !err.empty()) {
        send_error(*conn, unit.req_id, 1, err);
        return;
      }
      // One device (the CLI sends exactly one spec), resolved against the
      // shared session table so a repeat lint reuses the calibration.
      std::string device_spec = "stratix-v-gsd8";
      if (const json::Value* devices = request.find("devices");
          devices != nullptr && devices->is_array() &&
          !devices->elements().empty() &&
          devices->elements().front().is_string()) {
        device_spec = devices->elements().front().str();
      }
      auto device_name = ensure_device(device_spec);
      if (!device_name.ok()) {
        send_error(*conn, unit.req_id, 1, device_name.diag().message);
        return;
      }
      kernels::LintDriverOptions opts;
      opts.db = session_->find_device(device_name.value());
      if (const json::Value* targets = request.find("targets");
          targets != nullptr && targets->is_array()) {
        for (const json::Value& t : targets->elements()) {
          if (t.is_string()) opts.targets.push_back(t.str());
        }
      }
      opts.nd = request.get_u32("nd").value_or(0);
      opts.json = request.get_bool("json").value_or(false);
      opts.fail_on =
          request.get_string("fail_on").value_or("error") == "warning"
              ? ir::lint::FailOn::Warning
              : ir::lint::FailOn::Error;
      const kernels::LintDriverResult result =
          kernels::run_lint_driver(kernels::Registry::instance(), opts);
      if (!result.err.empty()) {
        // The client renders "error" frames as `tytra-cc: <message>`,
        // exactly what a standalone run prints on its failure paths.
        send_error(*conn, unit.req_id, result.exit_code, result.err);
      } else {
        send_result(*conn, unit.req_id, result.exit_code, result.out);
      }
      return;
    }
    if (*cmd != "explore" && *cmd != "tune" && *cmd != "campaign") {
      send_error(*conn, unit.req_id, 2, "request: unknown cmd '" + *cmd + "'");
      return;
    }

    if (const std::string err = register_irs(request); !err.empty()) {
      send_error(*conn, unit.req_id, 1, err);
      return;
    }

    const auto& registry = kernels::Registry::instance();
    auto req = std::make_shared<RequestState>();
    req->conn = conn;
    req->req_id = unit.req_id;
    req->json = request.get_bool("json").value_or(false);
    req->pareto = request.get_bool("pareto").value_or(false);
    if (const auto policy = request.get_string("on_error")) {
      req->on_error_abort = *policy != "continue";
    }
    const std::uint32_t max_lanes =
        request.get_u32("max_lanes").value_or(16);
    if (max_lanes == 0) {
      send_error(*conn, unit.req_id, 1, "--max-lanes must be >= 1");
      return;
    }
    const double deadline_seconds =
        request.get_u32("deadline_ms").value_or(0) / 1000.0;

    // Devices: resolve each spec, dedupe by resolved name, keep request
    // order — the CLI's rule, against the shared device table.
    std::vector<std::string> device_names;
    std::vector<std::string> device_specs;
    if (const json::Value* devices = request.find("devices");
        devices != nullptr && devices->is_array()) {
      for (const json::Value& d : devices->elements()) {
        if (d.is_string()) device_specs.push_back(d.str());
      }
    }
    if (device_specs.empty()) device_specs.emplace_back("stratix-v-gsd8");
    for (const auto& spec : device_specs) {
      auto name = ensure_device(spec);
      if (!name.ok()) {
        send_error(*conn, unit.req_id, 1, name.diag().message);
        return;
      }
      if (std::find(device_names.begin(), device_names.end(), name.value()) ==
          device_names.end()) {
        device_names.push_back(name.value());
      }
    }

    if (*cmd == "explore" || *cmd == "tune") {
      const auto kernel = request.get_string("kernel");
      if (!kernel) {
        send_error(*conn, unit.req_id, 2, "request: missing \"kernel\"");
        return;
      }
      const kernels::WorkloadInfo* info = registry.find(*kernel);
      if (!info) {
        send_error(*conn, unit.req_id, 1,
                   "unknown kernel '" + *kernel + "' (" +
                       registry.names_joined() + ")");
        return;
      }
      const std::uint32_t nd =
          request.get_u32("nd").value_or(info->default_nd);
      auto job_r = registry.make_job(*kernel, nd);
      if (!job_r.ok()) {
        send_error(*conn, unit.req_id, 1, job_r.diag().message);
        return;
      }
      Job job = std::move(job_r).take();
      job.device = device_names.front();
      job.max_lanes = max_lanes;
      job.deadline_seconds = deadline_seconds;
      job.cancel = &conn->cancel;
      if (*cmd == "tune") {
        job.max_steps =
            static_cast<int>(request.get_u32("max_steps").value_or(12));
      }
      req->kind = *cmd == "tune" ? RequestState::Kind::Tune
                                 : RequestState::Kind::Explore;
      req->kernel = *kernel;
      req->nd = nd;
      req->jobs.push_back(std::move(job));
    } else {
      // Campaign: the {workload x size x device} fan-out, in the CLI's
      // enumeration order. The client sends its kernel list explicitly
      // (expanding "all registered" against ITS registry), so another
      // client's IR registrations never leak into this campaign.
      std::vector<std::string> kernels_to_run;
      if (const json::Value* ks = request.find("kernels");
          ks != nullptr && ks->is_array()) {
        for (const json::Value& k : ks->elements()) {
          if (k.is_string()) kernels_to_run.push_back(k.str());
        }
      }
      if (kernels_to_run.empty()) kernels_to_run = registry.names();
      std::vector<std::uint32_t> nds;
      if (const json::Value* sizes = request.find("nds");
          sizes != nullptr && sizes->is_array()) {
        for (const json::Value& n : sizes->elements()) {
          if (n.is_number()) {
            nds.push_back(static_cast<std::uint32_t>(n.number()));
          }
        }
      }
      for (const auto& kernel : kernels_to_run) {
        const kernels::WorkloadInfo* info = registry.find(kernel);
        if (!info) {
          send_error(*conn, unit.req_id, 1,
                     "unknown kernel '" + kernel + "' (" +
                         registry.names_joined() + ")");
          return;
        }
        const std::vector<std::uint32_t> sizes =
            nds.empty() ? std::vector<std::uint32_t>{info->default_nd} : nds;
        for (const std::uint32_t nd : sizes) {
          auto job_r = registry.make_job(kernel, nd);
          if (!job_r.ok()) {
            send_error(*conn, unit.req_id, 1, job_r.diag().message);
            return;
          }
          for (const auto& device : device_names) {
            Job job = job_r.value();
            job.device = device;
            job.max_lanes = max_lanes;
            job.deadline_seconds = deadline_seconds;
            job.cancel = &conn->cancel;
            req->jobs.push_back(std::move(job));
          }
        }
      }
      req->kind = RequestState::Kind::CampaignRun;
      req->kernel_count = kernels_to_run.size();
      req->device_count = device_names.size();
    }

    req->results.resize(req->jobs.size());
    req->filled.assign(req->jobs.size(), 0);

    // Admission: the whole request queues or none of it does.
    bool admitted = false;
    {
      MutexLock lock(mu_);
      if (conn->units.size() + req->jobs.size() <= opts_.queue_limit) {
        for (std::size_t i = 0; i < req->jobs.size(); ++i) {
          Unit ju;
          ju.req_id = unit.req_id;
          ju.req = req;
          ju.job_index = i;
          conn->units.push_back(std::move(ju));
        }
        pending_units_ += req->jobs.size();
        if (!conn->in_rr && !conn->units.empty()) {
          rr_.push_back(conn);
          conn->in_rr = true;
        }
        admitted = true;
      }
    }
    if (!admitted) {
      send_error(*conn, unit.req_id, 1,
                 "queue full (this connection already has pending jobs; "
                 "limit " + std::to_string(opts_.queue_limit) + ")");
    }
  }

  // ---- scheduler thread: job execution ----------------------------------

  static CampaignJobResult cancelled_result(const Job& job) {
    CampaignJobResult jr;
    jr.job = job;
    jr.status.state = JobState::Cancelled;
    jr.status.error = "cancelled";
    return jr;
  }

  void process_job(const std::shared_ptr<RequestState>& req,
                   std::size_t index) {
    Connection& conn = *req->conn;
    const Job& job = req->jobs[index];
    const bool dead = draining_.load(std::memory_order_relaxed) ||
                      conn.cancel.cancelled();

    if (req->kind == RequestState::Kind::Explore ||
        req->kind == RequestState::Kind::Tune) {
      const bool tune = req->kind == RequestState::Kind::Tune;
      const char* verb = tune ? "tune" : "explore";
      if (dead) {
        jobs_degraded_.fetch_add(1, std::memory_order_relaxed);
        send_error(conn, req->req_id, kExitInterrupted,
                   std::string(verb) + " interrupted");
        return;
      }
      try {
        if (tune) {
          const TuneResult result = session_->tune(job);
          CampaignJobResult jr;
          jr.job = job;
          send_job_frame(*req, index, jr, "tune",
                         chomp(format_tune_json(result)));
          std::string out;
          if (req->json) {
            out = format_tune_json(result);
          } else {
            char head[256];
            std::snprintf(head, sizeof head,
                          "tuning %s on %s (nd=%u, %llu work-items)\n",
                          req->kernel.c_str(), job.device.c_str(), req->nd,
                          static_cast<unsigned long long>(job.n));
            out = head;
            out += format_tune(result);
          }
          jobs_ok_.fetch_add(1, std::memory_order_relaxed);
          send_result(conn, req->req_id, 0, out);
        } else {
          const DseResult result = session_->explore(job);
          CampaignJobResult jr;
          jr.job = job;
          send_job_frame(*req, index, jr, "sweep",
                         chomp(format_sweep_json(result)));
          std::string out;
          if (req->json) {
            out = format_sweep_json(result);
          } else {
            char head[256];
            std::snprintf(head, sizeof head,
                          "exploring %s on %s: %zu variants in %.3f s\n",
                          req->kernel.c_str(), job.device.c_str(),
                          result.entries.size(), result.explore_seconds);
            out = head;
            out += format_sweep(result);
            if (req->pareto) {
              out += "\npareto frontier (EKIT vs utilization vs bandwidth "
                     "share):\n";
              out += format_pareto(result);
            }
          }
          jobs_ok_.fetch_add(1, std::memory_order_relaxed);
          send_result(conn, req->req_id, 0, out);
        }
      } catch (const CancelledError&) {
        jobs_degraded_.fetch_add(1, std::memory_order_relaxed);
        send_error(conn, req->req_id, kExitInterrupted,
                   std::string(verb) + " interrupted");
      } catch (const std::exception& e) {
        jobs_degraded_.fetch_add(1, std::memory_order_relaxed);
        send_error(conn, req->req_id, 1,
                   std::string(verb) + " failed: " + e.what());
      }
      return;
    }

    // Campaign job: one single-job Campaign through the shared cache —
    // documented byte-identical to the CLI's batched run (Session::run's
    // enumeration-order merge), while giving the daemon a frame boundary
    // and a fairness interleave point per job.
    CampaignJobResult jr;
    if (dead) {
      jr = cancelled_result(job);
      req->interrupted = true;
    } else {
      try {
        Campaign one;
        one.jobs.push_back(job);
        CampaignResult r = session_->run(one);
        jr = std::move(r.jobs[0]);
        req->stats.hits += r.cache_stats.hits;
        req->stats.misses += r.cache_stats.misses;
        req->stats.variant_hits += r.cache_stats.variant_hits;
        req->seconds += r.campaign_seconds;
        if (jr.status.state == JobState::Cancelled) req->interrupted = true;
      } catch (const std::exception& e) {
        jr.job = job;
        jr.status.state = JobState::Failed;
        jr.status.error = e.what();
      }
    }
    (jr.status.ok() ? jobs_ok_ : jobs_degraded_)
        .fetch_add(1, std::memory_order_relaxed);
    send_job_frame(*req, index, jr, "sweep",
                   jr.status.ok() ? chomp(format_sweep_json(jr.result))
                                  : std::string());
    req->results[index] = std::move(jr);
    req->filled[index] = 1;
    if (++req->completed == req->jobs.size()) finalize_campaign(*req);
  }

  void finalize_campaign(RequestState& req) {
    CampaignResult out;
    for (std::size_t i = 0; i < req.results.size(); ++i) {
      if (!req.filled[i]) req.results[i] = cancelled_result(req.jobs[i]);
      out.jobs.push_back(std::move(req.results[i]));
    }
    out.cache_stats = req.stats;
    out.campaign_seconds = req.seconds;

    // Merged frontier over the per-job frontiers — Session::run's exact
    // assembly, over the same candidates in the same order.
    std::vector<ParetoPoint> candidates;
    std::vector<CampaignParetoPoint> mapping;
    for (std::size_t j = 0; j < out.jobs.size(); ++j) {
      for (const ParetoPoint& p : out.jobs[j].result.pareto) {
        candidates.push_back(p);
        mapping.push_back(CampaignParetoPoint{j, p});
      }
    }
    const std::vector<bool> keep = detail::skyline_keep(candidates);
    for (std::size_t i = 0; i < mapping.size(); ++i) {
      if (keep[i]) out.pareto.push_back(mapping[i]);
    }

    if (!req.interrupted && req.on_error_abort && out.degraded() > 0) {
      for (const auto& jr : out.jobs) {
        if (jr.status.ok()) continue;
        std::ostringstream why;
        why << "campaign: job '" << jr.job.workload << "' (nd=" << jr.job.nd
            << ", " << jr.job.device << ") "
            << job_state_name(jr.status.state) << ": " << jr.status.error
            << " (use --on-error continue to keep surviving jobs)";
        send_error(*req.conn, req.req_id, 1, why.str());
        return;
      }
    }

    std::string stdout_text;
    if (req.json) {
      stdout_text = format_campaign_json(out);
    } else {
      char head[160];
      std::snprintf(head, sizeof head,
                    "campaign: %zu jobs (%zu kernels x %zu device(s)) in "
                    "%.3f s\n",
                    out.jobs.size(), req.kernel_count, req.device_count,
                    out.campaign_seconds);
      stdout_text = head;
      stdout_text += format_campaign(out);
      if (req.pareto) {
        stdout_text += "\nmerged pareto frontier across all jobs:\n";
        stdout_text += format_campaign_pareto(out);
      }
    }
    std::string stderr_text;
    if (req.interrupted) {
      std::size_t cancelled = 0;
      for (const auto& jr : out.jobs) {
        if (jr.status.state == JobState::Cancelled) ++cancelled;
      }
      std::ostringstream why;
      why << "tytra-cc: campaign interrupted (" << cancelled << " of "
          << out.jobs.size() << " jobs cancelled; completed results above)\n";
      stderr_text = why.str();
    }
    send_result(*req.conn, req.req_id, req.interrupted ? kExitInterrupted : 0,
                stdout_text, stderr_text);
  }

  // ---- scheduler loop ----------------------------------------------------

  void scheduler_loop() {
    for (;;) {
      std::shared_ptr<Connection> conn;
      Unit unit;
      {
        MutexLock lock(mu_);
        while (!stop_ && rr_.empty()) sched_cv_.wait(mu_);
        if (rr_.empty()) {
          if (stop_) return;
          continue;
        }
        conn = rr_.front();
        rr_.pop_front();
        conn->in_rr = false;
        if (conn->units.empty()) continue;  // purged by a disconnect
        unit = std::move(conn->units.front());
        conn->units.pop_front();
        if (!conn->units.empty()) {
          // Round-robin: this connection re-queues BEHIND every other
          // waiting connection, so job-level interleaving is fair.
          rr_.push_back(conn);
          conn->in_rr = true;
        }
        busy_ = true;
      }
      if (unit.is_setup) {
        process_setup(conn, std::move(unit));
      } else {
        process_job(unit.req, unit.job_index);
      }
      {
        MutexLock lock(mu_);
        busy_ = false;
        --pending_units_;
        if (pending_units_ == 0) idle_cv_.notify_all();
      }
    }
  }

  // ---- accept loop + drain -----------------------------------------------

  void serve() {
    std::thread scheduler([this] { scheduler_loop(); });

    std::vector<std::shared_ptr<Connection>> conns;
    std::uint64_t next_id = 1;
    while (!shutdown_flag_.load(std::memory_order_acquire)) {
      pollfd fds[2] = {{listen_fd_, POLLIN, 0}, {wake_rd_, POLLIN, 0}};
      const int n = ::poll(fds, 2, 200);
      // Reap finished connections so reader threads don't pile up.
      for (auto it = conns.begin(); it != conns.end();) {
        if ((*it)->done.load(std::memory_order_acquire)) {
          (*it)->reader.join();
          it = conns.erase(it);
        } else {
          ++it;
        }
      }
      if (shutdown_flag_.load(std::memory_order_acquire)) break;
      if (n <= 0 || (fds[0].revents & POLLIN) == 0) continue;
      if (failpoint::fire("server.accept")) {
        std::fprintf(stderr, "tytra-dsed: injected fault at failpoint "
                             "'server.accept'; retrying\n");
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        continue;
      }
      const int cfd = ::accept(listen_fd_, nullptr, nullptr);
      if (cfd < 0) {
        if (errno != EINTR && errno != ECONNABORTED) {
          std::fprintf(stderr, "tytra-dsed: accept: %s\n",
                       std::strerror(errno));
        }
        continue;
      }
      auto conn = std::make_shared<Connection>();
      conn->fd = cfd;
      conn->id = next_id++;
      connections_.fetch_add(1, std::memory_order_relaxed);
      conn->reader = std::thread([this, conn] { reader_loop(conn); });
      conns.push_back(std::move(conn));
    }

    // Drain. Step 1: no new connections, no new requests.
    ::close(listen_fd_);
    listen_fd_ = -1;
    ::unlink(opts_.socket_path.c_str());
    {
      MutexLock lock(mu_);
      accepting_ = false;
    }

    // Step 2: give in-flight and queued work the grace period. The
    // server.drain failpoint skips it — the "drain budget already spent"
    // worst case, on demand for tests.
    {
      MutexLock lock(mu_);
      bool drained = false;
      if (failpoint::fire("server.drain")) {
        std::fprintf(stderr, "tytra-dsed: injected fault at failpoint "
                             "'server.drain'; cancelling in-flight work\n");
      } else {
        const auto deadline = std::chrono::steady_clock::now() +
                              std::chrono::milliseconds(opts_.drain_ms);
        while (!(pending_units_ == 0 && !busy_)) {
          if (idle_cv_.wait_until(mu_, deadline) == std::cv_status::timeout) {
            break;
          }
        }
        drained = pending_units_ == 0 && !busy_;
      }
      if (!drained && !(pending_units_ == 0 && !busy_)) {
        // Step 3: the budget is spent. Cancel cooperatively — the
        // session-wide token stops evaluation at the next variant, and
        // draining_ makes the scheduler finalize queued jobs as
        // Cancelled (clients see the standalone interrupt contract:
        // completed results, exit 130) instead of running them.
        draining_.store(true, std::memory_order_relaxed);
        drain_cancel_.request_cancel();
        while (!(pending_units_ == 0 && !busy_)) idle_cv_.wait(mu_);
      }
    }

    // Step 4: stop the scheduler.
    {
      MutexLock lock(mu_);
      stop_ = true;
    }
    sched_cv_.notify_all();
    scheduler.join();

    // Step 5: tear down the connections.
    for (const auto& conn : conns) {
      {
        MutexLock lock(conn->write_mu);
        conn->closed = true;
        ::shutdown(conn->fd, SHUT_RDWR);
      }
      conn->reader.join();
    }
    conns.clear();

    // Step 6: persist the warm state for the next boot.
    if (!opts_.session.snapshot_path.empty()) {
      const auto written = session_->save_snapshot();
      if (written.ok()) {
        std::fprintf(stderr, "tytra-dsed: saved snapshot %s (%llu bytes)\n",
                     opts_.session.snapshot_path.c_str(),
                     static_cast<unsigned long long>(written.value()));
      } else {
        std::fprintf(stderr, "tytra-dsed: snapshot save failed: %s\n",
                     written.diag().message.c_str());
      }
    }
  }

  void signal_shutdown() noexcept {
    shutdown_flag_.store(true, std::memory_order_release);
    const char byte = 'x';
    [[maybe_unused]] const ssize_t n = ::write(wake_wr_, &byte, 1);
  }

  ServerOptions opts_;
  std::unique_ptr<Session> session_;
  CancelToken drain_cancel_;
  int listen_fd_{-1};
  int wake_rd_{-1};
  int wake_wr_{-1};
  std::atomic<bool> shutdown_flag_{false};

  /// Scheduler-queue lock. condition_variable_any waits on the annotated
  /// Mutex directly, keeping the capability visible to -Wthread-safety
  /// across the wait (see thread_annotations.hpp).
  tytra::Mutex mu_;
  std::condition_variable_any sched_cv_;
  std::condition_variable_any idle_cv_;
  std::deque<std::shared_ptr<Connection>> rr_ TYTRA_GUARDED_BY(mu_);
  std::size_t pending_units_ TYTRA_GUARDED_BY(mu_){0};
  bool busy_ TYTRA_GUARDED_BY(mu_){false};
  bool accepting_ TYTRA_GUARDED_BY(mu_){true};
  bool stop_ TYTRA_GUARDED_BY(mu_){false};
  std::atomic<bool> draining_{false};

  /// Daemon-side IR registration memory: name -> source text, for the
  /// identical-content idempotency check. Scheduler thread only.
  std::map<std::string, std::string> ir_sources_;

  std::atomic<std::uint64_t> connections_{0};
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> jobs_ok_{0};
  std::atomic<std::uint64_t> jobs_degraded_{0};
  std::atomic<std::uint64_t> frames_rejected_{0};
};

// -----------------------------------------------------------------------
// Public surface
// -----------------------------------------------------------------------

Server::Server(ServerOptions options)
    : impl_(std::make_unique<Impl>(std::move(options))) {}

Server::~Server() = default;

void Server::serve() { impl_->serve(); }

void Server::signal_shutdown() noexcept { impl_->signal_shutdown(); }

const std::string& Server::socket_path() const {
  return impl_->opts_.socket_path;
}

ServerStats Server::stats() const {
  ServerStats s;
  s.connections = impl_->connections_.load(std::memory_order_relaxed);
  s.requests = impl_->requests_.load(std::memory_order_relaxed);
  s.jobs_ok = impl_->jobs_ok_.load(std::memory_order_relaxed);
  s.jobs_degraded = impl_->jobs_degraded_.load(std::memory_order_relaxed);
  s.frames_rejected = impl_->frames_rejected_.load(std::memory_order_relaxed);
  return s;
}

Session& Server::session() { return *impl_->session_; }

}  // namespace tytra::dse
