#include "tytra/dse/pool.hpp"

#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <exception>
#include <stdexcept>
#include <thread>
#include <vector>

#include "tytra/support/thread_annotations.hpp"

namespace tytra::dse {

struct ThreadPool::Impl {
  tytra::Mutex mu;
  /// Workers park here between batches. condition_variable_any waits on
  /// the annotated Mutex directly, so the capability stays visible to the
  /// thread-safety analysis across the wait.
  std::condition_variable_any work_cv;
  std::condition_variable_any done_cv;  ///< run_batch parks here until drained

  // The current batch, published under `mu`. `generation` is the wake
  // token: a worker remembers the last generation it served and a new
  // batch is simply "generation changed". Workers whose index is not
  // drafted (>= participants) observe the new generation and go straight
  // back to sleep without touching `outstanding`.
  const BatchFn* batch TYTRA_GUARDED_BY(mu){nullptr};
  std::uint32_t participants TYTRA_GUARDED_BY(mu){0};
  std::uint64_t generation TYTRA_GUARDED_BY(mu){0};
  /// Drafted pool workers still running.
  std::uint32_t outstanding TYTRA_GUARDED_BY(mu){0};
  std::exception_ptr batch_error TYTRA_GUARDED_BY(mu);
  /// Worker exceptions this batch.
  std::uint32_t batch_thrown TYTRA_GUARDED_BY(mu){0};
  bool stop TYTRA_GUARDED_BY(mu){false};

  /// Lifetime count of exceptions that lost the who-gets-rethrown race
  /// (atomic so the accessor needs no lock while a batch runs).
  std::atomic<std::uint64_t> suppressed_total{0};

  std::vector<std::thread> threads;

  void worker_main(std::uint32_t index) {
    std::uint64_t seen = 0;
    for (;;) {
      const BatchFn* fn = nullptr;
      {
        MutexLock lock(mu);
        while (!stop && generation == seen) work_cv.wait(mu);
        if (stop) return;
        seen = generation;
        if (index >= participants) continue;  // not drafted for this batch
        fn = batch;
      }
      std::exception_ptr error;
      try {
        (*fn)(index);
      } catch (...) {
        error = std::current_exception();
      }
      {
        MutexLock lock(mu);
        if (error) {
          ++batch_thrown;
          if (!batch_error) batch_error = error;
        }
        if (--outstanding == 0) done_cv.notify_all();
      }
    }
  }

  void shutdown() {
    {
      MutexLock lock(mu);
      stop = true;
    }
    work_cv.notify_all();
    for (std::thread& t : threads) t.join();
  }
};

ThreadPool::ThreadPool(std::uint32_t workers)
    : impl_(std::make_unique<Impl>()) {
  impl_->threads.reserve(workers);
  try {
    for (std::uint32_t i = 0; i < workers; ++i) {
      impl_->threads.emplace_back(&Impl::worker_main, impl_.get(), i + 1);
    }
  } catch (...) {
    // Spawn failed partway (e.g. EAGAIN): join what started and surface
    // the error instead of terminating in a joinable thread's destructor.
    impl_->shutdown();
    throw;
  }
}

ThreadPool::~ThreadPool() { impl_->shutdown(); }

std::uint32_t ThreadPool::worker_count() const {
  return static_cast<std::uint32_t>(impl_->threads.size());
}

void ThreadPool::run_batch(std::uint32_t participants, const BatchFn& fn) {
  if (!fn) {
    throw std::invalid_argument("ThreadPool::run_batch: batch function is null");
  }
  if (participants == 0) return;
  if (participants > worker_count() + 1) {
    throw std::invalid_argument(
        "ThreadPool::run_batch: participants exceed worker_count() + 1");
  }
  if (participants == 1) {  // nothing to fan out; run inline
    fn(0);
    return;
  }
  {
    MutexLock lock(impl_->mu);
    impl_->batch = &fn;
    impl_->participants = participants;
    impl_->outstanding = participants - 1;
    impl_->batch_error = nullptr;
    impl_->batch_thrown = 0;
    ++impl_->generation;
  }
  impl_->work_cv.notify_all();

  // The caller is participant 0: it works the batch instead of idling at
  // the barrier, so `participants` really means that many concurrent
  // executors. Its exception still waits for the pool workers to drain —
  // the batch state (slots, cursors) must be quiescent before unwinding.
  std::exception_ptr caller_error;
  try {
    fn(0);
  } catch (...) {
    caller_error = std::current_exception();
  }
  std::exception_ptr worker_error;
  std::uint32_t thrown = 0;
  {
    MutexLock lock(impl_->mu);
    while (impl_->outstanding != 0) impl_->done_cv.wait(impl_->mu);
    impl_->batch = nullptr;
    worker_error = impl_->batch_error;
    impl_->batch_error = nullptr;
    thrown = impl_->batch_thrown;
    impl_->batch_thrown = 0;
  }
  // Only one exception can be rethrown per batch; every other one is
  // counted and logged so a multi-fault batch stays observable (the old
  // behavior dropped them without a trace).
  if (caller_error) ++thrown;
  if (thrown > 1) {
    const std::uint32_t suppressed = thrown - 1;
    impl_->suppressed_total.fetch_add(suppressed, std::memory_order_relaxed);
    std::fprintf(stderr,
                 "tytra: warning: thread pool: %u of %u exception(s) in one "
                 "batch suppressed (first rethrown)\n",
                 suppressed, thrown);
  }
  if (caller_error) std::rethrow_exception(caller_error);
  if (worker_error) std::rethrow_exception(worker_error);
}

std::uint64_t ThreadPool::suppressed_exception_count() const {
  return impl_->suppressed_total.load(std::memory_order_relaxed);
}

}  // namespace tytra::dse
