#include "tytra/dse/session.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <exception>
#include <iomanip>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <tuple>

#include "tytra/support/failpoint.hpp"
#include "tytra/support/strings.hpp"

// This file IS the DSE engine: the batched parallel sweep, the tuner's
// feedback walk and the Pareto skyline all live here, and the free
// functions in explorer.cpp / tuner.cpp are thin shims over a temporary
// Session. There is exactly one evaluation path, so the Session API and
// the legacy API cannot drift apart.

namespace tytra::dse {

namespace {

std::uint32_t resolve_threads(std::uint32_t requested, std::size_t work_items) {
  // The clamping policy is documented on DseOptions::num_threads: at most
  // 4x the core count and at most one worker per variant. Workers are not
  // clamped to the cache's shard count — cache reads are lock-free, so a
  // warm (hit-dominated) sweep scales past the shard count instead of
  // queuing on shard locks.
  std::uint32_t cores = std::thread::hardware_concurrency();
  if (cores == 0) cores = 1;
  std::uint32_t n = requested == 0 ? cores : std::min(requested, 4 * cores);
  if (work_items < n) n = static_cast<std::uint32_t>(work_items);
  return n == 0 ? 1 : n;
}

/// One unit of evaluation work: a variant, the lowerer/database it is
/// evaluated through, the result slot it writes, and the job it belongs
/// to (the failure domain). A sweep's tasks all share one (lower, db,
/// job); a campaign's flattened list mixes jobs.
struct EvalTask {
  const frontend::Variant* variant;
  const Lowerer* lower;
  const cost::DeviceCostDb* db;
  std::size_t slot;
  std::size_t job;
};

double seconds_since(const std::chrono::steady_clock::time_point& t0) {
  return std::chrono::duration_cast<std::chrono::duration<double>>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

/// What the workers recorded about one job. Exactly one task per job —
/// the one whose dead-flag exchange came back false — gets to set the
/// state and first error; later faults in the same job only bump the
/// count.
struct FaultRecord {
  JobState state{JobState::Ok};
  std::exception_ptr error;  ///< first failing evaluation, for rethrow
  std::string message;       ///< its what(), for JobStatus::error
  std::size_t faults{0};     ///< evaluations that threw
};

/// Per-batch failure-domain state shared by the workers: one dead flag
/// and one FaultRecord per job. The dead flags gate task draw — the
/// first fault (or deadline expiry) in a job marks it dead and its
/// remaining tasks are skipped, so a failing job costs no more
/// wall-clock than the work it completed (no retries, no wedged pool).
struct EvalContext {
  const CancelToken* cancel;
  std::chrono::steady_clock::time_point t0;
  /// Per-job wall-clock budget in seconds since t0; <= 0 disables.
  std::vector<double> deadline;
  bool any_deadline{false};
  /// Per-job cancel tokens (Job::cancel); null disables. A flipped token
  /// kills only its job — the dead flag gates the rest, and
  /// finalize_status turns the incomplete-but-fault-free job into
  /// Cancelled.
  std::vector<const CancelToken*> job_cancel;
  bool any_job_cancel{false};
  std::vector<FaultRecord> records;
  std::unique_ptr<std::atomic<bool>[]> dead;  ///< one flag per job
  std::mutex mu;  ///< guards records (cold path only)

  EvalContext(std::size_t jobs, const CancelToken* cancel_token,
              std::chrono::steady_clock::time_point start)
      : cancel(cancel_token),
        t0(start),
        deadline(jobs, 0.0),
        job_cancel(jobs, nullptr),
        records(jobs),
        dead(std::make_unique<std::atomic<bool>[]>(jobs)) {
    for (std::size_t j = 0; j < jobs; ++j) {
      dead[j].store(false, std::memory_order_relaxed);
    }
  }
};

/// Drains `tasks` into per-task slots. The work-queue is a single atomic
/// cursor; slots are disjoint, so workers never contend on results, and
/// merging slots in enumeration order is deterministic no matter the
/// interleaving. Worker t draws lowering scratch from arenas[t] — worker
/// indices are pinned to pool threads, so recycled builder capacity
/// survives across batches and jobs. levels[slot] records which cache
/// level answered (stays Miss when uncached); the per-batch accounting
/// is aggregated from it afterwards, deterministically, instead of from
/// racing shared counters.
///
/// Failure containment is per job, not per batch: a throwing evaluation
/// (including the `dse.pool-task` failpoint) records the job's first
/// error in ctx and kills only that job's remaining tasks; every other
/// job keeps evaluating. A flipped CancelToken jumps the cursor past the
/// end — in-flight evaluations finish (their slots stay valid), nothing
/// new starts. This function itself never throws engine errors; callers
/// read ctx.records and decide (explore rethrows, run() degrades).
void evaluate_tasks(const std::vector<EvalTask>& tasks, CostCache* cache,
                    ThreadPool* pool, std::uint32_t participants,
                    std::vector<ir::BuildArena>& arenas,
                    std::vector<std::optional<cost::CostReport>>& slots,
                    std::vector<CostCache::HitLevel>& levels,
                    EvalContext& ctx) {
  std::atomic<std::size_t> cursor{0};

  auto worker = [&](std::uint32_t worker_index) {
    ir::BuildArena& arena = arenas[worker_index];
    for (;;) {
      if (ctx.cancel != nullptr && ctx.cancel->cancelled()) {
        // Unfinished jobs are marked Cancelled by finalize_status once
        // the batch drains.
        cursor.store(tasks.size(), std::memory_order_relaxed);
        return;
      }
      const std::size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
      if (i >= tasks.size()) return;
      const EvalTask& t = tasks[i];
      if (ctx.dead[t.job].load(std::memory_order_relaxed)) continue;
      if (ctx.any_job_cancel) {
        const CancelToken* jc = ctx.job_cancel[t.job];
        if (jc != nullptr && jc->cancelled()) {
          // Idempotent store, no record: finalize_status derives the
          // Cancelled state from the fault-free-but-incomplete slots.
          ctx.dead[t.job].store(true, std::memory_order_relaxed);
          continue;
        }
      }
      if (ctx.any_deadline) {
        const double budget = ctx.deadline[t.job];
        if (budget > 0 && seconds_since(ctx.t0) >= budget) {
          if (!ctx.dead[t.job].exchange(true, std::memory_order_relaxed)) {
            std::lock_guard<std::mutex> lock(ctx.mu);
            FaultRecord& r = ctx.records[t.job];
            r.state = JobState::TimedOut;
            std::ostringstream why;
            why << "deadline exceeded (budget " << budget << " s)";
            r.message = why.str();
          }
          continue;
        }
      }
      try {
        failpoint::maybe_throw("dse.pool-task");
        if (cache) {
          CostCache::HitLevel level = CostCache::HitLevel::Miss;
          slots[t.slot] = cache->cost(*t.variant, *t.lower, *t.db, &level,
                                      &arena);
          levels[t.slot] = level;
        } else {
          ir::Module module = t.lower->lower(*t.variant, &arena);
          slots[t.slot] = cost::cost_design(module, *t.db);
          arena.recycle(std::move(module));
        }
      } catch (...) {
        const bool first =
            !ctx.dead[t.job].exchange(true, std::memory_order_relaxed);
        std::lock_guard<std::mutex> lock(ctx.mu);
        FaultRecord& r = ctx.records[t.job];
        ++r.faults;
        if (first) {
          r.state = JobState::Failed;
          r.error = std::current_exception();
          try {
            throw;
          } catch (const std::exception& e) {
            r.message = e.what();
          } catch (...) {
            r.message = "unknown exception";
          }
        }
      }
    }
  };

  if (participants <= 1 || pool == nullptr) {
    worker(0);
  } else {
    pool->run_batch(participants, worker);
  }
}

/// Derives one job's final JobStatus from its slot range after every
/// wave drained: evaluated = filled slots, skipped = the rest minus the
/// faulting attempts. A job that recorded nothing wrong but did not
/// finish can only have been stopped by the cancel latch.
JobStatus finalize_status(const EvalContext& ctx, std::size_t job,
                          const std::vector<std::optional<cost::CostReport>>&
                              slots,
                          std::size_t begin, std::size_t end) {
  const FaultRecord& r = ctx.records[job];
  JobStatus s;
  s.state = r.state;
  s.error = r.message;
  s.faults = r.faults;
  for (std::size_t i = begin; i < end; ++i) {
    if (slots[i].has_value()) ++s.evaluated;
  }
  s.skipped = (end - begin) - s.evaluated - s.faults;
  if (s.state == JobState::Ok && s.evaluated < end - begin) {
    s.state = JobState::Cancelled;
    s.error = "cancelled";
  }
  return s;
}

/// Sums levels[begin, end) into per-sweep stats — only for slots that
/// were actually evaluated (a skipped task's level is a meaningless
/// default, not a miss). Separate from the cache's global counters,
/// which concurrent sweeps sharing the cache also advance; and per-slot,
/// so a campaign can attribute one flattened batch back to its jobs in
/// enumeration order.
void accumulate_stats(CacheStats& stats,
                      const std::vector<CostCache::HitLevel>& levels,
                      const std::vector<std::optional<cost::CostReport>>& slots,
                      std::size_t begin, std::size_t end) {
  for (std::size_t i = begin; i < end; ++i) {
    if (!slots[i].has_value()) continue;
    if (levels[i] == CostCache::HitLevel::Miss) {
      ++stats.misses;
    } else {
      ++stats.hits;
      if (levels[i] == CostCache::HitLevel::Variant) ++stats.variant_hits;
    }
  }
}

/// The streaming share of the per-instance time: how much of the budget
/// the DRAM term claims (0 for form-C designs, ~1 on a bandwidth wall).
double bandwidth_share(const cost::CostReport& report) {
  const auto& t = report.throughput;
  return t.seconds_per_instance > 0 ? t.t_mem_stream / t.seconds_per_instance
                                    : 0.0;
}

}  // namespace

// A point dominates another when it is at least as good on every
// objective (EKIT >=, util <=, bw-share <=) and strictly better on one.
//
/// Sort-based skyline over an arbitrary candidate set. Candidates sorted
/// by EKIT descending can only be dominated by points earlier in the
/// sort; kept points are condensed into a (util, bw) staircase —
/// strictly increasing util, strictly decreasing bw — so each dominance
/// probe is one ordered-map lookup: O(n log n) overall. Returns the keep
/// flag per candidate position; ties break on candidate position, so
/// callers that build candidates in enumeration order get the same set
/// and order as the all-pairs definition. Shared by per-sweep frontiers
/// and the campaign's merged view.
std::vector<bool> detail::skyline_keep(
    const std::vector<ParetoPoint>& candidates) {
  std::vector<bool> keep(candidates.size(), false);
  // A non-finite objective breaks the sort's strict weak ordering (NaN
  // compares false against everything) and has no place on the staircase;
  // such a candidate is never a frontier member and must not dominate
  // anything, so it is dropped before ordering.
  std::vector<std::size_t> order;
  order.reserve(candidates.size());
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const ParetoPoint& p = candidates[i];
    if (std::isfinite(p.ekit) && std::isfinite(p.util_max) &&
        std::isfinite(p.bw_share)) {
      order.push_back(i);
    }
  }
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const ParetoPoint& pa = candidates[a];
    const ParetoPoint& pb = candidates[b];
    if (pa.ekit != pb.ekit) return pa.ekit > pb.ekit;
    if (pa.util_max != pb.util_max) return pa.util_max < pb.util_max;
    if (pa.bw_share != pb.bw_share) return pa.bw_share < pb.bw_share;
    return a < b;
  });

  // Staircase over kept points from strictly-higher-EKIT groups. Every
  // staircase point has strictly greater EKIT than the probe, so covering
  // it on (util, bw) — even with equality — is domination.
  std::map<double, double> staircase;  // util -> bw, bw strictly decreasing
  const auto covered = [&](const ParetoPoint& c) {
    auto it = staircase.upper_bound(c.util_max);
    if (it == staircase.begin()) return false;
    --it;  // greatest util <= c.util; its bw is the minimum among those
    return it->second <= c.bw_share;
  };
  const auto insert_point = [&](const ParetoPoint& c) {
    auto it = staircase.upper_bound(c.util_max);
    if (it != staircase.begin() && std::prev(it)->second <= c.bw_share) {
      return;  // an existing point already covers it
    }
    auto pos = staircase.lower_bound(c.util_max);
    while (pos != staircase.end() && pos->second >= c.bw_share) {
      pos = staircase.erase(pos);
    }
    staircase.emplace(c.util_max, c.bw_share);
  };

  std::size_t g = 0;
  while (g < order.size()) {
    // One group of equal-EKIT candidates, in (util asc, bw asc) order.
    std::size_t g_end = g + 1;
    while (g_end < order.size() &&
           candidates[order[g_end]].ekit == candidates[order[g]].ekit) {
      ++g_end;
    }
    // Within the group EKIT ties, so domination needs strictness on the
    // other two objectives. Earlier members have util <= ours; tracking
    // the running minimum bw (and the smallest util achieving it) decides
    // domination without a scan. Dominated members participate too:
    // whatever they would dominate, their own dominator also dominates.
    double g_min_bw = 0;
    double g_min_bw_util = 0;
    for (std::size_t k = g; k < g_end; ++k) {
      const ParetoPoint& c = candidates[order[k]];
      const bool by_group =
          k > g && (g_min_bw < c.bw_share ||
                    (g_min_bw == c.bw_share && g_min_bw_util < c.util_max));
      keep[order[k]] = !by_group && !covered(c);
      if (k == g || c.bw_share < g_min_bw) {
        g_min_bw = c.bw_share;
        g_min_bw_util = c.util_max;  // first achiever has the smallest util
      }
    }
    // Merge the group's survivors only after the whole group is probed:
    // equal-EKIT points must not dominate through the staircase.
    for (std::size_t k = g; k < g_end; ++k) {
      if (keep[order[k]]) insert_point(candidates[order[k]]);
    }
    g = g_end;
  }
  return keep;
}

namespace {

std::vector<ParetoPoint> pareto_frontier(const std::vector<DseEntry>& entries) {
  std::vector<ParetoPoint> candidates;
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const auto& e = entries[i];
    if (!e.report.valid) continue;
    candidates.push_back(ParetoPoint{i, e.report.throughput.ekit,
                                     e.report.resources.util.max(),
                                     bandwidth_share(e.report)});
  }
  const std::vector<bool> keep = detail::skyline_keep(candidates);
  std::vector<ParetoPoint> frontier;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    if (keep[i]) frontier.push_back(candidates[i]);
  }
  return frontier;  // candidates were built in enumeration order
}

/// Smallest divisor of n strictly greater than `lanes`, or 0 — one
/// upper_bound on the pre-enumerated divisor ladder.
std::uint64_t next_lane_count(const std::vector<std::uint64_t>& divs,
                              std::uint64_t lanes) {
  const auto it = std::upper_bound(divs.begin(), divs.end(), lanes);
  return it == divs.end() ? 0 : *it;
}

/// Index of the highest-EKIT valid report in `seq` (get maps an element
/// to its CostReport), or nullopt when nothing is valid — the one "best"
/// rule shared by the sweep's entries and the tuner's trajectory.
template <typename Seq, typename GetReport>
std::optional<std::size_t> best_valid_index(const Seq& seq, GetReport get) {
  std::optional<std::size_t> best;
  for (std::size_t i = 0; i < seq.size(); ++i) {
    const cost::CostReport& r = get(seq[i]);
    if (!r.valid) continue;
    if (!best || r.throughput.ekit > get(seq[*best]).throughput.ekit) {
      best = i;
    }
  }
  return best;
}

/// Deterministic merge in enumeration order: moves variants[i] +
/// slots[offset + i] into entries, then derives best and the frontier.
/// Shared by explore and the campaign's per-job attribution of one
/// flattened batch.
void merge_sweep(DseResult& result, std::vector<frontend::Variant>& variants,
                 std::vector<std::optional<cost::CostReport>>& slots,
                 std::size_t offset) {
  result.entries.reserve(variants.size());
  for (std::size_t i = 0; i < variants.size(); ++i) {
    result.entries.emplace_back(std::move(variants[i]),
                                std::move(*slots[offset + i]));
  }
  result.best = best_valid_index(
      result.entries, [](const DseEntry& e) -> const cost::CostReport& {
        return e.report;
      });
  result.pareto = pareto_frontier(result.entries);
}

TuneResult run_tune(std::uint64_t n, const Lowerer& lower,
                    const cost::DeviceCostDb& db, int max_steps,
                    std::uint32_t max_lanes, CostCache* cache,
                    ir::BuildArena& arena, const CancelToken* cancel,
                    const CancelToken* job_cancel, double deadline_seconds,
                    std::chrono::steady_clock::time_point t0) {
  TuneResult result;
  if (max_steps <= 0) {
    // Guard the degenerate budget instead of indexing an empty trajectory.
    result.verdict = "stopped: no step budget (max_steps <= 0)";
    return result;
  }
  // One O(sqrt n) enumeration serves every step's "next lane count" probe.
  const std::vector<std::uint64_t> lane_ladder = frontend::divisors(n);
  frontend::Variant current = frontend::baseline_variant(n);
  std::string action = "baseline: single kernel pipeline (what an HLS tool extracts)";

  for (int step = 0; step < max_steps; ++step) {
    // The walk's checkpoints mirror evaluate_tasks' variant granularity:
    // a cancel or expiry stops the next step, never one in flight.
    if (cancel != nullptr && cancel->cancelled()) throw CancelledError();
    if (job_cancel != nullptr && job_cancel->cancelled()) {
      throw CancelledError();
    }
    if (deadline_seconds > 0 && seconds_since(t0) >= deadline_seconds) {
      throw DeadlineExceeded(deadline_seconds);
    }
    cost::CostReport report;
    if (cache) {
      report = cache->cost(current, lower, db, nullptr, &arena);
    } else {
      ir::Module module = lower.lower(current, &arena);
      report = cost::cost_design(module, db);
      arena.recycle(std::move(module));
    }
    const bool valid = report.valid;
    const cost::Wall wall = report.throughput.limiting;
    result.trajectory.emplace_back(current, std::move(report), action);
    const auto& placed = result.trajectory.back();

    if (!valid) {
      result.verdict =
          "stopped: variant exceeds the device (computation wall); keeping "
          "the last fitting variant";
      break;
    }
    if (wall == cost::Wall::HostBandwidth) {
      result.verdict =
          "stopped: host-bandwidth wall — replication cannot help; move to a "
          "form-B/C memory execution or reduce host traffic";
      break;
    }
    if (wall == cost::Wall::DramBandwidth) {
      result.verdict =
          "stopped: DRAM-bandwidth wall — replication cannot help; improve "
          "access contiguity or tile through local memory";
      break;
    }

    // Compute-bound (or fill-bound): add lanes.
    const std::uint64_t next =
        next_lane_count(lane_ladder, placed.report.params.knl);
    if (next == 0) {
      result.verdict = "stopped: no further lane count divides the NDRange";
      break;
    }
    if (next > max_lanes) {
      // The resolved lane cap bounds the walk exactly like it bounds the
      // sweep's enumeration (this used to be a hard-coded `next > 1024`
      // that ignored Job::max_lanes / SessionOptions::max_lanes).
      std::ostringstream why;
      why << "stopped: lane cap reached (next divisor " << next
          << " exceeds max_lanes=" << max_lanes << ")";
      result.verdict = why.str();
      break;
    }
    current = frontend::reshape_to(frontend::baseline_variant(n), next,
                                   frontend::ParAnn::Par);
    std::ostringstream why;
    why << "compute wall at " << placed.report.params.knl
        << " lanes -> reshapeTo " << next << " lanes";
    action = why.str();
  }

  // Best valid step; stays nullopt when every step exceeded the device.
  result.best = best_valid_index(
      result.trajectory, [](const TuneStep& s) -> const cost::CostReport& {
        return s.report;
      });
  if (result.verdict.empty()) result.verdict = "stopped: step budget exhausted";
  return result;
}

}  // namespace

// ---------------------------------------------------------------------------
// Session
// ---------------------------------------------------------------------------

namespace {

// Snapshot container section ids.
constexpr std::uint32_t kSecMeta = 1;
constexpr std::uint32_t kSecStructural = 2;
constexpr std::uint32_t kSecVariant = 3;
constexpr std::uint32_t kSecCalibration = 4;

/// Version of the *payload* schemas inside the sections (report encoding,
/// digest scheme, calibration layout). Bump on any change to those — the
/// container format version in binio.hpp only covers the framing.
constexpr std::uint32_t kSnapshotPayloadVersion = 1;

}  // namespace

Session::Session(SessionOptions options) : options_(std::move(options)) {
  if (options_.max_lanes == 0) {
    throw std::invalid_argument(
        "dse::Session: SessionOptions::max_lanes must be >= 1 (a sweep over "
        "no lane counts is empty)");
  }
  if (options_.enable_cache) {
    cache_ = std::make_unique<CostCache>(options_.cache_shards);
  }
  if (!options_.snapshot_path.empty()) {
    // A missing file is a normal first run: cold-start silently, and the
    // eventual save_snapshot() creates it. Everything else that can be
    // wrong with the file surfaces as exactly one structured warning.
    std::FILE* probe = std::fopen(options_.snapshot_path.c_str(), "rb");
    if (probe != nullptr) {
      std::fclose(probe);
      const auto loaded = load_snapshot(options_.snapshot_path);
      if (!loaded.ok()) {
        std::fprintf(stderr,
                     "tytra: warning: snapshot-load path='%s' error='%s' "
                     "action=cold-start\n",
                     options_.snapshot_path.c_str(),
                     loaded.diag().message.c_str());
      }
    }
  }
}

Session::~Session() = default;

const cost::DeviceCostDb& Session::add_device(const target::DeviceDesc& desc) {
  // A restored calibration is used only while its fingerprint still
  // matches the incoming description — a stale entry (edited .tgt file,
  // different preset under the same name) is dropped and recalibrated,
  // never trusted.
  const auto it = restored_.find(desc.name);
  if (it != restored_.end()) {
    const bool fresh = it->second.fingerprint == device_fingerprint(desc);
    cost::DeviceCostDb db = fresh ? std::move(it->second.db)
                                  : cost::DeviceCostDb::calibrate(desc);
    restored_.erase(it);
    return add_device(desc.name, std::move(db));
  }
  return add_device(desc.name, cost::DeviceCostDb::calibrate(desc));
}

const cost::DeviceCostDb& Session::add_device(std::string name,
                                              cost::DeviceCostDb db) {
  if (name.empty()) {
    throw std::invalid_argument("dse::Session: device name must be non-empty");
  }
  const auto [it, inserted] = devices_.emplace(std::move(name), std::move(db));
  if (!inserted) {
    throw std::invalid_argument("dse::Session: device '" + it->first +
                                "' is already in the device table");
  }
  device_order_.push_back(it->first);
  return it->second;
}

const cost::DeviceCostDb* Session::find_device(std::string_view name) const {
  const auto it = devices_.find(name);
  return it == devices_.end() ? nullptr : &it->second;
}

std::string_view job_state_name(JobState state) {
  switch (state) {
    case JobState::Ok: return "ok";
    case JobState::Failed: return "failed";
    case JobState::TimedOut: return "timed_out";
    case JobState::Cancelled: return "cancelled";
  }
  return "unknown";
}

Result<Session::SnapshotStats> Session::load_snapshot(const std::string& path) {
  if (failpoint::fire("snapshot.load")) {
    return make_error("snapshot: injected fault at failpoint 'snapshot.load'");
  }
  auto opened = binio::Reader::open(path);
  if (!opened.ok()) return opened.diag();
  const binio::Reader reader = std::move(opened).take();

  if (!reader.has_section(kSecMeta)) {
    return make_error("snapshot: missing meta section");
  }
  binio::Decoder meta(reader.section(kSecMeta));
  const std::uint32_t payload_version = meta.u32();
  if (meta.ok() && payload_version != kSnapshotPayloadVersion) {
    return make_error("snapshot: payload version " +
                      std::to_string(payload_version) +
                      " unsupported (this build reads " +
                      std::to_string(kSnapshotPayloadVersion) + ")");
  }
  if (!meta.at_end()) return make_error("snapshot: " + meta.error());

  // Any failure past this point rolls the session back to fully cold: a
  // prefix of a snapshot must be indistinguishable from no snapshot.
  const auto rollback = [&] {
    if (cache_) cache_->clear();
    restored_.clear();
  };

  SnapshotStats stats;
  if (cache_) {
    binio::Decoder structural(reader.section(kSecStructural));
    binio::Decoder variant(reader.section(kSecVariant));
    auto counts = cache_->load(structural, variant);
    if (!counts.ok()) {
      rollback();
      return counts.diag();
    }
    stats.structural_entries = counts.value().structural;
    stats.variant_entries = counts.value().variant;
  }

  if (reader.has_section(kSecCalibration)) {
    binio::Decoder calib(reader.section(kSecCalibration));
    const std::uint64_t count = calib.u64();
    if (!calib.fits(count, 8)) {
      rollback();
      return make_error("snapshot: " + calib.error());
    }
    for (std::uint64_t i = 0; i < count; ++i) {
      std::string name = calib.str();
      const std::uint64_t fingerprint = calib.u64();
      auto db = cost::DeviceCostDb::load(calib);
      if (!db.ok()) {
        rollback();
        return db.diag();
      }
      if (!calib.ok()) {
        rollback();
        return make_error("snapshot: " + calib.error());
      }
      restored_.insert_or_assign(
          std::move(name),
          RestoredCalibration{fingerprint, std::move(db).take()});
      ++stats.calibrations;
    }
    if (!calib.at_end()) {
      rollback();
      return make_error("snapshot: " + calib.error());
    }
  }
  return stats;
}

Result<std::uint64_t> Session::save_snapshot(const std::string& path) {
  const std::string& target = path.empty() ? options_.snapshot_path : path;
  if (target.empty()) {
    return make_error(
        "snapshot: no path given (set SessionOptions::snapshot_path or pass "
        "one explicitly)");
  }
  if (failpoint::fire("snapshot.save")) {
    return make_error("snapshot: injected fault at failpoint 'snapshot.save'");
  }

  binio::Writer writer;
  binio::Encoder meta;
  meta.u32(kSnapshotPayloadVersion);
  writer.add_section(kSecMeta, meta.take());

  binio::Encoder structural;
  binio::Encoder variant;
  if (cache_) cache_->dump(structural, variant);
  writer.add_section(kSecStructural, structural.take());
  writer.add_section(kSecVariant, variant.take());

  // Claimed calibrations first, then restored-but-unclaimed ones (a job
  // that only exercised one device must not drop the others' calibration
  // work); a name in both tables keeps the live database.
  std::size_t unclaimed = 0;
  for (const auto& [name, rc] : restored_) {
    if (devices_.find(name) == devices_.end()) ++unclaimed;
  }
  binio::Encoder calib;
  calib.u64(devices_.size() + unclaimed);
  for (const auto& [name, db] : devices_) {
    calib.str(name);
    calib.u64(device_fingerprint(db.device()));
    db.save(calib);
  }
  for (const auto& [name, rc] : restored_) {
    if (devices_.find(name) != devices_.end()) continue;
    calib.str(name);
    calib.u64(rc.fingerprint);
    rc.db.save(calib);
  }
  writer.add_section(kSecCalibration, calib.take());

  return writer.write(target);
}

Result<SnapshotSummary> verify_snapshot(const std::string& path) {
  auto opened = binio::Reader::open(path);
  if (!opened.ok()) return opened.diag();
  const binio::Reader reader = std::move(opened).take();

  SnapshotSummary out;
  out.format_version = reader.format_version();
  out.file_bytes = reader.file_size();

  if (!reader.has_section(kSecMeta)) {
    return make_error("snapshot: missing meta section");
  }
  binio::Decoder meta(reader.section(kSecMeta));
  out.payload_version = meta.u32();
  if (meta.ok() && out.payload_version != kSnapshotPayloadVersion) {
    return make_error("snapshot: payload version " +
                      std::to_string(out.payload_version) +
                      " unsupported (this build reads " +
                      std::to_string(kSnapshotPayloadVersion) + ")");
  }
  if (!meta.at_end()) return make_error("snapshot: " + meta.error());

  // Decode every cache entry through a scratch cache — the exact walk a
  // warm start performs, so "verify passed" means "a load would succeed".
  CostCache scratch(1);
  binio::Decoder structural(reader.section(kSecStructural));
  binio::Decoder variant(reader.section(kSecVariant));
  auto counts = scratch.load(structural, variant);
  if (!counts.ok()) return counts.diag();
  out.structural_entries = counts.value().structural;
  out.variant_entries = counts.value().variant;

  if (reader.has_section(kSecCalibration)) {
    binio::Decoder calib(reader.section(kSecCalibration));
    const std::uint64_t count = calib.u64();
    if (!calib.fits(count, 8)) return make_error("snapshot: " + calib.error());
    for (std::uint64_t i = 0; i < count; ++i) {
      std::string name = calib.str();
      const std::uint64_t fingerprint = calib.u64();
      auto db = cost::DeviceCostDb::load(calib);
      if (!db.ok()) return db.diag();
      if (!calib.ok()) return make_error("snapshot: " + calib.error());
      out.calibrations.emplace_back(std::move(name), fingerprint);
    }
    if (!calib.at_end()) return make_error("snapshot: " + calib.error());
  }
  return out;
}

Session::ResolvedJob Session::resolve(const Job& job) const {
  if (!job.lower) {
    throw std::invalid_argument("dse::Session: Job::lower is null — nothing "
                                "can materialize the variants");
  }
  if (job.n == 0) {
    throw std::invalid_argument(
        "dse::Session: Job::n (NDRange size) must be >= 1");
  }
  const std::uint32_t max_lanes =
      job.max_lanes != 0 ? job.max_lanes : options_.max_lanes;
  if (max_lanes == 0) {
    throw std::invalid_argument("dse::Session: effective max_lanes is 0");
  }
  const cost::DeviceCostDb* db = job.db;
  if (!db) {
    if (devices_.empty()) {
      throw std::invalid_argument(
          "dse::Session: the job names no database and the device table is "
          "empty — add_device() first");
    }
    if (job.device.empty()) {
      db = &devices_.find(device_order_.front())->second;
    } else {
      db = find_device(job.device);
      if (!db) {
        std::string known;
        for (const auto& name : device_order_) {
          if (!known.empty()) known += ", ";
          known += name;
        }
        throw std::invalid_argument("dse::Session: unknown device '" +
                                    job.device + "' (device table: " + known +
                                    ")");
      }
    }
  }
  return ResolvedJob{db, job.lower.get(), job.n, max_lanes};
}

std::vector<ir::BuildArena>& Session::arenas(std::size_t n) {
  while (arenas_.size() < n) arenas_.emplace_back();
  return arenas_;
}

std::uint32_t Session::max_participants() const {
  return resolve_threads(options_.num_threads,
                         std::numeric_limits<std::size_t>::max());
}

ThreadPool* Session::pool_for(std::uint32_t participants) {
  if (participants <= 1) return nullptr;
  if (!pool_) {
    // Lazily spawn the persistent workers at the session's full clamp
    // (the caller is participant 0, so capacity is one less); batches
    // narrower than the capacity simply draft fewer workers.
    pool_ = std::make_unique<ThreadPool>(max_participants() - 1);
  }
  return pool_.get();
}

DseResult Session::explore(const Job& job, CostCache* cache_override) {
  const ResolvedJob r = resolve(job);
  const auto t0 = std::chrono::steady_clock::now();
  DseResult result;
  std::vector<frontend::Variant> variants =
      frontend::enumerate_variants(r.n, r.max_lanes, job.include_seq);

  std::vector<std::optional<cost::CostReport>> slots(variants.size());
  std::vector<CostCache::HitLevel> levels(variants.size(),
                                          CostCache::HitLevel::Miss);
  std::vector<EvalTask> tasks;
  tasks.reserve(variants.size());
  for (std::size_t i = 0; i < variants.size(); ++i) {
    tasks.push_back(EvalTask{&variants[i], r.lower, r.db, i, 0});
  }
  CostCache* cache = effective_cache(cache_override);
  const std::uint32_t participants =
      resolve_threads(options_.num_threads, variants.size());
  EvalContext ctx(1, options_.cancel, t0);
  ctx.deadline[0] = job.deadline_seconds > 0 ? job.deadline_seconds
                                             : options_.deadline_seconds;
  ctx.any_deadline = ctx.deadline[0] > 0;
  ctx.job_cancel[0] = job.cancel;
  ctx.any_job_cancel = job.cancel != nullptr;
  evaluate_tasks(tasks, cache, pool_for(participants), participants,
                 arenas(participants), slots, levels, ctx);
  // Single-job semantics: a contained failure surfaces as the original
  // exception (so callers and the legacy shims see exactly what the
  // evaluation threw), an expiry/cancel as its typed error.
  const JobStatus status = finalize_status(ctx, 0, slots, 0, slots.size());
  if (status.state == JobState::Failed) {
    std::rethrow_exception(ctx.records[0].error);
  }
  if (status.state == JobState::TimedOut) {
    throw DeadlineExceeded(ctx.deadline[0]);
  }
  if (status.state == JobState::Cancelled) throw CancelledError();
  if (cache) {
    accumulate_stats(result.cache_stats, levels, slots, 0, levels.size());
  }
  merge_sweep(result, variants, slots, 0);
  result.explore_seconds = seconds_since(t0);
  return result;
}

TuneResult Session::tune(const Job& job, CostCache* cache_override) {
  const ResolvedJob r = resolve(job);
  const double deadline = job.deadline_seconds > 0 ? job.deadline_seconds
                                                   : options_.deadline_seconds;
  return run_tune(r.n, *r.lower, *r.db, job.max_steps, r.max_lanes,
                  effective_cache(cache_override), arenas(1)[0],
                  options_.cancel, job.cancel, deadline,
                  std::chrono::steady_clock::now());
}

cost::CostReport Session::baseline(const Job& job, CostCache* cache_override) {
  const ResolvedJob r = resolve(job);
  if (options_.cancel != nullptr && options_.cancel->cancelled()) {
    throw CancelledError();
  }
  if (job.cancel != nullptr && job.cancel->cancelled()) throw CancelledError();
  const frontend::Variant variant = frontend::baseline_variant(r.n);
  CostCache* cache = effective_cache(cache_override);
  ir::BuildArena& arena = arenas(1)[0];
  if (cache) return cache->cost(variant, *r.lower, *r.db, nullptr, &arena);
  ir::Module module = r.lower->lower(variant, &arena);
  cost::CostReport report = cost::cost_design(module, *r.db);
  arena.recycle(std::move(module));
  return report;
}

CampaignResult Session::run(const Campaign& campaign,
                            CostCache* cache_override) {
  const auto t0 = std::chrono::steady_clock::now();
  CampaignResult out;
  CostCache* cache = effective_cache(cache_override);

  // Validate and enumerate every job before evaluating anything: a bad
  // job fails the campaign up front instead of after most of the work.
  std::vector<ResolvedJob> resolved;
  resolved.reserve(campaign.jobs.size());
  std::vector<std::vector<frontend::Variant>> variants;
  variants.reserve(campaign.jobs.size());
  std::vector<std::size_t> offset(campaign.jobs.size() + 1, 0);
  for (std::size_t j = 0; j < campaign.jobs.size(); ++j) {
    resolved.push_back(resolve(campaign.jobs[j]));
    variants.push_back(frontend::enumerate_variants(
        resolved[j].n, resolved[j].max_lanes, campaign.jobs[j].include_seq));
    offset[j + 1] = offset[j] + variants[j].size();
  }
  const std::size_t total = offset.back();

  // Campaign-wide scheduling: one flattened work list over every job's
  // variants, drained by the shared pool, so a campaign of many small
  // jobs keeps every worker busy instead of parallelizing each job
  // alone. Evaluation runs in two waves. Wave 1 covers every *distinct*
  // design — a design repeated across jobs (same database, same variant
  // key) is evaluated once, by the first job that enumerates it. Wave 2
  // runs the repeats after the wave-1 barrier, so each resolves at the
  // variant-key level against the now-warm cache — exactly the hits the
  // old job-after-job loop produced, which keeps per-job cache stats
  // (and therefore campaign text output) byte-identical across thread
  // counts. Key-less lowerers cannot be deduplicated before lowering
  // and stay in wave 1.
  std::vector<std::optional<cost::CostReport>> slots(total);
  std::vector<CostCache::HitLevel> levels(total, CostCache::HitLevel::Miss);
  std::vector<EvalTask> wave1;
  wave1.reserve(total);
  std::vector<EvalTask> wave2;
  std::set<std::tuple<const cost::DeviceCostDb*, std::uint64_t, std::uint64_t>>
      seen;
  for (std::size_t j = 0; j < variants.size(); ++j) {
    for (std::size_t i = 0; i < variants[j].size(); ++i) {
      const EvalTask task{&variants[j][i], resolved[j].lower, resolved[j].db,
                          offset[j] + i, j};
      bool repeat = false;
      if (cache) {
        if (const auto vk = resolved[j].lower->key(variants[j][i])) {
          // Jobs naming the same device-table entry share a DeviceCostDb
          // address, so (database, variant key) identifies the design; a
          // caller-supplied Job::db that merely equals another database
          // is conservatively treated as distinct.
          repeat = !seen.insert({resolved[j].db, vk->key, vk->check}).second;
        }
      }
      (repeat ? wave2 : wave1).push_back(task);
    }
  }
  EvalContext ctx(campaign.jobs.size(), options_.cancel, t0);
  for (std::size_t j = 0; j < campaign.jobs.size(); ++j) {
    ctx.deadline[j] = campaign.jobs[j].deadline_seconds > 0
                          ? campaign.jobs[j].deadline_seconds
                          : options_.deadline_seconds;
    if (ctx.deadline[j] > 0) ctx.any_deadline = true;
    ctx.job_cancel[j] = campaign.jobs[j].cancel;
    if (ctx.job_cancel[j] != nullptr) ctx.any_job_cancel = true;
  }
  for (const std::vector<EvalTask>* wave : {&wave1, &wave2}) {
    if (wave->empty()) continue;
    if (options_.cancel != nullptr && options_.cancel->cancelled()) break;
    const std::uint32_t participants =
        resolve_threads(options_.num_threads, wave->size());
    evaluate_tasks(*wave, cache, pool_for(participants), participants,
                   arenas(participants), slots, levels, ctx);
  }
  const double eval_seconds = seconds_since(t0);

  // Per-job merge, stats, best and frontier in enumeration order —
  // byte-identical to running the jobs one at a time. A non-ok job
  // keeps its status (and cache stats for whatever it did evaluate) but
  // presents no entries: a partial sweep is not a result.
  out.jobs.reserve(campaign.jobs.size());
  for (std::size_t j = 0; j < campaign.jobs.size(); ++j) {
    CampaignJobResult jr;
    jr.job = campaign.jobs[j];
    jr.status = finalize_status(ctx, j, slots, offset[j], offset[j + 1]);
    DseResult r;
    if (cache) {
      accumulate_stats(r.cache_stats, levels, slots, offset[j],
                       offset[j + 1]);
      out.cache_stats.hits += r.cache_stats.hits;
      out.cache_stats.misses += r.cache_stats.misses;
      out.cache_stats.variant_hits += r.cache_stats.variant_hits;
    }
    if (jr.status.ok()) merge_sweep(r, variants[j], slots, offset[j]);
    // Jobs were evaluated as one flattened batch; each reports the
    // campaign's shared evaluation wall clock (see CampaignResult docs).
    r.explore_seconds = eval_seconds;
    jr.result = std::move(r);
    out.jobs.push_back(std::move(jr));
  }

  // Merged frontier over every job's per-sweep frontier. Restricting the
  // candidates to per-job frontiers is lossless: a point dominated within
  // its own sweep is dominated by one of that sweep's frontier points
  // (dominance is a finite strict partial order), which competes here.
  std::vector<ParetoPoint> candidates;
  std::vector<CampaignParetoPoint> mapping;
  for (std::size_t j = 0; j < out.jobs.size(); ++j) {
    for (const ParetoPoint& p : out.jobs[j].result.pareto) {
      candidates.push_back(p);
      mapping.push_back(CampaignParetoPoint{j, p});
    }
  }
  const std::vector<bool> keep = detail::skyline_keep(candidates);
  for (std::size_t i = 0; i < mapping.size(); ++i) {
    if (keep[i]) out.pareto.push_back(mapping[i]);
  }

  out.campaign_seconds = seconds_since(t0);
  return out;
}

// ---------------------------------------------------------------------------
// Internal engine entry points for the legacy shims (explorer.cpp /
// tuner.cpp). Declared in those files, not in any public header.
// ---------------------------------------------------------------------------

namespace detail {

Job borrow_job(std::uint64_t n, const Lowerer& lower,
               const cost::DeviceCostDb& db) {
  Job job;
  job.n = n;
  // Aliasing constructor: the shim borrows the caller's lowerer for the
  // duration of the call without taking ownership.
  job.lower = std::shared_ptr<const Lowerer>(std::shared_ptr<void>{}, &lower);
  job.db = &db;
  return job;
}

Session shim_session(std::uint32_t num_threads) {
  SessionOptions so;
  so.num_threads = num_threads;
  // Legacy semantics: the caller controls caching entirely through
  // DseOptions::cache / the tune cache parameter; the temporary session
  // owns none.
  so.enable_cache = false;
  // Legacy tune never took a lane cap — its walk was bounded only by the
  // historical `next > 1024` guard. The shim pins that cap so the free
  // functions stop at the same step; Session callers get the real
  // resolved cap. (explore is unaffected: its shim sets Job::max_lanes
  // from DseOptions explicitly.) One deliberate wording change: a walk
  // that actually reaches 1024 lanes now stops with the accurate "lane
  // cap reached" verdict instead of the old, false "no further lane
  // count divides the NDRange" — same step count, better diagnosis.
  so.max_lanes = 1024;
  return Session(so);
}

}  // namespace detail

// ---------------------------------------------------------------------------
// Campaign rendering
// ---------------------------------------------------------------------------

namespace {

std::string job_label(const Job& job) {
  return job.workload.empty() ? std::string("<custom>") : job.workload;
}

std::string device_label(const Job& job) {
  if (!job.device.empty()) return job.device;
  if (job.db) return job.db->device().name;
  return "<default>";
}

/// JSON number: round-trip precision; non-finite values (which JSON
/// cannot carry) become null. Restores the caller's actual precision —
/// not a hard-coded default — so a caller that configured its stream
/// keeps its formatting after the call.
void json_num(std::ostream& os, double v) {
  if (!std::isfinite(v)) {
    os << "null";
    return;
  }
  const std::streamsize saved = os.precision(17);
  os << v;
  os.precision(saved);
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void json_cache_stats(std::ostream& os, const CacheStats& s) {
  os << "{\"hits\": " << s.hits << ", \"misses\": " << s.misses
     << ", \"variant_hits\": " << s.variant_hits << "}";
}

void json_entry(std::ostream& os, const DseEntry& e) {
  const auto& u = e.report.resources.util;
  os << "{\"lanes\": " << e.report.params.knl << ", \"valid\": "
     << (e.report.valid ? "true" : "false") << ", \"ekit\": ";
  json_num(os, e.report.throughput.ekit);
  os << ", \"limiting\": \""
     << json_escape(cost::wall_name(e.report.throughput.limiting))
     << "\", \"util\": {\"regs\": ";
  json_num(os, u.regs);
  os << ", \"aluts\": ";
  json_num(os, u.aluts);
  os << ", \"bram\": ";
  json_num(os, u.bram);
  os << ", \"dsps\": ";
  json_num(os, u.dsps);
  os << "}, \"bw_share\": ";
  json_num(os, bandwidth_share(e.report));
  os << "}";
}

void json_pareto_point(std::ostream& os, const ParetoPoint& p,
                       const DseEntry& e) {
  os << "{\"index\": " << p.index << ", \"lanes\": " << e.report.params.knl
     << ", \"ekit\": ";
  json_num(os, p.ekit);
  os << ", \"util_max\": ";
  json_num(os, p.util_max);
  os << ", \"bw_share\": ";
  json_num(os, p.bw_share);
  os << "}";
}

void json_sweep(std::ostream& os, const DseResult& r,
                std::string_view indent) {
  os << "{\n" << indent << "  \"variants\": " << r.entries.size() << ",\n"
     << indent << "  \"explore_seconds\": ";
  json_num(os, r.explore_seconds);
  os << ",\n" << indent << "  \"cache\": ";
  json_cache_stats(os, r.cache_stats);
  os << ",\n" << indent << "  \"best\": ";
  if (r.best) {
    os << *r.best;
  } else {
    os << "null";
  }
  os << ",\n" << indent << "  \"entries\": [";
  for (std::size_t i = 0; i < r.entries.size(); ++i) {
    os << (i ? ",\n" : "\n") << indent << "    ";
    json_entry(os, r.entries[i]);
  }
  os << "\n" << indent << "  ],\n" << indent << "  \"pareto\": [";
  for (std::size_t i = 0; i < r.pareto.size(); ++i) {
    os << (i ? ",\n" : "\n") << indent << "    ";
    json_pareto_point(os, r.pareto[i], r.entries[r.pareto[i].index]);
  }
  os << "\n" << indent << "  ]\n" << indent << "}";
}

}  // namespace

std::string format_campaign(const CampaignResult& result) {
  std::ostringstream os;
  os << tytra::pad_right("workload", 12) << tytra::pad_right("nd", 8)
     << tytra::pad_right("device", 18) << tytra::pad_left("variants", 9)
     << tytra::pad_left("best", 6) << tytra::pad_left("EKIT/s", 12)
     << "  limiting\n";
  for (const auto& jr : result.jobs) {
    os << tytra::pad_right(job_label(jr.job), 12)
       << tytra::pad_right(jr.job.nd ? std::to_string(jr.job.nd) : "-", 8)
       << tytra::pad_right(device_label(jr.job), 18)
       << tytra::pad_left(std::to_string(jr.result.entries.size()), 9);
    if (!jr.status.ok()) {
      // The failure domain's row: status (and its reason) in place of
      // the best-design columns.
      os << tytra::pad_left("-", 6) << tytra::pad_left("-", 12) << "  "
         << job_state_name(jr.status.state);
      if (!jr.status.error.empty()) os << ": " << jr.status.error;
    } else if (const DseEntry* best = jr.result.best_entry()) {
      os << tytra::pad_left(std::to_string(best->report.params.knl), 6)
         << tytra::pad_left(
                tytra::format_fixed(best->report.throughput.ekit, 1), 12)
         << "  " << cost::wall_name(best->report.throughput.limiting);
    } else {
      os << tytra::pad_left("-", 6) << tytra::pad_left("-", 12)
         << "  no valid design";
    }
    os << "\n";
  }
  std::uint64_t variants = 0;
  for (const auto& jr : result.jobs) variants += jr.result.entries.size();
  os << "campaign: " << result.jobs.size() << " jobs, " << variants
     << " evaluations; cache: " << result.cache_stats.hits << " hits ("
     << result.cache_stats.variant_hits << " pre-lowering) / "
     << result.cache_stats.misses << " misses\n";
  // Degradation summary only when something degraded — a fault-free
  // campaign's table is byte-identical to the pre-failure-model output.
  if (const std::size_t degraded = result.degraded(); degraded > 0) {
    std::size_t failed = 0;
    std::size_t timed_out = 0;
    std::size_t cancelled = 0;
    for (const auto& jr : result.jobs) {
      if (jr.status.state == JobState::Failed) ++failed;
      if (jr.status.state == JobState::TimedOut) ++timed_out;
      if (jr.status.state == JobState::Cancelled) ++cancelled;
    }
    os << "degraded: " << degraded << " of " << result.jobs.size()
       << " jobs (failed=" << failed << " timed_out=" << timed_out
       << " cancelled=" << cancelled << ")\n";
  }
  return os.str();
}

std::string format_campaign_pareto(const CampaignResult& result) {
  std::ostringstream os;
  os << tytra::pad_right("workload", 12) << tytra::pad_right("device", 18)
     << tytra::pad_left("lanes", 6) << tytra::pad_left("EKIT/s", 12)
     << tytra::pad_left("util%", 8) << tytra::pad_left("bw-share", 10)
     << "  limiting\n";
  for (const auto& p : result.pareto) {
    const auto& jr = result.jobs[p.job];
    const auto& e = result.entry(p);
    os << tytra::pad_right(job_label(jr.job), 12)
       << tytra::pad_right(device_label(jr.job), 18)
       << tytra::pad_left(std::to_string(e.report.params.knl), 6)
       << tytra::pad_left(tytra::format_fixed(p.point.ekit, 1), 12)
       << tytra::pad_left(tytra::format_fixed(p.point.util_max, 1), 8)
       << tytra::pad_left(tytra::format_fixed(p.point.bw_share, 3), 10)
       << "  " << cost::wall_name(e.report.throughput.limiting) << "\n";
  }
  std::size_t frontier_in = 0;
  for (const auto& jr : result.jobs) frontier_in += jr.result.pareto.size();
  os << "merged frontier: " << result.pareto.size() << " of " << frontier_in
     << " per-job frontier points\n";
  return os.str();
}

std::string format_sweep_json(const DseResult& result) {
  std::ostringstream os;
  json_sweep(os, result, "");
  os << "\n";
  return os.str();
}

std::string format_tune_json(const TuneResult& result) {
  std::ostringstream os;
  os << "{\n  \"steps\": [";
  for (std::size_t i = 0; i < result.trajectory.size(); ++i) {
    const auto& s = result.trajectory[i];
    os << (i ? ",\n" : "\n") << "    {\"step\": " << i << ", \"lanes\": "
       << s.report.params.knl << ", \"valid\": "
       << (s.report.valid ? "true" : "false") << ", \"ekit\": ";
    json_num(os, s.report.throughput.ekit);
    os << ", \"limiting\": \""
       << json_escape(cost::wall_name(s.report.throughput.limiting))
       << "\", \"action\": \"" << json_escape(s.action) << "\"}";
  }
  os << "\n  ],\n  \"best\": ";
  if (result.best) {
    os << *result.best;
  } else {
    // No valid step (empty trajectory, or nothing fit the device): the
    // old encoding leaked the default index 0 here, presenting an
    // invalid design as best.
    os << "null";
  }
  os << ",\n  \"verdict\": \"" << json_escape(result.verdict) << "\"\n}\n";
  return os.str();
}

std::string format_campaign_json(const CampaignResult& result) {
  std::ostringstream os;
  os << "{\n  \"campaign\": {\n    \"jobs\": [";
  for (std::size_t j = 0; j < result.jobs.size(); ++j) {
    const auto& jr = result.jobs[j];
    os << (j ? ",\n" : "\n") << "      {\"workload\": \""
       << json_escape(job_label(jr.job)) << "\", \"nd\": " << jr.job.nd
       << ", \"n\": " << jr.job.n << ", \"device\": \""
       << json_escape(device_label(jr.job)) << "\", \"status\": \""
       << job_state_name(jr.status.state) << "\"";
    if (!jr.status.ok()) {
      os << ", \"error\": \"" << json_escape(jr.status.error)
         << "\", \"evaluated\": " << jr.status.evaluated
         << ", \"faults\": " << jr.status.faults
         << ", \"skipped\": " << jr.status.skipped;
    }
    os << ", \"sweep\": ";
    json_sweep(os, jr.result, "      ");
    os << "}";
  }
  os << "\n    ],\n    \"pareto\": [";
  for (std::size_t i = 0; i < result.pareto.size(); ++i) {
    const auto& p = result.pareto[i];
    const auto& jr = result.jobs[p.job];
    os << (i ? ",\n" : "\n") << "      {\"job\": " << p.job
       << ", \"workload\": \"" << json_escape(job_label(jr.job))
       << "\", \"device\": \"" << json_escape(device_label(jr.job))
       << "\", ";
    // Reuse the per-sweep point shape for the point fields.
    std::ostringstream point;
    json_pareto_point(point, p.point, result.entry(p));
    const std::string text = point.str();
    os << text.substr(1);  // drop the '{' — fields merge into this object
  }
  os << "\n    ],\n    \"cache\": ";
  json_cache_stats(os, result.cache_stats);
  os << ",\n    \"degraded\": " << result.degraded();
  os << ",\n    \"seconds\": ";
  json_num(os, result.campaign_seconds);
  os << "\n  }\n}\n";
  return os.str();
}

}  // namespace tytra::dse
