#include "tytra/dse/lowerer.hpp"

#include <stdexcept>

namespace tytra::dse {

namespace {

// Independent seeds for the two key halves (arbitrary odd constants,
// distinct from the structural-hash seeds so a variant key can never be
// confused with a structural digest).
constexpr std::uint64_t kVariantSeedKey = 0xa076'1d64'78bd'642fULL;
constexpr std::uint64_t kVariantSeedCheck = 0xe703'7ed1'a0b4'28dbULL;

}  // namespace

void hash_variant(HashBuilder& h, const frontend::Variant& v) {
  const auto& dims = v.dims();
  const auto& anns = v.anns();
  h.u64(dims.size());
  for (const std::uint64_t d : dims) h.u64(d);
  for (const frontend::ParAnn a : anns) h.u64(static_cast<std::uint64_t>(a));
}

KeyedLowerer::KeyedLowerer(std::string fingerprint, ArenaLowerFn fn)
    : fingerprint_(std::move(fingerprint)), fn_(std::move(fn)) {
  if (!fn_) throw std::invalid_argument("KeyedLowerer: null lowering function");
  // Pre-hash the fingerprint once: per-variant keying then costs only the
  // shape walk (a handful of hash mixes), which is what makes consulting
  // the variant-key table before lowering essentially free.
  seed_key_ = HashBuilder{kVariantSeedKey}.str(fingerprint_).value();
  seed_check_ = HashBuilder{kVariantSeedCheck}.str(fingerprint_).value();
}

std::optional<VariantKey> KeyedLowerer::key(const frontend::Variant& v) const {
  HashBuilder hk{seed_key_};
  HashBuilder hc{seed_check_};
  hash_variant(hk, v);
  hash_variant(hc, v);
  return VariantKey{hk.value(), hc.value()};
}

ir::Module KeyedLowerer::lower(const frontend::Variant& v,
                               ir::BuildArena* arena) const {
  return fn_(v, arena);
}

}  // namespace tytra::dse
