#include "tytra/dse/tuner.hpp"

#include <algorithm>
#include <sstream>

namespace tytra::dse {

namespace {

/// Smallest divisor of n strictly greater than `lanes`, or 0 — one
/// upper_bound on the pre-enumerated divisor ladder (the former per-step
/// O(n) scan also probed 2*lanes twice from its two overlapping ranges).
std::uint64_t next_lane_count(const std::vector<std::uint64_t>& divs,
                              std::uint64_t lanes) {
  const auto it = std::upper_bound(divs.begin(), divs.end(), lanes);
  return it == divs.end() ? 0 : *it;
}

}  // namespace

TuneResult tune(std::uint64_t n, const Lowerer& lower,
                const cost::DeviceCostDb& db, int max_steps, CostCache* cache) {
  TuneResult result;
  if (max_steps <= 0) {
    // Guard the degenerate budget instead of indexing an empty trajectory.
    result.verdict = "stopped: no step budget (max_steps <= 0)";
    return result;
  }
  // One O(sqrt n) enumeration serves every step's "next lane count" probe.
  const std::vector<std::uint64_t> lane_ladder = frontend::divisors(n);
  ir::BuildArena arena;
  frontend::Variant current = frontend::baseline_variant(n);
  std::string action = "baseline: single kernel pipeline (what an HLS tool extracts)";

  for (int step = 0; step < max_steps; ++step) {
    cost::CostReport report;
    if (cache) {
      report = cache->cost(current, lower, db, nullptr, &arena);
    } else {
      ir::Module module = lower.lower(current, &arena);
      report = cost::cost_design(module, db);
      arena.recycle(std::move(module));
    }
    const bool valid = report.valid;
    const cost::Wall wall = report.throughput.limiting;
    result.trajectory.emplace_back(current, std::move(report), action);
    const auto& placed = result.trajectory.back();

    if (!valid) {
      result.verdict =
          "stopped: variant exceeds the device (computation wall); keeping "
          "the last fitting variant";
      break;
    }
    if (wall == cost::Wall::HostBandwidth) {
      result.verdict =
          "stopped: host-bandwidth wall — replication cannot help; move to a "
          "form-B/C memory execution or reduce host traffic";
      break;
    }
    if (wall == cost::Wall::DramBandwidth) {
      result.verdict =
          "stopped: DRAM-bandwidth wall — replication cannot help; improve "
          "access contiguity or tile through local memory";
      break;
    }

    // Compute-bound (or fill-bound): add lanes.
    const std::uint64_t next =
        next_lane_count(lane_ladder, placed.report.params.knl);
    if (next == 0 || next > 1024) {
      result.verdict = "stopped: no further lane count divides the NDRange";
      break;
    }
    current = frontend::reshape_to(frontend::baseline_variant(n), next,
                                   frontend::ParAnn::Par);
    std::ostringstream why;
    why << "compute wall at " << placed.report.params.knl
        << " lanes -> reshapeTo " << next << " lanes";
    action = why.str();
  }

  // Best valid step.
  double best_ekit = -1;
  for (std::size_t i = 0; i < result.trajectory.size(); ++i) {
    const auto& s = result.trajectory[i];
    if (s.report.valid && s.report.throughput.ekit > best_ekit) {
      best_ekit = s.report.throughput.ekit;
      result.best = i;
    }
  }
  if (result.verdict.empty()) result.verdict = "stopped: step budget exhausted";
  return result;
}

TuneResult tune(std::uint64_t n, const LowerFn& lower,
                const cost::DeviceCostDb& db, int max_steps, CostCache* cache) {
  return tune(n, FnLowerer(lower), db, max_steps, cache);
}

std::string format_tune(const TuneResult& result) {
  std::ostringstream os;
  for (std::size_t i = 0; i < result.trajectory.size(); ++i) {
    const auto& s = result.trajectory[i];
    os << "step " << i << ": " << s.variant.describe() << "\n";
    os << "  " << s.action << "\n";
    os << "  EKIT " << s.report.throughput.ekit << "/s, limiting "
       << cost::wall_name(s.report.throughput.limiting)
       << (s.report.valid ? "" : " [does not fit]") << "\n";
  }
  os << result.verdict << "\n";
  // An empty trajectory (max_steps <= 0) has no best step to report;
  // indexing it was undefined behavior.
  if (!result.trajectory.empty()) {
    os << "best: step " << result.best << " ("
       << result.trajectory[result.best].variant.describe() << ")\n";
  }
  return os.str();
}

}  // namespace tytra::dse
