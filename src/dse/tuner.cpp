#include "tytra/dse/tuner.hpp"

#include <sstream>

#include "tytra/dse/session.hpp"

// The feedback-path walk itself lives in session.cpp (Session::tune is
// the engine); this file keeps the legacy free-function shims and the
// trajectory renderer.

namespace tytra::dse {

namespace detail {
// Shim plumbing shared with explorer.cpp; defined in session.cpp.
Job borrow_job(std::uint64_t n, const Lowerer& lower,
               const cost::DeviceCostDb& db);
Session shim_session(std::uint32_t num_threads);
}  // namespace detail

TuneResult tune(std::uint64_t n, const Lowerer& lower,
                const cost::DeviceCostDb& db, int max_steps, CostCache* cache) {
  Session session = detail::shim_session(1);
  Job job = detail::borrow_job(n, lower, db);
  job.max_steps = max_steps;
  return session.tune(job, cache);
}

TuneResult tune(std::uint64_t n, const LowerFn& lower,
                const cost::DeviceCostDb& db, int max_steps, CostCache* cache) {
  return tune(n, FnLowerer(lower), db, max_steps, cache);
}

std::string format_tune(const TuneResult& result) {
  std::ostringstream os;
  for (std::size_t i = 0; i < result.trajectory.size(); ++i) {
    const auto& s = result.trajectory[i];
    os << "step " << i << ": " << s.variant.describe() << "\n";
    os << "  " << s.action << "\n";
    os << "  EKIT " << s.report.throughput.ekit << "/s, limiting "
       << cost::wall_name(s.report.throughput.limiting)
       << (s.report.valid ? "" : " [does not fit]") << "\n";
  }
  os << result.verdict << "\n";
  // No valid step (empty trajectory, or every variant exceeded the
  // device) means no best to report — indexing trajectory[0] here used
  // to present a design that does not fit as "best".
  if (result.best) {
    os << "best: step " << *result.best << " ("
       << result.trajectory[*result.best].variant.describe() << ")\n";
  }
  return os.str();
}

}  // namespace tytra::dse
