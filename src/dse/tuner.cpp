#include "tytra/dse/tuner.hpp"

#include <sstream>

namespace tytra::dse {

namespace {

/// Smallest divisor of n strictly greater than `lanes`, or 0.
std::uint64_t next_lane_count(std::uint64_t n, std::uint64_t lanes) {
  for (std::uint64_t k = lanes + 1; k <= 2 * lanes && k <= n; ++k) {
    if (n % k == 0) return k;
  }
  for (std::uint64_t k = 2 * lanes; k <= n; ++k) {
    if (n % k == 0) return k;
  }
  return 0;
}

}  // namespace

TuneResult tune(std::uint64_t n, const LowerFn& lower,
                const cost::DeviceCostDb& db, int max_steps, CostCache* cache) {
  TuneResult result;
  frontend::Variant current = frontend::baseline_variant(n);
  std::string action = "baseline: single kernel pipeline (what an HLS tool extracts)";

  for (int step = 0; step < max_steps; ++step) {
    const ir::Module module = lower(current);
    cost::CostReport report =
        cache ? cache->cost(module, db) : cost::cost_design(module, db);
    const bool valid = report.valid;
    const cost::Wall wall = report.throughput.limiting;
    result.trajectory.emplace_back(current, std::move(report), action);
    const auto& placed = result.trajectory.back();

    if (!valid) {
      result.verdict =
          "stopped: variant exceeds the device (computation wall); keeping "
          "the last fitting variant";
      break;
    }
    if (wall == cost::Wall::HostBandwidth) {
      result.verdict =
          "stopped: host-bandwidth wall — replication cannot help; move to a "
          "form-B/C memory execution or reduce host traffic";
      break;
    }
    if (wall == cost::Wall::DramBandwidth) {
      result.verdict =
          "stopped: DRAM-bandwidth wall — replication cannot help; improve "
          "access contiguity or tile through local memory";
      break;
    }

    // Compute-bound (or fill-bound): add lanes.
    const std::uint64_t next = next_lane_count(n, placed.report.params.knl);
    if (next == 0 || next > 1024) {
      result.verdict = "stopped: no further lane count divides the NDRange";
      break;
    }
    current = frontend::reshape_to(frontend::baseline_variant(n), next,
                                   frontend::ParAnn::Par);
    std::ostringstream why;
    why << "compute wall at " << placed.report.params.knl
        << " lanes -> reshapeTo " << next << " lanes";
    action = why.str();
  }

  // Best valid step.
  double best_ekit = -1;
  for (std::size_t i = 0; i < result.trajectory.size(); ++i) {
    const auto& s = result.trajectory[i];
    if (s.report.valid && s.report.throughput.ekit > best_ekit) {
      best_ekit = s.report.throughput.ekit;
      result.best = i;
    }
  }
  if (result.verdict.empty()) result.verdict = "stopped: step budget exhausted";
  return result;
}

std::string format_tune(const TuneResult& result) {
  std::ostringstream os;
  for (std::size_t i = 0; i < result.trajectory.size(); ++i) {
    const auto& s = result.trajectory[i];
    os << "step " << i << ": " << s.variant.describe() << "\n";
    os << "  " << s.action << "\n";
    os << "  EKIT " << s.report.throughput.ekit << "/s, limiting "
       << cost::wall_name(s.report.throughput.limiting)
       << (s.report.valid ? "" : " [does not fit]") << "\n";
  }
  os << result.verdict << "\n";
  os << "best: step " << result.best << " ("
     << result.trajectory[result.best].variant.describe() << ")\n";
  return os.str();
}

}  // namespace tytra::dse
