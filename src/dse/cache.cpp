#include "tytra/dse/cache.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <thread>
#include <vector>

#include "tytra/ir/printer.hpp"
#include "tytra/ir/structural_hash.hpp"
#include "tytra/support/failpoint.hpp"
#include "tytra/support/hash.hpp"
#include "tytra/support/thread_annotations.hpp"

namespace tytra::dse {

namespace {

/// Every DeviceDesc field a cost report can depend on — two databases
/// calibrated from devices with equal fingerprints produce equal reports,
/// even when a .tgt file is edited under an unchanged device name.
/// Calibration is deterministic in the device description, so this
/// fingerprint pins every law and table the cost model reads; nothing
/// else about the database needs to enter the cache identity.
void hash_device(HashBuilder& h, const target::DeviceDesc& dev) {
  h.str(dev.name)
      .str(dev.family)
      .u64(dev.resources.aluts)
      .u64(dev.resources.regs)
      .u64(dev.resources.bram_bits)
      .u64(dev.resources.dsps)
      .f64(dev.fmax_hz)
      .f64(dev.default_freq_hz)
      .f64(dev.dram.io_clock_hz)
      .f64(dev.dram.bus_bytes)
      .f64(dev.dram.burst_bytes)
      .f64(dev.dram.row_bytes)
      .f64(dev.dram.row_miss_cycles)
      .f64(dev.dram.setup_seconds)
      .f64(dev.dram_peak_bw)
      .f64(dev.host.peak_bw)
      .f64(dev.host.efficiency)
      .f64(dev.host.latency_seconds)
      .u64(dev.word_bytes)
      .f64(dev.shell_overhead);
}

/// The 128-bit identity of a (design, database) pair, streamed: the
/// device fingerprint (`dev`, hashed once per lookup by the callers)
/// seeds both digest halves, then the module structure is walked once
/// into each. No strings are built, no parameters are extracted — one
/// allocation-free traversal.
ir::StructuralDigest design_digest(const ir::Module& module,
                                   std::uint64_t dev) {
  const ir::StructuralDigest structure = ir::structural_digest(module);
  return {HashBuilder{}.u64(dev).u64(structure.key).value(),
          HashBuilder{}.u64(dev).u64(structure.check).value()};
}

/// The human-auditable identity text of an entry, materialized only when
/// an entry is first inserted (never on the lookup path): the printed IR
/// — the canonical structural identity the digest condenses — plus the
/// device fingerprint.
std::string design_identity(const ir::Module& module, std::uint64_t dev) {
  std::string identity = ir::print_module(module);
  identity += '\x1f';
  identity += std::to_string(dev);
  return identity;
}

}  // namespace

std::uint64_t device_fingerprint(const target::DeviceDesc& dev) {
  HashBuilder h;
  hash_device(h, dev);
  return h.value();
}

std::uint64_t design_key(const ir::Module& module, const cost::DeviceCostDb& db) {
  return design_digest(module, device_fingerprint(db.device())).key;
}

namespace {

std::size_t resolve_shards(std::size_t requested) {
  if (requested > 0) return requested;
  return std::max<std::size_t>(CostCache::kMinDefaultShards,
                               std::thread::hardware_concurrency());
}

/// Open-addressed hash table with lock-free reads. Slots hold atomic
/// pointers to heap-allocated immutable nodes; a node, once published
/// with a release store, is never mutated, moved or freed until clear()
/// (so a reader can dereference whatever it loads). Inserts serialize on
/// a per-shard mutex. Growth publishes a bigger slot array and RETAINS
/// the old one: a reader still probing a retired array sees a consistent
/// (if stale) view, at worst misses an entry that only the newer array
/// holds, and the resulting recompute-and-insert finds the resident node
/// under the mutex. The identity is the full (key, check) 128-bit pair —
/// probing continues past a slot whose check half disagrees, so two
/// designs colliding on the 64-bit key coexist instead of thrashing.
template <typename V>
class AtomicTable {
 public:
  struct Node {
    std::uint64_t key;
    std::uint64_t check;
    V value;
  };

  explicit AtomicTable(std::size_t shards) : shards_(shards) {}

  /// Lock-free: one acquire load of the live slot array, then a linear
  /// probe of acquire-loaded slots. Returns null on a miss.
  const Node* find(std::uint64_t key, std::uint64_t check) const {
    const Shard& shard = shards_[key % shards_.size()];
    const Slots* t = shard.live.load(std::memory_order_acquire);
    return probe(*t, key, check);
  }

  /// Publishes (key, check, value) unless an equal identity is already
  /// resident — another writer won the race, or the caller probed a
  /// retired slot array — and returns the resident node either way.
  const Node* insert(std::uint64_t key, std::uint64_t check, V&& value) {
    Shard& shard = shards_[key % shards_.size()];
    MutexLock lock(shard.mu);
    Slots* t = shard.live.load(std::memory_order_relaxed);
    if (const Node* resident = probe(*t, key, check)) return resident;
    // Keep load factor under 70% so probe chains always end on a null.
    if ((shard.size + 1) * 10 > t->slot.size() * 7) t = grow(shard, t);
    shard.nodes.push_back(
        std::make_unique<Node>(Node{key, check, std::move(value)}));
    Node* node = shard.nodes.back().get();
    publish(*t, node);
    ++shard.size;
    return node;
  }

  [[nodiscard]] std::size_t size() const {
    std::size_t n = 0;
    for (const Shard& s : shards_) {
      MutexLock lock(s.mu);
      n += s.size;
    }
    return n;
  }

  /// Visits every resident node, one shard at a time under that shard's
  /// insert lock. Safe concurrent with cost(): readers never take the
  /// lock, and inserts landing in already-visited shards are simply not
  /// part of this sample.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const Shard& s : shards_) {
      MutexLock lock(s.mu);
      for (const auto& node : s.nodes) fn(*node);
    }
  }

  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }

  /// Frees every node and slot array. Requires external quiescence: a
  /// concurrent lock-free reader could still be probing the freed memory.
  void clear() {
    for (Shard& s : shards_) {
      MutexLock lock(s.mu);
      auto fresh = std::make_unique<Slots>(kInitialSlots);
      s.live.store(fresh.get(), std::memory_order_release);
      s.tables.clear();
      s.tables.push_back(std::move(fresh));
      s.nodes.clear();
      s.size = 0;
    }
  }

 private:
  static constexpr std::size_t kInitialSlots = 64;  // power of two

  struct Slots {
    explicit Slots(std::size_t n) : slot(n) {}  // atomics value-init to null
    std::vector<std::atomic<Node*>> slot;
  };

  struct Shard {
    Shard() {
      tables.push_back(std::make_unique<Slots>(kInitialSlots));
      live.store(tables.back().get(), std::memory_order_relaxed);
    }
    std::atomic<Slots*> live{nullptr};
    mutable tytra::Mutex mu;            ///< guards everything below
    std::size_t size TYTRA_GUARDED_BY(mu){0};
    /// Every slot-array generation ever published. Retired arrays are
    /// kept until clear()/destruction so readers holding them stay safe;
    /// geometric growth bounds the total at ~2x the live array.
    std::vector<std::unique_ptr<Slots>> tables TYTRA_GUARDED_BY(mu);
    std::vector<std::unique_ptr<Node>> nodes TYTRA_GUARDED_BY(mu);  ///< owns the entries
  };

  static const Node* probe(const Slots& t, std::uint64_t key,
                           std::uint64_t check) {
    const std::size_t mask = t.slot.size() - 1;
    for (std::size_t i = key & mask;; i = (i + 1) & mask) {
      const Node* n = t.slot[i].load(std::memory_order_acquire);
      if (n == nullptr) return nullptr;
      if (n->key == key && n->check == check) return n;
    }
  }

  static void publish(Slots& t, Node* node) {
    const std::size_t mask = t.slot.size() - 1;
    for (std::size_t i = node->key & mask;; i = (i + 1) & mask) {
      if (t.slot[i].load(std::memory_order_relaxed) == nullptr) {
        t.slot[i].store(node, std::memory_order_release);
        return;
      }
    }
  }

  Slots* grow(Shard& shard, Slots* old) TYTRA_REQUIRES(shard.mu) {
    auto bigger = std::make_unique<Slots>(old->slot.size() * 2);
    for (const auto& s : old->slot) {
      Node* n = s.load(std::memory_order_relaxed);
      if (n != nullptr) publish(*bigger, n);
    }
    Slots* fresh = bigger.get();
    shard.tables.push_back(std::move(bigger));
    // Publish the bigger array only after its slots are fully written;
    // readers acquire-load `live` and synchronize with this store.
    shard.live.store(fresh, std::memory_order_release);
    return fresh;
  }

  std::vector<Shard> shards_;
};

}  // namespace

struct CostCache::Impl {
  /// Structural-level entry: the ground-truth identity record.
  struct StructuralValue {
    /// Full identity text (printed IR + device fingerprint), built once
    /// on insert: the byte-level ground truth the digest condenses.
    /// Debug builds verify it on every hit; release lookups never read
    /// it, keeping hits allocation-free at ~1 printed module of memory
    /// per cached design.
    std::string identity;
    cost::CostReport report;
  };

  /// Variant-level entry: the design digest it was inserted under (the
  /// cross-check target for debug builds) plus the memoized report.
  struct VariantValue {
    ir::StructuralDigest design;
    cost::CostReport report;
  };

  /// Padded per-shard counters so hit accounting does not ping-pong one
  /// cache line between warm workers.
  struct alignas(64) Counter {
    std::atomic<std::uint64_t> hits{0};
    std::atomic<std::uint64_t> misses{0};
    std::atomic<std::uint64_t> variant_hits{0};
  };

  explicit Impl(std::size_t shards)
      : structural(shards), variant(shards), counters(shards) {}

  Counter& counter(std::uint64_t key) { return counters[key % counters.size()]; }

  /// Structural-level lookup with the device fingerprint and digest
  /// already in hand, so callers that need them for their own bookkeeping
  /// (the variant-level insert) hash the device and walk the module once.
  cost::CostReport cost_structural(const ir::Module& module,
                                   const cost::DeviceCostDb& db,
                                   std::uint64_t dev,
                                   const ir::StructuralDigest& digest,
                                   bool* was_hit);

  AtomicTable<StructuralValue> structural;
  AtomicTable<VariantValue> variant;
  std::vector<Counter> counters;

#ifndef NDEBUG
  /// Debug-build enforcement of the clear()/load() quiescence contract:
  /// cost() calls register here, and the destructive operations abort
  /// with a diagnostic when any are in flight instead of silently racing
  /// a lock-free reader against freed entries.
  std::atomic<int> active_readers{0};

  struct ReaderGuard {
    explicit ReaderGuard(std::atomic<int>& count) : count_(count) {
      count_.fetch_add(1, std::memory_order_acq_rel);
    }
    ~ReaderGuard() { count_.fetch_sub(1, std::memory_order_acq_rel); }
    std::atomic<int>& count_;
  };
#endif

  void require_quiescent(const char* operation) const {
#ifndef NDEBUG
    const int readers = active_readers.load(std::memory_order_acquire);
    if (readers != 0) {
      std::fprintf(stderr,
                   "tytra: fatal: CostCache::%s() called with %d cost() "
                   "call(s) in flight; %s() frees entries lock-free readers "
                   "may still be probing and requires quiescence (see "
                   "include/tytra/dse/cache.hpp)\n",
                   operation, readers, operation);
      std::abort();
    }
#else
    (void)operation;
#endif
  }
};

CostCache::CostCache(std::size_t shards)
    : impl_(std::make_unique<Impl>(resolve_shards(shards))) {}

CostCache::~CostCache() = default;

cost::CostReport CostCache::Impl::cost_structural(
    const ir::Module& module, const cost::DeviceCostDb& db,
    std::uint64_t dev, const ir::StructuralDigest& digest, bool* was_hit) {
  if (const auto* node = structural.find(digest.key, digest.check)) {
    // Debug builds exercise the byte-level fallback the digest condenses:
    // a digest match must mean byte-identical identity text. Release hits
    // never materialize the probe's identity.
    assert(node->value.identity == design_identity(module, dev));
    counter(digest.key).hits.fetch_add(1, std::memory_order_relaxed);
    if (was_hit) *was_hit = true;
    return node->value.report;
  }
  counter(digest.key).misses.fetch_add(1, std::memory_order_relaxed);
  if (was_hit) *was_hit = false;
  // Cost outside the lock: the model run dominates, and concurrent misses
  // on the same key merely compute the same report twice. The summary is
  // built once and shared across every model stage.
  const ir::AnalysisSummary summary = ir::summarize(module);
  cost::CostReport report = cost::cost_design(module, db, summary);
  // First insert materializes the identity text (collision fallback /
  // audit record); hits never do. A failed insert (the `cache.insert`
  // failpoint stands in for allocation/grow failure) degrades to a lost
  // memoization, never a lost or torn result: the report was already
  // computed, and an entry is only ever published whole.
  if (!failpoint::fire("cache.insert")) {
    structural.insert(
        digest.key, digest.check,
        Impl::StructuralValue{design_identity(module, dev), report});
  }
  return report;
}

cost::CostReport CostCache::cost(const ir::Module& module,
                                 const cost::DeviceCostDb& db, bool* was_hit) {
#ifndef NDEBUG
  Impl::ReaderGuard guard(impl_->active_readers);
#endif
  const std::uint64_t dev = device_fingerprint(db.device());
  return impl_->cost_structural(module, db, dev, design_digest(module, dev),
                                was_hit);
}

cost::CostReport CostCache::cost(const frontend::Variant& variant,
                                 const Lowerer& lowerer,
                                 const cost::DeviceCostDb& db, HitLevel* level,
                                 ir::BuildArena* arena) {
#ifndef NDEBUG
  Impl::ReaderGuard guard(impl_->active_readers);
#endif
  // One device hash serves the whole lookup: the variant-key fold, and on
  // a miss the structural digest and the identity text.
  const std::uint64_t dev = device_fingerprint(db.device());
  const std::optional<VariantKey> vk = lowerer.key(variant);
  VariantKey full{};
  if (vk) {
    // Fold the device fingerprint into both halves: the same variant
    // costed against different calibrations must not cross-hit.
    full = VariantKey{HashBuilder{}.u64(dev).u64(vk->key).value(),
                      HashBuilder{}.u64(dev).u64(vk->check).value()};
    if (const auto* node = impl_->variant.find(full.key, full.check)) {
#ifndef NDEBUG
      // Two-level cross-check: the lowerer's identity promise must agree
      // with the authoritative structural digest the key was inserted
      // under. Debug builds pay the lowering this level exists to skip.
      {
        ir::Module check_module = lowerer.lower(variant, arena);
        assert(design_digest(check_module, dev) == node->value.design);
        if (arena) arena->recycle(std::move(check_module));
      }
#endif
      Impl::Counter& c = impl_->counter(full.key);
      c.hits.fetch_add(1, std::memory_order_relaxed);
      c.variant_hits.fetch_add(1, std::memory_order_relaxed);
      if (level) *level = HitLevel::Variant;
      return node->value.report;
    }
  }
  // Variant-key miss (or key-less lowerer): lower and resolve at the
  // structural level, then memoize the key so the next warm lookup skips
  // lowering entirely. The digest is computed once and shared between
  // the structural lookup and the variant-level insert.
  ir::Module module = lowerer.lower(variant, arena);
  const ir::StructuralDigest digest = design_digest(module, dev);
  bool structural_hit = false;
  cost::CostReport report =
      impl_->cost_structural(module, db, dev, digest, &structural_hit);
  if (vk && !failpoint::fire("cache.insert")) {
    impl_->variant.insert(full.key, full.check,
                          Impl::VariantValue{digest, report});
  }
  if (arena) arena->recycle(std::move(module));
  if (level) *level = structural_hit ? HitLevel::Structural : HitLevel::Miss;
  return report;
}

CacheStats CostCache::stats() const {
  CacheStats out;
  for (const Impl::Counter& c : impl_->counters) {
    out.hits += c.hits.load(std::memory_order_relaxed);
    out.misses += c.misses.load(std::memory_order_relaxed);
    out.variant_hits += c.variant_hits.load(std::memory_order_relaxed);
  }
  return out;
}

std::size_t CostCache::size() const { return impl_->structural.size(); }

std::size_t CostCache::variant_size() const { return impl_->variant.size(); }

std::size_t CostCache::shard_count() const {
  return impl_->structural.shard_count();
}

void CostCache::clear() {
  impl_->require_quiescent("clear");
  impl_->structural.clear();
  impl_->variant.clear();
  for (Impl::Counter& c : impl_->counters) {
    c.hits.store(0, std::memory_order_relaxed);
    c.misses.store(0, std::memory_order_relaxed);
    c.variant_hits.store(0, std::memory_order_relaxed);
  }
}

void CostCache::dump(binio::Encoder& structural_out,
                     binio::Encoder& variant_out) const {
  impl_->structural.for_each([&](const auto& node) {
    structural_out.u64(node.key);
    structural_out.u64(node.check);
    structural_out.str(node.value.identity);
    cost::save_report(structural_out, node.value.report);
  });
  impl_->variant.for_each([&](const auto& node) {
    variant_out.u64(node.key);
    variant_out.u64(node.check);
    variant_out.u64(node.value.design.key);
    variant_out.u64(node.value.design.check);
    cost::save_report(variant_out, node.value.report);
  });
}

Result<CostCache::LoadCounts> CostCache::load(binio::Decoder& structural_in,
                                              binio::Decoder& variant_in) {
  impl_->require_quiescent("load");
  LoadCounts counts;
  while (structural_in.ok() && structural_in.remaining() > 0) {
    const std::uint64_t key = structural_in.u64();
    const std::uint64_t check = structural_in.u64();
    std::string identity = structural_in.str();
    cost::CostReport report = cost::load_report(structural_in);
    if (!structural_in.ok()) break;
    impl_->structural.insert(
        key, check,
        Impl::StructuralValue{std::move(identity), std::move(report)});
    ++counts.structural;
  }
  if (!structural_in.ok()) {
    return make_error("cost-cache snapshot (structural level): " +
                      structural_in.error());
  }
  while (variant_in.ok() && variant_in.remaining() > 0) {
    const std::uint64_t key = variant_in.u64();
    const std::uint64_t check = variant_in.u64();
    ir::StructuralDigest design;
    design.key = variant_in.u64();
    design.check = variant_in.u64();
    cost::CostReport report = cost::load_report(variant_in);
    if (!variant_in.ok()) break;
    impl_->variant.insert(key, check,
                          Impl::VariantValue{design, std::move(report)});
    ++counts.variant;
  }
  if (!variant_in.ok()) {
    return make_error("cost-cache snapshot (variant level): " +
                      variant_in.error());
  }
  return counts;
}

}  // namespace tytra::dse
