#include "tytra/dse/cache.hpp"

#include <algorithm>
#include <cassert>
#include <thread>

#include "tytra/ir/printer.hpp"
#include "tytra/ir/structural_hash.hpp"
#include "tytra/support/hash.hpp"

namespace tytra::dse {

namespace {

/// Every DeviceDesc field a cost report can depend on — two databases
/// calibrated from devices with equal fingerprints produce equal reports,
/// even when a .tgt file is edited under an unchanged device name.
/// Calibration is deterministic in the device description, so this
/// fingerprint pins every law and table the cost model reads; nothing
/// else about the database needs to enter the cache identity.
void hash_device(HashBuilder& h, const target::DeviceDesc& dev) {
  h.str(dev.name)
      .str(dev.family)
      .u64(dev.resources.aluts)
      .u64(dev.resources.regs)
      .u64(dev.resources.bram_bits)
      .u64(dev.resources.dsps)
      .f64(dev.fmax_hz)
      .f64(dev.default_freq_hz)
      .f64(dev.dram.io_clock_hz)
      .f64(dev.dram.bus_bytes)
      .f64(dev.dram.burst_bytes)
      .f64(dev.dram.row_bytes)
      .f64(dev.dram.row_miss_cycles)
      .f64(dev.dram.setup_seconds)
      .f64(dev.dram_peak_bw)
      .f64(dev.host.peak_bw)
      .f64(dev.host.efficiency)
      .f64(dev.host.latency_seconds)
      .u64(dev.word_bytes)
      .f64(dev.shell_overhead);
}

std::uint64_t device_fingerprint(const target::DeviceDesc& dev) {
  HashBuilder h;
  hash_device(h, dev);
  return h.value();
}

/// The 128-bit identity of a (design, database) pair, streamed: the
/// device fingerprint seeds both digest halves, then the module structure
/// is walked once into each. No strings are built, no parameters are
/// extracted — one allocation-free traversal.
ir::StructuralDigest design_digest(const ir::Module& module,
                                   const cost::DeviceCostDb& db) {
  const std::uint64_t dev = device_fingerprint(db.device());
  const ir::StructuralDigest structure = ir::structural_digest(module);
  return {HashBuilder{}.u64(dev).u64(structure.key).value(),
          HashBuilder{}.u64(dev).u64(structure.check).value()};
}

/// The human-auditable identity text of an entry, materialized only when
/// an entry is first inserted (never on the lookup path): the printed IR
/// — the canonical structural identity the digest condenses — plus the
/// device fingerprint.
std::string design_identity(const ir::Module& module,
                            const cost::DeviceCostDb& db) {
  std::string identity = ir::print_module(module);
  identity += '\x1f';
  identity += std::to_string(device_fingerprint(db.device()));
  return identity;
}

}  // namespace

std::uint64_t design_key(const ir::Module& module, const cost::DeviceCostDb& db) {
  return design_digest(module, db).key;
}

namespace {

std::size_t resolve_shards(std::size_t requested) {
  if (requested > 0) return requested;
  return std::max<std::size_t>(CostCache::kMinDefaultShards,
                               std::thread::hardware_concurrency());
}

}  // namespace

CostCache::CostCache(std::size_t shards) : shards_(resolve_shards(shards)) {}

cost::CostReport CostCache::cost(const ir::Module& module,
                                 const cost::DeviceCostDb& db, bool* was_hit) {
  const ir::StructuralDigest digest = design_digest(module, db);
  Shard& shard = shards_[digest.key % shards_.size()];
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    const auto it = shard.map.find(digest.key);
    // Verify the independent second half so a 64-bit collision degrades
    // to a recomputation instead of returning another design's report.
    if (it != shard.map.end() && it->second.check == digest.check) {
      // Debug builds exercise the byte-level fallback the digest
      // condenses: a digest match must mean byte-identical identity
      // text. Release hits never materialize the probe's identity.
      assert(it->second.identity == design_identity(module, db));
      ++shard.hits;
      if (was_hit) *was_hit = true;
      return it->second.report;
    }
    ++shard.misses;
  }
  if (was_hit) *was_hit = false;
  // Cost outside the lock: the model run dominates, and concurrent misses
  // on the same key merely compute the same report twice. The summary is
  // built once and shared across every model stage.
  const ir::AnalysisSummary summary = ir::summarize(module);
  cost::CostReport report = cost::cost_design(module, db, summary);
  // First insert materializes the identity text (collision fallback /
  // audit record); hits never do.
  std::string identity = design_identity(module, db);
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.map.insert_or_assign(
        digest.key, Entry{digest.check, std::move(identity), report});
  }
  return report;
}

CacheStats CostCache::stats() const {
  CacheStats out;
  for (const Shard& s : shards_) {
    std::lock_guard<std::mutex> lock(s.mu);
    out.hits += s.hits;
    out.misses += s.misses;
  }
  return out;
}

std::size_t CostCache::size() const {
  std::size_t n = 0;
  for (const Shard& s : shards_) {
    std::lock_guard<std::mutex> lock(s.mu);
    n += s.map.size();
  }
  return n;
}

void CostCache::clear() {
  for (Shard& s : shards_) {
    std::lock_guard<std::mutex> lock(s.mu);
    s.map.clear();
    s.hits = 0;
    s.misses = 0;
  }
}

}  // namespace tytra::dse
