#include "tytra/dse/cache.hpp"

#include "tytra/ir/printer.hpp"
#include "tytra/support/hash.hpp"

namespace tytra::dse {

namespace {

/// Every DeviceDesc field a cost report can depend on — two databases
/// calibrated from devices with equal fingerprints produce equal reports,
/// even when a .tgt file is edited under an unchanged device name.
std::uint64_t device_fingerprint(const target::DeviceDesc& dev) {
  return HashBuilder{}
      .str(dev.name)
      .str(dev.family)
      .u64(dev.resources.aluts)
      .u64(dev.resources.regs)
      .u64(dev.resources.bram_bits)
      .u64(dev.resources.dsps)
      .f64(dev.fmax_hz)
      .f64(dev.default_freq_hz)
      .f64(dev.dram.io_clock_hz)
      .f64(dev.dram.bus_bytes)
      .f64(dev.dram.burst_bytes)
      .f64(dev.dram.row_bytes)
      .f64(dev.dram.row_miss_cycles)
      .f64(dev.dram.setup_seconds)
      .f64(dev.dram_peak_bw)
      .f64(dev.host.peak_bw)
      .f64(dev.host.efficiency)
      .f64(dev.host.latency_seconds)
      .u64(dev.word_bytes)
      .f64(dev.shell_overhead)
      .value();
}

/// The full identity text of a (design, database) pair. The printed IR is
/// the canonical structural identity: two designs with the same text have
/// the same op mix, offsets, ports and metadata, hence the same resource
/// estimate. The resolved EKIT inputs fold in everything the throughput
/// model reads from the calibrated database, and the device fingerprint
/// pins the resource laws.
std::string design_identity(const ir::Module& module,
                            const cost::DeviceCostDb& db) {
  std::string identity = ir::print_module(module);
  identity += '\x1f';
  identity += std::to_string(device_fingerprint(db.device()));
  identity += '\x1f';
  identity += std::to_string(cost::input_key(cost::resolve_inputs(module, db)));
  return identity;
}

/// The one keying rule: the cache's map key and the public design_key are
/// the same function of the identity text.
std::uint64_t key_of(const std::string& identity) {
  return HashBuilder{}.str(identity).value();
}

}  // namespace

std::uint64_t design_key(const ir::Module& module, const cost::DeviceCostDb& db) {
  return key_of(design_identity(module, db));
}

cost::CostReport CostCache::cost(const ir::Module& module,
                                 const cost::DeviceCostDb& db, bool* was_hit) {
  const std::string identity = design_identity(module, db);
  const std::uint64_t key = key_of(identity);
  Shard& shard = shards_[key % kShards];
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    const auto it = shard.map.find(key);
    // Compare the stored identity so a 64-bit collision degrades to a
    // recomputation instead of returning another design's report.
    if (it != shard.map.end() && it->second.identity == identity) {
      ++shard.hits;
      if (was_hit) *was_hit = true;
      return it->second.report;
    }
    ++shard.misses;
  }
  if (was_hit) *was_hit = false;
  // Cost outside the lock: the model run dominates, and concurrent misses
  // on the same key merely compute the same report twice.
  cost::CostReport report = cost::cost_design(module, db);
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.map.insert_or_assign(key, Entry{identity, report});
  }
  return report;
}

CacheStats CostCache::stats() const {
  CacheStats out;
  for (const Shard& s : shards_) {
    std::lock_guard<std::mutex> lock(s.mu);
    out.hits += s.hits;
    out.misses += s.misses;
  }
  return out;
}

std::size_t CostCache::size() const {
  std::size_t n = 0;
  for (const Shard& s : shards_) {
    std::lock_guard<std::mutex> lock(s.mu);
    n += s.map.size();
  }
  return n;
}

void CostCache::clear() {
  for (Shard& s : shards_) {
    std::lock_guard<std::mutex> lock(s.mu);
    s.map.clear();
    s.hits = 0;
    s.misses = 0;
  }
}

}  // namespace tytra::dse
