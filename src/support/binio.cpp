#include "tytra/support/binio.hpp"

#include <bit>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#ifndef _WIN32
#include <fcntl.h>
#include <unistd.h>
#endif

#include "tytra/support/failpoint.hpp"
#include "tytra/support/hash.hpp"

namespace tytra::binio {

namespace {

constexpr unsigned char kMagic[8] = {0x89, 'T', 'Y', 'C', 'S', 0x0d, 0x0a, 0x1a};
constexpr std::uint32_t kEndianTag = 0x01020304;
constexpr std::size_t kHeaderBytes = 8 + 4 + 4 + 4 + 4 + 8;
constexpr std::size_t kTableEntryBytes = 4 + 4 + 8 + 8 + 8;
/// Sanity cap on the section count: the header is validated before the
/// table is read, and no legitimate container is anywhere near this.
constexpr std::uint32_t kMaxSections = 4096;

void put_u32(std::string& out, std::uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  out.append(buf, 4);
}

void put_u64(std::string& out, std::uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out.append(buf, 8);
}

std::uint32_t get_u32(const char* p) {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

std::uint64_t get_u64(const char* p) {
  std::uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

Diag corrupt(const std::string& what) {
  return make_error("snapshot container: " + what);
}

}  // namespace

std::uint64_t checksum64(std::string_view bytes) {
  // Word-at-a-time splitmix mixing, seeded with the length so "same bytes,
  // different framing" cannot collide with a truncation.
  std::uint64_t h = hash_mix(0x7459747261636b73ULL, bytes.size());
  std::size_t i = 0;
  for (; i + 8 <= bytes.size(); i += 8) {
    std::uint64_t w;
    std::memcpy(&w, bytes.data() + i, 8);
    h = hash_mix(h, w);
  }
  if (i < bytes.size()) {
    std::uint64_t w = 0;
    std::memcpy(&w, bytes.data() + i, bytes.size() - i);
    h = hash_mix(h, w);
  }
  return h;
}

// ---------------------------------------------------------------------------
// Encoder / Decoder
// ---------------------------------------------------------------------------

void Encoder::u32(std::uint32_t v) { put_u32(out_, v); }

void Encoder::u64(std::uint64_t v) { put_u64(out_, v); }

void Encoder::f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

void Encoder::str(std::string_view s) {
  u64(s.size());
  out_.append(s.data(), s.size());
}

const char* Decoder::take(std::size_t n) {
  if (!ok()) return nullptr;
  if (n > data_.size() - pos_) {
    fail("payload truncated (read past the end of a section)");
    return nullptr;
  }
  const char* p = data_.data() + pos_;
  pos_ += n;
  return p;
}

std::uint8_t Decoder::u8() {
  const char* p = take(1);
  return p ? static_cast<std::uint8_t>(*p) : 0;
}

std::uint32_t Decoder::u32() {
  const char* p = take(4);
  return p ? get_u32(p) : 0;
}

std::uint64_t Decoder::u64() {
  const char* p = take(8);
  return p ? get_u64(p) : 0;
}

double Decoder::f64() { return std::bit_cast<double>(u64()); }

std::string Decoder::str() {
  const std::uint64_t n = u64();
  if (!ok()) return {};
  if (n > remaining()) {
    fail("payload truncated (string length exceeds the section)");
    return {};
  }
  const char* p = take(static_cast<std::size_t>(n));
  return p ? std::string(p, static_cast<std::size_t>(n)) : std::string();
}

void Decoder::fail(std::string reason) {
  if (error_.empty()) error_ = std::move(reason);
}

bool Decoder::at_end() {
  if (!ok()) return false;
  if (pos_ != data_.size()) {
    fail("payload has trailing bytes (schema mismatch)");
    return false;
  }
  return true;
}

bool Decoder::fits(std::uint64_t count, std::uint64_t min_bytes_each) {
  if (!ok()) return false;
  if (min_bytes_each != 0 && count > remaining() / min_bytes_each) {
    fail("payload count exceeds the section size (corrupt count field)");
    return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

void Writer::add_section(std::uint32_t id, std::string payload) {
  sections_.push_back(Section{id, std::move(payload)});
}

std::string Writer::render() const {
  std::string table;
  std::uint64_t offset =
      kHeaderBytes + kTableEntryBytes * sections_.size();
  for (const Section& s : sections_) {
    put_u32(table, s.id);
    put_u32(table, 0);
    put_u64(table, offset);
    put_u64(table, s.payload.size());
    put_u64(table, checksum64(s.payload));
    offset += s.payload.size();
  }

  std::string out;
  out.reserve(static_cast<std::size_t>(offset));
  out.append(reinterpret_cast<const char*>(kMagic), sizeof kMagic);
  put_u32(out, kFormatVersion);
  put_u32(out, kEndianTag);
  put_u32(out, static_cast<std::uint32_t>(sections_.size()));
  put_u32(out, 0);
  // The header checksum covers the header prefix (everything before the
  // checksum field itself) plus the table, so no single corrupted bit in
  // the file can survive undetected: payload flips hit a section
  // checksum, table/header flips hit this one, magic/endianness flips
  // hit their dedicated checks.
  put_u64(out, checksum64(out + table));
  out += table;
  for (const Section& s : sections_) out += s.payload;
  return out;
}

tytra::Result<std::uint64_t> Writer::write(const std::string& path) const {
  if (failpoint::fire("binio.write")) {
    return make_error("injected fault at failpoint 'binio.write' (writing '" +
                      path + "')");
  }
  const std::string bytes = render();
  const std::string tmp = path + ".tmp";

  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (!f) {
    return make_error("cannot create '" + tmp + "': " + std::strerror(errno));
  }
  const std::size_t wrote = std::fwrite(bytes.data(), 1, bytes.size(), f);
  bool ok = wrote == bytes.size() && std::fflush(f) == 0;
#ifndef _WIN32
  // Durability half of atomicity: the payload must be on disk before the
  // rename publishes it, or a crash could publish a hole.
  if (ok) ok = ::fsync(::fileno(f)) == 0;
#endif
  ok = (std::fclose(f) == 0) && ok;
  if (!ok) {
    std::remove(tmp.c_str());
    return make_error("short write to '" + tmp + "': " + std::strerror(errno));
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    const std::string why = std::strerror(errno);
    std::remove(tmp.c_str());
    return make_error("cannot rename '" + tmp + "' over '" + path +
                      "': " + why);
  }
#ifndef _WIN32
  // Make the rename itself durable (directory entry update).
  const auto slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  const int dfd = ::open(dir.c_str(), O_RDONLY);
  if (dfd >= 0) {
    ::fsync(dfd);
    ::close(dfd);
  }
#endif
  return static_cast<std::uint64_t>(bytes.size());
}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

tytra::Result<Reader> Reader::open(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return make_error("cannot read '" + path + "'");
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  return from_bytes(std::move(ss).str());
}

tytra::Result<Reader> Reader::from_bytes(std::string bytes) {
  if (failpoint::fire("binio.read")) {
    return corrupt("injected fault at failpoint 'binio.read'");
  }
  Reader r;
  r.data_ = std::move(bytes);
  const std::string& d = r.data_;

  if (d.size() < kHeaderBytes) {
    return corrupt("truncated header (" + std::to_string(d.size()) +
                   " bytes, need " + std::to_string(kHeaderBytes) + ")");
  }
  if (std::memcmp(d.data(), kMagic, sizeof kMagic) != 0) {
    return corrupt("bad magic (not a TyTra snapshot container)");
  }
  r.version_ = get_u32(d.data() + 8);
  const std::uint32_t endian = get_u32(d.data() + 12);
  if (endian != kEndianTag) {
    return corrupt("foreign endianness (written on an incompatible machine)");
  }
  if (r.version_ > kFormatVersion) {
    return corrupt("unsupported format version " + std::to_string(r.version_) +
                   " (this build reads up to " +
                   std::to_string(kFormatVersion) + ")");
  }
  const std::uint32_t count = get_u32(d.data() + 16);
  if (count > kMaxSections) {
    return corrupt("implausible section count " + std::to_string(count));
  }
  const std::uint64_t table_checksum = get_u64(d.data() + 24);
  const std::uint64_t table_bytes =
      static_cast<std::uint64_t>(kTableEntryBytes) * count;
  if (d.size() - kHeaderBytes < table_bytes) {
    return corrupt("truncated section table");
  }
  const std::string_view table(d.data() + kHeaderBytes,
                               static_cast<std::size_t>(table_bytes));
  // Mirrors Writer::render: the checksum spans the header prefix and the
  // table together.
  if (checksum64(d.substr(0, 24) + std::string(table)) != table_checksum) {
    return corrupt("header/section-table checksum mismatch");
  }

  std::uint64_t expected_offset = kHeaderBytes + table_bytes;
  r.sections_.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    const char* e = table.data() + kTableEntryBytes * i;
    SectionInfo s;
    s.id = get_u32(e);
    s.offset = get_u64(e + 8);
    s.size = get_u64(e + 16);
    s.checksum = get_u64(e + 24);
    if (s.offset != expected_offset) {
      return corrupt("section " + std::to_string(i) +
                     " offset disagrees with the layout");
    }
    if (s.size > d.size() || s.offset > d.size() - s.size) {
      return corrupt("section " + std::to_string(i) +
                     " extends past the end of the file (truncated?)");
    }
    const std::string_view payload(d.data() + s.offset,
                                   static_cast<std::size_t>(s.size));
    if (checksum64(payload) != s.checksum) {
      return corrupt("section " + std::to_string(i) + " (id " +
                     std::to_string(s.id) + ") checksum mismatch");
    }
    expected_offset += s.size;
    r.sections_.push_back(s);
  }
  if (expected_offset != d.size()) {
    return corrupt("trailing bytes after the last section");
  }
  return r;
}

bool Reader::has_section(std::uint32_t id) const {
  for (const SectionInfo& s : sections_) {
    if (s.id == id) return true;
  }
  return false;
}

std::string_view Reader::section(std::uint32_t id) const {
  for (const SectionInfo& s : sections_) {
    if (s.id == id) {
      return std::string_view(data_.data() + s.offset,
                              static_cast<std::size_t>(s.size));
    }
  }
  return {};
}

}  // namespace tytra::binio
