#include "tytra/support/failpoint.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>

namespace tytra::failpoint {

namespace {

/// The armed-point count, readable without the mutex: armed() is the
/// only thing a disarmed process ever executes.
std::atomic<int> g_armed{0};

struct PointState {
  unsigned percent{0};
  std::uint64_t hits{0};
};

struct Registry {
  std::mutex mu;
  std::map<std::string, PointState, std::less<>> points;
  std::uint64_t fired{0};
};

Registry& registry() {
  static Registry r;
  return r;
}

/// Deterministic pacing: hit n (0-based) fires iff the integer ramp
/// (n*pct)/100 advances at n+1 — exactly pct fires per 100 consecutive
/// hits, at the same hit numbers every run.
bool paced_fire(std::uint64_t n, unsigned pct) {
  return (n + 1) * pct / 100 > n * pct / 100;
}

/// Parses "name=PCT" or "name=PCT%". Returns false on malformed input.
bool parse_entry(std::string_view entry, std::string& name, unsigned& pct) {
  const std::size_t eq = entry.find('=');
  if (eq == std::string_view::npos || eq == 0) return false;
  name = std::string(entry.substr(0, eq));
  std::string_view value = entry.substr(eq + 1);
  if (!value.empty() && value.back() == '%') value.remove_suffix(1);
  if (value.empty() || value.size() > 3) return false;
  unsigned v = 0;
  for (const char c : value) {
    if (c < '0' || c > '9') return false;
    v = v * 10 + static_cast<unsigned>(c - '0');
  }
  if (v > 100) return false;
  pct = v;
  return true;
}

/// One-time TYTRA_FAILPOINTS pickup. Dynamic initialization of this TU
/// runs before main(), so env-armed points are live before any tool code
/// asks armed().
const bool g_env_loaded = [] {
  const char* spec = std::getenv("TYTRA_FAILPOINTS");
  if (spec != nullptr && spec[0] != '\0' && !arm_from_spec(spec)) {
    std::fprintf(stderr,
                 "tytra: warning: TYTRA_FAILPOINTS='%s' is malformed or "
                 "names an unknown failpoint (known: ",
                 spec);
    const auto& names = known_names();
    for (std::size_t i = 0; i < names.size(); ++i) {
      std::fprintf(stderr, "%s%s", i ? ", " : "", names[i].c_str());
    }
    std::fprintf(stderr, "); nothing armed\n");
  }
  return true;
}();

}  // namespace

const std::vector<std::string>& known_names() {
  // Every site wired into the engine. Keep sorted; tests and the CI
  // sweep iterate this list.
  static const std::vector<std::string> names = {
      "binio.read",          // binio::Reader::from_bytes
      "binio.write",         // binio::Writer::write
      "cache.insert",        // CostCache entry publication (both levels)
      "calibration.measure", // cost::DeviceCostDb::calibrate
      "dse.pool-task",       // one variant evaluation in evaluate_tasks
      "frame.read",          // framing::read_frame (daemon wire protocol)
      "frame.write",         // framing::write_frame (daemon wire protocol)
      "membench.measure",    // membench::BandwidthTable::measure
      "server.accept",       // dse::Server accept loop
      "server.drain",        // dse::Server graceful drain (skips the wait)
      "snapshot.load",       // Session::load_snapshot
      "snapshot.save",       // Session::save_snapshot
      "workload.parse",      // kernels::load_file_workload
  };
  return names;
}

bool armed() { return g_armed.load(std::memory_order_relaxed) != 0; }

bool fire(std::string_view name) {
  if (!armed()) return false;
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  const auto it = r.points.find(name);
  if (it == r.points.end() || it->second.percent == 0) return false;
  const bool fires = paced_fire(it->second.hits++, it->second.percent);
  if (fires) ++r.fired;
  return fires;
}

void maybe_throw(std::string_view name) {
  if (fire(name)) throw InjectedFault(name);
}

void arm(std::string_view name, unsigned percent) {
  percent = std::min(percent, 100u);
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  const auto it = r.points.find(name);
  if (percent == 0) {
    if (it != r.points.end() && it->second.percent != 0) {
      g_armed.fetch_sub(1, std::memory_order_relaxed);
    }
    if (it != r.points.end()) r.points.erase(it);
    return;
  }
  if (it == r.points.end()) {
    r.points.emplace(std::string(name), PointState{percent, 0});
    g_armed.fetch_add(1, std::memory_order_relaxed);
  } else {
    if (it->second.percent == 0) g_armed.fetch_add(1, std::memory_order_relaxed);
    it->second.percent = percent;
  }
}

void reset() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  r.points.clear();
  r.fired = 0;
  g_armed.store(0, std::memory_order_relaxed);
}

bool arm_from_spec(std::string_view spec) {
  // Validate the whole spec before arming anything: a half-armed typo'd
  // spec would be worse than an ignored one.
  std::vector<std::pair<std::string, unsigned>> parsed;
  std::size_t pos = 0;
  const auto& names = known_names();
  while (pos <= spec.size()) {
    const std::size_t comma = std::min(spec.find(',', pos), spec.size());
    const std::string_view entry = spec.substr(pos, comma - pos);
    if (!entry.empty()) {
      std::string name;
      unsigned pct = 0;
      if (!parse_entry(entry, name, pct)) return false;
      if (std::find(names.begin(), names.end(), name) == names.end()) {
        return false;
      }
      parsed.emplace_back(std::move(name), pct);
    }
    if (comma == spec.size()) break;
    pos = comma + 1;
  }
  if (parsed.empty()) return false;
  for (const auto& [name, pct] : parsed) arm(name, pct);
  return true;
}

std::uint64_t fired_count() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  return r.fired;
}

}  // namespace tytra::failpoint
