#include "tytra/support/polyfit.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace tytra {

std::vector<double> solve_linear_system(std::vector<double> a,
                                        std::vector<double> b,
                                        std::size_t n) {
  if (a.size() != n * n || b.size() != n) {
    throw std::invalid_argument("solve_linear_system: dimension mismatch");
  }
  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivoting: bring the largest remaining entry into the diagonal.
    std::size_t pivot = col;
    for (std::size_t row = col + 1; row < n; ++row) {
      if (std::abs(a[row * n + col]) > std::abs(a[pivot * n + col])) pivot = row;
    }
    if (std::abs(a[pivot * n + col]) < 1e-12) {
      throw std::invalid_argument("solve_linear_system: singular matrix");
    }
    if (pivot != col) {
      for (std::size_t k = 0; k < n; ++k) std::swap(a[col * n + k], a[pivot * n + k]);
      std::swap(b[col], b[pivot]);
    }
    const double inv = 1.0 / a[col * n + col];
    for (std::size_t row = col + 1; row < n; ++row) {
      const double factor = a[row * n + col] * inv;
      if (factor == 0.0) continue;
      for (std::size_t k = col; k < n; ++k) a[row * n + k] -= factor * a[col * n + k];
      b[row] -= factor * b[col];
    }
  }
  std::vector<double> x(n, 0.0);
  for (std::size_t i = n; i-- > 0;) {
    double sum = b[i];
    for (std::size_t k = i + 1; k < n; ++k) sum -= a[i * n + k] * x[k];
    x[i] = sum / a[i * n + i];
  }
  return x;
}

Polynomial Polynomial::fit(std::span<const double> xs,
                           std::span<const double> ys, int degree) {
  if (degree < 0) throw std::invalid_argument("Polynomial::fit: negative degree");
  if (xs.size() != ys.size()) {
    throw std::invalid_argument("Polynomial::fit: xs/ys size mismatch");
  }
  const auto m = static_cast<std::size_t>(degree) + 1;
  if (xs.size() < m) {
    throw std::invalid_argument("Polynomial::fit: not enough samples for degree");
  }
  // Normal equations (V^T V) c = V^T y with Vandermonde matrix V.
  std::vector<double> ata(m * m, 0.0);
  std::vector<double> aty(m, 0.0);
  for (std::size_t s = 0; s < xs.size(); ++s) {
    double pow_i = 1.0;
    std::vector<double> powers(2 * m - 1);
    powers[0] = 1.0;
    for (std::size_t p = 1; p < 2 * m - 1; ++p) powers[p] = powers[p - 1] * xs[s];
    for (std::size_t i = 0; i < m; ++i) {
      aty[i] += powers[i] * ys[s];
      for (std::size_t j = 0; j < m; ++j) ata[i * m + j] += powers[i + j];
    }
    (void)pow_i;
  }
  return Polynomial(solve_linear_system(std::move(ata), std::move(aty), m));
}

double Polynomial::eval(double x) const {
  double acc = 0.0;
  for (std::size_t i = coeffs_.size(); i-- > 0;) acc = acc * x + coeffs_[i];
  return acc;
}

double Polynomial::rmse(std::span<const double> xs,
                        std::span<const double> ys) const {
  if (xs.empty() || xs.size() != ys.size()) return 0.0;
  double sum = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double e = eval(xs[i]) - ys[i];
    sum += e * e;
  }
  return std::sqrt(sum / static_cast<double>(xs.size()));
}

PiecewiseLinear::PiecewiseLinear(std::vector<Knot> knots)
    : knots_(std::move(knots)) {
  for (std::size_t i = 1; i < knots_.size(); ++i) {
    if (!(knots_[i - 1].x < knots_[i].x)) {
      throw std::invalid_argument("PiecewiseLinear: knots must be strictly increasing in x");
    }
  }
}

PiecewiseLinear PiecewiseLinear::through_points(std::span<const double> xs,
                                                std::span<const double> ys) {
  if (xs.size() != ys.size()) {
    throw std::invalid_argument("PiecewiseLinear::through_points: size mismatch");
  }
  std::vector<Knot> knots;
  knots.reserve(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) knots.push_back({xs[i], ys[i]});
  std::sort(knots.begin(), knots.end(),
            [](const Knot& a, const Knot& b) { return a.x < b.x; });
  // Deduplicate equal x (keep the last sample).
  std::vector<Knot> unique;
  for (const auto& k : knots) {
    if (!unique.empty() && unique.back().x == k.x) unique.back() = k;
    else unique.push_back(k);
  }
  return PiecewiseLinear(std::move(unique));
}

double PiecewiseLinear::eval(double x) const {
  if (knots_.empty()) return 0.0;
  if (knots_.size() == 1) return knots_.front().y;
  if (x <= knots_.front().x) {
    // Linear extrapolation using the first segment.
    const auto& a = knots_[0];
    const auto& b = knots_[1];
    return a.y + (x - a.x) * (b.y - a.y) / (b.x - a.x);
  }
  if (x >= knots_.back().x) {
    const auto& a = knots_[knots_.size() - 2];
    const auto& b = knots_.back();
    return b.y + (x - b.x) * (b.y - a.y) / (b.x - a.x);
  }
  // Binary search for the containing segment.
  std::size_t lo = 0;
  std::size_t hi = knots_.size() - 1;
  while (hi - lo > 1) {
    const std::size_t mid = (lo + hi) / 2;
    if (knots_[mid].x <= x) lo = mid;
    else hi = mid;
  }
  const auto& a = knots_[lo];
  const auto& b = knots_[hi];
  const double t = (x - a.x) / (b.x - a.x);
  return a.y + t * (b.y - a.y);
}

StepModel::StepModel(std::vector<Step> steps) : steps_(std::move(steps)) {
  for (std::size_t i = 1; i < steps_.size(); ++i) {
    if (!(steps_[i - 1].from_x < steps_[i].from_x)) {
      throw std::invalid_argument("StepModel: steps must be strictly increasing in from_x");
    }
  }
}

StepModel StepModel::from_samples(std::span<const double> xs,
                                  std::span<const double> ys) {
  if (xs.size() != ys.size()) {
    throw std::invalid_argument("StepModel::from_samples: size mismatch");
  }
  std::vector<Step> steps;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    if (i > 0 && !(xs[i - 1] < xs[i])) {
      throw std::invalid_argument("StepModel::from_samples: xs must be sorted");
    }
    if (steps.empty() || steps.back().value != ys[i]) {
      steps.push_back({xs[i], ys[i]});
    }
  }
  return StepModel(std::move(steps));
}

double StepModel::eval(double x) const {
  if (steps_.empty()) return 0.0;
  double value = steps_.front().value;
  for (const auto& s : steps_) {
    if (x >= s.from_x) value = s.value;
    else break;
  }
  return value;
}

std::vector<double> StepModel::discontinuities() const {
  std::vector<double> out;
  for (std::size_t i = 1; i < steps_.size(); ++i) out.push_back(steps_[i].from_x);
  return out;
}

}  // namespace tytra
