#include "tytra/support/strings.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>

namespace tytra {

std::string_view trim(std::string_view s) {
  std::size_t begin = 0;
  std::size_t end = s.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(s[begin])) != 0) ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1])) != 0) --end;
  return s.substr(begin, end - begin);
}

std::vector<std::string_view> split(std::string_view s, char sep) {
  std::vector<std::string_view> parts;
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      parts.push_back(s.substr(start));
      break;
    }
    parts.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return parts;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() && s.substr(s.size() - suffix.size()) == suffix;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string format_si(double value, int precision) {
  static constexpr const char* kSuffixes[] = {"", "K", "M", "G", "T", "P"};
  int mag = 0;
  double v = value;
  while (std::abs(v) >= 1000.0 && mag < 5) {
    v /= 1000.0;
    ++mag;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f %s", precision, v, kSuffixes[mag]);
  return buf;
}

std::string pad_left(std::string_view s, std::size_t width) {
  if (s.size() >= width) return std::string(s);
  return std::string(width - s.size(), ' ') + std::string(s);
}

std::string pad_right(std::string_view s, std::size_t width) {
  if (s.size() >= width) return std::string(s);
  return std::string(s) + std::string(width - s.size(), ' ');
}

std::string format_fixed(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

}  // namespace tytra
