#include "tytra/support/framing.hpp"

#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "tytra/support/failpoint.hpp"

namespace tytra::framing {

namespace {

/// Reads exactly `n` bytes into `buf`, retrying EINTR and short reads.
/// Returns n on success, 0 on clean EOF before the first byte, -1 on
/// error or EOF mid-read (errno left from the failing read, or 0 when
/// the defect is truncation rather than a syscall failure).
ssize_t read_exact(int fd, void* buf, std::size_t n) {
  std::size_t got = 0;
  char* p = static_cast<char*>(buf);
  while (got < n) {
    const ssize_t r = ::read(fd, p + got, n - got);
    if (r < 0) {
      if (errno == EINTR) continue;
      return -1;
    }
    if (r == 0) {
      errno = 0;
      return got == 0 ? 0 : -1;
    }
    got += static_cast<std::size_t>(r);
  }
  return static_cast<ssize_t>(got);
}

bool write_exact(int fd, const void* buf, std::size_t n, std::string& error) {
  std::size_t put = 0;
  const char* p = static_cast<const char*>(buf);
  while (put < n) {
    const ssize_t r = ::write(fd, p + put, n - put);
    if (r < 0) {
      if (errno == EINTR) continue;
      error = std::string("frame write failed: ") + std::strerror(errno);
      return false;
    }
    put += static_cast<std::size_t>(r);
  }
  return true;
}

}  // namespace

ReadStatus read_frame(int fd, std::string& payload, std::string& error) {
  if (failpoint::fire("frame.read")) {
    error = "injected fault at failpoint 'frame.read'";
    return ReadStatus::Error;
  }
  unsigned char prefix[4];
  const ssize_t pr = read_exact(fd, prefix, sizeof prefix);
  if (pr == 0) return ReadStatus::Eof;
  if (pr < 0) {
    error = errno != 0
                ? std::string("frame prefix read failed: ") + std::strerror(errno)
                : "truncated frame prefix";
    return ReadStatus::Error;
  }
  const std::uint32_t len = static_cast<std::uint32_t>(prefix[0]) |
                            (static_cast<std::uint32_t>(prefix[1]) << 8) |
                            (static_cast<std::uint32_t>(prefix[2]) << 16) |
                            (static_cast<std::uint32_t>(prefix[3]) << 24);
  if (len > kMaxFrameBytes) {
    error = "frame length " + std::to_string(len) + " exceeds limit " +
            std::to_string(kMaxFrameBytes);
    return ReadStatus::Error;
  }
  payload.resize(len);
  if (len > 0) {
    const ssize_t br = read_exact(fd, payload.data(), len);
    if (br <= 0) {
      // EOF after a prefix is truncation, never a clean close.
      error = errno != 0 ? std::string("frame payload read failed: ") +
                               std::strerror(errno)
                         : "truncated frame payload";
      return ReadStatus::Error;
    }
  }
  return ReadStatus::Frame;
}

bool write_frame(int fd, std::string_view payload, std::string& error) {
  if (failpoint::fire("frame.write")) {
    error = "injected fault at failpoint 'frame.write'";
    return false;
  }
  if (payload.size() > kMaxFrameBytes) {
    error = "frame length " + std::to_string(payload.size()) +
            " exceeds limit " + std::to_string(kMaxFrameBytes);
    return false;
  }
  const std::uint32_t len = static_cast<std::uint32_t>(payload.size());
  unsigned char prefix[4] = {
      static_cast<unsigned char>(len & 0xFF),
      static_cast<unsigned char>((len >> 8) & 0xFF),
      static_cast<unsigned char>((len >> 16) & 0xFF),
      static_cast<unsigned char>((len >> 24) & 0xFF),
  };
  if (!write_exact(fd, prefix, sizeof prefix, error)) return false;
  if (!payload.empty() &&
      !write_exact(fd, payload.data(), payload.size(), error)) {
    return false;
  }
  return true;
}

}  // namespace tytra::framing
