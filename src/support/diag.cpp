#include "tytra/support/diag.hpp"

#include "tytra/support/json.hpp"

namespace tytra {

std::string Diag::to_json() const {
  std::string out = "{\"severity\": \"";
  out += severity_name(severity);
  out += "\", \"code\": ";
  if (code.empty()) {
    out += "null";
  } else {
    out += "\"" + json::escape(code) + "\"";
  }
  out += ", \"line\": " + std::to_string(loc.line);
  out += ", \"col\": " + std::to_string(loc.col);
  out += ", \"message\": \"" + json::escape(message) + "\"}";
  return out;
}

std::string DiagBag::to_json() const {
  std::string out = "[";
  for (std::size_t i = 0; i < diags_.size(); ++i) {
    out += i ? ", " : "";
    out += diags_[i].to_json();
  }
  out += "]";
  return out;
}

}  // namespace tytra
