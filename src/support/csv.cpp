#include "tytra/support/csv.hpp"

#include <cstdio>
#include <fstream>
#include <stdexcept>

namespace tytra {

namespace {

std::string escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (const char c : cell) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

}  // namespace

CsvTable::CsvTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  if (header_.empty()) {
    throw std::invalid_argument("CsvTable: empty header");
  }
}

void CsvTable::add_row(std::vector<std::string> cells) {
  if (cells.size() != header_.size()) {
    throw std::invalid_argument("CsvTable: row width " +
                                std::to_string(cells.size()) +
                                " does not match header width " +
                                std::to_string(header_.size()));
  }
  rows_.push_back(std::move(cells));
}

void CsvTable::add_row(const std::vector<double>& values) {
  std::vector<std::string> cells;
  cells.reserve(values.size());
  for (const double v : values) {
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%g", v);
    cells.emplace_back(buf);
  }
  add_row(std::move(cells));
}

std::string CsvTable::to_string() const {
  std::string out;
  for (std::size_t i = 0; i < header_.size(); ++i) {
    if (i != 0) out += ',';
    out += escape(header_[i]);
  }
  out += '\n';
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i != 0) out += ',';
      out += escape(row[i]);
    }
    out += '\n';
  }
  return out;
}

bool CsvTable::write(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  out << to_string();
  return static_cast<bool>(out);
}

}  // namespace tytra
