#include "tytra/support/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <utility>

namespace tytra::json {

namespace {

/// Nesting bound: a frame of 64 consecutive '[' is already a malformed
/// client, and the recursive parser must not let one size its stack.
constexpr int kMaxDepth = 64;

struct Parser {
  std::string_view text;
  std::size_t pos{0};
  std::string error;

  [[nodiscard]] bool at_end() const { return pos >= text.size(); }
  [[nodiscard]] char peek() const { return text[pos]; }

  void skip_ws() {
    while (!at_end()) {
      const char c = text[pos];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos;
    }
  }

  bool fail(const std::string& what) {
    if (error.empty()) {
      error = what + " at byte " + std::to_string(pos);
    }
    return false;
  }

  bool consume(char c, const char* what) {
    skip_ws();
    if (at_end() || text[pos] != c) return fail(std::string("expected ") + what);
    ++pos;
    return true;
  }

  bool literal(std::string_view word) {
    if (text.compare(pos, word.size(), word) != 0) {
      return fail("invalid literal");
    }
    pos += word.size();
    return true;
  }

  /// Appends `cp` to `out` as UTF-8 (cp is already validated <= 0x10FFFF).
  static void append_utf8(std::string& out, std::uint32_t cp) {
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  bool hex4(std::uint32_t& out) {
    if (pos + 4 > text.size()) return fail("truncated \\u escape");
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text[pos + static_cast<std::size_t>(i)];
      v <<= 4;
      if (c >= '0' && c <= '9') v |= static_cast<std::uint32_t>(c - '0');
      else if (c >= 'a' && c <= 'f') v |= static_cast<std::uint32_t>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') v |= static_cast<std::uint32_t>(c - 'A' + 10);
      else return fail("invalid \\u escape");
    }
    pos += 4;
    out = v;
    return true;
  }

  bool parse_string(std::string& out) {
    if (!consume('"', "'\"'")) return false;
    out.clear();
    for (;;) {
      if (at_end()) return fail("unterminated string");
      const char c = text[pos++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) {
        return fail("raw control byte in string");
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (at_end()) return fail("truncated escape");
      const char e = text[pos++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          std::uint32_t cp = 0;
          if (!hex4(cp)) return false;
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate: a low surrogate must follow.
            if (pos + 1 >= text.size() || text[pos] != '\\' ||
                text[pos + 1] != 'u') {
              return fail("unpaired surrogate");
            }
            pos += 2;
            std::uint32_t lo = 0;
            if (!hex4(lo)) return false;
            if (lo < 0xDC00 || lo > 0xDFFF) return fail("unpaired surrogate");
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return fail("unpaired surrogate");
          }
          append_utf8(out, cp);
          break;
        }
        default:
          return fail("unknown escape");
      }
    }
  }

  bool parse_number(double& out) {
    const std::size_t start = pos;
    if (!at_end() && text[pos] == '-') ++pos;
    if (at_end() || text[pos] < '0' || text[pos] > '9') {
      pos = start;
      return fail("invalid number");
    }
    if (text[pos] == '0') {
      ++pos;  // no leading zeros
    } else {
      while (!at_end() && text[pos] >= '0' && text[pos] <= '9') ++pos;
    }
    if (!at_end() && text[pos] == '.') {
      ++pos;
      if (at_end() || text[pos] < '0' || text[pos] > '9') {
        return fail("invalid number");
      }
      while (!at_end() && text[pos] >= '0' && text[pos] <= '9') ++pos;
    }
    if (!at_end() && (text[pos] == 'e' || text[pos] == 'E')) {
      ++pos;
      if (!at_end() && (text[pos] == '+' || text[pos] == '-')) ++pos;
      if (at_end() || text[pos] < '0' || text[pos] > '9') {
        return fail("invalid number");
      }
      while (!at_end() && text[pos] >= '0' && text[pos] <= '9') ++pos;
    }
    // The slice is a valid JSON number; strtod accepts a superset, so
    // this cannot fail, only round (which is fine — doubles are the type).
    const std::string slice(text.substr(start, pos - start));
    out = std::strtod(slice.c_str(), nullptr);
    return true;
  }

  bool parse_value(Value& out, int depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    skip_ws();
    if (at_end()) return fail("unexpected end of input");
    const char c = peek();
    if (c == '{') {
      ++pos;
      std::vector<Member> members;
      skip_ws();
      if (!at_end() && peek() == '}') {
        ++pos;
        out = Value::object(std::move(members));
        return true;
      }
      for (;;) {
        std::string key;
        skip_ws();
        if (!parse_string(key)) return false;
        if (!consume(':', "':'")) return false;
        Value v;
        if (!parse_value(v, depth + 1)) return false;
        members.emplace_back(std::move(key), std::move(v));
        skip_ws();
        if (at_end()) return fail("unterminated object");
        if (peek() == ',') {
          ++pos;
          continue;
        }
        if (peek() == '}') {
          ++pos;
          out = Value::object(std::move(members));
          return true;
        }
        return fail("expected ',' or '}'");
      }
    }
    if (c == '[') {
      ++pos;
      std::vector<Value> elems;
      skip_ws();
      if (!at_end() && peek() == ']') {
        ++pos;
        out = Value::array(std::move(elems));
        return true;
      }
      for (;;) {
        Value v;
        if (!parse_value(v, depth + 1)) return false;
        elems.push_back(std::move(v));
        skip_ws();
        if (at_end()) return fail("unterminated array");
        if (peek() == ',') {
          ++pos;
          continue;
        }
        if (peek() == ']') {
          ++pos;
          out = Value::array(std::move(elems));
          return true;
        }
        return fail("expected ',' or ']'");
      }
    }
    if (c == '"') {
      std::string s;
      if (!parse_string(s)) return false;
      out = Value(std::move(s));
      return true;
    }
    if (c == 't') {
      if (!literal("true")) return false;
      out = Value(true);
      return true;
    }
    if (c == 'f') {
      if (!literal("false")) return false;
      out = Value(false);
      return true;
    }
    if (c == 'n') {
      if (!literal("null")) return false;
      out = Value();
      return true;
    }
    double num = 0;
    if (!parse_number(num)) return false;
    out = Value(num);
    return true;
  }
};

}  // namespace

Value Value::array(std::vector<Value> elems) {
  Value v;
  v.kind_ = Kind::Array;
  v.elems_ = std::move(elems);
  return v;
}

Value Value::object(std::vector<Member> members) {
  Value v;
  v.kind_ = Kind::Object;
  v.members_ = std::move(members);
  return v;
}

const Value* Value::find(std::string_view key) const {
  const Value* found = nullptr;
  for (const auto& [k, v] : members_) {
    if (k == key) found = &v;  // last occurrence wins
  }
  return found;
}

std::optional<std::string> Value::get_string(std::string_view key) const {
  const Value* v = find(key);
  if (v == nullptr || !v->is_string()) return std::nullopt;
  return v->str();
}

std::optional<double> Value::get_number(std::string_view key) const {
  const Value* v = find(key);
  if (v == nullptr || !v->is_number()) return std::nullopt;
  return v->number();
}

std::optional<bool> Value::get_bool(std::string_view key) const {
  const Value* v = find(key);
  if (v == nullptr || !v->is_bool()) return std::nullopt;
  return v->kind() == Kind::Bool && v->boolean();
}

std::optional<std::uint32_t> Value::get_u32(std::string_view key) const {
  const Value* v = find(key);
  if (v == nullptr || !v->is_number()) return std::nullopt;
  const double d = v->number();
  if (!(d >= 0) || d > 4294967295.0 || d != std::floor(d)) return std::nullopt;
  return static_cast<std::uint32_t>(d);
}

Result<Value> parse(std::string_view text) {
  Parser p{text, 0, {}};
  Value v;
  if (!p.parse_value(v, 0)) return make_error("json: " + p.error);
  p.skip_ws();
  if (!p.at_end()) {
    return make_error("json: trailing content at byte " +
                      std::to_string(p.pos));
  }
  return v;
}

std::string escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace tytra::json
