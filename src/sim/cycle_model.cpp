#include "tytra/sim/cycle_model.hpp"

#include <algorithm>
#include <cmath>

#include "tytra/ir/analysis.hpp"

namespace tytra::sim {

namespace {

/// Fixed control-FSM startup cycles per kernel instance.
constexpr double kControlStartupCycles = 12.0;

/// Fractional pipeline-bubble overhead in steady state (arbitration,
/// occasional stream-control stalls).
constexpr double kBubbleFraction = 0.015;

/// Additional bubble fraction per offset stream (window management at
/// stream boundaries).
constexpr double kPerOffsetBubble = 0.006;

}  // namespace

TimingResult simulate_timing(const ir::Module& module,
                             const target::DeviceDesc& device,
                             const TimingOptions& options) {
  return simulate_timing(module, device, ir::summarize(module), options);
}

TimingResult simulate_timing(const ir::Module& module,
                             const target::DeviceDesc& device,
                             const ir::AnalysisSummary& summary,
                             const TimingOptions& options) {
  TimingResult out;
  const ir::DesignParams& p = summary.params;
  if (p.ngs == 0) return out;

  double fd = options.freq_hz;
  if (fd <= 0) fd = p.fd;
  if (fd <= 0) fd = device.default_freq_hz;
  out.freq_hz = fd;

  const double ngs = static_cast<double>(p.ngs);
  const double word_bytes = device.word_bytes;
  const double total_bytes = ngs * p.nwpt * word_bytes;

  // Count offset streams (bubble sources).
  const double n_offsets = static_cast<double>(summary.offset_count);

  // --- Device-side cycles for one kernel instance --------------------------
  const membench::DramModel dram(device.dram);

  // Steady state: per-lane word-serial feed at II cycles per word, all
  // lanes running concurrently, throttled by aggregate DRAM bandwidth.
  const double items_per_lane = ngs / (p.knl * p.dv);
  const double feed_cycles = items_per_lane * p.nwpt * p.nto;

  // Strided ports stream slower; compute an effective aggregate rate.
  double worst_port_bw = dram.peak_bw();
  for (const auto& ps : summary.ports) {
    // Evaluate at the total transfer size: the port streams run
    // concurrently and form one long aggregate DRAM transfer.
    const double bw = dram.sustained_bw(
        static_cast<std::uint64_t>(std::max(1.0, total_bytes)),
        ps.port->pattern, ps.stride_words * device.word_bytes,
        device.word_bytes);
    // All ports share the memory system; the slowest pattern bounds it.
    worst_port_bw = std::min(worst_port_bw, bw);
  }
  const double mem_seconds =
      module.meta.form == ir::ExecForm::C
          ? 0.0
          : total_bytes / std::max(1.0, worst_port_bw);
  const double mem_cycles = mem_seconds * fd;

  double steady_cycles = std::max(feed_cycles, mem_cycles);
  steady_cycles *= 1.0 + kBubbleFraction + kPerOffsetBubble * n_offsets;

  // Offset-buffer priming: the deepest window fills before the first
  // work-item, with words arriving at the steady streaming rate (the
  // buffers are fed from the same streams, not a separate transaction).
  const double prime_cycles =
      p.noff > 0 ? static_cast<double>(p.noff) * word_bytes /
                       std::max(1.0, worst_port_bw) * fd
                 : 0.0;

  // Fill + drain: the pipeline must fill before the first result and drain
  // after the last work-item enters.
  const double fill_drain_cycles = 2.0 * static_cast<double>(p.kpd);

  out.cycles_per_instance =
      kControlStartupCycles + prime_cycles + fill_drain_cycles + steady_cycles;

  // --- Host side ------------------------------------------------------------
  const membench::HostLinkModel host(device.host);
  const double streams = static_cast<double>(module.ports.size());
  const double per_call_overhead =
      options.call_overhead_seconds + options.per_stream_overhead_seconds * streams;

  double host_seconds_total = 0;
  const auto bytes_u = static_cast<std::uint64_t>(total_bytes);
  if (module.meta.form == ir::ExecForm::A) {
    host_seconds_total = static_cast<double>(p.nki) * host.transfer_seconds(bytes_u);
  } else {
    host_seconds_total = host.transfer_seconds(bytes_u);  // once, then resident
  }

  const double device_seconds_instance = out.cycles_per_instance / fd;
  out.device_seconds =
      static_cast<double>(p.nki) * (device_seconds_instance + per_call_overhead);
  out.host_seconds = host_seconds_total;
  out.total_seconds = out.device_seconds + out.host_seconds;
  out.seconds_per_instance = out.total_seconds / std::max<std::uint32_t>(p.nki, 1);
  return out;
}

}  // namespace tytra::sim
