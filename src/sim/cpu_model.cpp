#include "tytra/sim/cpu_model.hpp"

#include <algorithm>

namespace tytra::sim {

double cpu_kernel_seconds(std::uint64_t items, const CpuKernelCost& cost,
                          const CpuParams& params) {
  const double n = static_cast<double>(items);
  const double compute = n * cost.ops_per_item / (params.ipc * params.freq_hz);
  const double working_set = n * cost.bytes_per_item;
  const double bw =
      working_set <= params.cache_bytes ? params.cache_bw : params.mem_bw;
  const double memory = working_set / bw;
  return std::max(compute, memory) + params.call_overhead_seconds;
}

double cpu_total_seconds(std::uint64_t items, std::uint32_t nki,
                         const CpuKernelCost& cost, const CpuParams& params) {
  return static_cast<double>(nki) * cpu_kernel_seconds(items, cost, params);
}

}  // namespace tytra::sim
