#include "tytra/sim/power.hpp"

namespace tytra::sim {

double fpga_delta_watts(const ResourceVec& used,
                        const target::DeviceDesc& device, double freq_hz,
                        double activity) {
  const auto& pw = device.power;
  const double mhz = freq_hz / 1e6;
  const double dynamic_nw =
      (used.aluts * pw.alut_nw + used.dsps * pw.dsp_nw +
       (used.bram_bits / 1024.0) * pw.bram_kb_nw) *
      mhz * activity;
  return pw.static_watts + dynamic_nw * 1e-9;
}

double cpu_delta_watts() { return 34.0; }

double host_assist_delta_watts() { return 3.0; }

double delta_energy_joules(double watts, double seconds) {
  return watts * seconds;
}

}  // namespace tytra::sim
