#include "tytra/sim/functional.hpp"

#include <algorithm>
#include <cmath>

namespace tytra::sim {

namespace {

using ir::FuncKind;
using ir::Function;
using ir::Instr;
using ir::Module;
using ir::Opcode;
using ir::Operand;
using ir::ScalarKind;

/// Binding of a PE's parameter names to stream (port) names.
using Binding = std::map<std::string, std::string>;

double eval_int_op(Opcode op, std::int64_t a, std::int64_t b, std::int64_t c) {
  switch (op) {
    case Opcode::Add: return static_cast<double>(a + b);
    case Opcode::Sub: return static_cast<double>(a - b);
    case Opcode::Mul: return static_cast<double>(a * b);
    case Opcode::Div: return b != 0 ? static_cast<double>(a / b) : 0.0;
    case Opcode::Rem: return b != 0 ? static_cast<double>(a % b) : 0.0;
    case Opcode::Shl: return static_cast<double>(a << (b & 63));
    case Opcode::LShr:
      return static_cast<double>(static_cast<std::uint64_t>(a) >> (b & 63));
    case Opcode::AShr: return static_cast<double>(a >> (b & 63));
    case Opcode::And: return static_cast<double>(a & b);
    case Opcode::Or: return static_cast<double>(a | b);
    case Opcode::Xor: return static_cast<double>(a ^ b);
    case Opcode::Not: return static_cast<double>(~a);
    case Opcode::CmpEq: return a == b ? 1.0 : 0.0;
    case Opcode::CmpNe: return a != b ? 1.0 : 0.0;
    case Opcode::CmpLt: return a < b ? 1.0 : 0.0;
    case Opcode::CmpLe: return a <= b ? 1.0 : 0.0;
    case Opcode::CmpGt: return a > b ? 1.0 : 0.0;
    case Opcode::CmpGe: return a >= b ? 1.0 : 0.0;
    case Opcode::Select: return a != 0 ? static_cast<double>(b) : static_cast<double>(c);
    case Opcode::Min: return static_cast<double>(std::min(a, b));
    case Opcode::Max: return static_cast<double>(std::max(a, b));
    case Opcode::Abs: return static_cast<double>(a < 0 ? -a : a);
    case Opcode::Neg: return static_cast<double>(-a);
    case Opcode::Mac: return static_cast<double>(a * b + c);
    case Opcode::Sqrt:
      return a >= 0 ? std::floor(std::sqrt(static_cast<double>(a))) : 0.0;
    case Opcode::Mov: return static_cast<double>(a);
    case Opcode::Exp:
    case Opcode::Recip:
      return 0.0;  // rejected by the verifier for integer types
  }
  return 0.0;
}

/// Fixed-point semantics on raw (scaled-integer) values: multiplication
/// re-normalizes by the fractional width, division pre-scales the
/// numerator, everything else is plain integer arithmetic on raw bits.
double eval_fixed_op(Opcode op, const ir::ScalarType& type, std::int64_t a,
                     std::int64_t b, std::int64_t c) {
  const int frac = type.frac;
  switch (op) {
    case Opcode::Mul:
      return static_cast<double>((a * b) >> frac);
    case Opcode::Mac:
      return static_cast<double>(((a * b) >> frac) + c);
    case Opcode::Div:
      return b != 0 ? static_cast<double>((a << frac) / b) : 0.0;
    case Opcode::Recip:
      return a != 0
                 ? static_cast<double>((static_cast<std::int64_t>(1) << (2 * frac)) / a)
                 : 0.0;
    case Opcode::Sqrt: {
      // sqrt(x * 2^f) in raw units: sqrt(raw << f).
      const std::int64_t scaled = a << frac;
      return scaled >= 0
                 ? std::floor(std::sqrt(static_cast<double>(scaled)))
                 : 0.0;
    }
    default:
      return eval_int_op(op, a, b, c);
  }
}

double eval_float_op(Opcode op, double a, double b, double c) {
  switch (op) {
    case Opcode::Add: return a + b;
    case Opcode::Sub: return a - b;
    case Opcode::Mul: return a * b;
    case Opcode::Div: return b != 0.0 ? a / b : 0.0;
    case Opcode::CmpEq: return a == b ? 1.0 : 0.0;
    case Opcode::CmpNe: return a != b ? 1.0 : 0.0;
    case Opcode::CmpLt: return a < b ? 1.0 : 0.0;
    case Opcode::CmpLe: return a <= b ? 1.0 : 0.0;
    case Opcode::CmpGt: return a > b ? 1.0 : 0.0;
    case Opcode::CmpGe: return a >= b ? 1.0 : 0.0;
    case Opcode::Select: return a != 0.0 ? b : c;
    case Opcode::Min: return std::min(a, b);
    case Opcode::Max: return std::max(a, b);
    case Opcode::Abs: return std::abs(a);
    case Opcode::Neg: return -a;
    case Opcode::Mac: return a * b + c;
    case Opcode::Sqrt: return a >= 0 ? std::sqrt(a) : 0.0;
    case Opcode::Exp: return std::exp(a);
    case Opcode::Recip: return a != 0.0 ? 1.0 / a : 0.0;
    case Opcode::Mov: return a;
    default: return 0.0;
  }
}

class Executor {
 public:
  Executor(const Module& mod, const StreamMap& inputs)
      : mod_(mod) {
    available_ = inputs;
  }

  tytra::Result<ExecResult> run() {
    const Function* main = mod_.entry();
    if (main == nullptr) return tytra::make_error("no @main function");
    if (auto r = eval_function(*main, {}); !r.ok()) return r.diag();
    ExecResult result;
    for (const auto& p : mod_.ports) {
      if (p.dir == ir::StreamDir::Out) {
        const auto it = available_.find(p.name);
        if (it != available_.end()) result.outputs[p.name] = it->second;
      }
    }
    result.reductions = accumulators_;
    result.items = items_;
    return result;
  }

 private:
  tytra::Result<bool> eval_function(const Function& f, const Binding& binding) {
    const bool is_pe = !f.instructions().empty() || !f.offsets().empty();
    if (is_pe) {
      if (auto r = eval_pe(f, binding); !r.ok()) return r.diag();
    }
    for (const auto& item : f.body) {
      const auto* call = std::get_if<ir::Call>(&item);
      if (call == nullptr) continue;
      const Function* callee = mod_.find_function(call->callee);
      if (callee == nullptr) {
        return tytra::make_error("call to unknown @" + call->callee, call->loc);
      }
      if (callee->kind == FuncKind::Comb && is_pe) continue;  // inlined above
      Binding child;
      for (std::size_t j = 0; j < call->args.size() && j < callee->params.size();
           ++j) {
        const Operand& a = call->args[j];
        std::string stream;
        if (a.kind == Operand::Kind::Global) {
          stream = a.name;
        } else if (a.kind == Operand::Kind::Local) {
          const auto it = binding.find(a.name);
          if (it == binding.end()) {
            return tytra::make_error("cannot resolve stream for %" + a.name,
                                     call->loc);
          }
          stream = it->second;
        } else {
          return tytra::make_error("constant call arguments are not streams",
                                   call->loc);
        }
        child[callee->params[j].name] = stream;
      }
      if (auto r = eval_function(*callee, child); !r.ok()) return r.diag();
    }
    return true;
  }

  /// Evaluates a processing element over its bound streams.
  tytra::Result<bool> eval_pe(const Function& f, const Binding& binding) {
    // Resolve stream lengths.
    std::size_t n = 0;
    for (const auto& p : f.params) {
      const auto bit = binding.find(p.name);
      if (bit == binding.end()) {
        return tytra::make_error("parameter %" + p.name + " of @" + f.name +
                                 " has no stream binding");
      }
      const auto sit = available_.find(bit->second);
      if (sit == available_.end()) {
        // Output-stream parameter (written, not read): skip length check.
        continue;
      }
      if (n == 0) n = sit->second.size();
      if (sit->second.size() != n) {
        return tytra::make_error("stream length mismatch on @" + bit->second +
                                 " bound to @" + f.name);
      }
    }
    if (n == 0 && !f.params.empty()) {
      return tytra::make_error("no input streams bound to @" + f.name);
    }

    std::map<std::string, double> env;
    for (std::size_t i = 0; i < n; ++i) {
      env.clear();
      // Parameters read their stream at index i. An output-stream
      // parameter can become available mid-PE (the PE itself appends to
      // it, so by i > 0 it exists but is shorter than n); it is not a
      // readable input — skip it exactly like the length-resolution
      // pass did when it was absent.
      for (const auto& p : f.params) {
        const std::string& stream = binding.at(p.name);
        const auto sit = available_.find(stream);
        if (sit != available_.end() && i < sit->second.size()) {
          env[p.name] = sit->second[i];
        }
      }
      if (auto r = eval_items(f, binding, env, i, n); !r.ok()) return r.diag();
      ++items_;
    }
    return true;
  }

  tytra::Result<bool> eval_items(const Function& f, const Binding& binding,
                                 std::map<std::string, double>& env,
                                 std::size_t i, std::size_t n) {
    for (const auto& item : f.body) {
      if (const auto* off = std::get_if<ir::OffsetDecl>(&item)) {
        const auto bit = binding.find(off->base);
        if (bit == binding.end()) {
          return tytra::make_error("offset base %" + off->base + " is not a stream",
                                   off->loc);
        }
        const auto sit = available_.find(bit->second);
        if (sit == available_.end()) {
          return tytra::make_error("offset of unavailable stream @" + bit->second,
                                   off->loc);
        }
        const auto idx = static_cast<std::int64_t>(i) + off->offset;
        const auto clamped = std::clamp<std::int64_t>(
            idx, 0, static_cast<std::int64_t>(n) - 1);
        env[off->result] = sit->second[static_cast<std::size_t>(clamped)];
        continue;
      }
      if (const auto* instr = std::get_if<Instr>(&item)) {
        if (auto r = eval_instr(*instr, binding, env, i); !r.ok()) return r.diag();
        continue;
      }
      const auto& call = std::get<ir::Call>(item);
      const Function* callee = mod_.find_function(call.callee);
      if (callee != nullptr && callee->kind == FuncKind::Comb) {
        // Inline the combinatorial block with args from the current env.
        std::map<std::string, double> cenv;
        for (std::size_t j = 0;
             j < call.args.size() && j < callee->params.size(); ++j) {
          const Operand& a = call.args[j];
          double v = 0;
          if (a.kind == Operand::Kind::Local) {
            const auto it = env.find(a.name);
            if (it == env.end()) {
              return tytra::make_error("comb arg %" + a.name + " not available",
                                       call.loc);
            }
            v = it->second;
          } else if (a.kind == Operand::Kind::ConstInt) {
            v = static_cast<double>(a.ival);
          } else if (a.kind == Operand::Kind::ConstFloat) {
            v = a.fval;
          } else {
            v = accumulators_[a.name];
          }
          cenv[callee->params[j].name] = v;
        }
        for (const auto& citem : callee->body) {
          if (const auto* cinstr = std::get_if<Instr>(&citem)) {
            if (auto r = eval_instr(*cinstr, binding, cenv, i); !r.ok()) {
              return r.diag();
            }
          }
        }
      }
    }
    return true;
  }

  tytra::Result<bool> eval_instr(const Instr& instr, const Binding& binding,
                                 std::map<std::string, double>& env,
                                 std::size_t i) {
    double vals[3] = {0, 0, 0};
    for (std::size_t k = 0; k < instr.args.size() && k < 3; ++k) {
      const Operand& a = instr.args[k];
      switch (a.kind) {
        case Operand::Kind::Local: {
          const auto it = env.find(a.name);
          if (it == env.end()) {
            return tytra::make_error("value %" + a.name + " not available",
                                     instr.loc);
          }
          vals[k] = it->second;
          break;
        }
        case Operand::Kind::Global: {
          const auto* port = mod_.find_port(a.name);
          if (port != nullptr && port->dir == ir::StreamDir::In) {
            const auto sit = available_.find(a.name);
            if (sit == available_.end() || i >= sit->second.size()) {
              return tytra::make_error("global stream @" + a.name + " unavailable",
                                       instr.loc);
            }
            vals[k] = sit->second[i];
          } else {
            vals[k] = accumulators_[a.name];  // default-initialized to 0
          }
          break;
        }
        case Operand::Kind::ConstInt:
          vals[k] = static_cast<double>(a.ival);
          break;
        case Operand::Kind::ConstFloat:
          vals[k] = a.fval;
          break;
      }
    }
    double result = 0;
    if (instr.type.scalar.is_float()) {
      result = eval_float_op(instr.op, vals[0], vals[1], vals[2]);
    } else if (instr.type.scalar.kind == ScalarKind::Fixed) {
      result = eval_fixed_op(instr.op, instr.type.scalar,
                             static_cast<std::int64_t>(std::llround(vals[0])),
                             static_cast<std::int64_t>(std::llround(vals[1])),
                             static_cast<std::int64_t>(std::llround(vals[2])));
    } else {
      result = eval_int_op(instr.op, static_cast<std::int64_t>(std::llround(vals[0])),
                           static_cast<std::int64_t>(std::llround(vals[1])),
                           static_cast<std::int64_t>(std::llround(vals[2])));
    }
    result = wrap_to_type(result, instr.type.scalar);

    if (instr.result_global) {
      // The written global may name an output port directly or a parameter
      // bound to one (so replicated lanes can write distinct streams).
      std::string target = instr.result;
      if (const auto bit = binding.find(target); bit != binding.end()) {
        target = bit->second;
      }
      const auto* port = mod_.find_port(target);
      if (port != nullptr && port->dir == ir::StreamDir::Out) {
        available_[target].push_back(result);
      } else {
        accumulators_[target] = result;
      }
    } else {
      env[instr.result] = result;
    }
    return true;
  }

  const Module& mod_;
  StreamMap available_;
  std::map<std::string, double> accumulators_;
  std::uint64_t items_{0};
};

}  // namespace

double wrap_to_type(double value, const ir::ScalarType& type) {
  if (type.is_float()) return value;
  const int bits = std::min<int>(type.bits, 63);
  const auto span = static_cast<std::int64_t>(1) << bits;
  auto v = static_cast<std::int64_t>(std::llround(value));
  v %= span;
  if (type.kind == ScalarKind::UInt) {
    if (v < 0) v += span;
  } else {
    // SInt and Fixed wrap as two's complement on the raw bits.
    const std::int64_t half = span >> 1;
    if (v >= half) v -= span;
    if (v < -half) v += span;
  }
  return static_cast<double>(v);
}

tytra::Result<ExecResult> run_functional(const ir::Module& module,
                                         const StreamMap& inputs) {
  return Executor(module, inputs).run();
}

}  // namespace tytra::sim
