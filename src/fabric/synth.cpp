#include "tytra/fabric/synth.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <set>
#include <vector>

#include "tytra/fabric/cores.hpp"
#include "tytra/ir/analysis.hpp"
#include "tytra/support/rng.hpp"

namespace tytra::fabric {

namespace {

using ir::FuncKind;
using ir::Function;
using ir::Instr;
using ir::Module;
using ir::OffsetDecl;
using ir::Opcode;
using ir::Operand;

/// A flattened netlist node for the placement pass.
struct NetNode {
  int id{0};
  std::vector<int> fanin;
};

/// Key identifying a common subexpression within one function body.
struct InstrKey {
  Opcode op;
  ir::Type type;
  std::vector<Operand> args;

  bool operator<(const InstrKey& o) const {
    if (op != o.op) return op < o.op;
    if (type.scalar.kind != o.type.scalar.kind) return type.scalar.kind < o.type.scalar.kind;
    if (type.scalar.bits != o.type.scalar.bits) return type.scalar.bits < o.type.scalar.bits;
    if (type.lanes != o.type.lanes) return type.lanes < o.type.lanes;
    if (args.size() != o.args.size()) return args.size() < o.args.size();
    for (std::size_t i = 0; i < args.size(); ++i) {
      const Operand& a = args[i];
      const Operand& b = o.args[i];
      if (a.kind != b.kind) return a.kind < b.kind;
      if (a.name != b.name) return a.name < b.name;
      if (a.ival != b.ival) return a.ival < b.ival;
      if (a.fval != b.fval) return a.fval < b.fval;
    }
    return false;
  }
};

const Operand* const_operand(const Instr& instr) {
  for (const auto& a : instr.args) {
    if (a.kind == Operand::Kind::ConstInt) return &a;
  }
  return nullptr;
}

/// Resources of one function body (excluding replication), with the
/// synthesizer's local optimizations applied.
ResourceVec function_resources(const Module& mod, const Function& f,
                               const target::DeviceDesc& device,
                               const SynthOptions& opt) {
  ResourceVec total;
  std::set<InstrKey> seen;

  const ir::FunctionSchedule sched = ir::schedule_function(mod, f);
  std::size_t instr_idx = 0;

  // Per-lane datapath instructions.
  for (const auto& item : f.body) {
    const auto* instr = std::get_if<Instr>(&item);
    if (instr == nullptr) continue;
    const int issue = instr_idx < sched.issue_at.size()
                          ? sched.issue_at[instr_idx]
                          : 0;
    ++instr_idx;
    if (opt.enable_cse) {
      InstrKey key{instr->op, instr->type, instr->args};
      if (!seen.insert(std::move(key)).second) continue;  // merged away
    }
    const double lanes = instr->type.lanes;
    ResourceVec core;
    const Operand* c = const_operand(*instr);
    if (opt.enable_strength_reduction && c != nullptr &&
        !instr->type.scalar.is_float()) {
      core = core_resources_const_operand(instr->op, instr->type.scalar,
                                          c->ival, device);
    } else {
      core = core_resources(instr->op, instr->type.scalar, device);
    }
    total += core * lanes;

    // Delay-balancing registers: operands produced earlier than this
    // instruction's issue stage ride a register chain (Fig. 13's
    // pass-through pipeline buffers).
    for (const auto& a : instr->args) {
      if (a.kind != Operand::Kind::Local) continue;
      const auto it = sched.ready_at.find(a.name);
      const int ready = it != sched.ready_at.end() ? it->second : 0;
      if (issue > ready) {
        total.regs += static_cast<double>(issue - ready) *
                      instr->type.scalar.bits * lanes;
      }
    }
  }

  // Stream-offset buffers: each offset stream is delayed relative to the
  // furthest-ahead one; the base stream is delayed by the maximum positive
  // offset.
  const auto offsets = f.offsets();
  if (!offsets.empty()) {
    std::int64_t max_off = 0;
    for (const auto* o : offsets) max_off = std::max(max_off, o->offset);
    for (const auto* o : offsets) {
      const std::uint64_t depth = static_cast<std::uint64_t>(max_off - o->offset);
      total += offset_buffer_resources(o->type.total_bits(), depth, device);
    }
    if (max_off > 0) {
      // base stream delay line
      const auto& first = *offsets.front();
      total += offset_buffer_resources(first.type.total_bits(),
                                       static_cast<std::uint64_t>(max_off), device);
    }
  }

  // Sequential PEs add an instruction sequencer and operand register file.
  if (f.kind == FuncKind::Seq) {
    const double ni = static_cast<double>(f.instructions().size());
    total.aluts += 80 + 4.0 * ni;
    total.regs += 64;
  }

  // Child functions (coarse-grained pipelines, comb blocks) synthesize
  // once per call site — replicated hardware.
  for (const auto* call : f.calls()) {
    const Function* callee = mod.find_function(call->callee);
    if (callee != nullptr) {
      total += function_resources(mod, *callee, device, opt);
    }
  }
  return total;
}

/// Builds the flattened placement netlist: one node per instruction
/// instance (replicated per call), edges along SSA dependencies.
void build_netlist(const Module& mod, const Function& f,
                   std::vector<NetNode>& nodes) {
  std::map<std::string, int> producer;
  for (const auto& item : f.body) {
    if (const auto* instr = std::get_if<Instr>(&item)) {
      NetNode node;
      node.id = static_cast<int>(nodes.size());
      for (const auto& a : instr->args) {
        if (a.kind == Operand::Kind::Local) {
          const auto it = producer.find(a.name);
          if (it != producer.end()) node.fanin.push_back(it->second);
        }
      }
      if (!instr->result_global) producer[instr->result] = node.id;
      nodes.push_back(std::move(node));
    } else if (const auto* call = std::get_if<ir::Call>(&item)) {
      const Function* callee = mod.find_function(call->callee);
      if (callee != nullptr) build_netlist(mod, *callee, nodes);
    }
  }
}

struct PlacementResult {
  double avg_len{0};
  double crit_len{0};
};

/// Simulated-annealing placement on a square grid; returns wirelength
/// statistics. This is the deliberately expensive pass.
PlacementResult place(const std::vector<NetNode>& nodes, int effort,
                      std::uint64_t seed) {
  PlacementResult res;
  const std::size_t n = nodes.size();
  if (n < 2) return res;
  const int side = static_cast<int>(std::ceil(std::sqrt(static_cast<double>(n) * 1.3)));
  const int cells = side * side;

  std::vector<int> cell_of(n);        // node -> cell
  std::vector<int> node_in(cells, -1);  // cell -> node or -1
  for (std::size_t i = 0; i < n; ++i) {
    cell_of[i] = static_cast<int>(i);
    node_in[i] = static_cast<int>(i);
  }

  auto dist = [&](int ca, int cb) {
    const int ax = ca % side;
    const int ay = ca / side;
    const int bx = cb % side;
    const int by = cb / side;
    return std::abs(ax - bx) + std::abs(ay - by);
  };
  auto node_cost = [&](int v) {
    double c = 0;
    for (const int u : nodes[v].fanin) c += dist(cell_of[v], cell_of[u]);
    return c;
  };

  // Fanout index so move deltas account for consumers too.
  std::vector<std::vector<int>> fanout(n);
  for (std::size_t v = 0; v < n; ++v) {
    for (const int u : nodes[v].fanin) fanout[u].push_back(static_cast<int>(v));
  }
  auto incident_cost = [&](int v) {
    double c = node_cost(v);
    for (const int w : fanout[v]) c += node_cost(w);
    return c;
  };

  SplitMix64 rng(seed);
  const std::int64_t iters =
      static_cast<std::int64_t>(effort) * 400 * static_cast<std::int64_t>(n);
  double temp = static_cast<double>(side);
  const double cooling = std::pow(0.005 / temp, 1.0 / static_cast<double>(iters));

  for (std::int64_t it = 0; it < iters; ++it) {
    const int v = static_cast<int>(rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
    const int target = static_cast<int>(rng.uniform_int(0, cells - 1));
    const int other = node_in[target];
    if (other == v) continue;
    const double before =
        incident_cost(v) + (other >= 0 ? incident_cost(other) : 0.0);
    const int old_cell = cell_of[v];
    cell_of[v] = target;
    if (other >= 0) cell_of[other] = old_cell;
    node_in[target] = v;
    node_in[old_cell] = other;
    const double after =
        incident_cost(v) + (other >= 0 ? incident_cost(other) : 0.0);
    const double delta = after - before;
    if (delta > 0 && rng.next_double() >= std::exp(-delta / std::max(temp, 1e-9))) {
      // reject: undo
      cell_of[v] = old_cell;
      if (other >= 0) cell_of[other] = target;
      node_in[target] = other;
      node_in[old_cell] = v;
    }
    temp *= cooling;
  }

  double total = 0;
  double crit = 0;
  std::size_t edges = 0;
  for (std::size_t v = 0; v < n; ++v) {
    for (const int u : nodes[v].fanin) {
      const double d = dist(cell_of[v], cell_of[u]);
      total += d;
      crit = std::max(crit, d);
      ++edges;
    }
  }
  res.avg_len = edges > 0 ? total / static_cast<double>(edges) : 0.0;
  res.crit_len = crit;
  return res;
}

}  // namespace

SynthReport synthesize(const ir::Module& module,
                       const target::DeviceDesc& device,
                       const SynthOptions& options) {
  const auto t0 = std::chrono::steady_clock::now();
  SynthReport report;

  const Function* main = module.entry();
  if (main == nullptr) return report;

  report.total = function_resources(module, *main, device, options);

  // Per-function (distinct body) breakdown, single instance each.
  for (const auto& f : module.functions) {
    if (f.name == "main") continue;
    SynthOptions leaf = options;
    ResourceVec r;
    // Only the function's own body (children counted in their own rows).
    Function shallow = f;
    shallow.body.clear();
    for (const auto& item : f.body) {
      if (!std::holds_alternative<ir::Call>(item)) shallow.body.push_back(item);
    }
    Module wrapper;
    wrapper.functions.push_back(shallow);
    r = function_resources(wrapper, wrapper.functions.front(), device, leaf);
    report.per_function[f.name] = r;
  }

  // Stream control per port.
  for (const auto& p : module.ports) {
    std::uint64_t range = module.meta.global_size;
    if (const auto* so = module.find_streamobj(p.streamobj)) {
      if (const auto* mo = module.find_memobj(so->memobj)) range = mo->size_words;
    }
    report.total += stream_control_resources(p.type.total_bits(), range, device);
  }

  // Global control & interconnect overhead the cost model does not see.
  report.total.aluts = std::round(report.total.aluts * 1.015);
  report.total.regs = std::round(report.total.regs * 1.01);

  if (options.enable_retiming) {
    report.total.regs = std::round(report.total.regs * 0.97);
  }

  // Placement and Fmax.
  std::vector<NetNode> nodes;
  build_netlist(module, *main, nodes);
  report.netlist_nodes = nodes.size();
  const PlacementResult placement =
      place(nodes, std::max(1, options.effort), options.seed);
  report.avg_wirelength = placement.avg_len;
  report.critical_wirelength = placement.crit_len;
  const double t_logic_ns = 2.2;
  const double t_wire_ns = 0.30 * placement.crit_len;
  const double fmax_wire = 1e9 / (t_logic_ns + t_wire_ns);
  report.fmax_hz = std::min(device.fmax_hz, fmax_wire);

  report.util = utilization(report.total, device);
  report.fits = report.util.fits();

  const auto t1 = std::chrono::steady_clock::now();
  report.synth_seconds =
      std::chrono::duration_cast<std::chrono::duration<double>>(t1 - t0).count();
  return report;
}

}  // namespace tytra::fabric
