#include "tytra/fabric/cores.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "tytra/support/rng.hpp"

namespace tytra::fabric {

namespace {

using ir::Opcode;
using ir::ScalarKind;
using ir::ScalarType;

bool is_xilinx(const target::DeviceDesc& d) {
  return d.family.find("virtex") != std::string::npos ||
         d.family.find("kintex") != std::string::npos ||
         d.family.find("ultrascale") != std::string::npos;
}

/// Deterministic sub-percent jitter modelling synthesis noise. The value
/// is stable per (family, op, width) so calibration is reproducible.
double jitter(const target::DeviceDesc& d, Opcode op, std::uint32_t w,
              std::uint32_t salt) {
  SplitMix64 rng(fnv1a(d.family) ^ (static_cast<std::uint64_t>(op) << 32) ^
                 (static_cast<std::uint64_t>(w) << 16) ^ salt);
  return 1.0 + rng.uniform(-0.005, 0.005);
}

double ceil_log2(double x) { return x <= 1 ? 0.0 : std::ceil(std::log2(x)); }

/// Float-core base resources (f32); f64 scales by ~3.6x logic, 4x DSP.
ResourceVec float_core(Opcode op, std::uint16_t bits,
                       const target::DeviceDesc& d) {
  ResourceVec r;
  switch (op) {
    case Opcode::Add:
    case Opcode::Sub:
      r = {480, 610, 0, 0};
      break;
    case Opcode::Mul:
      r = {115, 210, 0, is_xilinx(d) ? 2.0 : 1.0};
      break;
    case Opcode::Mac:
      r = {540, 760, 0, is_xilinx(d) ? 2.0 : 1.0};
      break;
    case Opcode::Div:
      r = {760, 1400, 0, 0};
      break;
    case Opcode::Sqrt:
      r = {460, 720, 0, 0};
      break;
    case Opcode::Exp:
      r = {930, 1350, 2048, 4};
      break;
    case Opcode::Recip:
      r = {520, 810, 1024, 2};
      break;
    case Opcode::CmpEq:
    case Opcode::CmpNe:
    case Opcode::CmpLt:
    case Opcode::CmpLe:
    case Opcode::CmpGt:
    case Opcode::CmpGe:
      r = {60, 34, 0, 0};
      break;
    case Opcode::Select:
      r = {static_cast<double>(bits), static_cast<double>(bits), 0, 0};
      break;
    case Opcode::Min:
    case Opcode::Max:
      r = {110, 70, 0, 0};
      break;
    case Opcode::Abs:
    case Opcode::Neg:
      r = {2, static_cast<double>(bits), 0, 0};
      break;
    case Opcode::Mov:
      r = {0, static_cast<double>(bits), 0, 0};
      break;
    default:
      r = {200, 200, 0, 0};
      break;
  }
  if (bits == 64) {
    r.aluts *= 3.6;
    r.regs *= 3.4;
    r.dsps *= 4.0;
    r.bram_bits *= 2.0;
  } else if (bits == 16) {
    r.aluts *= 0.45;
    r.regs *= 0.45;
  }
  return r;
}

}  // namespace

int multiplier_dsps(std::uint16_t bits, const target::DeviceDesc& device) {
  // Stratix-V DSP blocks natively support 18x18 (one block) / 27x27; the
  // Xilinx DSP48E1 is 25x18. Wider products tile several blocks — the
  // "clearly identifiable points of discontinuity" of Fig. 9.
  if (is_xilinx(device)) {
    if (bits <= 17) return 1;
    if (bits <= 24) return 2;
    if (bits <= 34) return 4;
    if (bits <= 51) return 6;
    return 8;
  }
  if (bits <= 18) return 1;
  if (bits <= 27) return 2;
  if (bits <= 36) return 4;
  if (bits <= 54) return 6;
  return 8;
}

ResourceVec core_resources(ir::Opcode op, const ScalarType& type,
                           const target::DeviceDesc& device) {
  const std::uint16_t w = type.bits;
  const double wd = w;
  if (type.is_float()) {
    ResourceVec r = float_core(op, w, device);
    const double j = jitter(device, op, w, 7);
    r.aluts = std::round(r.aluts * j);
    r.regs = std::round(r.regs * j);
    return r;
  }

  ResourceVec r;
  const double lut_factor = is_xilinx(device) ? 0.92 : 1.0;  // 6-LUT packing
  switch (op) {
    case Opcode::Add:
    case Opcode::Sub:
      r.aluts = wd;
      r.regs = wd;
      break;
    case Opcode::Mul: {
      r.dsps = multiplier_dsps(w, device);
      // Glue/alignment logic grows piecewise with each extra DSP tile.
      const int tiles = multiplier_dsps(w, device);
      r.aluts = 4.0 + 0.35 * wd + 6.5 * (tiles - 1);
      r.regs = 2.0 * wd;
      break;
    }
    case Opcode::Mac: {
      const int tiles = multiplier_dsps(w, device);
      r.dsps = tiles;  // accumulation folds into the DSP post-adder
      r.aluts = 3.0 + 0.30 * wd + 6.0 * (tiles - 1);
      r.regs = 2.2 * wd;
      break;
    }
    case Opcode::Div:
    case Opcode::Rem:
      // The paper's measured Stratix-V law (Fig. 9): x^2 + 3.7x - 10.6.
      r.aluts = std::max(1.0, wd * wd + 3.7 * wd - 10.6);
      r.regs = 0.5 * wd * wd + 2.0 * wd;
      break;
    case Opcode::Sqrt:
      r.aluts = 0.55 * wd * wd + 2.0 * wd;
      r.regs = 0.30 * wd * wd + 2.0 * wd;
      break;
    case Opcode::Shl:
    case Opcode::LShr:
    case Opcode::AShr:
      r.aluts = wd * ceil_log2(wd) * 0.5;
      r.regs = wd;
      break;
    case Opcode::And:
    case Opcode::Or:
    case Opcode::Xor:
      r.aluts = std::ceil(wd / 2.0);
      r.regs = wd;
      break;
    case Opcode::Not:
      r.aluts = std::ceil(wd / 4.0);
      r.regs = wd;
      break;
    case Opcode::CmpEq:
    case Opcode::CmpNe:
      r.aluts = std::ceil(wd / 2.0) + 1;
      r.regs = 1;
      break;
    case Opcode::CmpLt:
    case Opcode::CmpLe:
    case Opcode::CmpGt:
    case Opcode::CmpGe:
      r.aluts = 0.7 * wd + 2;
      r.regs = 1;
      break;
    case Opcode::Select:
      r.aluts = wd;
      r.regs = wd;
      break;
    case Opcode::Min:
    case Opcode::Max:
      r.aluts = 1.5 * wd + 2;
      r.regs = wd;
      break;
    case Opcode::Abs:
      r.aluts = wd;
      r.regs = wd;
      break;
    case Opcode::Neg:
      r.aluts = std::ceil(wd / 2.0);
      r.regs = wd;
      break;
    case Opcode::Exp:
    case Opcode::Recip:
      // Integer variants are rejected by the verifier; keep a defined value.
      r.aluts = 4.0 * wd;
      r.regs = 4.0 * wd;
      break;
    case Opcode::Mov:
      r.aluts = 0;
      r.regs = wd;
      break;
  }
  const double j = jitter(device, op, w, 3);
  r.aluts = std::round(r.aluts * lut_factor * j);
  r.regs = std::round(r.regs * j);
  return r;
}

ResourceVec core_resources_const_operand(ir::Opcode op, const ScalarType& type,
                                         std::int64_t constant,
                                         const target::DeviceDesc& device) {
  ResourceVec full = core_resources(op, type, device);
  if (type.is_float()) return full;  // no strength reduction for floats
  const auto uc = static_cast<std::uint64_t>(constant < 0 ? -constant : constant);
  const int pop = std::popcount(uc);
  const double wd = type.bits;
  switch (op) {
    case Opcode::Mul:
      if (uc == 0) return {0, static_cast<double>(type.bits), 0, 0};
      if (std::has_single_bit(uc)) {
        // Power of two: pure wiring plus the output register.
        return {0, wd, 0, 0};
      }
      if (pop <= 4) {
        // Shift-add network: one adder per set bit beyond the first.
        return {wd * (pop - 1), wd * pop, 0, 0};
      }
      return full;  // falls back to the DSP multiplier
    case Opcode::Div:
    case Opcode::Rem:
      if (std::has_single_bit(uc) && uc != 0) {
        return {op == Opcode::Div ? 0.0 : std::ceil(wd / 2.0), wd, 0, 0};
      }
      // Constant division via multiply-by-reciprocal + shift.
      return {full.aluts * 0.12 + 8,
              full.regs * 0.25 + 2 * wd,
              0,
              static_cast<double>(multiplier_dsps(type.bits, device))};
    case Opcode::Add:
    case Opcode::Sub:
      if (uc == 0) return {0, wd, 0, 0};
      return full;
    default:
      return full;
  }
}

ResourceVec offset_buffer_resources(std::uint32_t bits, std::uint64_t depth_words,
                                    const target::DeviceDesc& device) {
  ResourceVec r;
  if (depth_words == 0) return r;
  const double total_bits = static_cast<double>(bits) * static_cast<double>(depth_words);
  // Shallow delays stay in the register fabric; deeper ones spill to BRAM
  // with a small addressing/control FSM.
  if (total_bits <= 640) {
    r.regs = total_bits;
    r.aluts = static_cast<double>(bits);  // shift-enable fanout
    return r;
  }
  r.bram_bits = total_bits;
  r.aluts = 24 + ceil_log2(static_cast<double>(depth_words)) * 2.0;
  r.regs = 2.0 * bits + 16;
  (void)device;
  return r;
}

ResourceVec stream_control_resources(std::uint32_t bits,
                                     std::uint64_t addr_range_words,
                                     const target::DeviceDesc& device) {
  ResourceVec r;
  const double addr_bits = std::max(1.0, ceil_log2(static_cast<double>(
                                              std::max<std::uint64_t>(addr_range_words, 2))));
  r.aluts = 18 + 1.5 * addr_bits + 0.25 * bits;  // counter + compare + handshake
  r.regs = 12 + addr_bits + bits;                // address reg + skid buffer
  (void)device;
  return r;
}

}  // namespace tytra::fabric
