#include "tytra/membench/dram.hpp"

#include <algorithm>
#include <cmath>

namespace tytra::membench {

DramModel::DramModel(const target::DramParams& params, double bank_overlap)
    : params_(params), bank_overlap_(bank_overlap) {}

double DramModel::peak_bw() const {
  return params_.io_clock_hz * params_.bus_bytes;
}

double DramModel::transfer_seconds(std::uint64_t bytes,
                                   ir::AccessPattern pattern,
                                   std::uint64_t stride_bytes,
                                   std::uint32_t access_bytes) const {
  if (bytes == 0) return params_.setup_seconds;
  double cycles = 0;
  if (pattern == ir::AccessPattern::Contiguous ||
      stride_bytes <= params_.burst_bytes) {
    // Streaming: every bus beat carries useful data; the residual cost of
    // row activations not hidden by bank interleaving is spread over the
    // beats of a row.
    const double beats =
        std::ceil(static_cast<double>(bytes) / params_.bus_bytes);
    const double beats_per_row =
        static_cast<double>(params_.row_bytes) / params_.bus_bytes;
    const double miss_overhead =
        params_.row_miss_cycles * (1.0 - bank_overlap_) / beats_per_row;
    cycles = beats * (1.0 + miss_overhead);
  } else {
    // Strided beyond a burst: each access opens a fresh row and discards
    // most of the fetched burst.
    const double accesses =
        std::ceil(static_cast<double>(bytes) / std::max<std::uint32_t>(access_bytes, 1));
    const double burst_beats =
        static_cast<double>(params_.burst_bytes) / params_.bus_bytes;
    cycles = accesses * (burst_beats + params_.row_miss_cycles);
  }
  return cycles / params_.io_clock_hz + params_.setup_seconds;
}

double DramModel::sustained_bw(std::uint64_t bytes, ir::AccessPattern pattern,
                               std::uint64_t stride_bytes,
                               std::uint32_t access_bytes) const {
  const double t = transfer_seconds(bytes, pattern, stride_bytes, access_bytes);
  return t > 0 ? static_cast<double>(bytes) / t : 0.0;
}

double DramModel::sustained_bw_random(std::uint64_t bytes,
                                      std::uint32_t access_bytes) const {
  // Random word access defeats both the row buffer and burst reuse: model
  // it as strided access with a stride beyond one row.
  return sustained_bw(bytes, ir::AccessPattern::Strided,
                      params_.row_bytes + params_.burst_bytes, access_bytes);
}

HostLinkModel::HostLinkModel(const target::HostLinkParams& params)
    : params_(params) {}

double HostLinkModel::transfer_seconds(std::uint64_t bytes) const {
  const double effective = params_.peak_bw * params_.efficiency;
  return static_cast<double>(bytes) / effective + params_.latency_seconds;
}

double HostLinkModel::sustained_bw(std::uint64_t bytes) const {
  const double t = transfer_seconds(bytes);
  return t > 0 ? static_cast<double>(bytes) / t : 0.0;
}

}  // namespace tytra::membench
