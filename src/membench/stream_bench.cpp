#include "tytra/membench/stream_bench.hpp"

#include <algorithm>
#include <cmath>

#include "tytra/support/failpoint.hpp"

namespace tytra::membench {

std::vector<std::uint64_t> default_dims() {
  return {128, 256, 512, 768, 1024, 1536, 2048, 3072, 4096, 5120, 6144};
}

std::vector<BandwidthSample> run_stream_bench(
    const target::DeviceDesc& device, const std::vector<std::uint64_t>& dims) {
  const DramModel dram(device.dram);
  std::vector<BandwidthSample> out;
  out.reserve(dims.size());
  for (const std::uint64_t dim : dims) {
    BandwidthSample s;
    s.dim = dim;
    s.bytes = dim * dim * device.word_bytes;
    s.contiguous_bps =
        dram.sustained_bw(s.bytes, ir::AccessPattern::Contiguous, 0,
                          device.word_bytes);
    s.strided_bps =
        dram.sustained_bw(s.bytes, ir::AccessPattern::Strided,
                          dim * device.word_bytes, device.word_bytes);
    out.push_back(s);
  }
  return out;
}

BandwidthTable BandwidthTable::measure(const target::DeviceDesc& device) {
  failpoint::maybe_throw("membench.measure");
  // Calibration measures below the Fig. 10 sweep as well, so the table
  // covers the small transfers kernels with modest NDRanges produce. The
  // ladder steps by ~sqrt(2) in dim (one octave in bytes): the sustained
  // bandwidth curve's latency-amortization knee is sharply convex, and
  // octave-wide gaps made the log-linear interpolation overestimate
  // mid-gap transfers by >20% against the DRAM model it samples.
  std::vector<std::uint64_t> dims = {8, 12, 16, 24, 32, 48, 64, 96, 192, 384};
  for (const std::uint64_t d : default_dims()) dims.push_back(d);
  std::sort(dims.begin(), dims.end());
  dims.erase(std::unique(dims.begin(), dims.end()), dims.end());
  return from_samples(run_stream_bench(device, dims));
}

BandwidthTable BandwidthTable::from_samples(
    const std::vector<BandwidthSample>& samples) {
  BandwidthTable table;
  table.samples_ = samples;
  std::vector<double> xs;
  std::vector<double> cont;
  std::vector<double> strided;
  for (const auto& s : samples) {
    if (s.bytes == 0) continue;
    xs.push_back(std::log2(static_cast<double>(s.bytes)));
    cont.push_back(s.contiguous_bps);
    strided.push_back(s.strided_bps);
  }
  table.contiguous_ = tytra::PiecewiseLinear::through_points(xs, cont);
  table.strided_ = tytra::PiecewiseLinear::through_points(xs, strided);
  return table;
}

double BandwidthTable::sustained(std::uint64_t bytes, ir::AccessPattern pattern,
                                 std::uint64_t stride_words) const {
  if (empty() || bytes == 0) return 0.0;
  // Saturate outside the measured range: the empirical table carries no
  // information beyond its end points, so clamp rather than extrapolate.
  double x = std::log2(static_cast<double>(bytes));
  const auto& knots = contiguous_.knots();
  x = std::clamp(x, knots.front().x, knots.back().x);
  // Small strides still stream efficiently; the empirical table's strided
  // column was measured at stride >= one row.
  const bool effectively_contiguous =
      pattern == ir::AccessPattern::Contiguous || stride_words <= 4;
  const double bw =
      effectively_contiguous ? contiguous_.eval(x) : strided_.eval(x);
  return std::max(bw, 1.0);
}

double BandwidthTable::rho(std::uint64_t bytes, ir::AccessPattern pattern,
                           double peak_bps, std::uint64_t stride_words) const {
  if (peak_bps <= 0) return 1.0;
  return std::min(1.0, sustained(bytes, pattern, stride_words) / peak_bps);
}

void BandwidthTable::save(binio::Encoder& enc) const {
  enc.u64(samples_.size());
  for (const BandwidthSample& s : samples_) {
    enc.u64(s.dim);
    enc.u64(s.bytes);
    enc.f64(s.contiguous_bps);
    enc.f64(s.strided_bps);
  }
}

BandwidthTable BandwidthTable::load(binio::Decoder& dec) {
  const std::uint64_t count = dec.u64();
  if (!dec.fits(count, 4 * 8)) return {};
  std::vector<BandwidthSample> samples;
  samples.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count && dec.ok(); ++i) {
    BandwidthSample s;
    s.dim = dec.u64();
    s.bytes = dec.u64();
    s.contiguous_bps = dec.f64();
    s.strided_bps = dec.f64();
    samples.push_back(s);
  }
  if (!dec.ok()) return {};
  return from_samples(samples);
}

}  // namespace tytra::membench
