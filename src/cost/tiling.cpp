#include "tytra/cost/tiling.hpp"

#include <algorithm>

namespace tytra::cost {

bool tile_fits(const target::DeviceDesc& device, std::uint64_t tile_words,
               double nwpt) {
  // Double-buffered staging of every stream of the tuple.
  const double bits = static_cast<double>(tile_words) * nwpt *
                      device.word_bytes * 8.0 * 2.0;
  const double avail =
      static_cast<double>(device.resources.bram_bits) * (1.0 - device.shell_overhead);
  return bits <= avail * 0.9;  // leave headroom for offset buffers
}

ThroughputEstimate ekit_tiled(const EkitInputs& inputs,
                              std::uint64_t tile_words,
                              const DeviceCostDb& db) {
  ThroughputEstimate out;
  const ir::DesignParams& d = inputs.design;
  if (d.fd <= 0 || d.ngs == 0 || tile_words == 0) return out;

  const double ngs = static_cast<double>(d.ngs);
  const double wb = inputs.word_bytes;
  const double tile_bytes =
      static_cast<double>(std::min<std::uint64_t>(tile_words, d.ngs)) * d.nwpt * wb;
  const double total_bytes = ngs * d.nwpt * wb;

  // Host transfer amortized over NKI (form-B style residency).
  double t_host = total_bytes / std::max(1.0, inputs.hpb * inputs.rho_h);
  t_host /= std::max<std::uint32_t>(d.nki, 1);

  // Staging: the whole range moves through DRAM once per instance, but at
  // the sustained bandwidth of tile-sized transfers.
  const double tile_bw = db.bandwidth().sustained(
      static_cast<std::uint64_t>(std::max(1.0, tile_bytes)),
      ir::AccessPattern::Contiguous);
  const double t_stage = total_bytes / std::max(1.0, tile_bw);

  // Compute (reads from local memory: never DRAM-throttled).
  const double t_compute =
      (ngs * d.nwpt * d.nto * d.ni) / (d.fd * d.knl * d.dv);

  // Double buffering overlaps staging and compute; one tile of priming
  // latency remains, plus the usual offset/pipe fill.
  const double t_first_tile = tile_bytes / std::max(1.0, tile_bw);
  const double t_offset =
      (static_cast<double>(d.noff) * wb) / std::max(1.0, tile_bw);
  const double t_fill = static_cast<double>(d.kpd) / d.fd;

  const double t_steady = std::max(t_stage, t_compute);
  out.t_host = t_host;
  out.t_offset_fill = t_offset;
  out.t_pipe_fill = t_fill + t_first_tile;
  out.t_mem_stream = t_stage;
  out.t_compute = t_compute;
  out.seconds_per_instance = t_host + t_offset + t_fill + t_first_tile + t_steady;
  out.ekit = 1.0 / out.seconds_per_instance;
  out.cycles_per_instance =
      (out.seconds_per_instance - t_host) * d.fd;
  out.limiting =
      t_steady == t_compute ? Wall::Compute : Wall::DramBandwidth;
  if (t_host > t_steady) out.limiting = Wall::HostBandwidth;
  return out;
}

std::optional<TileChoice> best_tile(const ir::Module& module,
                                    const DeviceCostDb& db) {
  const EkitInputs inputs = resolve_inputs(module, db);
  std::optional<TileChoice> best;
  for (std::uint64_t tile = 256; tile <= inputs.design.ngs * 2; tile <<= 1) {
    const std::uint64_t clamped = std::min<std::uint64_t>(tile, inputs.design.ngs);
    if (!tile_fits(db.device(), clamped, inputs.design.nwpt)) break;
    const ThroughputEstimate est = ekit_tiled(inputs, clamped, db);
    if (!best || est.ekit > best->estimate.ekit) {
      best = TileChoice{clamped, est};
    }
    if (clamped == inputs.design.ngs) break;
  }
  return best;
}

}  // namespace tytra::cost
