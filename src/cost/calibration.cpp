#include "tytra/cost/calibration.hpp"

#include <chrono>
#include <cmath>

#include "tytra/membench/dram.hpp"
#include "tytra/support/failpoint.hpp"

namespace tytra::cost {

namespace {

using ir::Opcode;
using ir::ScalarKind;
using ir::ScalarType;

/// Op classes whose ALUT law is quadratic in bit-width (array-of-cells
/// structures: dividers, square roots).
bool quadratic_law(Opcode op) {
  switch (op) {
    case Opcode::Div:
    case Opcode::Rem:
    case Opcode::Sqrt:
      return true;
    default:
      return false;
  }
}

/// Op classes whose logic law is piecewise linear with discontinuities
/// (multiplier DSP tiles, barrel-shifter stage counts): captured with a
/// dense probe sweep, as the paper does for the multiplier of Fig. 9.
bool piecewise_law(Opcode op) {
  switch (op) {
    case Opcode::Mul:
    case Opcode::Mac:
    case Opcode::Shl:
    case Opcode::LShr:
    case Opcode::AShr:
      return true;
    default:
      return false;
  }
}

OpLaw fit_int_law(Opcode op, const target::DeviceDesc& device) {
  OpLaw law;
  law.fit_degree = quadratic_law(op) ? 2 : 1;

  std::vector<double> xs;
  std::vector<double> aluts;
  std::vector<double> regs;
  std::vector<double> bram;
  for (const int w : DeviceCostDb::kIntProbeWidths) {
    const ResourceVec r = fabric::core_resources(
        op, ScalarType::uint(static_cast<std::uint16_t>(w)), device);
    xs.push_back(w);
    aluts.push_back(r.aluts);
    regs.push_back(r.regs);
    bram.push_back(r.bram_bits);
  }
  law.aluts = tytra::Polynomial::fit(xs, aluts, law.fit_degree);
  law.regs = tytra::Polynomial::fit(xs, regs, law.fit_degree);
  law.bram_bits = tytra::Polynomial::fit(xs, bram, 1);

  // DSP usage is discrete with discontinuities: probe densely once, keep
  // the step structure (Fig. 9's multiplier DSP curve).
  std::vector<double> dense_xs;
  std::vector<double> dsp_ys;
  std::vector<double> dense_aluts;
  std::vector<double> dense_regs;
  for (int w = 2; w <= 64; w += 1) {
    const ResourceVec r = fabric::core_resources(
        op, ScalarType::uint(static_cast<std::uint16_t>(w)), device);
    dense_xs.push_back(w);
    dsp_ys.push_back(r.dsps);
    dense_aluts.push_back(r.aluts);
    dense_regs.push_back(r.regs);
  }
  law.dsps = tytra::StepModel::from_samples(dense_xs, dsp_ys);
  if (piecewise_law(op)) {
    law.aluts_pwl = tytra::PiecewiseLinear::through_points(dense_xs, dense_aluts);
    law.regs_pwl = tytra::PiecewiseLinear::through_points(dense_xs, dense_regs);
  }
  return law;
}

}  // namespace

DeviceCostDb DeviceCostDb::calibrate(const target::DeviceDesc& device) {
  // Calibration is the probe/measure phase: a fault here (the failpoint
  // stands in for a flaky probe run) must surface before any DSE work
  // consumes the half-built table.
  failpoint::maybe_throw("calibration.measure");
  const auto t0 = std::chrono::steady_clock::now();
  DeviceCostDb db;
  db.device_ = device;

  for (int i = 0; i < ir::kNumOpcodes; ++i) {
    const auto op = static_cast<Opcode>(i);
    const ir::OpInfo& info = ir::op_info(op);
    if (info.integer_ok) db.int_laws_[op] = fit_int_law(op, device);
    if (info.float_ok) {
      for (const int w : {16, 32, 64}) {
        ScalarType t{ScalarKind::Float, static_cast<std::uint16_t>(w), 0};
        db.float_costs_[{op, w}] = fabric::core_resources(op, t, device);
      }
    }
  }

  db.bandwidth_ = membench::BandwidthTable::measure(device);

  // Host-link sweep (measured through the link model, kept as a table).
  const membench::HostLinkModel host(device.host);
  std::vector<double> xs;
  std::vector<double> bw;
  for (std::uint64_t bytes = 4096; bytes <= (1ULL << 31); bytes <<= 1) {
    xs.push_back(std::log2(static_cast<double>(bytes)));
    bw.push_back(host.sustained_bw(bytes));
  }
  db.host_bw_ = tytra::PiecewiseLinear::through_points(xs, bw);

  const auto t1 = std::chrono::steady_clock::now();
  db.calib_seconds_ =
      std::chrono::duration_cast<std::chrono::duration<double>>(t1 - t0).count();
  return db;
}

const OpLaw& DeviceCostDb::int_law(ir::Opcode op) const {
  const auto it = int_laws_.find(op);
  if (it == int_laws_.end()) {
    throw std::invalid_argument("DeviceCostDb: no integer law for op '" +
                                std::string(ir::opcode_name(op)) + "'");
  }
  return it->second;
}

ResourceVec DeviceCostDb::op_cost(ir::Opcode op,
                                  const ir::ScalarType& type) const {
  if (type.is_float()) {
    // Nearest probed float width.
    const int w = type.bits <= 16 ? 16 : (type.bits <= 32 ? 32 : 64);
    const auto it = float_costs_.find({op, w});
    return it != float_costs_.end() ? it->second : ResourceVec{};
  }
  const auto it = int_laws_.find(op);
  if (it == int_laws_.end()) return {};
  const OpLaw& law = it->second;
  const double w = type.bits;
  ResourceVec r;
  r.aluts = std::max(0.0, std::round(law.aluts_pwl.empty()
                                         ? law.aluts.eval(w)
                                         : law.aluts_pwl.eval(w)));
  r.regs = std::max(0.0, std::round(law.regs_pwl.empty() ? law.regs.eval(w)
                                                         : law.regs_pwl.eval(w)));
  r.bram_bits = std::max(0.0, std::round(law.bram_bits.eval(w)));
  r.dsps = std::max(0.0, law.dsps.eval(w));
  return r;
}

ResourceVec DeviceCostDb::op_cost_const(ir::Opcode op,
                                        const ir::ScalarType& type,
                                        std::int64_t constant) const {
  if (type.is_float()) return op_cost(op, type);
  const auto uc =
      static_cast<std::uint64_t>(constant < 0 ? -constant : constant);
  const bool pow2 = uc != 0 && (uc & (uc - 1)) == 0;
  const double w = type.bits;
  switch (op) {
    case ir::Opcode::Mul:
      if (uc == 0 || pow2) return {0, w, 0, 0};
      break;
    case ir::Opcode::Div:
      if (pow2) return {0, w, 0, 0};
      break;
    case ir::Opcode::Rem:
      if (pow2) return {std::ceil(w / 2.0), w, 0, 0};
      break;
    default:
      break;
  }
  return op_cost(op, type);
}

ResourceVec DeviceCostDb::offset_buffer_cost(std::uint32_t bits,
                                             std::uint64_t depth_words) const {
  // Structural law (same functional form the probes reveal), with the
  // model's FIFO guard-slot margin on BRAM-backed buffers.
  ResourceVec r;
  if (depth_words == 0) return r;
  const double total_bits = static_cast<double>(bits) * static_cast<double>(depth_words);
  if (total_bits <= 640) {
    r.regs = total_bits;
    r.aluts = bits;
    return r;
  }
  r.bram_bits = std::ceil(total_bits * 1.003);  // guard slots
  r.aluts = 24 + std::ceil(std::log2(static_cast<double>(depth_words))) * 2.0;
  r.regs = 2.0 * bits + 16;
  return r;
}

ResourceVec DeviceCostDb::stream_control_cost(
    std::uint32_t bits, std::uint64_t addr_range_words) const {
  const double addr_bits = std::max(
      1.0, std::ceil(std::log2(static_cast<double>(
               std::max<std::uint64_t>(addr_range_words, 2)))));
  ResourceVec r;
  r.aluts = 18 + 1.5 * addr_bits + 0.25 * bits;
  r.regs = 12 + addr_bits + bits;
  return r;
}

double DeviceCostDb::host_sustained(std::uint64_t bytes) const {
  if (bytes == 0) return device_.host.peak_bw * device_.host.efficiency;
  return std::max(1.0, host_bw_.eval(std::log2(static_cast<double>(bytes))));
}

// ---------------------------------------------------------------------------
// Snapshot serialization
// ---------------------------------------------------------------------------

namespace {

void save_resource_vec(binio::Encoder& enc, const ResourceVec& v) {
  enc.f64(v.aluts);
  enc.f64(v.regs);
  enc.f64(v.bram_bits);
  enc.f64(v.dsps);
}

ResourceVec load_resource_vec(binio::Decoder& dec) {
  ResourceVec v;
  v.aluts = dec.f64();
  v.regs = dec.f64();
  v.bram_bits = dec.f64();
  v.dsps = dec.f64();
  return v;
}

void save_poly(binio::Encoder& enc, const tytra::Polynomial& p) {
  enc.u64(p.coeffs().size());
  for (double c : p.coeffs()) enc.f64(c);
}

tytra::Polynomial load_poly(binio::Decoder& dec) {
  const std::uint64_t count = dec.u64();
  if (!dec.fits(count, 8)) return {};
  std::vector<double> coeffs;
  coeffs.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count && dec.ok(); ++i) {
    coeffs.push_back(dec.f64());
  }
  if (!dec.ok()) return {};
  return tytra::Polynomial(std::move(coeffs));
}

void save_pwl(binio::Encoder& enc, const tytra::PiecewiseLinear& p) {
  enc.u64(p.knots().size());
  for (const auto& k : p.knots()) {
    enc.f64(k.x);
    enc.f64(k.y);
  }
}

/// Pre-validates the strictly-increasing-x invariant the ctor would throw
/// on, turning a corrupt payload into a clean decode failure.
tytra::PiecewiseLinear load_pwl(binio::Decoder& dec) {
  const std::uint64_t count = dec.u64();
  if (!dec.fits(count, 2 * 8)) return {};
  std::vector<tytra::PiecewiseLinear::Knot> knots;
  knots.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count && dec.ok(); ++i) {
    tytra::PiecewiseLinear::Knot k;
    k.x = dec.f64();
    k.y = dec.f64();
    if (!knots.empty() && !(knots.back().x < k.x)) {
      dec.fail("calibration: piecewise-linear knots out of order");
      return {};
    }
    knots.push_back(k);
  }
  if (!dec.ok()) return {};
  return tytra::PiecewiseLinear(std::move(knots));
}

void save_steps(binio::Encoder& enc, const tytra::StepModel& m) {
  enc.u64(m.steps().size());
  for (const auto& s : m.steps()) {
    enc.f64(s.from_x);
    enc.f64(s.value);
  }
}

tytra::StepModel load_steps(binio::Decoder& dec) {
  const std::uint64_t count = dec.u64();
  if (!dec.fits(count, 2 * 8)) return {};
  std::vector<tytra::StepModel::Step> steps;
  steps.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count && dec.ok(); ++i) {
    tytra::StepModel::Step s;
    s.from_x = dec.f64();
    s.value = dec.f64();
    if (!steps.empty() && !(steps.back().from_x < s.from_x)) {
      dec.fail("calibration: step-model breakpoints out of order");
      return {};
    }
    steps.push_back(s);
  }
  if (!dec.ok()) return {};
  return tytra::StepModel(std::move(steps));
}

void save_op_law(binio::Encoder& enc, const OpLaw& law) {
  save_poly(enc, law.aluts);
  save_poly(enc, law.regs);
  save_poly(enc, law.bram_bits);
  save_steps(enc, law.dsps);
  enc.i64(law.fit_degree);
  save_pwl(enc, law.aluts_pwl);
  save_pwl(enc, law.regs_pwl);
}

OpLaw load_op_law(binio::Decoder& dec) {
  OpLaw law;
  law.aluts = load_poly(dec);
  law.regs = load_poly(dec);
  law.bram_bits = load_poly(dec);
  law.dsps = load_steps(dec);
  law.fit_degree = static_cast<int>(dec.i64());
  law.aluts_pwl = load_pwl(dec);
  law.regs_pwl = load_pwl(dec);
  return law;
}

void save_device(binio::Encoder& enc, const target::DeviceDesc& dev) {
  enc.str(dev.name);
  enc.str(dev.family);
  enc.u64(dev.resources.aluts);
  enc.u64(dev.resources.regs);
  enc.u64(dev.resources.bram_bits);
  enc.u64(dev.resources.dsps);
  enc.f64(dev.fmax_hz);
  enc.f64(dev.default_freq_hz);
  enc.f64(dev.dram.io_clock_hz);
  enc.f64(dev.dram.bus_bytes);
  enc.f64(dev.dram.burst_bytes);
  enc.f64(dev.dram.row_bytes);
  enc.f64(dev.dram.row_miss_cycles);
  enc.f64(dev.dram.setup_seconds);
  enc.f64(dev.dram_peak_bw);
  enc.f64(dev.host.peak_bw);
  enc.f64(dev.host.efficiency);
  enc.f64(dev.host.latency_seconds);
  enc.f64(dev.power.static_watts);
  enc.f64(dev.power.alut_nw);
  enc.f64(dev.power.dsp_nw);
  enc.f64(dev.power.bram_kb_nw);
  enc.u32(dev.word_bytes);
  enc.f64(dev.shell_overhead);
}

target::DeviceDesc load_device(binio::Decoder& dec) {
  target::DeviceDesc dev;
  dev.name = dec.str();
  dev.family = dec.str();
  dev.resources.aluts = dec.u64();
  dev.resources.regs = dec.u64();
  dev.resources.bram_bits = dec.u64();
  dev.resources.dsps = dec.u64();
  dev.fmax_hz = dec.f64();
  dev.default_freq_hz = dec.f64();
  dev.dram.io_clock_hz = dec.f64();
  dev.dram.bus_bytes = dec.f64();
  dev.dram.burst_bytes = dec.f64();
  dev.dram.row_bytes = dec.f64();
  dev.dram.row_miss_cycles = dec.f64();
  dev.dram.setup_seconds = dec.f64();
  dev.dram_peak_bw = dec.f64();
  dev.host.peak_bw = dec.f64();
  dev.host.efficiency = dec.f64();
  dev.host.latency_seconds = dec.f64();
  dev.power.static_watts = dec.f64();
  dev.power.alut_nw = dec.f64();
  dev.power.dsp_nw = dec.f64();
  dev.power.bram_kb_nw = dec.f64();
  dev.word_bytes = dec.u32();
  dev.shell_overhead = dec.f64();
  return dev;
}

}  // namespace

void DeviceCostDb::save(binio::Encoder& enc) const {
  save_device(enc, device_);
  enc.u64(int_laws_.size());
  for (const auto& [op, law] : int_laws_) {
    enc.u8(static_cast<std::uint8_t>(op));
    save_op_law(enc, law);
  }
  enc.u64(float_costs_.size());
  for (const auto& [key, vec] : float_costs_) {
    enc.u8(static_cast<std::uint8_t>(key.first));
    enc.i64(key.second);
    save_resource_vec(enc, vec);
  }
  bandwidth_.save(enc);
  save_pwl(enc, host_bw_);
  enc.f64(calib_seconds_);
}

tytra::Result<DeviceCostDb> DeviceCostDb::load(binio::Decoder& dec) {
  DeviceCostDb db;
  db.device_ = load_device(dec);

  const std::uint64_t laws = dec.u64();
  if (dec.fits(laws, 8)) {
    for (std::uint64_t i = 0; i < laws && dec.ok(); ++i) {
      const std::uint8_t op = dec.u8();
      if (op >= static_cast<std::uint8_t>(ir::kNumOpcodes)) {
        dec.fail("calibration: opcode out of range in integer-law table");
        break;
      }
      db.int_laws_[static_cast<ir::Opcode>(op)] = load_op_law(dec);
    }
  }

  const std::uint64_t floats = dec.u64();
  if (dec.fits(floats, 1 + 8 + 4 * 8)) {
    for (std::uint64_t i = 0; i < floats && dec.ok(); ++i) {
      const std::uint8_t op = dec.u8();
      if (op >= static_cast<std::uint8_t>(ir::kNumOpcodes)) {
        dec.fail("calibration: opcode out of range in float-cost table");
        break;
      }
      const int width = static_cast<int>(dec.i64());
      db.float_costs_[{static_cast<ir::Opcode>(op), width}] =
          load_resource_vec(dec);
    }
  }

  db.bandwidth_ = membench::BandwidthTable::load(dec);
  db.host_bw_ = load_pwl(dec);
  db.calib_seconds_ = dec.f64();

  if (!dec.ok()) {
    return make_error("calibration snapshot: " + dec.error());
  }
  return db;
}

}  // namespace tytra::cost
