#include "tytra/cost/report.hpp"

#include <chrono>
#include <sstream>

#include "tytra/support/strings.hpp"

namespace tytra::cost {

CostReport cost_design(const ir::Module& module, const DeviceCostDb& db) {
  return cost_design(module, db, ir::summarize(module));
}

CostReport cost_design(const ir::Module& module, const DeviceCostDb& db,
                       const ir::AnalysisSummary& summary) {
  const auto t0 = std::chrono::steady_clock::now();
  CostReport report;
  report.design_name = module.name;
  report.config = summary.config;
  report.params = summary.params;
  if (report.params.fd <= 0) report.params.fd = db.device().default_freq_hz;
  report.resources = estimate_resources(module, db, summary);
  report.throughput = estimate_throughput(module, db, summary);

  report.valid = true;
  if (!report.resources.fits) {
    report.valid = false;
    report.invalid_reason = "exceeds device resources (computation wall)";
  }
  // Form C requires the whole kernel-instance data set to live in local
  // memory (on-chip block RAM) for all NKI iterations (paper §III-5).
  if (report.valid && report.params.form == ir::ExecForm::C) {
    const double data_bits = static_cast<double>(report.params.ngs) *
                             report.params.nwpt * db.device().word_bytes * 8.0;
    const double avail =
        static_cast<double>(db.device().resources.bram_bits) *
            (1.0 - db.device().shell_overhead) -
        report.resources.total.bram_bits;
    if (data_bits > avail) {
      report.valid = false;
      report.invalid_reason =
          "form-C NDRange does not fit in local memory (use form B or tile)";
    }
  }
  const auto t1 = std::chrono::steady_clock::now();
  report.estimate_seconds =
      std::chrono::duration_cast<std::chrono::duration<double>>(t1 - t0).count();
  return report;
}

std::string format_report(const CostReport& r) {
  std::ostringstream os;
  os << "=== TyTra cost report: " << r.design_name << " ===\n";
  os << "configuration: " << ir::config_class_name(r.config)
     << "  (KNL=" << r.params.knl << " DV=" << r.params.dv
     << " KPD=" << r.params.kpd << " NI=" << r.params.ni
     << " Noff=" << r.params.noff << ")\n";
  os << "NDRange: NGS=" << r.params.ngs << " NWPT=" << r.params.nwpt
     << " NKI=" << r.params.nki << " form="
     << ir::exec_form_name(r.params.form) << "\n";
  os << "resources: " << r.resources.total.to_string() << "\n";
  os << "utilization: aluts=" << format_fixed(r.resources.util.aluts, 1)
     << "% regs=" << format_fixed(r.resources.util.regs, 1)
     << "% bram=" << format_fixed(r.resources.util.bram, 1)
     << "% dsps=" << format_fixed(r.resources.util.dsps, 1) << "%\n";
  os << "throughput: EKIT=" << format_si(r.throughput.ekit)
     << "kernel-instances/s  CPKI=" << format_si(r.throughput.cycles_per_instance)
     << "cycles\n";
  os << "limiting factor: " << wall_name(r.throughput.limiting) << "\n";
  os << "valid: " << (r.valid ? "yes" : ("NO - " + r.invalid_reason)) << "\n";
  os << "estimated in " << format_fixed(r.estimate_seconds * 1e3, 3) << " ms\n";
  return os.str();
}

}  // namespace tytra::cost
