#include "tytra/cost/report.hpp"

#include <chrono>
#include <sstream>

#include "tytra/support/strings.hpp"

namespace tytra::cost {

CostReport cost_design(const ir::Module& module, const DeviceCostDb& db) {
  return cost_design(module, db, ir::summarize(module));
}

CostReport cost_design(const ir::Module& module, const DeviceCostDb& db,
                       const ir::AnalysisSummary& summary) {
  const auto t0 = std::chrono::steady_clock::now();
  CostReport report;
  report.design_name = module.name;
  report.config = summary.config;
  report.params = summary.params;
  if (report.params.fd <= 0) report.params.fd = db.device().default_freq_hz;
  report.resources = estimate_resources(module, db, summary);
  report.throughput = estimate_throughput(module, db, summary);

  report.valid = true;
  if (!report.resources.fits) {
    report.valid = false;
    report.invalid_reason = "exceeds device resources (computation wall)";
  }
  // Form C requires the whole kernel-instance data set to live in local
  // memory (on-chip block RAM) for all NKI iterations (paper §III-5).
  if (report.valid && report.params.form == ir::ExecForm::C) {
    const double data_bits = static_cast<double>(report.params.ngs) *
                             report.params.nwpt * db.device().word_bytes * 8.0;
    const double avail =
        static_cast<double>(db.device().resources.bram_bits) *
            (1.0 - db.device().shell_overhead) -
        report.resources.total.bram_bits;
    if (data_bits > avail) {
      report.valid = false;
      report.invalid_reason =
          "form-C NDRange does not fit in local memory (use form B or tile)";
    }
  }
  const auto t1 = std::chrono::steady_clock::now();
  report.estimate_seconds =
      std::chrono::duration_cast<std::chrono::duration<double>>(t1 - t0).count();
  return report;
}

std::string format_report(const CostReport& r) {
  std::ostringstream os;
  os << "=== TyTra cost report: " << r.design_name << " ===\n";
  os << "configuration: " << ir::config_class_name(r.config)
     << "  (KNL=" << r.params.knl << " DV=" << r.params.dv
     << " KPD=" << r.params.kpd << " NI=" << r.params.ni
     << " Noff=" << r.params.noff << ")\n";
  os << "NDRange: NGS=" << r.params.ngs << " NWPT=" << r.params.nwpt
     << " NKI=" << r.params.nki << " form="
     << ir::exec_form_name(r.params.form) << "\n";
  os << "resources: " << r.resources.total.to_string() << "\n";
  os << "utilization: aluts=" << format_fixed(r.resources.util.aluts, 1)
     << "% regs=" << format_fixed(r.resources.util.regs, 1)
     << "% bram=" << format_fixed(r.resources.util.bram, 1)
     << "% dsps=" << format_fixed(r.resources.util.dsps, 1) << "%\n";
  os << "throughput: EKIT=" << format_si(r.throughput.ekit)
     << "kernel-instances/s  CPKI=" << format_si(r.throughput.cycles_per_instance)
     << "cycles\n";
  os << "limiting factor: " << wall_name(r.throughput.limiting) << "\n";
  os << "valid: " << (r.valid ? "yes" : ("NO - " + r.invalid_reason)) << "\n";
  os << "estimated in " << format_fixed(r.estimate_seconds * 1e3, 3) << " ms\n";
  return os.str();
}

namespace {

void save_vec(binio::Encoder& enc, const ResourceVec& v) {
  enc.f64(v.aluts);
  enc.f64(v.regs);
  enc.f64(v.bram_bits);
  enc.f64(v.dsps);
}

ResourceVec load_vec(binio::Decoder& dec) {
  ResourceVec v;
  v.aluts = dec.f64();
  v.regs = dec.f64();
  v.bram_bits = dec.f64();
  v.dsps = dec.f64();
  return v;
}

}  // namespace

void save_report(binio::Encoder& enc, const CostReport& r) {
  enc.str(r.design_name);
  enc.u8(static_cast<std::uint8_t>(r.config));

  const ir::DesignParams& p = r.params;
  enc.u64(p.ngs);
  enc.f64(p.nwpt);
  enc.u32(p.nki);
  enc.u64(p.noff);
  enc.i64(p.kpd);
  enc.f64(p.fd);
  enc.f64(p.nto);
  enc.f64(p.ni);
  enc.u32(p.knl);
  enc.u32(p.dv);
  enc.u8(static_cast<std::uint8_t>(p.form));

  save_vec(enc, r.resources.total);
  enc.u64(r.resources.per_function.size());
  for (const auto& [name, vec] : r.resources.per_function) {
    enc.str(name);
    save_vec(enc, vec);
  }
  enc.f64(r.resources.util.aluts);
  enc.f64(r.resources.util.regs);
  enc.f64(r.resources.util.bram);
  enc.f64(r.resources.util.dsps);
  enc.u8(r.resources.fits ? 1 : 0);

  const ThroughputEstimate& t = r.throughput;
  enc.f64(t.ekit);
  enc.f64(t.seconds_per_instance);
  enc.f64(t.t_host);
  enc.f64(t.t_offset_fill);
  enc.f64(t.t_pipe_fill);
  enc.f64(t.t_mem_stream);
  enc.f64(t.t_compute);
  enc.u8(static_cast<std::uint8_t>(t.limiting));
  enc.f64(t.cycles_per_instance);

  enc.u8(r.valid ? 1 : 0);
  enc.str(r.invalid_reason);
  enc.f64(r.estimate_seconds);
}

CostReport load_report(binio::Decoder& dec) {
  CostReport r;
  r.design_name = dec.str();
  const std::uint8_t config = dec.u8();
  if (config > static_cast<std::uint8_t>(ir::ConfigClass::C5)) {
    dec.fail("cost report: configuration class out of range");
    return r;
  }
  r.config = static_cast<ir::ConfigClass>(config);

  ir::DesignParams& p = r.params;
  p.ngs = dec.u64();
  p.nwpt = dec.f64();
  p.nki = dec.u32();
  p.noff = dec.u64();
  p.kpd = static_cast<int>(dec.i64());
  p.fd = dec.f64();
  p.nto = dec.f64();
  p.ni = dec.f64();
  p.knl = dec.u32();
  p.dv = dec.u32();
  const std::uint8_t form = dec.u8();
  if (form > static_cast<std::uint8_t>(ir::ExecForm::C)) {
    dec.fail("cost report: execution form out of range");
    return r;
  }
  p.form = static_cast<ir::ExecForm>(form);

  r.resources.total = load_vec(dec);
  const std::uint64_t functions = dec.u64();
  if (!dec.fits(functions, 8 + 4 * 8)) return r;
  for (std::uint64_t i = 0; i < functions && dec.ok(); ++i) {
    std::string name = dec.str();
    r.resources.per_function.emplace(std::move(name), load_vec(dec));
  }
  r.resources.util.aluts = dec.f64();
  r.resources.util.regs = dec.f64();
  r.resources.util.bram = dec.f64();
  r.resources.util.dsps = dec.f64();
  r.resources.fits = dec.u8() != 0;

  ThroughputEstimate& t = r.throughput;
  t.ekit = dec.f64();
  t.seconds_per_instance = dec.f64();
  t.t_host = dec.f64();
  t.t_offset_fill = dec.f64();
  t.t_pipe_fill = dec.f64();
  t.t_mem_stream = dec.f64();
  t.t_compute = dec.f64();
  const std::uint8_t wall = dec.u8();
  if (wall > static_cast<std::uint8_t>(Wall::OffsetFill)) {
    dec.fail("cost report: limiting wall out of range");
    return r;
  }
  t.limiting = static_cast<Wall>(wall);
  t.cycles_per_instance = dec.f64();

  r.valid = dec.u8() != 0;
  r.invalid_reason = dec.str();
  r.estimate_seconds = dec.f64();
  return r;
}

}  // namespace tytra::cost
