#include "tytra/cost/throughput.hpp"

#include <algorithm>

#include "tytra/support/hash.hpp"

namespace tytra::cost {

std::uint64_t input_key(const EkitInputs& in) {
  const ir::DesignParams& d = in.design;
  return HashBuilder{}
      .u64(d.ngs)
      .f64(d.nwpt)
      .u64(d.nki)
      .u64(d.noff)
      .i64(d.kpd)
      .f64(d.fd)
      .f64(d.nto)
      .f64(d.ni)
      .u64(d.knl)
      .u64(d.dv)
      .u64(static_cast<std::uint64_t>(d.form))
      .f64(in.hpb)
      .f64(in.rho_h)
      .f64(in.gpb)
      .f64(in.rho_g)
      .f64(in.word_bytes)
      .value();
}

std::string_view wall_name(Wall wall) {
  switch (wall) {
    case Wall::HostBandwidth: return "host-bandwidth";
    case Wall::DramBandwidth: return "dram-bandwidth";
    case Wall::Compute: return "compute";
    case Wall::PipelineFill: return "pipeline-fill";
    case Wall::OffsetFill: return "offset-fill";
  }
  return "?";
}

ThroughputEstimate ekit(const EkitInputs& in) {
  ThroughputEstimate out;
  const ir::DesignParams& d = in.design;
  const double fd = d.fd;
  if (fd <= 0 || d.ngs == 0) return out;

  const double ngs = static_cast<double>(d.ngs);
  const double words = ngs * d.nwpt;                    // NGS * NWPT
  const double bytes = words * in.word_bytes;
  const double host_bw = std::max(1.0, in.hpb * in.rho_h);
  const double dram_bw = std::max(1.0, in.gpb * in.rho_g);

  // Term 1: host<->device transfer. Form A pays it on every kernel
  // instance; forms B and C amortize it over the NKI repetitions (Eq. 2-3).
  double t_host = bytes / host_bw;
  if (d.form != ir::ExecForm::A) t_host /= std::max<std::uint32_t>(d.nki, 1);
  // Term 2: filling the offset stream buffers until the first work-item.
  const double t_offset =
      (static_cast<double>(d.noff) * in.word_bytes) / dram_bw;
  // Term 3: filling the kernel pipeline.
  const double t_fill = static_cast<double>(d.kpd) / fd;
  // Term 4: steady-state — the slower of DRAM streaming and the datapath.
  const double t_mem = bytes / dram_bw;
  const double t_compute =
      (ngs * d.nwpt * d.nto * d.ni) / (fd * d.knl * d.dv);

  double t_steady = 0;
  if (d.form == ir::ExecForm::C) {
    // Form C is always compute-bound: data stays in on-chip local memory.
    t_steady = t_compute;
  } else {
    t_steady = std::max(t_mem, t_compute);
  }

  out.t_host = t_host;
  out.t_offset_fill = t_offset;
  out.t_pipe_fill = t_fill;
  out.t_mem_stream = d.form == ir::ExecForm::C ? 0.0 : t_mem;
  out.t_compute = t_compute;
  out.seconds_per_instance = t_host + t_offset + t_fill + t_steady;
  out.ekit = 1.0 / out.seconds_per_instance;

  // Limiting factor.
  struct Candidate {
    double t;
    Wall wall;
  };
  const Candidate candidates[] = {
      {t_host, Wall::HostBandwidth},
      {t_offset, Wall::OffsetFill},
      {t_fill, Wall::PipelineFill},
      {d.form == ir::ExecForm::C ? 0.0 : t_mem, Wall::DramBandwidth},
      {t_compute, Wall::Compute},
  };
  const auto* best = &candidates[0];
  for (const auto& c : candidates) {
    if (c.t > best->t) best = &c;
  }
  out.limiting = best->wall;

  // CPKI: device-side cycles per kernel instance (host transfers excluded,
  // as in Table II's compute-bound comparisons).
  out.cycles_per_instance = (t_offset + t_fill + t_steady) * fd;
  return out;
}

EkitInputs resolve_inputs(const ir::Module& module, const DeviceCostDb& db) {
  return resolve_inputs(module, db, ir::summarize(module));
}

EkitInputs resolve_inputs(const ir::Module& module, const DeviceCostDb& db,
                          const ir::AnalysisSummary& summary) {
  EkitInputs in;
  in.design = summary.params;
  const target::DeviceDesc& dev = db.device();
  if (in.design.fd <= 0) in.design.fd = dev.default_freq_hz;
  in.word_bytes = dev.word_bytes;
  in.hpb = dev.host.peak_bw;
  in.gpb = dev.dram_peak_bw;

  // Empirical scaling factors for this design's transfer sizes & patterns.
  const double words = static_cast<double>(in.design.ngs) * in.design.nwpt;
  const auto bytes = static_cast<std::uint64_t>(words * in.word_bytes);
  in.rho_h = bytes > 0
                 ? std::min(1.0, db.host_sustained(bytes) / std::max(1.0, in.hpb))
                 : 1.0;

  // rho_G: weight the per-port patterns (strided ports stream far slower).
  // The table is evaluated at the *total* transfer size: the concurrent
  // port streams form one long aggregate DRAM transfer.
  if (!module.ports.empty() && bytes > 0) {
    double inv_sum = 0;
    for (const auto& ps : summary.ports) {
      const double bw =
          db.bandwidth().sustained(bytes, ps.port->pattern, ps.stride_words);
      inv_sum += 1.0 / std::max(1.0, bw);
    }
    // Concurrent ports share the memory system: each per-port measurement
    // already reflects the full DRAM serving one stream, so the aggregate
    // deliverable bandwidth is the harmonic mean across the port patterns
    // (a single strided port drags the whole tuple rate down).
    const double aggregate = static_cast<double>(module.ports.size()) / inv_sum;
    in.rho_g = std::min(1.0, aggregate / std::max(1.0, in.gpb));
  } else {
    in.rho_g = 1.0;
  }
  return in;
}

ThroughputEstimate estimate_throughput(const ir::Module& module,
                                       const DeviceCostDb& db) {
  return ekit(resolve_inputs(module, db));
}

ThroughputEstimate estimate_throughput(const ir::Module& module,
                                       const DeviceCostDb& db,
                                       const ir::AnalysisSummary& summary) {
  return ekit(resolve_inputs(module, db, summary));
}

}  // namespace tytra::cost
