#include "tytra/cost/roofline.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "tytra/cost/throughput.hpp"
#include "tytra/ir/analysis.hpp"

namespace tytra::cost {

RooflinePoint roofline(const ir::Module& module, const DeviceCostDb& db) {
  RooflinePoint pt;
  const EkitInputs in = resolve_inputs(module, db);
  const ir::DesignParams& d = in.design;
  if (d.ngs == 0 || d.fd <= 0) return pt;

  const double ops_per_item = ir::instructions_per_pe(module);
  const double bytes_per_item = d.nwpt * in.word_bytes;
  pt.arithmetic_intensity = ops_per_item / bytes_per_item;

  // Compute roof: the datapath retires ops_per_item every NWPT*NTO cycles
  // per lane (word-serial feed), across KNL lanes and DV vector lanes.
  const double items_per_second = d.fd * d.knl * d.dv / (d.nwpt * d.nto * d.ni);
  pt.ops_ceiling = items_per_second * ops_per_item;

  // Bandwidth roof at this design's sustained DRAM rate.
  const double sustained = in.gpb * in.rho_g;
  pt.bw_roof_ops = pt.arithmetic_intensity * sustained;

  pt.attainable_ops = std::min(pt.ops_ceiling, pt.bw_roof_ops);
  pt.memory_bound = pt.bw_roof_ops < pt.ops_ceiling;
  pt.balance_point = pt.ops_ceiling / std::max(1.0, sustained);

  const ThroughputEstimate est = ekit(in);
  pt.achieved_ops =
      est.ekit * static_cast<double>(d.ngs) * ops_per_item;
  return pt;
}

std::string format_roofline_ascii(const RooflinePoint& point, int width,
                                  int height) {
  width = std::max(20, width);
  height = std::max(6, height);
  std::vector<std::string> canvas(static_cast<std::size_t>(height),
                                  std::string(static_cast<std::size_t>(width), ' '));

  // Log-log axes: x spans AI/16 .. AI*16, y spans roofs/64 .. roofs*2.
  const double x_lo = point.arithmetic_intensity / 16.0;
  const double x_hi = point.arithmetic_intensity * 16.0;
  const double y_hi = std::max(point.ops_ceiling, point.bw_roof_ops) * 2.0;
  const double y_lo = y_hi / 128.0;

  const auto x_at = [&](double ai) {
    const double t = std::log(ai / x_lo) / std::log(x_hi / x_lo);
    return static_cast<int>(std::clamp(t, 0.0, 1.0) * (width - 1));
  };
  const auto y_at = [&](double ops) {
    const double t = std::log(std::max(ops, y_lo) / y_lo) / std::log(y_hi / y_lo);
    return (height - 1) -
           static_cast<int>(std::clamp(t, 0.0, 1.0) * (height - 1));
  };

  const double bw_slope = point.bw_roof_ops / point.arithmetic_intensity;
  for (int col = 0; col < width; ++col) {
    const double ai = x_lo * std::pow(x_hi / x_lo, static_cast<double>(col) /
                                                       (width - 1));
    const double roof = std::min(point.ops_ceiling, ai * bw_slope);
    const int row = y_at(roof);
    canvas[static_cast<std::size_t>(row)][static_cast<std::size_t>(col)] =
        roof >= point.ops_ceiling * 0.999 ? '-' : '/';
  }
  const int px = x_at(point.arithmetic_intensity);
  const int py = y_at(point.achieved_ops);
  canvas[static_cast<std::size_t>(py)][static_cast<std::size_t>(px)] = 'X';

  std::ostringstream os;
  os << "roofline (log-log): '-' compute roof, '/' bandwidth roof, X design\n";
  for (const auto& row : canvas) os << "  |" << row << "\n";
  os << "  +" << std::string(static_cast<std::size_t>(width), '-') << "\n";
  os << "  AI = " << point.arithmetic_intensity << " ops/byte ("
     << (point.memory_bound ? "memory" : "compute") << "-bound; balance at "
     << point.balance_point << ")\n";
  return os.str();
}

}  // namespace tytra::cost
