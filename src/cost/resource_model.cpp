#include "tytra/cost/resource_model.hpp"

#include <algorithm>

#include "tytra/ir/analysis.hpp"

namespace tytra::cost {

namespace {

using ir::Function;
using ir::Instr;
using ir::Module;
using ir::Operand;

}  // namespace

namespace {
ResourceVec estimate_function_memo(const Module& module,
                                   const Function& function,
                                   const DeviceCostDb& db,
                                   std::map<std::string, ResourceVec>& memo);
}  // namespace

ResourceVec estimate_function(const Module& module, const Function& function,
                              const DeviceCostDb& db) {
  std::map<std::string, ResourceVec> memo;
  return estimate_function_memo(module, function, db, memo);
}

namespace {
ResourceVec estimate_function_memo(const Module& module,
                                   const Function& function,
                                   const DeviceCostDb& db,
                                   std::map<std::string, ResourceVec>& memo) {
  // Replicated lanes call the same body: cost it once per distinct callee.
  if (const auto it = memo.find(function.name); it != memo.end()) {
    return it->second;
  }
  ResourceVec total;
  const ir::FunctionSchedule sched = ir::schedule_function(module, function);
  std::size_t instr_idx = 0;

  for (const auto& item : function.body) {
    const auto* instr = std::get_if<Instr>(&item);
    if (instr == nullptr) continue;
    const int issue =
        instr_idx < sched.issue_at.size() ? sched.issue_at[instr_idx] : 0;
    ++instr_idx;
    const double lanes = instr->type.lanes;
    const Operand* const_arg = nullptr;
    for (const auto& a : instr->args) {
      if (a.kind == Operand::Kind::ConstInt) const_arg = &a;
    }
    if (const_arg != nullptr) {
      total += db.op_cost_const(instr->op, instr->type.scalar, const_arg->ival) *
               lanes;
    } else {
      total += db.op_cost(instr->op, instr->type.scalar) * lanes;
    }

    // Delay-balancing registers along skewed operand paths.
    for (const auto& a : instr->args) {
      if (a.kind != Operand::Kind::Local) continue;
      const auto it = sched.ready_at.find(a.name);
      const int ready = it != sched.ready_at.end() ? it->second : 0;
      if (issue > ready) {
        total.regs += static_cast<double>(issue - ready) *
                      instr->type.scalar.bits * lanes;
      }
    }
  }

  // Offset buffers.
  const auto offsets = function.offsets();
  if (!offsets.empty()) {
    std::int64_t max_off = 0;
    for (const auto* o : offsets) max_off = std::max(max_off, o->offset);
    for (const auto* o : offsets) {
      const auto depth = static_cast<std::uint64_t>(max_off - o->offset);
      total += db.offset_buffer_cost(o->type.total_bits(), depth);
    }
    if (max_off > 0) {
      total += db.offset_buffer_cost(offsets.front()->type.total_bits(),
                                     static_cast<std::uint64_t>(max_off));
    }
  }

  if (function.kind == ir::FuncKind::Seq) {
    const double ni = static_cast<double>(function.instructions().size());
    total.aluts += 80 + 4.0 * ni;
    total.regs += 64;
  }

  for (const auto* call : function.calls()) {
    if (const Function* callee = module.find_function(call->callee)) {
      total += estimate_function_memo(module, *callee, db, memo);
    }
  }
  memo[function.name] = total;
  return total;
}
}  // namespace

ResourceEstimate estimate_resources(const Module& module,
                                    const DeviceCostDb& db) {
  ResourceEstimate est;
  const Function* main = module.entry();
  if (main == nullptr) return est;

  est.total = estimate_function(module, *main, db);

  for (const auto& f : module.functions) {
    if (f.name == "main") continue;
    Function shallow = f;
    shallow.body.clear();
    for (const auto& item : f.body) {
      if (!std::holds_alternative<ir::Call>(item)) shallow.body.push_back(item);
    }
    Module wrapper;
    wrapper.functions.push_back(shallow);
    est.per_function[f.name] =
        estimate_function(wrapper, wrapper.functions.front(), db);
  }

  for (const auto& p : module.ports) {
    std::uint64_t range = module.meta.global_size;
    if (const auto* so = module.find_streamobj(p.streamobj)) {
      if (const auto* mo = module.find_memobj(so->memobj)) range = mo->size_words;
    }
    est.total += db.stream_control_cost(p.type.total_bits(), range);
  }

  est.util = utilization(est.total, db.device());
  est.fits = est.util.fits();
  return est;
}

}  // namespace tytra::cost
