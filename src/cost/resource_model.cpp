#include "tytra/cost/resource_model.hpp"

#include <algorithm>
#include <unordered_map>

#include "tytra/ir/analysis.hpp"

namespace tytra::cost {

namespace {

using ir::Function;
using ir::Instr;
using ir::Module;
using ir::Operand;

/// Cost of one function body, children excluded: fitted instruction laws,
/// delay-balancing registers along skewed operand paths, offset buffers,
/// and the sequencer overhead for seq-kind functions. The floating-point
/// accumulation order matches the legacy single-function walk exactly.
ResourceVec own_cost(const ir::FunctionSummary& fs, const DeviceCostDb& db) {
  ResourceVec total;
  const ir::FunctionSchedule& sched = fs.schedule;
  std::size_t instr_idx = 0;

  for (const Instr* instr : fs.instrs) {
    const int issue =
        instr_idx < sched.issue_at.size() ? sched.issue_at[instr_idx] : 0;
    ++instr_idx;
    const double lanes = instr->type.lanes;
    const Operand* const_arg = nullptr;
    for (const auto& a : instr->args) {
      if (a.kind == Operand::Kind::ConstInt) const_arg = &a;
    }
    if (const_arg != nullptr) {
      total += db.op_cost_const(instr->op, instr->type.scalar, const_arg->ival) *
               lanes;
    } else {
      total += db.op_cost(instr->op, instr->type.scalar) * lanes;
    }

    // Delay-balancing registers along skewed operand paths.
    for (const auto& a : instr->args) {
      if (a.kind != Operand::Kind::Local) continue;
      const auto it = sched.ready_at.find(a.name);
      const int ready = it != sched.ready_at.end() ? it->second : 0;
      if (issue > ready) {
        total.regs += static_cast<double>(issue - ready) *
                      instr->type.scalar.bits * lanes;
      }
    }
  }

  // Offset buffers.
  const auto& offsets = fs.offsets;
  if (!offsets.empty()) {
    std::int64_t max_off = 0;
    for (const auto* o : offsets) max_off = std::max(max_off, o->offset);
    for (const auto* o : offsets) {
      const auto depth = static_cast<std::uint64_t>(max_off - o->offset);
      total += db.offset_buffer_cost(o->type.total_bits(), depth);
    }
    if (max_off > 0) {
      total += db.offset_buffer_cost(offsets.front()->type.total_bits(),
                                     static_cast<std::uint64_t>(max_off));
    }
  }

  if (fs.func->kind == ir::FuncKind::Seq) {
    const double ni = static_cast<double>(fs.instrs.size());
    total.aluts += 80 + 4.0 * ni;
    total.regs += 64;
  }

  return total;
}

}  // namespace

namespace {

/// Partitions and schedules one function against `module` without
/// requiring it to be a member of `module.functions` — the public
/// estimate_function accepts detached Function objects (copies, synthetic
/// wrappers), which the module-wide summary cannot know about.
ir::FunctionSummary summarize_detached(const Module& module,
                                       const Function& function) {
  ir::FunctionSummary fs;
  fs.func = &function;
  fs.instrs.reserve(function.body.size());
  for (const auto& item : function.body) {
    if (const auto* instr = std::get_if<Instr>(&item)) {
      fs.instrs.push_back(instr);
    } else if (const auto* off = std::get_if<ir::OffsetDecl>(&item)) {
      fs.offsets.push_back(off);
    } else {
      fs.calls.push_back(&std::get<ir::Call>(item));
    }
  }
  fs.schedule = ir::schedule_function(module, function);
  return fs;
}

}  // namespace

ResourceVec estimate_function(const Module& module, const Function& function,
                              const DeviceCostDb& db) {
  // Public single-function entry point: summarize the enclosing module so
  // the walk shares the memoized schedules, then total own costs over the
  // call tree (children per call site, like the design-level estimate).
  // A function that is not a member of `module` (a copy, a synthetic
  // wrapper) is summarized on the spot instead of being silently skipped.
  const ir::AnalysisSummary summary = ir::summarize(module);
  std::unordered_map<const Function*, ResourceVec> totals;
  std::unordered_map<const Function*, const ir::FunctionSummary*> by_func;
  for (const auto& fs : summary.functions) by_func.emplace(fs.func, &fs);

  auto total_of = [&](auto&& self, const Function& f) -> ResourceVec {
    const auto fs_it = by_func.find(&f);
    const ir::FunctionSummary detached =
        fs_it == by_func.end() ? summarize_detached(module, f)
                               : ir::FunctionSummary{};
    const ir::FunctionSummary& fs =
        fs_it == by_func.end() ? detached : *fs_it->second;
    ResourceVec total = own_cost(fs, db);
    for (const auto* call : fs.calls) {
      if (const Function* callee = module.find_function(call->callee)) {
        const auto memo = totals.find(callee);
        if (memo != totals.end()) {
          total += memo->second;
        } else {
          const ResourceVec child = self(self, *callee);
          totals.emplace(callee, child);
          total += child;
        }
      }
    }
    return total;
  };
  return total_of(total_of, function);
}

ResourceEstimate estimate_resources(const Module& module,
                                    const DeviceCostDb& db) {
  return estimate_resources(module, db, ir::summarize(module));
}

ResourceEstimate estimate_resources(const Module& module,
                                    const DeviceCostDb& db,
                                    const ir::AnalysisSummary& summary) {
  ResourceEstimate est;
  const Function* main = module.entry();
  if (main == nullptr) return est;

  // Own cost per function, computed once each; design total accumulated
  // over the call tree with children counted per call site (replicated
  // lanes pay per lane), memoized per distinct callee.
  const std::size_t nf = summary.functions.size();
  std::vector<ResourceVec> own(nf);
  std::vector<bool> own_done(nf, false);
  auto own_of = [&](std::size_t fi) -> const ResourceVec& {
    if (!own_done[fi]) {
      own[fi] = own_cost(summary.functions[fi], db);
      own_done[fi] = true;
    }
    return own[fi];
  };

  std::unordered_map<std::string_view, std::size_t> index;
  index.reserve(nf);
  for (std::size_t i = 0; i < nf; ++i) {
    index.emplace(summary.functions[i].func->name, i);
  }

  std::vector<ResourceVec> totals(nf);
  std::vector<bool> total_done(nf, false);
  auto total_of = [&](auto&& self, std::size_t fi) -> const ResourceVec& {
    if (total_done[fi]) return totals[fi];
    total_done[fi] = true;  // cycle guard; verified call graphs are acyclic
    ResourceVec total = own_of(fi);
    for (const auto* call : summary.functions[fi].calls) {
      const auto it = index.find(call->callee);
      if (it != index.end()) total += self(self, it->second);
    }
    totals[fi] = total;
    return totals[fi];
  };

  const auto main_it = index.find(main->name);
  if (main_it != index.end()) est.total = total_of(total_of, main_it->second);

  for (std::size_t i = 0; i < nf; ++i) {
    const Function& f = *summary.functions[i].func;
    if (f.name == "main") continue;
    est.per_function[f.name] = own_of(i);
  }

  for (const auto& ps : summary.ports) {
    est.total += db.stream_control_cost(ps.port->type.total_bits(),
                                        ps.addr_range_words);
  }

  est.util = utilization(est.total, db.device());
  est.fits = est.util.fits();
  return est;
}

}  // namespace tytra::cost
