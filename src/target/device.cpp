#include "tytra/target/device.hpp"

#include <algorithm>
#include <cctype>
#include <sstream>

#include "tytra/resources.hpp"

namespace tytra::target {

DeviceDesc stratix_v_gsd8() {
  DeviceDesc d;
  d.name = "stratix-v-gsd8";
  d.family = "stratix-v";
  // 5SGSD8: 262,400 ALMs (two ALUT outputs each), 1,963 variable-precision
  // DSP blocks, ~50 Mbit of M20K.
  d.resources.aluts = 524800;
  d.resources.regs = 1049600;
  d.resources.bram_bits = 51380224;
  d.resources.dsps = 1963;
  d.fmax_hz = 250e6;
  d.default_freq_hz = 200e6;
  // Maia LMem: wide DDR3 interface, streams at tens of GB/s.
  d.dram.io_clock_hz = 533e6;
  d.dram.bus_bytes = 64;
  d.dram.burst_bytes = 512;
  d.dram.row_bytes = 4096;
  d.dram.row_miss_cycles = 50;
  d.dram.setup_seconds = 4e-5;
  d.dram_peak_bw = d.dram.io_clock_hz * d.dram.bus_bytes;
  // PCIe gen2 x8 through MaxelerOS.
  d.host.peak_bw = 4e9;
  d.host.efficiency = 0.85;
  d.host.latency_seconds = 5e-5;
  d.power.static_watts = 2.5;
  d.power.alut_nw = 0.055;
  d.power.dsp_nw = 16.0;
  d.power.bram_kb_nw = 2.2;
  d.word_bytes = 4;
  d.shell_overhead = 0.12;
  return d;
}

DeviceDesc virtex7_690t() {
  DeviceDesc d;
  d.name = "virtex7-690t";
  d.family = "virtex-7";
  // XC7VX690T: 433,200 LUTs, 866,400 flip-flops, 1,470 36-Kb block RAMs,
  // 3,600 DSP48E1 slices.
  d.resources.aluts = 433200;
  d.resources.regs = 866400;
  d.resources.bram_bits = 52920000;
  d.resources.dsps = 3600;
  d.fmax_hz = 220e6;
  d.default_freq_hz = 180e6;
  // The unoptimized SDAccel baseline platform of Fig. 10: a single
  // narrow DDR port that plateaus near 6.3 Gbit/s sustained.
  d.dram.io_clock_hz = 100e6;
  d.dram.bus_bytes = 8;
  d.dram.burst_bytes = 64;
  d.dram.row_bytes = 1024;
  d.dram.row_miss_cycles = 50;
  d.dram.setup_seconds = 1e-3;
  d.dram_peak_bw = d.dram.io_clock_hz * d.dram.bus_bytes;
  d.host.peak_bw = 3.2e9;
  d.host.efficiency = 0.8;
  d.host.latency_seconds = 1e-4;
  d.power.static_watts = 3.0;
  d.power.alut_nw = 0.06;
  d.power.dsp_nw = 18.0;
  d.power.bram_kb_nw = 2.5;
  d.word_bytes = 4;
  d.shell_overhead = 0.15;
  return d;
}

DeviceDesc fig15_profile() {
  DeviceDesc d = stratix_v_gsd8();
  d.name = "fig15-profile";
  // Scaled down so the computation wall lands inside a 16-lane sweep of
  // the 24^3 SOR kernel and the form-A host wall appears by ~4 lanes.
  d.resources.aluts = 7200;
  d.resources.regs = 16000;
  d.resources.bram_bits = 1048576;
  d.resources.dsps = 128;
  d.host.peak_bw = 2.5e9;
  d.host.efficiency = 0.8;
  d.host.latency_seconds = 5e-5;
  d.shell_overhead = 0.1;
  return d;
}

const std::vector<std::string>& preset_names() {
  static const std::vector<std::string> names{"stratix-v-gsd8", "virtex7-690t",
                                              "fig15"};
  return names;
}

std::optional<DeviceDesc> preset(std::string_view name) {
  if (name == "stratix-v-gsd8") return stratix_v_gsd8();
  if (name == "virtex7-690t") return virtex7_690t();
  if (name == "fig15") return fig15_profile();
  return std::nullopt;
}

namespace {

/// Strips a trailing comment and surrounding whitespace.
std::string_view clean_line(std::string_view line) {
  if (const auto hash = line.find('#'); hash != std::string_view::npos) {
    line = line.substr(0, hash);
  }
  while (!line.empty() && std::isspace(static_cast<unsigned char>(line.front()))) {
    line.remove_prefix(1);
  }
  while (!line.empty() && std::isspace(static_cast<unsigned char>(line.back()))) {
    line.remove_suffix(1);
  }
  return line;
}

bool parse_number(std::string_view text, double& out) {
  std::string s(text);
  std::istringstream is(s);
  is >> out;
  return static_cast<bool>(is) && is.eof();
}

}  // namespace

tytra::Result<DeviceDesc> parse_target(std::string_view text) {
  DeviceDesc d;
  // Defaults of a mid-size board for anything the file leaves unset.
  d.resources.aluts = 100000;
  d.resources.regs = 200000;
  d.resources.bram_bits = 10000000;
  d.resources.dsps = 256;
  d.dram = stratix_v_gsd8().dram;
  d.host = stratix_v_gsd8().host;
  d.power = stratix_v_gsd8().power;
  d.fmax_hz = 200e6;
  d.default_freq_hz = 150e6;
  d.shell_overhead = 0.1;

  std::istringstream in{std::string(text)};
  std::string raw;
  int line_no = 0;
  bool in_block = false;
  bool closed = false;

  while (std::getline(in, raw)) {
    ++line_no;
    const std::string_view line = clean_line(raw);
    if (line.empty()) continue;
    const SourceLoc loc{line_no, 1};

    if (!in_block) {
      // Expect: device <name> {
      std::istringstream ls{std::string(line)};
      std::string kw, name, brace;
      ls >> kw >> name >> brace;
      if (kw != "device" || name.empty() || brace != "{") {
        return make_error("expected 'device <name> {', got '" +
                              std::string(line) + "'",
                          loc);
      }
      d.name = name;
      in_block = true;
      continue;
    }
    if (line == "}") {
      closed = true;
      in_block = false;
      continue;
    }

    std::istringstream ls{std::string(line)};
    std::string key, value;
    ls >> key >> value;
    if (key.empty() || value.empty()) {
      return make_error("expected '<key> <value>', got '" + std::string(line) +
                            "'",
                        loc);
    }
    if (key == "family") {
      d.family = value;
      continue;
    }
    double num = 0;
    if (!parse_number(value, num)) {
      return make_error("key '" + key + "' needs a numeric value, got '" +
                            value + "'",
                        loc);
    }
    if (key == "aluts") d.resources.aluts = static_cast<std::uint64_t>(num);
    else if (key == "regs") d.resources.regs = static_cast<std::uint64_t>(num);
    else if (key == "bram_bits") d.resources.bram_bits = static_cast<std::uint64_t>(num);
    else if (key == "dsps") d.resources.dsps = static_cast<std::uint64_t>(num);
    else if (key == "fmax_mhz") d.fmax_hz = num * 1e6;
    else if (key == "freq_mhz") d.default_freq_hz = num * 1e6;
    else if (key == "dram_gbps") {
      d.dram_peak_bw = num * 1e9;
      // Keep the timing model consistent with the declared peak.
      d.dram.io_clock_hz = d.dram_peak_bw / d.dram.bus_bytes;
    } else if (key == "host_gbps") d.host.peak_bw = num * 1e9;
    else if (key == "word_bytes") d.word_bytes = static_cast<std::uint32_t>(num);
    else if (key == "shell_overhead") d.shell_overhead = num;
    else {
      return make_error("unknown key '" + key + "' in device block", loc);
    }
  }

  if (!closed || in_block) {
    return make_error("missing closing '}' for device block",
                      SourceLoc{line_no, 1});
  }
  if (d.dram_peak_bw <= 0) {
    d.dram_peak_bw = d.dram.io_clock_hz * d.dram.bus_bytes;
  }
  if (d.fmax_hz < d.default_freq_hz) d.fmax_hz = d.default_freq_hz;
  return d;
}

}  // namespace tytra::target

namespace tytra {

std::string ResourceVec::to_string() const {
  std::ostringstream os;
  os << "aluts=" << aluts << " regs=" << regs << " bram_bits=" << bram_bits
     << " dsps=" << dsps;
  return os.str();
}

double Utilization::max() const {
  return std::max({aluts, regs, bram, dsps});
}

Utilization utilization(const ResourceVec& used,
                        const target::DeviceDesc& device) {
  const double avail = 1.0 - device.shell_overhead;
  auto pct = [avail](double u, std::uint64_t cap) {
    const double effective = static_cast<double>(cap) * avail;
    return effective > 0 ? u / effective * 100.0 : (u > 0 ? 1e9 : 0.0);
  };
  Utilization out;
  out.aluts = pct(used.aluts, device.resources.aluts);
  out.regs = pct(used.regs, device.resources.regs);
  out.bram = pct(used.bram_bits, device.resources.bram_bits);
  out.dsps = pct(used.dsps, device.resources.dsps);
  return out;
}

}  // namespace tytra
