#include "tytra/ir/structural_hash.hpp"

namespace tytra::ir {

namespace {

// Record tags keep adjacent variable-length sections from aliasing: a
// module with one fewer memobj and one extra streamobj must not replay
// the same field stream.
enum Tag : std::uint64_t {
  kTagMeta = 0x01,
  kTagMemObj = 0x02,
  kTagStreamObj = 0x03,
  kTagPort = 0x04,
  kTagFunction = 0x05,
  kTagParam = 0x06,
  kTagInstr = 0x07,
  kTagOffset = 0x08,
  kTagCall = 0x09,
  kTagOperand = 0x0a,
};

/// The walk is written once against a sink; sinks fan the field stream
/// into one or two HashBuilder states.
template <class Sink>
void put_scalar(Sink& s, const ScalarType& t) {
  s.u64(static_cast<std::uint64_t>(t.kind));
  s.u64(t.bits);
  // The printed form carries fractional bits only for fixed-point types;
  // mirror it so print-equality implies hash-equality.
  if (t.kind == ScalarKind::Fixed) s.u64(t.frac);
}

template <class Sink>
void put_type(Sink& s, const Type& t) {
  put_scalar(s, t.scalar);
  s.u64(t.lanes);
}

template <class Sink>
void put_operand(Sink& s, const Operand& op) {
  s.u64(kTagOperand);
  s.u64(static_cast<std::uint64_t>(op.kind));
  switch (op.kind) {
    case Operand::Kind::Local:
    case Operand::Kind::Global: s.str(op.name); break;
    case Operand::Kind::ConstInt: s.i64(op.ival); break;
    case Operand::Kind::ConstFloat: s.f64(op.fval); break;
  }
}

template <class Sink>
void put_function(Sink& s, const Function& f) {
  s.u64(kTagFunction);
  s.str(f.name);
  s.u64(static_cast<std::uint64_t>(f.kind));
  s.u64(f.params.size());
  for (const auto& p : f.params) {
    s.u64(kTagParam);
    put_type(s, p.type);
    s.str(p.name);
  }
  s.u64(f.body.size());
  for (const auto& item : f.body) {
    if (const auto* off = std::get_if<OffsetDecl>(&item)) {
      s.u64(kTagOffset);
      put_type(s, off->type);
      s.str(off->result);
      s.str(off->base);
      s.i64(off->offset);
    } else if (const auto* instr = std::get_if<Instr>(&item)) {
      s.u64(kTagInstr);
      s.u64(static_cast<std::uint64_t>(instr->op));
      put_type(s, instr->type);
      s.str(instr->result);
      s.u64(instr->result_global ? 1 : 0);
      s.u64(instr->args.size());
      for (const auto& a : instr->args) put_operand(s, a);
    } else {
      const auto& call = std::get<Call>(item);
      s.u64(kTagCall);
      s.str(call.callee);
      s.u64(static_cast<std::uint64_t>(call.kind_annot));
      s.u64(call.args.size());
      for (const auto& a : call.args) put_operand(s, a);
    }
  }
}

template <class Sink>
void put_module(Sink& s, const Module& m) {
  s.str(m.name);
  s.u64(kTagMeta);
  s.u64(m.meta.global_size);
  s.u64(m.meta.nki);
  s.u64(static_cast<std::uint64_t>(m.meta.form));
  s.f64(m.meta.freq_hz);
  s.u64(m.meta.ii);

  s.u64(m.memobjs.size());
  for (const auto& mo : m.memobjs) {
    s.u64(kTagMemObj);
    s.str(mo.name);
    put_scalar(s, mo.elem);
    s.u64(mo.size_words);
    s.u64(static_cast<std::uint64_t>(mo.space));
  }
  s.u64(m.streamobjs.size());
  for (const auto& so : m.streamobjs) {
    s.u64(kTagStreamObj);
    s.str(so.name);
    s.str(so.memobj);
    s.u64(static_cast<std::uint64_t>(so.dir));
    s.u64(static_cast<std::uint64_t>(so.pattern));
    // Hashed unconditionally, although the printer shows it only for
    // strided patterns: the throughput model reads a stream object's
    // stride under the *port's* pattern, so a hand-built module can make
    // it significant even when the stream object itself is contiguous.
    // Parser- and builder-produced modules always carry the default
    // stride 1 there, where the digest and the printed form agree.
    s.u64(so.stride_words);
  }
  s.u64(m.ports.size());
  for (const auto& p : m.ports) {
    s.u64(kTagPort);
    s.str(p.name);
    s.u64(static_cast<std::uint64_t>(p.space));
    put_type(s, p.type);
    s.u64(static_cast<std::uint64_t>(p.dir));
    s.u64(static_cast<std::uint64_t>(p.pattern));
    s.i64(p.init_offset);
    s.str(p.streamobj);
  }
  s.u64(m.functions.size());
  for (const auto& f : m.functions) put_function(s, f);
}

/// Sink over one caller-supplied builder.
struct OneSink {
  HashBuilder* h;
  void u64(std::uint64_t v) { h->u64(v); }
  void i64(std::int64_t v) { h->i64(v); }
  void f64(double v) { h->f64(v); }
  void str(std::string_view v) { h->str(v); }
};

/// FNV-1a under a different offset basis and prime, so the check half
/// compresses string content independently of HashBuilder::str's
/// standard FNV word — a string collision against one compression does
/// not carry over to the other, keeping the digest's collision
/// resistance ~128-bit for names too.
std::uint64_t fnv1a_alt(std::string_view s) {
  std::uint64_t h = 0x6c62272e07bb0142ULL;
  for (const char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x00000100000001b5ULL;
  }
  return h;
}

/// Sink fanning one walk into two independently seeded states.
struct WideSink {
  HashBuilder a;  // default seed: `key` matches structural_hash()
  HashBuilder b{0x9ae16a3b2f90404fULL};
  void u64(std::uint64_t v) { a.u64(v), b.u64(v); }
  void i64(std::int64_t v) { a.i64(v), b.i64(v); }
  void f64(double v) { a.f64(v), b.f64(v); }
  void str(std::string_view v) {
    a.str(v);
    b.u64(v.size()).u64(fnv1a_alt(v));
  }
};

}  // namespace

void hash_module(HashBuilder& h, const Module& module) {
  OneSink sink{&h};
  put_module(sink, module);
}

std::uint64_t structural_hash(const Module& module) {
  HashBuilder h;
  hash_module(h, module);
  return h.value();
}

StructuralDigest structural_digest(const Module& module) {
  WideSink sink;
  put_module(sink, module);
  return {sink.a.value(), sink.b.value()};
}

}  // namespace tytra::ir
