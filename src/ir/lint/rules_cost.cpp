// Built-in lint rules that price the design against a calibrated device
// (Options::db non-null; skipped otherwise): offset-buffer BRAM pressure
// and roofline memory-boundedness. These are the "will it cost well?"
// half of the catalog — the EKIT model turned into diagnostics.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>

#include "rules.hpp"
#include "tytra/cost/calibration.hpp"
#include "tytra/cost/roofline.hpp"

namespace tytra::ir::lint {
namespace {

std::string fmt_double(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.3g", v);
  return buf;
}

// TL006: each offset declaration implies a smart buffer spanning the
// offset window in on-chip memory (paper Eq. 2's Noff term). Estimate the
// per-stream window span in bits, replicate per lane, and compare against
// the device BRAM: over 25% warns (the DSE will struggle to replicate
// lanes), over 100% errors (the design cannot place at all).
void rule_offset_buffer_pressure(const Context& ctx, Reporter& rep) {
  const auto& resources = ctx.db->device().resources;
  if (resources.bram_bits == 0) return;
  std::uint64_t total_bits = 0;
  SourceLoc worst_loc;
  std::uint64_t worst_bits = 0;
  for (const FunctionSummary* fs : reachable_functions(ctx)) {
    // Window span per offset base: [min(0, offsets)..max(0, offsets)].
    struct Window { std::int64_t lo{0}, hi{0}; std::uint64_t elem_bits{0};
                    SourceLoc loc; };
    std::map<std::string, Window> windows;
    for (const OffsetDecl* off : fs->offsets) {
      Window& w = windows[off->base];
      if (off->offset < w.lo) { w.lo = off->offset; w.loc = off->loc; }
      if (off->offset > w.hi) { w.hi = off->offset; w.loc = off->loc; }
      w.elem_bits = off->type.total_bits();
    }
    for (const auto& [base, w] : windows) {
      const std::uint64_t bits =
          static_cast<std::uint64_t>(w.hi - w.lo) * w.elem_bits;
      total_bits += bits;
      if (bits > worst_bits) { worst_bits = bits; worst_loc = w.loc; }
    }
  }
  total_bits *= ctx.summary.params.knl;
  if (total_bits == 0) return;
  const double share =
      100.0 * static_cast<double>(total_bits) /
      static_cast<double>(resources.bram_bits);
  if (share <= 25.0) return;
  const Severity sev = share > 100.0 ? Severity::Error : Severity::Warning;
  rep.report(sev,
             "stream-offset buffers need " + std::to_string(total_bits) +
                 " bits of on-chip memory (" + fmt_double(share) + "% of " +
                 ctx.db->device().name + "'s " +
                 std::to_string(resources.bram_bits) + " BRAM bits)",
             worst_loc);
}

// TL008: place the design on the device roofline; a memory-bound point
// means more lanes buy nothing — a Note steering the DSE user toward
// bandwidth (exec-form, tiling) rather than compute scaling.
void rule_memory_bound(const Context& ctx, Reporter& rep) {
  if (ctx.summary.params.ngs == 0) return;
  const cost::RooflinePoint point = cost::roofline(ctx.module, *ctx.db);
  if (!point.memory_bound) return;
  rep.report(Severity::Note,
             "design is memory-bound on " + ctx.db->device().name +
                 ": arithmetic intensity " +
                 fmt_double(point.arithmetic_intensity) +
                 " ops/byte is below the balance point " +
                 fmt_double(point.balance_point) +
                 "; extra lanes will not raise throughput");
}

}  // namespace

void register_device_rules(Registry& registry) {
  registry.add({{"TL006", "offset-buffer-pressure", Severity::Warning,
                 "stream-offset windows strain the device BRAM",
                 /*needs_device=*/true},
                rule_offset_buffer_pressure});
  registry.add({{"TL008", "memory-bound", Severity::Note,
                 "design sits under the bandwidth roof, not the compute roof",
                 /*needs_device=*/true},
                rule_memory_bound});
}

}  // namespace tytra::ir::lint
