#include "tytra/ir/lint.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "rules.hpp"
#include "tytra/support/json.hpp"

namespace tytra::ir::lint {

const Registry& Registry::instance() {
  static Registry reg = [] {
    Registry r;
    register_structure_rules(r);
    register_device_rules(r);
    return r;
  }();
  return reg;
}

void Registry::add(Rule rule) {
  if (rule.info.code.empty() || !rule.run) {
    throw std::invalid_argument(
        "ir::lint::Registry: rule needs a code and a body");
  }
  if (find(rule.info.code) != nullptr) {
    throw std::invalid_argument("ir::lint::Registry: rule code '" +
                                std::string(rule.info.code) +
                                "' is already registered");
  }
  rules_.push_back(std::move(rule));
}

const Rule* Registry::find(std::string_view code) const {
  for (const auto& r : rules_) {
    if (r.info.code == code) return &r;
  }
  return nullptr;
}

LintReport run_lint(const Module& module, const Options& options) {
  const AnalysisSummary summary = summarize(module);
  const Context ctx{module, summary, options.db};
  LintReport report;
  for (const Rule& rule : Registry::instance().rules()) {
    if (rule.info.needs_device && options.db == nullptr) continue;
    Reporter reporter(rule.info, report.findings);
    rule.run(ctx, reporter);
    ++report.rules_run;
  }
  return report;
}

bool fails(const LintReport& report, FailOn fail_on) {
  if (report.errors() > 0) return true;
  return fail_on == FailOn::Warning && report.warnings() > 0;
}

std::string format_lint(const LintReport& report, std::string_view subject) {
  std::string out = "lint ";
  out += subject;
  out += ": ";
  if (report.clean()) {
    out += "clean (" + std::to_string(report.rules_run) + " rules)\n";
    return out;
  }
  const auto plural = [](std::size_t n, const char* word) {
    return std::to_string(n) + " " + word + (n == 1 ? "" : "s");
  };
  std::string counts;
  if (report.errors() > 0) counts += plural(report.errors(), "error");
  if (report.warnings() > 0) {
    counts += counts.empty() ? "" : ", ";
    counts += plural(report.warnings(), "warning");
  }
  if (report.notes() > 0) {
    counts += counts.empty() ? "" : ", ";
    counts += plural(report.notes(), "note");
  }
  out += counts + " (" + std::to_string(report.rules_run) + " rules)\n";
  for (const auto& d : report.findings.all()) {
    out += "  " + d.to_string() + "\n";
  }
  return out;
}

std::string format_lint_json(const LintReport& report, std::string_view name) {
  std::string out = "{\"name\": \"";
  out += json::escape(name);
  out += "\", \"clean\": ";
  out += report.clean() ? "true" : "false";
  out += ", \"findings\": " + report.findings.to_json();
  out += ", \"counts\": {\"errors\": " + std::to_string(report.errors()) +
         ", \"warnings\": " + std::to_string(report.warnings()) +
         ", \"notes\": " + std::to_string(report.notes()) + "}";
  out += ", \"rules_run\": " + std::to_string(report.rules_run) + "}";
  return out;
}

std::string format_rules(const Registry& registry) {
  std::vector<const Rule*> sorted;
  sorted.reserve(registry.rules().size());
  for (const Rule& rule : registry.rules()) sorted.push_back(&rule);
  std::sort(sorted.begin(), sorted.end(), [](const Rule* a, const Rule* b) {
    return a->info.code < b->info.code;
  });
  std::string out = "lint rules (ir::lint::Registry):\n";
  for (const Rule* rule : sorted) {
    out += "  ";
    out += rule->info.code;
    out += "  ";
    const std::string_view sev = severity_name(rule->info.severity);
    out += sev;
    out.append(9 - sev.size(), ' ');  // "warning" + 2 = widest column
    out += rule->info.name;
    out += " - ";
    out += rule->info.summary;
    if (rule->info.needs_device) out += " (needs a device)";
    out += "\n";
  }
  return out;
}

}  // namespace tytra::ir::lint
