// Built-in lint rules that need only the IR structure (and the shared
// AnalysisSummary): dead Manage-IR objects, unused values, pipeline-shape
// hazards and foldable work. Device-priced rules live in rules_cost.cpp.

#include <cstdint>
#include <cstdlib>
#include <string>
#include <unordered_set>
#include <vector>

#include "rules.hpp"
#include "tytra/ir/instr.hpp"

namespace tytra::ir::lint {

std::vector<const FunctionSummary*> reachable_functions(const Context& ctx) {
  std::vector<const FunctionSummary*> out;
  std::unordered_set<std::string_view> seen;
  std::vector<const FunctionSummary*> work;
  if (const FunctionSummary* entry = ctx.summary.entry()) {
    work.push_back(entry);
    seen.insert(entry->func->name);
  }
  while (!work.empty()) {
    const FunctionSummary* fs = work.back();
    work.pop_back();
    out.push_back(fs);
    for (const Call* call : fs->calls) {
      if (seen.contains(call->callee)) continue;
      if (const FunctionSummary* child = ctx.summary.find(call->callee)) {
        seen.insert(child->func->name);
        work.push_back(child);
      }
    }
  }
  return out;
}

namespace {

void rule_unused_memobj(const Context& ctx, Reporter& rep) {
  for (const MemObject& mem : ctx.module.memobjs) {
    bool used = false;
    for (const StreamObject& s : ctx.module.streamobjs) {
      if (s.memobj == mem.name) { used = true; break; }
    }
    if (!used) {
      rep.report("memory object @" + mem.name +
                     " is not read or written by any stream object",
                 mem.loc);
    }
  }
}

void rule_unused_streamobj(const Context& ctx, Reporter& rep) {
  for (const StreamObject& s : ctx.module.streamobjs) {
    bool used = false;
    for (const PortBinding& port : ctx.module.ports) {
      if (port.streamobj == s.name) { used = true; break; }
    }
    if (!used) {
      rep.report("stream object @" + s.name +
                     " is not bound to any @main port",
                 s.loc);
    }
  }
}

void rule_unused_param(const Context& ctx, Reporter& rep) {
  for (const FunctionSummary* fs : reachable_functions(ctx)) {
    const Function& fn = *fs->func;
    if (fn.params.empty()) continue;
    std::unordered_set<std::string_view> used;
    for (const Instr* instr : fs->instrs) {
      for (const Operand& a : instr->args) {
        if (a.kind == Operand::Kind::Local) used.insert(a.name);
      }
      // An output parameter is "used" by the store into the port global of
      // the same name (`ui24 @out = mov ...` binds the call-site @out).
      if (instr->result_global) used.insert(instr->result);
    }
    for (const OffsetDecl* off : fs->offsets) used.insert(off->base);
    for (const Call* call : fs->calls) {
      for (const Operand& a : call->args) {
        if (a.kind == Operand::Kind::Local) used.insert(a.name);
      }
    }
    for (const Param& p : fn.params) {
      if (!used.contains(p.name)) {
        rep.report("parameter %" + p.name + " of @" + fn.name +
                       " is never used",
                   fn.loc);
      }
    }
  }
}

void rule_unreachable_function(const Context& ctx, Reporter& rep) {
  std::unordered_set<const Function*> reachable;
  for (const FunctionSummary* fs : reachable_functions(ctx)) {
    reachable.insert(fs->func);
  }
  for (const Function& fn : ctx.module.functions) {
    if (!reachable.contains(&fn)) {
      rep.report("function @" + fn.name + " is not reachable from @main",
                 fn.loc);
    }
  }
}

void rule_seq_serializes_pipeline(const Context& ctx, Reporter& rep) {
  // A call-only pipe wrapper (like @main) is not a compute stage; only a
  // pipe that actually holds instructions establishes a streaming pipeline
  // for a seq PE to stall.
  bool compute_pipe = false;
  std::vector<const Function*> seqs;
  for (const FunctionSummary* fs : reachable_functions(ctx)) {
    if (fs->func->kind == FuncKind::Pipe && !fs->instrs.empty()) {
      compute_pipe = true;
    }
    if (fs->func->kind == FuncKind::Seq) seqs.push_back(fs->func);
  }
  if (!compute_pipe) return;
  for (const Function* fn : seqs) {
    rep.report("seq function @" + fn->name +
                   " serializes the streaming pipeline: each work-item "
                   "occupies the PE for NI cycles while pipe stages idle",
               fn->loc);
  }
}

void rule_lanes_indivisible(const Context& ctx, Reporter& rep) {
  const DesignParams& p = ctx.summary.params;
  if (p.knl > 1 && p.ngs > 0 && p.ngs % p.knl != 0) {
    rep.report("NGS " + std::to_string(p.ngs) + " is not divisible by KNL " +
               std::to_string(p.knl) +
               "; the replicated lanes underfill on the last work-items");
  }
}

void rule_duplicate_reduction(const Context& ctx, Reporter& rep) {
  for (const FunctionSummary* fs : reachable_functions(ctx)) {
    const auto& instrs = fs->instrs;
    for (std::size_t i = 0; i < instrs.size(); ++i) {
      if (!instrs[i]->result_global) continue;
      for (std::size_t j = 0; j < i; ++j) {
        if (!instrs[j]->result_global) continue;
        if (instrs[i]->op == instrs[j]->op &&
            instrs[i]->result == instrs[j]->result &&
            instrs[i]->args == instrs[j]->args) {
          rep.report("reduction into @" + instrs[i]->result +
                         " duplicates an identical reduction in @" +
                         fs->func->name + "; the fold is applied twice",
                     instrs[i]->loc);
          break;
        }
      }
    }
  }
}

void rule_dead_port(const Context& ctx, Reporter& rep) {
  if (ctx.module.ports.empty()) return;
  std::unordered_set<std::string_view> referenced;
  for (const FunctionSummary* fs : reachable_functions(ctx)) {
    for (const Instr* instr : fs->instrs) {
      if (instr->result_global) referenced.insert(instr->result);
      for (const Operand& a : instr->args) {
        if (a.kind == Operand::Kind::Global) referenced.insert(a.name);
      }
    }
    for (const OffsetDecl* off : fs->offsets) referenced.insert(off->base);
    for (const Call* call : fs->calls) {
      for (const Operand& a : call->args) {
        if (a.kind == Operand::Kind::Global) referenced.insert(a.name);
      }
    }
  }
  for (const PortBinding& port : ctx.module.ports) {
    if (!referenced.contains(port.name)) {
      rep.report("port @main." + port.name +
                     " is never referenced by the compute-IR reachable "
                     "from @main",
                 port.loc);
    }
  }
}

void rule_pipeline_underfill(const Context& ctx, Reporter& rep) {
  const DesignParams& p = ctx.summary.params;
  if (p.ngs > 0 && p.kpd > 0 &&
      p.ngs < static_cast<std::uint64_t>(p.kpd)) {
    rep.report("NDRange of " + std::to_string(p.ngs) +
               " work-items is smaller than the pipeline depth (KPD " +
               std::to_string(p.kpd) + "); the pipeline never fills");
  }
}

void rule_offset_out_of_range(const Context& ctx, Reporter& rep) {
  const std::uint64_t ngs = ctx.summary.params.ngs;
  if (ngs == 0) return;
  for (const FunctionSummary* fs : reachable_functions(ctx)) {
    for (const OffsetDecl* off : fs->offsets) {
      const std::uint64_t magnitude =
          static_cast<std::uint64_t>(std::llabs(off->offset));
      if (magnitude >= ngs) {
        rep.report("offset !" + std::string(off->offset >= 0 ? "+" : "") +
                       std::to_string(off->offset) + " on %" + off->base +
                       " reaches outside the NDRange (NGS " +
                       std::to_string(ngs) + ")",
                   off->loc);
      }
    }
  }
}

void rule_constant_foldable(const Context& ctx, Reporter& rep) {
  for (const FunctionSummary* fs : reachable_functions(ctx)) {
    for (const Instr* instr : fs->instrs) {
      if (instr->args.empty()) continue;
      bool all_const = true;
      for (const Operand& a : instr->args) {
        if (!a.is_const()) { all_const = false; break; }
      }
      if (all_const) {
        rep.report("all operands of this " +
                       std::string(opcode_name(instr->op)) +
                       " are constants; the result is foldable at "
                       "compile time",
                   instr->loc);
      }
    }
  }
}

}  // namespace

void register_structure_rules(Registry& registry) {
  registry.add({{"TL001", "unused-memobj", Severity::Warning,
                 "memory object is not connected to any stream object"},
                rule_unused_memobj});
  registry.add({{"TL002", "unused-streamobj", Severity::Warning,
                 "stream object is not bound to any @main port"},
                rule_unused_streamobj});
  registry.add({{"TL003", "unused-param", Severity::Warning,
                 "function parameter is never read or stored through"},
                rule_unused_param});
  registry.add({{"TL004", "unreachable-function", Severity::Warning,
                 "function is not reachable from @main"},
                rule_unreachable_function});
  registry.add({{"TL005", "seq-serializes-pipeline", Severity::Warning,
                 "a seq PE amid compute pipes serializes the stream"},
                rule_seq_serializes_pipeline});
  registry.add({{"TL007", "lanes-indivisible", Severity::Warning,
                 "NGS does not divide across the KNL replicated lanes"},
                rule_lanes_indivisible});
  registry.add({{"TL009", "duplicate-reduction", Severity::Warning,
                 "identical reduction into the same accumulator twice"},
                rule_duplicate_reduction});
  registry.add({{"TL010", "dead-port", Severity::Warning,
                 "@main port never referenced by reachable compute-IR"},
                rule_dead_port});
  registry.add({{"TL011", "pipeline-underfill", Severity::Warning,
                 "NDRange smaller than the pipeline depth (KPD)"},
                rule_pipeline_underfill});
  registry.add({{"TL012", "offset-out-of-range", Severity::Error,
                 "stream offset reaches outside the NDRange"},
                rule_offset_out_of_range});
  registry.add({{"TL013", "constant-foldable", Severity::Warning,
                 "instruction with all-constant operands"},
                rule_constant_foldable});
}

}  // namespace tytra::ir::lint
