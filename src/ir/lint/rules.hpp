#pragma once

// Internal registration hooks for the built-in lint rules. Each
// rules_*.cpp exposes one function; Registry::instance() (lint.cpp) calls
// them all, so the rules live behind an ordinary function call and a
// static library cannot dead-strip them (the kernels::Registry lesson).

#include "tytra/ir/lint.hpp"

namespace tytra::ir::lint {

/// TL001-TL005, TL009-TL013: rules over the IR structure alone.
void register_structure_rules(Registry& registry);

/// TL006-TL008: rules that price the design against a calibrated device.
void register_device_rules(Registry& registry);

/// Function summaries reachable from @main via calls (entry first).
/// Shared by rules that must ignore dead code (defined in
/// rules_structure.cpp; TL004 reports the unreachable remainder).
std::vector<const FunctionSummary*> reachable_functions(const Context& ctx);

}  // namespace tytra::ir::lint
