#include "tytra/ir/passes.hpp"

#include <cmath>
#include <map>
#include <set>
#include <tuple>

namespace tytra::ir {

namespace {

/// Constant value of an operand, if it is one.
bool const_value(const Operand& op, double& out) {
  if (op.kind == Operand::Kind::ConstInt) {
    out = static_cast<double>(op.ival);
    return true;
  }
  if (op.kind == Operand::Kind::ConstFloat) {
    out = op.fval;
    return true;
  }
  return false;
}

/// Evaluates `op` over constant operands; false when not foldable.
bool fold_op(Opcode op, const Type& type, const std::vector<double>& vals,
             double& out) {
  const bool integer = !type.scalar.is_float();
  const auto a = !vals.empty() ? vals[0] : 0.0;
  const auto b = vals.size() > 1 ? vals[1] : 0.0;
  const auto c = vals.size() > 2 ? vals[2] : 0.0;
  const auto ia = static_cast<std::int64_t>(a);
  const auto ib = static_cast<std::int64_t>(b);
  switch (op) {
    case Opcode::Add: out = a + b; return true;
    case Opcode::Sub: out = a - b; return true;
    case Opcode::Mul: out = a * b; return true;
    case Opcode::Div:
      if (b == 0) return false;
      out = integer ? static_cast<double>(ia / ib) : a / b;
      return true;
    case Opcode::Rem:
      if (ib == 0 || !integer) return false;
      out = static_cast<double>(ia % ib);
      return true;
    case Opcode::Shl: out = static_cast<double>(ia << (ib & 63)); return true;
    case Opcode::LShr:
      out = static_cast<double>(static_cast<std::uint64_t>(ia) >> (ib & 63));
      return true;
    case Opcode::AShr: out = static_cast<double>(ia >> (ib & 63)); return true;
    case Opcode::And: out = static_cast<double>(ia & ib); return true;
    case Opcode::Or: out = static_cast<double>(ia | ib); return true;
    case Opcode::Xor: out = static_cast<double>(ia ^ ib); return true;
    case Opcode::Not: out = static_cast<double>(~ia); return true;
    case Opcode::Min: out = std::min(a, b); return true;
    case Opcode::Max: out = std::max(a, b); return true;
    case Opcode::Abs: out = std::abs(a); return true;
    case Opcode::Neg: out = -a; return true;
    case Opcode::Mac: out = a * b + c; return true;
    case Opcode::Mov: out = a; return true;
    case Opcode::CmpEq: out = a == b ? 1 : 0; return true;
    case Opcode::CmpNe: out = a != b ? 1 : 0; return true;
    case Opcode::CmpLt: out = a < b ? 1 : 0; return true;
    case Opcode::CmpLe: out = a <= b ? 1 : 0; return true;
    case Opcode::CmpGt: out = a > b ? 1 : 0; return true;
    case Opcode::CmpGe: out = a >= b ? 1 : 0; return true;
    default:
      return false;  // sqrt/exp/recip/select: keep exact hardware semantics
  }
}

Operand make_const(const Type& type, double value) {
  if (type.scalar.is_float()) return Operand::const_float(value);
  return Operand::const_int(static_cast<std::int64_t>(value));
}

/// Replaces uses of `name` with `replacement` in the remaining body.
void replace_uses(Function& f, std::size_t from_index, const std::string& name,
                  const Operand& replacement) {
  for (std::size_t i = from_index; i < f.body.size(); ++i) {
    if (auto* instr = std::get_if<Instr>(&f.body[i])) {
      for (auto& a : instr->args) {
        if (a.kind == Operand::Kind::Local && a.name == name) a = replacement;
      }
    } else if (auto* call = std::get_if<Call>(&f.body[i])) {
      for (auto& a : call->args) {
        if (a.kind == Operand::Kind::Local && a.name == name) a = replacement;
      }
    }
  }
}

}  // namespace

PassStats fold_constants(Module& module) {
  PassStats stats;
  for (auto& f : module.functions) {
    for (std::size_t i = 0; i < f.body.size(); ++i) {
      auto* instr = std::get_if<Instr>(&f.body[i]);
      if (instr == nullptr || instr->result_global) continue;
      std::vector<double> vals;
      bool all_const = true;
      for (const auto& a : instr->args) {
        double v = 0;
        if (!const_value(a, v)) {
          all_const = false;
          break;
        }
        vals.push_back(v);
      }
      if (!all_const) continue;
      double folded = 0;
      if (!fold_op(instr->op, instr->type, vals, folded)) continue;
      replace_uses(f, i + 1, instr->result, make_const(instr->type, folded));
      f.body.erase(f.body.begin() + static_cast<std::ptrdiff_t>(i));
      --i;
      ++stats.folded;
    }
  }
  return stats;
}

PassStats eliminate_common_subexpressions(Module& module) {
  PassStats stats;
  for (auto& f : module.functions) {
    using Key = std::tuple<Opcode, std::uint8_t, std::uint16_t, std::uint16_t,
                           std::string>;
    std::map<Key, std::string> seen;
    for (std::size_t i = 0; i < f.body.size(); ++i) {
      auto* instr = std::get_if<Instr>(&f.body[i]);
      if (instr == nullptr || instr->result_global) continue;
      std::string operands;
      bool commutable = op_info(instr->op).commutative &&
                        instr->args.size() == 2;
      std::vector<std::string> parts;
      for (const auto& a : instr->args) {
        std::string p;
        switch (a.kind) {
          case Operand::Kind::Local: p = "%"; p += a.name; break;
          case Operand::Kind::Global: p = "@"; p += a.name; break;
          case Operand::Kind::ConstInt: p = "#"; p += std::to_string(a.ival); break;
          case Operand::Kind::ConstFloat: p = "~"; p += std::to_string(a.fval); break;
        }
        parts.push_back(std::move(p));
      }
      if (commutable && parts[1] < parts[0]) std::swap(parts[0], parts[1]);
      for (const auto& p : parts) operands += p + ",";
      Key key{instr->op, static_cast<std::uint8_t>(instr->type.scalar.kind),
              instr->type.scalar.bits, instr->type.lanes, operands};
      const auto it = seen.find(key);
      if (it == seen.end()) {
        seen.emplace(std::move(key), instr->result);
        continue;
      }
      replace_uses(f, i + 1, instr->result, Operand::local(it->second));
      f.body.erase(f.body.begin() + static_cast<std::ptrdiff_t>(i));
      --i;
      ++stats.merged;
    }
  }
  return stats;
}

PassStats eliminate_dead_code(Module& module) {
  PassStats stats;
  for (auto& f : module.functions) {
    bool changed = true;
    while (changed) {
      changed = false;
      std::set<std::string> used;
      for (const auto& item : f.body) {
        if (const auto* instr = std::get_if<Instr>(&item)) {
          for (const auto& a : instr->args) {
            if (a.kind == Operand::Kind::Local) used.insert(a.name);
          }
        } else if (const auto* call = std::get_if<Call>(&item)) {
          for (const auto& a : call->args) {
            if (a.kind == Operand::Kind::Local) used.insert(a.name);
          }
        } else if (const auto* off = std::get_if<OffsetDecl>(&item)) {
          used.insert(off->base);
        }
      }
      for (std::size_t i = 0; i < f.body.size(); ++i) {
        if (const auto* instr = std::get_if<Instr>(&f.body[i])) {
          // Global writes (stream outs / reductions) are live by definition.
          if (!instr->result_global && !used.contains(instr->result)) {
            f.body.erase(f.body.begin() + static_cast<std::ptrdiff_t>(i));
            ++stats.removed;
            changed = true;
            break;
          }
        } else if (const auto* off = std::get_if<OffsetDecl>(&f.body[i])) {
          if (!used.contains(off->result)) {
            f.body.erase(f.body.begin() + static_cast<std::ptrdiff_t>(i));
            ++stats.removed;
            changed = true;
            break;
          }
        }
      }
    }
  }
  return stats;
}

PassStats optimize(Module& module) {
  PassStats total;
  for (int round = 0; round < 8; ++round) {
    PassStats stats;
    const PassStats f = fold_constants(module);
    const PassStats c = eliminate_common_subexpressions(module);
    const PassStats d = eliminate_dead_code(module);
    stats.folded = f.folded;
    stats.merged = c.merged;
    stats.removed = d.removed;
    total.folded += stats.folded;
    total.merged += stats.merged;
    total.removed += stats.removed;
    if (stats.total() == 0) break;
  }
  return total;
}

}  // namespace tytra::ir
