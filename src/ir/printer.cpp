#include "tytra/ir/printer.hpp"

#include <sstream>

namespace tytra::ir {

namespace {

void print_body_item(std::ostringstream& os, const BodyItem& item) {
  if (const auto* off = std::get_if<OffsetDecl>(&item)) {
    os << "  " << off->type.to_string() << " %" << off->result << " = "
       << off->type.to_string() << " %" << off->base << ", !offset, !"
       << (off->offset >= 0 ? "+" : "") << off->offset << "\n";
    return;
  }
  if (const auto* instr = std::get_if<Instr>(&item)) {
    os << "  " << instr->type.to_string() << " "
       << (instr->result_global ? "@" : "%") << instr->result << " = "
       << opcode_name(instr->op) << " " << instr->type.to_string() << " ";
    for (std::size_t i = 0; i < instr->args.size(); ++i) {
      if (i != 0) os << ", ";
      os << print_operand(instr->args[i]);
    }
    os << "\n";
    return;
  }
  const auto& call = std::get<Call>(item);
  os << "  call @" << call.callee << "(";
  for (std::size_t i = 0; i < call.args.size(); ++i) {
    if (i != 0) os << ", ";
    os << print_operand(call.args[i]);
  }
  os << ") " << func_kind_name(call.kind_annot) << "\n";
}

}  // namespace

std::string print_operand(const Operand& operand) {
  switch (operand.kind) {
    case Operand::Kind::Local: return "%" + operand.name;
    case Operand::Kind::Global: return "@" + operand.name;
    case Operand::Kind::ConstInt: return std::to_string(operand.ival);
    case Operand::Kind::ConstFloat: {
      std::ostringstream os;
      os << operand.fval;
      std::string text = os.str();
      // Guarantee the token re-lexes as a float.
      if (text.find('.') == std::string::npos &&
          text.find('e') == std::string::npos) {
        text += ".0";
      }
      return text;
    }
  }
  return "?";
}

std::string print_function(const Function& function) {
  std::ostringstream os;
  os << "define void @" << function.name << "(";
  for (std::size_t i = 0; i < function.params.size(); ++i) {
    if (i != 0) os << ", ";
    os << function.params[i].type.to_string() << " %" << function.params[i].name;
  }
  os << ") " << func_kind_name(function.kind) << " {\n";
  for (const auto& item : function.body) print_body_item(os, item);
  os << "}\n";
  return os.str();
}

std::string print_module(const Module& module) {
  std::ostringstream os;
  os << "; TyTra-IR module\n";
  os << "!name = " << module.name << "\n";
  if (module.meta.global_size != 0) os << "!ngs = " << module.meta.global_size << "\n";
  if (module.meta.nki != 1) os << "!nki = " << module.meta.nki << "\n";
  os << "!form = " << exec_form_name(module.meta.form) << "\n";
  if (module.meta.freq_hz > 0) os << "!fd = " << module.meta.freq_hz << "\n";
  if (module.meta.ii != 1) os << "!ii = " << module.meta.ii << "\n";

  if (!module.memobjs.empty() || !module.streamobjs.empty()) {
    os << "\n; **** MANAGE-IR ****\n";
  }
  for (const auto& m : module.memobjs) {
    os << "memobj @" << m.name << " " << addr_space_name(m.space) << " "
       << m.elem.to_string() << " x " << m.size_words << "\n";
  }
  for (const auto& s : module.streamobjs) {
    os << "stream @" << s.name << " "
       << (s.dir == StreamDir::In ? "reads" : "writes") << " @" << s.memobj;
    if (s.pattern == AccessPattern::Strided) {
      os << " pattern strided " << s.stride_words;
    } else {
      os << " pattern cont";
    }
    os << "\n";
  }

  os << "\n; **** COMPUTE-IR ****\n";
  for (const auto& p : module.ports) {
    os << "@main." << p.name << " = addrSpace("
       << static_cast<int>(p.space) << ") " << p.type.to_string() << ", !\""
       << (p.dir == StreamDir::In ? "istream" : "ostream") << "\", !\""
       << (p.pattern == AccessPattern::Contiguous ? "CONT" : "STRIDED")
       << "\", !" << p.init_offset;
    if (!p.streamobj.empty()) os << ", !\"" << p.streamobj << "\"";
    os << "\n";
  }
  for (const auto& f : module.functions) {
    os << "\n" << print_function(f);
  }
  return os.str();
}

}  // namespace tytra::ir
