#include "tytra/ir/builder.hpp"

#include <algorithm>
#include <stdexcept>

namespace tytra::ir {

FunctionBuilder::FunctionBuilder(std::string name, FuncKind kind,
                                 BuildArena* arena)
    : arena_(arena) {
  func_.name = std::move(name);
  func_.kind = kind;
  if (arena_ != nullptr) {
    func_.params = arena_->take_params();
    func_.body = arena_->take_body();
  }
}

std::vector<Operand> FunctionBuilder::make_args(
    std::initializer_list<Operand> il) {
  std::vector<Operand> args =
      arena_ != nullptr ? arena_->take_operands() : std::vector<Operand>{};
  args.assign(il.begin(), il.end());
  return args;
}

std::string FunctionBuilder::fresh_name() {
  return "t" + std::to_string(next_id_++);
}

void FunctionBuilder::note_defined(const std::string& name, const Type& type) {
  for (const auto& [defined, _] : defined_) {
    if (defined == name) {
      throw std::invalid_argument("FunctionBuilder: redefinition of %" + name);
    }
  }
  defined_.emplace_back(name, type);
}

std::string FunctionBuilder::param(Type type, std::string name) {
  note_defined(name, type);
  func_.params.push_back({type, name});
  return name;
}

std::string FunctionBuilder::offset(const std::string& base, std::int64_t off,
                                    std::string name) {
  // The defined-value list carries each value's type, so resolving the
  // base is one scan of the (short) name list, not of the whole body.
  const Type* base_type = nullptr;
  for (const auto& [defined, type] : defined_) {
    if (defined == base) base_type = &type;
  }
  if (base_type == nullptr) {
    throw std::invalid_argument("FunctionBuilder: offset of unknown value %" + base);
  }
  const Type type = *base_type;
  if (name.empty()) {
    name = base + (off >= 0 ? "_p" : "_n") + std::to_string(off >= 0 ? off : -off);
  }
  note_defined(name, type);
  OffsetDecl decl;
  decl.type = type;
  decl.result = name;
  decl.base = base;
  decl.offset = off;
  func_.body.emplace_back(std::move(decl));
  return name;
}

std::string FunctionBuilder::instr(Opcode op, Type type,
                                   std::vector<Operand> args, std::string name) {
  const OpInfo& info = op_info(op);
  if (static_cast<int>(args.size()) != info.arity) {
    throw std::invalid_argument(
        "FunctionBuilder: op '" + std::string(info.name) + "' expects " +
        std::to_string(info.arity) + " operands, got " + std::to_string(args.size()));
  }
  if (name.empty()) name = fresh_name();
  note_defined(name, type);
  Instr instr;
  instr.op = op;
  instr.type = type;
  instr.result = name;
  instr.args = std::move(args);
  func_.body.emplace_back(std::move(instr));
  return name;
}

std::string FunctionBuilder::instr(Opcode op, Type type,
                                   std::initializer_list<Operand> args,
                                   std::string name) {
  return instr(op, type, make_args(args), std::move(name));
}

void FunctionBuilder::store(Type type, const std::string& target,
                            Operand value) {
  Instr instr;
  instr.op = Opcode::Mov;
  instr.type = type;
  instr.result = target;
  instr.result_global = true;
  if (arena_ != nullptr) instr.args = arena_->take_operands();
  instr.args.push_back(std::move(value));
  func_.body.emplace_back(std::move(instr));
}

void FunctionBuilder::reduce(Opcode op, Type type, const std::string& global,
                             std::vector<Operand> args) {
  args.push_back(Operand::global(global));
  const OpInfo& info = op_info(op);
  if (static_cast<int>(args.size()) != info.arity) {
    throw std::invalid_argument(
        "FunctionBuilder: reduction op '" + std::string(info.name) +
        "' expects " + std::to_string(info.arity) + " operands including the accumulator");
  }
  Instr instr;
  instr.op = op;
  instr.type = type;
  instr.result = global;
  instr.result_global = true;
  instr.args = std::move(args);
  func_.body.emplace_back(std::move(instr));
}

void FunctionBuilder::reduce(Opcode op, Type type, const std::string& global,
                             std::initializer_list<Operand> args) {
  reduce(op, type, global, make_args(args));
}

void FunctionBuilder::call(std::string callee, std::vector<Operand> args,
                           FuncKind kind) {
  Call call;
  call.callee = std::move(callee);
  call.args = std::move(args);
  call.kind_annot = kind;
  func_.body.emplace_back(std::move(call));
}

ModuleBuilder::ModuleBuilder(std::string name, BuildArena* arena) {
  mod_.name = std::move(name);
  if (arena != nullptr) {
    mod_.memobjs = arena->take_memobjs();
    mod_.streamobjs = arena->take_streamobjs();
    mod_.ports = arena->take_ports();
    mod_.functions = arena->take_functions();
  }
}

ModuleBuilder& ModuleBuilder::set_ndrange(std::uint64_t ngs) {
  mod_.meta.global_size = ngs;
  return *this;
}
ModuleBuilder& ModuleBuilder::set_nki(std::uint32_t nki) {
  mod_.meta.nki = nki;
  return *this;
}
ModuleBuilder& ModuleBuilder::set_form(ExecForm form) {
  mod_.meta.form = form;
  return *this;
}
ModuleBuilder& ModuleBuilder::set_freq(double hz) {
  mod_.meta.freq_hz = hz;
  return *this;
}
ModuleBuilder& ModuleBuilder::set_ii(std::uint32_t ii) {
  mod_.meta.ii = ii;
  return *this;
}

ModuleBuilder& ModuleBuilder::reserve_ports(std::size_t ports) {
  mod_.memobjs.reserve(mod_.memobjs.size() + ports);
  mod_.streamobjs.reserve(mod_.streamobjs.size() + ports);
  mod_.ports.reserve(mod_.ports.size() + ports);
  return *this;
}

void ModuleBuilder::add_port(const std::string& name, Type type, StreamDir dir,
                             AccessPattern pattern, std::uint64_t stride,
                             std::uint64_t size_words) {
  if (mod_.meta.global_size == 0) {
    throw std::invalid_argument(
        "ModuleBuilder: set_ndrange must precede add_*_port (memory objects "
        "are sized to the NDRange)");
  }
  MemObject& mem = mod_.memobjs.emplace_back();
  mem.name = "m_" + name;
  mem.elem = type.scalar;
  mem.size_words =
      size_words != 0 ? size_words : mod_.meta.global_size * type.lanes;
  mem.space = AddrSpace::Global;

  StreamObject& so = mod_.streamobjs.emplace_back();
  so.name = "strobj_" + name;
  so.memobj = mem.name;
  so.dir = dir;
  so.pattern = pattern;
  so.stride_words = stride;

  PortBinding& port = mod_.ports.emplace_back();
  port.name = name;
  port.space = AddrSpace::Global;
  port.type = type;
  port.dir = dir;
  port.pattern = pattern;
  port.streamobj = so.name;
}

ModuleBuilder& ModuleBuilder::add_input_port(const std::string& name, Type type,
                                             AccessPattern pattern,
                                             std::uint64_t stride,
                                             std::uint64_t size_words) {
  add_port(name, type, StreamDir::In, pattern, stride, size_words);
  return *this;
}

ModuleBuilder& ModuleBuilder::add_output_port(const std::string& name, Type type,
                                              AccessPattern pattern,
                                              std::uint64_t stride,
                                              std::uint64_t size_words) {
  add_port(name, type, StreamDir::Out, pattern, stride, size_words);
  return *this;
}

ModuleBuilder& ModuleBuilder::add(Function function) {
  mod_.functions.push_back(std::move(function));
  return *this;
}

Module ModuleBuilder::take() && { return std::move(mod_); }

}  // namespace tytra::ir
