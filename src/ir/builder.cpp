#include "tytra/ir/builder.hpp"

#include <algorithm>
#include <stdexcept>

namespace tytra::ir {

FunctionBuilder::FunctionBuilder(std::string name, FuncKind kind) {
  func_.name = std::move(name);
  func_.kind = kind;
}

std::string FunctionBuilder::fresh_name() {
  return "t" + std::to_string(next_id_++);
}

void FunctionBuilder::note_defined(const std::string& name) {
  if (std::find(defined_.begin(), defined_.end(), name) != defined_.end()) {
    throw std::invalid_argument("FunctionBuilder: redefinition of %" + name);
  }
  defined_.push_back(name);
}

std::string FunctionBuilder::param(Type type, std::string name) {
  note_defined(name);
  func_.params.push_back({type, name});
  return name;
}

std::string FunctionBuilder::offset(const std::string& base, std::int64_t off,
                                    std::string name) {
  if (std::find(defined_.begin(), defined_.end(), base) == defined_.end()) {
    throw std::invalid_argument("FunctionBuilder: offset of unknown value %" + base);
  }
  // Find the base type among params / previous results.
  Type type;
  bool found = false;
  for (const auto& p : func_.params) {
    if (p.name == base) {
      type = p.type;
      found = true;
    }
  }
  if (!found) {
    for (const auto& item : func_.body) {
      if (const auto* o = std::get_if<OffsetDecl>(&item); o != nullptr && o->result == base) {
        type = o->type;
        found = true;
      }
      if (const auto* i = std::get_if<Instr>(&item); i != nullptr && i->result == base) {
        type = i->type;
        found = true;
      }
    }
  }
  if (!found) {
    throw std::invalid_argument("FunctionBuilder: cannot infer type of %" + base);
  }
  if (name.empty()) {
    name = base + (off >= 0 ? "_p" : "_n") + std::to_string(off >= 0 ? off : -off);
  }
  note_defined(name);
  OffsetDecl decl;
  decl.type = type;
  decl.result = name;
  decl.base = base;
  decl.offset = off;
  func_.body.emplace_back(std::move(decl));
  return name;
}

std::string FunctionBuilder::instr(Opcode op, Type type,
                                   std::vector<Operand> args, std::string name) {
  const OpInfo& info = op_info(op);
  if (static_cast<int>(args.size()) != info.arity) {
    throw std::invalid_argument(
        "FunctionBuilder: op '" + std::string(info.name) + "' expects " +
        std::to_string(info.arity) + " operands, got " + std::to_string(args.size()));
  }
  if (name.empty()) name = fresh_name();
  note_defined(name);
  Instr instr;
  instr.op = op;
  instr.type = type;
  instr.result = name;
  instr.args = std::move(args);
  func_.body.emplace_back(std::move(instr));
  return name;
}

void FunctionBuilder::store(Type type, const std::string& target,
                            Operand value) {
  Instr instr;
  instr.op = Opcode::Mov;
  instr.type = type;
  instr.result = target;
  instr.result_global = true;
  instr.args.push_back(std::move(value));
  func_.body.emplace_back(std::move(instr));
}

void FunctionBuilder::reduce(Opcode op, Type type, const std::string& global,
                             std::vector<Operand> args) {
  args.push_back(Operand::global(global));
  const OpInfo& info = op_info(op);
  if (static_cast<int>(args.size()) != info.arity) {
    throw std::invalid_argument(
        "FunctionBuilder: reduction op '" + std::string(info.name) +
        "' expects " + std::to_string(info.arity) + " operands including the accumulator");
  }
  Instr instr;
  instr.op = op;
  instr.type = type;
  instr.result = global;
  instr.result_global = true;
  instr.args = std::move(args);
  func_.body.emplace_back(std::move(instr));
}

void FunctionBuilder::call(std::string callee, std::vector<Operand> args,
                           FuncKind kind) {
  Call call;
  call.callee = std::move(callee);
  call.args = std::move(args);
  call.kind_annot = kind;
  func_.body.emplace_back(std::move(call));
}

ModuleBuilder::ModuleBuilder(std::string name) { mod_.name = std::move(name); }

ModuleBuilder& ModuleBuilder::set_ndrange(std::uint64_t ngs) {
  mod_.meta.global_size = ngs;
  return *this;
}
ModuleBuilder& ModuleBuilder::set_nki(std::uint32_t nki) {
  mod_.meta.nki = nki;
  return *this;
}
ModuleBuilder& ModuleBuilder::set_form(ExecForm form) {
  mod_.meta.form = form;
  return *this;
}
ModuleBuilder& ModuleBuilder::set_freq(double hz) {
  mod_.meta.freq_hz = hz;
  return *this;
}
ModuleBuilder& ModuleBuilder::set_ii(std::uint32_t ii) {
  mod_.meta.ii = ii;
  return *this;
}

void ModuleBuilder::add_port(const std::string& name, Type type, StreamDir dir,
                             AccessPattern pattern, std::uint64_t stride,
                             std::uint64_t size_words) {
  if (mod_.meta.global_size == 0) {
    throw std::invalid_argument(
        "ModuleBuilder: set_ndrange must precede add_*_port (memory objects "
        "are sized to the NDRange)");
  }
  MemObject mem;
  mem.name = "m_" + name;
  mem.elem = type.scalar;
  mem.size_words =
      size_words != 0 ? size_words : mod_.meta.global_size * type.lanes;
  mem.space = AddrSpace::Global;
  mod_.memobjs.push_back(mem);

  StreamObject so;
  so.name = "strobj_" + name;
  so.memobj = mem.name;
  so.dir = dir;
  so.pattern = pattern;
  so.stride_words = stride;
  mod_.streamobjs.push_back(so);

  PortBinding port;
  port.name = name;
  port.space = AddrSpace::Global;
  port.type = type;
  port.dir = dir;
  port.pattern = pattern;
  port.streamobj = so.name;
  mod_.ports.push_back(port);
}

ModuleBuilder& ModuleBuilder::add_input_port(const std::string& name, Type type,
                                             AccessPattern pattern,
                                             std::uint64_t stride,
                                             std::uint64_t size_words) {
  add_port(name, type, StreamDir::In, pattern, stride, size_words);
  return *this;
}

ModuleBuilder& ModuleBuilder::add_output_port(const std::string& name, Type type,
                                              AccessPattern pattern,
                                              std::uint64_t stride,
                                              std::uint64_t size_words) {
  add_port(name, type, StreamDir::Out, pattern, stride, size_words);
  return *this;
}

ModuleBuilder& ModuleBuilder::add(Function function) {
  mod_.functions.push_back(std::move(function));
  return *this;
}

Module ModuleBuilder::take() && { return std::move(mod_); }

}  // namespace tytra::ir
