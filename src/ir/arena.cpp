#include "tytra/ir/arena.hpp"

#include <variant>

namespace tytra::ir {

void BuildArena::harvest(Function& function) {
  // The operand vectors live inside the body items; pull them out before
  // the body vector itself is cleared (clearing destroys the items and
  // would free their operand storage with them).
  for (BodyItem& item : function.body) {
    if (auto* instr = std::get_if<Instr>(&item)) {
      put(operands_, std::move(instr->args));
    } else if (auto* call = std::get_if<Call>(&item)) {
      put(operands_, std::move(call->args));
    }
  }
  put(bodies_, std::move(function.body));
  put(params_, std::move(function.params));
}

void BuildArena::recycle(Function&& function) { harvest(function); }

void BuildArena::recycle(Module&& module) {
  for (Function& f : module.functions) harvest(f);
  put(functions_, std::move(module.functions));
  put(memobjs_, std::move(module.memobjs));
  put(streamobjs_, std::move(module.streamobjs));
  put(ports_, std::move(module.ports));
}

}  // namespace tytra::ir
