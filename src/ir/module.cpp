#include "tytra/ir/module.hpp"

#include <algorithm>

namespace tytra::ir {

std::string_view addr_space_name(AddrSpace space) {
  switch (space) {
    case AddrSpace::Private: return "private";
    case AddrSpace::Global: return "global";
    case AddrSpace::Local: return "local";
    case AddrSpace::Constant: return "constant";
  }
  return "?";
}

std::string_view exec_form_name(ExecForm form) {
  switch (form) {
    case ExecForm::A: return "A";
    case ExecForm::B: return "B";
    case ExecForm::C: return "C";
  }
  return "?";
}

std::string_view func_kind_name(FuncKind kind) {
  switch (kind) {
    case FuncKind::Pipe: return "pipe";
    case FuncKind::Par: return "par";
    case FuncKind::Seq: return "seq";
    case FuncKind::Comb: return "comb";
  }
  return "?";
}

std::optional<FuncKind> func_kind_from_name(std::string_view name) {
  if (name == "pipe") return FuncKind::Pipe;
  if (name == "par") return FuncKind::Par;
  if (name == "seq") return FuncKind::Seq;
  if (name == "comb") return FuncKind::Comb;
  return std::nullopt;
}

std::vector<const Instr*> Function::instructions() const {
  std::vector<const Instr*> out;
  for (const auto& item : body) {
    if (const auto* instr = std::get_if<Instr>(&item)) out.push_back(instr);
  }
  return out;
}

std::vector<const OffsetDecl*> Function::offsets() const {
  std::vector<const OffsetDecl*> out;
  for (const auto& item : body) {
    if (const auto* off = std::get_if<OffsetDecl>(&item)) out.push_back(off);
  }
  return out;
}

std::vector<const Call*> Function::calls() const {
  std::vector<const Call*> out;
  for (const auto& item : body) {
    if (const auto* call = std::get_if<Call>(&item)) out.push_back(call);
  }
  return out;
}

const Function* Module::find_function(std::string_view name) const {
  for (const auto& f : functions) {
    if (f.name == name) return &f;
  }
  return nullptr;
}

Function* Module::find_function(std::string_view name) {
  for (auto& f : functions) {
    if (f.name == name) return &f;
  }
  return nullptr;
}

const MemObject* Module::find_memobj(std::string_view name) const {
  for (const auto& m : memobjs) {
    if (m.name == name) return &m;
  }
  return nullptr;
}

const StreamObject* Module::find_streamobj(std::string_view name) const {
  for (const auto& s : streamobjs) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

const PortBinding* Module::find_port(std::string_view name) const {
  for (const auto& p : ports) {
    if (p.name == name) return &p;
  }
  return nullptr;
}

std::size_t Module::input_port_count() const {
  return static_cast<std::size_t>(
      std::count_if(ports.begin(), ports.end(), [](const PortBinding& p) {
        return p.dir == StreamDir::In;
      }));
}

std::size_t Module::output_port_count() const {
  return ports.size() - input_port_count();
}

}  // namespace tytra::ir
