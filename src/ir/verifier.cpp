#include "tytra/ir/verifier.hpp"

#include <set>
#include <string>

namespace tytra::ir {

namespace {

class Verifier {
 public:
  explicit Verifier(const Module& module) : mod_(module) {}

  tytra::DiagBag run() {
    check_entry();
    check_manage_ir();
    for (const auto& f : mod_.functions) check_function(f);
    check_call_graph();
    return std::move(diags_);
  }

 private:
  void check_entry() {
    const Function* main = mod_.entry();
    if (main == nullptr) {
      diags_.error("module has no @main entry function");
      return;
    }
    if (!main->params.empty()) {
      diags_.error("@main must take no parameters", main->loc);
    }
    std::set<std::string> names;
    for (const auto& f : mod_.functions) {
      if (!names.insert(f.name).second) {
        diags_.error("duplicate function @" + f.name, f.loc);
      }
    }
  }

  void check_manage_ir() {
    std::set<std::string> memnames;
    for (const auto& m : mod_.memobjs) {
      if (!memnames.insert(m.name).second) {
        diags_.error("duplicate memobj @" + m.name, m.loc);
      }
      if (m.size_words == 0) {
        diags_.error("memobj @" + m.name + " has zero size", m.loc);
      }
    }
    std::set<std::string> streamnames;
    for (const auto& s : mod_.streamobjs) {
      if (!streamnames.insert(s.name).second) {
        diags_.error("duplicate stream object @" + s.name, s.loc);
      }
      if (mod_.find_memobj(s.memobj) == nullptr) {
        diags_.error("stream @" + s.name + " references unknown memobj @" + s.memobj,
                     s.loc);
      }
      if (s.pattern == AccessPattern::Strided && s.stride_words == 0) {
        diags_.error("stream @" + s.name + " has zero stride", s.loc);
      }
    }
    std::set<std::string> portnames;
    for (const auto& p : mod_.ports) {
      if (!portnames.insert(p.name).second) {
        diags_.error("duplicate port @main." + p.name, p.loc);
      }
      if (!p.streamobj.empty() && !mod_.streamobjs.empty() &&
          mod_.find_streamobj(p.streamobj) == nullptr) {
        diags_.error("port @main." + p.name + " references unknown stream object \"" +
                         p.streamobj + "\"",
                     p.loc);
      }
    }
    if (mod_.meta.global_size == 0) {
      diags_.warning("module has no !ngs (NDRange global size); throughput "
                     "estimation will be degenerate");
    }
  }

  // -------------------------------------------------------------------------
  void check_function(const Function& f) {
    switch (f.kind) {
      case FuncKind::Pipe: check_pipe_or_seq(f); break;
      case FuncKind::Seq: check_pipe_or_seq(f); break;
      case FuncKind::Comb: check_comb(f); break;
      case FuncKind::Par: check_par(f); break;
    }
  }

  void check_par(const Function& f) {
    for (const auto& item : f.body) {
      if (!std::holds_alternative<Call>(item)) {
        diags_.error("par function @" + f.name +
                         " may only contain calls (thread-parallel children)",
                     f.loc);
        return;
      }
    }
    if (f.body.empty()) {
      diags_.error("par function @" + f.name + " has no children", f.loc);
    }
  }

  void check_comb(const Function& f) {
    for (const auto& item : f.body) {
      if (const auto* instr = std::get_if<Instr>(&item)) {
        switch (instr->op) {
          case Opcode::Div:
          case Opcode::Rem:
          case Opcode::Sqrt:
          case Opcode::Exp:
          case Opcode::Recip:
            diags_.error("comb function @" + f.name + " uses multi-cycle op '" +
                             std::string(opcode_name(instr->op)) +
                             "' (not realizable in a single cycle)",
                         instr->loc);
            break;
          default:
            break;
        }
      } else if (std::holds_alternative<Call>(item)) {
        diags_.error("comb function @" + f.name + " may not call other functions",
                     f.loc);
      } else {
        diags_.error("comb function @" + f.name + " may not declare stream offsets",
                     f.loc);
      }
    }
    check_ssa(f);
  }

  void check_pipe_or_seq(const Function& f) {
    for (const auto& item : f.body) {
      if (const auto* call = std::get_if<Call>(&item)) {
        // @main is the structural entry wrapper and may call anything.
        if (f.kind == FuncKind::Pipe && f.name != "main" &&
            call->kind_annot == FuncKind::Par) {
          diags_.error("pipe function @" + f.name +
                           " cannot contain a par call (thread parallelism "
                           "must enclose pipelines, Fig. 7)",
                       call->loc);
        }
      }
    }
    check_ssa(f);
  }

  void check_ssa(const Function& f) {
    std::set<std::string> defined;
    for (const auto& p : f.params) defined.insert(p.name);

    auto check_operand = [&](const Operand& op, const tytra::SourceLoc& loc) {
      if (op.kind == Operand::Kind::Local && !defined.contains(op.name)) {
        diags_.error("use of undefined value %" + op.name + " in @" + f.name, loc);
      }
      // Globals are kernel ports or reduction accumulators; a global operand
      // must match a port or a previously-written accumulator.
      if (op.kind == Operand::Kind::Global && mod_.find_port(op.name) == nullptr &&
          !global_accs_.contains(op.name)) {
        // Reading an accumulator before any write is allowed (initial 0),
        // but only if some instruction in the module writes it.
        if (!global_written_somewhere(op.name)) {
          diags_.error("use of unknown global @" + op.name + " in @" + f.name, loc);
        }
      }
    };

    for (const auto& item : f.body) {
      if (const auto* off = std::get_if<OffsetDecl>(&item)) {
        if (!defined.contains(off->base)) {
          diags_.error("offset of undefined stream %" + off->base + " in @" + f.name,
                       off->loc);
        }
        if (f.kind != FuncKind::Pipe) {
          diags_.error("stream offsets are only valid in pipe functions (@" +
                           f.name + ")",
                       off->loc);
        }
        if (!defined.insert(off->result).second) {
          diags_.error("redefinition of %" + off->result + " in @" + f.name,
                       off->loc);
        }
        continue;
      }
      if (const auto* instr = std::get_if<Instr>(&item)) {
        const OpInfo& info = op_info(instr->op);
        if (static_cast<int>(instr->args.size()) != info.arity) {
          diags_.error("op '" + std::string(info.name) + "' expects " +
                           std::to_string(info.arity) + " operands, got " +
                           std::to_string(instr->args.size()),
                       instr->loc);
        }
        if (instr->type.scalar.is_float() && !info.float_ok) {
          diags_.error("op '" + std::string(info.name) +
                           "' is not defined for float types",
                       instr->loc);
        }
        if (!instr->type.scalar.is_float() && !info.integer_ok) {
          diags_.error("op '" + std::string(info.name) +
                           "' is only defined for float types",
                       instr->loc);
        }
        for (const auto& a : instr->args) check_operand(a, instr->loc);
        if (instr->result_global) {
          // Writing a global that names one of the function's own
          // parameters streams through that parameter's binding (the lane
          // replication pattern of Fig. 14).
          bool is_param = false;
          for (const auto& p : f.params) {
            if (p.name == instr->result) is_param = true;
          }
          if (is_param) continue;
          const PortBinding* port = mod_.find_port(instr->result);
          if (port != nullptr) {
            // Writing a global that names a port streams the value out.
            if (port->dir != StreamDir::Out) {
              diags_.error("instruction writes input port @" + instr->result,
                           instr->loc);
            }
            if (!written_ports_.insert(instr->result).second) {
              diags_.error("output port @" + instr->result + " written twice",
                           instr->loc);
            }
          } else {
            // Reduction onto a global accumulator; the accumulator must
            // also appear among the operands (r = op(x, r)).
            bool reads_self = false;
            for (const auto& a : instr->args) {
              if (a.kind == Operand::Kind::Global && a.name == instr->result) {
                reads_self = true;
              }
            }
            if (!reads_self) {
              diags_.warning("reduction @" + instr->result +
                                 " does not read its own accumulator",
                             instr->loc);
            }
            global_accs_.insert(instr->result);
          }
        } else {
          if (!defined.insert(instr->result).second) {
            diags_.error("redefinition of %" + instr->result + " in @" + f.name,
                         instr->loc);
          }
        }
        continue;
      }
      const auto& call = std::get<Call>(item);
      // Call arguments name streams: locals must be defined here; globals
      // may be ports or externally-bound streams, so they are not checked.
      for (const auto& a : call.args) {
        if (a.kind == Operand::Kind::Local && !defined.contains(a.name)) {
          diags_.error("use of undefined value %" + a.name + " in call from @" +
                           f.name,
                       call.loc);
        }
      }
    }
  }

  [[nodiscard]] bool global_written_somewhere(const std::string& name) const {
    for (const auto& f : mod_.functions) {
      for (const auto& item : f.body) {
        if (const auto* instr = std::get_if<Instr>(&item)) {
          if (instr->result_global && instr->result == name) return true;
        }
      }
    }
    return false;
  }

  void check_call_graph() {
    for (const auto& f : mod_.functions) {
      for (const auto* call : f.calls()) {
        const Function* callee = mod_.find_function(call->callee);
        if (callee == nullptr) {
          diags_.error("call to unknown function @" + call->callee, call->loc);
          continue;
        }
        if (callee->kind != call->kind_annot) {
          diags_.error("call annotates @" + call->callee + " as '" +
                           std::string(func_kind_name(call->kind_annot)) +
                           "' but it is defined as '" +
                           std::string(func_kind_name(callee->kind)) + "'",
                       call->loc);
        }
        if (call->args.size() != callee->params.size()) {
          diags_.error("call to @" + call->callee + " passes " +
                           std::to_string(call->args.size()) + " args, expected " +
                           std::to_string(callee->params.size()),
                       call->loc);
        }
        if (callee == &f) {
          diags_.error("recursive call in @" + f.name +
                           " (IR functions form a hierarchy, not a call graph)",
                       call->loc);
        }
      }
    }
    // Reject deeper cycles with a DFS from every node.
    for (const auto& f : mod_.functions) {
      std::set<const Function*> path;
      if (has_cycle(&f, path)) {
        diags_.error("cyclic call structure involving @" + f.name, f.loc);
        break;
      }
    }
  }

  bool has_cycle(const Function* f, std::set<const Function*>& path) {
    if (!path.insert(f).second) return true;
    for (const auto* call : f->calls()) {
      const Function* callee = mod_.find_function(call->callee);
      if (callee != nullptr && has_cycle(callee, path)) return true;
    }
    path.erase(f);
    return false;
  }

  const Module& mod_;
  tytra::DiagBag diags_;
  std::set<std::string> global_accs_;
  std::set<std::string> written_ports_;
};

}  // namespace

tytra::DiagBag verify(const Module& module) { return Verifier(module).run(); }

bool verify_ok(const Module& module) { return !verify(module).has_errors(); }

}  // namespace tytra::ir
