#include "tytra/ir/parser.hpp"

#include <cstdio>
#include <cstdlib>
#include <limits>
#include <map>
#include <set>

#include "tytra/ir/lexer.hpp"
#include "tytra/support/strings.hpp"

namespace tytra::ir {

namespace {

class Parser {
 public:
  Parser(std::vector<Token> tokens, const ParseOptions& options)
      : toks_(std::move(tokens)) {
    for (const auto& [key, value] : options.constants) {
      const std::string lowered = tytra::to_lower(key);
      constants_[lowered] = value;
      overridden_.insert(lowered);
    }
  }

  tytra::Result<ParseOutput> run() {
    while (!at_end()) {
      if (peek().kind == TokKind::Punct && peek().is_punct('!')) {
        if (auto r = parse_directive(); !r.ok()) return r.diag();
      } else if (peek().is_ident("memobj")) {
        if (auto r = parse_memobj(); !r.ok()) return r.diag();
      } else if (peek().is_ident("stream")) {
        if (auto r = parse_streamobj(); !r.ok()) return r.diag();
      } else if (peek().is_ident("define")) {
        if (auto r = parse_funcdef(); !r.ok()) return r.diag();
      } else if (peek().kind == TokKind::GlobalName) {
        if (auto r = parse_portbind(); !r.ok()) return r.diag();
      } else {
        return err("unexpected token '" + peek().text + "' at module scope");
      }
    }
    return ParseOutput{std::move(out_), std::move(warnings_),
                       std::move(defined_constants_)};
  }

 private:
  // --- token helpers -------------------------------------------------------
  [[nodiscard]] const Token& peek(std::size_t ahead = 0) const {
    const std::size_t i = pos_ + ahead;
    return i < toks_.size() ? toks_[i] : toks_.back();
  }
  const Token& advance() { return toks_[pos_ < toks_.size() - 1 ? pos_++ : pos_]; }
  [[nodiscard]] bool at_end() const { return peek().kind == TokKind::End; }

  [[nodiscard]] tytra::Diag err(std::string message) const {
    return tytra::make_error(std::move(message), peek().loc);
  }

  tytra::Result<bool> expect_punct(char c) {
    if (!peek().is_punct(c)) {
      return err(std::string("expected '") + c + "', got '" + peek().text + "'");
    }
    advance();
    return true;
  }
  tytra::Result<bool> expect_ident(std::string_view s) {
    if (!peek().is_ident(s)) {
      return err("expected '" + std::string(s) + "', got '" + peek().text + "'");
    }
    advance();
    return true;
  }
  tytra::Result<std::string> expect_global() {
    if (peek().kind != TokKind::GlobalName) {
      return err("expected @name, got '" + peek().text + "'");
    }
    return advance().text;
  }
  tytra::Result<std::string> expect_local() {
    if (peek().kind != TokKind::LocalName) {
      return err("expected %name, got '" + peek().text + "'");
    }
    return advance().text;
  }
  tytra::Result<std::int64_t> expect_int() {
    if (peek().kind != TokKind::Integer) {
      return err("expected integer, got '" + peek().text + "'");
    }
    return advance().ival;
  }

  // --- types ---------------------------------------------------------------
  tytra::Result<Type> parse_type() {
    if (peek().is_punct('<')) {
      advance();
      auto lanes = expect_int();
      if (!lanes.ok()) return lanes.diag();
      if (auto r = expect_ident("x"); !r.ok()) return r.diag();
      if (peek().kind != TokKind::Ident) return err("expected scalar type");
      auto scalar = parse_scalar_type(advance().text);
      if (!scalar.ok()) return scalar.diag();
      if (auto r = expect_punct('>'); !r.ok()) return r.diag();
      if (lanes.value() < 1 || lanes.value() > 1024) {
        return err("vector lanes out of range");
      }
      return Type::vector_of(scalar.value(),
                             static_cast<std::uint16_t>(lanes.value()));
    }
    if (peek().kind != TokKind::Ident) {
      return err("expected type, got '" + peek().text + "'");
    }
    const tytra::SourceLoc loc = peek().loc;
    auto scalar = parse_scalar_type(advance().text);
    if (!scalar.ok()) {
      auto d = scalar.diag();
      return tytra::make_error(d.message, loc);
    }
    return Type::scalar_of(scalar.value());
  }

  // --- module-scope productions -------------------------------------------
  tytra::Result<bool> parse_directive() {
    advance();  // '!'
    if (peek().kind != TokKind::Ident) return err("expected directive key after '!'");
    const tytra::SourceLoc key_loc = peek().loc;
    const std::string key = tytra::to_lower(advance().text);
    if (auto r = expect_punct('='); !r.ok()) return r.diag();

    if (key == "form") {
      if (peek().kind != TokKind::Ident) return err("expected A/B/C for !form");
      const std::string v = tytra::to_lower(advance().text);
      if (v == "a") out_.meta.form = ExecForm::A;
      else if (v == "b") out_.meta.form = ExecForm::B;
      else if (v == "c") out_.meta.form = ExecForm::C;
      else return err("bad !form value '" + v + "'");
      return true;
    }
    if (key == "name") {
      if (peek().kind != TokKind::Ident && peek().kind != TokKind::String) {
        return err("expected name for !name");
      }
      out_.name = advance().text;
      return true;
    }

    // The device frequency is the one genuinely real-valued directive
    // ("!fd = 200e6"); everything else is integral.
    if (key == "fd" || key == "freq") {
      double value = 0.0;
      if (peek().kind == TokKind::Float) {
        value = advance().fval;
      } else {
        auto v = parse_const_expr();
        if (!v.ok()) return v.diag();
        value = static_cast<double>(v.value());
      }
      if (value < 0.0) {
        return tytra::make_error("!" + key + " must be non-negative", key_loc);
      }
      out_.meta.freq_hz = value;
      return true;
    }

    if (peek().kind == TokKind::Float) {
      return err("expected integer value for !" + key +
                 " (only !fd takes a real value)");
    }
    auto v = parse_const_expr();
    if (!v.ok()) return v.diag();
    const std::int64_t value = v.value();

    if (key == "ngs") {
      if (value < 0) return tytra::make_error("!ngs must be non-negative", key_loc);
      out_.meta.global_size = static_cast<std::uint64_t>(value);
    } else if (key == "nki" || key == "ii") {
      if (value < 0 ||
          value > std::numeric_limits<std::uint32_t>::max()) {
        return tytra::make_error("!" + key + " out of range [0, 2^32)", key_loc);
      }
      (key == "nki" ? out_.meta.nki : out_.meta.ii) =
          static_cast<std::uint32_t>(value);
    } else {
      // User symbolic constant. A pre-defined constant (ParseOptions)
      // wins over the file's literal; the directive still documents the
      // file's default and lands in the output's definition-order list.
      if (!overridden_.contains(key)) constants_[key] = value;
      defined_constants_.emplace_back(key, constants_[key]);
    }
    return true;
  }

  tytra::Result<bool> parse_memobj() {
    advance();  // 'memobj'
    MemObject m;
    m.loc = peek().loc;
    auto name = expect_global();
    if (!name.ok()) return name.diag();
    m.name = name.value();
    if (peek().kind != TokKind::Ident) return err("expected address space name");
    const std::string space = tytra::to_lower(advance().text);
    if (space == "private") m.space = AddrSpace::Private;
    else if (space == "global") m.space = AddrSpace::Global;
    else if (space == "local") m.space = AddrSpace::Local;
    else if (space == "constant") m.space = AddrSpace::Constant;
    else return err("unknown address space '" + space + "'");
    auto type = parse_type();
    if (!type.ok()) return type.diag();
    m.elem = type.value().scalar;
    if (auto r = expect_ident("x"); !r.ok()) return r.diag();
    const tytra::SourceLoc size_loc = peek().loc;
    auto size = parse_const_expr();
    if (!size.ok()) return size.diag();
    if (size.value() < 0) {
      return tytra::make_error("memobj @" + m.name + " has negative size " +
                                   std::to_string(size.value()),
                               size_loc);
    }
    m.size_words = static_cast<std::uint64_t>(size.value());
    out_.memobjs.push_back(std::move(m));
    return true;
  }

  tytra::Result<bool> parse_streamobj() {
    advance();  // 'stream'
    StreamObject s;
    s.loc = peek().loc;
    auto name = expect_global();
    if (!name.ok()) return name.diag();
    s.name = name.value();
    if (peek().is_ident("reads")) s.dir = StreamDir::In;
    else if (peek().is_ident("writes")) s.dir = StreamDir::Out;
    else return err("expected 'reads' or 'writes'");
    advance();
    auto mem = expect_global();
    if (!mem.ok()) return mem.diag();
    s.memobj = mem.value();
    if (peek().is_ident("pattern")) {
      advance();
      if (peek().is_ident("cont") || peek().is_ident("contiguous")) {
        advance();
        s.pattern = AccessPattern::Contiguous;
      } else if (peek().is_ident("strided")) {
        advance();
        s.pattern = AccessPattern::Strided;
        const tytra::SourceLoc stride_loc = peek().loc;
        auto stride = parse_const_expr();
        if (!stride.ok()) return stride.diag();
        if (stride.value() < 0) {
          return tytra::make_error("stream @" + s.name + " has negative stride " +
                                       std::to_string(stride.value()),
                                   stride_loc);
        }
        s.stride_words = static_cast<std::uint64_t>(stride.value());
      } else {
        return err("expected 'cont' or 'strided N' after 'pattern'");
      }
    }
    out_.streamobjs.push_back(std::move(s));
    return true;
  }

  tytra::Result<bool> parse_portbind() {
    PortBinding p;
    p.loc = peek().loc;
    auto qual = expect_global();
    if (!qual.ok()) return qual.diag();
    // Strip a "main." qualifier if present.
    std::string name = qual.value();
    if (const auto dot = name.rfind('.'); dot != std::string::npos) {
      name = name.substr(dot + 1);
    }
    p.name = std::move(name);
    if (auto r = expect_punct('='); !r.ok()) return r.diag();
    if (!peek().is_ident("addrSpace") && !peek().is_ident("addrspace")) {
      return err("expected 'addrSpace(N)' in port binding");
    }
    advance();
    if (auto r = expect_punct('('); !r.ok()) return r.diag();
    auto space = expect_int();
    if (!space.ok()) return space.diag();
    if (auto r = expect_punct(')'); !r.ok()) return r.diag();
    if (space.value() >= 0 && space.value() <= 3) {
      p.space = static_cast<AddrSpace>(space.value());
    } else {
      warnings_.warning("address space " + std::to_string(space.value()) +
                            " out of range; assuming global",
                        p.loc);
      p.space = AddrSpace::Global;
    }
    auto type = parse_type();
    if (!type.ok()) return type.diag();
    p.type = type.value();
    if (auto r = expect_punct(','); !r.ok()) return r.diag();

    // !"istream", !"CONT", !0, !"strobj"
    auto dir = parse_bang_string();
    if (!dir.ok()) return dir.diag();
    const std::string dirv = tytra::to_lower(dir.value());
    if (dirv == "istream") p.dir = StreamDir::In;
    else if (dirv == "ostream") p.dir = StreamDir::Out;
    else return err("expected istream/ostream, got '" + dir.value() + "'");
    if (auto r = expect_punct(','); !r.ok()) return r.diag();

    auto pat = parse_bang_string();
    if (!pat.ok()) return pat.diag();
    const std::string patv = tytra::to_lower(pat.value());
    if (patv == "cont" || patv == "contiguous") p.pattern = AccessPattern::Contiguous;
    else if (patv == "strided") p.pattern = AccessPattern::Strided;
    else return err("expected CONT/STRIDED, got '" + pat.value() + "'");
    if (auto r = expect_punct(','); !r.ok()) return r.diag();

    if (auto r = expect_punct('!'); !r.ok()) return r.diag();
    auto off = parse_const_expr();
    if (!off.ok()) return off.diag();
    p.init_offset = off.value();

    if (peek().is_punct(',')) {
      advance();
      auto strobj = parse_bang_string();
      if (!strobj.ok()) return strobj.diag();
      p.streamobj = strobj.value();
    }
    out_.ports.push_back(std::move(p));
    return true;
  }

  tytra::Result<std::string> parse_bang_string() {
    if (auto r = expect_punct('!'); !r.ok()) return r.diag();
    if (peek().kind != TokKind::String) {
      return err("expected string after '!'");
    }
    return advance().text;
  }

  // --- functions -----------------------------------------------------------
  tytra::Result<bool> parse_funcdef() {
    advance();  // 'define'
    if (auto r = expect_ident("void"); !r.ok()) return r.diag();
    Function f;
    f.loc = peek().loc;
    auto name = expect_global();
    if (!name.ok()) return name.diag();
    f.name = name.value();
    if (auto r = expect_punct('('); !r.ok()) return r.diag();
    while (!peek().is_punct(')')) {
      auto type = parse_type();
      if (!type.ok()) return type.diag();
      auto pname = expect_local();
      if (!pname.ok()) return pname.diag();
      f.params.push_back({type.value(), pname.value()});
      if (peek().is_punct(',')) advance();
      else break;
    }
    if (auto r = expect_punct(')'); !r.ok()) return r.diag();
    // The kind keyword is optional (the paper's @main omits it); the
    // default is pipe.
    f.kind = FuncKind::Pipe;
    if (peek().kind == TokKind::Ident) {
      const auto kind = func_kind_from_name(peek().text);
      if (!kind) return err("unknown function kind '" + peek().text + "'");
      advance();
      f.kind = *kind;
    }
    if (auto r = expect_punct('{'); !r.ok()) return r.diag();
    while (!peek().is_punct('}')) {
      if (at_end()) return err("unterminated function body");
      auto item = parse_body_item();
      if (!item.ok()) return item.diag();
      f.body.push_back(std::move(item).take());
    }
    advance();  // '}'
    out_.functions.push_back(std::move(f));
    return true;
  }

  tytra::Result<BodyItem> parse_body_item() {
    if (peek().is_ident("call")) return parse_call();
    return parse_instr_or_offset();
  }

  tytra::Result<BodyItem> parse_call() {
    Call call;
    call.loc = peek().loc;
    advance();  // 'call'
    auto callee = expect_global();
    if (!callee.ok()) return callee.diag();
    call.callee = callee.value();
    if (auto r = expect_punct('('); !r.ok()) return r.diag();
    while (!peek().is_punct(')')) {
      auto op = parse_operand();
      if (!op.ok()) return op.diag();
      call.args.push_back(std::move(op).take());
      if (peek().is_punct(',')) advance();
      else break;
    }
    if (auto r = expect_punct(')'); !r.ok()) return r.diag();
    if (peek().kind != TokKind::Ident) return err("expected kind after call");
    const auto kind = func_kind_from_name(peek().text);
    if (!kind) return err("unknown call kind '" + peek().text + "'");
    advance();
    call.kind_annot = *kind;
    return BodyItem{std::move(call)};
  }

  tytra::Result<BodyItem> parse_instr_or_offset() {
    const tytra::SourceLoc loc = peek().loc;
    auto res_type = parse_type();
    if (!res_type.ok()) return res_type.diag();
    bool result_global = false;
    std::string result;
    if (peek().kind == TokKind::LocalName) {
      result = advance().text;
    } else if (peek().kind == TokKind::GlobalName) {
      result_global = true;
      result = advance().text;
    } else {
      return err("expected result name");
    }
    if (auto r = expect_punct('='); !r.ok()) return r.diag();

    // Offset declaration:  <type> %r = <type> %base, !offset, !<expr>
    // Instruction:         <type> %r = <op> <type> <operand>, ...
    if (peek().kind == TokKind::Ident &&
        !opcode_from_name(peek().text).has_value()) {
      auto base_type = parse_type();
      if (!base_type.ok()) return base_type.diag();
      OffsetDecl off;
      off.loc = loc;
      off.type = base_type.value();
      off.result = std::move(result);
      auto base = expect_local();
      if (!base.ok()) return base.diag();
      off.base = base.value();
      if (auto r = expect_punct(','); !r.ok()) return r.diag();
      if (auto r = expect_punct('!'); !r.ok()) return r.diag();
      if (auto r = expect_ident("offset"); !r.ok()) return r.diag();
      if (auto r = expect_punct(','); !r.ok()) return r.diag();
      if (auto r = expect_punct('!'); !r.ok()) return r.diag();
      auto value = parse_const_expr();
      if (!value.ok()) return value.diag();
      off.offset = value.value();
      if (result_global) return err("offset result cannot be a global");
      return BodyItem{std::move(off)};
    }

    if (peek().kind != TokKind::Ident) {
      return err("expected opcode, got '" + peek().text + "'");
    }
    const auto op = opcode_from_name(peek().text);
    if (!op) return err("unknown opcode '" + peek().text + "'");
    advance();
    Instr instr;
    instr.loc = loc;
    instr.op = *op;
    instr.result = std::move(result);
    instr.result_global = result_global;
    auto op_type = parse_type();
    if (!op_type.ok()) return op_type.diag();
    instr.type = op_type.value();
    while (true) {
      auto operand = parse_operand();
      if (!operand.ok()) return operand.diag();
      instr.args.push_back(std::move(operand).take());
      if (peek().is_punct(',')) advance();
      else break;
    }
    return BodyItem{std::move(instr)};
  }

  /// constexpr := ['+'|'-'] constterm { '*' constterm }
  /// All arithmetic is overflow-checked: an expression that does not fit
  /// int64 is a diagnostic, never wrapped (signed overflow would be UB).
  tytra::Result<std::int64_t> parse_const_expr() {
    std::int64_t sign = 1;
    if (peek().is_punct('+')) advance();
    else if (peek().is_punct('-')) {
      sign = -1;
      advance();
    }
    auto term = parse_const_term();
    if (!term.ok()) return term.diag();
    std::int64_t value = term.value();
    while (peek().is_punct('*')) {
      advance();
      const tytra::SourceLoc term_loc = peek().loc;
      auto next = parse_const_term();
      if (!next.ok()) return next.diag();
      std::int64_t product = 0;
      if (__builtin_mul_overflow(value, next.value(), &product)) {
        return tytra::make_error("constant expression overflows int64",
                                 term_loc);
      }
      value = product;
    }
    std::int64_t signed_value = 0;
    if (__builtin_mul_overflow(value, sign, &signed_value)) {
      return err("constant expression overflows int64");
    }
    return signed_value;
  }

  tytra::Result<std::int64_t> parse_const_term() {
    if (peek().kind == TokKind::Integer) return advance().ival;
    if (peek().kind == TokKind::Ident) {
      const std::string key = tytra::to_lower(peek().text);
      const auto it = constants_.find(key);
      if (it == constants_.end()) {
        return err("unknown symbolic constant '" + peek().text +
                   "' (define it with !" + peek().text + " = N)");
      }
      advance();
      return it->second;
    }
    return err("expected integer or constant in constant expression");
  }

  tytra::Result<Operand> parse_operand() {
    if (peek().kind == TokKind::LocalName) return Operand::local(advance().text);
    if (peek().kind == TokKind::GlobalName) {
      std::string name = advance().text;
      if (const auto dot = name.rfind('.'); dot != std::string::npos) {
        name = name.substr(dot + 1);
      }
      return Operand::global(std::move(name));
    }
    double sign = 1.0;
    if (peek().is_punct('-')) {
      sign = -1.0;
      advance();
    }
    if (peek().kind == TokKind::Integer) {
      return Operand::const_int(static_cast<std::int64_t>(sign) * advance().ival);
    }
    if (peek().kind == TokKind::Float) {
      return Operand::const_float(sign * advance().fval);
    }
    return err("expected operand, got '" + peek().text + "'");
  }

  std::vector<Token> toks_;
  std::size_t pos_{0};
  Module out_;
  tytra::DiagBag warnings_;
  std::map<std::string, std::int64_t> constants_;
  std::set<std::string> overridden_;
  std::vector<std::pair<std::string, std::int64_t>> defined_constants_;
};

}  // namespace

tytra::Result<ParseOutput> parse_module(std::string_view source) {
  return parse_module(source, ParseOptions{});
}

tytra::Result<ParseOutput> parse_module(std::string_view source,
                                        const ParseOptions& options) {
  auto tokens = lex(source);
  if (!tokens.ok()) return tokens.diag();
  Parser parser(std::move(tokens).take(), options);
  return parser.run();
}

Module parse_module_or_die(std::string_view source) {
  auto result = parse_module(source);
  if (!result.ok()) {
    std::fprintf(stderr, "TyTra-IR parse failed: %s\n",
                 result.error_message().c_str());
    std::abort();
  }
  return std::move(result).take().module;
}

}  // namespace tytra::ir
