#include "tytra/ir/instr.hpp"

#include <array>
#include <cmath>

namespace tytra::ir {

namespace {

constexpr std::array<OpInfo, kNumOpcodes> kOpTable = {{
    // name    arity int   flt   comm  bool
    {"add",    2,    true, true, true, false},
    {"sub",    2,    true, true, false, false},
    {"mul",    2,    true, true, true, false},
    {"div",    2,    true, true, false, false},
    {"rem",    2,    true, false, false, false},
    {"shl",    2,    true, false, false, false},
    {"lshr",   2,    true, false, false, false},
    {"ashr",   2,    true, false, false, false},
    {"and",    2,    true, false, true, false},
    {"or",     2,    true, false, true, false},
    {"xor",    2,    true, false, true, false},
    {"not",    1,    true, false, false, false},
    {"cmpeq",  2,    true, true, true, true},
    {"cmpne",  2,    true, true, true, true},
    {"cmplt",  2,    true, true, false, true},
    {"cmple",  2,    true, true, false, true},
    {"cmpgt",  2,    true, true, false, true},
    {"cmpge",  2,    true, true, false, true},
    {"select", 3,    true, true, false, false},
    {"min",    2,    true, true, true, false},
    {"max",    2,    true, true, true, false},
    {"abs",    1,    true, true, false, false},
    {"neg",    1,    true, true, false, false},
    {"mac",    3,    true, true, false, false},
    {"sqrt",   1,    true, true, false, false},
    {"exp",    1,    false, true, false, false},
    {"recip",  1,    false, true, false, false},
    {"mov",    1,    true, true, false, false},
}};

}  // namespace

const OpInfo& op_info(Opcode op) { return kOpTable[static_cast<int>(op)]; }

std::string_view opcode_name(Opcode op) { return op_info(op).name; }

std::optional<Opcode> opcode_from_name(std::string_view name) {
  // LLVM-style float aliases map onto the canonical opcode; the operand
  // type distinguishes the hardware realization.
  if (name.size() > 1 && name.front() == 'f' &&
      (name == "fadd" || name == "fsub" || name == "fmul" || name == "fdiv")) {
    name = name.substr(1);
  }
  if (name == "udiv" || name == "sdiv") name = "div";
  if (name == "urem" || name == "srem") name = "rem";
  for (int i = 0; i < kNumOpcodes; ++i) {
    if (kOpTable[i].name == name) return static_cast<Opcode>(i);
  }
  return std::nullopt;
}

int op_latency(Opcode op, const ScalarType& type) {
  const bool flt = type.is_float();
  const int w = type.bits;
  switch (op) {
    case Opcode::Add:
    case Opcode::Sub:
      return flt ? 7 : 1;
    case Opcode::Mul:
      return flt ? 5 : (w <= 18 ? 2 : 3);
    case Opcode::Mac:
      return flt ? 9 : (w <= 18 ? 3 : 4);
    case Opcode::Div:
      // Digit-recurrence divider: roughly one stage per 2 result bits.
      return flt ? 24 : std::max(4, w / 2);
    case Opcode::Rem:
      return std::max(4, w / 2);
    case Opcode::Sqrt:
      return flt ? 18 : std::max(4, w / 2);
    case Opcode::Exp:
      return 16;
    case Opcode::Recip:
      return 12;
    case Opcode::Shl:
    case Opcode::LShr:
    case Opcode::AShr:
      return w > 32 ? 2 : 1;
    case Opcode::And:
    case Opcode::Or:
    case Opcode::Xor:
    case Opcode::Not:
      return 1;
    case Opcode::CmpEq:
    case Opcode::CmpNe:
    case Opcode::CmpLt:
    case Opcode::CmpLe:
    case Opcode::CmpGt:
    case Opcode::CmpGe:
      return flt ? 2 : 1;
    case Opcode::Select:
    case Opcode::Min:
    case Opcode::Max:
    case Opcode::Abs:
    case Opcode::Neg:
      return 1;
    case Opcode::Mov:
      return 1;
  }
  return 1;
}

bool op_is_free(Opcode op) {
  switch (op) {
    case Opcode::Not:
    case Opcode::Neg:
    case Opcode::Mov:
      return true;
    default:
      return false;
  }
}

}  // namespace tytra::ir
