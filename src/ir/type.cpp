#include "tytra/ir/type.hpp"

#include <charconv>

namespace tytra::ir {

std::string ScalarType::to_string() const {
  switch (kind) {
    case ScalarKind::UInt: return "ui" + std::to_string(bits);
    case ScalarKind::SInt: return "i" + std::to_string(bits);
    case ScalarKind::Float: return "f" + std::to_string(bits);
    case ScalarKind::Fixed:
      return "fx" + std::to_string(bits) + "." + std::to_string(frac);
  }
  return "?";
}

std::string Type::to_string() const {
  if (lanes == 1) return scalar.to_string();
  return "<" + std::to_string(lanes) + " x " + scalar.to_string() + ">";
}

namespace {

bool parse_u16(std::string_view text, std::uint16_t& out) {
  unsigned value = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || ptr != text.data() + text.size() || value == 0 ||
      value > 4096) {
    return false;
  }
  out = static_cast<std::uint16_t>(value);
  return true;
}

}  // namespace

tytra::Result<ScalarType> parse_scalar_type(std::string_view text) {
  ScalarType st;
  std::string_view rest;
  if (text.starts_with("ui")) {
    st.kind = ScalarKind::UInt;
    rest = text.substr(2);
  } else if (text.starts_with("fx")) {
    st.kind = ScalarKind::Fixed;
    rest = text.substr(2);
    const auto dot = rest.find('.');
    if (dot == std::string_view::npos) {
      return tytra::make_error("fixed-point type needs total.frac bits: '" +
                               std::string(text) + "'");
    }
    if (!parse_u16(rest.substr(dot + 1), st.frac)) {
      return tytra::make_error("bad fractional bits in '" + std::string(text) + "'");
    }
    rest = rest.substr(0, dot);
  } else if (text.starts_with("f")) {
    st.kind = ScalarKind::Float;
    rest = text.substr(1);
  } else if (text.starts_with("i")) {
    st.kind = ScalarKind::SInt;
    rest = text.substr(1);
  } else {
    return tytra::make_error("unknown type '" + std::string(text) + "'");
  }
  if (!parse_u16(rest, st.bits)) {
    return tytra::make_error("bad bit-width in type '" + std::string(text) + "'");
  }
  if (st.kind == ScalarKind::Float && st.bits != 32 && st.bits != 64 &&
      st.bits != 16) {
    return tytra::make_error("float type must be f16/f32/f64, got '" +
                             std::string(text) + "'");
  }
  if (st.kind == ScalarKind::Fixed && st.frac > st.bits) {
    return tytra::make_error("fixed-point frac bits exceed total bits in '" +
                             std::string(text) + "'");
  }
  return st;
}

}  // namespace tytra::ir
