#include "tytra/ir/analysis.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <unordered_map>

namespace tytra::ir {

// ---------------------------------------------------------------------------
// Configuration tree
// ---------------------------------------------------------------------------

namespace {

/// Name -> index map over a module's functions; first definition wins,
/// matching Module::find_function.
using FunctionIndex = std::unordered_map<std::string_view, std::size_t>;

FunctionIndex index_functions(const Module& mod) {
  FunctionIndex index;
  index.reserve(mod.functions.size());
  for (std::size_t i = 0; i < mod.functions.size(); ++i) {
    index.emplace(mod.functions[i].name, i);
  }
  return index;
}

ConfigNode build_node(const Module& mod, const FunctionIndex& index,
                      const Function& f) {
  ConfigNode node;
  node.func = &f;
  node.kind = f.kind;
  for (const auto& item : f.body) {
    const auto* call = std::get_if<Call>(&item);
    if (call == nullptr) continue;
    const auto it = index.find(call->callee);
    if (it != index.end()) {
      node.children.push_back(build_node(mod, index, mod.functions[it->second]));
    }
  }
  return node;
}

ConfigNode build_config_tree(const Module& module, const FunctionIndex& index) {
  const Function* main = module.entry();
  if (main == nullptr) return {};
  ConfigNode root = build_node(module, index, *main);
  // @main is a plain wrapper; elide it when it has exactly one child.
  if (root.children.size() == 1) return root.children.front();
  return root;
}

void format_node(std::ostringstream& os, const ConfigNode& node, int indent) {
  for (int i = 0; i < indent; ++i) os << "  ";
  os << func_kind_name(node.kind) << " @"
     << (node.func != nullptr ? node.func->name : std::string("?")) << "\n";
  for (const auto& child : node.children) format_node(os, child, indent + 1);
}

}  // namespace

std::size_t ConfigNode::leaf_count() const {
  if (children.empty()) return 1;
  std::size_t n = 0;
  for (const auto& c : children) n += c.leaf_count();
  return n;
}

ConfigNode build_config_tree(const Module& module) {
  return build_config_tree(module, index_functions(module));
}

std::string format_config_tree(const ConfigNode& root) {
  std::ostringstream os;
  format_node(os, root, 0);
  return os.str();
}

std::string_view config_class_name(ConfigClass c) {
  switch (c) {
    case ConfigClass::C1: return "C1";
    case ConfigClass::C2: return "C2";
    case ConfigClass::C3: return "C3";
    case ConfigClass::C4: return "C4";
    case ConfigClass::C5: return "C5";
  }
  return "?";
}

namespace {

std::uint32_t max_port_lanes(const Module& mod) {
  std::uint32_t dv = 1;
  for (const auto& p : mod.ports) dv = std::max<std::uint32_t>(dv, p.type.lanes);
  return dv;
}

ConfigClass classify_tree(const ConfigNode& tree, std::uint32_t dv) {
  if (tree.kind == FuncKind::Seq) {
    return dv > 1 ? ConfigClass::C5 : ConfigClass::C4;
  }
  if (tree.kind == FuncKind::Par) {
    return ConfigClass::C1;
  }
  return dv > 1 ? ConfigClass::C3 : ConfigClass::C2;
}

std::uint32_t lane_count_of_tree(const ConfigNode& tree) {
  if (tree.kind != FuncKind::Par) return 1;
  std::uint32_t lanes = 0;
  for (const auto& child : tree.children) {
    if (child.kind == FuncKind::Pipe || child.kind == FuncKind::Seq) ++lanes;
  }
  return std::max<std::uint32_t>(lanes, 1);
}

}  // namespace

ConfigClass classify_config(const Module& module) {
  const ConfigNode tree = build_config_tree(module);
  return classify_tree(tree, max_port_lanes(module));
}

// ---------------------------------------------------------------------------
// Scheduling
// ---------------------------------------------------------------------------

namespace {

/// The one ASAP body walk, shared by the public one-off scheduler and the
/// memoizing summary pass; they differ only in how a callee's pipeline
/// depth is obtained (`child_depth`: recursive there, memo lookup here).
/// Keeping a single walk is what makes the two paths bit-identical.
template <class ChildDepthFn>
FunctionSchedule schedule_body(const Module& module, const Function& function,
                               ChildDepthFn&& child_depth) {
  FunctionSchedule sched;
  for (const auto& p : function.params) sched.ready_at[p.name] = 0;

  auto operand_ready = [&](const Operand& op) -> int {
    if (op.kind == Operand::Kind::Local) {
      const auto it = sched.ready_at.find(op.name);
      return it != sched.ready_at.end() ? it->second : 0;
    }
    return 0;  // constants, ports and accumulators are always ready
  };

  int depth = 0;
  for (const auto& item : function.body) {
    if (const auto* off = std::get_if<OffsetDecl>(&item)) {
      // Offset streams are produced by the stream-control buffers ahead of
      // the datapath; they are ready at cycle 0 of the PE.
      sched.ready_at[off->result] = 0;
      continue;
    }
    if (const auto* instr = std::get_if<Instr>(&item)) {
      int ready = 0;
      for (const auto& a : instr->args) ready = std::max(ready, operand_ready(a));
      const int latency = op_latency(instr->op, instr->type.scalar);
      sched.issue_at.push_back(ready);
      const int avail = ready + latency;
      if (!instr->result_global) sched.ready_at[instr->result] = avail;
      depth = std::max(depth, avail);
      continue;
    }
    const auto& call = std::get<Call>(item);
    const Function* callee = module.find_function(call.callee);
    if (callee == nullptr) continue;
    if (callee->kind == FuncKind::Comb) {
      depth = std::max(depth, 1);  // single-cycle custom combinatorial block
    } else {
      // Coarse-grained pipeline: the child's depth adds to ours.
      const int child = child_depth(*callee);
      if (function.kind == FuncKind::Par) {
        depth = std::max(depth, child);
      } else {
        depth += child;
      }
    }
  }
  sched.depth = depth;
  return sched;
}

}  // namespace

FunctionSchedule schedule_function(const Module& module, const Function& function) {
  return schedule_body(module, function, [&](const Function& callee) {
    return schedule_function(module, callee).depth;
  });
}

int pipeline_depth(const Module& module) {
  const Function* main = module.entry();
  if (main == nullptr) return 0;
  return schedule_function(module, *main).depth;
}

// ---------------------------------------------------------------------------
// One-traversal summary
// ---------------------------------------------------------------------------

namespace {

/// Collects the leaf PE (pipe/seq) function indices reachable from `fi`,
/// visiting every call site (so replicated lanes revisit the same body) —
/// the index-based twin of the legacy visit_pes.
void visit_pes(const Module& mod, const FunctionIndex& index, std::size_t fi,
               std::vector<std::size_t>& pes) {
  const Function& f = mod.functions[fi];
  bool has_pe_children = false;
  for (const auto& item : f.body) {
    const auto* call = std::get_if<Call>(&item);
    if (call == nullptr) continue;
    const auto it = index.find(call->callee);
    if (it == index.end()) continue;
    if (mod.functions[it->second].kind != FuncKind::Comb) has_pe_children = true;
    visit_pes(mod, index, it->second, pes);
  }
  if (!has_pe_children &&
      (f.kind == FuncKind::Pipe || f.kind == FuncKind::Seq)) {
    pes.push_back(fi);
  }
}

}  // namespace

const FunctionSummary* AnalysisSummary::find(std::string_view name) const {
  for (const auto& fs : functions) {
    if (fs.func != nullptr && fs.func->name == name) return &fs;
  }
  return nullptr;
}

AnalysisSummary summarize(const Module& module) {
  AnalysisSummary s;
  s.module = &module;
  const FunctionIndex index = index_functions(module);
  const std::size_t nf = module.functions.size();
  s.functions.resize(nf);

  // Pass 1: partition each body once and accumulate own-instruction stats.
  for (std::size_t i = 0; i < nf; ++i) {
    FunctionSummary& fs = s.functions[i];
    fs.func = &module.functions[i];
    const auto& body = fs.func->body;
    fs.instrs.reserve(body.size());
    for (const auto& item : body) {
      if (const auto* instr = std::get_if<Instr>(&item)) {
        fs.instrs.push_back(instr);
        fs.latency_sum += op_latency(instr->op, instr->type.scalar);
      } else if (const auto* off = std::get_if<OffsetDecl>(&item)) {
        fs.offsets.push_back(off);
      } else {
        fs.calls.push_back(&std::get<Call>(item));
      }
    }
    s.offset_count += fs.offsets.size();
  }

  // Pass 2: schedule each function exactly once, callee-first; the shared
  // schedule_body walk reads child pipeline depths from the memo instead
  // of re-scheduling them per call site (the legacy recursion re-derives
  // a child's schedule at every call, which is exponential on deep
  // replicated trees). The cycle guard only matters for unverified
  // modules; verified call graphs are acyclic.
  enum : unsigned char { kUnvisited, kVisiting, kDone };
  std::vector<unsigned char> state(nf, kUnvisited);
  auto schedule_one = [&](auto&& self, std::size_t fi) -> void {
    if (state[fi] != kUnvisited) return;
    state[fi] = kVisiting;
    const FunctionSummary& fs = s.functions[fi];
    for (const Call* call : fs.calls) {
      const auto it = index.find(call->callee);
      if (it != index.end() && state[it->second] == kUnvisited) {
        self(self, it->second);
      }
    }
    s.functions[fi].schedule =
        schedule_body(module, *fs.func, [&](const Function& callee) {
          const auto it = index.find(callee.name);
          return it != index.end() ? s.functions[it->second].schedule.depth : 0;
        });
    state[fi] = kDone;
  };
  for (std::size_t i = 0; i < nf; ++i) schedule_one(schedule_one, i);

  // Pass 3: reachable-instruction counts, children counted per call site.
  // Counts are integers held in doubles, so memoized grouping is exact.
  state.assign(nf, kUnvisited);
  auto count_one = [&](auto&& self, std::size_t fi) -> void {
    if (state[fi] != kUnvisited) return;
    state[fi] = kVisiting;
    FunctionSummary& fs = s.functions[fi];
    double count = static_cast<double>(fs.instrs.size());
    for (const Call* call : fs.calls) {
      const auto it = index.find(call->callee);
      if (it == index.end()) continue;
      if (state[it->second] == kUnvisited) self(self, it->second);
      count += s.functions[it->second].instr_count_reachable;
    }
    fs.instr_count_reachable = count;
    state[fi] = kDone;
  };
  for (std::size_t i = 0; i < nf; ++i) count_one(count_one, i);

  // Configuration tree and class.
  s.tree = build_config_tree(module, index);
  const std::uint32_t dv = max_port_lanes(module);
  s.config = classify_tree(s.tree, dv);

  // Port resolution: stream-object stride and memory-object range, each
  // looked up once. Builder-generated modules emit one (memobj,
  // streamobj, port) triple per add_*_port call, so the i-th port's
  // objects sit at position i — probe positionally first and build the
  // hashed indices only if a module (e.g. hand-written IR) breaks that
  // layout. First definition wins on fallback, like Module::find_*.
  std::unordered_map<std::string_view, const StreamObject*> so_index;
  std::unordered_map<std::string_view, const MemObject*> mo_index;
  bool indices_built = false;
  const auto build_indices = [&] {
    if (indices_built) return;
    indices_built = true;
    so_index.reserve(module.streamobjs.size());
    for (const auto& so : module.streamobjs) so_index.emplace(so.name, &so);
    mo_index.reserve(module.memobjs.size());
    for (const auto& mo : module.memobjs) mo_index.emplace(mo.name, &mo);
  };
  s.ports.reserve(module.ports.size());
  for (std::size_t i = 0; i < module.ports.size(); ++i) {
    const PortBinding& p = module.ports[i];
    PortSummary ps;
    ps.port = &p;
    ps.addr_range_words = module.meta.global_size;
    const StreamObject* so = nullptr;
    if (i < module.streamobjs.size() && module.streamobjs[i].name == p.streamobj) {
      so = &module.streamobjs[i];
    } else {
      build_indices();
      const auto it = so_index.find(p.streamobj);
      if (it != so_index.end()) so = it->second;
    }
    if (so != nullptr) {
      ps.stride_words = so->stride_words;
      const MemObject* mo = nullptr;
      if (i < module.memobjs.size() && module.memobjs[i].name == so->memobj) {
        mo = &module.memobjs[i];
      } else {
        build_indices();
        const auto it = mo_index.find(so->memobj);
        if (it != mo_index.end()) mo = it->second;
      }
      if (mo != nullptr) ps.addr_range_words = mo->size_words;
    }
    s.ports.push_back(ps);
  }

  // Table-I parameters, from the pieces above.
  DesignParams& params = s.params;
  params.ngs = module.meta.global_size;
  params.nki = module.meta.nki;
  params.form = module.meta.form;
  params.fd = module.meta.freq_hz;
  params.dv = dv;
  params.knl = lane_count_of_tree(s.tree);
  // Each lane is serviced by its own stream objects (Fig. 14), so the
  // words-per-tuple of one work-item is the per-lane port count.
  params.nwpt = static_cast<double>(module.ports.size()) /
                std::max<std::uint32_t>(params.knl, 1);
  const FunctionSummary* main_fs = s.entry();
  params.kpd = main_fs != nullptr ? main_fs->schedule.depth : 0;
  {
    const double total =
        main_fs != nullptr ? main_fs->instr_count_reachable : 0.0;
    const double lanes = params.knl;
    const double per_pe = lanes > 0 ? total / lanes : total;
    params.ni = std::max(1.0, per_pe);
  }

  // Noff: the largest stream offset anywhere, plus port initial offsets.
  std::uint64_t noff = 0;
  for (const auto& fs : s.functions) {
    for (const auto* off : fs.offsets) {
      noff = std::max<std::uint64_t>(
          noff, static_cast<std::uint64_t>(std::llabs(off->offset)));
    }
  }
  for (const auto& p : module.ports) {
    noff = std::max<std::uint64_t>(
        noff, static_cast<std::uint64_t>(std::llabs(p.init_offset)));
  }
  params.noff = noff;

  // NTO: for pipelined PEs the initiation interval per streamed word; for
  // sequential PEs the mean per-instruction cycle count.
  std::vector<std::size_t> pes;
  if (const Function* main = module.entry()) {
    const auto it = index.find(main->name);
    if (it != index.end()) visit_pes(module, index, it->second, pes);
  }
  const bool sequential =
      s.tree.kind == FuncKind::Seq ||
      (!pes.empty() && module.functions[pes.front()].kind == FuncKind::Seq);
  if (sequential) {
    double cycles = 0;
    double n = 0;
    for (const std::size_t pe : pes) {
      cycles += s.functions[pe].latency_sum;
      n += static_cast<double>(s.functions[pe].instrs.size());
    }
    params.nto = n > 0 ? cycles / n : 1.0;
  } else {
    params.nto = module.meta.ii;
    // For a pipeline the compute term in the EKIT expressions is
    // NGS*NWPT*NTO*NI/(FD*KNL*DV) with NWPT*NTO*NI = cycles per work-item:
    // the pipeline consumes the NWPT-word tuple word-serially at II cycles
    // per word, so the per-item cost carried by NI is 1.
    params.ni = 1.0;
  }
  return s;
}

// ---------------------------------------------------------------------------
// Parameter extraction (legacy entry points over the summary)
// ---------------------------------------------------------------------------

std::uint32_t lane_count(const Module& module) {
  return lane_count_of_tree(build_config_tree(module));
}

double instructions_per_pe(const Module& module) {
  const Function* main = module.entry();
  if (main == nullptr) return 0.0;
  const AnalysisSummary s = summarize(module);
  const FunctionSummary* main_fs = s.entry();
  const double total = main_fs != nullptr ? main_fs->instr_count_reachable : 0.0;
  const double lanes = s.params.knl;
  return lanes > 0 ? total / lanes : total;
}

DesignParams extract_params(const Module& module) {
  return summarize(module).params;
}

}  // namespace tytra::ir
