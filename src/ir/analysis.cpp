#include "tytra/ir/analysis.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace tytra::ir {

// ---------------------------------------------------------------------------
// Configuration tree
// ---------------------------------------------------------------------------

namespace {

ConfigNode build_node(const Module& mod, const Function& f) {
  ConfigNode node;
  node.func = &f;
  node.kind = f.kind;
  for (const auto* call : f.calls()) {
    if (const Function* callee = mod.find_function(call->callee)) {
      node.children.push_back(build_node(mod, *callee));
    }
  }
  return node;
}

void format_node(std::ostringstream& os, const ConfigNode& node, int indent) {
  for (int i = 0; i < indent; ++i) os << "  ";
  os << func_kind_name(node.kind) << " @"
     << (node.func != nullptr ? node.func->name : std::string("?")) << "\n";
  for (const auto& child : node.children) format_node(os, child, indent + 1);
}

}  // namespace

std::size_t ConfigNode::leaf_count() const {
  if (children.empty()) return 1;
  std::size_t n = 0;
  for (const auto& c : children) n += c.leaf_count();
  return n;
}

ConfigNode build_config_tree(const Module& module) {
  const Function* main = module.entry();
  if (main == nullptr) return {};
  ConfigNode root = build_node(module, *main);
  // @main is a plain wrapper; elide it when it has exactly one child.
  if (root.children.size() == 1) return root.children.front();
  return root;
}

std::string format_config_tree(const ConfigNode& root) {
  std::ostringstream os;
  format_node(os, root, 0);
  return os.str();
}

std::string_view config_class_name(ConfigClass c) {
  switch (c) {
    case ConfigClass::C1: return "C1";
    case ConfigClass::C2: return "C2";
    case ConfigClass::C3: return "C3";
    case ConfigClass::C4: return "C4";
    case ConfigClass::C5: return "C5";
  }
  return "?";
}

namespace {

std::uint32_t max_port_lanes(const Module& mod) {
  std::uint32_t dv = 1;
  for (const auto& p : mod.ports) dv = std::max<std::uint32_t>(dv, p.type.lanes);
  return dv;
}

}  // namespace

ConfigClass classify_config(const Module& module) {
  const ConfigNode tree = build_config_tree(module);
  const std::uint32_t dv = max_port_lanes(module);
  if (tree.kind == FuncKind::Seq) {
    return dv > 1 ? ConfigClass::C5 : ConfigClass::C4;
  }
  if (tree.kind == FuncKind::Par) {
    return ConfigClass::C1;
  }
  return dv > 1 ? ConfigClass::C3 : ConfigClass::C2;
}

// ---------------------------------------------------------------------------
// Scheduling
// ---------------------------------------------------------------------------

FunctionSchedule schedule_function(const Module& module, const Function& function) {
  FunctionSchedule sched;
  for (const auto& p : function.params) sched.ready_at[p.name] = 0;

  auto operand_ready = [&](const Operand& op) -> int {
    if (op.kind == Operand::Kind::Local) {
      const auto it = sched.ready_at.find(op.name);
      return it != sched.ready_at.end() ? it->second : 0;
    }
    return 0;  // constants, ports and accumulators are always ready
  };

  int depth = 0;
  for (const auto& item : function.body) {
    if (const auto* off = std::get_if<OffsetDecl>(&item)) {
      // Offset streams are produced by the stream-control buffers ahead of
      // the datapath; they are ready at cycle 0 of the PE.
      sched.ready_at[off->result] = 0;
      continue;
    }
    if (const auto* instr = std::get_if<Instr>(&item)) {
      int ready = 0;
      for (const auto& a : instr->args) ready = std::max(ready, operand_ready(a));
      const int latency = op_latency(instr->op, instr->type.scalar);
      sched.issue_at.push_back(ready);
      const int avail = ready + latency;
      if (!instr->result_global) sched.ready_at[instr->result] = avail;
      depth = std::max(depth, avail);
      continue;
    }
    const auto& call = std::get<Call>(item);
    const Function* callee = module.find_function(call.callee);
    if (callee == nullptr) continue;
    if (callee->kind == FuncKind::Comb) {
      depth = std::max(depth, 1);  // single-cycle custom combinatorial block
    } else {
      // Coarse-grained pipeline: the child's depth adds to ours.
      const FunctionSchedule child = schedule_function(module, *callee);
      if (function.kind == FuncKind::Par) {
        depth = std::max(depth, child.depth);
      } else {
        depth += child.depth;
      }
    }
  }
  sched.depth = depth;
  return sched;
}

int pipeline_depth(const Module& module) {
  const Function* main = module.entry();
  if (main == nullptr) return 0;
  return schedule_function(module, *main).depth;
}

// ---------------------------------------------------------------------------
// Parameter extraction
// ---------------------------------------------------------------------------

namespace {

/// Collects the distinct PE (leaf pipe/seq) bodies reachable from `f`,
/// visiting every call (so replicated lanes revisit the same body).
void visit_pes(const Module& mod, const Function& f,
               std::vector<const Function*>& pes) {
  const auto calls = f.calls();
  bool has_pe_children = false;
  for (const auto* call : calls) {
    const Function* callee = mod.find_function(call->callee);
    if (callee == nullptr) continue;
    if (callee->kind != FuncKind::Comb) has_pe_children = true;
    visit_pes(mod, *callee, pes);
  }
  if (!has_pe_children &&
      (f.kind == FuncKind::Pipe || f.kind == FuncKind::Seq)) {
    pes.push_back(&f);
  }
}

double instr_count_with_children(const Module& mod, const Function& f) {
  double count = static_cast<double>(f.instructions().size());
  for (const auto* call : f.calls()) {
    const Function* callee = mod.find_function(call->callee);
    if (callee != nullptr) count += instr_count_with_children(mod, *callee);
  }
  return count;
}

}  // namespace

std::uint32_t lane_count(const Module& module) {
  const ConfigNode tree = build_config_tree(module);
  if (tree.kind != FuncKind::Par) return 1;
  std::uint32_t lanes = 0;
  for (const auto& child : tree.children) {
    if (child.kind == FuncKind::Pipe || child.kind == FuncKind::Seq) ++lanes;
  }
  return std::max<std::uint32_t>(lanes, 1);
}

double instructions_per_pe(const Module& module) {
  const Function* main = module.entry();
  if (main == nullptr) return 0.0;
  const double total = instr_count_with_children(module, *main);
  const double lanes = lane_count(module);
  return lanes > 0 ? total / lanes : total;
}

DesignParams extract_params(const Module& module) {
  DesignParams params;
  params.ngs = module.meta.global_size;
  params.nki = module.meta.nki;
  params.form = module.meta.form;
  params.fd = module.meta.freq_hz;
  params.dv = max_port_lanes(module);
  params.knl = lane_count(module);
  // Each lane is serviced by its own stream objects (Fig. 14), so the
  // words-per-tuple of one work-item is the per-lane port count.
  params.nwpt =
      static_cast<double>(module.ports.size()) / std::max<std::uint32_t>(params.knl, 1);
  params.kpd = pipeline_depth(module);
  params.ni = std::max(1.0, instructions_per_pe(module));

  // Noff: the largest stream offset anywhere, plus port initial offsets.
  std::uint64_t noff = 0;
  for (const auto& f : module.functions) {
    for (const auto* off : f.offsets()) {
      noff = std::max<std::uint64_t>(
          noff, static_cast<std::uint64_t>(std::llabs(off->offset)));
    }
  }
  for (const auto& p : module.ports) {
    noff = std::max<std::uint64_t>(
        noff, static_cast<std::uint64_t>(std::llabs(p.init_offset)));
  }
  params.noff = noff;

  // NTO: for pipelined PEs the initiation interval per streamed word; for
  // sequential PEs the mean per-instruction cycle count.
  const ConfigNode tree = build_config_tree(module);
  std::vector<const Function*> pes;
  if (const Function* main = module.entry()) visit_pes(module, *main, pes);
  const bool sequential =
      tree.kind == FuncKind::Seq ||
      (!pes.empty() && pes.front()->kind == FuncKind::Seq);
  if (sequential) {
    double cycles = 0;
    double n = 0;
    for (const auto* pe : pes) {
      for (const auto* instr : pe->instructions()) {
        cycles += op_latency(instr->op, instr->type.scalar);
        n += 1;
      }
    }
    params.nto = n > 0 ? cycles / n : 1.0;
  } else {
    params.nto = module.meta.ii;
    // For a pipeline the compute term in the EKIT expressions is
    // NGS*NWPT*NTO*NI/(FD*KNL*DV) with NWPT*NTO*NI = cycles per work-item:
    // the pipeline consumes the NWPT-word tuple word-serially at II cycles
    // per word, so the per-item cost carried by NI is 1.
    params.ni = 1.0;
  }
  return params;
}

}  // namespace tytra::ir
