#include "tytra/ir/lexer.hpp"

#include <cctype>
#include <cerrno>
#include <charconv>
#include <cmath>
#include <cstdlib>

namespace tytra::ir {

namespace {

bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}
bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_' || c == '.';
}
bool is_punct_char(char c) {
  return c == '(' || c == ')' || c == '{' || c == '}' || c == ',' || c == '=' ||
         c == '!' || c == '+' || c == '-' || c == '*' || c == '<' || c == '>' ||
         c == '/';
}

class Cursor {
 public:
  explicit Cursor(std::string_view src) : src_(src) {}

  [[nodiscard]] bool at_end() const { return pos_ >= src_.size(); }
  [[nodiscard]] char peek(std::size_t ahead = 0) const {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }
  char advance() {
    const char c = src_[pos_++];
    if (c == '\n') {
      ++line_;
      col_ = 1;
    } else {
      ++col_;
    }
    return c;
  }
  [[nodiscard]] tytra::SourceLoc loc() const { return {line_, col_}; }
  [[nodiscard]] std::size_t pos() const { return pos_; }
  [[nodiscard]] std::string_view slice(std::size_t from) const {
    return src_.substr(from, pos_ - from);
  }

 private:
  std::string_view src_;
  std::size_t pos_{0};
  int line_{1};
  int col_{1};
};

}  // namespace

tytra::Result<std::vector<Token>> lex(std::string_view source) {
  std::vector<Token> tokens;
  Cursor cur(source);

  while (!cur.at_end()) {
    const char c = cur.peek();
    const tytra::SourceLoc loc = cur.loc();

    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      cur.advance();
      continue;
    }
    if (c == ';') {  // comment to end of line
      while (!cur.at_end() && cur.peek() != '\n') cur.advance();
      continue;
    }
    if (c == '%' || c == '@') {
      cur.advance();
      const std::size_t start = cur.pos();
      if (!is_ident_start(cur.peek()) &&
          std::isdigit(static_cast<unsigned char>(cur.peek())) == 0) {
        return tytra::make_error("expected name after sigil", loc);
      }
      while (!cur.at_end() && is_ident_char(cur.peek())) cur.advance();
      Token t;
      t.kind = c == '%' ? TokKind::LocalName : TokKind::GlobalName;
      t.text = std::string(cur.slice(start));
      t.loc = loc;
      tokens.push_back(std::move(t));
      continue;
    }
    if (c == '"') {
      cur.advance();
      const std::size_t start = cur.pos();
      while (!cur.at_end() && cur.peek() != '"' && cur.peek() != '\n') cur.advance();
      if (cur.peek() != '"') return tytra::make_error("unterminated string", loc);
      Token t;
      t.kind = TokKind::String;
      t.text = std::string(cur.slice(start));
      t.loc = loc;
      cur.advance();  // closing quote
      tokens.push_back(std::move(t));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
      const std::size_t start = cur.pos();
      bool is_float = false;
      bool hex = false;
      if (c == '0' && (cur.peek(1) == 'x' || cur.peek(1) == 'X')) {
        cur.advance();
        cur.advance();
        hex = true;
        while (std::isxdigit(static_cast<unsigned char>(cur.peek())) != 0) cur.advance();
      } else {
        while (std::isdigit(static_cast<unsigned char>(cur.peek())) != 0) cur.advance();
        if (cur.peek() == '.' &&
            std::isdigit(static_cast<unsigned char>(cur.peek(1))) != 0) {
          is_float = true;
          cur.advance();
          while (std::isdigit(static_cast<unsigned char>(cur.peek())) != 0) cur.advance();
        }
        if (cur.peek() == 'e' || cur.peek() == 'E') {
          const char sign = cur.peek(1);
          if (std::isdigit(static_cast<unsigned char>(sign)) != 0 ||
              ((sign == '+' || sign == '-') &&
               std::isdigit(static_cast<unsigned char>(cur.peek(2))) != 0)) {
            is_float = true;
            cur.advance();
            if (cur.peek() == '+' || cur.peek() == '-') cur.advance();
            while (std::isdigit(static_cast<unsigned char>(cur.peek())) != 0) cur.advance();
          }
        }
      }
      const std::string_view text = cur.slice(start);
      Token t;
      t.loc = loc;
      t.text = std::string(text);
      if (is_float) {
        t.kind = TokKind::Float;
        // strtod, not stod: an out-of-range literal ("1e999") must be a
        // diagnostic, not an uncaught exception out of the lexer.
        errno = 0;
        char* parse_end = nullptr;
        const double fv = std::strtod(t.text.c_str(), &parse_end);
        if (parse_end != t.text.c_str() + t.text.size() || errno == ERANGE ||
            !std::isfinite(fv)) {
          return tytra::make_error("float literal '" + t.text + "' out of range",
                                   loc);
        }
        t.fval = fv;
      } else {
        t.kind = TokKind::Integer;
        std::int64_t value = 0;
        const std::string_view digits = hex ? text.substr(2) : text;
        const auto [ptr, ec] = std::from_chars(
            digits.data(), digits.data() + digits.size(), value, hex ? 16 : 10);
        if (ec != std::errc{} || ptr != digits.data() + digits.size()) {
          return tytra::make_error("bad integer literal '" + t.text + "'", loc);
        }
        t.ival = value;
      }
      tokens.push_back(std::move(t));
      continue;
    }
    if (is_ident_start(c)) {
      const std::size_t start = cur.pos();
      while (!cur.at_end() && is_ident_char(cur.peek())) cur.advance();
      Token t;
      t.kind = TokKind::Ident;
      t.text = std::string(cur.slice(start));
      t.loc = loc;
      tokens.push_back(std::move(t));
      continue;
    }
    if (is_punct_char(c)) {
      cur.advance();
      Token t;
      t.kind = TokKind::Punct;
      t.text = std::string(1, c);
      t.loc = loc;
      tokens.push_back(std::move(t));
      continue;
    }
    return tytra::make_error(std::string("unexpected character '") + c + "'", loc);
  }

  Token end;
  end.kind = TokKind::End;
  end.loc = cur.loc();
  tokens.push_back(std::move(end));
  return tokens;
}

}  // namespace tytra::ir
