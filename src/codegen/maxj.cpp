#include "tytra/codegen/maxj.hpp"

#include <cctype>
#include <sstream>

#include "tytra/codegen/verilog.hpp"

namespace tytra::codegen {

namespace {

std::string java_class_name(const std::string& name) {
  std::string out = sanitize_identifier(name);
  bool upper = true;
  std::string camel;
  for (const char c : out) {
    if (c == '_') {
      upper = true;
      continue;
    }
    camel += upper ? static_cast<char>(std::toupper(static_cast<unsigned char>(c)))
                   : c;
    upper = false;
  }
  return camel.empty() ? "Design" : camel;
}

std::string dfe_type(const ir::Type& type) {
  const auto& s = type.scalar;
  std::string base;
  switch (s.kind) {
    case ir::ScalarKind::UInt: base = "dfeUInt(" + std::to_string(s.bits) + ")"; break;
    case ir::ScalarKind::SInt: base = "dfeInt(" + std::to_string(s.bits) + ")"; break;
    case ir::ScalarKind::Float:
      base = s.bits == 64 ? "dfeFloat(11, 53)" : "dfeFloat(8, 24)";
      break;
    case ir::ScalarKind::Fixed:
      base = "dfeFix(" + std::to_string(s.bits - s.frac) + ", " +
             std::to_string(s.frac) + ", SignMode.TWOSCOMPLEMENT)";
      break;
  }
  if (type.lanes > 1) {
    return "new DFEVectorType<DFEVar>(" + base + ", " +
           std::to_string(type.lanes) + ")";
  }
  return base;
}

}  // namespace

MaxjWrapper emit_maxj_wrapper(const ir::Module& module) {
  MaxjWrapper out;
  const std::string cls = java_class_name(module.name);
  out.kernel_name = cls + "Kernel";

  std::ostringstream k;
  k << "// Auto-generated MaxJ wrapper for TyTra HDL kernel '" << module.name
    << "'\n";
  k << "package tytra.gen;\n\n";
  k << "import com.maxeler.maxcompiler.v2.kernelcompiler.Kernel;\n";
  k << "import com.maxeler.maxcompiler.v2.kernelcompiler.KernelParameters;\n";
  k << "import com.maxeler.maxcompiler.v2.kernelcompiler.types.base.DFEVar;\n";
  k << "import com.maxeler.maxcompiler.v2.kernelcompiler.stdlib.core.HDLNode;\n\n";
  k << "public class " << out.kernel_name << " extends Kernel {\n";
  k << "  public " << out.kernel_name << "(KernelParameters parameters) {\n";
  k << "    super(parameters);\n\n";
  k << "    HDLNode custom = pushHDLNode(\"" << sanitize_identifier(module.name)
    << "_top\", \"" << sanitize_identifier(module.name) << "_top.v\");\n\n";
  for (const auto& p : module.ports) {
    const std::string id = sanitize_identifier(p.name);
    if (p.dir == ir::StreamDir::In) {
      k << "    DFEVar " << id << " = io.input(\"" << id << "\", "
        << dfe_type(p.type) << ");\n";
      k << "    custom.connectInput(\"" << id << "\", " << id << ");\n";
    }
  }
  k << "\n";
  for (const auto& p : module.ports) {
    const std::string id = sanitize_identifier(p.name);
    if (p.dir == ir::StreamDir::Out) {
      k << "    DFEVar " << id << " = custom.getOutput(\"" << id << "\", "
        << dfe_type(p.type) << ");\n";
      k << "    io.output(\"" << id << "\", " << id << ", " << dfe_type(p.type)
        << ");\n";
    }
  }
  k << "  }\n}\n";
  out.kernel_class = k.str();

  std::ostringstream m;
  const bool from_dram = module.meta.form != ir::ExecForm::A;
  m << "// Auto-generated MaxJ manager for '" << module.name << "' (form "
    << ir::exec_form_name(module.meta.form) << ")\n";
  m << "package tytra.gen;\n\n";
  m << "import com.maxeler.maxcompiler.v2.managers.standard.Manager;\n";
  m << "import com.maxeler.maxcompiler.v2.managers.standard.Manager.IOType;\n\n";
  m << "public class " << cls << "Manager {\n";
  m << "  public static void main(String[] args) {\n";
  m << "    Manager manager = new Manager(new EngineParameters(args));\n";
  m << "    manager.setKernel(new " << out.kernel_name
    << "(manager.makeKernelParameters()));\n";
  m << "    manager.setIO(IOType."
    << (from_dram ? "ALL_LMEM /* device DRAM resident, form B/C */"
                  : "ALL_CPU /* host streamed, form A */")
    << ");\n";
  m << "    manager.createSLiCinterface();\n";
  m << "    manager.build();\n";
  m << "  }\n}\n";
  out.manager_class = m.str();
  return out;
}

}  // namespace tytra::codegen
