#include "tytra/kernels/registry.hpp"

#include <cstdio>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "tytra/kernels/kernels.hpp"
#include "tytra/kernels/lowerers.hpp"
#include "tytra/support/json.hpp"
#include "tytra/target/device.hpp"

namespace tytra::kernels {

namespace {

tytra::Diag nd_error(std::string_view workload, std::string_view what) {
  return tytra::make_error(std::string(workload) + ": " + std::string(what));
}

/// Largest nd with nd^3 <= 2^64 - 1 (cbrt of uint64 max, floored).
constexpr std::uint32_t kMaxSorNd = 2642245;

// The nd→config mappings below must agree with the reference_checksum
// hooks: both derive from the same config for a given nd, so the
// registered lowering and the ground-truth simulation describe the same
// problem instance.

SorConfig sor_config(std::uint32_t nd) {
  SorConfig cfg;
  cfg.im = cfg.jm = cfg.km = nd;
  cfg.nki = 10;
  return cfg;
}

HotspotConfig hotspot_config(std::uint32_t nd) {
  HotspotConfig cfg;
  cfg.rows = cfg.cols = nd;
  return cfg;
}

LavamdConfig lavamd_config(std::uint32_t nd) {
  LavamdConfig cfg;
  cfg.particles = nd;
  return cfg;
}

Registry make_builtin_registry() {
  Registry reg;

  reg.add(WorkloadInfo{
      "sor",
      "7-point 3-D SOR stencil with reduction (the LES weather kernel)",
      "edge of the nd^3 grid",
      24,
      [](std::uint32_t nd) -> tytra::Result<std::uint64_t> {
        if (nd == 0) return nd_error("sor", "--nd must be positive");
        if (nd > kMaxSorNd) {
          return nd_error("sor", "--nd " + std::to_string(nd) +
                                     " overflows the uint64 NDRange (nd^3)");
        }
        return static_cast<std::uint64_t>(nd) * nd * nd;
      },
      [](std::uint32_t nd) { return sor_lowerer(sor_config(nd)); },
      [](std::uint32_t nd) {
        const SorConfig cfg = sor_config(nd);
        const SorReference ref = sor_reference(cfg, sor_inputs(cfg));
        double sum = ref.sor_err_acc;
        for (const double v : ref.p_new) sum += v;
        return sum;
      },
      /*source=*/{}});

  reg.add(WorkloadInfo{
      "hotspot",
      "Rodinia processor-temperature stencil",
      "edge of the nd^2 floorplan",
      24,
      [](std::uint32_t nd) -> tytra::Result<std::uint64_t> {
        if (nd == 0) return nd_error("hotspot", "--nd must be positive");
        // nd is 32-bit, so nd^2 always fits uint64 — no upper bound.
        return static_cast<std::uint64_t>(nd) * nd;
      },
      [](std::uint32_t nd) { return hotspot_lowerer(hotspot_config(nd)); },
      [](std::uint32_t nd) {
        const HotspotConfig cfg = hotspot_config(nd);
        double sum = 0;
        for (const double v : hotspot_reference(cfg, hotspot_inputs(cfg))) {
          sum += v;
        }
        return sum;
      },
      /*source=*/{}});

  reg.add(WorkloadInfo{
      "lavamd",
      "Rodinia molecular-dynamics particle kernel",
      "particle count",
      24,
      [](std::uint32_t nd) -> tytra::Result<std::uint64_t> {
        if (nd == 0) return nd_error("lavamd", "--nd must be positive");
        return nd;
      },
      [](std::uint32_t nd) { return lavamd_lowerer(lavamd_config(nd)); },
      [](std::uint32_t nd) {
        const LavamdConfig cfg = lavamd_config(nd);
        const LavamdReference ref = lavamd_reference(cfg, lavamd_inputs(cfg));
        double sum = ref.pot_acc;
        for (const double v : ref.pot) sum += v;
        return sum;
      },
      /*source=*/{}});

  return reg;
}

}  // namespace

Registry& Registry::instance() {
  // Built-ins live in this translation unit, so using the registry from a
  // static library can never drop them to the linker's dead-stripping.
  static Registry reg = make_builtin_registry();
  return reg;
}

void Registry::add(WorkloadInfo info) {
  auto added = try_add(std::move(info));
  if (!added.ok()) {
    throw std::invalid_argument(added.diag().message);
  }
}

tytra::Result<const WorkloadInfo*> Registry::try_add(WorkloadInfo info) {
  if (info.name.empty()) {
    return tytra::make_error("kernels::Registry: workload name is empty");
  }
  if (!info.ndrange || !info.make_lowerer) {
    return tytra::make_error("kernels::Registry: workload '" + info.name +
                             "' is missing the ndrange or make_lowerer hook");
  }
  if (find(info.name)) {
    return tytra::make_error("kernels::Registry: workload '" + info.name +
                             "' is already registered");
  }
  entries_.push_back(std::move(info));
  return static_cast<const WorkloadInfo*>(&entries_.back());
}

const WorkloadInfo* Registry::find(std::string_view name) const {
  for (const auto& e : entries_) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

std::vector<std::string> Registry::names() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& e : entries_) out.push_back(e.name);
  return out;
}

std::string Registry::names_joined(std::string_view sep) const {
  std::string out;
  for (const auto& e : entries_) {
    if (!out.empty()) out += sep;
    out += e.name;
  }
  return out;
}

std::string format_registry(const Registry& reg) {
  std::string out = "workloads (kernels::Registry):\n";
  char line[512];
  for (const auto& info : reg.all()) {
    std::snprintf(line, sizeof line, "  %-10s %s\n", info.name.c_str(),
                  info.summary.c_str());
    out += line;
    std::snprintf(line, sizeof line, "  %-10s --nd: %s (default %u)\n", "",
                  info.nd_help.c_str(), info.default_nd);
    out += line;
    if (!info.source.empty()) {
      std::snprintf(line, sizeof line, "  %-10s source: %s\n", "",
                    info.source.c_str());
      out += line;
    }
  }
  out += "device presets: ";
  const auto& presets = target::preset_names();
  for (std::size_t i = 0; i < presets.size(); ++i) {
    if (i) out += "|";
    out += presets[i];
  }
  out += " (or any .tgt file)\n";
  return out;
}

std::string format_registry_json(const Registry& reg) {
  std::ostringstream os;
  os << "{\n  \"workloads\": [";
  const auto& entries = reg.all();
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const auto& info = entries[i];
    os << (i ? ",\n" : "\n") << "    {\"name\": \""
       << tytra::json::escape(info.name) << "\", \"summary\": \""
       << tytra::json::escape(info.summary) << "\", \"nd_help\": \""
       << tytra::json::escape(info.nd_help)
       << "\", \"default_nd\": " << info.default_nd << ", \"source\": ";
    if (info.source.empty()) {
      os << "null";
    } else {
      os << "\"" << tytra::json::escape(info.source) << "\"";
    }
    os << "}";
  }
  os << "\n  ],\n  \"presets\": [";
  const auto& presets = target::preset_names();
  for (std::size_t i = 0; i < presets.size(); ++i) {
    os << (i ? ", " : "") << "\"" << tytra::json::escape(presets[i]) << "\"";
  }
  os << "]\n}\n";
  return os.str();
}

tytra::Result<dse::Job> Registry::make_job(std::string_view workload,
                                           std::uint32_t nd) const {
  const WorkloadInfo* info = find(workload);
  if (!info) {
    return tytra::make_error("unknown workload '" + std::string(workload) +
                             "' (registered: " + names_joined() + ")");
  }
  auto n = info->ndrange(nd);
  if (!n.ok()) return n.diag();
  dse::Job job;
  job.workload = info->name;
  job.nd = nd;
  job.n = n.value();
  job.lower = std::make_shared<dse::KeyedLowerer>(info->make_lowerer(nd));
  return job;
}

}  // namespace tytra::kernels
