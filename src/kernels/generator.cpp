#include "tytra/kernels/generator.hpp"

#include <cstdio>
#include <iterator>
#include <string>
#include <vector>

#include "tytra/ir/builder.hpp"
#include "tytra/support/rng.hpp"

namespace tytra::kernels {

namespace {

using ir::FuncKind;
using ir::FunctionBuilder;
using ir::ModuleBuilder;
using ir::Opcode;
using ir::Operand;
using ir::ScalarType;
using ir::Type;

// Integer-safe opcode pools. Division/shifts are excluded on purpose:
// they are legal IR but degenerate hardware at random operand mixes
// (shift-by-value barrels, zero divisors) and add nothing to the
// properties under test.
constexpr Opcode kBinaryOps[] = {Opcode::Add, Opcode::Sub, Opcode::Mul,
                                 Opcode::Min, Opcode::Max, Opcode::And,
                                 Opcode::Or,  Opcode::Xor};
constexpr Opcode kUnaryOps[] = {Opcode::Not, Opcode::Abs, Opcode::Neg,
                                Opcode::Mov};

// Grid edge lengths. Every design is an edge x edge NDRange: all edges
// divide by 16 so lane sweeps get the full variant ladder, and the
// smallest grid (64^2 = 4096 work-items) keeps pipeline-fill and
// per-stream overheads amortized — below ~4096 work-items those constant
// terms dominate and the cost model's steady-state view of the design
// diverges from the cycle simulator by design, not by defect.
constexpr std::uint64_t kEdges[] = {64, 96, 128, 192, 256};

constexpr std::uint16_t kWidths[] = {16, 18, 24, 32};

std::uint64_t pick(tytra::SplitMix64& rng, const std::uint64_t* list,
                   std::size_t n) {
  return list[rng.uniform_int(0, static_cast<std::int64_t>(n) - 1)];
}

}  // namespace

ir::Module generate_kernel(std::uint64_t seed, const GeneratorOptions& opt) {
  tytra::SplitMix64 rng(seed);

  const std::uint64_t edge = pick(rng, kEdges, std::size(kEdges));
  const std::uint64_t ngs = edge * edge;
  const auto nki =
      static_cast<std::uint32_t>(rng.uniform_int(1, opt.max_nki));
  const ir::ExecForm form =
      rng.uniform_int(0, 7) == 0 ? ir::ExecForm::A : ir::ExecForm::B;
  const Type t = Type::scalar_of(ScalarType::uint(static_cast<std::uint16_t>(
      kWidths[rng.uniform_int(0, std::size(kWidths) - 1)])));

  const auto n_in = static_cast<std::uint32_t>(
      rng.uniform_int(opt.min_inputs, opt.max_inputs));
  const auto n_out =
      static_cast<std::uint32_t>(rng.uniform_int(1, opt.max_outputs));

  char name[32];
  std::snprintf(name, sizeof name, "gen_%016llx",
                static_cast<unsigned long long>(seed));
  ModuleBuilder mb(name);
  mb.set_ndrange(ngs).set_nki(nki).set_form(form);
  mb.reserve_ports(n_in + n_out);
  std::vector<std::string> in_names, out_names;
  for (std::uint32_t i = 0; i < n_in; ++i) {
    in_names.push_back("in" + std::to_string(i));
    mb.add_input_port(in_names.back(), t);
  }
  for (std::uint32_t i = 0; i < n_out; ++i) {
    out_names.push_back("out" + std::to_string(i));
    mb.add_output_port(out_names.back(), t);
  }

  FunctionBuilder f0("f0", FuncKind::Pipe);
  for (const auto& p : in_names) f0.param(t, p);
  for (const auto& p : out_names) f0.param(t, p);

  // Stream offsets on random inputs: the neighbour accesses of a stencil,
  // with magnitudes tied to the edge so the buffer depths stay sane.
  const std::int64_t magnitudes[] = {1, 2, static_cast<std::int64_t>(edge) - 1,
                                     static_cast<std::int64_t>(edge),
                                     static_cast<std::int64_t>(edge) + 1};
  const auto n_off =
      static_cast<std::uint32_t>(rng.uniform_int(0, opt.max_offsets));
  std::vector<std::string> pending = in_names;  // values the DAG must consume
  for (std::uint32_t i = 0; i < n_off; ++i) {
    const auto& base =
        in_names[rng.uniform_int(0, static_cast<std::int64_t>(n_in) - 1)];
    const std::int64_t mag =
        magnitudes[rng.uniform_int(0, std::size(magnitudes) - 1)];
    const std::int64_t off = rng.uniform_int(0, 1) == 0 ? mag : -mag;
    pending.push_back(f0.offset(base, off, "off" + std::to_string(i)));
  }

  const auto rand_operand = [&](const std::vector<std::string>& pool) {
    if (rng.uniform_int(0, 3) == 0) {
      return Operand::const_int(rng.uniform_int(1, 7));
    }
    return Operand::local(
        pool[rng.uniform_int(0, static_cast<std::int64_t>(pool.size()) - 1)]);
  };
  const auto rand_binary = [&] {
    return kBinaryOps[rng.uniform_int(0, std::size(kBinaryOps) - 1)];
  };

  // Reduction tree over every input and offset stream: fold pending
  // values pairwise until one remains, so all ports are reachable from
  // the outputs and the cost model / simulator see the whole design.
  std::vector<std::string> pool = pending;
  while (pending.size() > 1) {
    const auto a = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(pending.size()) - 1));
    const std::string va = pending[a];
    pending.erase(pending.begin() + static_cast<std::ptrdiff_t>(a));
    const auto b = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(pending.size()) - 1));
    const std::string vb = pending[b];
    pending.erase(pending.begin() + static_cast<std::ptrdiff_t>(b));
    const std::string r =
        f0.instr(rand_binary(), t, {Operand::local(va), Operand::local(vb)});
    pending.push_back(r);
    pool.push_back(r);
  }

  // Random extra ops threaded through the chain tip, so depth varies
  // independently of port count.
  std::string tip = pending.front();
  const auto n_extra =
      static_cast<std::uint32_t>(rng.uniform_int(0, opt.max_extra_ops));
  for (std::uint32_t i = 0; i < n_extra; ++i) {
    std::string r;
    if (rng.uniform_int(0, 4) == 0) {
      r = f0.instr(kUnaryOps[rng.uniform_int(0, std::size(kUnaryOps) - 1)], t,
                   {Operand::local(tip)});
    } else {
      r = f0.instr(rand_binary(), t, {Operand::local(tip), rand_operand(pool)});
    }
    pool.push_back(r);
    tip = r;
  }

  f0.store(t, out_names.front(), Operand::local(tip));
  for (std::uint32_t i = 1; i < n_out; ++i) {
    f0.store(t, out_names[i], rand_operand(pool));
  }
  if (rng.uniform_int(0, 1) == 1) {
    f0.reduce(Opcode::Add, t, "acc0", {rand_operand(pool)});
  }
  mb.add(std::move(f0).take());

  FunctionBuilder main_fn("main", FuncKind::Pipe);
  std::vector<Operand> args;
  args.reserve(in_names.size() + out_names.size());
  for (const auto& p : in_names) args.push_back(Operand::global(p));
  for (const auto& p : out_names) args.push_back(Operand::global(p));
  main_fn.call("f0", std::move(args), FuncKind::Pipe);
  mb.add(std::move(main_fn).take());
  return std::move(mb).take();
}

}  // namespace tytra::kernels
