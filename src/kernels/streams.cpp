#include "tytra/kernels/streams.hpp"

#include <stdexcept>

namespace tytra::kernels {

std::string lane_port_name(const std::string& base, std::uint32_t lane) {
  // One allocation: size the result before appending (lane sweeps call
  // this per port per lane).
  std::string out;
  out.reserve(base.size() + 2 + 10);
  out += base;
  out += "_l";
  out += std::to_string(lane);
  return out;
}

sim::StreamMap partition_streams(const sim::StreamMap& full,
                                 std::uint32_t lanes) {
  if (lanes <= 1) return full;
  sim::StreamMap out;
  for (const auto& [name, data] : full) {
    if (data.size() % lanes != 0) {
      throw std::invalid_argument("partition_streams: stream '" + name +
                                  "' length not divisible by lane count");
    }
    const std::size_t chunk = data.size() / lanes;
    for (std::uint32_t l = 0; l < lanes; ++l) {
      out[lane_port_name(name, l)] =
          std::vector<double>(data.begin() + static_cast<std::ptrdiff_t>(l * chunk),
                              data.begin() + static_cast<std::ptrdiff_t>((l + 1) * chunk));
    }
  }
  return out;
}

std::vector<double> gather_output(const sim::StreamMap& outputs,
                                  const std::string& base,
                                  std::uint32_t lanes) {
  if (lanes <= 1) {
    const auto it = outputs.find(base);
    if (it == outputs.end()) {
      throw std::invalid_argument("gather_output: missing stream '" + base + "'");
    }
    return it->second;
  }
  std::vector<double> out;
  for (std::uint32_t l = 0; l < lanes; ++l) {
    const auto it = outputs.find(lane_port_name(base, l));
    if (it == outputs.end()) {
      throw std::invalid_argument("gather_output: missing lane stream '" +
                                  lane_port_name(base, l) + "'");
    }
    out.insert(out.end(), it->second.begin(), it->second.end());
  }
  return out;
}

}  // namespace tytra::kernels
