// The Rodinia Hotspot kernel: estimates processor temperature over an
// architectural floorplan — a 5-point 2-D stencil combining the ambient
// leak, the power map and the neighbour couplings.

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "tytra/ir/builder.hpp"
#include "tytra/kernels/kernels.hpp"
#include "tytra/kernels/streams.hpp"
#include "tytra/support/rng.hpp"

namespace tytra::kernels {

namespace {

using ir::FuncKind;
using ir::FunctionBuilder;
using ir::ModuleBuilder;
using ir::Opcode;
using ir::Operand;
using ir::Type;

constexpr std::int64_t kAmbient = 80;
constexpr std::int64_t kRz = 16;   // vertical (ambient) resistance, power of 2
constexpr std::int64_t kCap = 2;   // thermal capacitance step factor

constexpr const char* kHotspotInputs[] = {"temp", "power", "rx", "ry"};

ir::Function build_hotspot_pe(const HotspotConfig& cfg, ir::BuildArena* arena) {
  const Type t = Type::scalar_of(cfg.elem);
  FunctionBuilder f0("f0", FuncKind::Pipe, arena);
  for (const char* name : kHotspotInputs) f0.param(t, name);
  f0.param(t, "tout");

  const auto cols = static_cast<std::int64_t>(cfg.cols);
  const auto te = f0.offset("temp", +1, "t_east");
  const auto tw = f0.offset("temp", -1, "t_west");
  const auto ts = f0.offset("temp", +cols, "t_south");
  const auto tn = f0.offset("temp", -cols, "t_north");

  const auto l = [](const std::string& n) { return Operand::local(n); };
  const auto hsum = f0.instr(Opcode::Add, t, {l(te), l(tw)});
  const auto vsum = f0.instr(Opcode::Add, t, {l(tn), l(ts)});
  // Two *identical* doublings of the centre temperature: the fabric
  // synthesizer merges them (CSE), the cost model counts both — one of the
  // deliberate estimate-vs-actual error sources of Table II.
  const auto hc = f0.instr(Opcode::Mul, t, {l("temp"), Operand::const_int(2)});
  const auto vc = f0.instr(Opcode::Mul, t, {l("temp"), Operand::const_int(2)});
  const auto hterm = f0.instr(Opcode::Sub, t, {l(hsum), l(hc)});
  const auto vterm = f0.instr(Opcode::Sub, t, {l(vsum), l(vc)});
  const auto hweighted = f0.instr(Opcode::Mul, t, {l(hterm), l("rx")});
  const auto vweighted = f0.instr(Opcode::Mul, t, {l(vterm), l("ry")});
  const auto amb = f0.instr(Opcode::Sub, t,
                            {Operand::const_int(kAmbient), l("temp")});
  // Constant divisor: strength-reduced to a shift by the fabric.
  const auto ambq =
      f0.instr(Opcode::Div, t, {l(amb), Operand::const_int(kRz)});
  const auto sum1 = f0.instr(Opcode::Add, t, {l(hweighted), l(vweighted)});
  const auto sum2 = f0.instr(Opcode::Add, t, {l(sum1), l(ambq)});
  const auto sum3 = f0.instr(Opcode::Add, t, {l(sum2), l("power")});
  const auto delta =
      f0.instr(Opcode::Mul, t, {l(sum3), Operand::const_int(kCap)});
  const auto tnew = f0.instr(Opcode::Add, t, {l("temp"), l(delta)}, "t_new");
  f0.store(t, "tout", Operand::local(tnew));
  return std::move(f0).take();
}

}  // namespace

ir::Module make_hotspot(const HotspotConfig& cfg, ir::BuildArena* arena) {
  const std::uint64_t n = cfg.ngs();
  if (cfg.lanes == 0 || n % cfg.lanes != 0) {
    throw std::invalid_argument("make_hotspot: lane count must divide rows*cols");
  }
  const Type t = Type::scalar_of(cfg.elem);
  ModuleBuilder mb("hotspot", arena);
  mb.set_ndrange(n).set_nki(cfg.nki).set_form(cfg.form);

  const std::uint64_t per_lane = n / cfg.lanes;
  mb.reserve_ports((std::size(kHotspotInputs) + 1) * cfg.lanes);
  const auto port_name = [&](const char* base, std::uint32_t lane) {
    return cfg.lanes == 1 ? std::string(base) : lane_port_name(base, lane);
  };
  for (std::uint32_t lane = 0; lane < cfg.lanes; ++lane) {
    for (const char* name : kHotspotInputs) {
      mb.add_input_port(port_name(name, lane), t,
                        ir::AccessPattern::Contiguous, 1,
                        cfg.lanes == 1 ? 0 : per_lane);
    }
    mb.add_output_port(port_name("temp_new", lane), t,
                       ir::AccessPattern::Contiguous, 1,
                       cfg.lanes == 1 ? 0 : per_lane);
  }

  mb.add(build_hotspot_pe(cfg, arena));

  const auto lane_args = [&](std::uint32_t lane) {
    std::vector<Operand> args;
    args.reserve(std::size(kHotspotInputs) + 1);
    for (const char* name : kHotspotInputs) {
      args.push_back(Operand::global(port_name(name, lane)));
    }
    args.push_back(Operand::global(port_name("temp_new", lane)));
    return args;
  };

  FunctionBuilder main("main", FuncKind::Pipe, arena);
  if (cfg.lanes == 1) {
    main.call("f0", lane_args(0), FuncKind::Pipe);
  } else {
    FunctionBuilder f1("f1", FuncKind::Par, arena);
    for (std::uint32_t lane = 0; lane < cfg.lanes; ++lane) {
      f1.call("f0", lane_args(lane), FuncKind::Pipe);
    }
    mb.add(std::move(f1).take());
    main.call("f1", {}, FuncKind::Par);
  }
  mb.add(std::move(main).take());
  return std::move(mb).take();
}

sim::StreamMap hotspot_inputs(const HotspotConfig& cfg, std::uint64_t seed) {
  tytra::SplitMix64 rng(seed);
  const std::uint64_t n = cfg.ngs();
  sim::StreamMap streams;
  auto fill = [&](const char* name, std::int64_t lo, std::int64_t hi) {
    auto& v = streams[name];
    v.resize(n);
    for (auto& x : v) x = static_cast<double>(rng.uniform_int(lo, hi));
  };
  fill("temp", 40, 90);
  fill("power", 0, 9);
  fill("rx", 1, 3);
  fill("ry", 1, 3);
  return streams;
}

std::vector<double> hotspot_reference(const HotspotConfig& cfg,
                                      const sim::StreamMap& inputs) {
  const auto n = static_cast<std::int64_t>(cfg.ngs());
  const auto cols = static_cast<std::int64_t>(cfg.cols);
  const auto& temp = inputs.at("temp");
  const auto& power = inputs.at("power");
  const auto& rx = inputs.at("rx");
  const auto& ry = inputs.at("ry");
  const auto wrap = [&](double v) { return sim::wrap_to_type(v, cfg.elem); };
  const auto at = [&](std::int64_t i) {
    return temp[static_cast<std::size_t>(std::clamp<std::int64_t>(i, 0, n - 1))];
  };

  std::vector<double> out(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    const std::size_t u = static_cast<std::size_t>(i);
    const double hsum = wrap(at(i + 1) + at(i - 1));
    const double vsum = wrap(at(i - cols) + at(i + cols));
    const double twice = wrap(temp[u] * 2.0);
    const double hterm = wrap(wrap(hsum - twice) * rx[u]);
    const double vterm = wrap(wrap(vsum - twice) * ry[u]);
    // Integer division truncates toward zero (matching the datapath core).
    const double ambn = wrap(static_cast<double>(kAmbient) - temp[u]);
    const double ambq = wrap(std::trunc(ambn / static_cast<double>(kRz)));
    const double sum = wrap(wrap(wrap(hterm + vterm) + ambq) + power[u]);
    const double delta = wrap(sum * static_cast<double>(kCap));
    out[u] = wrap(temp[u] + delta);
  }
  return out;
}

sim::CpuKernelCost hotspot_cpu_cost() { return {14.0, 6.0 * 4.0}; }

}  // namespace tytra::kernels
