// A coarse-grained two-stage pipeline (paper Fig. 7 configuration 3 and
// Fig. 8): @main chains @stageA and @stageB; the intermediate stream is a
// first-class Manage-IR object; @stageB folds in a single-cycle comb
// block for the final scale-and-saturate.

#include <algorithm>
#include <cmath>

#include "tytra/ir/builder.hpp"
#include "tytra/kernels/kernels.hpp"
#include "tytra/support/rng.hpp"

namespace tytra::kernels {

namespace {

using ir::FuncKind;
using ir::FunctionBuilder;
using ir::ModuleBuilder;
using ir::Opcode;
using ir::Operand;
using ir::Type;

}  // namespace

ir::Module make_coarse_pipeline(const CoarseConfig& cfg) {
  const Type t = Type::scalar_of(cfg.elem);
  ModuleBuilder mb("coarse2");
  mb.set_ndrange(cfg.items).set_nki(cfg.nki).set_form(cfg.form);
  mb.add_input_port("x", t);
  mb.add_input_port("w", t);
  mb.add_output_port("mid", t);  // inter-stage stream
  mb.add_output_port("y", t);

  // Stage A: 3-point stencil sum -> @mid.
  FunctionBuilder fa("stageA", FuncKind::Pipe);
  fa.param(t, "x");
  const auto xp = fa.offset("x", +1);
  const auto xn = fa.offset("x", -1);
  const auto s1 = fa.instr(Opcode::Add, t, {Operand::local(xp), Operand::local(xn)});
  const auto s2 = fa.instr(Opcode::Add, t, {Operand::local(s1), Operand::local("x")});
  fa.store(t, "mid", Operand::local(s2));
  mb.add(std::move(fa).take());

  // Comb block: saturating clamp (single-cycle logic only).
  FunctionBuilder comb("clampc", FuncKind::Comb);
  comb.param(t, "v");
  const auto clamped = comb.instr(
      Opcode::Min, t, {Operand::local("v"), Operand::const_int(60000)});
  comb.store(t, "y", Operand::local(clamped));
  mb.add(std::move(comb).take());

  // Stage B: weight the intermediate stream, then clamp through the comb.
  FunctionBuilder fb("stageB", FuncKind::Pipe);
  fb.param(t, "mid");
  fb.param(t, "w");
  const auto prod =
      fb.instr(Opcode::Mul, t, {Operand::local("mid"), Operand::local("w")});
  const auto shifted =
      fb.instr(Opcode::LShr, t, {Operand::local(prod), Operand::const_int(2)});
  fb.call("clampc", {Operand::local(shifted)}, FuncKind::Comb);
  mb.add(std::move(fb).take());

  FunctionBuilder main_fn("main", FuncKind::Pipe);
  main_fn.call("stageA", {Operand::global("x")}, FuncKind::Pipe);
  main_fn.call("stageB", {Operand::global("mid"), Operand::global("w")},
               FuncKind::Pipe);
  mb.add(std::move(main_fn).take());
  return std::move(mb).take();
}

sim::StreamMap coarse_inputs(const CoarseConfig& cfg, std::uint64_t seed) {
  tytra::SplitMix64 rng(seed);
  sim::StreamMap streams;
  auto& x = streams["x"];
  auto& w = streams["w"];
  x.resize(cfg.items);
  w.resize(cfg.items);
  for (auto& v : x) v = static_cast<double>(rng.uniform_int(0, 255));
  for (auto& v : w) v = static_cast<double>(rng.uniform_int(1, 15));
  return streams;
}

std::vector<double> coarse_reference(const CoarseConfig& cfg,
                                     const sim::StreamMap& inputs) {
  const auto& x = inputs.at("x");
  const auto& w = inputs.at("w");
  const auto n = static_cast<std::int64_t>(cfg.items);
  const auto wrap = [&](double v) { return sim::wrap_to_type(v, cfg.elem); };
  const auto at = [&](std::int64_t i) {
    return x[static_cast<std::size_t>(std::clamp<std::int64_t>(i, 0, n - 1))];
  };
  std::vector<double> y(cfg.items);
  for (std::int64_t i = 0; i < n; ++i) {
    const double mid = wrap(wrap(at(i + 1) + at(i - 1)) + at(i));
    const double prod = wrap(mid * w[static_cast<std::size_t>(i)]);
    const double shifted =
        std::floor(prod / 4.0);  // lshr 2 on a non-negative value
    y[static_cast<std::size_t>(i)] = std::min(shifted, 60000.0);
  }
  return y;
}

}  // namespace tytra::kernels
