#include "tytra/kernels/lowerers.hpp"

#include <string>

namespace tytra::kernels {

namespace {

/// "key=value" fingerprint fields, '/'-separated. Human-readable on
/// purpose: the fingerprint doubles as the debugging record of what a
/// variant key assumed.
class Fingerprint {
 public:
  explicit Fingerprint(std::string_view kernel) : text_(kernel) {}

  Fingerprint& field(std::string_view key, const std::string& value) {
    text_ += '/';
    text_ += key;
    text_ += '=';
    text_ += value;
    return *this;
  }
  Fingerprint& field(std::string_view key, std::uint64_t value) {
    return field(key, std::to_string(value));
  }
  Fingerprint& field(std::string_view key, std::int64_t value) {
    return field(key, std::to_string(value));
  }
  Fingerprint& field(std::string_view key, ir::ExecForm form) {
    return field(key, std::string(ir::exec_form_name(form)));
  }
  Fingerprint& field(std::string_view key, const ir::ScalarType& elem) {
    return field(key, elem.to_string());
  }

  [[nodiscard]] std::string take() { return std::move(text_); }

 private:
  std::string text_;
};

}  // namespace

dse::KeyedLowerer sor_lowerer(SorConfig config) {
  std::string fp = Fingerprint("sor")
                       .field("im", std::uint64_t{config.im})
                       .field("jm", std::uint64_t{config.jm})
                       .field("km", std::uint64_t{config.km})
                       .field("nki", std::uint64_t{config.nki})
                       .field("form", config.form)
                       .field("elem", config.elem)
                       .field("omega", config.omega)
                       .take();
  return dse::KeyedLowerer(
      std::move(fp),
      [config](const frontend::Variant& v, ir::BuildArena* arena) {
        // Copy before patching lanes: workers share this closure and call
        // it concurrently.
        SorConfig c = config;
        c.lanes = v.lanes();
        return make_sor(c, arena);
      });
}

dse::KeyedLowerer hotspot_lowerer(HotspotConfig config) {
  std::string fp = Fingerprint("hotspot")
                       .field("rows", std::uint64_t{config.rows})
                       .field("cols", std::uint64_t{config.cols})
                       .field("nki", std::uint64_t{config.nki})
                       .field("form", config.form)
                       .field("elem", config.elem)
                       .take();
  return dse::KeyedLowerer(
      std::move(fp),
      [config](const frontend::Variant& v, ir::BuildArena* arena) {
        HotspotConfig c = config;
        c.lanes = v.lanes();
        return make_hotspot(c, arena);
      });
}

dse::KeyedLowerer lavamd_lowerer(LavamdConfig config) {
  std::string fp = Fingerprint("lavamd")
                       .field("particles", config.particles)
                       .field("nki", std::uint64_t{config.nki})
                       .field("dv", std::uint64_t{config.dv})
                       .field("form", config.form)
                       .field("elem", config.elem)
                       .take();
  return dse::KeyedLowerer(
      std::move(fp),
      [config](const frontend::Variant& v, ir::BuildArena* arena) {
        LavamdConfig c = config;
        c.lanes = v.lanes();
        return make_lavamd(c, arena);
      });
}

}  // namespace tytra::kernels
