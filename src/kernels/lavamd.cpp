// The Rodinia LavaMD kernel: particle potential and relocation due to
// mutual forces between particles within a 3-D space. Streamed form: each
// work-item pairs a home particle (x,y,z,q) with a neighbour particle
// (xn,yn,zn); no stream offsets (BRAM-free, as in Table II).

#include <cmath>
#include <stdexcept>

#include "tytra/ir/builder.hpp"
#include "tytra/kernels/kernels.hpp"
#include "tytra/kernels/streams.hpp"
#include "tytra/support/rng.hpp"

namespace tytra::kernels {

namespace {

using ir::FuncKind;
using ir::FunctionBuilder;
using ir::ModuleBuilder;
using ir::Opcode;
using ir::Operand;
using ir::Type;

constexpr const char* kLavamdInputs[] = {"x", "y", "z", "q", "xn", "yn", "zn"};

ir::Function build_lavamd_pe(const LavamdConfig& cfg, ir::BuildArena* arena) {
  // With DV > 1 the whole datapath is replicated lane-wise: every value
  // and functional unit is dv-wide.
  const Type t = cfg.dv == 1
                     ? Type::scalar_of(cfg.elem)
                     : Type::vector_of(cfg.elem,
                                       static_cast<std::uint16_t>(cfg.dv));
  FunctionBuilder f0("f0", FuncKind::Pipe, arena);
  for (const char* name : kLavamdInputs) f0.param(t, name);
  f0.param(t, "pot_out");

  const auto l = [](const std::string& n) { return Operand::local(n); };
  const auto dx = f0.instr(Opcode::Sub, t, {l("x"), l("xn")}, "dx");
  const auto dy = f0.instr(Opcode::Sub, t, {l("y"), l("yn")}, "dy");
  const auto dz = f0.instr(Opcode::Sub, t, {l("z"), l("zn")}, "dz");
  const auto dx2 = f0.instr(Opcode::Mul, t, {l(dx), l(dx)});
  const auto dy2 = f0.instr(Opcode::Mul, t, {l(dy), l(dy)});
  const auto dz2 = f0.instr(Opcode::Mul, t, {l(dz), l(dz)});
  const auto a1 = f0.instr(Opcode::Add, t, {l(dx2), l(dy2)});
  const auto r2 = f0.instr(Opcode::Add, t, {l(a1), l(dz2)}, "r2");
  const auto rr = f0.instr(Opcode::Sqrt, t, {l(r2)}, "r");
  const auto u1 = f0.instr(Opcode::Mul, t, {l("q"), l(r2)});
  const auto u2 = f0.instr(Opcode::Mul, t, {l("q"), l(rr)});
  const auto u = f0.instr(Opcode::Sub, t, {l(u1), l(u2)}, "u");
  const auto fs = f0.instr(Opcode::Mac, t, {l(dx), l(u), l("q")}, "fs");
  const auto pot = f0.instr(Opcode::Add, t, {l(u), l(fs)}, "pot");
  f0.store(t, "pot_out", Operand::local(pot));
  f0.reduce(Opcode::Add, t, "potAcc", {Operand::local(pot)});
  return std::move(f0).take();
}

}  // namespace

ir::Module make_lavamd(const LavamdConfig& cfg, ir::BuildArena* arena) {
  if (cfg.lanes == 0 || cfg.particles % cfg.lanes != 0) {
    throw std::invalid_argument(
        "make_lavamd: lane count must divide the particle count");
  }
  if (cfg.dv == 0 || (cfg.particles / cfg.lanes) % cfg.dv != 0) {
    throw std::invalid_argument(
        "make_lavamd: vectorization degree must divide the per-lane range");
  }
  const Type t = cfg.dv == 1
                     ? Type::scalar_of(cfg.elem)
                     : Type::vector_of(cfg.elem,
                                       static_cast<std::uint16_t>(cfg.dv));
  ModuleBuilder mb("lavamd", arena);
  mb.set_ndrange(cfg.particles).set_nki(cfg.nki).set_form(cfg.form);

  const std::uint64_t per_lane = cfg.particles / cfg.lanes;
  mb.reserve_ports((std::size(kLavamdInputs) + 1) * cfg.lanes);
  const auto port_name = [&](const char* base, std::uint32_t lane) {
    return cfg.lanes == 1 ? std::string(base) : lane_port_name(base, lane);
  };
  for (std::uint32_t lane = 0; lane < cfg.lanes; ++lane) {
    // Explicit sizing: one word per work-item regardless of DV packing.
    for (const char* name : kLavamdInputs) {
      mb.add_input_port(port_name(name, lane), t,
                        ir::AccessPattern::Contiguous, 1, per_lane);
    }
    mb.add_output_port(port_name("pot", lane), t,
                       ir::AccessPattern::Contiguous, 1, per_lane);
  }

  mb.add(build_lavamd_pe(cfg, arena));

  const auto lane_args = [&](std::uint32_t lane) {
    std::vector<Operand> args;
    args.reserve(std::size(kLavamdInputs) + 1);
    for (const char* name : kLavamdInputs) {
      args.push_back(Operand::global(port_name(name, lane)));
    }
    args.push_back(Operand::global(port_name("pot", lane)));
    return args;
  };

  FunctionBuilder main("main", FuncKind::Pipe, arena);
  if (cfg.lanes == 1) {
    main.call("f0", lane_args(0), FuncKind::Pipe);
  } else {
    FunctionBuilder f1("f1", FuncKind::Par, arena);
    for (std::uint32_t lane = 0; lane < cfg.lanes; ++lane) {
      f1.call("f0", lane_args(lane), FuncKind::Pipe);
    }
    mb.add(std::move(f1).take());
    main.call("f1", {}, FuncKind::Par);
  }
  mb.add(std::move(main).take());
  return std::move(mb).take();
}

sim::StreamMap lavamd_inputs(const LavamdConfig& cfg, std::uint64_t seed) {
  tytra::SplitMix64 rng(seed);
  sim::StreamMap streams;
  auto fill = [&](const char* name, std::int64_t lo, std::int64_t hi) {
    auto& v = streams[name];
    v.resize(cfg.particles);
    for (auto& x : v) x = static_cast<double>(rng.uniform_int(lo, hi));
  };
  fill("x", -15, 15);
  fill("y", -15, 15);
  fill("z", -15, 15);
  fill("q", 1, 9);
  fill("xn", -15, 15);
  fill("yn", -15, 15);
  fill("zn", -15, 15);
  return streams;
}

LavamdReference lavamd_reference(const LavamdConfig& cfg,
                                 const sim::StreamMap& inputs) {
  const auto& x = inputs.at("x");
  const auto& y = inputs.at("y");
  const auto& z = inputs.at("z");
  const auto& q = inputs.at("q");
  const auto& xn = inputs.at("xn");
  const auto& yn = inputs.at("yn");
  const auto& zn = inputs.at("zn");
  const auto wrap = [&](double v) { return sim::wrap_to_type(v, cfg.elem); };

  LavamdReference out;
  out.pot.resize(cfg.particles);
  for (std::size_t i = 0; i < cfg.particles; ++i) {
    const double dx = wrap(x[i] - xn[i]);
    const double dy = wrap(y[i] - yn[i]);
    const double dz = wrap(z[i] - zn[i]);
    const double r2 = wrap(wrap(wrap(dx * dx) + wrap(dy * dy)) + wrap(dz * dz));
    const double r = wrap(std::floor(std::sqrt(r2)));
    const double u = wrap(wrap(q[i] * r2) - wrap(q[i] * r));
    const double fs = wrap(dx * u + q[i]);
    const double pot = wrap(u + fs);
    out.pot[i] = pot;
    out.pot_acc = wrap(out.pot_acc + pot);
  }
  return out;
}

sim::CpuKernelCost lavamd_cpu_cost() { return {16.0, 8.0 * 4.0}; }

}  // namespace tytra::kernels
