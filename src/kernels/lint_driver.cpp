#include "tytra/kernels/lint_driver.hpp"

#include <exception>
#include <utility>

#include "tytra/frontend/transform.hpp"
#include "tytra/ir/module.hpp"

namespace tytra::kernels {

LintDriverResult run_lint_driver(const Registry& reg,
                                 const LintDriverOptions& options) {
  std::vector<std::string> targets = options.targets;
  if (targets.empty()) targets = reg.names();

  LintDriverResult result;
  std::string text;
  std::string json = "{\n  \"designs\": [";
  bool failed = false;
  const ir::lint::Options lint_opts{options.db};

  for (std::size_t i = 0; i < targets.size(); ++i) {
    const std::string& name = targets[i];
    const WorkloadInfo* info = reg.find(name);
    if (!info) {
      result.exit_code = 1;
      result.err = "unknown workload '" + name +
                   "' (registered: " + reg.names_joined() + ")";
      return result;
    }
    const std::uint32_t nd = options.nd ? options.nd : info->default_nd;
    auto job = reg.make_job(name, nd);
    if (!job.ok()) {
      result.exit_code = 1;
      result.err = name + ": " + job.diag().message;
      return result;
    }
    try {
      const ir::Module module =
          job.value().lower->lower(frontend::baseline_variant(job.value().n));
      const ir::lint::LintReport report = ir::lint::run_lint(module, lint_opts);
      const std::string subject = name + " (nd " + std::to_string(nd) + ")";
      text += ir::lint::format_lint(report, subject);
      json += i ? ", " : "";
      json += ir::lint::format_lint_json(report, name);
      failed = failed || ir::lint::fails(report, options.fail_on);
    } catch (const std::exception& e) {
      result.exit_code = 1;
      result.err = name + ": " + e.what();
      return result;
    }
  }

  json += "],\n  \"failed\": ";
  json += failed ? "true" : "false";
  json += "\n}\n";
  result.out = options.json ? std::move(json) : std::move(text);
  result.exit_code = failed ? 1 : 0;
  return result;
}

}  // namespace tytra::kernels
