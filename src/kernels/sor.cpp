// The SOR kernel of the LES weather simulator (paper §II, Figs. 12-14):
// a 7-point stencil solving the Poisson equation for pressure, with a
// relaxation step and an error reduction.

#include <algorithm>
#include <stdexcept>

#include "tytra/ir/builder.hpp"
#include "tytra/kernels/kernels.hpp"
#include "tytra/kernels/streams.hpp"
#include "tytra/support/rng.hpp"

namespace tytra::kernels {

namespace {

using ir::FuncKind;
using ir::FunctionBuilder;
using ir::ModuleBuilder;
using ir::Opcode;
using ir::Operand;
using ir::Type;

constexpr const char* kSorInputs[] = {"p",    "rhs",  "cn1",  "cn2l", "cn2s",
                                      "cn3l", "cn3s", "cn4l", "cn4s"};

/// Builds the per-lane SOR pipeline @f0 (Fig. 12): offsets creating the six
/// neighbour streams, the weighted stencil sum, relaxation, output stream
/// and error reduction.
ir::Function build_sor_pe(const SorConfig& cfg, ir::BuildArena* arena) {
  const Type t = Type::scalar_of(cfg.elem);
  FunctionBuilder f0("f0", FuncKind::Pipe, arena);
  for (const char* name : kSorInputs) f0.param(t, name);
  f0.param(t, "pout");

  const auto im = static_cast<std::int64_t>(cfg.im);
  const auto imjm = static_cast<std::int64_t>(cfg.im) * cfg.jm;
  const auto pip = f0.offset("p", +1, "p_i_pos");
  const auto pin = f0.offset("p", -1, "p_i_neg");
  const auto pjp = f0.offset("p", +im, "p_j_pos");
  const auto pjn = f0.offset("p", -im, "p_j_neg");
  const auto pkp = f0.offset("p", +imjm, "p_k_pos");
  const auto pkn = f0.offset("p", -imjm, "p_k_neg");

  const auto l = [](const std::string& n) { return Operand::local(n); };
  const auto t1 = f0.instr(Opcode::Mul, t, {l("cn2l"), l(pip)});
  const auto t2 = f0.instr(Opcode::Mul, t, {l("cn2s"), l(pin)});
  const auto t3 = f0.instr(Opcode::Mul, t, {l("cn3l"), l(pjp)});
  const auto t4 = f0.instr(Opcode::Mul, t, {l("cn3s"), l(pjn)});
  const auto t5 = f0.instr(Opcode::Mul, t, {l("cn4l"), l(pkp)});
  const auto t6 = f0.instr(Opcode::Mul, t, {l("cn4s"), l(pkn)});
  const auto s1 = f0.instr(Opcode::Add, t, {l(t1), l(t2)});
  const auto s2 = f0.instr(Opcode::Add, t, {l(t3), l(t4)});
  const auto s3 = f0.instr(Opcode::Add, t, {l(t5), l(t6)});
  const auto s4 = f0.instr(Opcode::Add, t, {l(s1), l(s2)});
  const auto s5 = f0.instr(Opcode::Add, t, {l(s4), l(s3)});
  const auto w = f0.instr(Opcode::Mul, t, {l("cn1"), l(s5)});
  const auto d = f0.instr(Opcode::Sub, t, {l(w), l("rhs")});
  // omega is a compile-time constant: the fabric strength-reduces this
  // multiply, the cost model does not (a Table-II error source).
  const auto r =
      f0.instr(Opcode::Mul, t, {l(d), Operand::const_int(cfg.omega)});
  const auto reltmp = f0.instr(Opcode::Sub, t, {l(r), l("p")}, "reltmp");
  const auto pnew = f0.instr(Opcode::Add, t, {l(reltmp), l("p")}, "p_sor");
  f0.store(t, "pout", Operand::local(pnew));
  const auto sq = f0.instr(Opcode::Mul, t, {l(reltmp), l(reltmp)}, "sorErr");
  f0.reduce(Opcode::Add, t, "sorErrAcc", {Operand::local(sq)});
  return std::move(f0).take();
}

}  // namespace

ir::Module make_sor(const SorConfig& cfg, ir::BuildArena* arena) {
  const std::uint64_t n = cfg.ngs();
  if (cfg.lanes == 0 || n % cfg.lanes != 0) {
    throw std::invalid_argument("make_sor: lane count must divide im*jm*km");
  }
  const Type t = Type::scalar_of(cfg.elem);

  ModuleBuilder mb("sor_" + std::string(cfg.lanes > 1 ? "c1x" : "c2") +
                       (cfg.lanes > 1 ? std::to_string(cfg.lanes) : ""),
                   arena);
  mb.set_ndrange(n).set_nki(cfg.nki).set_form(cfg.form);

  const std::uint64_t per_lane = n / cfg.lanes;
  mb.reserve_ports(10 * cfg.lanes);
  if (cfg.lanes == 1) {
    for (const char* name : kSorInputs) mb.add_input_port(name, t);
    mb.add_output_port("p_new", t);
  } else {
    for (std::uint32_t lane = 0; lane < cfg.lanes; ++lane) {
      for (const char* name : kSorInputs) {
        mb.add_input_port(lane_port_name(name, lane), t,
                          ir::AccessPattern::Contiguous, 1, per_lane);
      }
      mb.add_output_port(lane_port_name("p_new", lane), t,
                         ir::AccessPattern::Contiguous, 1, per_lane);
    }
  }

  mb.add(build_sor_pe(cfg, arena));

  const auto lane_args = [&](std::uint32_t lane) {
    std::vector<Operand> args;
    args.reserve(std::size(kSorInputs) + 1);
    for (const char* name : kSorInputs) {
      args.push_back(Operand::global(cfg.lanes == 1 ? name
                                                    : lane_port_name(name, lane)));
    }
    args.push_back(Operand::global(cfg.lanes == 1 ? "p_new"
                                                  : lane_port_name("p_new", lane)));
    return args;
  };

  FunctionBuilder main("main", FuncKind::Pipe, arena);
  if (cfg.lanes == 1) {
    main.call("f0", lane_args(0), FuncKind::Pipe);
  } else {
    FunctionBuilder f1("f1", FuncKind::Par, arena);
    for (std::uint32_t lane = 0; lane < cfg.lanes; ++lane) {
      f1.call("f0", lane_args(lane), FuncKind::Pipe);
    }
    mb.add(std::move(f1).take());
    main.call("f1", {}, FuncKind::Par);
  }
  mb.add(std::move(main).take());
  return std::move(mb).take();
}

sim::StreamMap sor_inputs(const SorConfig& cfg, std::uint64_t seed) {
  tytra::SplitMix64 rng(seed);
  const std::uint64_t n = cfg.ngs();
  sim::StreamMap streams;
  auto fill = [&](const char* name, std::int64_t lo, std::int64_t hi) {
    auto& v = streams[name];
    v.resize(n);
    for (auto& x : v) x = static_cast<double>(rng.uniform_int(lo, hi));
  };
  fill("p", 1, 7);
  fill("rhs", 0, 2);
  fill("cn1", 1, 3);
  fill("cn2l", 1, 3);
  fill("cn2s", 1, 3);
  fill("cn3l", 1, 3);
  fill("cn3s", 1, 3);
  fill("cn4l", 1, 3);
  fill("cn4s", 1, 3);
  return streams;
}

SorReference sor_reference(const SorConfig& cfg, const sim::StreamMap& inputs) {
  const auto n = static_cast<std::int64_t>(cfg.ngs());
  const auto im = static_cast<std::int64_t>(cfg.im);
  const auto imjm = static_cast<std::int64_t>(cfg.im) * cfg.jm;
  const auto& p = inputs.at("p");
  const auto& rhs = inputs.at("rhs");
  const auto& cn1 = inputs.at("cn1");
  const auto& cn2l = inputs.at("cn2l");
  const auto& cn2s = inputs.at("cn2s");
  const auto& cn3l = inputs.at("cn3l");
  const auto& cn3s = inputs.at("cn3s");
  const auto& cn4l = inputs.at("cn4l");
  const auto& cn4s = inputs.at("cn4s");

  const auto wrap = [&](double v) { return sim::wrap_to_type(v, cfg.elem); };
  const auto at = [&](const std::vector<double>& a, std::int64_t i) {
    return a[static_cast<std::size_t>(std::clamp<std::int64_t>(i, 0, n - 1))];
  };

  SorReference out;
  out.p_new.resize(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    const std::size_t u = static_cast<std::size_t>(i);
    double s = wrap(cn2l[u] * at(p, i + 1));
    s = wrap(s + wrap(cn2s[u] * at(p, i - 1)));
    // Mirror the datapath's balanced adder tree exactly: (t1+t2)+(t3+t4)
    // then +(t5+t6); integer adds are associative under wrap, so the
    // grouping below is equivalent.
    s = wrap(s + wrap(wrap(cn3l[u] * at(p, i + im)) + wrap(cn3s[u] * at(p, i - im))));
    s = wrap(s + wrap(wrap(cn4l[u] * at(p, i + imjm)) + wrap(cn4s[u] * at(p, i - imjm))));
    const double w = wrap(cn1[u] * s);
    const double d = wrap(w - rhs[u]);
    const double r = wrap(d * static_cast<double>(cfg.omega));
    const double reltmp = wrap(r - p[u]);
    out.p_new[u] = wrap(reltmp + p[u]);
    const double sq = wrap(reltmp * reltmp);
    out.sor_err_acc = wrap(out.sor_err_acc + sq);
  }
  return out;
}

sim::CpuKernelCost sor_cpu_cost() {
  // 7 multiplies, 8 adds/subs per point; ~10 words touched.
  return {17.0, 10.0 * 4.0};
}

sim::CpuParams case_study_cpu() {
  sim::CpuParams p;
  p.freq_hz = 1.6e9;
  p.ipc = 0.29;  // measured sustained rate of the Fortran SOR loop nest
  return p;
}

}  // namespace tytra::kernels
