#include "tytra/kernels/file_workload.hpp"

#include <cctype>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>
#include <utility>
#include <variant>

#include "tytra/ir/lint.hpp"
#include "tytra/ir/parser.hpp"
#include "tytra/ir/structural_hash.hpp"
#include "tytra/ir/verifier.hpp"
#include "tytra/kernels/streams.hpp"
#include "tytra/support/failpoint.hpp"

namespace tytra::kernels {

namespace {

/// Lowercased `nd` followed by at least one digit — the re-parameterizable
/// dimension constants ("nd1", "nd2", ...).
bool is_nd_constant(const std::string& key) {
  if (key.size() < 3 || key[0] != 'n' || key[1] != 'd') return false;
  for (std::size_t i = 2; i < key.size(); ++i) {
    if (std::isdigit(static_cast<unsigned char>(key[i])) == 0) return false;
  }
  return true;
}

std::string digest_fingerprint(const ir::Module& m) {
  const ir::StructuralDigest d = ir::structural_digest(m);
  char buf[64];
  std::snprintf(buf, sizeof buf, "tir/digest=%016llx.%016llx",
                static_cast<unsigned long long>(d.key),
                static_cast<unsigned long long>(d.check));
  return buf;
}

/// The first verifier error, carrying its location; notes how many more
/// there were so a CLI user knows one fix may not be the last.
tytra::Diag first_verify_error(const tytra::DiagBag& diags) {
  const tytra::Diag* first = nullptr;
  std::size_t errors = 0;
  for (const auto& d : diags.all()) {
    if (d.severity != tytra::Severity::Error) continue;
    if (first == nullptr) first = &d;
    ++errors;
  }
  tytra::Diag out = *first;
  if (errors > 1) {
    out.message += " (and " + std::to_string(errors - 1) + " more)";
  }
  return out;
}

}  // namespace

tytra::Result<FileWorkload> load_file_workload(std::string_view source,
                                               std::uint32_t nd) {
  if (failpoint::fire("workload.parse")) {
    return tytra::make_error("injected fault at failpoint 'workload.parse'");
  }
  // First pass with the file's own values, to discover the ND constants.
  auto first = ir::parse_module(source);
  if (!first.ok()) return first.diag();

  FileWorkload out;
  for (const auto& [key, value] : first.value().constants) {
    if (!is_nd_constant(key)) continue;
    if (out.nd_constants.empty()) {
      if (value < 1 || value > 0xffffffffLL) {
        return tytra::make_error("!" + key + " = " + std::to_string(value) +
                                 " is not a usable problem dimension "
                                 "(expected [1, 2^32))");
      }
      out.default_nd = static_cast<std::uint32_t>(value);
    }
    out.nd_constants.push_back(key);
  }

  ir::ParseOutput parsed = std::move(first).take();
  if (nd != 0 && nd != out.default_nd && !out.nd_constants.empty()) {
    ir::ParseOptions options;
    for (const auto& key : out.nd_constants) {
      options.constants[key] = static_cast<std::int64_t>(nd);
    }
    auto second = ir::parse_module(source, options);
    if (!second.ok()) return second.diag();
    parsed = std::move(second).take();
  } else if (nd != 0 && out.nd_constants.empty() && nd != 1) {
    return tytra::make_error(
        "fixed-size design (no !ND<k> constants): --nd does not apply");
  }

  const auto diags = ir::verify(parsed.module);
  if (diags.has_errors()) return first_verify_error(diags);
  if (parsed.module.meta.global_size == 0) {
    return tytra::make_error("module has no usable !ngs (NDRange size is 0)");
  }

  out.baseline = std::make_shared<const ir::Module>(std::move(parsed.module));
  out.fingerprint = digest_fingerprint(*out.baseline);
  // Advisory static analysis on the verified design: structural rules
  // only (no device at load time), and never a reason to fail the load.
  out.lint = ir::lint::run_lint(*out.baseline).findings.all();
  return out;
}

ir::Module replicate_lanes(const ir::Module& baseline, std::uint32_t lanes) {
  if (lanes == 0) {
    throw std::invalid_argument("replicate_lanes: lane count must be >= 1");
  }
  if (lanes == 1) return baseline;
  const ir::Function* main_fn = baseline.entry();
  if (main_fn == nullptr) {
    throw std::invalid_argument("replicate_lanes: module has no @main");
  }
  for (const auto& item : main_fn->body) {
    if (!std::holds_alternative<ir::Call>(item)) {
      throw std::invalid_argument(
          "replicate_lanes: @main must contain only calls");
    }
  }

  ir::Module out;
  out.name = baseline.name + "_x" + std::to_string(lanes);
  out.meta = baseline.meta;

  // Per-lane Manage-IR, in port order — the layout ModuleBuilder-based
  // kernels produce when built at `lanes` directly. Objects shared by
  // several ports replicate once per lane, at first reference.
  out.memobjs.reserve(baseline.ports.size() * lanes);
  out.streamobjs.reserve(baseline.ports.size() * lanes);
  out.ports.reserve(baseline.ports.size() * lanes);
  for (std::uint32_t lane = 0; lane < lanes; ++lane) {
    std::set<std::string> seen_mem, seen_stream;
    for (const auto& port : baseline.ports) {
      const ir::StreamObject* so =
          port.streamobj.empty() ? nullptr
                                 : baseline.find_streamobj(port.streamobj);
      const ir::MemObject* mo =
          so == nullptr ? nullptr : baseline.find_memobj(so->memobj);
      if (mo != nullptr && seen_mem.insert(mo->name).second) {
        ir::MemObject m = *mo;
        m.name = lane_port_name(mo->name, lane);
        m.size_words = mo->size_words % lanes == 0
                           ? mo->size_words / lanes
                           : mo->size_words / lanes + 1;
        out.memobjs.push_back(std::move(m));
      }
      if (so != nullptr && seen_stream.insert(so->name).second) {
        ir::StreamObject s = *so;
        s.name = lane_port_name(so->name, lane);
        if (mo != nullptr) s.memobj = lane_port_name(so->memobj, lane);
        out.streamobjs.push_back(std::move(s));
      }
      ir::PortBinding p = port;
      p.name = lane_port_name(port.name, lane);
      if (so != nullptr) p.streamobj = lane_port_name(port.streamobj, lane);
      out.ports.push_back(std::move(p));
    }
  }

  out.functions.reserve(baseline.functions.size() + 1);
  for (const auto& f : baseline.functions) {
    if (f.name != "main") out.functions.push_back(f);
  }

  // The par wrapper: @main's call list once per lane, port-named global
  // arguments redirected to the lane's streams.
  std::string wrapper = "f1";
  while (baseline.find_function(wrapper) != nullptr) wrapper += "_";
  ir::Function par;
  par.name = wrapper;
  par.kind = ir::FuncKind::Par;
  par.body.reserve(main_fn->body.size() * lanes);
  for (std::uint32_t lane = 0; lane < lanes; ++lane) {
    for (const auto& item : main_fn->body) {
      ir::Call call = std::get<ir::Call>(item);
      for (auto& arg : call.args) {
        if (arg.kind == ir::Operand::Kind::Global &&
            baseline.find_port(arg.name) != nullptr) {
          arg.name = lane_port_name(arg.name, lane);
        }
      }
      par.body.push_back(std::move(call));
    }
  }
  out.functions.push_back(std::move(par));

  ir::Function entry;
  entry.name = "main";
  entry.kind = main_fn->kind;
  ir::Call call;
  call.callee = wrapper;
  call.kind_annot = ir::FuncKind::Par;
  entry.body.emplace_back(std::move(call));
  out.functions.push_back(std::move(entry));
  return out;
}

dse::KeyedLowerer file_lowerer(std::shared_ptr<const ir::Module> baseline) {
  std::string fingerprint = digest_fingerprint(*baseline);
  return dse::KeyedLowerer(
      std::move(fingerprint),
      [m = std::move(baseline)](const frontend::Variant& v,
                                ir::BuildArena* /*arena*/) {
        return replicate_lanes(*m, v.lanes());
      });
}

tytra::Result<const WorkloadInfo*> register_file_workload(
    Registry& reg, std::string name, std::string source_path,
    std::string source_text, std::vector<tytra::Diag>* lint_out) {
  auto loaded = load_file_workload(source_text, 0);
  if (!loaded.ok()) {
    tytra::Diag d = loaded.diag();
    d.message = source_path + ": " + d.message;
    return d;
  }
  const FileWorkload& fw = loaded.value();
  if (lint_out != nullptr) *lint_out = fw.lint;

  // Lane variants need a call-only @main (see replicate_lanes); reject
  // here, at registration, instead of throwing mid-sweep.
  for (const auto& item : fw.baseline->entry()->body) {
    if (!std::holds_alternative<ir::Call>(item)) {
      return tytra::make_error(source_path +
                               ": @main must contain only calls to be "
                               "explorable over lane variants");
    }
  }

  WorkloadInfo info;
  info.name = std::move(name);
  info.source = source_path;
  info.summary = "file-backed design '" + fw.baseline->name + "'";
  info.nd_help = fw.nd_constants.empty()
                     ? std::string("fixed-size design (--nd does not apply)")
                     : "value for !" + fw.nd_constants.front() +
                           (fw.nd_constants.size() > 1 ? ", ..." : "");
  info.default_nd = fw.default_nd;
  info.ndrange = [source_text,
                  source_path](std::uint32_t nd) -> tytra::Result<std::uint64_t> {
    if (nd == 0) {
      return tytra::make_error(source_path + ": --nd must be positive");
    }
    auto l = load_file_workload(source_text, nd);
    if (!l.ok()) {
      tytra::Diag d = l.diag();
      d.message = source_path + ": " + d.message;
      return d;
    }
    return l.value().baseline->meta.global_size;
  };
  info.make_lowerer = [source_text](std::uint32_t nd) {
    auto l = load_file_workload(source_text, nd);
    if (!l.ok()) {
      // ndrange() ran first on the same text and dimension (make_job
      // guarantees the order), so this is unreachable short of a caller
      // bypassing validation.
      throw std::runtime_error(l.error_message());
    }
    return file_lowerer(std::move(l).take().baseline);
  };
  return reg.try_add(std::move(info));
}

tytra::Result<const WorkloadInfo*> register_file_workload(
    Registry& reg, const std::string& path,
    std::vector<tytra::Diag>* lint_out) {
  if (const WorkloadInfo* existing = reg.find(path);
      existing != nullptr && existing->source == path) {
    return existing;  // the same path registered twice (e.g. repeated --ir)
  }
  std::ifstream in(path);
  if (!in) {
    return tytra::make_error("cannot read '" + path + "'");
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  return register_file_workload(reg, path, path, ss.str(), lint_out);
}

}  // namespace tytra::kernels
