#include "tytra/frontend/transform.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace tytra::frontend {

std::string_view par_ann_name(ParAnn ann) {
  switch (ann) {
    case ParAnn::Pipe: return "pipe";
    case ParAnn::Par: return "par";
    case ParAnn::Seq: return "seq";
  }
  return "?";
}

Variant::Variant(std::vector<std::uint64_t> dims, std::vector<ParAnn> anns)
    : dims_(std::move(dims)), anns_(std::move(anns)) {
  if (dims_.empty() || dims_.size() != anns_.size()) {
    throw std::invalid_argument("Variant: dims/anns mismatch");
  }
  for (const auto d : dims_) {
    if (d == 0) throw std::invalid_argument("Variant: zero dimension");
  }
  // Thread parallelism must enclose pipelines (Fig. 7): par only on the
  // outermost levels.
  bool seen_inner = false;
  for (const auto a : anns_) {
    if (a != ParAnn::Par) seen_inner = true;
    else if (seen_inner) {
      throw std::invalid_argument(
          "Variant: par annotation inside a non-par level");
    }
  }
}

std::uint64_t Variant::flat_size() const {
  return std::accumulate(dims_.begin(), dims_.end(), std::uint64_t{1},
                         std::multiplies<>());
}

std::uint32_t Variant::lanes() const {
  std::uint64_t lanes = 1;
  for (std::size_t i = 0; i < dims_.size(); ++i) {
    if (anns_[i] == ParAnn::Par) lanes *= dims_[i];
  }
  return static_cast<std::uint32_t>(lanes);
}

bool Variant::pipelined() const { return anns_.back() == ParAnn::Pipe; }

std::string Variant::describe() const {
  std::string out;
  for (std::size_t i = 0; i < dims_.size(); ++i) {
    out += "map^" + std::string(par_ann_name(anns_[i])) + "[" +
           std::to_string(dims_[i]) + "] (";
  }
  out += "f";
  out += std::string(dims_.size(), ')');
  return out;
}

Variant baseline_variant(std::uint64_t n) {
  return Variant({n}, {ParAnn::Pipe});
}

Variant reshape_to(const Variant& v, std::uint64_t outer, ParAnn outer_ann) {
  if (outer == 0 || v.dims().back() % outer != 0) {
    throw std::invalid_argument(
        "reshape_to: outer size must divide the inner dimension (size "
        "preservation)");
  }
  std::vector<std::uint64_t> dims(v.dims().begin(), v.dims().end() - 1);
  std::vector<ParAnn> anns(v.anns().begin(), v.anns().end() - 1);
  dims.push_back(outer);
  anns.push_back(outer_ann);
  dims.push_back(v.dims().back() / outer);
  anns.push_back(v.anns().back());
  return Variant(std::move(dims), std::move(anns));
}

std::vector<std::uint64_t> divisors(std::uint64_t n, std::uint64_t cap) {
  if (n == 0) throw std::invalid_argument("divisors: n must be positive");
  std::vector<std::uint64_t> out;
  // Walk i up to min(cap, sqrt n): every divisor <= cap either is such an
  // i, or is the cofactor n/i of one (only possible when cap > sqrt n).
  // Each candidate is probed exactly once — the old ladder's double probe
  // of 2*lanes came from two overlapping scan ranges.
  // i <= n / i, not i * i <= n: the square overflows for n near 2^64.
  for (std::uint64_t i = 1; i <= cap && i <= n / i; ++i) {
    if (n % i != 0) continue;
    out.push_back(i);
    const std::uint64_t cofactor = n / i;
    if (cofactor != i && cofactor <= cap) out.push_back(cofactor);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<Variant> enumerate_variants(std::uint64_t n,
                                        std::uint32_t max_lanes,
                                        bool include_seq) {
  std::vector<Variant> out;
  out.push_back(baseline_variant(n));
  for (const std::uint64_t lanes : divisors(n, max_lanes)) {
    if (lanes < 2) continue;
    out.push_back(reshape_to(baseline_variant(n), lanes, ParAnn::Par));
  }
  if (include_seq) out.push_back(Variant({n}, {ParAnn::Seq}));
  return out;
}

std::vector<std::vector<double>> reshape_vec(const std::vector<double>& flat,
                                             std::uint64_t outer) {
  if (outer == 0 || flat.size() % outer != 0) {
    throw std::invalid_argument("reshape_vec: outer must divide the size");
  }
  const std::size_t inner = flat.size() / outer;
  std::vector<std::vector<double>> nested(outer);
  for (std::uint64_t k = 0; k < outer; ++k) {
    nested[k].assign(flat.begin() + static_cast<std::ptrdiff_t>(k * inner),
                     flat.begin() + static_cast<std::ptrdiff_t>((k + 1) * inner));
  }
  return nested;
}

std::vector<double> flatten_vec(const std::vector<std::vector<double>>& nested) {
  std::vector<double> flat;
  for (const auto& row : nested) flat.insert(flat.end(), row.begin(), row.end());
  return flat;
}

}  // namespace tytra::frontend
