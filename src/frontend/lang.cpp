#include "tytra/frontend/lang.hpp"

#include <cctype>
#include <optional>
#include <vector>

#include "tytra/support/strings.hpp"

namespace tytra::frontend {

namespace {

/// A named vector value during elaboration: its shape and, once mapped,
/// the annotations applied per nesting level.
struct VectorValue {
  std::vector<std::uint64_t> dims;
  std::vector<ParAnn> anns;     ///< empty until a map nest is applied
  std::string kernel;           ///< set by the map application
};

struct Token {
  std::string text;
  int line{0};
  int col{0};
};

class LineLexer {
 public:
  LineLexer(std::string_view line, int lineno) : line_(line), lineno_(lineno) {}

  std::vector<Token> tokens() {
    std::vector<Token> out;
    std::size_t i = 0;
    while (i < line_.size()) {
      const char c = line_[i];
      if (std::isspace(static_cast<unsigned char>(c)) != 0) {
        ++i;
        continue;
      }
      if (c == '-' && i + 1 < line_.size() && line_[i + 1] == '-') break;
      const int col = static_cast<int>(i) + 1;
      if (std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_') {
        std::size_t j = i;
        while (j < line_.size() &&
               (std::isalnum(static_cast<unsigned char>(line_[j])) != 0 ||
                line_[j] == '_')) {
          ++j;
        }
        out.push_back({std::string(line_.substr(i, j - i)), lineno_, col});
        i = j;
        continue;
      }
      out.push_back({std::string(1, c), lineno_, col});
      ++i;
    }
    return out;
  }

 private:
  std::string_view line_;
  int lineno_;
};

class Elaborator {
 public:
  tytra::Result<Program> run(std::string_view source) {
    int lineno = 0;
    std::string last_binding;
    for (const auto raw : tytra::split(source, '\n')) {
      ++lineno;
      const auto toks = LineLexer(raw, lineno).tokens();
      if (toks.empty()) continue;
      auto r = line(toks);
      if (!r.ok()) return r.diag();
      if (!r.value().empty()) last_binding = r.value();
    }
    if (last_binding.empty()) {
      return tytra::make_error("program has no bindings");
    }
    const auto it = vectors_.find(last_binding);
    if (it == vectors_.end() || it->second.kernel.empty()) {
      return tytra::make_error("final binding '" + last_binding +
                               "' is not a mapped program");
    }
    Program program{it->second.kernel,
                    Variant(it->second.dims, it->second.anns), last_binding,
                    constants_};
    return program;
  }

 private:
  /// Handles one logical line; returns the bound name ("" for declarations).
  tytra::Result<std::string> line(const std::vector<Token>& t) {
    if (t.size() >= 3 && t[1].text == ":") return declaration(t);
    if (t.size() >= 3 && t[1].text == "=") return binding(t);
    return err(t[0], "expected 'name : Vect ...' or 'name = ...'");
  }

  static tytra::Diag err(const Token& at, const std::string& message) {
    return tytra::make_error(message, {at.line, at.col});
  }

  /// name : Vect size t   (possibly nested: Vect a (Vect b t))
  tytra::Result<std::string> declaration(const std::vector<Token>& t) {
    const std::string name = t[0].text;
    std::size_t i = 2;
    std::vector<std::uint64_t> dims;
    while (i < t.size() && t[i].text == "(") ++i;  // tolerate parens
    while (i < t.size() && t[i].text == "Vect") {
      ++i;
      auto size = size_expr(t, i);
      if (!size.ok()) return size.diag();
      dims.push_back(size.value());
      while (i < t.size() && t[i].text == "(") ++i;
    }
    if (dims.empty()) return err(t[0], "expected 'Vect <size> <type>'");
    // remainder is the element type name (+ closing parens); ignored.
    VectorValue v;
    v.dims = std::move(dims);
    vectors_[name] = std::move(v);
    return std::string{};
  }

  /// size := term { '*' term };  term := integer | constant name
  tytra::Result<std::uint64_t> size_expr(const std::vector<Token>& t,
                                         std::size_t& i) {
    auto term = [&](const Token& tok) -> std::optional<std::uint64_t> {
      if (std::isdigit(static_cast<unsigned char>(tok.text[0])) != 0) {
        return std::stoull(tok.text);
      }
      const auto it = constants_.find(tok.text);
      if (it != constants_.end()) return it->second;
      return std::nullopt;
    };
    if (i >= t.size()) return tytra::make_error("expected vector size");
    auto first = term(t[i]);
    if (!first) return err(t[i], "unknown size constant '" + t[i].text + "'");
    std::uint64_t value = *first;
    ++i;
    while (i + 1 < t.size() && t[i].text == "*") {
      auto next = term(t[i + 1]);
      if (!next) return err(t[i + 1], "unknown size constant '" + t[i + 1].text + "'");
      value *= *next;
      i += 2;
    }
    return value;
  }

  /// name = <numeric> | reshapeTo k v | mapnest kernel v
  tytra::Result<std::string> binding(const std::vector<Token>& t) {
    const std::string name = t[0].text;
    const std::size_t rhs = 2;
    if (rhs >= t.size()) return err(t[0], "empty right-hand side");

    // Numeric constant binding: im = 24
    if (std::isdigit(static_cast<unsigned char>(t[rhs].text[0])) != 0 &&
        t.size() == 3) {
      constants_[name] = std::stoull(t[rhs].text);
      return std::string{};
    }

    if (t[rhs].text == "reshapeTo") {
      if (t.size() < rhs + 3) return err(t[rhs], "reshapeTo needs '<k> <vector>'");
      std::uint64_t outer = 0;
      if (std::isdigit(static_cast<unsigned char>(t[rhs + 1].text[0])) != 0) {
        outer = std::stoull(t[rhs + 1].text);
      } else {
        const auto it = constants_.find(t[rhs + 1].text);
        if (it == constants_.end()) {
          return err(t[rhs + 1], "unknown constant '" + t[rhs + 1].text + "'");
        }
        outer = it->second;
      }
      const auto vit = vectors_.find(t[rhs + 2].text);
      if (vit == vectors_.end()) {
        return err(t[rhs + 2], "unknown vector '" + t[rhs + 2].text + "'");
      }
      const VectorValue& src = vit->second;
      const std::uint64_t inner = src.dims.back();
      if (outer == 0 || inner % outer != 0) {
        return err(t[rhs + 1],
                   "reshapeTo " + std::to_string(outer) +
                       " does not preserve the size of a Vect " +
                       std::to_string(inner) + " (type error)");
      }
      VectorValue out;
      out.dims.assign(src.dims.begin(), src.dims.end() - 1);
      out.dims.push_back(outer);
      out.dims.push_back(inner / outer);
      vectors_[name] = std::move(out);
      return std::string{};
    }

    // Map nest: map / mappipe / mappar / mapseq, possibly parenthesized:
    //   pst = mappar (mappipe p_sor) ppst
    std::vector<ParAnn> anns;
    std::size_t i = rhs;
    std::string kernel;
    while (i < t.size()) {
      const std::string& w = t[i].text;
      if (w == "(" || w == ")") {
        ++i;
        continue;
      }
      if (w == "map" || w == "mappipe") anns.push_back(ParAnn::Pipe);
      else if (w == "mappar") anns.push_back(ParAnn::Par);
      else if (w == "mapseq") anns.push_back(ParAnn::Seq);
      else {
        kernel = w;
        ++i;
        break;
      }
      ++i;
    }
    if (anns.empty() || kernel.empty()) {
      return err(t[rhs], "expected a map nest applied to a kernel");
    }
    // Skip closing parens to the vector argument.
    while (i < t.size() && t[i].text == ")") ++i;
    if (i >= t.size()) return err(t.back(), "map nest needs a vector argument");
    const auto vit = vectors_.find(t[i].text);
    if (vit == vectors_.end()) {
      return err(t[i], "unknown vector '" + t[i].text + "'");
    }
    const VectorValue& src = vit->second;
    if (anns.size() != src.dims.size()) {
      return err(t[i], "map nest depth " + std::to_string(anns.size()) +
                           " does not match vector nesting depth " +
                           std::to_string(src.dims.size()) + " (type error)");
    }
    VectorValue out;
    out.dims = src.dims;
    out.anns = std::move(anns);
    out.kernel = kernel;
    // Variant construction enforces the par-outside-pipe rule; convert its
    // exception into a located diagnostic.
    try {
      Variant check(out.dims, out.anns);
      (void)check;
    } catch (const std::invalid_argument& e) {
      return err(t[rhs], e.what());
    }
    vectors_[name] = std::move(out);
    return name;
  }

  std::map<std::string, VectorValue> vectors_;
  std::map<std::string, std::uint64_t> constants_;
};

}  // namespace

tytra::Result<Program> parse_program(std::string_view source) {
  return Elaborator().run(source);
}

}  // namespace tytra::frontend
