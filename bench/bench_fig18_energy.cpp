// Reproduces Fig. 18: increase-from-idle energy consumption for the SOR
// kernel at different grid sizes, normalized against the CPU-only
// solution (1000 kernel iterations). Δ-power is what a power meter on the
// host+device node reads above idle.
//
// Expected shape (paper): FPGAs overtake the CPU very quickly;
// fpga-tytra shows up to 11x power-efficiency over cpu and ~2.9x over
// fpga-maxJ.

#include <cstdio>

#include "tytra/cost/calibration.hpp"
#include "tytra/cost/resource_model.hpp"
#include "tytra/kernels/kernels.hpp"
#include "tytra/sim/cpu_model.hpp"
#include "tytra/sim/cycle_model.hpp"
#include "tytra/sim/power.hpp"

namespace {

using namespace tytra;

double fpga_energy(const ir::Module& m, const target::DeviceDesc& dev,
                   const cost::DeviceCostDb& db) {
  const auto timing = sim::simulate_timing(m, dev);
  const auto res = cost::estimate_resources(m, db);
  const double watts = sim::fpga_delta_watts(res.total, dev, timing.freq_hz) +
                       sim::host_assist_delta_watts();
  return sim::delta_energy_joules(watts, timing.total_seconds);
}

}  // namespace

int main() {
  constexpr std::uint32_t kNmaxp = 1000;
  const target::DeviceDesc dev = target::stratix_v_gsd8();
  const auto db = cost::DeviceCostDb::calibrate(dev);

  std::printf("=== Fig. 18: delta-energy vs grid size, normalized to cpu ===\n");
  std::printf("(1000 kernel iterations; cpu delta-power %.0f W)\n\n",
              sim::cpu_delta_watts());
  std::printf("%6s %12s %12s %12s %12s %14s\n", "dim", "cpu (J)", "cpu",
              "fpga-maxJ", "fpga-tytra", "tytra-vs-cpu");

  for (const std::uint32_t dim : {24u, 48u, 96u, 144u, 192u}) {
    kernels::SorConfig cfg;
    cfg.im = cfg.jm = cfg.km = dim;
    cfg.nki = kNmaxp;
    cfg.form = ir::ExecForm::B;

    const double cpu_seconds = sim::cpu_total_seconds(
        cfg.ngs(), kNmaxp, kernels::sor_cpu_cost(), kernels::case_study_cpu());
    const double cpu_j =
        sim::delta_energy_joules(sim::cpu_delta_watts(), cpu_seconds);

    const double maxj_j = fpga_energy(kernels::make_sor(cfg), dev, db);
    kernels::SorConfig tytra = cfg;
    tytra.lanes = 4;
    const double tytra_j = fpga_energy(kernels::make_sor(tytra), dev, db);

    std::printf("%6u %12.1f %12.2f %12.2f %12.2f %13.1fx\n", dim, cpu_j, 1.0,
                maxj_j / cpu_j, tytra_j / cpu_j, cpu_j / tytra_j);
  }
  std::printf("\npaper: fpga-tytra up to 11x power-efficiency over cpu and"
              " 2.9x over fpga-maxJ\n");
  return 0;
}
