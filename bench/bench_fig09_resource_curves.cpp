// Reproduces Fig. 9: deriving cost expressions for ALUTs used in unsigned
// integer division (polynomial trend-line fitted from three probe points)
// and ALUTs / DSP-elements used in unsigned integer multiplication
// (piecewise-linear with discontinuities), on a Stratix-V device.
//
// Prints the fitted laws, the actual-vs-estimated curves, and the paper's
// headline interpolation check (24-bit divider: estimate 654 vs actual 652).

#include <cstdio>

#include "tytra/cost/calibration.hpp"
#include "tytra/fabric/cores.hpp"
#include "tytra/support/strings.hpp"

int main() {
  using namespace tytra;
  using ir::Opcode;
  using ir::ScalarType;

  const target::DeviceDesc dev = target::stratix_v_gsd8();
  const auto db = cost::DeviceCostDb::calibrate(dev);

  std::printf("=== Fig. 9: resource-cost laws on %s ===\n\n", dev.name.c_str());

  const auto& div_law = db.int_law(Opcode::Div);
  const auto& c = div_law.aluts.coeffs();
  std::printf("fitted divider ALUT law (from probes at 8/18/32/64 bits):\n");
  std::printf("  aluts(x) = %.3f x^2 + %.3f x + %.3f   (paper: x^2 + 3.7x - 10.6)\n\n",
              c.size() > 2 ? c[2] : 0.0, c.size() > 1 ? c[1] : 0.0, c[0]);

  std::printf("%6s %12s %12s %12s %12s %9s\n", "bits", "div-ALUTs", "div-est",
              "mul-ALUTs", "mul-est", "mul-DSPs");
  for (int w = 8; w <= 64; w += 4) {
    const auto t = ScalarType::uint(static_cast<std::uint16_t>(w));
    const ResourceVec div_act = fabric::core_resources(Opcode::Div, t, dev);
    const ResourceVec div_est = db.op_cost(Opcode::Div, t);
    const ResourceVec mul_act = fabric::core_resources(Opcode::Mul, t, dev);
    const ResourceVec mul_est = db.op_cost(Opcode::Mul, t);
    std::printf("%6d %12.0f %12.0f %12.0f %12.0f %9.0f\n", w, div_act.aluts,
                div_est.aluts, mul_act.aluts, mul_est.aluts, mul_act.dsps);
  }

  std::printf("\nDSP-count discontinuities recovered by the calibrator: ");
  for (const double x : db.int_law(Opcode::Mul).dsps.discontinuities()) {
    std::printf("%g ", x);
  }
  std::printf("  (DSP tile boundaries)\n");

  const ResourceVec est24 = db.op_cost(Opcode::Div, ScalarType::uint(24));
  const ResourceVec act24 =
      fabric::core_resources(Opcode::Div, ScalarType::uint(24), dev);
  std::printf("\n24-bit divider interpolation check (paper: est 654 vs actual 652):\n");
  std::printf("  estimate %.0f ALUTs vs actual %.0f ALUTs  (%.2f%% error)\n",
              est24.aluts, act24.aluts,
              100.0 * (est24.aluts - act24.aluts) / act24.aluts);
  std::printf("\ncalibration (one-time per target): %.3f ms\n",
              db.calibration_seconds() * 1e3);
  return 0;
}
