// Reproduces Fig. 10: the empirical model of sustained bandwidth's
// dependency on data size and contiguity, on the Alpha-Data ADM-PCIE-7V3
// (Virtex-7) platform model. The horizontal axis is the side of a square
// 2-D array; for strided access it equals the stride.
//
// Paper series (Gbit/s), contiguous:
//   0.3 1.2 1.7 2.4 4.1 5.2 5.6 5.8 6.1 6.2 6.2 6.3
// strided: flat 0.04 .. 0.07.

#include <cstdio>

#include "tytra/membench/stream_bench.hpp"
#include "tytra/support/csv.hpp"

int main() {
  using namespace tytra::membench;

  const auto dev = tytra::target::virtex7_690t();
  std::vector<std::uint64_t> dims = default_dims();
  dims.insert(dims.begin(), 64);  // one extra small point for the ramp

  const auto samples = run_stream_bench(dev, dims);
  tytra::CsvTable csv({"dim", "bytes", "contiguous_gbit", "strided_gbit"});
  std::printf("=== Fig. 10: sustained bandwidth vs size and contiguity (%s) ===\n\n",
              dev.name.c_str());
  std::printf("%8s %12s %18s %16s\n", "dim", "bytes", "contiguous Gbit/s",
              "strided Gbit/s");
  for (const auto& s : samples) {
    std::printf("%8llu %12llu %18.2f %16.3f\n",
                static_cast<unsigned long long>(s.dim),
                static_cast<unsigned long long>(s.bytes),
                s.contiguous_bps * 8 / 1e9, s.strided_bps * 8 / 1e9);
    csv.add_row({static_cast<double>(s.dim), static_cast<double>(s.bytes),
                 s.contiguous_bps * 8 / 1e9, s.strided_bps * 8 / 1e9});
  }
  if (csv.write("fig10_bandwidth.csv")) {
    std::printf("\n[wrote fig10_bandwidth.csv]\n");
  }

  const auto& first = samples.front();
  const auto& last = samples.back();
  std::printf("\ncontiguity gap at the large end: %.0fx\n",
              last.contiguous_bps / last.strided_bps);
  std::printf("size effect on contiguous access: %.1fx from dim %llu to %llu\n",
              last.contiguous_bps / first.contiguous_bps,
              static_cast<unsigned long long>(first.dim),
              static_cast<unsigned long long>(last.dim));
  std::printf("(paper: up to two orders of magnitude from contiguity; plateau"
              " beyond ~1000x1000 elements)\n");
  return 0;
}
