// Reproduces Fig. 17: runtime of the SOR kernel for different grid sizes
// (im = jm = km in {24, 48, 96, 144, 192}), normalized against the
// CPU-only solution, for 1000 iterations of the kernel (nmaxp = 1000).
//
//   cpu        - single-threaded Fortran baseline (CPU model)
//   fpga-maxJ  - the HLS tool's own result: pipeline parallelism only
//   fpga-tytra - the TyTra-selected variant: 4 lanes + pipeline parallelism
//
// Expected shape (paper): apart from the smallest grid, fpga-tytra beats
// both fpga-maxJ (up to 3.9x) and cpu (up to 2.6x); fpga-maxJ is slower
// than cpu at the typical weather-model grid size (~100/dim).

#include <cstdio>

#include "tytra/kernels/kernels.hpp"
#include "tytra/sim/cpu_model.hpp"
#include "tytra/sim/cycle_model.hpp"
#include "tytra/support/csv.hpp"

namespace {

using namespace tytra;

struct Point {
  std::uint32_t dim;
  double cpu_s;
  double maxj_s;
  double tytra_s;
};

Point measure(std::uint32_t dim) {
  constexpr std::uint32_t kNmaxp = 1000;
  Point pt{dim, 0, 0, 0};

  kernels::SorConfig cfg;
  cfg.im = cfg.jm = cfg.km = dim;
  cfg.nki = kNmaxp;
  cfg.form = ir::ExecForm::B;

  pt.cpu_s = sim::cpu_total_seconds(cfg.ngs(), kNmaxp, kernels::sor_cpu_cost(),
                                    kernels::case_study_cpu());

  const target::DeviceDesc dev = target::stratix_v_gsd8();
  pt.maxj_s = sim::simulate_timing(kernels::make_sor(cfg), dev).total_seconds;

  kernels::SorConfig tytra = cfg;
  tytra.lanes = 4;
  pt.tytra_s = sim::simulate_timing(kernels::make_sor(tytra), dev).total_seconds;
  return pt;
}

}  // namespace

int main() {
  std::printf("=== Fig. 17: SOR runtime vs grid size, normalized to cpu ===\n");
  std::printf("(1000 kernel iterations; fpga-tytra = 4 lanes)\n\n");
  std::printf("%6s %10s %12s %12s %12s %12s\n", "dim", "cpu (s)", "cpu",
              "fpga-maxJ", "fpga-tytra", "tytra-vs-maxJ");
  tytra::CsvTable csv({"dim", "cpu_s", "maxj_s", "tytra_s"});
  for (const std::uint32_t dim : {24u, 48u, 96u, 144u, 192u}) {
    const Point p = measure(dim);
    std::printf("%6u %10.3f %12.2f %12.2f %12.2f %11.2fx\n", p.dim, p.cpu_s,
                1.0, p.maxj_s / p.cpu_s, p.tytra_s / p.cpu_s,
                p.maxj_s / p.tytra_s);
    csv.add_row({static_cast<double>(p.dim), p.cpu_s, p.maxj_s, p.tytra_s});
  }
  if (csv.write("fig17_runtime.csv")) std::printf("\n[wrote fig17_runtime.csv]\n");
  std::printf("\npaper: tytra up to 3.9x over fpga-maxJ and 2.6x over cpu;"
              " at ~100/dim fpga-maxJ is slower than cpu while tytra is"
              " ~2.75x faster; small grids favour the cpu\n");
  return 0;
}
