// Reproduces Table II: estimated vs actual utilization of resources
// (ALUT/REG/BRAM/DSP) and performance (cycles per kernel instance, CPKI)
// for the three scientific kernels — Hotspot and LavaMD from Rodinia and
// the SOR kernel of the LES weather model. Estimates come from the cost
// model (fitted laws, never the fabric); actuals from full fabric
// synthesis and the cycle-level simulator.

#include <cmath>
#include <cstdio>

#include "tytra/cost/report.hpp"
#include "tytra/fabric/synth.hpp"
#include "tytra/kernels/kernels.hpp"
#include "tytra/sim/cycle_model.hpp"

namespace {

using namespace tytra;

double err_pct(double est, double act) {
  if (act == 0) return est == 0 ? 0.0 : 100.0;
  return std::abs(est - act) / std::abs(act) * 100.0;
}

void row(const char* kernel, const ir::Module& m,
         const cost::DeviceCostDb& db, const target::DeviceDesc& dev) {
  const auto est = cost::estimate_resources(m, db);
  const auto thr = cost::estimate_throughput(m, db);
  const auto act = fabric::synthesize(m, dev);
  const auto timing = sim::simulate_timing(m, dev);

  std::printf("%-10s %-9s %10.0f %10.0f %10.0f %8.0f %12.0f\n", kernel,
              "Estimated", est.total.aluts, est.total.regs,
              est.total.bram_bits, est.total.dsps, thr.cycles_per_instance);
  std::printf("%-10s %-9s %10.0f %10.0f %10.0f %8.0f %12.0f\n", "",
              "Actual", act.total.aluts, act.total.regs, act.total.bram_bits,
              act.total.dsps, timing.cycles_per_instance);
  std::printf("%-10s %-9s %9.1f%% %9.1f%% %9.1f%% %7.1f%% %11.2f%%\n", "",
              "% error", err_pct(est.total.aluts, act.total.aluts),
              err_pct(est.total.regs, act.total.regs),
              err_pct(est.total.bram_bits, act.total.bram_bits),
              err_pct(est.total.dsps, act.total.dsps),
              err_pct(thr.cycles_per_instance, timing.cycles_per_instance));
}

}  // namespace

int main() {
  using namespace tytra;
  const target::DeviceDesc dev = target::stratix_v_gsd8();
  const auto db = cost::DeviceCostDb::calibrate(dev);

  std::printf("=== Table II: estimated vs actual resources and CPKI ===\n");
  std::printf("(integer kernels, single-pipeline configurations, %s)\n\n",
              dev.name.c_str());
  std::printf("%-10s %-9s %10s %10s %10s %8s %12s\n", "Kernel", "", "ALUT",
              "REG", "BRAM(b)", "DSP", "CPKI");

  kernels::HotspotConfig hs;
  hs.rows = hs.cols = 64;
  row("Hotspot", kernels::make_hotspot(hs), db, dev);

  kernels::LavamdConfig lava;
  lava.particles = 4096;
  lava.elem = ir::ScalarType::uint(18);
  row("LavaMD", kernels::make_lavamd(lava), db, dev);

  kernels::SorConfig sor;
  sor.im = sor.jm = sor.km = 16;
  row("SOR", kernels::make_sor(sor), db, dev);

  std::printf("\npaper error bands: ALUT 1.1-6%%, REG 3.9-7.1%%, BRAM 0-0.3%%,"
              " DSP 0-13%%, CPKI 0.07-5.2%%\n");
  return 0;
}
