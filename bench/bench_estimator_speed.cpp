// Reproduces the §VI-A speed claim and tracks the estimator's own cost
// over time. The paper's dichotomy — a cost-model estimate in well under
// a second versus ~70 s for a vendor tool's preliminary estimate — is
// measured against the fabric synthesizer (full netlist + placement).
// On top of that, the driver times the DSE hot path itself: the SOR
// nd=64 variant sweep, single-threaded, in the three cache regimes a
// sweep can hit —
//   cold             no cache: lower + summarize + cost per variant;
//   warm-structural  warm cache through a key-less LowerFn: every hit
//                    still lowers the variant and streams its structural
//                    digest before the table answers;
//   warm (variant-key)  warm cache through a KeyedLowerer: identity is
//                    resolved before lowering, so a hit is a hash of a
//                    dozen integers plus one lock-free probe — no IR
//                    exists at all.
// Each is reported as per-variant microseconds and variants/second.
//
// Usage:
//   bench_estimator_speed [--json <path>] [--baseline <path>]
//     --json <path>      also write the measurements as JSON (the CI
//                        perf-trajectory artifact, BENCH_estimator.json)
//     --baseline <path>  read a previous JSON and exit non-zero when the
//                        warm-cache per-variant cost regressed by more
//                        than 2x, or when the variant-key warm path falls
//                        under 5x faster than cold (CI regression gates)
//
// Baselines travel between machines: every report carries a
// machine-speed probe (a fixed CPU-bound workload), and the regression
// gate rescales the baseline by the probe ratio, so a slower CI runner
// is not mistaken for a code regression (nor a faster one for a fix).
// The warm<=cold/5 gate needs no rescaling: both sides run here.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include "tytra/cost/report.hpp"
#include "tytra/dse/session.hpp"
#include "tytra/fabric/synth.hpp"
#include "tytra/kernels/kernels.hpp"
#include "tytra/kernels/registry.hpp"
#include "tytra/support/hash.hpp"

namespace {

using namespace tytra;

constexpr std::uint32_t kNd = 64;  // 64^3 = 262144 work-items
constexpr std::uint32_t kThreads = 1;

const target::DeviceDesc& dev() {
  static const target::DeviceDesc d = target::stratix_v_gsd8();
  return d;
}
const cost::DeviceCostDb& db() {
  static const auto calibrated = cost::DeviceCostDb::calibrate(dev());
  return calibrated;
}

kernels::SorConfig sor_config() {
  kernels::SorConfig cfg;
  cfg.im = cfg.jm = cfg.km = kNd;
  cfg.nki = 10;
  return cfg;
}

/// The variant-key path: identity resolved before lowering. Built by the
/// workload registry — the same job `tytra-cc explore sor` runs (the
/// registry's SOR config matches sor_config(): nd^3 grid, nki=10).
dse::Job sor_keyed_job() {
  auto job = kernels::Registry::instance().make_job("sor", kNd);
  if (!job.ok()) {
    std::fprintf(stderr, "bench_estimator_speed: %s\n",
                 job.error_message().c_str());
    std::exit(1);
  }
  dse::Job out = std::move(job).take();
  out.db = &db();
  return out;
}

/// The key-less path every pre-Lowerer caller uses: identity resolved
/// from the lowered module's structural digest.
dse::Job sor_fn_job() {
  dse::Job job = sor_keyed_job();
  job.lower = std::make_shared<dse::FnLowerer>([](const frontend::Variant& v) {
    kernels::SorConfig cfg = sor_config();
    cfg.lanes = v.lanes();
    return kernels::make_sor(cfg);
  });
  return job;
}

double now_minus(const std::chrono::steady_clock::time_point& t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

struct SweepTiming {
  std::size_t variants{0};
  double us_per_variant{0};
  double variants_per_sec{0};
  dse::CacheStats stats;  ///< the final rep's per-sweep hit accounting
};

/// Times a session sweep over the SOR family, best-of-N to shed
/// scheduler noise. The session decides the cache regime: a cache-less
/// session is the cold configuration, a warm session's cache answers
/// per the job's lowerer (variant-key for keyed, structural for plain).
SweepTiming time_sweep(dse::Session& session, const dse::Job& job, int reps) {
  SweepTiming out;
  double best = 1e300;
  for (int rep = 0; rep < reps; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    const auto r = session.explore(job);
    const double s = now_minus(t0);
    out.variants = r.entries.size();
    out.stats = r.cache_stats;
    best = std::min(best, s);
  }
  out.us_per_variant = best / static_cast<double>(out.variants) * 1e6;
  out.variants_per_sec = static_cast<double>(out.variants) / best;
  return out;
}

/// One session per cache regime, same thread policy.
dse::Session make_session(bool enable_cache) {
  dse::SessionOptions so;
  so.num_threads = kThreads;
  so.enable_cache = enable_cache;
  return dse::Session(so);
}

/// A fixed CPU-bound workload (integer mixing, the same family of
/// operations the hot path leans on) timed best-of-N: a portable proxy
/// for single-thread machine speed. Reports carry it so a baseline
/// recorded on one machine can be rescaled on another.
double machine_probe_us() {
  double best = 1e300;
  volatile std::uint64_t sink = 0;
  for (int rep = 0; rep < 7; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    std::uint64_t h = 0x243f6a8885a308d3ULL;
    for (std::uint32_t i = 0; i < 2'000'000; ++i) h = hash_mix(h, i);
    sink = sink + h;
    best = std::min(best, now_minus(t0) * 1e6);
  }
  return best;
}

/// Pulls the number that follows `"<field>":` inside the section opened
/// by `"<section>"` (pass an empty section for a top-level field) out of
/// a previous JSON report. Returns a negative value when absent.
double read_field(const std::string& json, const std::string& section,
                  const std::string& field) {
  std::size_t from = 0;
  if (!section.empty()) {
    from = json.find("\"" + section + "\"");
    if (from == std::string::npos) return -1.0;
  }
  const auto key = json.find("\"" + field + "\"", from);
  if (key == std::string::npos) return -1.0;
  const auto colon = json.find(':', key);
  if (colon == std::string::npos) return -1.0;
  return std::strtod(json.c_str() + colon + 1, nullptr);
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  std::string baseline_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg == "--baseline" && i + 1 < argc) {
      baseline_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: bench_estimator_speed [--json path] "
                   "[--baseline path]\n");
      return 2;
    }
  }

  // --- The paper's headline: estimator vs vendor-style synthesis --------
  kernels::SorConfig cfg16;
  cfg16.im = cfg16.jm = cfg16.km = 24;
  cfg16.lanes = 16;
  const ir::Module m16 = kernels::make_sor(cfg16);
  const auto te0 = std::chrono::steady_clock::now();
  const auto report = cost::cost_design(m16, db());
  const double est_s = now_minus(te0);
  const auto ts0 = std::chrono::steady_clock::now();
  const auto synth = fabric::synthesize(m16, dev(), {.effort = 8});
  const double synth_s = now_minus(ts0);

  std::printf("=== estimator vs vendor-style synthesis (SOR, 16 lanes) ===\n");
  std::printf("cost-model estimate : %10.6f s  (EKIT %.1f /s)\n", est_s,
              report.throughput.ekit);
  std::printf("fabric synthesis    : %10.6f s  (fmax %.1f MHz)\n", synth_s,
              synth.fmax_hz / 1e6);
  std::printf("speedup             : %10.0fx   (paper: >200x)\n",
              synth_s / est_s);

  // --- The DSE hot path: per-variant cost by cache regime ---------------
  const dse::Job keyed_job = sor_keyed_job();
  const dse::Job fn_job = sor_fn_job();
  dse::Session cold_session = make_session(/*enable_cache=*/false);
  const SweepTiming cold = time_sweep(cold_session, keyed_job, 60);
  dse::Session warm_session = make_session(/*enable_cache=*/true);
  time_sweep(warm_session, keyed_job, 1);  // fill both cache levels
  // Key-less lowering against the warm cache: every hit still lowers and
  // streams the structural digest — the pre-variant-key warm path.
  const SweepTiming warm_structural = time_sweep(warm_session, fn_job, 120);
  // Keyed lowering against the warm cache: no IR is materialized at all.
  const SweepTiming warm = time_sweep(warm_session, keyed_job, 120);
  if (warm.stats.variant_hits != warm.variants ||
      warm_structural.stats.hits != warm_structural.variants ||
      warm_structural.stats.variant_hits != 0) {
    std::fprintf(stderr,
                 "bench_estimator_speed: hit accounting is off — warm "
                 "variant-key hits %llu/%zu, structural-warm hits %llu/%zu "
                 "(variant %llu); the regimes are not measuring what their "
                 "labels claim\n",
                 static_cast<unsigned long long>(warm.stats.variant_hits),
                 warm.variants,
                 static_cast<unsigned long long>(warm_structural.stats.hits),
                 warm_structural.variants,
                 static_cast<unsigned long long>(
                     warm_structural.stats.variant_hits));
    return 1;
  }

  std::printf("\n=== SOR nd=%u sweep, %u thread(s), %zu variants ===\n", kNd,
              kThreads, cold.variants);
  std::printf("cold pipeline      : %8.2f us/variant  (%.0f variants/s)\n",
              cold.us_per_variant, cold.variants_per_sec);
  std::printf("warm, structural   : %8.2f us/variant  (%.0f variants/s)\n",
              warm_structural.us_per_variant, warm_structural.variants_per_sec);
  std::printf("warm, variant-key  : %8.2f us/variant  (%.0f variants/s)\n",
              warm.us_per_variant, warm.variants_per_sec);
  std::printf("variant-key speedup: %8.1fx vs cold\n",
              cold.us_per_variant / warm.us_per_variant);

  const double probe_us = machine_probe_us();

  if (!json_path.empty()) {
    std::ostringstream os;
    os << "{\n";
    os << "  \"bench\": \"estimator_speed\",\n";
    os << "  \"machine_probe_us\": " << probe_us << ",\n";
    os << "  \"kernel\": \"sor\",\n";
    os << "  \"nd\": " << kNd << ",\n";
    os << "  \"variants\": " << cold.variants << ",\n";
    os << "  \"threads\": " << kThreads << ",\n";
    os << "  \"cold\": {\"us_per_variant\": " << cold.us_per_variant
       << ", \"variants_per_sec\": " << cold.variants_per_sec << "},\n";
    os << "  \"warm_structural\": {\"us_per_variant\": "
       << warm_structural.us_per_variant
       << ", \"variants_per_sec\": " << warm_structural.variants_per_sec
       << "},\n";
    os << "  \"warm\": {\"us_per_variant\": " << warm.us_per_variant
       << ", \"variants_per_sec\": " << warm.variants_per_sec
       << ", \"hit_level\": \"variant-key\"},\n";
    os << "  \"warm_speedup_vs_cold\": "
       << cold.us_per_variant / warm.us_per_variant << ",\n";
    os << "  \"estimate_seconds_16lane\": " << est_s << ",\n";
    os << "  \"synth_seconds_16lane\": " << synth_s << ",\n";
    os << "  \"speedup_vs_synth\": " << synth_s / est_s << "\n";
    os << "}\n";
    std::ofstream out(json_path);
    if (!out) {
      std::fprintf(stderr, "bench_estimator_speed: cannot write '%s'\n",
                   json_path.c_str());
      return 1;
    }
    out << os.str();
    std::printf("\nwrote %s\n", json_path.c_str());
  }

  if (!baseline_path.empty()) {
    std::ifstream in(baseline_path);
    if (!in) {
      std::fprintf(stderr, "bench_estimator_speed: cannot read baseline '%s'\n",
                   baseline_path.c_str());
      return 1;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    const std::string baseline_json = ss.str();
    double base_warm = read_field(baseline_json, "warm", "us_per_variant");
    if (base_warm <= 0) {
      std::fprintf(stderr,
                   "bench_estimator_speed: baseline '%s' has no warm "
                   "us_per_variant\n",
                   baseline_path.c_str());
      return 1;
    }
    // Rescale a baseline recorded on different hardware: if this machine
    // runs the fixed probe k times slower, k times the microseconds are
    // expected, not a regression.
    const double base_probe =
        read_field(baseline_json, "", "machine_probe_us");
    if (base_probe > 0) {
      base_warm *= probe_us / base_probe;
    }
    std::printf(
        "baseline warm : %8.2f us/variant (machine-adjusted; measured "
        "%.2f, limit 2x)\n",
        base_warm, warm.us_per_variant);
    if (warm.us_per_variant > 2.0 * base_warm) {
      std::fprintf(stderr,
                   "bench_estimator_speed: REGRESSION — warm per-variant "
                   "cost %.2f us exceeds 2x the machine-adjusted baseline "
                   "%.2f us\n",
                   warm.us_per_variant, base_warm);
      return 1;
    }
    // The variant-key fast path must stay categorically faster than
    // lowering + costing: warm <= cold/5. Both sides run on this machine,
    // so no probe rescaling is involved.
    if (warm.us_per_variant > cold.us_per_variant / 5.0) {
      std::fprintf(stderr,
                   "bench_estimator_speed: REGRESSION — variant-key warm "
                   "path %.2f us/variant is under 5x faster than the cold "
                   "path %.2f us/variant\n",
                   warm.us_per_variant, cold.us_per_variant);
      return 1;
    }
  }
  return 0;
}
