// Reproduces the §VI-A speed claim: the cost-model estimator evaluates a
// design variant in ~0.3 s (Perl prototype) versus ~70 s for a vendor
// tool's preliminary estimate — more than 200x faster. Here the same
// dichotomy is measured between the calibrated cost model (fitted-curve
// evaluation) and the fabric synthesizer (full netlist + placement).
//
// Uses google-benchmark for the estimator path and a one-shot wall-clock
// measurement for the synthesis path (it is far too slow to iterate).

#include <benchmark/benchmark.h>

#include <chrono>

#include <cstdio>

#include "tytra/cost/report.hpp"
#include "tytra/fabric/synth.hpp"
#include "tytra/kernels/kernels.hpp"

namespace {

using namespace tytra;

const target::DeviceDesc& dev() {
  static const target::DeviceDesc d = target::stratix_v_gsd8();
  return d;
}
const cost::DeviceCostDb& db() {
  static const auto calibrated = cost::DeviceCostDb::calibrate(dev());
  return calibrated;
}

ir::Module sor_variant(std::uint32_t lanes) {
  kernels::SorConfig cfg;
  cfg.im = cfg.jm = cfg.km = 24;
  cfg.lanes = lanes;
  return kernels::make_sor(cfg);
}

void BM_CostModelEstimate(benchmark::State& state) {
  const ir::Module m = sor_variant(static_cast<std::uint32_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(cost::cost_design(m, db()));
  }
}
BENCHMARK(BM_CostModelEstimate)->Arg(1)->Arg(4)->Arg(16);

void BM_IrToReportIncludingBuild(benchmark::State& state) {
  for (auto _ : state) {
    const ir::Module m = sor_variant(4);
    benchmark::DoNotOptimize(cost::cost_design(m, db()));
  }
}
BENCHMARK(BM_IrToReportIncludingBuild);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();

  // One-shot comparison against the "vendor tool" path, at the scale a
  // real exploration evaluates (a 16-lane variant) and with the placement
  // effort a vendor preliminary-estimation pass spends.
  const ir::Module m = sor_variant(16);
  const auto t0 = std::chrono::steady_clock::now();
  const auto report = cost::cost_design(m, db());
  const auto t1 = std::chrono::steady_clock::now();
  const auto synth = fabric::synthesize(m, dev(), {.effort = 8});
  const auto t2 = std::chrono::steady_clock::now();

  const double est_s =
      std::chrono::duration_cast<std::chrono::duration<double>>(t1 - t0).count();
  const double synth_s =
      std::chrono::duration_cast<std::chrono::duration<double>>(t2 - t1).count();
  std::printf("\n=== estimator vs vendor-style synthesis (SOR, 16 lanes) ===\n");
  std::printf("cost-model estimate : %10.6f s  (EKIT %.1f /s)\n", est_s,
              report.throughput.ekit);
  std::printf("fabric synthesis    : %10.6f s  (fmax %.1f MHz)\n", synth_s,
              synth.fmax_hz / 1e6);
  std::printf("speedup             : %10.0fx   (paper: >200x)\n",
              synth_s / est_s);
  return 0;
}
