// Ablation study of the cost-model design choices DESIGN.md calls out:
//
//  A1. empirical bandwidth table vs naive rho = 1 (datasheet peak):
//      how far off does the EKIT steady-state term land?
//  A2. textbook constant-operand knowledge vs none: Table-II resource
//      error on the three kernels.
//  A3. fabric second-order optimizations (CSE / strength reduction /
//      retiming) on vs off: how much of the estimate-vs-actual gap do
//      they explain?
//  A4. IR optimization passes before costing: how much of that gap the
//      compiler can close *without* touching the cost model.

#include <cmath>
#include <cstdio>

#include "tytra/cost/report.hpp"
#include "tytra/fabric/synth.hpp"
#include "tytra/ir/passes.hpp"
#include "tytra/kernels/kernels.hpp"

namespace {

using namespace tytra;

double pct(double est, double act) {
  return act != 0 ? (est - act) / act * 100.0 : 0.0;
}

}  // namespace

int main() {
  const target::DeviceDesc dev = target::stratix_v_gsd8();
  const auto db = cost::DeviceCostDb::calibrate(dev);

  std::printf("=== cost-model ablations (stratix-v-gsd8) ===\n\n");

  // --- A1: empirical bandwidth vs datasheet peak ---------------------------
  {
    kernels::SorConfig cfg;
    cfg.im = cfg.jm = cfg.km = 32;
    cfg.lanes = 8;  // fast enough that memory matters
    const ir::Module m = kernels::make_sor(cfg);
    cost::EkitInputs in = cost::resolve_inputs(m, db);
    const auto with_table = cost::ekit(in);
    cost::EkitInputs naive = in;
    naive.rho_g = 1.0;
    naive.rho_h = 1.0;
    const auto with_peak = cost::ekit(naive);
    std::printf("A1 empirical bandwidth table (SOR 32^3, 8 lanes):\n");
    std::printf("   rho_G (measured) = %.3f -> EKIT %.1f/s, limiting %s\n",
                in.rho_g, with_table.ekit,
                std::string(cost::wall_name(with_table.limiting)).c_str());
    std::printf("   rho = 1 (naive)  -> EKIT %.1f/s, limiting %s  (%.0f%% "
                "optimistic)\n\n",
                with_peak.ekit,
                std::string(cost::wall_name(with_peak.limiting)).c_str(),
                (with_peak.ekit / with_table.ekit - 1.0) * 100.0);
  }

  // --- A2/A3/A4 over the Table-II kernels ----------------------------------
  struct Case {
    const char* name;
    ir::Module module;
  };
  kernels::SorConfig sor;
  sor.im = sor.jm = sor.km = 16;
  kernels::HotspotConfig hs;
  hs.rows = hs.cols = 64;
  kernels::LavamdConfig lava;
  lava.particles = 4096;
  lava.elem = ir::ScalarType::uint(18);
  Case cases[] = {{"Hotspot", kernels::make_hotspot(hs)},
                  {"LavaMD", kernels::make_lavamd(lava)},
                  {"SOR", kernels::make_sor(sor)}};

  std::printf("A2-A4 ALUT estimate error vs fabric actual (signed %%):\n");
  std::printf("%-9s %14s %14s %14s %16s\n", "kernel", "full model",
              "no-const-know", "fabric-no-opt", "after IR passes");
  for (auto& c : cases) {
    const auto act = fabric::synthesize(c.module, dev);
    const auto est = cost::estimate_resources(c.module, db);

    // A2: strip the model's constant-operand knowledge by rewriting
    // constants into pseudo-streams is intrusive; instead re-cost each
    // instruction with op_cost (what the model would do without
    // op_cost_const). Approximated by costing an IR copy whose constants
    // are replaced with locals.
    ir::Module no_const = c.module;
    for (auto& f : no_const.functions) {
      int fresh = 0;
      for (auto& item : f.body) {
        if (auto* instr = std::get_if<ir::Instr>(&item)) {
          for (auto& a : instr->args) {
            if (a.kind == ir::Operand::Kind::ConstInt) {
              const std::string name = "konst" + std::to_string(fresh++);
              f.params.push_back({instr->type, name});
              a = ir::Operand::local(name);
            }
          }
        }
      }
    }
    const auto est_noconst = cost::estimate_resources(no_const, db);

    fabric::SynthOptions raw;
    raw.enable_cse = false;
    raw.enable_strength_reduction = false;
    raw.enable_retiming = false;
    const auto act_noopt = fabric::synthesize(c.module, dev, raw);

    ir::Module optimized = c.module;
    ir::optimize(optimized);
    const auto est_opt = cost::estimate_resources(optimized, db);

    std::printf("%-9s %13.1f%% %13.1f%% %13.1f%% %15.1f%%\n", c.name,
                pct(est.total.aluts, act.total.aluts),
                pct(est_noconst.total.aluts, act.total.aluts),
                pct(est.total.aluts, act_noopt.total.aluts),
                pct(est_opt.total.aluts, act.total.aluts));
  }
  std::printf("\nreading: 'no-const-know' inflates the estimate (the paper's\n"
              "DSP-style overestimates appear in ALUTs too); against a\n"
              "non-optimizing fabric the plain model is nearly unbiased; IR\n"
              "passes close part of the remaining gap at zero model cost.\n");
  return 0;
}
