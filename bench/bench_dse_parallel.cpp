// Measures the parallel batched DSE engine against the sequential path:
// wall-clock for a full SOR variant sweep at max_lanes=64, sequential vs
// one worker per core, plus the warm-cache rerun (the tuner/bench-rerun
// case, where every evaluation is a lookup).
//
//   bench_dse_parallel [--smoke]
//
// --smoke shrinks the grid and repetition count for CI.
//
// Runs through dse::Session — the same entry point users drive — with
// one session per regime: a cache-less session for the sequential and
// parallel sweeps (so they measure evaluation, not lookups) and a
// cache-owning session whose second sweep is the warm rerun. Lowering
// stays a plain LowerFn (structural-digest caching, no variant keys),
// measuring the same regimes this bench always has.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <thread>

#include "tytra/dse/session.hpp"
#include "tytra/kernels/kernels.hpp"

namespace {

using namespace tytra;

double now_seconds() {
  return std::chrono::duration_cast<std::chrono::duration<double>>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

dse::LowerFn sor_lower(std::uint32_t dim) {
  return [dim](const frontend::Variant& v) {
    kernels::SorConfig cfg;
    cfg.im = cfg.jm = cfg.km = dim;
    cfg.nki = 10;
    cfg.lanes = v.lanes();
    return kernels::make_sor(cfg);
  };
}

double sweep_seconds(dse::Session& session, const dse::Job& job, int reps,
                     std::size_t& variants_out) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const double t0 = now_seconds();
    const auto result = session.explore(job);
    const double t = now_seconds() - t0;
    if (t < best) best = t;
    variants_out = result.entries.size();
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  const std::uint32_t dim = smoke ? 24 : 48;
  const int reps = smoke ? 1 : 3;
  const std::uint64_t n = static_cast<std::uint64_t>(dim) * dim * dim;
  const auto db = cost::DeviceCostDb::calibrate(target::stratix_v_gsd8());
  const unsigned cores = std::thread::hardware_concurrency();

  dse::Job job;
  job.workload = "sor";
  job.nd = dim;
  job.n = n;
  job.lower = std::make_shared<dse::FnLowerer>(sor_lower(dim));
  job.db = &db;
  job.max_lanes = 64;

  std::printf("=== parallel DSE sweep: SOR %u^3 (%llu items), max_lanes=64, "
              "%u hardware threads ===\n\n",
              dim, static_cast<unsigned long long>(n), cores);

  dse::SessionOptions seq_opts;
  seq_opts.num_threads = 1;
  seq_opts.enable_cache = false;
  dse::SessionOptions par_opts = seq_opts;
  par_opts.num_threads = 0;  // one worker per core
  dse::SessionOptions warm_opts = par_opts;
  warm_opts.enable_cache = true;

  dse::Session seq(seq_opts);
  dse::Session par(par_opts);
  dse::Session warm(warm_opts);

  std::size_t variants = 0;
  const double t_seq = sweep_seconds(seq, job, reps, variants);
  const double t_par = sweep_seconds(par, job, reps, variants);

  warm.explore(job);  // cold fill of the session cache
  const double t_warm = sweep_seconds(warm, job, reps, variants);

  std::printf("%-28s %10.2f ms  (%.3f ms/variant)\n", "sequential (1 thread)",
              t_seq * 1e3, t_seq * 1e3 / static_cast<double>(variants));
  std::printf("%-28s %10.2f ms  (%.2fx speedup)\n", "parallel (all cores)",
              t_par * 1e3, t_seq / t_par);
  std::printf("%-28s %10.2f ms  (%.0fx vs sequential)\n", "warm cache rerun",
              t_warm * 1e3, t_seq / t_warm);
  std::printf("\n%zu variants; parallel and sequential sweeps are "
              "byte-identical (asserted in tests/test_dse_parallel.cpp)\n",
              variants);
  return 0;
}
