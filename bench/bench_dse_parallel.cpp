// Measures the parallel batched DSE engine against the sequential path:
// wall-clock for a full SOR variant sweep at max_lanes=64, sequential vs
// one worker per core, plus the warm-cache rerun (the tuner/bench-rerun
// case, where every evaluation is a lookup) — and the campaign regime:
// many small {workload x size x device} jobs scheduled job-by-job versus
// campaign-wide through Session::run's flattened work list — and the
// degraded-mode regime: the same campaign with one always-failing job
// appended, checking a contained fault costs only its own job's slot.
//
//   bench_dse_parallel [--smoke] [--gate]
//
// --smoke shrinks the grid and repetition count for CI. --gate fails the
// run (exit 1) when the campaign-wide schedule is not at least 2x faster
// than the job-by-job loop (skipped on machines with fewer than 4
// hardware threads, where the headroom does not exist), or when one
// failing job inflates campaign wall clock beyond 1.5x the healthy run.
//
// Runs through dse::Session — the same entry point users drive — with
// one session per regime: a cache-less session for the sequential and
// parallel sweeps (so they measure evaluation, not lookups) and a
// cache-owning session whose second sweep is the warm rerun. Lowering
// stays a plain LowerFn (structural-digest caching, no variant keys),
// measuring the same regimes this bench always has.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include "tytra/dse/session.hpp"
#include "tytra/kernels/kernels.hpp"
#include "tytra/kernels/registry.hpp"

namespace {

using namespace tytra;

double now_seconds() {
  return std::chrono::duration_cast<std::chrono::duration<double>>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

dse::LowerFn sor_lower(std::uint32_t dim) {
  return [dim](const frontend::Variant& v) {
    kernels::SorConfig cfg;
    cfg.im = cfg.jm = cfg.km = dim;
    cfg.nki = 10;
    cfg.lanes = v.lanes();
    return kernels::make_sor(cfg);
  };
}

double sweep_seconds(dse::Session& session, const dse::Job& job, int reps,
                     std::size_t& variants_out) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const double t0 = now_seconds();
    const auto result = session.explore(job);
    const double t = now_seconds() - t0;
    if (t < best) best = t;
    variants_out = result.entries.size();
  }
  return best;
}

/// The many-small-jobs serving shape: {sor, hotspot, lavamd} x several
/// prime-ish sizes x two devices. Prime nd gives 1-2 variants per job
/// (only 1 and nd-derived divisors fit under the lane cap), so per-job
/// parallelism has nothing to chew on — the regime campaign-wide
/// scheduling exists for.
dse::Campaign small_jobs_campaign(bool smoke, std::size_t& variants_out) {
  const std::vector<std::uint32_t> sizes =
      smoke ? std::vector<std::uint32_t>{17, 19}
            : std::vector<std::uint32_t>{17, 19, 23, 29};
  // The jobs pin their own lane cap, and the variant count is derived
  // from the same value, so the printed total cannot drift from what
  // the campaign actually evaluates if session defaults change.
  constexpr std::uint32_t kLaneCap = 16;
  dse::Campaign campaign;
  variants_out = 0;
  for (const char* kernel : {"sor", "hotspot", "lavamd"}) {
    for (const std::uint32_t nd : sizes) {
      for (const char* device : {"stratix-v-gsd8", "fig15-profile"}) {
        auto job = kernels::Registry::instance().make_job(kernel, nd);
        if (!job.ok()) continue;
        dse::Job j = std::move(job).take();
        j.device = device;
        j.max_lanes = kLaneCap;
        variants_out += frontend::divisors(j.n, kLaneCap).size();
        campaign.jobs.push_back(std::move(j));
      }
    }
  }
  return campaign;
}

/// Best-of-`reps` wall clock of `iters` back-to-back campaign runs,
/// either job-by-job (the pre-pool Session::run schedule: each job's
/// sweep parallelizes alone, jobs strictly in sequence) or campaign-wide
/// through Session::run's flattened work list.
double campaign_seconds(dse::Session& session, const dse::Campaign& campaign,
                        int reps, int iters, bool flattened) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const double t0 = now_seconds();
    for (int it = 0; it < iters; ++it) {
      if (flattened) {
        const auto result = session.run(campaign);
        if (result.jobs.size() != campaign.jobs.size()) return -1;
      } else {
        for (const dse::Job& job : campaign.jobs) session.explore(job);
      }
    }
    const double t = now_seconds() - t0;
    if (t < best) best = t;
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  bool gate = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--gate") == 0) gate = true;
  }

  const std::uint32_t dim = smoke ? 24 : 48;
  const int reps = smoke ? 1 : 3;
  const std::uint64_t n = static_cast<std::uint64_t>(dim) * dim * dim;
  const auto db = cost::DeviceCostDb::calibrate(target::stratix_v_gsd8());
  const unsigned cores = std::thread::hardware_concurrency();

  dse::Job job;
  job.workload = "sor";
  job.nd = dim;
  job.n = n;
  job.lower = std::make_shared<dse::FnLowerer>(sor_lower(dim));
  job.db = &db;
  job.max_lanes = 64;

  std::printf("=== parallel DSE sweep: SOR %u^3 (%llu items), max_lanes=64, "
              "%u hardware threads ===\n\n",
              dim, static_cast<unsigned long long>(n), cores);

  dse::SessionOptions seq_opts;
  seq_opts.num_threads = 1;
  seq_opts.enable_cache = false;
  dse::SessionOptions par_opts = seq_opts;
  par_opts.num_threads = 0;  // one worker per core
  dse::SessionOptions warm_opts = par_opts;
  warm_opts.enable_cache = true;

  dse::Session seq(seq_opts);
  dse::Session par(par_opts);
  dse::Session warm(warm_opts);

  std::size_t variants = 0;
  const double t_seq = sweep_seconds(seq, job, reps, variants);
  const double t_par = sweep_seconds(par, job, reps, variants);

  warm.explore(job);  // cold fill of the session cache
  const double t_warm = sweep_seconds(warm, job, reps, variants);

  std::printf("%-28s %10.2f ms  (%.3f ms/variant)\n", "sequential (1 thread)",
              t_seq * 1e3, t_seq * 1e3 / static_cast<double>(variants));
  std::printf("%-28s %10.2f ms  (%.2fx speedup)\n", "parallel (all cores)",
              t_par * 1e3, t_seq / t_par);
  std::printf("%-28s %10.2f ms  (%.0fx vs sequential)\n", "warm cache rerun",
              t_warm * 1e3, t_seq / t_warm);
  std::printf("\n%zu variants; parallel and sequential sweeps are "
              "byte-identical (asserted in tests/test_dse_parallel.cpp)\n",
              variants);

  // -------------------------------------------------------------------
  // Campaign regime: many small jobs, job-by-job vs campaign-wide
  // -------------------------------------------------------------------
  std::size_t campaign_variants = 0;
  const dse::Campaign campaign = small_jobs_campaign(smoke, campaign_variants);
  // The spans being compared are sub-millisecond; enough iterations per
  // timed rep (and best-of over several reps) amortize pool wakeups and
  // scheduler noise so the gate is stable on shared CI runners.
  const int campaign_reps = smoke ? 5 : 7;
  const int campaign_iters = smoke ? 16 : 24;

  // Cache-less sessions on both sides: the comparison is pure
  // scheduling, not lookups (the jobs are all distinct anyway).
  dse::SessionOptions campaign_opts;
  campaign_opts.num_threads = 0;  // one worker per core, both schedules
  campaign_opts.enable_cache = false;
  dse::Session job_by_job(campaign_opts);
  dse::Session flattened(campaign_opts);
  job_by_job.add_device(*target::preset("stratix-v-gsd8"));
  job_by_job.add_device(*target::preset("fig15"));
  flattened.add_device(*target::preset("stratix-v-gsd8"));
  flattened.add_device(*target::preset("fig15"));

  std::printf("\n=== campaign scheduling: %zu small jobs (%zu variants "
              "total), %u hardware threads ===\n\n",
              campaign.jobs.size(), campaign_variants, cores);
  double speedup = 0;
  for (int attempt = 0;; ++attempt) {
    const double t_jobs = campaign_seconds(job_by_job, campaign,
                                           campaign_reps, campaign_iters,
                                           false);
    const double t_flat = campaign_seconds(flattened, campaign, campaign_reps,
                                           campaign_iters, true);
    if (t_jobs < 0 || t_flat < 0) {
      std::fprintf(stderr, "campaign regime failed to run\n");
      return 1;
    }
    speedup = t_jobs / t_flat;
    std::printf("%-28s %10.2f ms\n", "job-by-job (per-job workers)",
                t_jobs * 1e3 / campaign_iters);
    std::printf("%-28s %10.2f ms  (%.2fx speedup)\n",
                "campaign-wide (flattened)", t_flat * 1e3 / campaign_iters,
                speedup);
    // Re-measure (up to twice) before a gate verdict: the spans are
    // sub-millisecond, and on a shared 4-vCPU runner — where the
    // theoretical ceiling leaves the least margin over 2x — a transient
    // noisy-neighbor spike should not fail CI.
    if (!gate || cores < 4 || speedup >= 2.0 || attempt == 2) break;
    std::printf("(below the 2x gate — re-measuring)\n");
  }

  if (gate) {
    if (cores < 4) {
      std::printf("\ncampaign gate skipped: %u hardware threads (< 4), no "
                  "parallel headroom to gate on\n", cores);
    } else if (speedup < 2.0) {
      std::fprintf(stderr,
                   "\nFAIL: campaign-wide scheduling is only %.2fx faster "
                   "than job-by-job (gate requires >= 2x on >= 4 cores)\n",
                   speedup);
      return 1;
    } else {
      std::printf("\ncampaign gate passed: %.2fx >= 2x\n", speedup);
    }
  }

  // -------------------------------------------------------------------
  // Degraded-mode regime: a failing job may only cost itself
  // -------------------------------------------------------------------
  // Same small-jobs campaign plus one job whose lowerer always throws.
  // Containment means the fault burns one task slot and the survivors
  // run exactly as before — so the degraded campaign's wall clock must
  // stay within noise of the healthy one (the failing job contributes
  // essentially zero work). A containment bug that retried, serialized,
  // or tore down the pool on a fault would show up here as a wall-clock
  // cliff long before anyone read the per-job statuses.
  dse::Campaign degraded_campaign = campaign;
  {
    dse::Job bad;
    bad.workload = "always-throws";
    bad.nd = 17;
    bad.n = 4096;
    bad.device = "stratix-v-gsd8";
    bad.max_lanes = 16;
    bad.lower = std::make_shared<dse::FnLowerer>(
        [](const frontend::Variant&) -> ir::Module {
          throw std::runtime_error("bench: injected lowering failure");
        });
    degraded_campaign.jobs.push_back(std::move(bad));
  }

  dse::Session healthy_s(campaign_opts);
  dse::Session degraded_s(campaign_opts);
  for (dse::Session* s : {&healthy_s, &degraded_s}) {
    s->add_device(*target::preset("stratix-v-gsd8"));
    s->add_device(*target::preset("fig15"));
  }
  {  // sanity outside the timed region: exactly the one job degrades
    const auto probe = degraded_s.run(degraded_campaign);
    if (probe.degraded() != 1 || probe.jobs.back().status.state !=
                                    dse::JobState::Failed) {
      std::fprintf(stderr, "degraded regime: containment probe failed\n");
      return 1;
    }
  }

  std::printf("\n=== degraded mode: %zu jobs + 1 always-failing job ===\n\n",
              campaign.jobs.size());
  double overhead = 0;
  for (int attempt = 0;; ++attempt) {
    const double t_healthy = campaign_seconds(healthy_s, campaign,
                                              campaign_reps, campaign_iters,
                                              true);
    const double t_degraded = campaign_seconds(degraded_s, degraded_campaign,
                                               campaign_reps, campaign_iters,
                                               true);
    if (t_healthy < 0 || t_degraded < 0) {
      std::fprintf(stderr, "degraded regime failed to run\n");
      return 1;
    }
    overhead = t_degraded / t_healthy;
    std::printf("%-28s %10.2f ms\n", "healthy campaign",
                t_healthy * 1e3 / campaign_iters);
    std::printf("%-28s %10.2f ms  (%.2fx healthy)\n",
                "with one failing job", t_degraded * 1e3 / campaign_iters,
                overhead);
    if (!gate || overhead <= 1.5 || attempt == 2) break;
    std::printf("(above the 1.5x gate — re-measuring)\n");
  }

  if (gate) {
    if (overhead > 1.5) {
      std::fprintf(stderr,
                   "\nFAIL: one failing job inflated campaign wall clock "
                   "%.2fx (gate requires <= 1.5x: a contained fault may "
                   "only cost its own job)\n",
                   overhead);
      return 1;
    }
    std::printf("\ndegraded gate passed: %.2fx <= 1.5x\n", overhead);
  }
  return 0;
}
