// Measures what the tytra-dsed wire adds on top of the engine and what
// the shared warm session buys across clients: the protocol floor (ping
// round-trips over the Unix socket), a cold explore through the daemon
// vs the identical call straight into a Session, the warm-cache repeat
// rate once the daemon has seen the job, and aggregate throughput with
// several concurrent clients sharing the one scheduler.
//
//   bench_daemon_roundtrip [--smoke]
//
// --smoke shrinks the request counts for CI. Output is one JSON object,
// following the bench-driver convention (BENCH_estimator_baseline.json
// et al.). The server runs in-process on its own thread — the same
// serve() loop, socket and frame layers a real deployment uses; only
// fork/exec is elided so the numbers isolate protocol + scheduling cost.

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "tytra/dse/server.hpp"
#include "tytra/dse/session.hpp"
#include "tytra/kernels/registry.hpp"
#include "tytra/support/framing.hpp"
#include "tytra/support/json.hpp"
#include "tytra/target/device.hpp"

namespace {

using namespace tytra;

double now_seconds() {
  return std::chrono::duration_cast<std::chrono::duration<double>>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

int connect_to(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

/// Sends one request and reads frames until the terminal one; returns
/// its exit code, or -1 on a transport/parse defect.
int round_trip(int fd, const std::string& request) {
  std::string err;
  if (!framing::write_frame(fd, request, err)) return -1;
  std::string payload;
  for (;;) {
    if (framing::read_frame(fd, payload, err) != framing::ReadStatus::Frame) {
      return -1;
    }
    auto parsed = json::parse(payload);
    if (!parsed.ok()) return -1;
    const json::Value frame = std::move(parsed).take();
    const std::string type = frame.get_string("type").value_or("");
    if (type == "pong") return 0;
    if (type == "result" || type == "error") {
      return static_cast<int>(frame.get_u32("exit").value_or(99));
    }
  }
}

constexpr char kExploreReq[] =
    R"({"cmd": "explore", "kernel": "sor", "nd": 16, "json": true})";
constexpr char kCampaignReq[] =
    R"({"cmd": "campaign", "kernels": ["sor", "hotspot"], "nds": [8], "json": true})";

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const int ping_count = smoke ? 50 : 1000;
  const int warm_count = smoke ? 5 : 50;
  const int clients = smoke ? 2 : 4;
  const int requests_per_client = smoke ? 2 : 8;

  dse::ServerOptions opts;
  opts.socket_path = "/tmp/tytra_bench_dsed_" + std::to_string(::getpid()) +
                     ".sock";
  dse::Server server(std::move(opts));
  std::thread serving([&] { server.serve(); });

  const int fd = connect_to(server.socket_path());
  if (fd < 0) {
    std::fprintf(stderr, "cannot connect to %s\n",
                 server.socket_path().c_str());
    server.signal_shutdown();
    serving.join();
    return 1;
  }

  // Protocol floor: ping round-trips (frame write + parse + scheduler
  // hop + frame read; no DSE work).
  std::vector<double> ping_us(static_cast<std::size_t>(ping_count));
  for (int i = 0; i < ping_count; ++i) {
    const double t0 = now_seconds();
    if (round_trip(fd, R"({"cmd": "ping"})") != 0) {
      std::fprintf(stderr, "ping failed\n");
      return 1;
    }
    ping_us[static_cast<std::size_t>(i)] = (now_seconds() - t0) * 1e6;
  }
  std::sort(ping_us.begin(), ping_us.end());
  const double ping_median = ping_us[ping_us.size() / 2];
  const double ping_p99 = ping_us[ping_us.size() * 99 / 100];

  // Cold explore through the daemon (calibration + full sweep)...
  const double cold_t0 = now_seconds();
  if (round_trip(fd, kExploreReq) != 0) {
    std::fprintf(stderr, "cold explore failed\n");
    return 1;
  }
  const double cold_seconds = now_seconds() - cold_t0;

  // ...vs the identical job straight into a fresh Session (no wire).
  double direct_seconds = 0;
  {
    dse::Session session;
    auto job_r = kernels::Registry::instance().make_job("sor", 16);
    if (!job_r.ok()) {
      std::fprintf(stderr, "cannot build job: %s\n",
                   job_r.error_message().c_str());
      return 1;
    }
    dse::Job job = std::move(job_r).take();
    const auto desc = target::preset("stratix-v-gsd8");
    const double t0 = now_seconds();
    session.add_device(*desc);
    job.device = desc->name;
    job.max_lanes = 16;
    session.explore(job);
    direct_seconds = now_seconds() - t0;
  }

  // Warm repeats: the daemon has the variant keys now.
  double warm_total = 0;
  for (int i = 0; i < warm_count; ++i) {
    const double t0 = now_seconds();
    if (round_trip(fd, kExploreReq) != 0) {
      std::fprintf(stderr, "warm explore failed\n");
      return 1;
    }
    warm_total += now_seconds() - t0;
  }
  const double warm_seconds = warm_total / warm_count;
  ::close(fd);

  // Concurrent clients hammering campaigns at the one warm session.
  const double conc_t0 = now_seconds();
  std::vector<std::thread> threads;
  std::vector<int> failures(static_cast<std::size_t>(clients), 0);
  threads.reserve(static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      const int cfd = connect_to(server.socket_path());
      if (cfd < 0) {
        failures[static_cast<std::size_t>(c)] = requests_per_client;
        return;
      }
      for (int r = 0; r < requests_per_client; ++r) {
        if (round_trip(cfd, kCampaignReq) != 0) {
          ++failures[static_cast<std::size_t>(c)];
        }
      }
      ::close(cfd);
    });
  }
  for (auto& t : threads) t.join();
  const double conc_seconds = now_seconds() - conc_t0;
  int failed = 0;
  for (const int f : failures) failed += f;
  const int total_requests = clients * requests_per_client;

  server.signal_shutdown();
  serving.join();
  const dse::ServerStats stats = server.stats();

  std::printf("{\n");
  std::printf("  \"bench\": \"daemon_roundtrip\",\n");
  std::printf("  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::printf(
      "  \"ping\": {\"count\": %d, \"median_us\": %g, \"p99_us\": %g},\n",
      ping_count, ping_median, ping_p99);
  std::printf(
      "  \"explore\": {\"cold_via_daemon_seconds\": %g, "
      "\"cold_direct_seconds\": %g, \"warm_via_daemon_seconds\": %g, "
      "\"warm_speedup_vs_cold\": %g},\n",
      cold_seconds, direct_seconds, warm_seconds,
      warm_seconds > 0 ? cold_seconds / warm_seconds : 0.0);
  std::printf(
      "  \"concurrent\": {\"clients\": %d, \"requests\": %d, "
      "\"seconds\": %g, \"requests_per_sec\": %g, \"failed\": %d},\n",
      clients, total_requests, conc_seconds,
      conc_seconds > 0 ? total_requests / conc_seconds : 0.0, failed);
  std::printf(
      "  \"server\": {\"connections\": %llu, \"requests\": %llu, "
      "\"jobs_ok\": %llu, \"jobs_degraded\": %llu}\n",
      static_cast<unsigned long long>(stats.connections),
      static_cast<unsigned long long>(stats.requests),
      static_cast<unsigned long long>(stats.jobs_ok),
      static_cast<unsigned long long>(stats.jobs_degraded));
  std::printf("}\n");

  if (failed != 0 || stats.jobs_degraded != 0) {
    std::fprintf(stderr, "degraded bench run (failed=%d degraded=%llu)\n",
                 failed, static_cast<unsigned long long>(stats.jobs_degraded));
    return 1;
  }
  return 0;
}
