// Measures what the persistent snapshot store buys and what it costs: a
// cold SOR sweep (calibration + lowering + costing from nothing) against a
// second process's warm start (snapshot load + variant-key lookups), plus
// the fixed costs of the persistence layer itself — save time, load time,
// and the offline `verify` integrity walk, with the snapshot's size on
// disk.
//
//   bench_snapshot_warmstart [--smoke]
//
// --smoke shrinks the sweep for CI. Output is one JSON object, following
// the bench-driver convention (BENCH_estimator_baseline.json et al.).
//
// "Second process" is simulated the honest way available inside one
// binary: a fresh dse::Session constructed with snapshot_path, which runs
// the identical load path the CLI runs on startup — nothing is shared
// with the session that wrote the file.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>

#include "tytra/dse/session.hpp"
#include "tytra/kernels/registry.hpp"

namespace {

using namespace tytra;

double now_seconds() {
  return std::chrono::duration_cast<std::chrono::duration<double>>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const std::uint32_t nd = smoke ? 16 : 64;
  const std::string snap_path = "bench_snapshot_warmstart.snap";
  std::remove(snap_path.c_str());

  auto job_r = kernels::Registry::instance().make_job("sor", nd);
  if (!job_r.ok()) {
    std::fprintf(stderr, "cannot build job: %s\n",
                 job_r.error_message().c_str());
    return 1;
  }

  dse::SessionOptions so;
  so.snapshot_path = snap_path;

  // Cold: calibrate, lower and cost everything, then persist.
  double cold_seconds = 0, save_seconds = 0;
  std::uint64_t snapshot_bytes = 0;
  std::size_t variants = 0;
  {
    dse::Session session(so);
    const double t0 = now_seconds();
    session.add_device(*target::preset("stratix-v-gsd8"));
    const auto result = session.explore(job_r.value());
    cold_seconds = now_seconds() - t0;
    variants = result.entries.size();
    const double t1 = now_seconds();
    const auto written = session.save_snapshot();
    save_seconds = now_seconds() - t1;
    if (!written.ok()) {
      std::fprintf(stderr, "save failed: %s\n",
                   written.error_message().c_str());
      return 1;
    }
    snapshot_bytes = written.value();
  }

  // Warm: a fresh session restores the snapshot in its constructor (the
  // exact path a new tytra-cc process takes), then answers the same sweep
  // from variant keys.
  double load_seconds = 0, warm_seconds = 0;
  std::uint64_t warm_variant_hits = 0, warm_misses = 0;
  {
    const double t0 = now_seconds();
    dse::Session session(so);
    session.add_device(*target::preset("stratix-v-gsd8"));
    load_seconds = now_seconds() - t0;
    const double t1 = now_seconds();
    const auto result = session.explore(job_r.value());
    warm_seconds = now_seconds() - t1;
    warm_variant_hits = result.cache_stats.variant_hits;
    warm_misses = result.cache_stats.misses;
  }

  // The offline integrity walk `tytra-cc cache verify` runs.
  const double t0 = now_seconds();
  const auto summary = dse::verify_snapshot(snap_path);
  const double verify_seconds = now_seconds() - t0;
  if (!summary.ok()) {
    std::fprintf(stderr, "verify failed: %s\n",
                 summary.error_message().c_str());
    return 1;
  }

  std::printf("{\n");
  std::printf("  \"bench\": \"snapshot_warmstart\",\n");
  std::printf("  \"kernel\": \"sor\", \"nd\": %u, \"variants\": %zu,\n", nd,
              variants);
  std::printf("  \"snapshot_bytes\": %llu,\n",
              static_cast<unsigned long long>(snapshot_bytes));
  std::printf("  \"cold\": {\"sweep_seconds\": %g},\n", cold_seconds);
  std::printf("  \"save\": {\"seconds\": %g},\n", save_seconds);
  std::printf(
      "  \"warm\": {\"load_seconds\": %g, \"sweep_seconds\": %g, "
      "\"variant_hits\": %llu, \"misses\": %llu},\n",
      load_seconds, warm_seconds,
      static_cast<unsigned long long>(warm_variant_hits),
      static_cast<unsigned long long>(warm_misses));
  std::printf("  \"verify\": {\"seconds\": %g, \"mb_per_sec\": %g},\n",
              verify_seconds,
              verify_seconds > 0
                  ? (static_cast<double>(snapshot_bytes) / 1e6) / verify_seconds
                  : 0.0);
  std::printf("  \"warm_speedup_vs_cold\": %g\n",
              (load_seconds + warm_seconds) > 0
                  ? cold_seconds / (load_seconds + warm_seconds)
                  : 0.0);
  std::printf("}\n");

  std::remove(snap_path.c_str());
  if (warm_misses != 0 || warm_variant_hits == 0) {
    std::fprintf(stderr,
                 "warm start did not hit the variant level "
                 "(hits=%llu misses=%llu)\n",
                 static_cast<unsigned long long>(warm_variant_hits),
                 static_cast<unsigned long long>(warm_misses));
    return 1;
  }
  return 0;
}
