// tytra-cc: the TyTra back-end compiler driver (TyBEC). Parses a textual
// TyTra-IR design, verifies it, and either costs it against a target
// device or emits synthesizeable Verilog — the two paths of Fig. 11.
//
// Usage:
//   tytra-cc <design.tirl> [options]
//     --target <file.tgt>   device description (default: stratix-v-gsd8)
//     --preset <name>       stratix-v-gsd8 | virtex7-690t | fig15
//     --cost                print the cost report (default action)
//     --params              print the extracted Table-I parameters
//     --tree                print the configuration tree (Fig. 8)
//     --emit-hdl <out.v>    generate Verilog into the given file
//     --print-ir            echo the parsed IR back (round-trip)

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "tytra/codegen/verilog.hpp"
#include "tytra/cost/report.hpp"
#include "tytra/ir/analysis.hpp"
#include "tytra/ir/parser.hpp"
#include "tytra/ir/printer.hpp"
#include "tytra/ir/verifier.hpp"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: tytra-cc <design.tirl> [--target file.tgt | --preset "
               "name] [--cost] [--params] [--tree] [--emit-hdl out.v] "
               "[--print-ir]\n");
  return 2;
}

bool read_file(const std::string& path, std::string& out) {
  std::ifstream in(path);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  out = ss.str();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tytra;

  if (argc < 2) return usage();
  const std::string input_path = argv[1];

  std::string target_path;
  std::string preset = "stratix-v-gsd8";
  std::string hdl_path;
  bool do_cost = false;
  bool do_params = false;
  bool do_tree = false;
  bool do_print = false;

  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--target" && i + 1 < argc) target_path = argv[++i];
    else if (arg == "--preset" && i + 1 < argc) preset = argv[++i];
    else if (arg == "--cost") do_cost = true;
    else if (arg == "--params") do_params = true;
    else if (arg == "--tree") do_tree = true;
    else if (arg == "--print-ir") do_print = true;
    else if (arg == "--emit-hdl" && i + 1 < argc) hdl_path = argv[++i];
    else return usage();
  }
  if (!do_cost && !do_params && !do_tree && !do_print && hdl_path.empty()) {
    do_cost = true;
  }

  std::string source;
  if (!read_file(input_path, source)) {
    std::fprintf(stderr, "tytra-cc: cannot read '%s'\n", input_path.c_str());
    return 1;
  }

  auto parsed = ir::parse_module(source);
  if (!parsed.ok()) {
    std::fprintf(stderr, "tytra-cc: %s\n", parsed.error_message().c_str());
    return 1;
  }
  for (const auto& w : parsed.value().warnings.all()) {
    std::fprintf(stderr, "tytra-cc: %s\n", w.to_string().c_str());
  }
  const ir::Module module = std::move(parsed).take().module;

  const auto diags = ir::verify(module);
  for (const auto& d : diags.all()) {
    std::fprintf(stderr, "tytra-cc: %s\n", d.to_string().c_str());
  }
  if (diags.has_errors()) return 1;

  target::DeviceDesc device;
  if (!target_path.empty()) {
    std::string text;
    if (!read_file(target_path, text)) {
      std::fprintf(stderr, "tytra-cc: cannot read '%s'\n", target_path.c_str());
      return 1;
    }
    auto parsed_target = target::parse_target(text);
    if (!parsed_target.ok()) {
      std::fprintf(stderr, "tytra-cc: %s\n",
                   parsed_target.error_message().c_str());
      return 1;
    }
    device = parsed_target.value();
  } else if (preset == "stratix-v-gsd8") {
    device = target::stratix_v_gsd8();
  } else if (preset == "virtex7-690t") {
    device = target::virtex7_690t();
  } else if (preset == "fig15") {
    device = target::fig15_profile();
  } else {
    std::fprintf(stderr, "tytra-cc: unknown preset '%s'\n", preset.c_str());
    return 1;
  }

  if (do_print) {
    std::printf("%s", ir::print_module(module).c_str());
  }
  if (do_tree) {
    std::printf("%s", ir::format_config_tree(ir::build_config_tree(module)).c_str());
    std::printf("configuration class: %s\n",
                std::string(ir::config_class_name(ir::classify_config(module)))
                    .c_str());
  }
  if (do_params) {
    const ir::DesignParams p = ir::extract_params(module);
    std::printf("NGS=%llu NWPT=%.1f NKI=%u Noff=%llu KPD=%d NTO=%.2f NI=%.1f "
                "KNL=%u DV=%u form=%s\n",
                static_cast<unsigned long long>(p.ngs), p.nwpt, p.nki,
                static_cast<unsigned long long>(p.noff), p.kpd, p.nto, p.ni,
                p.knl, p.dv, std::string(ir::exec_form_name(p.form)).c_str());
  }
  if (do_cost) {
    const auto db = cost::DeviceCostDb::calibrate(device);
    std::printf("%s", cost::format_report(cost::cost_design(module, db)).c_str());
  }
  if (!hdl_path.empty()) {
    const auto design = codegen::emit_verilog(module);
    std::ofstream out(hdl_path);
    if (!out) {
      std::fprintf(stderr, "tytra-cc: cannot write '%s'\n", hdl_path.c_str());
      return 1;
    }
    out << design.source;
    std::printf("tytra-cc: wrote %zu bytes to %s (top %s, KPD %d)\n",
                design.source.size(), hdl_path.c_str(),
                design.top_module.c_str(), design.pipeline_depth);
  }
  return 0;
}
