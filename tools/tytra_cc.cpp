// tytra-cc: the TyTra back-end compiler driver (TyBEC). Parses a textual
// TyTra-IR design, verifies it, and either costs it against a target
// device or emits synthesizeable Verilog — the two paths of Fig. 11 —
// or drives the DSE engine (dse::Session) over the workload registry.
//
// Usage:
//   tytra-cc <design.tirl> [options]            cost / analyze / emit HDL
//   tytra-cc explore <kernel> [options]         sweep one kernel's variants
//   tytra-cc tune <kernel> [options]            walk the feedback path
//   tytra-cc campaign [options]                 {kernel x size x device} batch
//   tytra-cc list [--names]                     enumerate registered kernels
//
// The kernel list, usage text and name validation all come from
// kernels::Registry — registering a workload is the only step needed for
// it to appear here. Devices are the target presets or any .tgt file.

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "tytra/codegen/verilog.hpp"
#include "tytra/cost/calibration.hpp"
#include "tytra/cost/report.hpp"
#include "tytra/dse/cancel.hpp"
#include "tytra/dse/session.hpp"
#include "tytra/ir/analysis.hpp"
#include "tytra/ir/lint.hpp"
#include "tytra/ir/parser.hpp"
#include "tytra/ir/printer.hpp"
#include "tytra/ir/verifier.hpp"
#include "tytra/kernels/file_workload.hpp"
#include "tytra/kernels/lint_driver.hpp"
#include "tytra/kernels/registry.hpp"
#include "tytra/support/framing.hpp"
#include "tytra/support/json.hpp"
#include "tytra/target/device.hpp"

namespace {

using namespace tytra;

/// Exit code for a run cut short by Ctrl-C: 128 + SIGINT, the shell
/// convention scripts already test for.
constexpr int kExitInterrupted = 130;

/// The process-wide cancellation token the SIGINT handler flips. The DSE
/// session polls it between variant batches, so a long campaign winds
/// down at the next batch boundary instead of dying mid-write.
dse::CancelToken g_cancel;  // NOLINT(cppcoreguidelines-avoid-non-const-global-variables)

extern "C" void handle_signal(int sig) {
  // request_cancel is a relaxed atomic store — async-signal-safe. Restore
  // the default disposition so a second Ctrl-C (or a follow-up SIGTERM
  // from a supervisor's kill escalation) ends the process outright if the
  // cooperative wind-down is not fast enough.
  g_cancel.request_cancel();
  std::signal(sig, SIG_DFL);
}

/// SIGINT and SIGTERM share the cooperative-cancellation contract: wind
/// down at the next variant boundary, keep every completed job's results,
/// exit 130. Ctrl-C and a service manager's stop request look the same.
void install_signal_cancel() {
  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);
}

std::string kernel_list() {
  return kernels::Registry::instance().names_joined();
}

std::string preset_list() {
  std::string out;
  for (const auto& name : target::preset_names()) {
    if (!out.empty()) out += "|";
    out += name;
  }
  return out;
}

std::string usage_text() {
  const std::string kernels = kernel_list();
  const std::string presets = preset_list();
  std::string out;
  out += "usage: tytra-cc <design.tirl> [--target file.tgt | --preset name] "
         "[--cost] [--params] [--tree] [--emit-hdl out.v] [--print-ir]\n";
  out += "       tytra-cc explore <" + kernels + " | --ir file.tir> [--nd dim] "
         "[--max-lanes n] [--jobs n] [--pareto] [--json] [--snapshot file] "
         "[--deadline-ms n] [--device " + presets + "|file.tgt]\n";
  out += "       tytra-cc tune <" + kernels + " | --ir file.tir> [--nd dim] "
         "[--max-steps n] [--max-lanes n] [--json] [--snapshot file] "
         "[--deadline-ms n] [--device " + presets + "|file.tgt]\n";
  out += "       tytra-cc campaign [--kernel name]... [--ir file.tir]... "
         "[--nd dim]... [--device name|file.tgt]... [--max-lanes n] [--jobs n] "
         "[--pareto] [--json] [--snapshot file] [--deadline-ms n] "
         "[--on-error continue|abort]\n";
  out += "       tytra-cc cache dump <file> [campaign flags] | "
         "load <file> | inspect <file> | verify <file>\n";
  out += "       tytra-cc list [--names] [--json] [--ir file.tir]...\n";
  out += "       tytra-cc lint [<kernel>]... [--ir file.tir]... [--nd dim] "
         "[--device " + presets + "|file.tgt] [--json] "
         "[--fail-on error|warning] [--rules]\n";
  out += "       tytra-cc [explore|tune|campaign|list|lint] --server SOCKET "
         "...   run via a tytra-dsed daemon (same output, shared warm cache)\n";
  out += "       tytra-cc [ping|shutdown] --server SOCKET\n";
  return out;
}

int usage() {
  std::fprintf(stderr, "%s", usage_text().c_str());
  return 2;
}

/// One-line error + usage pointer: every malformed invocation exits
/// through here (or a sibling single-fprintf path), so diagnostics are
/// uniform and stdout stays empty.
int flag_error(const std::string& message) {
  std::fprintf(stderr, "tytra-cc: %s (see tytra-cc --help)\n", message.c_str());
  return 2;
}

bool read_file(const std::string& path, std::string& out) {
  std::ifstream in(path);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  out = ss.str();
  return true;
}

bool parse_u32(const char* text, std::uint32_t& out) {
  if (text[0] == '-' || text[0] == '+') return false;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text, &end, 10);
  if (end == text || *end != '\0' || v > 0xffffffffULL) return false;
  out = static_cast<std::uint32_t>(v);
  return true;
}

/// Resolves a --device argument: a preset name, a preset's device name
/// (the spelling the output tables print, e.g. "fig15-profile" — so a
/// name copied from tytra-cc's own output round-trips), or a path to a
/// .tgt file.
tytra::Result<target::DeviceDesc> resolve_device(const std::string& spec) {
  if (auto p = target::preset(spec)) return *p;
  for (const auto& name : target::preset_names()) {
    if (auto p = target::preset(name); p && p->name == spec) return *p;
  }
  std::string text;
  if (!read_file(spec, text)) {
    return tytra::make_error("unknown device '" + spec + "' (presets: " +
                             preset_list() + "; or a readable .tgt file)");
  }
  return target::parse_target(text);
}

// ---------------------------------------------------------------------------
// Explore-family subcommands (Session + Registry driven)
// ---------------------------------------------------------------------------

struct ExploreSpec {
  std::string kernel;
  std::vector<std::string> irs;  ///< `.tir` files to register as workloads
  std::optional<std::uint32_t> nd;  ///< default: the workload's default_nd
  std::uint32_t max_lanes{16};
  std::uint32_t jobs{0};
  int max_steps{12};
  bool pareto{false};
  bool json{false};
  std::vector<std::string> devices;  ///< empty: stratix-v-gsd8
  /// Snapshot file to warm-start from and save back to (--snapshot).
  std::string snapshot;
  /// Suppress the result tables (`cache dump` wants only the summary).
  bool quiet{false};
  /// Wall-clock budget per job in milliseconds; 0 = no deadline.
  std::uint32_t deadline_ms{0};
  /// Campaign policy when a job fails or times out: abort (default —
  /// stderr diagnostic, nonzero exit, empty stdout, matching the old
  /// fail-the-whole-campaign contract) or continue (report per-job
  /// status, exit 0).
  bool on_error_abort{true};
  /// tytra-dsed socket path (--server). When set the command is shipped
  /// to the daemon over the frame protocol instead of run in-process;
  /// output and exit code are byte-identical to a standalone run.
  std::string server;
};

/// Saves the session snapshot when the spec asked for one. Failures are
/// loud and nonzero: the user explicitly requested persistence, so a
/// snapshot that cannot be written is an error, not a degradation.
int save_spec_snapshot(dse::Session& session, const ExploreSpec& spec) {
  if (spec.snapshot.empty()) return 0;
  const auto written = session.save_snapshot(spec.snapshot);
  if (!written.ok()) {
    std::fprintf(stderr, "tytra-cc: %s\n", written.diag().message.c_str());
    return 1;
  }
  return 0;
}

/// Builds the registry job for the spec and runs it through a session
/// holding the resolved devices. `mode` is "explore" or "tune".
int run_job_command(const std::string& mode, const ExploreSpec& spec) {
  const auto& registry = kernels::Registry::instance();
  const kernels::WorkloadInfo* info = registry.find(spec.kernel);
  if (!info) {
    std::fprintf(stderr, "tytra-cc: unknown kernel '%s' (%s)\n",
                 spec.kernel.c_str(), kernel_list().c_str());
    return 1;
  }
  const std::uint32_t nd = spec.nd.value_or(info->default_nd);
  auto job_r = registry.make_job(spec.kernel, nd);
  if (!job_r.ok()) {
    std::fprintf(stderr, "tytra-cc: %s\n", job_r.error_message().c_str());
    return 1;
  }

  if (spec.max_lanes == 0) {
    std::fprintf(stderr, "tytra-cc: --max-lanes must be >= 1\n");
    return 1;
  }
  dse::SessionOptions so;
  so.max_lanes = spec.max_lanes;
  so.num_threads = spec.jobs;
  // A single-shot explore/tune evaluates each variant exactly once, so a
  // per-invocation cache would be pure keying + insert overhead; only
  // `campaign` (repeat sizes, sweep-then-tune patterns) warms one.
  // --snapshot changes that calculus: the cache IS the artifact being
  // persisted, and the next process's warm start pays for it.
  so.enable_cache = !spec.snapshot.empty();
  so.snapshot_path = spec.snapshot;
  so.cancel = &g_cancel;
  so.deadline_seconds = spec.deadline_ms / 1000.0;
  install_signal_cancel();

  try {
    dse::Session session(so);
    const std::string device_spec =
        spec.devices.empty() ? std::string("stratix-v-gsd8") : spec.devices[0];
    auto device = resolve_device(device_spec);
    if (!device.ok()) {
      std::fprintf(stderr, "tytra-cc: %s\n", device.error_message().c_str());
      return 1;
    }
    const auto& db = session.add_device(device.value());
    dse::Job job = std::move(job_r).take();
    job.device = db.device().name;

    if (mode == "tune") {
      job.max_steps = spec.max_steps;
      const dse::TuneResult result = session.tune(job);
      if (const int rc = save_spec_snapshot(session, spec)) return rc;
      if (spec.json) {
        std::printf("%s", dse::format_tune_json(result).c_str());
      } else {
        std::printf("tuning %s on %s (nd=%u, %llu work-items)\n",
                    spec.kernel.c_str(), db.device().name.c_str(), nd,
                    static_cast<unsigned long long>(job.n));
        std::printf("%s", dse::format_tune(result).c_str());
      }
      return 0;
    }

    const dse::DseResult result = session.explore(job);
    if (const int rc = save_spec_snapshot(session, spec)) return rc;
    if (spec.json) {
      std::printf("%s", dse::format_sweep_json(result).c_str());
      return 0;
    }
    std::printf("exploring %s on %s: %zu variants in %.3f s\n",
                spec.kernel.c_str(), db.device().name.c_str(),
                result.entries.size(), result.explore_seconds);
    std::printf("%s", dse::format_sweep(result).c_str());
    if (spec.pareto) {
      std::printf("\npareto frontier (EKIT vs utilization vs bandwidth share):\n");
      std::printf("%s", dse::format_pareto(result).c_str());
    }
  } catch (const dse::CancelledError&) {
    // Ctrl-C: no partial tables were written (results only print after
    // the job completes), so stdout is clean — just say why we stopped.
    std::fprintf(stderr, "tytra-cc: %s interrupted\n", mode.c_str());
    return kExitInterrupted;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "tytra-cc: %s failed: %s\n", mode.c_str(), e.what());
    return 1;
  }
  return 0;
}

int run_campaign(const ExploreSpec& spec,
                 const std::vector<std::string>& kernel_names,
                 const std::vector<std::uint32_t>& nds) {
  const auto& registry = kernels::Registry::instance();
  if (spec.max_lanes == 0) {
    std::fprintf(stderr, "tytra-cc: --max-lanes must be >= 1\n");
    return 1;
  }

  dse::SessionOptions so;
  so.max_lanes = spec.max_lanes;
  so.num_threads = spec.jobs;
  so.snapshot_path = spec.snapshot;
  so.cancel = &g_cancel;
  so.deadline_seconds = spec.deadline_ms / 1000.0;
  install_signal_cancel();
  try {
    dse::Session session(so);

    // Devices: resolve each spec, dedupe by resolved name, keep order.
    std::vector<std::string> device_names;
    const std::vector<std::string> specs =
        spec.devices.empty() ? std::vector<std::string>{"stratix-v-gsd8"}
                             : spec.devices;
    for (const auto& s : specs) {
      auto device = resolve_device(s);
      if (!device.ok()) {
        std::fprintf(stderr, "tytra-cc: %s\n", device.error_message().c_str());
        return 1;
      }
      if (session.find_device(device.value().name)) continue;  // repeat spec
      session.add_device(device.value());
      device_names.push_back(device.value().name);
    }

    // Workloads: named ones, or every registered kernel.
    const std::vector<std::string> kernels_to_run =
        kernel_names.empty() ? registry.names() : kernel_names;

    // The {workload x size x device} fan-out, through one shared cache.
    dse::Campaign campaign;
    for (const auto& kernel : kernels_to_run) {
      const kernels::WorkloadInfo* info = registry.find(kernel);
      if (!info) {
        std::fprintf(stderr, "tytra-cc: unknown kernel '%s' (%s)\n",
                     kernel.c_str(), kernel_list().c_str());
        return 1;
      }
      const std::vector<std::uint32_t> sizes =
          nds.empty() ? std::vector<std::uint32_t>{info->default_nd} : nds;
      for (const std::uint32_t nd : sizes) {
        auto job_r = registry.make_job(kernel, nd);
        if (!job_r.ok()) {
          std::fprintf(stderr, "tytra-cc: %s\n", job_r.error_message().c_str());
          return 1;
        }
        for (const auto& device : device_names) {
          dse::Job job = job_r.value();
          job.device = device;
          campaign.jobs.push_back(std::move(job));
        }
      }
    }

    const dse::CampaignResult result = session.run(campaign);
    const bool interrupted = g_cancel.cancelled();

    if (!interrupted && spec.on_error_abort && result.degraded() > 0) {
      // Abort policy (the default): a failed or timed-out job fails the
      // whole invocation before anything reaches stdout — the
      // pre-failure-model contract (nonzero exit, empty stdout, stderr
      // names the first casualty). No snapshot is written either, same
      // as when the failure used to propagate as an exception.
      for (const auto& jr : result.jobs) {
        if (jr.status.ok()) continue;
        std::fprintf(stderr,
                     "tytra-cc: campaign: job '%s' (nd=%u, %s) %s: %s "
                     "(use --on-error continue to keep surviving jobs)\n",
                     jr.job.workload.c_str(), jr.job.nd,
                     jr.job.device.c_str(),
                     std::string(dse::job_state_name(jr.status.state)).c_str(),
                     jr.status.error.c_str());
        return 1;
      }
    }
    if (const int rc = save_spec_snapshot(session, spec)) return rc;

    // The whole report is composed off-line and written with one fwrite:
    // an interrupt stops the run early (the token is polled between
    // variants), but it can never leave a half-written table on stdout.
    std::string out;
    if (spec.quiet) {
      const dse::CostCache* cache = session.cache();
      out = "snapshot: wrote " + spec.snapshot +
            " (structural=" + std::to_string(cache ? cache->size() : 0) +
            " variant=" + std::to_string(cache ? cache->variant_size() : 0) +
            " calibrations=" + std::to_string(session.device_names().size()) +
            ")\n";
    } else if (spec.json) {
      out = dse::format_campaign_json(result);
    } else {
      char head[160];
      std::snprintf(head, sizeof head,
                    "campaign: %zu jobs (%zu kernels x %zu device(s)) in "
                    "%.3f s\n",
                    result.jobs.size(), kernels_to_run.size(),
                    device_names.size(), result.campaign_seconds);
      out = head;
      out += dse::format_campaign(result);
      if (spec.pareto) {
        out += "\nmerged pareto frontier across all jobs:\n";
        out += dse::format_campaign_pareto(result);
      }
    }
    std::fwrite(out.data(), 1, out.size(), stdout);
    if (interrupted) {
      std::size_t cancelled = 0;
      for (const auto& jr : result.jobs) {
        if (jr.status.state == dse::JobState::Cancelled) ++cancelled;
      }
      std::fprintf(stderr,
                   "tytra-cc: campaign interrupted (%zu of %zu jobs "
                   "cancelled; completed results above)\n",
                   cancelled, result.jobs.size());
      return kExitInterrupted;
    }
  } catch (const dse::CancelledError&) {
    std::fprintf(stderr, "tytra-cc: campaign interrupted\n");
    return kExitInterrupted;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "tytra-cc: campaign failed: %s\n", e.what());
    return 1;
  }
  return 0;
}

/// Registers every --ir file as a workload named after its path. Prints
/// the loader's diagnostic to stderr and fails (before any stdout output)
/// when a file is unreadable, unparsable or unverifiable. With
/// `announce_lint` the loader's advisory ir::lint findings go to stderr
/// too (never failing the command); the lint subcommand passes false so
/// its own report is the only rendering of the findings.
bool register_ir_files(const std::vector<std::string>& irs,
                       bool announce_lint = true) {
  for (const auto& path : irs) {
    std::vector<tytra::Diag> lint;
    auto added = kernels::register_file_workload(kernels::Registry::instance(),
                                                 path, &lint);
    if (!added.ok()) {
      std::fprintf(stderr, "tytra-cc: %s\n", added.error_message().c_str());
      return false;
    }
    if (announce_lint) {
      for (const auto& d : lint) {
        std::fprintf(stderr, "tytra-cc: %s: %s\n", path.c_str(),
                     d.to_string().c_str());
      }
    }
  }
  return true;
}

int run_list(bool names_only, bool json) {
  const auto& registry = kernels::Registry::instance();
  if (names_only) {
    for (const auto& info : registry.all()) {
      std::printf("%s\n", info.name.c_str());
    }
    return 0;
  }
  // Shared renderers (kernels/registry.hpp): the daemon's `list` response
  // is composed from the same functions, so the two cannot drift.
  const std::string out = json ? kernels::format_registry_json(registry)
                               : kernels::format_registry(registry);
  std::fwrite(out.data(), 1, out.size(), stdout);
  return 0;
}

// ---------------------------------------------------------------------------
// `tytra-cc lint`: the ir::lint pass framework over registered workloads
// ---------------------------------------------------------------------------

int run_via_server(const std::string& socket_path, const std::string& request);

/// `tytra-cc lint [<kernel>]... [--ir f.tir]... [--nd n] [--device d]
/// [--json] [--fail-on error|warning] [--rules] [--server S]`. Exit 0 =
/// no finding at/above the threshold, 1 = findings or a runtime error
/// (empty stdout), 2 = usage. The report itself is composed by
/// kernels::run_lint_driver — the same function the daemon's `lint` verb
/// renders through, so the two outputs cannot drift.
int run_lint_command(int argc, char** argv) {
  std::vector<std::string> targets;
  std::vector<std::string> irs;
  std::uint32_t nd = 0;
  std::string device_spec = "stratix-v-gsd8";
  bool json = false;
  bool rules = false;
  std::string fail_on = "error";
  std::string server;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--rules") { rules = true; continue; }
    if (arg == "--json") { json = true; continue; }
    const bool takes_value = arg == "--ir" || arg == "--nd" ||
                             arg == "--device" || arg == "--fail-on" ||
                             arg == "--server";
    if (takes_value && i + 1 >= argc) {
      return flag_error("lint: " + arg + " requires a value");
    }
    if (arg == "--ir") {
      irs.emplace_back(argv[++i]);
    } else if (arg == "--nd") {
      if (!parse_u32(argv[++i], nd) || nd == 0) {
        return flag_error("lint: --nd: '" + std::string(argv[i]) +
                          "' is not a positive integer");
      }
    } else if (arg == "--device") {
      device_spec = argv[++i];
    } else if (arg == "--fail-on") {
      fail_on = argv[++i];
      if (fail_on != "error" && fail_on != "warning") {
        return flag_error("lint: --fail-on: '" + fail_on +
                          "' is not error|warning");
      }
    } else if (arg == "--server") {
      server = argv[++i];
    } else if (arg[0] == '-') {
      return flag_error("lint: unknown or incomplete flag '" + arg + "'");
    } else {
      targets.emplace_back(arg);
    }
  }

  if (rules) {
    const std::string out =
        ir::lint::format_rules(ir::lint::Registry::instance());
    std::fwrite(out.data(), 1, out.size(), stdout);
    return 0;
  }

  // The lint report is the one rendering of the findings; suppress the
  // loader's advisory stderr announcements to avoid printing them twice.
  if (!register_ir_files(irs, /*announce_lint=*/false)) return 1;
  targets.insert(targets.end(), irs.begin(), irs.end());
  auto& registry = kernels::Registry::instance();
  for (const auto& t : targets) {
    // Validate locally in both modes, so the unknown-workload diagnostic
    // is byte-identical with and without --server.
    if (!registry.find(t)) {
      std::fprintf(stderr, "tytra-cc: unknown workload '%s' (registered: %s)\n",
                   t.c_str(), kernel_list().c_str());
      return 1;
    }
  }

  if (!server.empty()) {
    // "All workloads" means the CLIENT's registry, exactly like campaign:
    // another client's IR registrations on the daemon must not leak in.
    const std::vector<std::string> expanded =
        targets.empty() ? registry.names() : targets;
    std::ostringstream os;
    os << "{\"cmd\": \"lint\", \"targets\": [";
    for (std::size_t i = 0; i < expanded.size(); ++i) {
      os << (i ? ", " : "") << "\"" << json::escape(expanded[i]) << "\"";
    }
    os << "]";
    if (nd != 0) os << ", \"nd\": " << nd;
    os << ", \"json\": " << (json ? "true" : "false") << ", \"fail_on\": \""
       << fail_on << "\", \"devices\": [\"" << json::escape(device_spec)
       << "\"]";
    if (!irs.empty()) {
      os << ", \"irs\": [";
      for (std::size_t i = 0; i < irs.size(); ++i) {
        std::string text;
        if (!read_file(irs[i], text)) {
          std::fprintf(stderr, "tytra-cc: cannot read '%s'\n", irs[i].c_str());
          return 1;
        }
        os << (i ? ", " : "") << "{\"name\": \"" << json::escape(irs[i])
           << "\", \"source\": \"" << json::escape(text) << "\"}";
      }
      os << "]";
    }
    os << "}";
    return run_via_server(server, os.str());
  }

  auto device = resolve_device(device_spec);
  if (!device.ok()) {
    std::fprintf(stderr, "tytra-cc: %s\n", device.error_message().c_str());
    return 1;
  }
  const cost::DeviceCostDb db = cost::DeviceCostDb::calibrate(device.value());

  kernels::LintDriverOptions opts;
  opts.targets = std::move(targets);
  opts.nd = nd;
  opts.db = &db;
  opts.json = json;
  opts.fail_on = fail_on == "warning" ? ir::lint::FailOn::Warning
                                      : ir::lint::FailOn::Error;
  const kernels::LintDriverResult result =
      kernels::run_lint_driver(registry, opts);
  if (!result.err.empty()) {
    std::fprintf(stderr, "tytra-cc: %s\n", result.err.c_str());
  }
  std::fwrite(result.out.data(), 1, result.out.size(), stdout);
  return result.exit_code;
}

// ---------------------------------------------------------------------------
// Client mode (--server): ship the command to a tytra-dsed daemon
// ---------------------------------------------------------------------------

/// Appends the request fields shared by explore/tune/campaign, including
/// the --ir files' *content* (the daemon registers them server-side; its
/// filesystem never needs to see the paths).
bool append_common_fields(std::ostringstream& os, const ExploreSpec& spec) {
  os << ", \"max_lanes\": " << spec.max_lanes << ", \"json\": "
     << (spec.json ? "true" : "false") << ", \"pareto\": "
     << (spec.pareto ? "true" : "false") << ", \"on_error\": \""
     << (spec.on_error_abort ? "abort" : "continue") << "\"";
  if (spec.deadline_ms != 0) os << ", \"deadline_ms\": " << spec.deadline_ms;
  if (!spec.devices.empty()) {
    os << ", \"devices\": [";
    for (std::size_t i = 0; i < spec.devices.size(); ++i) {
      os << (i ? ", " : "") << "\"" << json::escape(spec.devices[i]) << "\"";
    }
    os << "]";
  }
  if (!spec.irs.empty()) {
    os << ", \"irs\": [";
    for (std::size_t i = 0; i < spec.irs.size(); ++i) {
      std::string text;
      if (!read_file(spec.irs[i], text)) {
        std::fprintf(stderr, "tytra-cc: cannot read '%s'\n",
                     spec.irs[i].c_str());
        return false;
      }
      os << (i ? ", " : "") << "{\"name\": \"" << json::escape(spec.irs[i])
         << "\", \"source\": \"" << json::escape(text) << "\"}";
    }
    os << "]";
  }
  return true;
}

/// Sends one request frame and streams the response: per-job progress
/// frames are consumed silently (the final frame carries the standalone
/// run's full stdout/stderr), "result"/"error" terminate with the
/// daemon's exit code — so `tytra-cc --server ...` is byte- and
/// exit-code-identical to the same command run standalone.
int run_via_server(const std::string& socket_path, const std::string& request) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    std::fprintf(stderr, "tytra-cc: socket: %s\n", std::strerror(errno));
    return 1;
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof(addr.sun_path)) {
    std::fprintf(stderr, "tytra-cc: --server path '%s' is too long\n",
                 socket_path.c_str());
    ::close(fd);
    return 1;
  }
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    std::fprintf(stderr,
                 "tytra-cc: cannot connect to server '%s': %s (is tytra-dsed "
                 "running?)\n",
                 socket_path.c_str(), std::strerror(errno));
    ::close(fd);
    return 1;
  }
  std::string err;
  if (!framing::write_frame(fd, request, err)) {
    std::fprintf(stderr, "tytra-cc: server write failed: %s\n", err.c_str());
    ::close(fd);
    return 1;
  }
  std::string payload;
  for (;;) {
    const framing::ReadStatus st = framing::read_frame(fd, payload, err);
    if (st == framing::ReadStatus::Eof) {
      std::fprintf(stderr, "tytra-cc: server disconnected\n");
      ::close(fd);
      return 1;
    }
    if (st == framing::ReadStatus::Error) {
      std::fprintf(stderr, "tytra-cc: %s\n", err.c_str());
      ::close(fd);
      return 1;
    }
    auto parsed = json::parse(payload);
    if (!parsed.ok() || !parsed.value().is_object()) {
      std::fprintf(stderr, "tytra-cc: bad frame from server: %s\n",
                   parsed.ok() ? "not an object"
                               : parsed.diag().message.c_str());
      ::close(fd);
      return 1;
    }
    const json::Value frame = std::move(parsed).take();
    const std::string type = frame.get_string("type").value_or("");
    if (type == "job") continue;  // per-job progress; the result frame
                                  // carries the composed stdout
    if (type == "pong") {
      std::printf("%s\n", payload.c_str());
      ::close(fd);
      return 0;
    }
    const int exit_code =
        static_cast<int>(frame.get_number("exit").value_or(1));
    if (type == "result") {
      const std::string out = frame.get_string("stdout").value_or("");
      std::fwrite(out.data(), 1, out.size(), stdout);
      const std::string errout = frame.get_string("stderr").value_or("");
      if (!errout.empty()) {
        std::fwrite(errout.data(), 1, errout.size(), stderr);
      }
      ::close(fd);
      return exit_code;
    }
    if (type == "error") {
      std::fprintf(stderr, "tytra-cc: %s\n",
                   frame.get_string("message").value_or("server error")
                       .c_str());
      ::close(fd);
      return exit_code;
    }
    std::fprintf(stderr, "tytra-cc: unexpected frame type '%s' from server\n",
                 type.c_str());
    ::close(fd);
    return 1;
  }
}

/// explore/tune via the daemon. The kernel was already validated against
/// the local registry (which saw the same --ir files), so error paths
/// match standalone byte-for-byte.
int run_job_via_server(const std::string& mode, const ExploreSpec& spec) {
  std::ostringstream os;
  os << "{\"cmd\": \"" << mode << "\", \"kernel\": \""
     << json::escape(spec.kernel) << "\"";
  if (spec.nd) os << ", \"nd\": " << *spec.nd;
  if (mode == "tune") os << ", \"max_steps\": " << spec.max_steps;
  if (!append_common_fields(os, spec)) return 1;
  os << "}";
  return run_via_server(spec.server, os.str());
}

/// campaign via the daemon. The client expands the kernel list itself
/// (registry order, --ir paths appended), so "every registered kernel"
/// means the CLIENT's registry — another client's IR registrations on the
/// daemon can never leak into this campaign.
int run_campaign_via_server(const ExploreSpec& spec,
                            const std::vector<std::string>& kernel_names,
                            const std::vector<std::uint32_t>& nds) {
  const auto& registry = kernels::Registry::instance();
  if (spec.max_lanes == 0) {
    std::fprintf(stderr, "tytra-cc: --max-lanes must be >= 1\n");
    return 1;
  }
  const std::vector<std::string> kernels_to_run =
      kernel_names.empty() ? registry.names() : kernel_names;
  for (const auto& kernel : kernels_to_run) {
    if (!registry.find(kernel)) {
      std::fprintf(stderr, "tytra-cc: unknown kernel '%s' (%s)\n",
                   kernel.c_str(), kernel_list().c_str());
      return 1;
    }
  }
  std::ostringstream os;
  os << "{\"cmd\": \"campaign\", \"kernels\": [";
  for (std::size_t i = 0; i < kernels_to_run.size(); ++i) {
    os << (i ? ", " : "") << "\"" << json::escape(kernels_to_run[i]) << "\"";
  }
  os << "]";
  if (!nds.empty()) {
    os << ", \"nds\": [";
    for (std::size_t i = 0; i < nds.size(); ++i) {
      os << (i ? ", " : "") << nds[i];
    }
    os << "]";
  }
  if (!append_common_fields(os, spec)) return 1;
  os << "}";
  return run_via_server(spec.server, os.str());
}

/// Parses one flag shared by explore/tune/campaign (and `cache dump`).
/// Returns the empty string on success, otherwise a one-line diagnostic
/// naming exactly what was wrong — the caller prints it and exits nonzero
/// before any stdout output.
std::string parse_explore_flags(int argc, char** argv, int& i,
                                ExploreSpec& spec,
                                std::vector<std::string>* kernels,
                                std::vector<std::uint32_t>* nds) {
  const std::string arg = argv[i];
  const bool takes_value = arg == "--nd" || arg == "--max-lanes" ||
                           arg == "--jobs" || arg == "--max-steps" ||
                           arg == "--device" || arg == "--preset" ||
                           arg == "--target" || arg == "--kernel" ||
                           arg == "--ir" || arg == "--snapshot" ||
                           arg == "--deadline-ms" || arg == "--on-error" ||
                           arg == "--server";
  if (takes_value && i + 1 >= argc) return arg + " requires a value";
  if (arg == "--nd") {
    std::uint32_t nd = 0;
    if (!parse_u32(argv[++i], nd)) {
      return "--nd: '" + std::string(argv[i]) + "' is not an unsigned integer";
    }
    spec.nd = nd;
    if (nds) nds->push_back(nd);
  } else if (arg == "--max-lanes") {
    if (!parse_u32(argv[++i], spec.max_lanes)) {
      return "--max-lanes: '" + std::string(argv[i]) +
             "' is not an unsigned integer";
    }
  } else if (arg == "--jobs") {
    if (!parse_u32(argv[++i], spec.jobs)) {
      return "--jobs: '" + std::string(argv[i]) +
             "' is not an unsigned integer";
    }
  } else if (arg == "--max-steps") {
    std::uint32_t steps = 0;
    if (!parse_u32(argv[++i], steps) || steps > 10000) {
      return "--max-steps: '" + std::string(argv[i]) +
             "' is not an unsigned integer <= 10000";
    }
    spec.max_steps = static_cast<int>(steps);
  } else if (arg == "--device" || arg == "--preset" || arg == "--target") {
    // Classic-mode spellings accepted as synonyms of --device.
    spec.devices.emplace_back(argv[++i]);
  } else if (arg == "--kernel") {
    if (!kernels) return "--kernel only applies to campaign";
    kernels->emplace_back(argv[++i]);
  } else if (arg == "--ir") {
    spec.irs.emplace_back(argv[++i]);
  } else if (arg == "--snapshot") {
    spec.snapshot = argv[++i];
  } else if (arg == "--server") {
    spec.server = argv[++i];
  } else if (arg == "--deadline-ms") {
    if (!parse_u32(argv[++i], spec.deadline_ms) || spec.deadline_ms == 0) {
      return "--deadline-ms: '" + std::string(argv[i]) +
             "' is not a positive integer";
    }
  } else if (arg == "--on-error") {
    const std::string policy = argv[++i];
    if (policy == "abort") {
      spec.on_error_abort = true;
    } else if (policy == "continue") {
      spec.on_error_abort = false;
    } else {
      return "--on-error: '" + policy + "' is not continue|abort";
    }
  } else if (arg == "--pareto") {
    spec.pareto = true;
  } else if (arg == "--json") {
    spec.json = true;
  } else {
    return "unknown flag '" + arg + "'";
  }
  return {};
}

/// The names of the snapshot container sections, for `cache inspect`.
const char* section_name(std::uint32_t id) {
  switch (id) {
    case 1: return "meta";
    case 2: return "structural";
    case 3: return "variant";
    case 4: return "calibration";
    default: return "unknown";
  }
}

/// `tytra-cc cache <dump|load|inspect|verify>`: the snapshot tooling.
/// dump runs a campaign-shaped workload purely to populate and persist a
/// cache; the other three operate on an existing snapshot file.
int run_cache(int argc, char** argv) {
  if (argc < 3) {
    return flag_error("cache needs an action: dump|load|inspect|verify");
  }
  const std::string action = argv[2];

  if (action == "dump") {
    if (argc < 4 || argv[3][0] == '-') {
      return flag_error("cache dump needs an output file before any flags");
    }
    ExploreSpec spec;
    spec.snapshot = argv[3];
    spec.quiet = true;
    std::vector<std::string> kernels_arg;
    std::vector<std::uint32_t> nds_arg;
    for (int i = 4; i < argc; ++i) {
      const std::string err =
          parse_explore_flags(argc, argv, i, spec, &kernels_arg, &nds_arg);
      if (!err.empty()) return flag_error("cache dump: " + err);
    }
    if (!spec.server.empty()) {
      return flag_error("cache dump: --server is not supported (the daemon "
                        "owns its snapshot; use tytra-dsed --snapshot)");
    }
    if (!register_ir_files(spec.irs)) return 1;
    kernels_arg.insert(kernels_arg.end(), spec.irs.begin(), spec.irs.end());
    return run_campaign(spec, kernels_arg, nds_arg);
  }

  if (action != "load" && action != "inspect" && action != "verify") {
    return flag_error("unknown cache action '" + action +
                      "' (dump|load|inspect|verify)");
  }
  if (argc < 4) {
    return flag_error("cache " + action + " needs a snapshot file");
  }
  if (argc > 4) {
    return flag_error("cache " + action + " takes exactly one snapshot file");
  }
  const std::string path = argv[3];

  if (action == "load") {
    // An explicit load is a command, not a warm-start opportunity: unlike
    // --snapshot (which degrades to cold), a file that cannot be loaded
    // is a hard error here.
    try {
      dse::Session session{dse::SessionOptions{}};
      const auto stats = session.load_snapshot(path);
      if (!stats.ok()) {
        std::fprintf(stderr, "tytra-cc: cache load: %s\n",
                     stats.diag().message.c_str());
        return 1;
      }
      std::printf("loaded %s: structural=%zu variant=%zu calibrations=%zu\n",
                  path.c_str(), stats.value().structural_entries,
                  stats.value().variant_entries, stats.value().calibrations);
      return 0;
    } catch (const std::exception& e) {
      std::fprintf(stderr, "tytra-cc: cache load failed: %s\n", e.what());
      return 1;
    }
  }

  // inspect / verify: the full offline integrity + payload walk.
  const auto summary = dse::verify_snapshot(path);
  if (!summary.ok()) {
    std::fprintf(stderr, "tytra-cc: cache %s: %s: %s\n", action.c_str(),
                 path.c_str(), summary.diag().message.c_str());
    return 1;
  }
  if (action == "verify") {
    std::printf("ok: %s (structural=%zu variant=%zu calibrations=%zu)\n",
                path.c_str(), summary.value().structural_entries,
                summary.value().variant_entries,
                summary.value().calibrations.size());
    return 0;
  }
  const dse::SnapshotSummary& s = summary.value();
  std::printf("snapshot %s: %llu bytes, container v%u, payload v%u\n",
              path.c_str(), static_cast<unsigned long long>(s.file_bytes),
              s.format_version, s.payload_version);
  auto reader = binio::Reader::open(path);
  if (reader.ok()) {
    for (const auto& sec : reader.value().sections()) {
      std::printf("  section %-12s id=%u offset=%llu size=%llu "
                  "checksum=%016llx\n",
                  section_name(sec.id), sec.id,
                  static_cast<unsigned long long>(sec.offset),
                  static_cast<unsigned long long>(sec.size),
                  static_cast<unsigned long long>(sec.checksum));
    }
  }
  std::printf("  entries: structural=%zu variant=%zu\n", s.structural_entries,
              s.variant_entries);
  for (const auto& [name, fingerprint] : s.calibrations) {
    std::printf("  calibration %s fingerprint=%016llx\n", name.c_str(),
                static_cast<unsigned long long>(fingerprint));
  }
  return 0;
}

int run_subcommand(const std::string& cmd, int argc, char** argv) {
  if (cmd == "cache") return run_cache(argc, argv);
  if (cmd == "lint") return run_lint_command(argc, argv);
  if (cmd == "list") {
    bool names_only = false;
    bool json = false;
    std::string server;
    std::vector<std::string> irs;
    for (int i = 2; i < argc; ++i) {
      if (std::strcmp(argv[i], "--names") == 0) names_only = true;
      else if (std::strcmp(argv[i], "--json") == 0) json = true;
      else if (std::strcmp(argv[i], "--ir") == 0 && i + 1 < argc)
        irs.emplace_back(argv[++i]);
      else if (std::strcmp(argv[i], "--server") == 0 && i + 1 < argc)
        server = argv[++i];
      else return flag_error("list: unknown or incomplete flag '" +
                             std::string(argv[i]) + "'");
    }
    if (!server.empty()) {
      if (names_only) {
        return flag_error("list: --names cannot be combined with --server");
      }
      ExploreSpec spec;
      spec.irs = irs;
      spec.server = server;
      spec.json = json;
      if (!register_ir_files(irs)) return 1;  // same local validation bytes
      std::ostringstream os;
      os << "{\"cmd\": \"list\"";
      if (!append_common_fields(os, spec)) return 1;
      os << "}";
      return run_via_server(server, os.str());
    }
    if (!register_ir_files(irs)) return 1;
    return run_list(names_only, json);
  }

  ExploreSpec spec;
  std::vector<std::string> kernels_arg;
  std::vector<std::uint32_t> nds_arg;
  int i = 2;
  if (cmd != "campaign" && i < argc && argv[i][0] != '-') {
    spec.kernel = argv[i++];
  }
  for (; i < argc; ++i) {
    const std::string err =
        parse_explore_flags(argc, argv, i, spec,
                            cmd == "campaign" ? &kernels_arg : nullptr,
                            cmd == "campaign" ? &nds_arg : nullptr);
    if (!err.empty()) return flag_error(cmd + ": " + err);
  }
  if (!spec.server.empty() && !spec.snapshot.empty()) {
    return flag_error(cmd + ": --snapshot cannot be combined with --server "
                            "(the daemon owns the snapshot)");
  }
  if (cmd == "campaign") {
    if (!register_ir_files(spec.irs)) return 1;
    // File workloads join the named-kernel list under their path names.
    kernels_arg.insert(kernels_arg.end(), spec.irs.begin(), spec.irs.end());
    if (!spec.server.empty()) {
      return run_campaign_via_server(spec, kernels_arg, nds_arg);
    }
    return run_campaign(spec, kernels_arg, nds_arg);
  }
  if (cmd != "explore" && cmd != "tune") return usage();
  if (spec.irs.size() > 1) {
    std::fprintf(stderr,
                 "tytra-cc: %s takes one --ir; use `tytra-cc campaign` for "
                 "multi-design runs\n",
                 cmd.c_str());
    return 2;
  }
  if (!spec.irs.empty() && !spec.kernel.empty()) {
    std::fprintf(stderr,
                 "tytra-cc: %s takes either a kernel name or --ir, not both\n",
                 cmd.c_str());
    return 2;
  }
  if (spec.irs.empty() && spec.kernel.empty()) {
    std::fprintf(stderr, "tytra-cc: %s needs a kernel name (%s) or --ir\n",
                 cmd.c_str(), kernel_list().c_str());
    return 2;
  }
  if (!spec.irs.empty()) {
    if (!register_ir_files(spec.irs)) return 1;
    spec.kernel = spec.irs.front();
  }
  if (spec.devices.size() > 1) {
    std::fprintf(stderr,
                 "tytra-cc: %s takes one --device; use `tytra-cc campaign` "
                 "for multi-device runs\n",
                 cmd.c_str());
    return 2;
  }
  if (!spec.server.empty()) {
    // Validate the kernel against the local registry (it registered the
    // same --ir files), so the unknown-kernel path stays byte-identical.
    if (!kernels::Registry::instance().find(spec.kernel)) {
      std::fprintf(stderr, "tytra-cc: unknown kernel '%s' (%s)\n",
                   spec.kernel.c_str(), kernel_list().c_str());
      return 1;
    }
    if (spec.max_lanes == 0) {
      std::fprintf(stderr, "tytra-cc: --max-lanes must be >= 1\n");
      return 1;
    }
    return run_job_via_server(cmd, spec);
  }
  return run_job_command(cmd, spec);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tytra;

  if (argc >= 2) {
    const std::string cmd = argv[1];
    if (cmd == "--help" || cmd == "-h" || cmd == "help") {
      std::printf("%s", usage_text().c_str());
      return 0;
    }
    if (cmd == "explore" || cmd == "tune" || cmd == "campaign" ||
        cmd == "cache" || cmd == "list" || cmd == "lint") {
      return run_subcommand(cmd, argc, argv);
    }
    if (cmd == "ping" || cmd == "shutdown") {
      // Daemon-only conveniences: `tytra-cc ping --server S` checks
      // liveness (prints the pong frame), `shutdown` asks for a graceful
      // drain (the daemon's SIGTERM path, reachable over the socket).
      std::string server;
      for (int i = 2; i < argc; ++i) {
        if (std::strcmp(argv[i], "--server") == 0 && i + 1 < argc) {
          server = argv[++i];
        } else {
          return flag_error(cmd + ": unknown or incomplete flag '" +
                            std::string(argv[i]) + "'");
        }
      }
      if (server.empty()) return flag_error(cmd + " requires --server PATH");
      return run_via_server(server, "{\"cmd\": \"" + cmd + "\"}");
    }
  }

  std::string input_path;
  std::string target_path;
  std::string preset = "stratix-v-gsd8";
  std::string hdl_path;
  bool do_cost = false;
  bool do_params = false;
  bool do_tree = false;
  bool do_print = false;
  bool do_explore = false;
  bool explore_flags_seen = false;
  ExploreSpec spec;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--target" && i + 1 < argc) target_path = argv[++i];
    else if (arg == "--preset" && i + 1 < argc) preset = argv[++i];
    else if (arg == "--cost") do_cost = true;
    else if (arg == "--params") do_params = true;
    else if (arg == "--tree") do_tree = true;
    else if (arg == "--print-ir") do_print = true;
    else if (arg == "--emit-hdl" && i + 1 < argc) hdl_path = argv[++i];
    else if (arg == "--explore" && i + 1 < argc) {
      do_explore = true;
      spec.kernel = argv[++i];
    } else if (arg == "--nd" && i + 1 < argc) {
      std::uint32_t nd = 0;
      if (!parse_u32(argv[++i], nd)) {
        return flag_error("--nd: '" + std::string(argv[i]) +
                          "' is not an unsigned integer");
      }
      spec.nd = nd;
      explore_flags_seen = true;
    } else if (arg == "--max-lanes" && i + 1 < argc) {
      if (!parse_u32(argv[++i], spec.max_lanes)) {
        return flag_error("--max-lanes: '" + std::string(argv[i]) +
                          "' is not an unsigned integer");
      }
      explore_flags_seen = true;
    } else if (arg == "--jobs" && i + 1 < argc) {
      if (!parse_u32(argv[++i], spec.jobs)) {
        return flag_error("--jobs: '" + std::string(argv[i]) +
                          "' is not an unsigned integer");
      }
      explore_flags_seen = true;
    } else if (arg == "--pareto") {
      spec.pareto = true;
      explore_flags_seen = true;
    } else if (!arg.empty() && arg[0] != '-' && input_path.empty()) {
      input_path = arg;
    } else if (!arg.empty() && arg[0] == '-') {
      return flag_error("unknown or incomplete flag '" + arg + "'");
    } else {
      return flag_error("unexpected argument '" + arg + "'");
    }
  }
  if (!do_explore && input_path.empty()) return usage();
  if (!do_explore && explore_flags_seen) {
    std::fprintf(stderr,
                 "tytra-cc: --nd/--max-lanes/--jobs/--pareto only apply to "
                 "explore mode\n");
    return 2;
  }
  if (do_explore &&
      (!input_path.empty() || do_cost || do_params || do_tree || do_print ||
       !hdl_path.empty())) {
    std::fprintf(stderr,
                 "tytra-cc: --explore cannot be combined with an input file "
                 "or the --cost/--params/--tree/--print-ir/--emit-hdl "
                 "actions\n");
    return 2;
  }
  if (!do_cost && !do_params && !do_tree && !do_print && hdl_path.empty() &&
      !do_explore) {
    do_cost = true;
  }

  if (do_explore) {
    // Legacy spelling of the explore subcommand; one deprecation notice,
    // then the exact same Session + Registry path.
    std::fprintf(stderr,
                 "tytra-cc: note: --explore is deprecated; use `tytra-cc "
                 "explore <kernel>`\n");
    spec.devices.push_back(!target_path.empty() ? target_path : preset);
    return run_job_command("explore", spec);
  }

  target::DeviceDesc device;
  if (!target_path.empty()) {
    std::string text;
    if (!read_file(target_path, text)) {
      std::fprintf(stderr, "tytra-cc: cannot read '%s'\n", target_path.c_str());
      return 1;
    }
    auto parsed_target = target::parse_target(text);
    if (!parsed_target.ok()) {
      std::fprintf(stderr, "tytra-cc: %s\n",
                   parsed_target.error_message().c_str());
      return 1;
    }
    device = parsed_target.value();
  } else if (auto p = target::preset(preset)) {
    device = *p;
  } else {
    std::fprintf(stderr, "tytra-cc: unknown preset '%s' (%s)\n",
                 preset.c_str(), preset_list().c_str());
    return 1;
  }

  std::string source;
  if (!read_file(input_path, source)) {
    // A bare word that is neither a readable design nor a subcommand lands
    // here — name both interpretations so a typoed subcommand is obvious.
    std::fprintf(stderr,
                 "tytra-cc: cannot read '%s' (not a design file; subcommands "
                 "are explore|tune|campaign|cache|list)\n",
                 input_path.c_str());
    return 1;
  }

  auto parsed = ir::parse_module(source);
  if (!parsed.ok()) {
    std::fprintf(stderr, "tytra-cc: %s\n", parsed.error_message().c_str());
    return 1;
  }
  for (const auto& w : parsed.value().warnings.all()) {
    std::fprintf(stderr, "tytra-cc: %s\n", w.to_string().c_str());
  }
  const ir::Module module = std::move(parsed).take().module;

  const auto diags = ir::verify(module);
  for (const auto& d : diags.all()) {
    std::fprintf(stderr, "tytra-cc: %s\n", d.to_string().c_str());
  }
  if (diags.has_errors()) return 1;

  if (do_print) {
    std::printf("%s", ir::print_module(module).c_str());
  }
  // One analysis traversal serves every remaining action (tree, params,
  // cost) — the summary bundles what each used to re-derive on its own.
  const ir::AnalysisSummary summary = ir::summarize(module);
  if (do_tree) {
    std::printf("%s", ir::format_config_tree(summary.tree).c_str());
    std::printf("configuration class: %s\n",
                std::string(ir::config_class_name(summary.config)).c_str());
  }
  if (do_params) {
    const ir::DesignParams& p = summary.params;
    std::printf("NGS=%llu NWPT=%.1f NKI=%u Noff=%llu KPD=%d NTO=%.2f NI=%.1f "
                "KNL=%u DV=%u form=%s\n",
                static_cast<unsigned long long>(p.ngs), p.nwpt, p.nki,
                static_cast<unsigned long long>(p.noff), p.kpd, p.nto, p.ni,
                p.knl, p.dv, std::string(ir::exec_form_name(p.form)).c_str());
  }
  if (do_cost) {
    const auto db = cost::DeviceCostDb::calibrate(device);
    std::printf("%s",
                cost::format_report(cost::cost_design(module, db, summary))
                    .c_str());
  }
  if (!hdl_path.empty()) {
    const auto design = codegen::emit_verilog(module);
    std::ofstream out(hdl_path);
    if (!out) {
      std::fprintf(stderr, "tytra-cc: cannot write '%s'\n", hdl_path.c_str());
      return 1;
    }
    out << design.source;
    std::printf("tytra-cc: wrote %zu bytes to %s (top %s, KPD %d)\n",
                design.source.size(), hdl_path.c_str(),
                design.top_module.c_str(), design.pipeline_depth);
  }
  return 0;
}
