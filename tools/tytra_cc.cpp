// tytra-cc: the TyTra back-end compiler driver (TyBEC). Parses a textual
// TyTra-IR design, verifies it, and either costs it against a target
// device or emits synthesizeable Verilog — the two paths of Fig. 11 —
// or runs the parallel design-space explorer over a built-in kernel.
//
// Usage:
//   tytra-cc <design.tirl> [options]
//   tytra-cc --explore <sor|hotspot|lavamd> [options]
//     --target <file.tgt>   device description (default: stratix-v-gsd8)
//     --preset <name>       stratix-v-gsd8 | virtex7-690t | fig15
//     --cost                print the cost report (default action)
//     --params              print the extracted Table-I parameters
//     --tree                print the configuration tree (Fig. 8)
//     --emit-hdl <out.v>    generate Verilog into the given file
//     --print-ir            echo the parsed IR back (round-trip)
//   explore-mode options:
//     --nd <dim>            problem dimension (sor: dim^3 grid, hotspot:
//                           dim^2 grid, lavamd: dim particles; default 24)
//     --max-lanes <n>       lane-count cap of the sweep (default 16)
//     --jobs <n>            evaluation worker threads (0 = all cores)
//     --pareto              print the Pareto frontier after the sweep

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include <optional>

#include "tytra/codegen/verilog.hpp"
#include "tytra/cost/report.hpp"
#include "tytra/dse/explorer.hpp"
#include "tytra/ir/analysis.hpp"
#include "tytra/ir/parser.hpp"
#include "tytra/ir/printer.hpp"
#include "tytra/ir/verifier.hpp"
#include "tytra/kernels/kernels.hpp"
#include "tytra/kernels/lowerers.hpp"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: tytra-cc <design.tirl> [--target file.tgt | --preset "
               "name] [--cost] [--params] [--tree] [--emit-hdl out.v] "
               "[--print-ir]\n"
               "       tytra-cc --explore <sor|hotspot|lavamd> [--nd dim] "
               "[--max-lanes n] [--jobs n] [--pareto] [--target file.tgt | "
               "--preset name]\n");
  return 2;
}

bool read_file(const std::string& path, std::string& out) {
  std::ifstream in(path);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  out = ss.str();
  return true;
}

bool parse_u32(const char* text, std::uint32_t& out) {
  if (text[0] == '-' || text[0] == '+') return false;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text, &end, 10);
  if (end == text || *end != '\0' || v > 0xffffffffULL) return false;
  out = static_cast<std::uint32_t>(v);
  return true;
}

struct ExploreSpec {
  std::string kernel;
  std::uint32_t nd{24};
  std::uint32_t max_lanes{16};
  std::uint32_t jobs{0};
  bool pareto{false};
};

int run_explore(const ExploreSpec& spec, const tytra::target::DeviceDesc& device) {
  using namespace tytra;

  if (spec.nd == 0) {
    std::fprintf(stderr, "tytra-cc: --nd must be positive\n");
    return 1;
  }
  if (spec.kernel == "sor" && spec.nd > 2642245) {  // cbrt(2^64)
    std::fprintf(stderr, "tytra-cc: --nd %u overflows the sor NDRange\n",
                 spec.nd);
    return 1;
  }
  // Keyed lowerers (kernels/lowerers.hpp): identity-carrying lowering, so
  // a cache-backed sweep resolves repeat variants before materializing IR.
  std::uint64_t n = 0;
  std::optional<dse::KeyedLowerer> lower;
  if (spec.kernel == "sor") {
    n = static_cast<std::uint64_t>(spec.nd) * spec.nd * spec.nd;
    kernels::SorConfig cfg;
    cfg.im = cfg.jm = cfg.km = spec.nd;
    cfg.nki = 10;
    lower.emplace(kernels::sor_lowerer(cfg));
  } else if (spec.kernel == "hotspot") {
    n = static_cast<std::uint64_t>(spec.nd) * spec.nd;
    kernels::HotspotConfig cfg;
    cfg.rows = cfg.cols = spec.nd;
    lower.emplace(kernels::hotspot_lowerer(cfg));
  } else if (spec.kernel == "lavamd") {
    n = spec.nd;
    kernels::LavamdConfig cfg;
    cfg.particles = spec.nd;
    lower.emplace(kernels::lavamd_lowerer(cfg));
  } else {
    std::fprintf(stderr, "tytra-cc: unknown kernel '%s' (sor|hotspot|lavamd)\n",
                 spec.kernel.c_str());
    return 1;
  }

  const auto db = cost::DeviceCostDb::calibrate(device);
  dse::DseOptions options;
  options.max_lanes = spec.max_lanes;
  options.num_threads = spec.jobs;
  // No CostCache here: a single sweep evaluates each variant exactly
  // once, so a per-invocation cache would be pure keying + insert
  // overhead. The keyed lowerer is what matters — any caller that does
  // share a cache across sweeps (the tuner, bench reruns) resolves
  // these kernels' identity before lowering.
  dse::DseResult result;
  try {
    result = dse::explore(n, *lower, db, options);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "tytra-cc: exploration failed: %s\n", e.what());
    return 1;
  }

  std::printf("exploring %s on %s: %zu variants in %.3f s\n", spec.kernel.c_str(),
              device.name.c_str(), result.entries.size(), result.explore_seconds);
  std::printf("%s", dse::format_sweep(result).c_str());
  if (spec.pareto) {
    std::printf("\npareto frontier (EKIT vs utilization vs bandwidth share):\n");
    std::printf("%s", dse::format_pareto(result).c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tytra;

  std::string input_path;
  std::string target_path;
  std::string preset = "stratix-v-gsd8";
  std::string hdl_path;
  bool do_cost = false;
  bool do_params = false;
  bool do_tree = false;
  bool do_print = false;
  bool do_explore = false;
  bool explore_flags_seen = false;
  ExploreSpec spec;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--target" && i + 1 < argc) target_path = argv[++i];
    else if (arg == "--preset" && i + 1 < argc) preset = argv[++i];
    else if (arg == "--cost") do_cost = true;
    else if (arg == "--params") do_params = true;
    else if (arg == "--tree") do_tree = true;
    else if (arg == "--print-ir") do_print = true;
    else if (arg == "--emit-hdl" && i + 1 < argc) hdl_path = argv[++i];
    else if (arg == "--explore" && i + 1 < argc) {
      do_explore = true;
      spec.kernel = argv[++i];
    } else if (arg == "--nd" && i + 1 < argc) {
      if (!parse_u32(argv[++i], spec.nd)) return usage();
      explore_flags_seen = true;
    } else if (arg == "--max-lanes" && i + 1 < argc) {
      if (!parse_u32(argv[++i], spec.max_lanes)) return usage();
      explore_flags_seen = true;
    } else if (arg == "--jobs" && i + 1 < argc) {
      if (!parse_u32(argv[++i], spec.jobs)) return usage();
      explore_flags_seen = true;
    } else if (arg == "--pareto") {
      spec.pareto = true;
      explore_flags_seen = true;
    } else if (!arg.empty() && arg[0] != '-' && input_path.empty()) {
      input_path = arg;
    } else {
      return usage();
    }
  }
  if (!do_explore && input_path.empty()) return usage();
  if (!do_explore && explore_flags_seen) {
    std::fprintf(stderr,
                 "tytra-cc: --nd/--max-lanes/--jobs/--pareto only apply to "
                 "--explore mode\n");
    return 2;
  }
  if (do_explore &&
      (!input_path.empty() || do_cost || do_params || do_tree || do_print ||
       !hdl_path.empty())) {
    std::fprintf(stderr,
                 "tytra-cc: --explore cannot be combined with an input file "
                 "or the --cost/--params/--tree/--print-ir/--emit-hdl "
                 "actions\n");
    return 2;
  }
  if (!do_cost && !do_params && !do_tree && !do_print && hdl_path.empty() &&
      !do_explore) {
    do_cost = true;
  }

  target::DeviceDesc device;
  if (!target_path.empty()) {
    std::string text;
    if (!read_file(target_path, text)) {
      std::fprintf(stderr, "tytra-cc: cannot read '%s'\n", target_path.c_str());
      return 1;
    }
    auto parsed_target = target::parse_target(text);
    if (!parsed_target.ok()) {
      std::fprintf(stderr, "tytra-cc: %s\n",
                   parsed_target.error_message().c_str());
      return 1;
    }
    device = parsed_target.value();
  } else if (preset == "stratix-v-gsd8") {
    device = target::stratix_v_gsd8();
  } else if (preset == "virtex7-690t") {
    device = target::virtex7_690t();
  } else if (preset == "fig15") {
    device = target::fig15_profile();
  } else {
    std::fprintf(stderr, "tytra-cc: unknown preset '%s'\n", preset.c_str());
    return 1;
  }

  if (do_explore) return run_explore(spec, device);

  std::string source;
  if (!read_file(input_path, source)) {
    std::fprintf(stderr, "tytra-cc: cannot read '%s'\n", input_path.c_str());
    return 1;
  }

  auto parsed = ir::parse_module(source);
  if (!parsed.ok()) {
    std::fprintf(stderr, "tytra-cc: %s\n", parsed.error_message().c_str());
    return 1;
  }
  for (const auto& w : parsed.value().warnings.all()) {
    std::fprintf(stderr, "tytra-cc: %s\n", w.to_string().c_str());
  }
  const ir::Module module = std::move(parsed).take().module;

  const auto diags = ir::verify(module);
  for (const auto& d : diags.all()) {
    std::fprintf(stderr, "tytra-cc: %s\n", d.to_string().c_str());
  }
  if (diags.has_errors()) return 1;

  if (do_print) {
    std::printf("%s", ir::print_module(module).c_str());
  }
  // One analysis traversal serves every remaining action (tree, params,
  // cost) — the summary bundles what each used to re-derive on its own.
  const ir::AnalysisSummary summary = ir::summarize(module);
  if (do_tree) {
    std::printf("%s", ir::format_config_tree(summary.tree).c_str());
    std::printf("configuration class: %s\n",
                std::string(ir::config_class_name(summary.config)).c_str());
  }
  if (do_params) {
    const ir::DesignParams& p = summary.params;
    std::printf("NGS=%llu NWPT=%.1f NKI=%u Noff=%llu KPD=%d NTO=%.2f NI=%.1f "
                "KNL=%u DV=%u form=%s\n",
                static_cast<unsigned long long>(p.ngs), p.nwpt, p.nki,
                static_cast<unsigned long long>(p.noff), p.kpd, p.nto, p.ni,
                p.knl, p.dv, std::string(ir::exec_form_name(p.form)).c_str());
  }
  if (do_cost) {
    const auto db = cost::DeviceCostDb::calibrate(device);
    std::printf("%s",
                cost::format_report(cost::cost_design(module, db, summary))
                    .c_str());
  }
  if (!hdl_path.empty()) {
    const auto design = codegen::emit_verilog(module);
    std::ofstream out(hdl_path);
    if (!out) {
      std::fprintf(stderr, "tytra-cc: cannot write '%s'\n", hdl_path.c_str());
      return 1;
    }
    out << design.source;
    std::printf("tytra-cc: wrote %zu bytes to %s (top %s, KPD %d)\n",
                design.source.size(), hdl_path.c_str(),
                design.top_module.c_str(), design.pipeline_depth);
  }
  return 0;
}
