// tytra-dsed: the DSE-as-a-service daemon. Boots ONE warm dse::Session
// (optionally from a snapshot), listens on a Unix-domain socket, and
// serves concurrent tytra-cc clients (`tytra-cc --server <socket> ...`)
// over the length-prefixed JSON frame protocol — every client shares the
// session's two-level cost cache and calibrated device table, so the
// second campaign answers at the variant-key level from the first one's
// work. SIGTERM/SIGINT drain gracefully: in-flight work gets --drain-ms
// to finish (then cooperative cancellation), the snapshot is saved, and
// the daemon exits 0.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "tytra/dse/server.hpp"

namespace {

tytra::dse::Server* g_server = nullptr;

void handle_signal(int /*sig*/) {
  if (g_server != nullptr) g_server->signal_shutdown();
}

int usage(std::FILE* to) {
  std::fprintf(
      to,
      "usage: tytra-dsed --socket PATH [options]\n"
      "\n"
      "Serve DSE campaigns to concurrent tytra-cc clients over one warm\n"
      "session (shared cost cache, calibrated devices, thread pool).\n"
      "Clients connect with `tytra-cc --server PATH explore|tune|campaign|\n"
      "list ...` and receive byte-identical output to a standalone run.\n"
      "\n"
      "options:\n"
      "  --socket PATH      Unix-domain socket to listen on (required;\n"
      "                     a stale file at PATH is replaced)\n"
      "  --snapshot FILE    load the cache snapshot on boot, save on\n"
      "                     shutdown (cold boot when FILE is absent)\n"
      "  --jobs N           worker threads for the shared session\n"
      "                     (0 = hardware concurrency)\n"
      "  --max-lanes N      session-wide lane-count cap (default 16)\n"
      "  --drain-ms N       shutdown grace period before in-flight work\n"
      "                     is cancelled (default 2000)\n"
      "  --queue-limit N    per-connection pending-job bound (default 256)\n"
      "\n"
      "SIGTERM/SIGINT drain gracefully and exit 0.\n");
  return to == stdout ? 0 : 2;
}

bool parse_u32(const char* text, std::uint32_t& out) {
  char* end = nullptr;
  const unsigned long v = std::strtoul(text, &end, 10);
  if (end == text || *end != '\0' || v > 0xFFFFFFFFul) return false;
  out = static_cast<std::uint32_t>(v);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  tytra::dse::ServerOptions opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool has_value = i + 1 < argc;
    if (arg == "--help" || arg == "-h") return usage(stdout);
    std::uint32_t v = 0;
    if (arg == "--socket" && has_value) {
      opts.socket_path = argv[++i];
    } else if (arg == "--snapshot" && has_value) {
      opts.session.snapshot_path = argv[++i];
      opts.session.enable_cache = true;
    } else if (arg == "--jobs" && has_value && parse_u32(argv[++i], v)) {
      opts.session.num_threads = v;
    } else if (arg == "--max-lanes" && has_value && parse_u32(argv[++i], v)) {
      opts.session.max_lanes = v;
    } else if (arg == "--drain-ms" && has_value && parse_u32(argv[++i], v)) {
      opts.drain_ms = v;
    } else if (arg == "--queue-limit" && has_value &&
               parse_u32(argv[++i], v)) {
      opts.queue_limit = v;
    } else {
      std::fprintf(stderr, "tytra-dsed: bad or incomplete flag '%s'\n",
                   arg.c_str());
      return usage(stderr);
    }
  }
  if (opts.socket_path.empty()) {
    std::fprintf(stderr, "tytra-dsed: --socket is required\n");
    return usage(stderr);
  }

  try {
    tytra::dse::Server server(std::move(opts));
    g_server = &server;
    std::signal(SIGTERM, handle_signal);
    std::signal(SIGINT, handle_signal);
    std::fprintf(stderr, "tytra-dsed: serving on %s\n",
                 server.socket_path().c_str());
    server.serve();
    const auto s = server.stats();
    std::fprintf(stderr,
                 "tytra-dsed: drained (%llu connections, %llu requests, "
                 "%llu jobs ok, %llu degraded)\n",
                 static_cast<unsigned long long>(s.connections),
                 static_cast<unsigned long long>(s.requests),
                 static_cast<unsigned long long>(s.jobs_ok),
                 static_cast<unsigned long long>(s.jobs_degraded));
    g_server = nullptr;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "tytra-dsed: %s\n", e.what());
    return 1;
  }
  return 0;
}
