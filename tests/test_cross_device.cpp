// Cross-device generalization: the calibration methodology is not tuned
// to one family — the same probe-and-fit flow must hold its accuracy on
// the Xilinx Virtex-7 (different LUT architecture, different DSP tiling)
// as on the Altera Stratix-V, and the cost reports must reflect the
// device differences sensibly.

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "tytra/cost/report.hpp"
#include "tytra/fabric/cores.hpp"
#include "tytra/fabric/synth.hpp"
#include "tytra/kernels/kernels.hpp"

namespace {

using namespace tytra;

const cost::DeviceCostDb& v7db() {
  static const auto c = cost::DeviceCostDb::calibrate(target::virtex7_690t());
  return c;
}
const cost::DeviceCostDb& svdb() {
  static const auto c = cost::DeviceCostDb::calibrate(target::stratix_v_gsd8());
  return c;
}

double pct(double est, double act) {
  return act != 0 ? std::abs(est - act) / act * 100.0 : 0.0;
}

TEST(CrossDevice, DspStepsDifferPerFamily) {
  const auto& sv = svdb().int_law(ir::Opcode::Mul).dsps;
  const auto& v7 = v7db().int_law(ir::Opcode::Mul).dsps;
  EXPECT_NE(sv.discontinuities(), v7.discontinuities());
  // Xilinx DSP48 (25x18) splits 18-bit squares across two blocks.
  EXPECT_DOUBLE_EQ(sv.eval(18), 1.0);
  EXPECT_DOUBLE_EQ(v7.eval(18), 2.0);
}

TEST(CrossDevice, TableIIBandsHoldOnVirtex7) {
  kernels::HotspotConfig hs;
  hs.rows = hs.cols = 32;
  kernels::LavamdConfig lava;
  lava.particles = 1024;
  lava.elem = ir::ScalarType::uint(18);
  kernels::SorConfig sor;
  sor.im = sor.jm = sor.km = 12;

  const ir::Module mods[] = {kernels::make_hotspot(hs),
                             kernels::make_lavamd(lava),
                             kernels::make_sor(sor)};
  for (const auto& m : mods) {
    const auto est = cost::estimate_resources(m, v7db());
    const auto act = fabric::synthesize(m, target::virtex7_690t());
    EXPECT_LT(pct(est.total.aluts, act.total.aluts), 15.0) << m.name;
    EXPECT_LT(pct(est.total.regs, act.total.regs), 15.0) << m.name;
  }
}

TEST(CrossDevice, PerOpEstimatesHoldOnVirtex7) {
  for (const auto op : {ir::Opcode::Add, ir::Opcode::Mul, ir::Opcode::Div,
                        ir::Opcode::Min, ir::Opcode::CmpLt}) {
    for (const int w : {12, 24, 40}) {
      const ir::ScalarType t = ir::ScalarType::uint(static_cast<std::uint16_t>(w));
      const auto est = v7db().op_cost(op, t);
      const auto act =
          fabric::core_resources(op, t, target::virtex7_690t());
      if (act.aluts > 20) {
        EXPECT_LT(pct(est.aluts, act.aluts), 6.0)
            << ir::opcode_name(op) << " w=" << w;
      }
      EXPECT_DOUBLE_EQ(est.dsps, act.dsps) << ir::opcode_name(op) << " w=" << w;
    }
  }
}

TEST(CrossDevice, BaselinePlatformIsSlowerThanMaia) {
  // The Fig. 10 Virtex-7 platform is the *unoptimized* SDAccel baseline:
  // its sustained DRAM bandwidth sits far below the Maia's.
  const double v7 = v7db().bandwidth().sustained(
      64ULL << 20, ir::AccessPattern::Contiguous);
  const double sv = svdb().bandwidth().sustained(
      64ULL << 20, ir::AccessPattern::Contiguous);
  EXPECT_GT(sv / v7, 4.0);
}

TEST(CrossDevice, SameKernelSlowerOnTheBandwidthStarvedPlatform) {
  kernels::SorConfig cfg;
  cfg.im = cfg.jm = cfg.km = 32;
  cfg.lanes = 4;
  const ir::Module m = kernels::make_sor(cfg);
  const auto on_sv = cost::cost_design(m, svdb());
  const auto on_v7 = cost::cost_design(m, v7db());
  EXPECT_GT(on_sv.throughput.ekit, on_v7.throughput.ekit);
  EXPECT_EQ(on_v7.throughput.limiting, cost::Wall::DramBandwidth);
}

}  // namespace
