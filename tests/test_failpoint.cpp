// Unit tests for the support/failpoint subsystem: disarmed zero-cost
// behavior, deterministic pacing, programmatic and spec-based arming
// (strictness included), the Scoped RAII guard, and the InjectedFault
// exception surface. The end-to-end seam tests live in
// test_failure_domains.cpp and test_cli_failure.cpp.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "tytra/support/failpoint.hpp"

namespace {

using namespace tytra;

/// Every test leaves the registry disarmed; this guards against a failing
/// EXPECT leaking armed state into a sibling test.
struct FailpointTest : ::testing::Test {
  void SetUp() override { failpoint::reset(); }
  void TearDown() override { failpoint::reset(); }
};

TEST_F(FailpointTest, DisarmedProcessFiresNothing) {
  EXPECT_FALSE(failpoint::armed());
  EXPECT_FALSE(failpoint::fire("cache.insert"));
  EXPECT_NO_THROW(failpoint::maybe_throw("dse.pool-task"));
  EXPECT_FALSE(failpoint::fire("not-even-a-known-name"));
  EXPECT_EQ(failpoint::fired_count(), 0u);
}

TEST_F(FailpointTest, HundredPercentFiresEveryHit) {
  failpoint::arm("test.always", 100);
  EXPECT_TRUE(failpoint::armed());
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(failpoint::fire("test.always")) << "hit " << i;
  }
  EXPECT_EQ(failpoint::fired_count(), 10u);
  // Other points stay cold.
  EXPECT_FALSE(failpoint::fire("test.other"));
}

TEST_F(FailpointTest, PacingIsDeterministicNotRandom) {
  // PCT=50 must fire on exactly the 2nd, 4th, 6th, ... hits — the same
  // hits every run, so a "50%" fault test is reproducible.
  failpoint::arm("test.paced", 50);
  std::vector<int> fired_hits;
  for (int n = 0; n < 8; ++n) {
    if (failpoint::fire("test.paced")) fired_hits.push_back(n);
  }
  EXPECT_EQ(fired_hits, (std::vector<int>{1, 3, 5, 7}));

  // PCT=1: exactly one fire per 100 consecutive hits.
  failpoint::arm("test.rare", 1);
  int fires = 0;
  for (int n = 0; n < 200; ++n) {
    if (failpoint::fire("test.rare")) ++fires;
  }
  EXPECT_EQ(fires, 2);
}

TEST_F(FailpointTest, PercentZeroDisarmsAndResetForgetsHitCounts) {
  failpoint::arm("test.p", 100);
  EXPECT_TRUE(failpoint::fire("test.p"));
  failpoint::arm("test.p", 0);
  EXPECT_FALSE(failpoint::armed());
  EXPECT_FALSE(failpoint::fire("test.p"));

  // Re-arming at 50 restarts the pacing from hit 0 after reset().
  failpoint::arm("test.p", 50);
  EXPECT_FALSE(failpoint::fire("test.p"));  // hit 0 never fires at 50%
  failpoint::reset();
  EXPECT_EQ(failpoint::fired_count(), 0u);
  failpoint::arm("test.p", 50);
  EXPECT_FALSE(failpoint::fire("test.p")) << "hit count survived reset()";
}

TEST_F(FailpointTest, MaybeThrowRaisesInjectedFaultNamingThePoint) {
  failpoint::arm("test.throwing", 100);
  try {
    failpoint::maybe_throw("test.throwing");
    FAIL() << "armed point did not throw";
  } catch (const failpoint::InjectedFault& e) {
    EXPECT_EQ(e.point(), "test.throwing");
    EXPECT_NE(std::string(e.what()).find("test.throwing"), std::string::npos);
  }
  // InjectedFault is a runtime_error so existing containment catches it.
  failpoint::arm("test.throwing", 100);
  EXPECT_THROW(failpoint::maybe_throw("test.throwing"), std::runtime_error);
}

TEST_F(FailpointTest, ScopedGuardArmsAndDisarms) {
  {
    failpoint::Scoped guard("test.scoped", 100);
    EXPECT_TRUE(failpoint::fire("test.scoped"));
  }
  EXPECT_FALSE(failpoint::armed());
  EXPECT_FALSE(failpoint::fire("test.scoped"));
}

TEST_F(FailpointTest, KnownNamesCoverEveryInstrumentedSeam) {
  const auto& names = failpoint::known_names();
  for (const char* required :
       {"binio.read", "binio.write", "cache.insert", "calibration.measure",
        "dse.pool-task", "membench.measure", "snapshot.load", "snapshot.save",
        "workload.parse"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), required), names.end())
        << "missing failpoint name: " << required;
  }
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
}

TEST_F(FailpointTest, SpecParsingArmsValidEntries) {
  EXPECT_TRUE(failpoint::arm_from_spec("cache.insert=100%,binio.read=50"));
  EXPECT_TRUE(failpoint::fire("cache.insert"));
  EXPECT_FALSE(failpoint::fire("binio.read"));  // hit 0 at 50%: no fire
  EXPECT_TRUE(failpoint::fire("binio.read"));   // hit 1: fires
}

TEST_F(FailpointTest, SpecParsingIsStrictAndArmsNothingOnAnyDefect) {
  // A typo in a fault test must not silently produce a fault-free run:
  // one bad entry rejects the whole spec.
  for (const char* bad :
       {"bogus.name=100", "cache.insert", "cache.insert=", "cache.insert=abc",
        "cache.insert=101", "cache.insert=100,bogus=5", "=50", "",
        "cache.insert=1000%"}) {
    EXPECT_FALSE(failpoint::arm_from_spec(bad)) << "accepted: " << bad;
    EXPECT_FALSE(failpoint::armed()) << "partially armed by: " << bad;
  }
}

}  // namespace
