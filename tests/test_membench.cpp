// Tests for the memory substrate: DRAM and host-link timing models and
// the STREAM-style sustained-bandwidth benchmark (the mechanics behind
// Fig. 10).

#include <gtest/gtest.h>

#include "tytra/membench/dram.hpp"
#include "tytra/membench/stream_bench.hpp"

namespace {

using namespace tytra;
using namespace tytra::membench;
using ir::AccessPattern;

const target::DeviceDesc kV7 = target::virtex7_690t();

TEST(Dram, PeakBwIsBusTimesClock) {
  const DramModel dram(kV7.dram);
  EXPECT_DOUBLE_EQ(dram.peak_bw(), kV7.dram.io_clock_hz * kV7.dram.bus_bytes);
}

TEST(Dram, ContiguousApproachesPeakForLargeTransfers) {
  const DramModel dram(kV7.dram);
  const double bw = dram.sustained_bw(1ULL << 30, AccessPattern::Contiguous);
  EXPECT_GT(bw, dram.peak_bw() * 0.90);
  EXPECT_LE(bw, dram.peak_bw());
}

TEST(Dram, SmallTransfersDominatedBySetup) {
  const DramModel dram(kV7.dram);
  const double small = dram.sustained_bw(64 * 1024, AccessPattern::Contiguous);
  const double large = dram.sustained_bw(64ULL << 20, AccessPattern::Contiguous);
  EXPECT_LT(small, large * 0.2);
}

TEST(Dram, StridedIsTwoOrdersOfMagnitudeSlower) {
  // The headline observation of Fig. 10.
  const DramModel dram(kV7.dram);
  const std::uint64_t bytes = 16ULL << 20;
  const double cont = dram.sustained_bw(bytes, AccessPattern::Contiguous);
  const double strided =
      dram.sustained_bw(bytes, AccessPattern::Strided, 4096, 4);
  EXPECT_GT(cont / strided, 50.0);
  EXPECT_LT(cont / strided, 500.0);
}

TEST(Dram, SmallStridesStreamLikeContiguous) {
  const DramModel dram(kV7.dram);
  const std::uint64_t bytes = 16ULL << 20;
  const double s4 = dram.sustained_bw(bytes, AccessPattern::Strided, 4, 4);
  const double cont = dram.sustained_bw(bytes, AccessPattern::Contiguous);
  EXPECT_NEAR(s4, cont, cont * 0.01);
}

TEST(Dram, MonotoneInSize) {
  const DramModel dram(kV7.dram);
  double prev = 0;
  for (std::uint64_t bytes = 1 << 16; bytes <= (1ULL << 28); bytes <<= 2) {
    const double bw = dram.sustained_bw(bytes, AccessPattern::Contiguous);
    EXPECT_GE(bw, prev);
    prev = bw;
  }
}

TEST(HostLink, LatencyDominatesSmallTransfers) {
  const HostLinkModel host(kV7.host);
  EXPECT_LT(host.sustained_bw(4096), host.peak_bw() * 0.10);
  EXPECT_GT(host.sustained_bw(1ULL << 30),
            host.peak_bw() * kV7.host.efficiency * 0.95);
}

TEST(HostLink, TransferTimeIsAffine) {
  const HostLinkModel host(kV7.host);
  const double t1 = host.transfer_seconds(1 << 20);
  const double t2 = host.transfer_seconds(2 << 20);
  const double fixed = 2 * t1 - t2;  // solves for the latency term
  EXPECT_NEAR(fixed, kV7.host.latency_seconds, 1e-9);
}

// --------------------------------------------------------------------------
// The Fig. 10 benchmark
// --------------------------------------------------------------------------

TEST(StreamBench, ReproducesFig10Shape) {
  const auto samples = run_stream_bench(kV7, default_dims());
  ASSERT_GE(samples.size(), 10u);

  // Contiguous: monotone ramp saturating around 1000x1000 elements.
  for (std::size_t i = 1; i < samples.size(); ++i) {
    EXPECT_GE(samples[i].contiguous_bps, samples[i - 1].contiguous_bps);
  }
  const double first_gbit = samples.front().contiguous_bps * 8 / 1e9;
  const double last_gbit = samples.back().contiguous_bps * 8 / 1e9;
  EXPECT_LT(first_gbit, 1.0);         // paper: 0.3 Gbit/s at the small end
  EXPECT_NEAR(last_gbit, 6.3, 0.65);  // paper: plateaus at ~6.3 Gbit/s

  // Plateau: the last three samples are within a few percent.
  const double a = samples[samples.size() - 3].contiguous_bps;
  EXPECT_NEAR(samples.back().contiguous_bps / a, 1.0, 0.05);

  // Strided: flat and two orders of magnitude below (0.04-0.07 Gbit/s).
  for (const auto& s : samples) {
    const double strided_gbit = s.strided_bps * 8 / 1e9;
    EXPECT_GT(strided_gbit, 0.01);
    EXPECT_LT(strided_gbit, 0.15);
  }
}

TEST(BandwidthTable, InterpolatesBetweenMeasuredSizes) {
  const BandwidthTable table = BandwidthTable::measure(kV7);
  ASSERT_FALSE(table.empty());
  const auto& samples = table.samples();
  const auto& s0 = samples[2];
  const auto& s1 = samples[3];
  const std::uint64_t mid_bytes = (s0.bytes + s1.bytes) / 2;
  const double bw = table.sustained(mid_bytes, AccessPattern::Contiguous);
  EXPECT_GT(bw, std::min(s0.contiguous_bps, s1.contiguous_bps) * 0.99);
  EXPECT_LT(bw, std::max(s0.contiguous_bps, s1.contiguous_bps) * 1.01);
}

TEST(BandwidthTable, RhoIsAFractionOfPeak) {
  const BandwidthTable table = BandwidthTable::measure(kV7);
  const double rho =
      table.rho(1ULL << 24, AccessPattern::Contiguous, kV7.dram_peak_bw);
  EXPECT_GT(rho, 0.0);
  EXPECT_LE(rho, 1.0);
  const double rho_strided =
      table.rho(1ULL << 24, AccessPattern::Strided, kV7.dram_peak_bw, 4096);
  EXPECT_LT(rho_strided, rho * 0.1);
}

TEST(BandwidthTable, FromExplicitSamples) {
  std::vector<BandwidthSample> samples;
  for (std::uint64_t d : {64, 128, 256}) {
    BandwidthSample s;
    s.dim = d;
    s.bytes = d * d * 4;
    s.contiguous_bps = static_cast<double>(d) * 1e6;
    s.strided_bps = 1e5;
    samples.push_back(s);
  }
  const BandwidthTable t = BandwidthTable::from_samples(samples);
  EXPECT_NEAR(t.sustained(128 * 128 * 4, AccessPattern::Contiguous), 128e6, 1);
  EXPECT_NEAR(t.sustained(128 * 128 * 4, AccessPattern::Strided, 128), 1e5, 1);
}

}  // namespace
