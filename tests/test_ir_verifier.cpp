// Tests for the TyTra-IR semantic verifier: SSA discipline, type/opcode
// compatibility, the function-kind composition rules of Fig. 7 and
// Manage-IR referential integrity.

#include <gtest/gtest.h>

#include "tytra/ir/parser.hpp"
#include "tytra/ir/verifier.hpp"

namespace {

using namespace tytra::ir;

Module parse_ok(const char* src) {
  auto r = parse_module(src);
  EXPECT_TRUE(r.ok()) << r.error_message();
  return std::move(r).take().module;
}

bool has_error_containing(const Module& m, const std::string& needle) {
  const auto diags = verify(m);
  for (const auto& d : diags.all()) {
    if (d.severity == tytra::Severity::Error &&
        d.message.find(needle) != std::string::npos) {
      return true;
    }
  }
  return false;
}

TEST(Verifier, AcceptsMinimalValidModule) {
  const Module m = parse_ok(R"(
!ngs = 16
define void @f0(ui18 %a) pipe {
  ui18 %x = add ui18 %a, 1
}
define void @main () { call @f0(@a) pipe }
)");
  EXPECT_FALSE(verify(m).has_errors()) << verify(m).to_string();
}

TEST(Verifier, RequiresMain) {
  const Module m = parse_ok("define void @f0() pipe { }");
  EXPECT_TRUE(has_error_containing(m, "no @main"));
}

TEST(Verifier, MainTakesNoParameters) {
  const Module m = parse_ok("define void @main(ui18 %x) { }");
  EXPECT_TRUE(has_error_containing(m, "no parameters"));
}

TEST(Verifier, RejectsDuplicateFunctions) {
  const Module m = parse_ok(R"(
define void @f0() pipe { }
define void @f0() pipe { }
define void @main () { }
)");
  EXPECT_TRUE(has_error_containing(m, "duplicate function"));
}

TEST(Verifier, RejectsUseBeforeDef) {
  const Module m = parse_ok(R"(
define void @f0(ui18 %a) pipe {
  ui18 %x = add ui18 %y, %a
  ui18 %y = add ui18 %a, 1
}
define void @main () { call @f0(@a) pipe }
)");
  EXPECT_TRUE(has_error_containing(m, "undefined value %y"));
}

TEST(Verifier, RejectsRedefinition) {
  const Module m = parse_ok(R"(
define void @f0(ui18 %a) pipe {
  ui18 %x = add ui18 %a, 1
  ui18 %x = add ui18 %a, 2
}
define void @main () { call @f0(@a) pipe }
)");
  EXPECT_TRUE(has_error_containing(m, "redefinition"));
}

TEST(Verifier, RejectsArityMismatch) {
  const Module m = parse_ok(R"(
define void @f0(ui18 %a) pipe {
  ui18 %x = select ui18 %a, %a
}
define void @main () { call @f0(@a) pipe }
)");
  EXPECT_TRUE(has_error_containing(m, "expects 3 operands"));
}

TEST(Verifier, RejectsFloatOnlyOpOnInteger) {
  const Module m = parse_ok(R"(
define void @f0(ui18 %a) pipe {
  ui18 %x = exp ui18 %a
}
define void @main () { call @f0(@a) pipe }
)");
  EXPECT_TRUE(has_error_containing(m, "only defined for float"));
}

TEST(Verifier, RejectsIntegerOnlyOpOnFloat) {
  const Module m = parse_ok(R"(
define void @f0(f32 %a) pipe {
  f32 %x = shl f32 %a, 2
}
define void @main () { call @f0(@a) pipe }
)");
  EXPECT_TRUE(has_error_containing(m, "not defined for float"));
}

TEST(Verifier, OffsetsOnlyInPipeFunctions) {
  const Module m = parse_ok(R"(
define void @s0(ui18 %a) seq {
  ui18 %x = ui18 %a, !offset, !+1
}
define void @main () { call @s0(@a) seq }
)");
  EXPECT_TRUE(has_error_containing(m, "only valid in pipe"));
}

TEST(Verifier, ParMayOnlyContainCalls) {
  const Module m = parse_ok(R"(
define void @p0(ui18 %a) par {
  ui18 %x = add ui18 %a, 1
}
define void @main () { call @p0(@a) par }
)");
  EXPECT_TRUE(has_error_containing(m, "may only contain calls"));
}

TEST(Verifier, CombRejectsMultiCycleOps) {
  const Module m = parse_ok(R"(
define void @c0(ui18 %a) comb {
  ui18 %x = div ui18 %a, %a
}
define void @main () { call @c0(@a) comb }
)");
  EXPECT_TRUE(has_error_containing(m, "multi-cycle"));
}

TEST(Verifier, CombAcceptsSingleCycleLogic) {
  const Module m = parse_ok(R"(
!ngs = 4
define void @c0(ui18 %a, ui18 %b) comb {
  ui18 %x = xor ui18 %a, %b
  ui18 %y = and ui18 %x, %b
}
define void @f0(ui18 %a, ui18 %b) pipe {
  ui18 %s = add ui18 %a, %b
  call @c0(%a, %b) comb
}
define void @main () { call @f0(@a, @b) pipe }
)");
  EXPECT_FALSE(verify(m).has_errors()) << verify(m).to_string();
}

TEST(Verifier, PipeCannotCallPar) {
  const Module m = parse_ok(R"(
define void @f1() par { call @f0(@a) pipe }
define void @f0(ui18 %a) pipe {
  ui18 %x = add ui18 %a, 1
  call @f1() par
}
define void @main () { call @f0(@a) pipe }
)");
  EXPECT_TRUE(has_error_containing(m, "cannot contain a par call"));
}

TEST(Verifier, CallKindMustMatchCallee) {
  const Module m = parse_ok(R"(
define void @f0(ui18 %a) pipe { ui18 %x = add ui18 %a, 1 }
define void @main () { call @f0(@a) seq }
)");
  EXPECT_TRUE(has_error_containing(m, "defined as 'pipe'"));
}

TEST(Verifier, CallArityMustMatch) {
  const Module m = parse_ok(R"(
define void @f0(ui18 %a, ui18 %b) pipe { ui18 %x = add ui18 %a, %b }
define void @main () { call @f0(@a) pipe }
)");
  EXPECT_TRUE(has_error_containing(m, "passes 1 args"));
}

TEST(Verifier, RejectsUnknownCallee) {
  const Module m = parse_ok("define void @main () { call @ghost() pipe }");
  EXPECT_TRUE(has_error_containing(m, "unknown function"));
}

TEST(Verifier, RejectsRecursion) {
  const Module m = parse_ok(R"(
define void @f0() pipe { call @f0() pipe }
define void @main () { call @f0() pipe }
)");
  EXPECT_TRUE(has_error_containing(m, "recursive"));
}

TEST(Verifier, RejectsMutualRecursion) {
  const Module m = parse_ok(R"(
define void @f0() pipe { call @f1() pipe }
define void @f1() pipe { call @f0() pipe }
define void @main () { call @f0() pipe }
)");
  EXPECT_TRUE(has_error_containing(m, "cyclic"));
}

TEST(Verifier, ManageIrReferentialIntegrity) {
  const Module m = parse_ok(R"(
!ngs = 16
stream @s reads @nothing pattern cont
define void @main () { }
)");
  EXPECT_TRUE(has_error_containing(m, "unknown memobj"));
}

TEST(Verifier, PortMustReferenceKnownStreamObject) {
  const Module m = parse_ok(R"(
!ngs = 16
memobj @m global ui18 x 16
stream @s reads @m pattern cont
@main.p = addrSpace(1) ui18, !"istream", !"CONT", !0, !"ghost"
define void @main () { }
)");
  EXPECT_TRUE(has_error_containing(m, "unknown stream object"));
}

TEST(Verifier, RejectsWritingInputPort) {
  const Module m = parse_ok(R"(
!ngs = 16
@main.p = addrSpace(1) ui18, !"istream", !"CONT", !0, !"s"
define void @f0(ui18 %a) pipe {
  ui18 @p = add ui18 %a, 1
}
define void @main () { call @f0(@p) pipe }
)");
  EXPECT_TRUE(has_error_containing(m, "writes input port"));
}

TEST(Verifier, RejectsDoubleWriteOfOutputPort) {
  const Module m = parse_ok(R"(
!ngs = 16
@main.q = addrSpace(1) ui18, !"ostream", !"CONT", !0, !"s"
define void @f0(ui18 %a) pipe {
  ui18 @q = add ui18 %a, 1
  ui18 @q = add ui18 %a, 2
}
define void @main () { call @f0(@a) pipe }
)");
  EXPECT_TRUE(has_error_containing(m, "written twice"));
}

TEST(Verifier, ReductionReadingOwnAccumulatorIsClean) {
  const Module m = parse_ok(R"(
!ngs = 16
define void @f0(ui18 %a) pipe {
  ui18 @acc = add ui18 %a, @acc
}
define void @main () { call @f0(@a) pipe }
)");
  const auto diags = verify(m);
  EXPECT_FALSE(diags.has_errors()) << diags.to_string();
  for (const auto& d : diags.all()) {
    EXPECT_EQ(d.message.find("does not read"), std::string::npos);
  }
}

TEST(Verifier, WarnsOnNonSelfReadingReduction) {
  const Module m = parse_ok(R"(
!ngs = 16
define void @f0(ui18 %a) pipe {
  ui18 @acc = add ui18 %a, %a
}
define void @main () { call @f0(@a) pipe }
)");
  const auto diags = verify(m);
  bool warned = false;
  for (const auto& d : diags.all()) {
    if (d.severity == tytra::Severity::Warning &&
        d.message.find("does not read") != std::string::npos) {
      warned = true;
    }
  }
  EXPECT_TRUE(warned);
}

}  // namespace
