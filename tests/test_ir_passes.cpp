// Tests for the IR optimization passes: constant folding, CSE and DCE are
// semantics-preserving (functional results identical) and shrink the
// datapath the cost model sees.

#include <gtest/gtest.h>

#include "tytra/cost/calibration.hpp"
#include "tytra/cost/resource_model.hpp"
#include "tytra/ir/parser.hpp"
#include "tytra/ir/passes.hpp"
#include "tytra/ir/verifier.hpp"
#include "tytra/kernels/kernels.hpp"
#include "tytra/sim/functional.hpp"

namespace {

using namespace tytra;
using namespace tytra::ir;

TEST(Passes, FoldsConstantChains) {
  Module m = parse_module_or_die(R"(
!ngs = 16
define void @f0(ui18 %a) pipe {
  ui18 %c1 = add ui18 3, 4
  ui18 %c2 = mul ui18 %c1, 2
  ui18 %x  = add ui18 %a, %c2
  ui18 @out = mov ui18 %x
}
define void @main () { call @f0(@a) pipe }
)");
  const PassStats stats = optimize(m);
  EXPECT_EQ(stats.folded, 2u);
  const auto* f0 = m.find_function("f0");
  ASSERT_EQ(f0->instructions().size(), 2u);  // the add and the store remain
  const Instr* add = f0->instructions()[0];
  ASSERT_EQ(add->args.size(), 2u);
  EXPECT_EQ(add->args[1].kind, Operand::Kind::ConstInt);
  EXPECT_EQ(add->args[1].ival, 14);
}

TEST(Passes, FoldingRespectsIntegerDivision) {
  Module m = parse_module_or_die(R"(
!ngs = 16
define void @f0(ui18 %a) pipe {
  ui18 %c = div ui18 7, 2
  ui18 %x = add ui18 %a, %c
  ui18 @out = mov ui18 %x
}
define void @main () { call @f0(@a) pipe }
)");
  optimize(m);
  const auto* f0 = m.find_function("f0");
  EXPECT_EQ(f0->instructions()[0]->args[1].ival, 3);  // trunc, not 3.5
}

TEST(Passes, DivisionByZeroIsNotFolded) {
  Module m = parse_module_or_die(R"(
!ngs = 16
define void @f0(ui18 %a) pipe {
  ui18 %c = div ui18 7, 0
  ui18 %x = add ui18 %a, %c
  ui18 @out = mov ui18 %x
}
define void @main () { call @f0(@a) pipe }
)");
  const PassStats stats = fold_constants(m);
  EXPECT_EQ(stats.folded, 0u);
}

TEST(Passes, CseMergesDuplicatesIncludingCommuted) {
  Module m = parse_module_or_die(R"(
!ngs = 16
define void @f0(ui18 %a, ui18 %b) pipe {
  ui18 %x = add ui18 %a, %b
  ui18 %y = add ui18 %b, %a
  ui18 %z = add ui18 %x, %y
  ui18 @out = mov ui18 %z
}
define void @main () { call @f0(@a, @b) pipe }
)");
  const PassStats stats = eliminate_common_subexpressions(m);
  EXPECT_EQ(stats.merged, 1u);  // %y folds into %x (add is commutative)
  const auto* f0 = m.find_function("f0");
  const Instr* z = f0->instructions()[1];
  EXPECT_EQ(z->args[0].name, "x");
  EXPECT_EQ(z->args[1].name, "x");
}

TEST(Passes, CseDoesNotMergeNonCommutativeSwapped) {
  Module m = parse_module_or_die(R"(
!ngs = 16
define void @f0(ui18 %a, ui18 %b) pipe {
  ui18 %x = sub ui18 %a, %b
  ui18 %y = sub ui18 %b, %a
  ui18 %z = add ui18 %x, %y
  ui18 @out = mov ui18 %z
}
define void @main () { call @f0(@a, @b) pipe }
)");
  EXPECT_EQ(eliminate_common_subexpressions(m).merged, 0u);
}

TEST(Passes, DceRemovesUnusedChains) {
  Module m = parse_module_or_die(R"(
!ngs = 16
define void @f0(ui18 %a) pipe {
  ui18 %dead1 = mul ui18 %a, %a
  ui18 %dead2 = add ui18 %dead1, 1
  ui18 %live = add ui18 %a, 1
  ui18 @out = mov ui18 %live
}
define void @main () { call @f0(@a) pipe }
)");
  const PassStats stats = eliminate_dead_code(m);
  EXPECT_EQ(stats.removed, 2u);
  EXPECT_EQ(m.find_function("f0")->instructions().size(), 2u);
}

TEST(Passes, DceKeepsReductionsAndUnusedOffsets) {
  Module m = parse_module_or_die(R"(
!ngs = 16
define void @f0(ui18 %a) pipe {
  ui18 %p1 = ui18 %a, !offset, !+1
  ui18 @acc = add ui18 %a, @acc
}
define void @main () { call @f0(@a) pipe }
)");
  const PassStats stats = eliminate_dead_code(m);
  EXPECT_EQ(stats.removed, 1u);  // the unused offset stream goes
  EXPECT_EQ(m.find_function("f0")->instructions().size(), 1u);  // acc stays
}

TEST(Passes, HotspotSemanticsPreserved) {
  kernels::HotspotConfig cfg;
  cfg.rows = cfg.cols = 12;
  Module m = kernels::make_hotspot(cfg);
  const auto inputs = kernels::hotspot_inputs(cfg);
  const auto before = sim::run_functional(m, inputs);
  ASSERT_TRUE(before.ok());

  const PassStats stats = optimize(m);
  EXPECT_GT(stats.merged, 0u);  // the duplicated doubling merges
  EXPECT_TRUE(verify_ok(m)) << verify(m).to_string();

  const auto after = sim::run_functional(m, inputs);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(before.value().outputs.at("temp_new"),
            after.value().outputs.at("temp_new"));
}

TEST(Passes, SorSemanticsPreserved) {
  kernels::SorConfig cfg;
  cfg.im = cfg.jm = cfg.km = 6;
  Module m = kernels::make_sor(cfg);
  const auto inputs = kernels::sor_inputs(cfg);
  const auto before = sim::run_functional(m, inputs);
  ASSERT_TRUE(before.ok());
  optimize(m);
  const auto after = sim::run_functional(m, inputs);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(before.value().outputs.at("p_new"), after.value().outputs.at("p_new"));
  EXPECT_EQ(before.value().reductions.at("sorErrAcc"),
            after.value().reductions.at("sorErrAcc"));
}

TEST(Passes, OptimizingNarrowsTheEstimateGap) {
  // Running the same optimizations the fabric applies shrinks hotspot's
  // estimated ALUT/reg total (the CSE'd duplicate no longer double-counted).
  kernels::HotspotConfig cfg;
  cfg.rows = cfg.cols = 32;
  Module raw = kernels::make_hotspot(cfg);
  Module opt = raw;
  optimize(opt);

  const auto db = cost::DeviceCostDb::calibrate(target::stratix_v_gsd8());
  const auto est_raw = cost::estimate_resources(raw, db);
  const auto est_opt = cost::estimate_resources(opt, db);
  EXPECT_LT(est_opt.total.regs, est_raw.total.regs);
}

TEST(Passes, OptimizeReachesFixpoint) {
  kernels::SorConfig cfg;
  cfg.im = cfg.jm = cfg.km = 4;
  Module m = kernels::make_sor(cfg);
  optimize(m);
  const PassStats again = optimize(m);
  EXPECT_EQ(again.total(), 0u);
}

}  // namespace
