// Tests for the design-space explorer: ranking by EKIT, wall detection
// (the Fig. 15 structure), invalid-variant filtering, and the MaxJ-like
// baseline comparison of §VII.

#include <gtest/gtest.h>

#include "tytra/dse/explorer.hpp"
#include "tytra/kernels/kernels.hpp"

namespace {

using namespace tytra;
using dse::DseOptions;
using dse::DseResult;

constexpr std::uint32_t kDim = 24;  // 13824 work-items (the Fig. 15 grid)

dse::LowerFn sor_lower(ir::ExecForm form) {
  return [form](const frontend::Variant& v) {
    kernels::SorConfig cfg;
    cfg.im = cfg.jm = cfg.km = kDim;
    cfg.lanes = v.lanes();
    cfg.nki = 10;
    cfg.form = form;
    return kernels::make_sor(cfg);
  };
}

const cost::DeviceCostDb& fig15_db() {
  static const auto db = cost::DeviceCostDb::calibrate(target::fig15_profile());
  return db;
}

TEST(Dse, ExploresAllLaneCounts) {
  DseOptions opt;
  opt.max_lanes = 16;
  const DseResult r =
      dse::explore(kDim * kDim * kDim, sor_lower(ir::ExecForm::B), fig15_db(), opt);
  // 13824 work-items: divisors 1,2,3,4,6,8,9,12,16 within the cap.
  ASSERT_EQ(r.entries.size(), 9u);
  EXPECT_EQ(r.entries.front().report.params.knl, 1u);
  EXPECT_EQ(r.entries.back().report.params.knl, 16u);
}

TEST(Dse, InvalidVariantsAreFilteredFromBest) {
  const DseResult r = dse::explore(kDim * kDim * kDim,
                                   sor_lower(ir::ExecForm::B), fig15_db(), {});
  ASSERT_TRUE(r.best.has_value());
  const auto& best = r.entries[*r.best];
  EXPECT_TRUE(best.report.valid);
  // On the fig15 profile the computation wall hits at six lanes: the 8-,
  // 12- and 16-lane variants exceed the ALUT budget.
  EXPECT_EQ(best.report.params.knl, 6u);
  bool some_invalid = false;
  for (const auto& e : r.entries) some_invalid |= !e.report.valid;
  EXPECT_TRUE(some_invalid);
}

TEST(Dse, BestBeatsMaxjBaseline) {
  // The case-study claim: exploring the space beats the HLS tool's
  // pipeline-only implementation.
  const DseResult r = dse::explore(kDim * kDim * kDim,
                                   sor_lower(ir::ExecForm::B), fig15_db(), {});
  const auto baseline =
      dse::maxj_baseline(kDim * kDim * kDim, sor_lower(ir::ExecForm::B), fig15_db());
  ASSERT_TRUE(r.best.has_value());
  EXPECT_GT(r.entries[*r.best].report.throughput.ekit,
            baseline.throughput.ekit * 2.0);
  EXPECT_EQ(baseline.params.knl, 1u);
}

TEST(Dse, FormAHitsHostWallEarlierThanFormB) {
  // Fig. 15: the host communication wall sits at ~4 lanes for form A;
  // with form B it moves out to ~16 lanes.
  const DseResult a = dse::explore(kDim * kDim * kDim,
                                   sor_lower(ir::ExecForm::A), fig15_db(), {});
  const DseResult b = dse::explore(kDim * kDim * kDim,
                                   sor_lower(ir::ExecForm::B), fig15_db(), {});
  auto wall_lanes = [](const DseResult& r, cost::Wall wall) -> std::uint32_t {
    for (const auto& e : r.entries) {
      if (e.report.throughput.limiting == wall) return e.report.params.knl;
    }
    return 0;
  };
  const std::uint32_t host_wall_a = wall_lanes(a, cost::Wall::HostBandwidth);
  EXPECT_GT(host_wall_a, 0u);
  EXPECT_LE(host_wall_a, 8u);
  // Form B never hits the host wall in this sweep.
  EXPECT_EQ(wall_lanes(b, cost::Wall::HostBandwidth), 0u);
}

TEST(Dse, EkitImprovesUntilTheWall) {
  const DseResult r = dse::explore(kDim * kDim * kDim,
                                   sor_lower(ir::ExecForm::B), fig15_db(), {});
  double prev = 0;
  for (const auto& e : r.entries) {
    if (!e.report.valid) break;
    EXPECT_GE(e.report.throughput.ekit, prev * 0.999);
    prev = e.report.throughput.ekit;
  }
}

TEST(Dse, SweepFormatterListsEveryVariant) {
  const DseResult r = dse::explore(kDim * kDim * kDim,
                                   sor_lower(ir::ExecForm::B), fig15_db(), {});
  const std::string text = dse::format_sweep(r);
  EXPECT_NE(text.find("lanes"), std::string::npos);
  EXPECT_NE(text.find("best:"), std::string::npos);
  EXPECT_NE(text.find("INVALID"), std::string::npos);
  // One line per entry plus header and best line.
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'),
            static_cast<std::ptrdiff_t>(r.entries.size()) + 2);
}

TEST(Dse, ExplorationIsFast) {
  const DseResult r = dse::explore(kDim * kDim * kDim,
                                   sor_lower(ir::ExecForm::B), fig15_db(), {});
  // The paper: 0.3 s/variant in Perl. Our C++ estimator is far faster;
  // hold the whole sweep under that budget per variant.
  EXPECT_LT(r.explore_seconds / static_cast<double>(r.entries.size()), 0.3);
}

}  // namespace
