// Tests for the file-backed workload path: the `.tir` loader, the
// `!ND<k>` re-parameterization contract, lane replication equivalence
// against the built-in kernels, and registry integration. The golden
// test pins the acceptance criterion: a file-backed SOR sweep is
// byte-identical to the built-in `sor` workload on every device preset
// and across thread counts.

#include <gtest/gtest.h>

#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include "tytra/dse/session.hpp"
#include "tytra/kernels/file_workload.hpp"
#include "tytra/kernels/registry.hpp"
#include "tytra/target/device.hpp"

namespace {

using namespace tytra;

#ifdef TYTRA_SOURCE_DIR
std::string source_dir() { return TYTRA_SOURCE_DIR; }
#else
std::string source_dir() { return {}; }
#endif

std::string read_file_or_empty(const std::string& path) {
  std::ifstream in(path);
  if (!in) return {};
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::string sor_tir() {
  static const std::string text =
      read_file_or_empty(source_dir() + "/examples/ir/sor.tir");
  return text;
}

/// A minimal fixed-size (no !ND<k>) design.
constexpr const char* kFixedIr = R"(!name = fixed
!ngs = 64
memobj @m_a global ui18 x 64
memobj @m_b global ui18 x 64
stream @s_a reads @m_a pattern cont
stream @s_b writes @m_b pattern cont
@main.a = addrSpace(1) ui18, !"istream", !"CONT", !0, !"s_a"
@main.b = addrSpace(1) ui18, !"ostream", !"CONT", !0, !"s_b"
define void @f0(ui18 %a, ui18 %b) pipe {
  ui18 %t1 = add ui18 %a, 1
  ui18 @b = mov ui18 %t1
}
define void @main() pipe {
  call @f0(@a, @b) pipe
}
)";

std::string sweep_output(dse::Session& session, const dse::Job& job,
                         bool pareto = true) {
  const dse::DseResult r = session.explore(job);
  std::string out = dse::format_sweep(r);
  if (pareto) out += dse::format_pareto(r);
  return out;
}

}  // namespace

TEST(FileWorkload, LoaderReadsNdConstantsAndDigest) {
  ASSERT_FALSE(sor_tir().empty()) << "examples/ir/sor.tir not found under "
                                  << source_dir();
  auto loaded = kernels::load_file_workload(sor_tir());
  ASSERT_TRUE(loaded.ok()) << loaded.error_message();
  const kernels::FileWorkload& fw = loaded.value();
  EXPECT_EQ(fw.default_nd, 24u);
  ASSERT_EQ(fw.nd_constants.size(), 1u);
  EXPECT_EQ(fw.nd_constants.front(), "nd1");
  EXPECT_EQ(fw.baseline->meta.global_size, 24ull * 24 * 24);
  EXPECT_EQ(fw.baseline->meta.nki, 10u);
  // The fingerprint is the structural digest rendered as text.
  EXPECT_EQ(fw.fingerprint.rfind("tir/digest=", 0), 0u) << fw.fingerprint;
}

TEST(FileWorkload, NdOverrideRederivesEverySize) {
  auto loaded = kernels::load_file_workload(sor_tir(), 64);
  ASSERT_TRUE(loaded.ok()) << loaded.error_message();
  const kernels::FileWorkload& fw = loaded.value();
  EXPECT_EQ(fw.default_nd, 24u);  // the file's own value, not the override
  EXPECT_EQ(fw.baseline->meta.global_size, 64ull * 64 * 64);
  for (const auto& mo : fw.baseline->memobjs) {
    EXPECT_EQ(mo.size_words, 64ull * 64 * 64) << mo.name;
  }
  // A different dimension is a different design.
  auto base = kernels::load_file_workload(sor_tir());
  ASSERT_TRUE(base.ok());
  EXPECT_NE(fw.fingerprint, base.value().fingerprint);
}

TEST(FileWorkload, FixedSizeDesignRejectsNdOverride) {
  auto ok = kernels::load_file_workload(kFixedIr);
  ASSERT_TRUE(ok.ok()) << ok.error_message();
  EXPECT_EQ(ok.value().default_nd, 1u);
  EXPECT_TRUE(ok.value().nd_constants.empty());
  EXPECT_EQ(ok.value().baseline->meta.global_size, 64u);

  auto same = kernels::load_file_workload(kFixedIr, 1);
  EXPECT_TRUE(same.ok()) << same.error_message();

  auto bad = kernels::load_file_workload(kFixedIr, 32);
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.error_message().find("fixed-size"), std::string::npos)
      << bad.error_message();
}

TEST(FileWorkload, LoaderReportsStructuredErrors) {
  // Lexical/syntactic failure carries a location.
  auto parse_err = kernels::load_file_workload("!ngs = \n");
  ASSERT_FALSE(parse_err.ok());
  EXPECT_TRUE(parse_err.diag().loc.known()) << parse_err.error_message();

  // Semantic (verifier) failure: @main missing.
  auto no_main = kernels::load_file_workload("!ngs = 8\n");
  ASSERT_FALSE(no_main.ok());
  EXPECT_NE(no_main.error_message().find("main"), std::string::npos)
      << no_main.error_message();

  // A parseable, verifiable module with no NDRange is not explorable.
  auto no_ngs = kernels::load_file_workload(
      "define void @main() pipe {\n}\n");
  ASSERT_FALSE(no_ngs.ok());
}

TEST(FileWorkload, RegistryRejectsDuplicatesWithStructuredError) {
  kernels::Registry reg;
  auto first = kernels::register_file_workload(reg, "design", "a.tir",
                                               kFixedIr);
  ASSERT_TRUE(first.ok()) << first.error_message();
  EXPECT_EQ(first.value()->source, "a.tir");
  EXPECT_EQ(first.value()->default_nd, 1u);

  auto dup = kernels::register_file_workload(reg, "design", "b.tir",
                                             kFixedIr);
  ASSERT_FALSE(dup.ok());
  EXPECT_NE(dup.error_message().find("already registered"), std::string::npos)
      << dup.error_message();

  // try_add on the registry itself reports the same structured error.
  kernels::WorkloadInfo info = *reg.find("design");
  auto again = reg.try_add(std::move(info));
  ASSERT_FALSE(again.ok());
  EXPECT_NE(again.error_message().find("already registered"),
            std::string::npos);
}

TEST(FileWorkload, RegisteredWorkloadMakesExplorableJobs) {
  kernels::Registry reg;
  auto added =
      kernels::register_file_workload(reg, "sor-file", "sor.tir", sor_tir());
  ASSERT_TRUE(added.ok()) << added.error_message();

  auto n = added.value()->ndrange(64);
  ASSERT_TRUE(n.ok()) << n.error_message();
  EXPECT_EQ(n.value(), 64ull * 64 * 64);
  EXPECT_FALSE(n.ok() && reg.make_job("sor-file", 0).ok());

  auto job = reg.make_job("sor-file", 64);
  ASSERT_TRUE(job.ok()) << job.error_message();
  EXPECT_EQ(job.value().n, 64ull * 64 * 64);
}

TEST(FileWorkload, RegistrationByPathIsIdempotent) {
  kernels::Registry reg;
  const std::string path = source_dir() + "/examples/ir/sor.tir";
  auto first = kernels::register_file_workload(reg, path);
  ASSERT_TRUE(first.ok()) << first.error_message();
  auto second = kernels::register_file_workload(reg, path);
  ASSERT_TRUE(second.ok()) << second.error_message();
  EXPECT_EQ(first.value(), second.value());

  auto missing = kernels::register_file_workload(reg, "no/such/file.tir");
  ASSERT_FALSE(missing.ok());
  EXPECT_NE(missing.error_message().find("cannot read"), std::string::npos);
}

// The acceptance criterion: the file-backed SOR sweeps byte-identically
// to the built-in `sor` workload — same variants, same costs, same
// Pareto frontier — on every device preset, serial and parallel.
TEST(FileWorkload, SweepByteIdenticalToBuiltinSorOnAllPresets) {
  auto loaded = kernels::load_file_workload(sor_tir(), 64);
  ASSERT_TRUE(loaded.ok()) << loaded.error_message();

  for (const auto& preset_name : target::preset_names()) {
    const auto desc = target::preset(preset_name);
    ASSERT_TRUE(desc.has_value());
    for (const std::uint32_t threads : {1u, 8u}) {
      dse::SessionOptions so;
      so.max_lanes = 16;
      so.num_threads = threads;
      so.enable_cache = false;  // what the CLI's one-shot explore uses
      dse::Session session(so);
      session.add_device(*desc);

      auto builtin = kernels::Registry::instance().make_job("sor", 64);
      ASSERT_TRUE(builtin.ok()) << builtin.error_message();

      dse::Job file_job;
      file_job.workload = "sor-file";
      file_job.n = loaded.value().baseline->meta.global_size;
      file_job.lower = std::make_shared<dse::KeyedLowerer>(
          kernels::file_lowerer(loaded.value().baseline));

      EXPECT_EQ(sweep_output(session, file_job),
                sweep_output(session, builtin.value()))
          << "preset " << preset_name << ", " << threads << " thread(s)";
    }
  }
}
