// End-to-end tests of the tytra-cc failure surface: TYTRA_FAILPOINTS
// arming through the environment, the --on-error continue|abort campaign
// policy, per-job status reporting in text and JSON, --deadline-ms, and
// the no-partial-stdout contract (a degraded or aborted run never leaves
// half a table on stdout).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

namespace {

#if defined(TYTRA_CC_BIN) && defined(TYTRA_SOURCE_DIR)

struct RunResult {
  int exit_code{-1};
  std::string out;
  std::string err;
};

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Runs tytra-cc with `args`, optionally under a TYTRA_FAILPOINTS spec
/// (sh-style `VAR=value cmd` prefix — each invocation is a fresh process,
/// so the env-arming startup path is the one under test).
RunResult run_cc(const std::string& args, const std::string& failpoints = {}) {
  static int counter = 0;
  const std::string tag = "cli_fail_" + std::to_string(counter++);
  const std::string out_path = tag + ".out";
  const std::string err_path = tag + ".err";
  std::string cmd;
  if (!failpoints.empty()) cmd += "TYTRA_FAILPOINTS='" + failpoints + "' ";
  cmd += std::string(TYTRA_CC_BIN) + " " + args + " > " + out_path + " 2> " +
         err_path;
  const int status = std::system(cmd.c_str());
  RunResult r;
  r.exit_code = status < 0 ? status : WEXITSTATUS(status);
  r.out = read_file(out_path);
  r.err = read_file(err_path);
  std::remove(out_path.c_str());
  std::remove(err_path.c_str());
  return r;
}

/// A unique snapshot path in the ctest working directory, removed on
/// destruction.
struct TempSnap {
  explicit TempSnap(const std::string& tag) {
    static int counter = 0;
    path = tag + "_" + std::to_string(counter++) + ".snap";
    std::remove(path.c_str());
  }
  ~TempSnap() { std::remove(path.c_str()); }
  std::string path;
};

std::string sor_tir_path() {
  return std::string(TYTRA_SOURCE_DIR) + "/examples/ir/sor.tir";
}

/// Drops the first line (the banner carries wall-clock timings).
std::string strip_banner(const std::string& text) {
  const auto nl = text.find('\n');
  return nl == std::string::npos ? std::string() : text.substr(nl + 1);
}

std::size_t count_of(const std::string& hay, const std::string& needle) {
  std::size_t n = 0;
  for (auto at = hay.find(needle); at != std::string::npos;
       at = hay.find(needle, at + needle.size())) {
    ++n;
  }
  return n;
}

// ---------------------------------------------------------------------------
// --on-error policy
// ---------------------------------------------------------------------------

TEST(CliFailure, ContinuePolicyReportsPerJobStatusAndExitsZero) {
  const RunResult r = run_cc(
      "campaign --kernel sor --kernel hotspot --on-error continue --json",
      "dse.pool-task=100%");
  EXPECT_EQ(r.exit_code, 0) << r.err;
  EXPECT_EQ(count_of(r.out, "\"status\": \"failed\""), 2u) << r.out;
  EXPECT_NE(r.out.find("\"error\": \"injected fault at failpoint "
                       "'dse.pool-task'\""),
            std::string::npos)
      << r.out;
  EXPECT_NE(r.out.find("\"degraded\": 2"), std::string::npos) << r.out;
}

TEST(CliFailure, AbortPolicyIsTheDefaultAndKeepsStdoutEmpty) {
  for (const std::string extra : {"", " --on-error abort"}) {
    const RunResult r =
        run_cc("campaign --kernel sor" + extra, "dse.pool-task=100%");
    EXPECT_EQ(r.exit_code, 1) << extra;
    EXPECT_TRUE(r.out.empty()) << extra << " wrote to stdout: " << r.out;
    EXPECT_NE(r.err.find("'sor'"), std::string::npos) << r.err;
    EXPECT_NE(r.err.find("failed: injected fault at failpoint "
                         "'dse.pool-task'"),
              std::string::npos)
        << r.err;
  }
}

TEST(CliFailure, ContinuePolicyTextOutputMarksTheDegradedRows) {
  const RunResult r = run_cc(
      "campaign --kernel sor --kernel hotspot --on-error continue",
      "dse.pool-task=100%");
  EXPECT_EQ(r.exit_code, 0) << r.err;
  EXPECT_EQ(count_of(r.out, "failed: injected fault"), 2u) << r.out;
  EXPECT_NE(r.out.find("degraded: 2 of 2 jobs (failed=2 timed_out=0 "
                       "cancelled=0)"),
            std::string::npos)
      << r.out;
}

TEST(CliFailure, SurvivingJobsRenderByteIdenticalUnderContinue) {
  // Fire the pool-task failpoint on every 10th evaluation (serial, so
  // the paced firing is deterministic): one job dies, the others
  // survive, and the survivors' rows must match the fault-free run
  // exactly. The comparison is row-by-row rather than pinning the
  // casualty, so reshuffling the flattened task order stays harmless.
  const RunResult clean = run_cc("campaign --nd 16 --jobs 1");
  ASSERT_EQ(clean.exit_code, 0) << clean.err;
  const RunResult faulted = run_cc("campaign --nd 16 --jobs 1 "
                                   "--on-error continue",
                                   "dse.pool-task=10%");
  ASSERT_EQ(faulted.exit_code, 0) << faulted.err;
  EXPECT_NE(faulted.out.find("degraded:"), std::string::npos)
      << "10% over every job's variants should down at least one job:\n"
      << faulted.out;

  std::istringstream clean_rows(strip_banner(clean.out));
  std::istringstream faulted_rows(strip_banner(faulted.out));
  std::string c;
  std::string f;
  std::size_t surviving = 0;
  while (std::getline(clean_rows, c) && std::getline(faulted_rows, f)) {
    if (c.rfind("campaign:", 0) == 0) break;  // summary lines diverge (stats)
    if (f.find("failed:") != std::string::npos) continue;  // a casualty row
    EXPECT_EQ(f, c);
    ++surviving;
  }
  EXPECT_GT(surviving, 1u) << faulted.out;
}

TEST(CliFailure, HealthyCampaignJsonCarriesOkStatusAndZeroDegraded) {
  const RunResult r = run_cc("campaign --kernel sor --json");
  EXPECT_EQ(r.exit_code, 0) << r.err;
  EXPECT_NE(r.out.find("\"status\": \"ok\""), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("\"degraded\": 0"), std::string::npos) << r.out;
  EXPECT_EQ(r.out.find("\"error\""), std::string::npos)
      << "ok jobs must not carry an error field: " << r.out;
}

// ---------------------------------------------------------------------------
// Failpoint seams through the CLI
// ---------------------------------------------------------------------------

TEST(CliFailure, CacheInsertFaultIsInvisibleToResults) {
  const RunResult clean = run_cc("campaign --kernel sor");
  ASSERT_EQ(clean.exit_code, 0) << clean.err;
  const RunResult faulted = run_cc("campaign --kernel sor",
                                   "cache.insert=100%");
  EXPECT_EQ(faulted.exit_code, 0) << faulted.err;
  EXPECT_EQ(strip_banner(faulted.out), strip_banner(clean.out))
      << "lost memoization changed the results";
}

TEST(CliFailure, SetupFaultsFailBeforeAnyStdout) {
  // Faults ahead of evaluation (calibration, the bandwidth ladder, file
  // workload parsing) are invocation failures: exit 1, clean stdout.
  struct Case {
    const char* failpoints;
    std::string args;
  };
  const Case cases[] = {
      {"calibration.measure=100%", "explore sor"},
      {"membench.measure=100%", "explore sor"},
      {"calibration.measure=100%", "campaign --kernel sor"},
      {"workload.parse=100%", "campaign --ir " + sor_tir_path()},
      {"workload.parse=100%", "explore --ir " + sor_tir_path()},
  };
  for (const auto& c : cases) {
    const RunResult r = run_cc(c.args, c.failpoints);
    EXPECT_EQ(r.exit_code, 1) << c.failpoints << " / " << c.args;
    EXPECT_TRUE(r.out.empty())
        << c.failpoints << " wrote to stdout: " << r.out;
    EXPECT_NE(r.err.find("injected fault"), std::string::npos) << r.err;
  }
}

TEST(CliFailure, SnapshotLoadFaultDegradesToColdStart) {
  TempSnap snap("load_fault");
  const std::string args = "campaign --kernel sor --snapshot " + snap.path;
  const RunResult cold = run_cc(args);
  ASSERT_EQ(cold.exit_code, 0) << cold.err;

  for (const char* point : {"snapshot.load=100%", "binio.read=100%"}) {
    const RunResult degraded = run_cc(args, point);
    EXPECT_EQ(degraded.exit_code, 0) << point << ": " << degraded.err;
    EXPECT_EQ(strip_banner(degraded.out), strip_banner(cold.out)) << point;
    EXPECT_NE(degraded.err.find("warning: snapshot-load"), std::string::npos)
        << point << ": " << degraded.err;
    EXPECT_NE(degraded.err.find("action=cold-start"), std::string::npos)
        << point << ": " << degraded.err;
  }
}

TEST(CliFailure, SnapshotSaveFaultIsLoudNonzeroAndLeavesNoStdout) {
  TempSnap snap("save_fault");
  for (const char* point : {"snapshot.save=100%", "binio.write=100%"}) {
    const RunResult r =
        run_cc("campaign --kernel sor --snapshot " + snap.path, point);
    EXPECT_EQ(r.exit_code, 1) << point;
    EXPECT_TRUE(r.out.empty()) << point << " wrote to stdout: " << r.out;
    EXPECT_NE(r.err.find("injected fault"), std::string::npos)
        << point << ": " << r.err;
  }
}

// ---------------------------------------------------------------------------
// Env-spec strictness and flag validation
// ---------------------------------------------------------------------------

TEST(CliFailure, MalformedSpecWarnsOnceAndArmsNothing) {
  const RunResult clean = run_cc("campaign --kernel sor");
  ASSERT_EQ(clean.exit_code, 0) << clean.err;
  for (const char* bad : {"bogus.point=100%", "dse.pool-task=banana",
                          "dse.pool-task"}) {
    const RunResult r = run_cc("campaign --kernel sor", bad);
    EXPECT_EQ(r.exit_code, 0) << bad << ": " << r.err;
    EXPECT_EQ(strip_banner(r.out), strip_banner(clean.out)) << bad;
    EXPECT_EQ(count_of(r.err, "TYTRA_FAILPOINTS"), 1u)
        << bad << ": " << r.err;
    EXPECT_NE(r.err.find("nothing armed"), std::string::npos)
        << bad << ": " << r.err;
  }
}

TEST(CliFailure, BadPolicyAndDeadlineFlagsExitTwoCleanly) {
  struct Case {
    const char* args;
    const char* expect;
  };
  const Case cases[] = {
      {"campaign --on-error sometimes", "'sometimes' is not continue|abort"},
      {"campaign --on-error", "--on-error requires a value"},
      {"campaign --deadline-ms 0", "not a positive integer"},
      {"campaign --deadline-ms banana", "not a positive integer"},
      {"explore sor --deadline-ms", "--deadline-ms requires a value"},
  };
  for (const auto& c : cases) {
    const RunResult r = run_cc(c.args);
    EXPECT_EQ(r.exit_code, 2) << c.args;
    EXPECT_TRUE(r.out.empty()) << c.args << " wrote to stdout: " << r.out;
    EXPECT_NE(r.err.find(c.expect), std::string::npos)
        << c.args << " stderr: " << r.err;
  }
}

TEST(CliFailure, DeadlineTripsReliablyOnAJobFarOverBudget) {
  // --deadline-ms cannot be made instant from the CLI (the minimum is
  // 1 ms), so the job under deadline is a wide cold sweep (~100 ms
  // serial, two orders of magnitude over budget) — the variant-level
  // deadline check trips long before the sweep can finish.
  const std::string heavy = "sor --nd 96 --max-lanes 4096 --jobs 1";

  const RunResult abort_run =
      run_cc("campaign --kernel " + heavy + " --deadline-ms 1");
  EXPECT_EQ(abort_run.exit_code, 1);
  EXPECT_TRUE(abort_run.out.empty()) << abort_run.out;
  EXPECT_NE(abort_run.err.find("timed_out: deadline exceeded"),
            std::string::npos)
      << abort_run.err;

  const RunResult cont = run_cc("campaign --kernel " + heavy +
                                " --deadline-ms 1 --on-error continue --json");
  EXPECT_EQ(cont.exit_code, 0) << cont.err;
  EXPECT_NE(cont.out.find("\"status\": \"timed_out\""), std::string::npos)
      << cont.out;

  const RunResult explore_run =
      run_cc("explore " + heavy + " --deadline-ms 1");
  EXPECT_EQ(explore_run.exit_code, 1);
  EXPECT_TRUE(explore_run.out.empty()) << explore_run.out;
  EXPECT_NE(explore_run.err.find("deadline exceeded"), std::string::npos)
      << explore_run.err;
}

#else  // TYTRA_CC_BIN / TYTRA_SOURCE_DIR

TEST(CliFailure, RequiresToolPaths) {
  GTEST_SKIP() << "built without TYTRA_CC_BIN/TYTRA_SOURCE_DIR";
}

#endif

}  // namespace
