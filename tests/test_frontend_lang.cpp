// Tests for the functional design-entry language: the paper's §II
// programs parse and elaborate, size preservation is enforced as a type
// error, and the elaborated variants drive the DSE flow end-to-end.

#include <gtest/gtest.h>

#include "tytra/cost/report.hpp"
#include "tytra/frontend/lang.hpp"
#include "tytra/kernels/kernels.hpp"

namespace {

using namespace tytra::frontend;

TEST(Lang, BaselineProgramOfSectionII) {
  const auto r = parse_program(R"(
-- SOR baseline: all im*jm*km items through a single pipeline
im = 24
jm = 24
km = 24
pps : Vect im*jm*km t
ps = map p_sor pps
)");
  ASSERT_TRUE(r.ok()) << r.error_message();
  const Program& p = r.value();
  EXPECT_EQ(p.kernel, "p_sor");
  EXPECT_EQ(p.result, "ps");
  EXPECT_EQ(p.variant.dims(), (std::vector<std::uint64_t>{24 * 24 * 24}));
  EXPECT_EQ(p.variant.lanes(), 1u);
  EXPECT_TRUE(p.variant.pipelined());
}

TEST(Lang, ReshapedProgramOfSectionII) {
  // The paper's transformed program:
  //   ppst = reshapeTo km pps
  //   pst = mappar (mappipe p_sor) ppst
  const auto r = parse_program(R"(
im = 4
jm = 4
km = 4
pps : Vect im*jm*km t
ppst = reshapeTo km pps
pst = mappar (mappipe p_sor) ppst
)");
  ASSERT_TRUE(r.ok()) << r.error_message();
  const Program& p = r.value();
  EXPECT_EQ(p.variant.dims(), (std::vector<std::uint64_t>{4, 16}));
  EXPECT_EQ(p.variant.anns()[0], ParAnn::Par);
  EXPECT_EQ(p.variant.anns()[1], ParAnn::Pipe);
  EXPECT_EQ(p.variant.lanes(), 4u);
  EXPECT_EQ(p.variant.flat_size(), 64u);
}

TEST(Lang, SizePreservationIsATypeError) {
  const auto r = parse_program(R"(
pps : Vect 100 t
ppst = reshapeTo 7 pps
pst = mappar (mappipe f) ppst
)");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error_message().find("does not preserve"), std::string::npos);
}

TEST(Lang, MapDepthMustMatchNesting) {
  const auto r = parse_program(R"(
pps : Vect 64 t
ppst = reshapeTo 4 pps
bad = map f ppst
)");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error_message().find("does not match vector nesting"),
            std::string::npos);
}

TEST(Lang, ParInsidePipeRejected) {
  const auto r = parse_program(R"(
pps : Vect 64 t
ppst = reshapeTo 4 pps
bad = mappipe (mappar f) ppst
)");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error_message().find("par"), std::string::npos);
}

TEST(Lang, RepeatedReshapeNestsDeeper) {
  const auto r = parse_program(R"(
pps : Vect 1024 t
a = reshapeTo 4 pps
b = reshapeTo 2 a
prog = mappar (mappar (mappipe f)) b
)");
  ASSERT_TRUE(r.ok()) << r.error_message();
  EXPECT_EQ(r.value().variant.dims(), (std::vector<std::uint64_t>{4, 2, 128}));
  EXPECT_EQ(r.value().variant.lanes(), 8u);
}

TEST(Lang, SequentialAnnotation) {
  const auto r = parse_program(R"(
v : Vect 256 t
s = mapseq f v
)");
  ASSERT_TRUE(r.ok()) << r.error_message();
  EXPECT_EQ(r.value().variant.anns()[0], ParAnn::Seq);
}

TEST(Lang, ErrorsCarryLocationsAndNames) {
  const auto unknown_vec = parse_program("p = map f nowhere\n");
  ASSERT_FALSE(unknown_vec.ok());
  EXPECT_NE(unknown_vec.error_message().find("nowhere"), std::string::npos);

  const auto unknown_const = parse_program("v : Vect im t\np = map f v\n");
  ASSERT_FALSE(unknown_const.ok());
  EXPECT_NE(unknown_const.error_message().find("im"), std::string::npos);

  const auto no_bindings = parse_program("-- just a comment\n");
  EXPECT_FALSE(no_bindings.ok());

  const auto decl_only = parse_program("v : Vect 4 t\n");
  EXPECT_FALSE(decl_only.ok());
}

TEST(Lang, ElaboratedVariantDrivesTheCostFlow) {
  const auto r = parse_program(R"(
im = 8
jm = 8
km = 8
pps : Vect im*jm*km t
ppst = reshapeTo 4 pps
pst = mappar (mappipe p_sor) ppst
)");
  ASSERT_TRUE(r.ok()) << r.error_message();

  tytra::kernels::SorConfig cfg;
  cfg.im = cfg.jm = cfg.km = 8;
  cfg.lanes = r.value().variant.lanes();
  const tytra::ir::Module m = tytra::kernels::make_sor(cfg);
  const auto db =
      tytra::cost::DeviceCostDb::calibrate(tytra::target::stratix_v_gsd8());
  const auto report = tytra::cost::cost_design(m, db);
  EXPECT_EQ(report.params.knl, 4u);
  EXPECT_TRUE(report.valid);
}

}  // namespace
