// Tests for the cost model: calibration (fitted Fig. 9 laws), resource
// estimation accuracy against the fabric ground truth (the Table II
// error bands), and the empirical bandwidth integration.

#include <gtest/gtest.h>

#include <cmath>

#include "tytra/cost/calibration.hpp"
#include "tytra/cost/report.hpp"
#include "tytra/cost/resource_model.hpp"
#include "tytra/fabric/cores.hpp"
#include "tytra/fabric/synth.hpp"
#include "tytra/ir/verifier.hpp"
#include "tytra/kernels/kernels.hpp"

namespace {

using namespace tytra;
using cost::DeviceCostDb;
using ir::Opcode;
using ir::ScalarType;

const target::DeviceDesc& dev() {
  static const target::DeviceDesc d = target::stratix_v_gsd8();
  return d;
}
const DeviceCostDb& db() {
  static const DeviceCostDb db = DeviceCostDb::calibrate(dev());
  return db;
}

double pct_err(double est, double actual) {
  return std::abs(est - actual) / std::max(1.0, std::abs(actual)) * 100.0;
}

TEST(Calibration, DividerFitInterpolatesUnseenWidth) {
  // Fig. 9's experiment: fit from probes, interpolate 24 bits, compare to
  // the synthesized actual (654 vs 652-style agreement: within ~1%).
  const ResourceVec est = db().op_cost(Opcode::Div, ScalarType::uint(24));
  const ResourceVec act =
      fabric::core_resources(Opcode::Div, ScalarType::uint(24), dev());
  EXPECT_LT(pct_err(est.aluts, act.aluts), 1.5);
}

TEST(Calibration, DividerLawIsQuadratic) {
  const auto& law = db().int_law(Opcode::Div);
  EXPECT_EQ(law.fit_degree, 2);
  ASSERT_EQ(law.aluts.coeffs().size(), 3u);
  EXPECT_NEAR(law.aluts.coeffs()[2], 1.0, 0.05);  // the x^2 coefficient
}

TEST(Calibration, AdderLawIsLinear) {
  const auto& law = db().int_law(Opcode::Add);
  EXPECT_EQ(law.fit_degree, 1);
  const ResourceVec est = db().op_cost(Opcode::Add, ScalarType::uint(40));
  const ResourceVec act =
      fabric::core_resources(Opcode::Add, ScalarType::uint(40), dev());
  EXPECT_LT(pct_err(est.aluts, act.aluts), 2.0);
}

TEST(Calibration, MultiplierDspStepsRecovered) {
  const auto& law = db().int_law(Opcode::Mul);
  const auto disc = law.dsps.discontinuities();
  ASSERT_GE(disc.size(), 3u);
  EXPECT_DOUBLE_EQ(disc[0], 19.0);
  EXPECT_DOUBLE_EQ(disc[1], 28.0);
  EXPECT_DOUBLE_EQ(law.dsps.eval(18), 1.0);
  EXPECT_DOUBLE_EQ(law.dsps.eval(32), 4.0);
}

TEST(Calibration, EstimatesAcrossOpsAndWidthsWithinFivePercent) {
  // Parameter sweep: the whole integer op set at unseen widths.
  for (int i = 0; i < ir::kNumOpcodes; ++i) {
    const auto op = static_cast<Opcode>(i);
    if (!ir::op_info(op).integer_ok) continue;
    for (const int w : {12, 20, 24, 40, 48}) {
      const ScalarType t = ScalarType::uint(static_cast<std::uint16_t>(w));
      const ResourceVec est = db().op_cost(op, t);
      const ResourceVec act = fabric::core_resources(op, t, dev());
      if (act.aluts > 20) {
        EXPECT_LT(pct_err(est.aluts, act.aluts), 6.0)
            << ir::opcode_name(op) << " w=" << w << " est=" << est.aluts
            << " act=" << act.aluts;
      }
      EXPECT_DOUBLE_EQ(est.dsps, act.dsps)
          << ir::opcode_name(op) << " w=" << w;
    }
  }
}

TEST(Calibration, FloatCostsProbeExactly) {
  const ResourceVec est = db().op_cost(Opcode::Mul, ScalarType::f32());
  const ResourceVec act =
      fabric::core_resources(Opcode::Mul, ScalarType::f32(), dev());
  EXPECT_EQ(est, act);
}

TEST(Calibration, HostTableMatchesLinkModel) {
  const membench::HostLinkModel host(dev().host);
  for (const std::uint64_t bytes : {1ULL << 16, 1ULL << 22, 1ULL << 28}) {
    EXPECT_NEAR(db().host_sustained(bytes), host.sustained_bw(bytes),
                host.sustained_bw(bytes) * 0.02);
  }
}

TEST(Calibration, IsOneTimeAndFastEnough) {
  EXPECT_LT(db().calibration_seconds(), 5.0);
}

// --------------------------------------------------------------------------
// Whole-design estimates vs fabric actuals (the Table II experiment)
// --------------------------------------------------------------------------

struct KernelCase {
  const char* name;
  ir::Module module;
};

std::vector<KernelCase> table2_kernels() {
  kernels::SorConfig sor;
  sor.im = sor.jm = sor.km = 16;
  kernels::HotspotConfig hs;
  hs.rows = hs.cols = 32;
  kernels::LavamdConfig lava;
  lava.particles = 1024;
  lava.elem = ir::ScalarType::uint(18);
  std::vector<KernelCase> cases;
  cases.push_back({"sor", kernels::make_sor(sor)});
  cases.push_back({"hotspot", kernels::make_hotspot(hs)});
  cases.push_back({"lavamd", kernels::make_lavamd(lava)});
  return cases;
}

TEST(ResourceModel, TableIIErrorBands) {
  for (const auto& c : table2_kernels()) {
    ASSERT_TRUE(ir::verify_ok(c.module)) << c.name;
    const auto est = cost::estimate_resources(c.module, db());
    const auto act = fabric::synthesize(c.module, dev());
    // The paper's worst reported error is 13% (LavaMD DSPs); most are
    // under ~7%. Hold the reproduction to the same band.
    EXPECT_LT(pct_err(est.total.aluts, act.total.aluts), 15.0) << c.name;
    EXPECT_LT(pct_err(est.total.regs, act.total.regs), 15.0) << c.name;
    if (act.total.dsps > 0) {
      EXPECT_LT(pct_err(est.total.dsps, act.total.dsps), 20.0) << c.name;
    }
    if (act.total.bram_bits > 0) {
      EXPECT_LT(pct_err(est.total.bram_bits, act.total.bram_bits), 5.0) << c.name;
    }
  }
}

TEST(ResourceModel, LavamdUsesNoBram) {
  kernels::LavamdConfig cfg;
  cfg.particles = 256;
  const auto est = cost::estimate_resources(kernels::make_lavamd(cfg), db());
  EXPECT_EQ(est.total.bram_bits, 0.0);  // no stream offsets (Table II row)
}

TEST(ResourceModel, EstimatesScaleWithLanes) {
  kernels::SorConfig cfg;
  cfg.im = cfg.jm = cfg.km = 8;
  const auto one = cost::estimate_resources(kernels::make_sor(cfg), db());
  cfg.lanes = 2;
  const auto two = cost::estimate_resources(kernels::make_sor(cfg), db());
  EXPECT_GT(two.total.aluts, one.total.aluts * 1.7);
  EXPECT_LT(two.total.aluts, one.total.aluts * 2.3);
}

TEST(ResourceModel, PerFunctionBreakdownPresent) {
  kernels::SorConfig cfg;
  cfg.im = cfg.jm = cfg.km = 8;
  const auto est = cost::estimate_resources(kernels::make_sor(cfg), db());
  ASSERT_TRUE(est.per_function.count("f0"));
  EXPECT_GT(est.per_function.at("f0").aluts, 50);
}

TEST(CostReport, ProducesCompleteReportQuickly) {
  kernels::SorConfig cfg;
  cfg.im = cfg.jm = cfg.km = 16;
  const ir::Module m = kernels::make_sor(cfg);
  const cost::CostReport rep = cost::cost_design(m, db());
  EXPECT_TRUE(rep.valid);
  EXPECT_GT(rep.throughput.ekit, 0);
  EXPECT_GT(rep.resources.total.aluts, 0);
  // "only 0.3 seconds to evaluate one variant" — ours is far faster still.
  EXPECT_LT(rep.estimate_seconds, 0.3);
  const std::string text = cost::format_report(rep);
  EXPECT_NE(text.find("EKIT"), std::string::npos);
  EXPECT_NE(text.find("limiting factor"), std::string::npos);
}

}  // namespace
