// Tests for the streaming structural hash that the DSE cost cache keys
// on, and for the one-traversal AnalysisSummary parity with the legacy
// per-question analyses.
//
// The hash contract: equal printed IR <=> equal digest (checked across
// all three kernels and a variant sweep), and any difference the printer
// would show — a port, an offset, a metadata field, an instruction —
// changes the digest.

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "tytra/cost/report.hpp"
#include "tytra/dse/cache.hpp"
#include "tytra/ir/analysis.hpp"
#include "tytra/ir/printer.hpp"
#include "tytra/ir/structural_hash.hpp"
#include "tytra/kernels/kernels.hpp"
#include "tytra/sim/cycle_model.hpp"

namespace {

using namespace tytra;
using ir::StructuralDigest;

ir::Module sor(std::uint32_t lanes, std::uint32_t dim = 24) {
  kernels::SorConfig cfg;
  cfg.im = cfg.jm = cfg.km = dim;
  cfg.lanes = lanes;
  cfg.nki = 10;
  return kernels::make_sor(cfg);
}

ir::Module hotspot(std::uint32_t lanes) {
  kernels::HotspotConfig cfg;
  cfg.rows = cfg.cols = 24;
  cfg.lanes = lanes;
  return kernels::make_hotspot(cfg);
}

ir::Module lavamd(std::uint32_t lanes) {
  kernels::LavamdConfig cfg;
  cfg.particles = 1024;
  cfg.lanes = lanes;
  return kernels::make_lavamd(cfg);
}

// --------------------------------------------------------------------------
// Equal printed IR <=> equal digest
// --------------------------------------------------------------------------

TEST(StructuralHash, PrintEqualityMatchesDigestEqualityAcrossKernelsAndSweep) {
  std::vector<ir::Module> designs;
  for (const std::uint32_t lanes : {1u, 2u, 4u, 8u}) {
    designs.push_back(sor(lanes));
    designs.push_back(hotspot(lanes));
    designs.push_back(lavamd(lanes));
  }
  // Rebuilding the same variant must reproduce both print and digest.
  designs.push_back(sor(4));
  designs.push_back(hotspot(2));

  for (std::size_t i = 0; i < designs.size(); ++i) {
    for (std::size_t j = 0; j < designs.size(); ++j) {
      const bool print_equal =
          ir::print_module(designs[i]) == ir::print_module(designs[j]);
      const bool digest_equal =
          ir::structural_digest(designs[i]) == ir::structural_digest(designs[j]);
      EXPECT_EQ(print_equal, digest_equal) << "designs " << i << " vs " << j;
      EXPECT_EQ(print_equal, ir::structural_hash(designs[i]) ==
                                 ir::structural_hash(designs[j]))
          << "designs " << i << " vs " << j;
    }
  }
}

TEST(StructuralHash, RebuildingTheSameDesignIsStable) {
  const StructuralDigest a = ir::structural_digest(sor(4));
  const StructuralDigest b = ir::structural_digest(sor(4));
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.key, ir::structural_hash(sor(4)));
}

// --------------------------------------------------------------------------
// Any printed difference changes the digest
// --------------------------------------------------------------------------

TEST(StructuralHash, EveryStructuralMutationChangesTheDigest) {
  const ir::Module base = sor(2);
  const StructuralDigest base_digest = ir::structural_digest(base);

  std::map<std::string, ir::Module> mutants;

  {
    ir::Module m = base;
    m.name += "_x";
    mutants.emplace("module name", std::move(m));
  }
  {
    ir::Module m = base;
    m.meta.global_size += 1;
    mutants.emplace("metadata: ngs", std::move(m));
  }
  {
    ir::Module m = base;
    m.meta.nki += 1;
    mutants.emplace("metadata: nki", std::move(m));
  }
  {
    ir::Module m = base;
    m.meta.form = ir::ExecForm::A;
    mutants.emplace("metadata: form", std::move(m));
  }
  {
    ir::Module m = base;
    m.meta.freq_hz = 150e6;
    mutants.emplace("metadata: fd", std::move(m));
  }
  {
    ir::Module m = base;
    m.meta.ii = 3;
    mutants.emplace("metadata: ii", std::move(m));
  }
  {
    ir::Module m = base;
    m.ports.pop_back();
    mutants.emplace("port: removed", std::move(m));
  }
  {
    ir::Module m = base;
    m.ports.front().init_offset = 7;
    mutants.emplace("port: init offset", std::move(m));
  }
  {
    ir::Module m = base;
    m.ports.front().dir = ir::StreamDir::Out;
    mutants.emplace("port: direction", std::move(m));
  }
  {
    ir::Module m = base;
    m.ports.front().pattern = ir::AccessPattern::Strided;
    mutants.emplace("port: pattern", std::move(m));
  }
  {
    ir::Module m = base;
    m.ports.front().type = ir::Type::vector_of(ir::ScalarType::uint(18), 4);
    mutants.emplace("port: type", std::move(m));
  }
  {
    ir::Module m = base;
    m.memobjs.front().size_words += 1;
    mutants.emplace("memobj: size", std::move(m));
  }
  {
    ir::Module m = base;
    m.streamobjs.front().pattern = ir::AccessPattern::Strided;
    m.streamobjs.front().stride_words = 24;
    mutants.emplace("streamobj: pattern+stride", std::move(m));
  }
  {
    ir::Module m = base;
    for (auto& item : m.functions.front().body) {
      if (auto* off = std::get_if<ir::OffsetDecl>(&item)) {
        off->offset += 1;
        break;
      }
    }
    mutants.emplace("offset decl: distance", std::move(m));
  }
  {
    ir::Module m = base;
    for (auto& item : m.functions.front().body) {
      if (auto* instr = std::get_if<ir::Instr>(&item)) {
        instr->op = ir::Opcode::Add;
        break;
      }
    }
    mutants.emplace("instruction: opcode", std::move(m));
  }
  {
    ir::Module m = base;
    for (auto& item : m.functions.front().body) {
      if (auto* instr = std::get_if<ir::Instr>(&item)) {
        instr->type = ir::Type::scalar_of(ir::ScalarType::uint(32));
        break;
      }
    }
    mutants.emplace("instruction: type", std::move(m));
  }
  {
    ir::Module m = base;
    ir::Function& f = m.functions.front();
    f.body.pop_back();
    mutants.emplace("instruction: removed", std::move(m));
  }
  {
    ir::Module m = base;
    for (auto& item : m.functions.back().body) {
      if (auto* call = std::get_if<ir::Call>(&item)) {
        call->kind_annot = ir::FuncKind::Seq;
        break;
      }
    }
    mutants.emplace("call: kind annotation", std::move(m));
  }

  for (const auto& [what, mutant] : mutants) {
    EXPECT_NE(ir::structural_digest(mutant), base_digest) << what;
    // The mutation is visible to the printer too — the digest contract
    // tracks printed identity from both sides.
    EXPECT_NE(ir::print_module(mutant), ir::print_module(base)) << what;
  }
}

// --------------------------------------------------------------------------
// Cache identity built on the digest
// --------------------------------------------------------------------------

TEST(StructuralHash, DesignKeySeparatesDesignsAndDevices) {
  const auto sv = cost::DeviceCostDb::calibrate(target::stratix_v_gsd8());
  const auto v7 = cost::DeviceCostDb::calibrate(target::virtex7_690t());
  const ir::Module a = sor(1);
  const ir::Module b = sor(4);
  EXPECT_EQ(dse::design_key(a, sv), dse::design_key(sor(1), sv));
  EXPECT_NE(dse::design_key(a, sv), dse::design_key(b, sv));
  EXPECT_NE(dse::design_key(a, sv), dse::design_key(a, v7));
}

TEST(StructuralHash, CacheHitReportEqualsDirectCostReport) {
  const auto db = cost::DeviceCostDb::calibrate(target::stratix_v_gsd8());
  dse::CostCache cache;
  const ir::Module m = sor(4);
  bool hit = true;
  const cost::CostReport miss_report = cache.cost(m, db, &hit);
  EXPECT_FALSE(hit);
  const cost::CostReport hit_report = cache.cost(m, db, &hit);
  EXPECT_TRUE(hit);
  const cost::CostReport direct = cost::cost_design(m, db);
  // format_report covers every user-visible field of the report.
  EXPECT_EQ(cost::format_report(hit_report), cost::format_report(miss_report));
  const std::string a = cost::format_report(hit_report);
  const std::string b = cost::format_report(direct);
  // The estimate wall-time line differs run to run; compare the rest.
  EXPECT_EQ(a.substr(0, a.rfind("estimated in")),
            b.substr(0, b.rfind("estimated in")));
}

TEST(StructuralHash, ConfigurableShardCountServesAllLookups) {
  const auto db = cost::DeviceCostDb::calibrate(target::stratix_v_gsd8());
  for (const std::size_t shards : {std::size_t{1}, std::size_t{3},
                                   std::size_t{64}}) {
    dse::CostCache cache(shards);
    EXPECT_EQ(cache.shard_count(), shards);
    for (const std::uint32_t lanes : {1u, 2u, 4u}) cache.cost(sor(lanes), db);
    for (const std::uint32_t lanes : {1u, 2u, 4u}) cache.cost(sor(lanes), db);
    EXPECT_EQ(cache.size(), 3u);
    EXPECT_EQ(cache.stats().hits, 3u);
    EXPECT_EQ(cache.stats().misses, 3u);
  }
}

// --------------------------------------------------------------------------
// AnalysisSummary parity with the legacy per-question analyses
// --------------------------------------------------------------------------

TEST(AnalysisSummary, MatchesLegacyAnalysesOnAllKernels) {
  const std::vector<ir::Module> designs = {sor(1), sor(8), hotspot(4),
                                           lavamd(2)};
  for (const auto& m : designs) {
    const ir::AnalysisSummary s = ir::summarize(m);
    EXPECT_EQ(s.config, ir::classify_config(m));
    EXPECT_EQ(s.params.knl, ir::lane_count(m));
    EXPECT_EQ(s.params.kpd, ir::pipeline_depth(m));

    const ir::DesignParams legacy = ir::extract_params(m);
    EXPECT_EQ(s.params.ngs, legacy.ngs);
    EXPECT_DOUBLE_EQ(s.params.nwpt, legacy.nwpt);
    EXPECT_EQ(s.params.nki, legacy.nki);
    EXPECT_EQ(s.params.noff, legacy.noff);
    EXPECT_EQ(s.params.kpd, legacy.kpd);
    EXPECT_DOUBLE_EQ(s.params.nto, legacy.nto);
    EXPECT_DOUBLE_EQ(s.params.ni, legacy.ni);
    EXPECT_EQ(s.params.dv, legacy.dv);
    EXPECT_EQ(s.params.form, legacy.form);

    // Per-function schedules equal the one-off scheduler's.
    for (const auto& fs : s.functions) {
      const ir::FunctionSchedule one = ir::schedule_function(m, *fs.func);
      EXPECT_EQ(fs.schedule.depth, one.depth) << fs.func->name;
      EXPECT_EQ(fs.schedule.issue_at, one.issue_at) << fs.func->name;
      EXPECT_EQ(fs.schedule.ready_at, one.ready_at) << fs.func->name;
    }
  }
}

TEST(AnalysisSummary, EstimateFunctionAcceptsDetachedFunctionObjects) {
  // The public API takes any Function walked against the module — a copy
  // must cost exactly like the member it was copied from.
  const auto db = cost::DeviceCostDb::calibrate(target::fig15_profile());
  const ir::Module m = sor(4);
  const ir::Function copy = *m.entry();
  const tytra::ResourceVec via_member =
      cost::estimate_function(m, *m.entry(), db);
  const tytra::ResourceVec via_copy = cost::estimate_function(m, copy, db);
  EXPECT_EQ(via_member.to_string(), via_copy.to_string());
  EXPECT_GT(via_copy.aluts, 0.0);
}

TEST(AnalysisSummary, CostAndTimingOverloadsMatchModuleOnlyPaths) {
  const auto db = cost::DeviceCostDb::calibrate(target::fig15_profile());
  for (const std::uint32_t lanes : {1u, 4u, 16u}) {
    const ir::Module m = sor(lanes);
    const ir::AnalysisSummary s = ir::summarize(m);

    const cost::ResourceEstimate ra = cost::estimate_resources(m, db);
    const cost::ResourceEstimate rb = cost::estimate_resources(m, db, s);
    EXPECT_EQ(ra.total.to_string(), rb.total.to_string()) << lanes;
    EXPECT_EQ(ra.fits, rb.fits) << lanes;
    EXPECT_EQ(ra.per_function.size(), rb.per_function.size()) << lanes;
    for (const auto& [name, vec] : ra.per_function) {
      const auto it = rb.per_function.find(name);
      ASSERT_NE(it, rb.per_function.end()) << name;
      EXPECT_EQ(vec.to_string(), it->second.to_string()) << name;
    }

    const auto ta = cost::estimate_throughput(m, db);
    const auto tb = cost::estimate_throughput(m, db, s);
    EXPECT_EQ(ta.ekit, tb.ekit) << lanes;
    EXPECT_EQ(ta.seconds_per_instance, tb.seconds_per_instance) << lanes;
    EXPECT_EQ(ta.limiting, tb.limiting) << lanes;

    const sim::TimingResult sa = sim::simulate_timing(m, db.device());
    const sim::TimingResult sb = sim::simulate_timing(m, db.device(), s);
    EXPECT_EQ(sa.cycles_per_instance, sb.cycles_per_instance) << lanes;
    EXPECT_EQ(sa.total_seconds, sb.total_seconds) << lanes;
  }
}

}  // namespace
