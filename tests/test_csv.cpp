// Tests for the CSV artifact writer.

#include <gtest/gtest.h>

#include "tytra/support/csv.hpp"

namespace {

TEST(Csv, RendersHeaderAndRows) {
  tytra::CsvTable t({"a", "b"});
  t.add_row({std::vector<std::string>{"1", "2"}});
  t.add_row({3.5, -4.0});
  EXPECT_EQ(t.rows(), 2u);
  EXPECT_EQ(t.to_string(), "a,b\n1,2\n3.5,-4\n");
}

TEST(Csv, EscapesSpecialCells) {
  tytra::CsvTable t({"name", "note"});
  t.add_row({std::vector<std::string>{"x,y", "say \"hi\""}});
  EXPECT_EQ(t.to_string(), "name,note\n\"x,y\",\"say \"\"hi\"\"\"\n");
}

TEST(Csv, RejectsBadShapes) {
  EXPECT_THROW(tytra::CsvTable({}), std::invalid_argument);
  tytra::CsvTable t({"a", "b"});
  EXPECT_THROW(t.add_row({std::vector<std::string>{"only-one"}}),
               std::invalid_argument);
  EXPECT_THROW(t.add_row({1.0, 2.0, 3.0}), std::invalid_argument);
}

TEST(Csv, WritesToDisk) {
  tytra::CsvTable t({"v"});
  t.add_row(std::vector<double>{42.0});
  const std::string path = testing::TempDir() + "tytra_csv_test.csv";
  ASSERT_TRUE(t.write(path));
  EXPECT_FALSE(t.write("/nonexistent-dir/x.csv"));
}

}  // namespace
