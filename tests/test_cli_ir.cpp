// End-to-end tests of `tytra-cc ... --ir`: the file-backed workload path
// through the real binary. Pins the CLI-level acceptance criterion
// (explore --ir sor.tir byte-identical to the built-in sor on every
// preset) and the failure contract (nonexistent or unverifiable files
// exit nonzero with a stderr diagnostic and no stdout output).

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

namespace {

#if defined(TYTRA_CC_BIN) && defined(TYTRA_SOURCE_DIR)

struct RunResult {
  int exit_code{-1};
  std::string out;
  std::string err;
};

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Runs tytra-cc with `args`, capturing stdout/stderr through temp files
/// in the working directory.
RunResult run_cc(const std::string& args) {
  static int counter = 0;
  const std::string tag = "cli_ir_" + std::to_string(counter++);
  const std::string out_path = tag + ".out";
  const std::string err_path = tag + ".err";
  const std::string cmd = std::string(TYTRA_CC_BIN) + " " + args + " > " +
                          out_path + " 2> " + err_path;
  const int status = std::system(cmd.c_str());
  RunResult r;
  r.exit_code = status < 0 ? status : WEXITSTATUS(status);
  r.out = read_file(out_path);
  r.err = read_file(err_path);
  std::remove(out_path.c_str());
  std::remove(err_path.c_str());
  return r;
}

std::string sor_tir_path() {
  return std::string(TYTRA_SOURCE_DIR) + "/examples/ir/sor.tir";
}

/// Drops the first line (the "exploring <name> on <device> ... in N s"
/// banner names the workload and wall time; everything below is the
/// deterministic sweep table).
std::string strip_banner(const std::string& text) {
  const auto nl = text.find('\n');
  return nl == std::string::npos ? std::string() : text.substr(nl + 1);
}

TEST(CliIr, NonexistentFileFailsCleanly) {
  const RunResult r = run_cc("explore --ir no/such/file.tir");
  EXPECT_NE(r.exit_code, 0);
  EXPECT_TRUE(r.out.empty()) << r.out;
  EXPECT_NE(r.err.find("cannot read"), std::string::npos) << r.err;
}

TEST(CliIr, UnverifiableFileFailsCleanly) {
  const std::string path = "cli_ir_bad.tir";
  {
    std::ofstream bad(path);
    bad << "!ngs = 8\n"
           "define void @main() pipe {\n"
           "  call @missing() pipe\n"
           "}\n";
  }
  const RunResult r = run_cc("explore --ir " + path);
  std::remove(path.c_str());
  EXPECT_NE(r.exit_code, 0);
  EXPECT_TRUE(r.out.empty()) << r.out;
  EXPECT_NE(r.err.find("@missing"), std::string::npos) << r.err;
  EXPECT_NE(r.err.find(" at "), std::string::npos)
      << "diagnostic carries no location: " << r.err;
}

TEST(CliIr, KernelAndIrTogetherRejected) {
  const RunResult r = run_cc("explore sor --ir " + sor_tir_path());
  EXPECT_NE(r.exit_code, 0);
  EXPECT_TRUE(r.out.empty()) << r.out;
  EXPECT_NE(r.err.find("not both"), std::string::npos) << r.err;
}

TEST(CliIr, ExploreIrMatchesBuiltinSorOnAllPresets) {
  for (const std::string preset :
       {"stratix-v-gsd8", "virtex7-690t", "fig15"}) {
    const RunResult file = run_cc("explore --ir " + sor_tir_path() +
                                  " --nd 64 --pareto --device " + preset);
    const RunResult builtin =
        run_cc("explore sor --nd 64 --pareto --device " + preset);
    ASSERT_EQ(file.exit_code, 0) << file.err;
    ASSERT_EQ(builtin.exit_code, 0) << builtin.err;
    EXPECT_EQ(strip_banner(file.out), strip_banner(builtin.out))
        << "preset " << preset;
    EXPECT_FALSE(strip_banner(file.out).empty());
  }
}

TEST(CliIr, ListShowsFileWorkloadWithSource) {
  const RunResult r = run_cc("list --ir " + sor_tir_path());
  ASSERT_EQ(r.exit_code, 0) << r.err;
  EXPECT_NE(r.out.find("sor_file"), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("source: " + sor_tir_path()), std::string::npos)
      << r.out;
}

TEST(CliIr, TuneAcceptsIr) {
  const RunResult r = run_cc("tune --ir " + sor_tir_path() + " --nd 32");
  ASSERT_EQ(r.exit_code, 0) << r.err;
  EXPECT_NE(r.out.find("tuning"), std::string::npos) << r.out;
}

#else  // TYTRA_CC_BIN / TYTRA_SOURCE_DIR

TEST(CliIr, RequiresToolPaths) {
  GTEST_SKIP() << "built without TYTRA_CC_BIN/TYTRA_SOURCE_DIR";
}

#endif

}  // namespace
