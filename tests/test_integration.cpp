// End-to-end integration tests across the whole flow (Fig. 1/11):
// functional front-end variant -> lowered TyTra-IR -> verifier -> cost
// model -> execution simulator -> HDL + MaxJ wrapper, on every kernel.

#include <gtest/gtest.h>

#include "tytra/codegen/maxj.hpp"
#include "tytra/codegen/verilog.hpp"
#include "tytra/cost/report.hpp"
#include "tytra/dse/explorer.hpp"
#include "tytra/fabric/synth.hpp"
#include "tytra/ir/parser.hpp"
#include "tytra/ir/passes.hpp"
#include "tytra/ir/printer.hpp"
#include "tytra/ir/verifier.hpp"
#include "tytra/kernels/kernels.hpp"
#include "tytra/kernels/streams.hpp"
#include "tytra/sim/cycle_model.hpp"
#include "tytra/sim/functional.hpp"

namespace {

using namespace tytra;

const cost::DeviceCostDb& db() {
  static const auto c = cost::DeviceCostDb::calibrate(target::stratix_v_gsd8());
  return c;
}

TEST(EndToEnd, SorFullFlow) {
  // 1. Front-end: reshape the baseline into a 4-lane variant.
  const std::uint64_t n = 12ULL * 12 * 12;
  const frontend::Variant variant =
      frontend::reshape_to(frontend::baseline_variant(n), 4, frontend::ParAnn::Par);

  // 2. Lower.
  kernels::SorConfig cfg;
  cfg.im = cfg.jm = cfg.km = 12;
  cfg.lanes = variant.lanes();
  ir::Module module = kernels::make_sor(cfg);

  // 3. Verify + optimize.
  ASSERT_TRUE(ir::verify_ok(module));
  ir::optimize(module);
  ASSERT_TRUE(ir::verify_ok(module));

  // 4. Cost.
  const cost::CostReport report = cost::cost_design(module, db());
  EXPECT_TRUE(report.valid);
  EXPECT_EQ(report.params.knl, 4u);
  EXPECT_GT(report.throughput.ekit, 0);

  // 5. Execute functionally and against the wall-clock model.
  const auto inputs =
      kernels::partition_streams(kernels::sor_inputs(cfg), cfg.lanes);
  const auto run = sim::run_functional(module, inputs);
  ASSERT_TRUE(run.ok()) << run.error_message();
  EXPECT_EQ(run.value().items, n);
  const auto timing = sim::simulate_timing(module, db().device());
  EXPECT_GT(timing.total_seconds, 0);

  // 6. Back-end artifacts.
  const auto hdl = codegen::emit_verilog(module);
  EXPECT_GT(hdl.source.size(), 1000u);
  const auto maxj = codegen::emit_maxj_wrapper(module);
  EXPECT_FALSE(maxj.kernel_class.empty());

  // 7. The "vendor tool" agrees the design fits.
  const auto synth = fabric::synthesize(module, db().device());
  EXPECT_TRUE(synth.fits);
}

TEST(EndToEnd, TextualIrThroughEntireFlow) {
  // Author a kernel purely as IR text, run everything on it.
  const char* src = R"(
!name = saxpy
!ngs  = 65536
!nki  = 4
!form = B
@main.x = addrSpace(1) i32, !"istream", !"CONT", !0, !"sx"
@main.y = addrSpace(1) i32, !"istream", !"CONT", !0, !"sy"
@main.out = addrSpace(1) i32, !"ostream", !"CONT", !0, !"so"
define void @f0(i32 %x, i32 %y) pipe {
  i32 %p = mul i32 %x, 3
  i32 %s = add i32 %p, %y
  i32 @out = mov i32 %s
}
define void @main () { call @f0(@x, @y) pipe }
)";
  ir::Module m = ir::parse_module_or_die(src);
  ASSERT_TRUE(ir::verify_ok(m));

  const auto report = cost::cost_design(m, db());
  EXPECT_TRUE(report.valid);

  sim::StreamMap inputs;
  inputs["x"] = {1, 2, 3, 4};
  inputs["y"] = {10, 20, 30, 40};
  const auto run = sim::run_functional(m, inputs);
  ASSERT_TRUE(run.ok()) << run.error_message();
  EXPECT_EQ(run.value().outputs.at("out"),
            (std::vector<double>{13, 26, 39, 52}));

  const auto hdl = codegen::emit_verilog(m);
  EXPECT_NE(hdl.source.find("module saxpy_top"), std::string::npos);
}

TEST(EndToEnd, DseSelectionBeatsBaselineOnConstrainedDevice) {
  const auto fig15 = cost::DeviceCostDb::calibrate(target::fig15_profile());
  const std::uint64_t n = 24ULL * 24 * 24;
  const dse::LowerFn lower = [](const frontend::Variant& v) {
    kernels::SorConfig cfg;
    cfg.im = cfg.jm = cfg.km = 24;
    cfg.nki = 10;
    cfg.lanes = v.lanes();
    return kernels::make_sor(cfg);
  };
  const auto result = dse::explore(n, lower, fig15, {.max_lanes = 16});
  ASSERT_TRUE(result.best.has_value());
  const auto& best = result.entries[*result.best];
  const auto baseline = dse::maxj_baseline(n, lower, fig15);
  EXPECT_GT(best.report.throughput.ekit, baseline.throughput.ekit * 3.0);

  // The chosen design is synthesizable on the same device.
  const auto synth =
      fabric::synthesize(lower(best.variant), target::fig15_profile());
  EXPECT_TRUE(synth.fits);
}

TEST(EndToEnd, OptimizedAndRawKernelsComputeIdentically) {
  for (int k = 0; k < 3; ++k) {
    ir::Module raw;
    sim::StreamMap inputs;
    std::string out_port;
    switch (k) {
      case 0: {
        kernels::SorConfig cfg;
        cfg.im = cfg.jm = cfg.km = 6;
        raw = kernels::make_sor(cfg);
        inputs = kernels::sor_inputs(cfg);
        out_port = "p_new";
        break;
      }
      case 1: {
        kernels::HotspotConfig cfg;
        cfg.rows = cfg.cols = 8;
        raw = kernels::make_hotspot(cfg);
        inputs = kernels::hotspot_inputs(cfg);
        out_port = "temp_new";
        break;
      }
      default: {
        kernels::LavamdConfig cfg;
        cfg.particles = 128;
        raw = kernels::make_lavamd(cfg);
        inputs = kernels::lavamd_inputs(cfg);
        out_port = "pot";
        break;
      }
    }
    ir::Module opt = raw;
    ir::optimize(opt);
    const auto a = sim::run_functional(raw, inputs);
    const auto b = sim::run_functional(opt, inputs);
    ASSERT_TRUE(a.ok() && b.ok());
    EXPECT_EQ(a.value().outputs.at(out_port), b.value().outputs.at(out_port))
        << "kernel " << k;
  }
}

TEST(EndToEnd, EstimatorRemainsFastAtScale) {
  // Cost a 16-lane SOR (170 ports, ~300 instructions) and confirm the
  // paper's fast-evaluation property holds with margin.
  kernels::SorConfig cfg;
  cfg.im = cfg.jm = cfg.km = 24;
  cfg.lanes = 16;
  const ir::Module m = kernels::make_sor(cfg);
  const auto report = cost::cost_design(m, db());
  EXPECT_LT(report.estimate_seconds, 0.05);  // paper: 0.3 s per variant
  EXPECT_TRUE(report.valid);
}

}  // namespace
