// Tests for the type-transformation front-end: variant construction
// rules, reshapeTo size preservation, the flatten . reshape == id
// property, and variant enumeration.

#include <gtest/gtest.h>

#include "tytra/frontend/transform.hpp"
#include "tytra/support/rng.hpp"

namespace {

using namespace tytra::frontend;

TEST(Variant, BaselineIsSinglePipelinedMap) {
  const Variant v = baseline_variant(1024);
  EXPECT_EQ(v.dims(), (std::vector<std::uint64_t>{1024}));
  EXPECT_EQ(v.lanes(), 1u);
  EXPECT_TRUE(v.pipelined());
  EXPECT_EQ(v.describe(), "map^pipe[1024] (f)");
}

TEST(Variant, ReshapePreservesSize) {
  const Variant v = reshape_to(baseline_variant(1024), 4, ParAnn::Par);
  EXPECT_EQ(v.flat_size(), 1024u);
  EXPECT_EQ(v.dims(), (std::vector<std::uint64_t>{4, 256}));
  EXPECT_EQ(v.lanes(), 4u);
  EXPECT_TRUE(v.pipelined());
  EXPECT_EQ(v.describe(), "map^par[4] (map^pipe[256] (f))");
}

TEST(Variant, ReshapeRejectsNonDivisor) {
  EXPECT_THROW(reshape_to(baseline_variant(1000), 7, ParAnn::Par),
               std::invalid_argument);
  EXPECT_THROW(reshape_to(baseline_variant(1000), 0, ParAnn::Par),
               std::invalid_argument);
}

TEST(Variant, RepeatedReshapeNests) {
  Variant v = baseline_variant(1024);
  v = reshape_to(v, 4, ParAnn::Par);
  v = reshape_to(v, 2, ParAnn::Pipe);
  EXPECT_EQ(v.dims(), (std::vector<std::uint64_t>{4, 2, 128}));
  EXPECT_EQ(v.flat_size(), 1024u);
  EXPECT_EQ(v.lanes(), 4u);
}

TEST(Variant, ParInsideNonParRejected) {
  // Thread parallelism must enclose pipelines (Fig. 7).
  EXPECT_THROW(Variant({2, 4}, {ParAnn::Pipe, ParAnn::Par}),
               std::invalid_argument);
  EXPECT_NO_THROW(Variant({2, 4}, {ParAnn::Par, ParAnn::Pipe}));
  EXPECT_NO_THROW(Variant({2, 4, 8}, {ParAnn::Par, ParAnn::Par, ParAnn::Pipe}));
}

TEST(Variant, ConstructionRejectsBadShapes) {
  EXPECT_THROW(Variant({}, {}), std::invalid_argument);
  EXPECT_THROW(Variant({4}, {ParAnn::Pipe, ParAnn::Pipe}), std::invalid_argument);
  EXPECT_THROW(Variant({0}, {ParAnn::Pipe}), std::invalid_argument);
}

TEST(Enumerate, CoversDivisorsUpToMaxLanes) {
  const auto variants = enumerate_variants(24, 16);
  // baseline + lanes 2,3,4,6,8,12 (divisors of 24 in [2,16])
  ASSERT_EQ(variants.size(), 7u);
  EXPECT_EQ(variants[0].lanes(), 1u);
  std::vector<std::uint32_t> lanes;
  for (const auto& v : variants) lanes.push_back(v.lanes());
  EXPECT_EQ(lanes, (std::vector<std::uint32_t>{1, 2, 3, 4, 6, 8, 12}));
}

TEST(Enumerate, SeqVariantOptIn) {
  const auto with = enumerate_variants(8, 4, true);
  const auto without = enumerate_variants(8, 4, false);
  EXPECT_EQ(with.size(), without.size() + 1);
  EXPECT_EQ(with.back().anns().back(), ParAnn::Seq);
}

TEST(Enumerate, AllVariantsPreserveSize) {
  for (const auto& v : enumerate_variants(5040, 50, true)) {
    EXPECT_EQ(v.flat_size(), 5040u) << v.describe();
  }
}

// --------------------------------------------------------------------------
// Data reshaping properties
// --------------------------------------------------------------------------

TEST(Reshape, FlattenReshapeIsIdentity) {
  tytra::SplitMix64 rng(11);
  std::vector<double> flat(720);
  for (auto& x : flat) x = rng.next_double();
  for (const std::uint64_t outer : {1ULL, 2ULL, 5ULL, 16ULL, 720ULL}) {
    const auto nested = reshape_vec(flat, outer);
    ASSERT_EQ(nested.size(), outer);
    EXPECT_EQ(flatten_vec(nested), flat) << "outer=" << outer;
  }
}

TEST(Reshape, PreservesOrderWithinChunks) {
  const std::vector<double> flat{0, 1, 2, 3, 4, 5};
  const auto nested = reshape_vec(flat, 3);
  EXPECT_EQ(nested[0], (std::vector<double>{0, 1}));
  EXPECT_EQ(nested[1], (std::vector<double>{2, 3}));
  EXPECT_EQ(nested[2], (std::vector<double>{4, 5}));
}

TEST(Reshape, RejectsNonDivisor) {
  EXPECT_THROW(reshape_vec({1, 2, 3}, 2), std::invalid_argument);
  EXPECT_THROW(reshape_vec({1, 2, 3}, 0), std::invalid_argument);
}

}  // namespace
