// Tests for the generated self-checking Verilog testbench and for the
// fixed-point / random-access additions to the simulator and membench.

#include <gtest/gtest.h>

#include "tytra/codegen/testbench.hpp"
#include "tytra/ir/parser.hpp"
#include "tytra/kernels/kernels.hpp"
#include "tytra/membench/dram.hpp"
#include "tytra/sim/functional.hpp"

namespace {

using namespace tytra;

TEST(Testbench, GeneratesSelfCheckingBench) {
  kernels::SorConfig cfg;
  cfg.im = cfg.jm = cfg.km = 4;
  const ir::Module m = kernels::make_sor(cfg);
  const auto inputs = kernels::sor_inputs(cfg);
  const auto run = sim::run_functional(m, inputs);
  ASSERT_TRUE(run.ok());

  const std::string tb =
      codegen::emit_testbench(m, inputs, run.value().outputs);
  EXPECT_NE(tb.find("module tb_sor_c2_top;"), std::string::npos);
  EXPECT_NE(tb.find("localparam N = 64;"), std::string::npos);
  EXPECT_NE(tb.find("sor_c2_top dut"), std::string::npos);
  EXPECT_NE(tb.find("TB PASS"), std::string::npos);
  EXPECT_NE(tb.find("TB FAIL"), std::string::npos);
  // Every port appears as a vector memory and a DUT connection.
  for (const auto& p : m.ports) {
    EXPECT_NE(tb.find("vec_" + p.name), std::string::npos) << p.name;
    EXPECT_NE(tb.find("." + p.name + "(" + p.name + ")"), std::string::npos);
  }
  // Stimulus values present in hex.
  EXPECT_NE(tb.find("vec_p[0] = 18'h"), std::string::npos);
}

TEST(Testbench, RespectsItemCapAndDrain) {
  kernels::SorConfig cfg;
  cfg.im = cfg.jm = cfg.km = 4;
  const ir::Module m = kernels::make_sor(cfg);
  const auto inputs = kernels::sor_inputs(cfg);
  const auto run = sim::run_functional(m, inputs);
  ASSERT_TRUE(run.ok());
  codegen::TestbenchOptions opt;
  opt.max_items = 16;
  opt.drain_cycles = 99;
  const std::string tb =
      codegen::emit_testbench(m, inputs, run.value().outputs, opt);
  EXPECT_NE(tb.find("localparam N = 16;"), std::string::npos);
  EXPECT_NE(tb.find("localparam DRAIN = 99;"), std::string::npos);
}

TEST(Testbench, RejectsMissingVectors) {
  kernels::SorConfig cfg;
  cfg.im = cfg.jm = cfg.km = 4;
  const ir::Module m = kernels::make_sor(cfg);
  auto inputs = kernels::sor_inputs(cfg);
  const auto run = sim::run_functional(m, inputs);
  ASSERT_TRUE(run.ok());
  inputs.erase("rhs");
  EXPECT_THROW(codegen::emit_testbench(m, inputs, run.value().outputs),
               std::invalid_argument);
}

// --------------------------------------------------------------------------
// Fixed-point semantics
// --------------------------------------------------------------------------

TEST(FixedPoint, MultiplyRenormalizes) {
  // fx16.8: raw 512 = 2.0; 2.0 * 1.5 = 3.0 -> raw 768.
  const char* src = R"(
!ngs = 1
define void @f0(fx16.8 %a, fx16.8 %b) pipe {
  fx16.8 %m = mul fx16.8 %a, %b
  fx16.8 @out = mov fx16.8 %m
}
define void @main () { call @f0(@a, @b) pipe }
)";
  ir::Module m = ir::parse_module_or_die(src);
  ir::PortBinding out;
  out.name = "out";
  out.dir = ir::StreamDir::Out;
  out.type = ir::Type::scalar_of(ir::ScalarType::fixed(16, 8));
  m.ports.push_back(out);

  sim::StreamMap inputs;
  inputs["a"] = {512};  // 2.0
  inputs["b"] = {384};  // 1.5
  const auto run = sim::run_functional(m, inputs);
  ASSERT_TRUE(run.ok()) << run.error_message();
  EXPECT_DOUBLE_EQ(run.value().outputs.at("out")[0], 768);  // 3.0
}

TEST(FixedPoint, DividePreScales) {
  const char* src = R"(
!ngs = 1
define void @f0(fx16.8 %a, fx16.8 %b) pipe {
  fx16.8 %q = div fx16.8 %a, %b
  fx16.8 @out = mov fx16.8 %q
}
define void @main () { call @f0(@a, @b) pipe }
)";
  ir::Module m = ir::parse_module_or_die(src);
  ir::PortBinding out;
  out.name = "out";
  out.dir = ir::StreamDir::Out;
  out.type = ir::Type::scalar_of(ir::ScalarType::fixed(16, 8));
  m.ports.push_back(out);

  sim::StreamMap inputs;
  inputs["a"] = {768};  // 3.0
  inputs["b"] = {512};  // 2.0
  const auto run = sim::run_functional(m, inputs);
  ASSERT_TRUE(run.ok());
  EXPECT_DOUBLE_EQ(run.value().outputs.at("out")[0], 384);  // 1.5
}

TEST(FixedPoint, AdditionIsRawAndWraps) {
  const ir::ScalarType fx8 = ir::ScalarType::fixed(8, 4);
  // Raw two's-complement wrap at 8 bits.
  EXPECT_DOUBLE_EQ(sim::wrap_to_type(127, fx8), 127);
  EXPECT_DOUBLE_EQ(sim::wrap_to_type(128, fx8), -128);
}

// --------------------------------------------------------------------------
// Random access pattern
// --------------------------------------------------------------------------

TEST(RandomAccess, LittleDifferenceFromFixedStride) {
  // Paper §V-C: "little difference in sustained bandwidth between
  // fixed-stride and true random access".
  const auto dev = target::virtex7_690t();
  const membench::DramModel dram(dev.dram);
  const std::uint64_t bytes = 8ULL << 20;
  const double random = dram.sustained_bw_random(bytes);
  const double strided =
      dram.sustained_bw(bytes, ir::AccessPattern::Strided, 4096, 4);
  EXPECT_NEAR(random / strided, 1.0, 0.05);
  const double cont = dram.sustained_bw(bytes, ir::AccessPattern::Contiguous);
  EXPECT_GT(cont / random, 20.0);
}

}  // namespace
