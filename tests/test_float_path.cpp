// Floating-point datapath end-to-end: the paper evaluates integer kernel
// versions, but the flow (and real LES/LavaMD codes) are floating-point.
// These tests run an f32 SOR through verification, functional execution,
// costing and synthesis.

#include <gtest/gtest.h>

#include <cmath>

#include "tytra/codegen/verilog.hpp"
#include "tytra/cost/report.hpp"
#include "tytra/fabric/synth.hpp"
#include "tytra/ir/verifier.hpp"
#include "tytra/kernels/kernels.hpp"
#include "tytra/sim/functional.hpp"

namespace {

using namespace tytra;

kernels::SorConfig f32_sor() {
  kernels::SorConfig cfg;
  cfg.im = cfg.jm = cfg.km = 6;
  cfg.elem = ir::ScalarType::f32();
  return cfg;
}

TEST(FloatPath, SorVerifiesAndMatchesReference) {
  const auto cfg = f32_sor();
  const ir::Module m = kernels::make_sor(cfg);
  ASSERT_TRUE(ir::verify_ok(m)) << ir::verify(m).to_string();
  const auto inputs = kernels::sor_inputs(cfg);
  const auto run = sim::run_functional(m, inputs);
  ASSERT_TRUE(run.ok()) << run.error_message();
  const auto ref = kernels::sor_reference(cfg, inputs);
  const auto& out = run.value().outputs.at("p_new");
  for (std::size_t i = 0; i < out.size(); ++i) {
    ASSERT_NEAR(out[i], ref.p_new[i], std::abs(ref.p_new[i]) * 1e-12 + 1e-12);
  }
}

TEST(FloatPath, FloatCoresDominateTheResourceBill) {
  const auto db = cost::DeviceCostDb::calibrate(target::stratix_v_gsd8());
  kernels::SorConfig int_cfg;
  int_cfg.im = int_cfg.jm = int_cfg.km = 8;
  kernels::SorConfig f_cfg = int_cfg;
  f_cfg.elem = ir::ScalarType::f32();
  const auto est_int = cost::estimate_resources(kernels::make_sor(int_cfg), db);
  const auto est_f = cost::estimate_resources(kernels::make_sor(f_cfg), db);
  // f32 adders are hundreds of ALUTs each vs ~18 for ui18.
  EXPECT_GT(est_f.total.aluts, est_int.total.aluts * 4.0);
}

TEST(FloatPath, FloatDesignSynthesizesWithDeeperPipeline) {
  kernels::SorConfig int_cfg;
  int_cfg.im = int_cfg.jm = int_cfg.km = 8;
  kernels::SorConfig f_cfg = int_cfg;
  f_cfg.elem = ir::ScalarType::f32();
  // f32 add latency 7 vs 1: the kernel pipeline gets much deeper.
  EXPECT_GT(ir::pipeline_depth(kernels::make_sor(f_cfg)),
            ir::pipeline_depth(kernels::make_sor(int_cfg)) * 2);
  const auto synth =
      fabric::synthesize(kernels::make_sor(f_cfg), target::stratix_v_gsd8());
  EXPECT_TRUE(synth.fits);
}

TEST(FloatPath, CodegenAcceptsFloatKernels) {
  const auto design = codegen::emit_verilog(kernels::make_sor(f32_sor()));
  EXPECT_NE(design.source.find("module f0"), std::string::npos);
  EXPECT_GT(design.primitive_count, 10u);
}

TEST(FloatPath, TableIIStyleAccuracyHoldsForFloat) {
  const auto db = cost::DeviceCostDb::calibrate(target::stratix_v_gsd8());
  const ir::Module m = kernels::make_sor(f32_sor());
  const auto est = cost::estimate_resources(m, db);
  const auto act = fabric::synthesize(m, target::stratix_v_gsd8());
  const auto err = [](double e, double a) {
    return a != 0 ? std::abs(e - a) / a * 100.0 : 0.0;
  };
  EXPECT_LT(err(est.total.aluts, act.total.aluts), 15.0);
  EXPECT_LT(err(est.total.regs, act.total.regs), 15.0);
}

}  // namespace
