// Tests for target device descriptions, presets and the .tgt parser.

#include <gtest/gtest.h>

#include "tytra/resources.hpp"
#include "tytra/target/device.hpp"

namespace {

using namespace tytra::target;

TEST(Presets, StratixVSanity) {
  const DeviceDesc d = stratix_v_gsd8();
  EXPECT_EQ(d.family, "stratix-v");
  EXPECT_GT(d.resources.aluts, 100000u);
  EXPECT_GT(d.resources.dsps, 1000u);
  EXPECT_GT(d.dram_peak_bw, 1e9);
  EXPECT_GT(d.fmax_hz, d.default_freq_hz * 0.9);
}

TEST(Presets, Virtex7MatchesFig10Platform) {
  const DeviceDesc d = virtex7_690t();
  EXPECT_EQ(d.family, "virtex-7");
  // The baseline SDAccel platform of Fig. 10 plateaus near 6.3 Gbit/s.
  EXPECT_NEAR(d.dram.io_clock_hz * d.dram.bus_bytes, 0.8e9, 0.1e9);
}

TEST(Presets, Fig15ProfileIsSmall) {
  const DeviceDesc d = fig15_profile();
  EXPECT_LT(d.resources.aluts, stratix_v_gsd8().resources.aluts);
}

TEST(TgtParser, ParsesFullBlock) {
  const auto r = parse_target(R"(
# my board
device my-fpga {
  family   stratix-v
  aluts    100000
  regs     200000
  bram_bits 1000000
  dsps     256
  fmax_mhz 240      # comment
  freq_mhz 180
  dram_gbps 7.5
  host_gbps 3.2
  word_bytes 8
}
)");
  ASSERT_TRUE(r.ok()) << r.error_message();
  const DeviceDesc& d = r.value();
  EXPECT_EQ(d.name, "my-fpga");
  EXPECT_EQ(d.resources.aluts, 100000u);
  EXPECT_EQ(d.resources.dsps, 256u);
  EXPECT_DOUBLE_EQ(d.fmax_hz, 240e6);
  EXPECT_DOUBLE_EQ(d.default_freq_hz, 180e6);
  EXPECT_DOUBLE_EQ(d.dram_peak_bw, 7.5e9);
  EXPECT_DOUBLE_EQ(d.host.peak_bw, 3.2e9);
  EXPECT_EQ(d.word_bytes, 8u);
}

TEST(TgtParser, RejectsUnknownKey) {
  const auto r = parse_target("device d {\n  frobs 3\n}\n");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error_message().find("frobs"), std::string::npos);
}

TEST(TgtParser, RejectsMissingBrace) {
  EXPECT_FALSE(parse_target("device d {\n aluts 5\n").ok());
  EXPECT_FALSE(parse_target("aluts 5\n").ok());
  EXPECT_FALSE(parse_target("").ok());
}

TEST(TgtParser, RejectsBadNumber) {
  EXPECT_FALSE(parse_target("device d {\n aluts lots\n}\n").ok());
}

TEST(Utilization, ComputesPercentagesWithShellOverhead) {
  DeviceDesc d = stratix_v_gsd8();
  d.shell_overhead = 0.0;
  tytra::ResourceVec used;
  used.aluts = static_cast<double>(d.resources.aluts) / 2;
  const auto u = tytra::utilization(used, d);
  EXPECT_NEAR(u.aluts, 50.0, 0.01);
  EXPECT_TRUE(u.fits());

  d.shell_overhead = 0.5;
  const auto u2 = tytra::utilization(used, d);
  EXPECT_NEAR(u2.aluts, 100.0, 0.01);
}

TEST(Utilization, MaxPicksBindingResource) {
  DeviceDesc d = stratix_v_gsd8();
  d.shell_overhead = 0.0;
  tytra::ResourceVec used;
  used.dsps = static_cast<double>(d.resources.dsps) * 2;  // over budget
  const auto u = tytra::utilization(used, d);
  EXPECT_NEAR(u.max(), 200.0, 0.01);
  EXPECT_FALSE(u.fits());
}

TEST(ResourceVec, Arithmetic) {
  tytra::ResourceVec a{1, 2, 3, 4};
  const tytra::ResourceVec b{10, 20, 30, 40};
  a += b;
  EXPECT_EQ(a, (tytra::ResourceVec{11, 22, 33, 44}));
  const auto c = b * 0.5;
  EXPECT_EQ(c, (tytra::ResourceVec{5, 10, 15, 20}));
  EXPECT_NE(a.to_string().find("aluts=11"), std::string::npos);
}

}  // namespace
