// Tests for the persistent dse::ThreadPool and the campaign-wide
// scheduler built on it: worker-index pinning (the per-worker arena
// contract), batch semantics and exception propagation, campaign output
// byte-identity across thread counts, flattened-vs-job-by-job parity,
// and a sanitizer hammer (two sessions sharing one cache_override while
// each reuses its pool across explore/tune/campaign) for TSan CI runs.

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <mutex>
#include <regex>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "tytra/dse/pool.hpp"
#include "tytra/dse/session.hpp"
#include "tytra/kernels/kernels.hpp"
#include "tytra/kernels/registry.hpp"

namespace {

using namespace tytra;
using kernels::Registry;

// --------------------------------------------------------------------------
// ThreadPool
// --------------------------------------------------------------------------

TEST(Pool, RunsEveryParticipantExactlyOnceWithDistinctIndices) {
  dse::ThreadPool pool(3);
  EXPECT_EQ(pool.worker_count(), 3u);

  std::vector<std::atomic<int>> ran(4);
  pool.run_batch(4, [&](std::uint32_t index) {
    ASSERT_LT(index, 4u);
    ran[index].fetch_add(1);
  });
  for (int i = 0; i < 4; ++i) EXPECT_EQ(ran[i].load(), 1) << "index " << i;
}

TEST(Pool, CallerIsParticipantZeroAndWorkerIndicesArePinned) {
  // Worker index i must map to the same OS thread across batches — the
  // contract that makes the session's per-worker arenas race-free.
  dse::ThreadPool pool(3);
  std::mutex mu;
  std::map<std::uint32_t, std::set<std::thread::id>> ids;
  for (int batch = 0; batch < 8; ++batch) {
    pool.run_batch(4, [&](std::uint32_t index) {
      std::lock_guard<std::mutex> lock(mu);
      ids[index].insert(std::this_thread::get_id());
    });
  }
  ASSERT_EQ(ids.size(), 4u);
  for (const auto& [index, threads] : ids) {
    EXPECT_EQ(threads.size(), 1u) << "index " << index
                                  << " migrated between threads";
  }
  EXPECT_EQ(*ids[0].begin(), std::this_thread::get_id());
}

TEST(Pool, NarrowBatchesDraftOnlyLowIndices) {
  dse::ThreadPool pool(7);
  std::vector<std::atomic<int>> ran(8);
  pool.run_batch(2, [&](std::uint32_t index) { ran[index].fetch_add(1); });
  EXPECT_EQ(ran[0].load(), 1);
  EXPECT_EQ(ran[1].load(), 1);
  for (int i = 2; i < 8; ++i) EXPECT_EQ(ran[i].load(), 0) << "index " << i;
  // participants == 1 runs inline on the caller.
  const std::thread::id caller = std::this_thread::get_id();
  pool.run_batch(1, [&](std::uint32_t index) {
    EXPECT_EQ(index, 0u);
    EXPECT_EQ(std::this_thread::get_id(), caller);
    ran[0].fetch_add(1);
  });
  EXPECT_EQ(ran[0].load(), 2);
}

TEST(Pool, RejectsBadBatches) {
  dse::ThreadPool pool(1);
  EXPECT_THROW(pool.run_batch(3, [](std::uint32_t) {}),
               std::invalid_argument);
  EXPECT_THROW(pool.run_batch(2, dse::ThreadPool::BatchFn{}),
               std::invalid_argument);
  // Zero participants is a no-op, not an error.
  pool.run_batch(0, [](std::uint32_t) { FAIL() << "must not run"; });
}

TEST(Pool, ExceptionsPropagateAndThePoolStaysUsable) {
  dse::ThreadPool pool(3);
  // Thrown on a pool worker.
  EXPECT_THROW(pool.run_batch(4,
                              [](std::uint32_t index) {
                                if (index == 2) {
                                  throw std::runtime_error("worker boom");
                                }
                              }),
               std::runtime_error);
  // Thrown on the caller (participant 0).
  EXPECT_THROW(pool.run_batch(4,
                              [](std::uint32_t index) {
                                if (index == 0) {
                                  throw std::runtime_error("caller boom");
                                }
                              }),
               std::runtime_error);
  // The pool is not wedged: the next batch completes normally.
  std::atomic<int> done{0};
  pool.run_batch(4, [&](std::uint32_t) { done.fetch_add(1); });
  EXPECT_EQ(done.load(), 4);
}

TEST(Pool, CountsSuppressedExceptionsAcrossBatches) {
  // Only one exception can be rethrown per batch; the losers must be
  // counted, not silently dropped. The counter is cumulative over the
  // pool's lifetime and untouched by single-fault or clean batches.
  dse::ThreadPool pool(3);
  EXPECT_EQ(pool.suppressed_exception_count(), 0u);

  // All four participants throw: one rethrown, three suppressed.
  EXPECT_THROW(pool.run_batch(4,
                              [](std::uint32_t index) {
                                throw std::runtime_error(
                                    "boom " + std::to_string(index));
                              }),
               std::runtime_error);
  EXPECT_EQ(pool.suppressed_exception_count(), 3u);

  // A single-fault batch suppresses nothing.
  EXPECT_THROW(pool.run_batch(4,
                              [](std::uint32_t index) {
                                if (index == 1) {
                                  throw std::runtime_error("lone fault");
                                }
                              }),
               std::runtime_error);
  EXPECT_EQ(pool.suppressed_exception_count(), 3u);

  // Two faults (caller + one worker): one more suppressed, cumulatively.
  EXPECT_THROW(pool.run_batch(4,
                              [](std::uint32_t index) {
                                if (index <= 1) {
                                  throw std::runtime_error("pair fault");
                                }
                              }),
               std::runtime_error);
  EXPECT_EQ(pool.suppressed_exception_count(), 4u);

  // A clean batch leaves the count alone and the pool usable.
  std::atomic<int> done{0};
  pool.run_batch(4, [&](std::uint32_t) { done.fetch_add(1); });
  EXPECT_EQ(done.load(), 4);
  EXPECT_EQ(pool.suppressed_exception_count(), 4u);
}

TEST(Pool, DrainsASharedCursorCorrectly) {
  // The DSE usage pattern: the batch function drains an atomic cursor,
  // every item claimed exactly once across participants.
  dse::ThreadPool pool(3);
  constexpr int kItems = 10000;
  for (int rep = 0; rep < 5; ++rep) {
    std::atomic<int> cursor{0};
    std::vector<std::atomic<int>> claimed(kItems);
    pool.run_batch(4, [&](std::uint32_t) {
      for (;;) {
        const int i = cursor.fetch_add(1);
        if (i >= kItems) return;
        claimed[i].fetch_add(1);
      }
    });
    for (int i = 0; i < kItems; ++i) ASSERT_EQ(claimed[i].load(), 1);
  }
}

// --------------------------------------------------------------------------
// Campaign-wide scheduling
// --------------------------------------------------------------------------

dse::Campaign small_jobs_campaign() {
  // Many small jobs with repeats — the serving shape the flattened
  // scheduler exists for. 11 jobs across 3 kernels x sizes x 2 devices,
  // the last two repeating earlier {workload, size, device} points.
  dse::Campaign campaign;
  auto add = [&](const char* kernel, std::uint32_t nd, const char* device) {
    auto job = Registry::instance().make_job(kernel, nd);
    ASSERT_TRUE(job.ok()) << job.error_message();
    dse::Job j = std::move(job).take();
    j.device = device;
    campaign.jobs.push_back(std::move(j));
  };
  for (const char* device : {"fig15-profile", "stratix-v-gsd8"}) {
    add("sor", 8, device);
    add("sor", 12, device);
    add("hotspot", 12, device);
    add("lavamd", 48, device);
  }
  add("sor", 8, "fig15-profile");      // repeat of job 0
  add("hotspot", 12, "stratix-v-gsd8");  // repeat of job 6
  add("sor", 12, "fig15-profile");     // repeat of job 1
  return campaign;
}

dse::SessionOptions threaded(std::uint32_t num_threads) {
  dse::SessionOptions so;
  so.num_threads = num_threads;
  return so;
}

void add_two_devices(dse::Session& session) {
  session.add_device(*target::preset("fig15"));
  session.add_device(*target::preset("stratix-v-gsd8"));
}

/// Wall times are the one legitimately nondeterministic part of the JSON
/// renderings; blank them so the rest can be compared byte for byte.
std::string scrub_seconds(const std::string& json) {
  static const std::regex seconds_re(
      "(\"(?:explore_)?seconds\": )[-+0-9.eE]+");
  return std::regex_replace(json, seconds_re, "$1#");
}

TEST(CampaignScheduling, OutputIsByteIdenticalAcrossThreadCounts) {
  dse::Session base(threaded(1));
  add_two_devices(base);
  const dse::CampaignResult expected = base.run(small_jobs_campaign());

  const std::string expected_table = dse::format_campaign(expected);
  const std::string expected_pareto = dse::format_campaign_pareto(expected);
  const std::string expected_json =
      scrub_seconds(dse::format_campaign_json(expected));

  for (const std::uint32_t threads : {2u, 8u}) {
    dse::Session session(threaded(threads));
    add_two_devices(session);
    const dse::CampaignResult result = session.run(small_jobs_campaign());
    EXPECT_EQ(dse::format_campaign(result), expected_table)
        << "threads=" << threads;
    EXPECT_EQ(dse::format_campaign_pareto(result), expected_pareto)
        << "threads=" << threads;
    EXPECT_EQ(scrub_seconds(dse::format_campaign_json(result)), expected_json)
        << "threads=" << threads;
    ASSERT_EQ(result.jobs.size(), expected.jobs.size());
    for (std::size_t j = 0; j < result.jobs.size(); ++j) {
      EXPECT_EQ(dse::format_sweep(result.jobs[j].result),
                dse::format_sweep(expected.jobs[j].result))
          << "threads=" << threads << " job " << j;
      EXPECT_EQ(dse::format_pareto(result.jobs[j].result),
                dse::format_pareto(expected.jobs[j].result))
          << "threads=" << threads << " job " << j;
    }
  }
}

TEST(CampaignScheduling, FlattenedRunMatchesJobByJobExplore) {
  // The flattened two-wave schedule must attribute exactly the per-job
  // results (entries, best, frontier, hit/miss/variant stats) that
  // running the same jobs one at a time through an identical session
  // produces — including the repeats answering at the variant-key level.
  dse::Campaign campaign = small_jobs_campaign();
  dse::Session flat(threaded(4));
  add_two_devices(flat);
  const dse::CampaignResult result = flat.run(campaign);

  dse::Session serial(threaded(4));
  add_two_devices(serial);
  ASSERT_EQ(result.jobs.size(), campaign.jobs.size());
  for (std::size_t j = 0; j < campaign.jobs.size(); ++j) {
    const dse::DseResult reference = serial.explore(campaign.jobs[j]);
    const dse::DseResult& got = result.jobs[j].result;
    EXPECT_EQ(dse::format_sweep(got), dse::format_sweep(reference))
        << "job " << j;
    EXPECT_EQ(got.cache_stats.misses, reference.cache_stats.misses)
        << "job " << j;
    EXPECT_EQ(got.cache_stats.hits, reference.cache_stats.hits)
        << "job " << j;
    EXPECT_EQ(got.cache_stats.variant_hits,
              reference.cache_stats.variant_hits)
        << "job " << j;
  }

  // The repeats were deduplicated out of the evaluation wave: they cost
  // no lowering at all (every lookup answers at the variant-key level).
  const auto& repeat = result.jobs[result.jobs.size() - 1].result;
  EXPECT_EQ(repeat.cache_stats.misses, 0u);
  EXPECT_EQ(repeat.cache_stats.variant_hits, repeat.entries.size());
}

TEST(CampaignScheduling, RunAcceptsACacheOverride) {
  // run() joins explore/tune in accepting a cache_override, so several
  // sessions can campaign against one shared cache.
  dse::CostCache shared;
  dse::SessionOptions so;
  so.enable_cache = false;  // the session owns none; the override is it
  dse::Session session(so);
  session.add_device(*target::preset("fig15"));

  dse::Campaign campaign;
  auto job = Registry::instance().make_job("sor", 8);
  ASSERT_TRUE(job.ok());
  campaign.jobs.push_back(std::move(job).take());

  const dse::CampaignResult cold = session.run(campaign, &shared);
  EXPECT_EQ(cold.cache_stats.misses, cold.jobs[0].result.entries.size());
  const dse::CampaignResult warm = session.run(campaign, &shared);
  EXPECT_EQ(warm.cache_stats.variant_hits,
            warm.jobs[0].result.entries.size());
  EXPECT_EQ(dse::format_sweep(warm.jobs[0].result),
            dse::format_sweep(cold.jobs[0].result));

  // Without the override the session is uncached: stats stay zero while
  // the designs themselves are unchanged (format_campaign embeds the
  // stats line, so compare the per-job sweep instead).
  const dse::CampaignResult uncached = session.run(campaign);
  EXPECT_EQ(uncached.cache_stats.lookups(), 0u);
  EXPECT_EQ(dse::format_sweep(uncached.jobs[0].result),
            dse::format_sweep(cold.jobs[0].result));
}

// --------------------------------------------------------------------------
// Sanitizer hammer (run under TSan in CI)
// --------------------------------------------------------------------------

TEST(PoolHammer, TwoSessionsShareACacheAcrossExploreTuneAndCampaign) {
  // Two independent sessions — each with its own persistent pool and
  // arenas, both parallel — drive explore/tune/campaign concurrently
  // against ONE shared cache. Exercises: pool reuse across heterogeneous
  // batches, per-worker arena pinning, and the cache's lock-free read
  // path under cross-session mixed hit/miss traffic.
  dse::CostCache shared;
  std::atomic<int> failures{0};

  auto drive = [&](std::uint64_t seed) {
    try {
      dse::SessionOptions so;
      so.num_threads = 4;
      so.enable_cache = false;  // all caching through the shared override
      dse::Session session(so);
      session.add_device(*target::preset("fig15"));
      session.add_device(*target::preset("stratix-v-gsd8"));

      for (int round = 0; round < 3; ++round) {
        // Rotate which kernel each session leads with so the two
        // sessions keep colliding on warm and cold entries alike.
        const char* kernels[] = {"sor", "hotspot", "lavamd"};
        const char* kernel = kernels[(seed + round) % 3];
        auto job_r = Registry::instance().make_job(
            kernel, 8 + 4 * static_cast<std::uint32_t>((seed + round) % 2));
        ASSERT_TRUE(job_r.ok());
        dse::Job job = std::move(job_r).take();
        job.device = "fig15-profile";

        const auto swept = session.explore(job, &shared);
        if (swept.entries.empty()) failures.fetch_add(1);
        const auto tuned = session.tune(job, &shared);
        if (tuned.trajectory.empty()) failures.fetch_add(1);

        dse::Campaign campaign;
        for (const char* k : kernels) {
          auto r = Registry::instance().make_job(k, 12);
          ASSERT_TRUE(r.ok());
          dse::Job j = std::move(r).take();
          j.device = round % 2 ? "stratix-v-gsd8" : "fig15-profile";
          campaign.jobs.push_back(std::move(j));
        }
        const auto ran = session.run(campaign, &shared);
        if (ran.jobs.size() != campaign.jobs.size()) failures.fetch_add(1);
      }
    } catch (...) {
      failures.fetch_add(1);
    }
  };

  std::thread a(drive, 0);
  std::thread b(drive, 1);
  a.join();
  b.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_GT(shared.stats().hits, 0u);
}

}  // namespace
