// Tests for the two-level cache identity: the pre-lowering variant key
// (dse::KeyedLowerer) must agree with the authoritative post-lowering
// structural digest across every kernel and device preset, the FnLowerer
// shim must behave exactly like the raw std::function path, the divisor
// ladder shared by the tuner and the variant enumerator must match the
// brute-force definition, and the BuildArena must recycle without
// changing a single produced byte.

#include <gtest/gtest.h>

#include <algorithm>

#include "tytra/dse/cache.hpp"
#include "tytra/dse/explorer.hpp"
#include "tytra/dse/tuner.hpp"
#include "tytra/ir/printer.hpp"
#include "tytra/kernels/kernels.hpp"
#include "tytra/kernels/lowerers.hpp"

namespace {

using namespace tytra;
using dse::CostCache;
using dse::KeyedLowerer;

constexpr std::uint32_t kDim = 24;

KeyedLowerer sor_keyed() {
  kernels::SorConfig cfg;
  cfg.im = cfg.jm = cfg.km = kDim;
  cfg.nki = 10;
  return kernels::sor_lowerer(cfg);
}

KeyedLowerer hotspot_keyed() {
  kernels::HotspotConfig cfg;
  cfg.rows = cfg.cols = kDim;
  return kernels::hotspot_lowerer(cfg);
}

KeyedLowerer lavamd_keyed() {
  kernels::LavamdConfig cfg;
  cfg.particles = 1024;
  return kernels::lavamd_lowerer(cfg);
}

std::string stable_report(const cost::CostReport& r) {
  const std::string text = cost::format_report(r);
  return text.substr(0, text.rfind("estimated in"));
}

// --------------------------------------------------------------------------
// Variant keys
// --------------------------------------------------------------------------

TEST(VariantKey, StableAndSensitiveToShapeAnnotationsAndKernel) {
  const KeyedLowerer sor = sor_keyed();
  const std::uint64_t n = std::uint64_t{kDim} * kDim * kDim;
  const auto base = frontend::baseline_variant(n);
  const auto par4 = frontend::reshape_to(base, 4, frontend::ParAnn::Par);
  const auto seq4 = frontend::reshape_to(base, 4, frontend::ParAnn::Seq);

  // Deterministic across calls...
  EXPECT_EQ(sor.key(base), sor.key(frontend::baseline_variant(n)));
  EXPECT_EQ(sor.key(par4),
            sor.key(frontend::reshape_to(base, 4, frontend::ParAnn::Par)));
  // ...different shapes, annotations and kernels key differently.
  EXPECT_NE(sor.key(base), sor.key(par4));
  EXPECT_NE(sor.key(par4), sor.key(seq4));
  EXPECT_NE(sor.key(par4),
            sor.key(frontend::reshape_to(base, 8, frontend::ParAnn::Par)));
  const KeyedLowerer other = hotspot_keyed();
  EXPECT_NE(sor.key(base), other.key(frontend::baseline_variant(n)));
  // A config change (NKI) changes the fingerprint, so keys must differ.
  kernels::SorConfig cfg2;
  cfg2.im = cfg2.jm = cfg2.km = kDim;
  cfg2.nki = 11;
  EXPECT_NE(sor.key(base), kernels::sor_lowerer(cfg2).key(base));
}

TEST(VariantKey, AgreesWithStructuralKeyAcrossKernelsAndPresets) {
  // The core two-level invariant, across all three kernels x all three
  // device presets: a lookup answered by the variant-key table returns
  // exactly the report the structural level (and the raw cost model)
  // computes, and warm sweeps are answered entirely at the variant level.
  struct Case {
    std::uint64_t n;
    KeyedLowerer lower;
  };
  const Case cases[] = {
      {std::uint64_t{kDim} * kDim * kDim, sor_keyed()},
      {std::uint64_t{kDim} * kDim, hotspot_keyed()},
      {1024, lavamd_keyed()},
  };
  const cost::DeviceCostDb dbs[] = {
      cost::DeviceCostDb::calibrate(target::stratix_v_gsd8()),
      cost::DeviceCostDb::calibrate(target::virtex7_690t()),
      cost::DeviceCostDb::calibrate(target::fig15_profile()),
  };
  for (const auto& c : cases) {
    for (const auto& db : dbs) {
      CostCache cache;
      for (const auto& v : frontend::enumerate_variants(c.n, 16)) {
        CostCache::HitLevel level = CostCache::HitLevel::Variant;
        const auto cold = cache.cost(v, c.lower, db, &level);
        EXPECT_EQ(level, CostCache::HitLevel::Miss);
        const auto warm = cache.cost(v, c.lower, db, &level);
        EXPECT_EQ(level, CostCache::HitLevel::Variant);
        const auto direct = cost::cost_design(c.lower.lower(v), db);
        EXPECT_EQ(stable_report(warm), stable_report(cold));
        EXPECT_EQ(stable_report(warm), stable_report(direct));
      }
      EXPECT_EQ(cache.variant_size(), cache.size());
    }
  }
}

TEST(VariantKey, DistinctFingerprintsShareTheStructuralLevel) {
  // Two lowerers with different fingerprints but identical lowering: the
  // second one's first probe misses the variant level, lowers, and is
  // answered by the structural level — the ground truth is shared, the
  // variant keys are not.
  kernels::SorConfig cfg;
  cfg.im = cfg.jm = cfg.km = kDim;
  cfg.nki = 10;
  const KeyedLowerer a = kernels::sor_lowerer(cfg);
  const dse::FnLowerer b{[cfg](const frontend::Variant& v) {
    kernels::SorConfig c = cfg;
    c.lanes = v.lanes();
    return kernels::make_sor(c);
  }};
  ASSERT_NE(a.fingerprint(), "");

  const auto db = cost::DeviceCostDb::calibrate(target::fig15_profile());
  const std::uint64_t n = std::uint64_t{kDim} * kDim * kDim;
  const auto v = frontend::reshape_to(frontend::baseline_variant(n), 4,
                                      frontend::ParAnn::Par);
  CostCache cache;
  CostCache::HitLevel level = CostCache::HitLevel::Variant;
  cache.cost(v, a, db, &level);
  EXPECT_EQ(level, CostCache::HitLevel::Miss);
  // Key-less lowerer, same design: resolves at the structural level.
  cache.cost(v, b, db, &level);
  EXPECT_EQ(level, CostCache::HitLevel::Structural);
  EXPECT_EQ(cache.size(), 1u);
  // The keyed lowerer now hits before lowering.
  cache.cost(v, a, db, &level);
  EXPECT_EQ(level, CostCache::HitLevel::Variant);
}

TEST(VariantKey, DevicesDoNotCrossHit) {
  const KeyedLowerer sor = sor_keyed();
  const auto sv = cost::DeviceCostDb::calibrate(target::stratix_v_gsd8());
  const auto v7 = cost::DeviceCostDb::calibrate(target::virtex7_690t());
  const std::uint64_t n = std::uint64_t{kDim} * kDim * kDim;
  const auto v = frontend::baseline_variant(n);
  CostCache cache;
  CostCache::HitLevel level = CostCache::HitLevel::Variant;
  cache.cost(v, sor, sv, &level);
  EXPECT_EQ(level, CostCache::HitLevel::Miss);
  cache.cost(v, sor, v7, &level);
  EXPECT_EQ(level, CostCache::HitLevel::Miss);
  EXPECT_EQ(cache.variant_size(), 2u);
  EXPECT_EQ(cache.stats().variant_hits, 0u);
}

// --------------------------------------------------------------------------
// Sweep byte-identity: keyed vs shim vs raw-function lowering
// --------------------------------------------------------------------------

TEST(VariantKey, KeyedSweepIsByteIdenticalToFnSweepColdAndWarm) {
  const std::uint64_t n = std::uint64_t{kDim} * kDim * kDim;
  const auto db = cost::DeviceCostDb::calibrate(target::fig15_profile());
  const dse::LowerFn fn = [](const frontend::Variant& v) {
    kernels::SorConfig cfg;
    cfg.im = cfg.jm = cfg.km = kDim;
    cfg.nki = 10;
    cfg.lanes = v.lanes();
    return kernels::make_sor(cfg);
  };
  const auto base = dse::explore(n, fn, db, {});

  const KeyedLowerer keyed = sor_keyed();
  CostCache cache;
  dse::DseOptions opt;
  opt.cache = &cache;
  const auto cold = dse::explore(n, keyed, db, opt);
  const auto warm = dse::explore(n, keyed, db, opt);
  EXPECT_EQ(dse::format_sweep(cold), dse::format_sweep(base));
  EXPECT_EQ(dse::format_sweep(warm), dse::format_sweep(base));
  EXPECT_EQ(dse::format_pareto(cold), dse::format_pareto(base));
  EXPECT_EQ(dse::format_pareto(warm), dse::format_pareto(base));
  EXPECT_EQ(cold.cache_stats.variant_hits, 0u);
  EXPECT_EQ(cold.cache_stats.misses, cold.entries.size());
  EXPECT_EQ(warm.cache_stats.variant_hits, warm.entries.size());
  EXPECT_EQ(warm.cache_stats.hits, warm.entries.size());
}

// --------------------------------------------------------------------------
// BuildArena
// --------------------------------------------------------------------------

TEST(BuildArena, RecycledLoweringIsByteIdentical) {
  ir::BuildArena arena;
  const KeyedLowerer sor = sor_keyed();
  const std::uint64_t n = std::uint64_t{kDim} * kDim * kDim;
  // Lower the whole family twice through one arena, recycling between
  // variants — every module must match the arena-less build byte for
  // byte (capacity reuse must never leak content).
  for (int round = 0; round < 2; ++round) {
    for (const auto& v : frontend::enumerate_variants(n, 16)) {
      ir::Module with_arena = sor.lower(v, &arena);
      const ir::Module plain = sor.lower(v);
      EXPECT_EQ(ir::print_module(with_arena), ir::print_module(plain));
      arena.recycle(std::move(with_arena));
    }
  }
}

// --------------------------------------------------------------------------
// Divisor ladder (shared by the tuner and enumerate_variants)
// --------------------------------------------------------------------------

TEST(Divisors, MatchesBruteForceWithAndWithoutCap) {
  for (const std::uint64_t n :
       {std::uint64_t{1}, std::uint64_t{7}, std::uint64_t{24},
        std::uint64_t{576}, std::uint64_t{13824}, std::uint64_t{13825},
        std::uint64_t{1} << 20}) {
    std::vector<std::uint64_t> expected;
    for (std::uint64_t d = 1; d <= n; ++d) {
      if (n % d == 0) expected.push_back(d);
    }
    EXPECT_EQ(frontend::divisors(n), expected) << "n=" << n;
    for (const std::uint64_t cap : {std::uint64_t{1}, std::uint64_t{16},
                                    std::uint64_t{100}, n}) {
      std::vector<std::uint64_t> capped;
      for (const std::uint64_t d : expected) {
        if (d <= cap) capped.push_back(d);
      }
      EXPECT_EQ(frontend::divisors(n, cap), capped)
          << "n=" << n << " cap=" << cap;
    }
  }
  EXPECT_THROW(frontend::divisors(0), std::invalid_argument);
}

TEST(Divisors, EnumerateVariantsMatchesLegacyScan) {
  for (const std::uint64_t n : {std::uint64_t{13824}, std::uint64_t{576},
                                std::uint64_t{1024}, std::uint64_t{97}}) {
    for (const std::uint32_t max_lanes : {1u, 16u, 48u}) {
      const auto variants = frontend::enumerate_variants(n, max_lanes);
      // Legacy definition: baseline, then every dividing lane count in
      // [2, max_lanes] ascending.
      std::vector<std::uint64_t> expected_lanes{1};
      for (std::uint64_t lanes = 2; lanes <= max_lanes; ++lanes) {
        if (n % lanes == 0) expected_lanes.push_back(lanes);
      }
      std::vector<std::uint64_t> actual_lanes;
      for (const auto& v : variants) actual_lanes.push_back(v.lanes());
      EXPECT_EQ(actual_lanes, expected_lanes)
          << "n=" << n << " max_lanes=" << max_lanes;
    }
  }
}

// --------------------------------------------------------------------------
// Tuner guards
// --------------------------------------------------------------------------

TEST(TunerGuards, NonPositiveStepBudgetYieldsEmptyTrajectory) {
  const auto db = cost::DeviceCostDb::calibrate(target::fig15_profile());
  const KeyedLowerer sor = sor_keyed();
  const std::uint64_t n = std::uint64_t{kDim} * kDim * kDim;
  for (const int max_steps : {0, -1, -100}) {
    const auto result = dse::tune(n, sor, db, max_steps);
    EXPECT_TRUE(result.trajectory.empty()) << "max_steps=" << max_steps;
    EXPECT_NE(result.verdict, "");
    // format_tune used to dereference trajectory[best] here: UB on empty.
    const std::string text = dse::format_tune(result);
    EXPECT_NE(text.find(result.verdict), std::string::npos);
    EXPECT_EQ(text.find("best:"), std::string::npos);
  }
}

TEST(TunerGuards, KeyedTunerMatchesFnTunerAndRidesVariantKeys) {
  const auto db = cost::DeviceCostDb::calibrate(target::fig15_profile());
  const KeyedLowerer keyed = sor_keyed();
  const dse::LowerFn fn = [](const frontend::Variant& v) {
    kernels::SorConfig cfg;
    cfg.im = cfg.jm = cfg.km = kDim;
    cfg.nki = 10;
    cfg.lanes = v.lanes();
    return kernels::make_sor(cfg);
  };
  const std::uint64_t n = std::uint64_t{kDim} * kDim * kDim;
  const auto a = dse::tune(n, fn, db);
  const auto b = dse::tune(n, keyed, db);
  EXPECT_EQ(dse::format_tune(a), dse::format_tune(b));

  // A warm cache answers a rerun of the same trajectory entirely from
  // the variant-key table.
  CostCache cache;
  dse::tune(n, keyed, db, 12, &cache);
  const auto before = cache.stats();
  const auto rerun = dse::tune(n, keyed, db, 12, &cache);
  const auto after = cache.stats();
  EXPECT_EQ(dse::format_tune(rerun), dse::format_tune(b));
  EXPECT_EQ(after.misses, before.misses);
  EXPECT_EQ(after.variant_hits - before.variant_hits,
            rerun.trajectory.size());
}

}  // namespace
